package lp

// Tests for the frontier-decomposed parallel search (parallel.go). The
// contract under test is absolute: for every engine, representation,
// budget shape, and cancellation pattern, SolveILP with SearchParallel ∈
// {1, 2, 4} returns the bit-identical Solution (and error text) of the
// sequential search — and the extra goroutines stay bounded by the
// process-wide token pool even when many parallel solves run at once.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// lowFence lowers the frontier fence so the small fuzz instances decompose
// into many subtree tasks (the machinery the tests exist to exercise),
// restoring the production value when the test ends.
func lowFence(t *testing.T, n int) {
	t.Helper()
	old := bbFrontierNodes
	bbFrontierNodes = n
	t.Cleanup(func() { bbFrontierNodes = old })
}

var parallelWorkerCounts = []int{1, 2, 4}

// solveAllWorkers solves p sequentially, then at every worker count, and
// requires each parallel answer — Solution fields and error text alike —
// to match the sequential one exactly.
func solveAllWorkers(t *testing.T, tag string, p *Problem, opts ILPOptions) {
	t.Helper()
	want, werr := SolveILP(p, opts)
	for _, workers := range parallelWorkerCounts {
		po := opts
		po.SearchParallel = workers
		got, gerr := SolveILP(p, po)
		if (werr == nil) != (gerr == nil) || (werr != nil && werr.Error() != gerr.Error()) {
			t.Fatalf("%s workers=%d: err=%v, sequential err=%v", tag, workers, gerr, werr)
		}
		if werr != nil {
			continue
		}
		if err := sameSolution(want, got); err != nil {
			t.Fatalf("%s workers=%d: %v", tag, workers, err)
		}
	}
}

// parallelConfigs is the engine/representation matrix every parity corpus
// runs through. Hybrid ignores the knob (its replay tree must stay on one
// certified arena) and root cuts re-enter SolveILP after separation; both
// must still be answer-identical at every worker count.
func parallelConfigs() []struct {
	tag  string
	opts ILPOptions
} {
	return []struct {
		tag  string
		opts ILPOptions
	}{
		{"exact/dense", ILPOptions{Engine: EngineExact, Simplex: SimplexDense}},
		{"exact/revised", ILPOptions{Engine: EngineExact, Simplex: SimplexRevised}},
		{"float", ILPOptions{Engine: EngineFloat}},
		{"hybrid", ILPOptions{Engine: EngineExact, Simplex: SimplexHybrid}},
		{"cuts", ILPOptions{Engine: EngineExact, RootCuts: true}},
	}
}

// The core parity fuzz: random mixed-shape ILPs across the whole engine
// matrix, unbudgeted and under random node and work budgets.
func TestParallelSearchParityFuzz(t *testing.T) {
	lowFence(t, 3)
	rounds := parityRounds(t, 40)
	for seed := 0; seed < rounds; seed++ {
		rng := rand.New(rand.NewSource(int64(9100 + seed)))
		p := randomBoundedProblem(rng, true)
		maxWork := int64(200 + rng.Intn(4000))
		maxNodes := 5 + rng.Intn(60)
		for _, cfg := range parallelConfigs() {
			base := fmt.Sprintf("seed=%d %s", seed, cfg.tag)
			solveAllWorkers(t, base, p, cfg.opts)
			budget := cfg.opts
			budget.MaxWork = maxWork
			solveAllWorkers(t, base+"/work", p, budget)
			budget = cfg.opts
			budget.MaxNodes = maxNodes
			solveAllWorkers(t, base+"/nodes", p, budget)
		}
	}
}

// Pure feasibility problems stop at the FIRST integral solution, so the
// ordered commit must preserve exactly which solution wins no matter which
// worker finds one earlier in wall time.
func TestParallelSearchFeasibilityFirstWin(t *testing.T) {
	lowFence(t, 2)
	rounds := parityRounds(t, 30)
	for seed := 0; seed < rounds; seed++ {
		rng := rand.New(rand.NewSource(int64(5200 + seed)))
		p := randomBoundedProblem(rng, true)
		p.Objective = nil
		for _, cfg := range parallelConfigs() {
			solveAllWorkers(t, fmt.Sprintf("seed=%d %s", seed, cfg.tag), p, cfg.opts)
		}
	}
}

// Budget verdicts on a deterministic exponential tree: the StatusLimit
// point (and the incumbent carried out of it) must replay exactly through
// speculative execution, including mixed node+work budgets.
func TestParallelSearchBudgetParity(t *testing.T) {
	lowFence(t, 3)
	p := parityILP(13)
	for _, cfg := range []struct {
		tag  string
		opts ILPOptions
	}{
		{"exact/nodes", ILPOptions{Engine: EngineExact, MaxNodes: 500}},
		{"exact/work", ILPOptions{Engine: EngineExact, MaxWork: 20000}},
		{"exact/both", ILPOptions{Engine: EngineExact, MaxNodes: 300, MaxWork: 15000}},
		{"revised/work", ILPOptions{Engine: EngineExact, Simplex: SimplexRevised, MaxWork: 20000}},
		{"float/nodes", ILPOptions{Engine: EngineFloat, MaxNodes: 500}},
	} {
		solveAllWorkers(t, cfg.tag, p, cfg.opts)
	}
}

// A pre-fired cancellation channel must yield StatusCanceled at every
// worker count, before meaningful work happens.
func TestParallelSearchCancelParity(t *testing.T) {
	lowFence(t, 3)
	p := parityILP(9)
	for _, workers := range parallelWorkerCounts {
		sol, err := SolveILP(p, ILPOptions{Engine: EngineExact, Cancel: closedChan(), SearchParallel: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if sol.Status != StatusCanceled {
			t.Fatalf("workers=%d: status %v, want canceled", workers, sol.Status)
		}
	}
}

// Cancellation mid-search with workers in flight: the solve must terminate
// promptly with StatusCanceled and leave no goroutines behind.
func TestParallelSearchCancelMidFlight(t *testing.T) {
	lowFence(t, 3)
	p := parityILP(21) // exceeds the default node budget; never finishes fast
	cancel := make(chan struct{})
	done := make(chan *Solution, 1)
	go func() {
		sol, err := SolveILP(p, ILPOptions{Engine: EngineExact, Cancel: cancel, SearchParallel: 4})
		if err != nil {
			t.Errorf("solve: %v", err)
		}
		done <- sol
	}()
	time.Sleep(10 * time.Millisecond)
	close(cancel)
	select {
	case sol := <-done:
		if sol != nil && sol.Status != StatusCanceled {
			t.Fatalf("status %v, want canceled", sol.Status)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("canceled solve did not return")
	}
}

// Nested-parallelism stress: many concurrent solves, each asking for more
// workers than the machine has. The process-wide token pool must cap the
// extra goroutines, every solve must still match the sequential answer bit
// for bit, and everything must wind down leak-free.
func TestParallelSearchNestedGoroutineBound(t *testing.T) {
	lowFence(t, 2)
	p := parityILP(11)
	opts := ILPOptions{Engine: EngineExact, MaxNodes: 2000}
	want, werr := SolveILP(p, opts)
	if werr != nil {
		t.Fatal(werr)
	}

	base := runtime.NumGoroutine()
	const concurrent = 6
	var (
		peak    atomic.Int64
		stop    = make(chan struct{})
		sampler sync.WaitGroup
	)
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := int64(runtime.NumGoroutine()); n > peak.Load() {
				peak.Store(n)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < concurrent; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				po := opts
				po.SearchParallel = 8 // far beyond the token pool
				got, err := SolveILP(p, po)
				if err != nil {
					t.Errorf("nested solve: %v", err)
					return
				}
				if err := sameSolution(want, got); err != nil {
					t.Errorf("nested solve diverged: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	sampler.Wait()

	// Extra search workers exist only while holding a token, so the peak is
	// bounded by base + the solver goroutines + the pool capacity (+ the
	// sampler and a little slack for runtime goroutines).
	bound := int64(base + concurrent + cap(searchTokens) + 4)
	if got := peak.Load(); got > bound {
		t.Fatalf("goroutine peak %d exceeds bound %d (base=%d pool=%d)", got, bound, base, cap(searchTokens))
	}

	// Leak check: every worker joined before its solve returned.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d, base %d", n, base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
