package lp

// Tests for the a-priori integer box (intbox.go) and the in-search
// open-march guard (parallel.go) — together the fix for the historical
// non-termination of branch and bound on one-sided integer domains
// (edit-corpus seed 1376).

import (
	"errors"
	"math/big"
	"testing"
)

// boxBounds materializes the derived chain over the declared bounds.
func boxBounds(t *testing.T, p *Problem) (lo, hi []*big.Rat) {
	t.Helper()
	chain := integerBox(p)
	if chain == nil {
		t.Fatal("expected a derived bound chain")
	}
	lo = make([]*big.Rat, len(p.Vars))
	hi = make([]*big.Rat, len(p.Vars))
	chain.materialize(p, lo, hi, nil)
	return lo, hi
}

// Fully boxed problems must take the nil fast path: their searches replay
// bit for bit as before the box existed.
func TestIntegerBoxFastPath(t *testing.T) {
	p := &Problem{}
	p.AddIntVar("x", rat(0, 1), rat(5, 1))
	p.AddVar("y", nil, nil) // open continuous vars don't need a box
	if integerBox(p) != nil {
		t.Fatal("fully boxed integers: want nil chain")
	}
}

// AddNat flow variables under a capacity row — the shape every compiled
// contract emits — get their implied upper bounds, floored to integrality.
func TestIntegerBoxCapacityRow(t *testing.T) {
	p := &Problem{}
	x := p.AddNat("x")
	y := p.AddNat("y")
	p.AddConstraint("cap", []Term{T(x, 1), T(y, 2)}, LE, rat(7, 1))
	_, hi := boxBounds(t, p)
	if hi[x] == nil || hi[x].Cmp(rat(7, 1)) != 0 {
		t.Errorf("hi[x] = %v, want 7", hi[x])
	}
	if hi[y] == nil || hi[y].Cmp(rat(3, 1)) != 0 { // ⌊7/2⌋
		t.Errorf("hi[y] = %v, want 3", hi[y])
	}
}

// A GE row with finite partner bounds implies a lower bound, ceiled to
// integrality; an EQ row implies both sides.
func TestIntegerBoxSenses(t *testing.T) {
	p := &Problem{}
	x := p.AddIntVar("x", nil, nil)
	y := p.AddIntVar("y", rat(0, 1), rat(3, 1))
	p.AddConstraint("ge", []Term{T(x, 2), T(y, 1)}, GE, rat(3, 1))
	z := p.AddIntVar("z", nil, nil)
	p.AddConstraint("eq", []Term{T(z, 2)}, EQ, rat(6, 1))
	lo, hi := boxBounds(t, p)
	if lo[x] == nil || lo[x].Cmp(rat(0, 1)) != 0 { // ⌈(3−3)/2⌉
		t.Errorf("lo[x] = %v, want 0", lo[x])
	}
	if lo[z] == nil || lo[z].Cmp(rat(3, 1)) != 0 {
		t.Errorf("lo[z] = %v, want 3", lo[z])
	}
	if hi[z] == nil || hi[z].Cmp(rat(3, 1)) != 0 {
		t.Errorf("hi[z] = %v, want 3", hi[z])
	}
}

// Derived bounds are implied by the constraints, so installing the box
// never changes the answer of a solvable instance.
func TestIntegerBoxPreservesOptimum(t *testing.T) {
	p := &Problem{}
	x := p.AddNat("x")
	y := p.AddNat("y")
	p.AddConstraint("cap", []Term{T(x, 1), T(y, 1)}, LE, rat(6, 1))
	p.Objective = []Term{T(x, 2), T(y, 3)}
	p.Maximize = true
	for _, cfg := range parallelConfigs() {
		sol, err := SolveILP(p, cfg.opts)
		if err != nil {
			t.Fatalf("%s: %v", cfg.tag, err)
		}
		if sol.Status != StatusOptimal || sol.Objective.Cmp(rat(18, 1)) != 0 {
			t.Fatalf("%s: got %v obj=%v, want optimal 18", cfg.tag, sol.Status, sol.Objective)
		}
	}
}

// Values past int64 must promote the whole propagation to the big.Rat
// path (mirroring the simplex engines) and still derive the right bound.
func TestIntegerBoxPromotesOnOverflow(t *testing.T) {
	huge := new(big.Rat).SetInt(new(big.Int).Lsh(big.NewInt(1), 80))
	p := &Problem{}
	x := p.AddNat("x")
	p.AddConstraint("cap", []Term{T(x, 1)}, LE, huge)
	_, hi := boxBounds(t, p)
	if hi[x] == nil || hi[x].Cmp(huge) != 0 {
		t.Errorf("hi[x] = %v, want 2^80", hi[x])
	}
}

// Both arithmetics are exact, so on any instance they must derive the
// identical chain — the promotion fallback can never change the box.
func TestIntegerBoxArithAgreement(t *testing.T) {
	p := &Problem{}
	x := p.AddNat("x")
	y := p.AddNat("y")
	z := p.AddIntVar("z", nil, nil)
	p.AddConstraint("cap", []Term{T(x, 3), T(y, 2)}, LE, rat(17, 3))
	p.AddConstraint("link", []Term{T(z, 2), T(x, -1)}, EQ, rat(5, 2))
	fast := boxPropagate[rat64, rat64Arith](p, rat64Arith{})
	slow := boxPropagate[*big.Rat, ratArith](p, ratArith{})
	if fast == nil || slow == nil {
		t.Fatalf("expected chains from both paths, got %v / %v", fast, slow)
	}
	nv := len(p.Vars)
	flo, fhi := make([]*big.Rat, nv), make([]*big.Rat, nv)
	slo, shi := make([]*big.Rat, nv), make([]*big.Rat, nv)
	fast.materialize(p, flo, fhi, nil)
	slow.materialize(p, slo, shi, nil)
	for i := 0; i < nv; i++ {
		if (flo[i] == nil) != (slo[i] == nil) || (flo[i] != nil && flo[i].Cmp(slo[i]) != 0) {
			t.Errorf("var %d: lo %v (rat64) vs %v (big.Rat)", i, flo[i], slo[i])
		}
		if (fhi[i] == nil) != (shi[i] == nil) || (fhi[i] != nil && fhi[i].Cmp(shi[i]) != 0) {
			t.Errorf("var %d: hi %v (rat64) vs %v (big.Rat)", i, fhi[i], shi[i])
		}
	}
}

// The pathological shape: LP-feasible at every depth (x = y + 1/2),
// integer-infeasible, and no upper bound derivable for either variable.
// The open-march guard must reject it with the typed error — identically
// across engines, representations, and worker counts — instead of hanging.
func TestOpenMarchGuardRejectsUnboundedDomain(t *testing.T) {
	lowFence(t, 3)
	p := &Problem{}
	x := p.AddNat("x")
	y := p.AddNat("y")
	p.AddConstraint("gap", []Term{T(x, 2), T(y, -2)}, EQ, rat(1, 1))
	if integerBox(p) != nil {
		// Neither upper side is derivable (each needs the other's); the box
		// must leave them open for the guard rather than inventing bounds.
		t.Fatal("expected no derivable bounds")
	}
	for _, cfg := range parallelConfigs() {
		_, err := SolveILP(p, cfg.opts)
		if !errors.Is(err, ErrUnboundedIntDomain) {
			t.Fatalf("%s: err = %v, want ErrUnboundedIntDomain", cfg.tag, err)
		}
		solveAllWorkers(t, cfg.tag, p, cfg.opts)
	}
}

// Solves that decide before branching runs away must NOT be rejected:
// an unbounded relaxation (the contract algebra's entailment probes read
// StatusUnbounded as "not entailed") still returns its verdict.
func TestOpenDomainUnboundedRelaxationStillDecides(t *testing.T) {
	p := &Problem{}
	x := p.AddNat("x")
	p.Objective = []Term{T(x, 1)}
	p.Maximize = true
	sol, err := SolveILP(p, ILPOptions{Engine: EngineExact})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusUnbounded {
		t.Fatalf("status %v, want unbounded", sol.Status)
	}
}
