package lp

import "math/big"

// Model is a persistent, editable linear (or mixed-integer) program: the
// tableau arena is built once, bounds / right-hand sides / the objective are
// edited between solves, and Resolve / ResolveILP re-solve the edited
// program. Both are bit-identical to handing the current Problem to a fresh
// SolveLP / SolveILP:
//
//   - Resolve re-enters through the warm-start paths when it can — the dual
//     simplex after bound or RHS edits (reduced costs are untouched, so the
//     last optimal basis stays dual feasible), the primal phase 2 after an
//     objective-only edit (the basis stays primal feasible) — and accepts the
//     warm answer only when it provably equals the from-scratch one: an
//     infeasible/unbounded verdict (a status is an objective fact under exact
//     arithmetic) or an optimum certified unique by strictly signed reduced
//     costs. Anything else falls back to the deterministic cold solve, still
//     inside the retained arena.
//   - ResolveILP always branches cold from the root (a warm root would steer
//     the search down a different, albeit valid, subtree and break
//     reproducibility); the warm-started dual reentry between tree nodes and
//     the reused arena are where the time goes.
//
// The Model owns its Problem: edit bounds, RHS and objective only through
// the setters. Appending variables or constraints to the Problem after
// NewModel discards the arenas and rebuilds on the next solve.
//
// A Model is not safe for concurrent use; callers that solve many related
// instances concurrently keep one Model per worker (see solverpool).
type Model struct {
	p *Problem

	// One tableau per engine, built lazily on first use. The exact path
	// mirrors SolveLP/SolveILP: rat64 until an overflow promotes the model
	// to big.Rat for good.
	t64      *tableau[rat64, rat64Arith]
	tbig     *tableau[*big.Rat, ratArith]
	tflt     *tableau[float64, floatArith]
	promoted bool

	nv, m int // structure snapshot; growth forces a rebuild

	lo, hi []*big.Rat // per-solve declared-bound scratch
}

// NewModel wraps p in a persistent model. No tableau is built until the
// first solve.
func NewModel(p *Problem) *Model {
	return &Model{p: p, nv: len(p.Vars), m: len(p.Constraints)}
}

// Problem returns the underlying program (read-only for structure; use the
// setters for edits).
func (mo *Model) Problem() *Problem { return mo.p }

// SetBound replaces the bounds of v (nil = unbounded). The edit takes
// effect at the next solve; warm reentry handles it via the dual simplex.
func (mo *Model) SetBound(v VarID, lo, hi *big.Rat) {
	mo.p.Vars[v].Lower, mo.p.Vars[v].Upper = lo, hi
}

// SetRHS retargets constraint ci to a new right-hand side, keeping any warm
// basis dual feasible (the textbook dual-simplex re-solve case).
func (mo *Model) SetRHS(ci int, rhs *big.Rat) {
	mo.p.Constraints[ci].RHS = rhs
	if mo.t64 != nil && !promote(func() { mo.t64.updateRHS(ci, rhs) }) {
		mo.dropRat64()
	}
	if mo.tbig != nil {
		mo.tbig.updateRHS(ci, rhs)
	}
	if mo.tflt != nil {
		mo.tflt.updateRHSPristine(ci, rhs)
	}
}

// SetObjective replaces the objective. The last basis stays primal feasible,
// so the next Resolve may re-enter through phase 2 alone.
func (mo *Model) SetObjective(terms []Term, maximize bool) {
	mo.p.SetObjective(terms, maximize)
	if mo.t64 != nil && !promote(func() { mo.t64.updateCost() }) {
		mo.dropRat64()
	}
	if mo.tbig != nil {
		mo.tbig.updateCost()
	}
	if mo.tflt != nil {
		mo.tflt.updateCost()
	}
}

// Resolve solves the current program with the exact engine, warm when the
// edits allow it. The result is bit-identical to SolveLP(m.Problem()).
func (mo *Model) Resolve() (*Solution, error) {
	mo.checkStructure()
	if !mo.promoted {
		var sol *Solution
		var err error
		if promote(func() { sol, err = resolveLP(mo, mo.exact64()) }) {
			return sol, err
		}
		mo.dropRat64()
	}
	return resolveLP(mo, mo.exactBig())
}

// ResolveILP solves the current program by branch and bound in the retained
// arena. The result is bit-identical to SolveILP(m.Problem(), opts).
func (mo *Model) ResolveILP(opts ILPOptions) (*Solution, error) {
	mo.checkStructure()
	if opts.Engine == EngineFloat {
		return bbSolveTableau(mo.p, mo.float(), floatArith{eps: defaultEps}, opts)
	}
	if !mo.promoted {
		var sol *Solution
		var err error
		if promote(func() { sol, err = bbSolveTableau(mo.p, mo.exact64(), rat64Arith{}, opts) }) {
			return sol, err
		}
		mo.dropRat64()
	}
	return bbSolveTableau(mo.p, mo.exactBig(), ratArith{}, opts)
}

// resolveLP drives one LP solve over the given tableau: declared bounds in,
// warm or cold solve, Solution out.
func resolveLP[T any, A arith[T]](mo *Model, tb *tableau[T, A]) (*Solution, error) {
	lo, hi := mo.declaredBounds()
	tb.workBudget = 0
	switch status := tb.resolveModel(lo, hi); status {
	case StatusInfeasible, StatusUnbounded:
		return &Solution{Status: status}, nil
	}
	return optimalSolution(tb), nil
}

// resolveModel solves under the given bounds, preferring warm reentry but
// returning a warm answer only when it provably matches the from-scratch
// one; everything else re-runs the deterministic cold path in place.
func (tb *tableau[T, A]) resolveModel(lo, hi []*big.Rat) Status {
	ok, changed := tb.setBounds(lo, hi)
	if changed {
		tb.basisOK = false
	}
	if !ok {
		return StatusInfeasible // conflicting bounds, as solveNode reports
	}
	if tb.warmOK {
		if tb.rewarm() {
			// Dual reentry: bound and RHS edits leave the basis dual
			// feasible.
			switch tb.dual() {
			case dualOptimal:
				tb.basisOK = true
				if tb.uniqueOptimum() {
					return StatusOptimal
				}
				// Optimal but possibly not unique: only the cold path's
				// answer is canonical.
			case dualInfeasible:
				return StatusInfeasible
			}
			// dualStuck: anti-cycling cap hit; restart cold for certainty.
		}
		// A failed rewarm reshuffled the nonbasic states mid-walk.
		tb.basisOK = false
	} else if tb.basisOK {
		// Primal reentry: bounds and RHS are as last solved, only the
		// objective changed, so the basis is still primal feasible and
		// phase 1 can be skipped outright.
		switch tb.phase2() {
		case StatusOptimal:
			tb.warmOK = true
			if tb.uniqueOptimum() {
				return StatusOptimal
			}
		case StatusUnbounded:
			tb.warmOK, tb.basisOK = false, false
			return StatusUnbounded
		}
	}
	tb.warmOK = false
	status := tb.solveFresh()
	tb.warmOK = status == StatusOptimal
	tb.basisOK = status == StatusOptimal
	return status
}

// declaredBounds snapshots the Problem's variable bounds into reusable
// scratch slices.
func (mo *Model) declaredBounds() ([]*big.Rat, []*big.Rat) {
	if len(mo.lo) != len(mo.p.Vars) {
		mo.lo = make([]*big.Rat, len(mo.p.Vars))
		mo.hi = make([]*big.Rat, len(mo.p.Vars))
	}
	for i := range mo.p.Vars {
		mo.lo[i] = mo.p.Vars[i].Lower
		mo.hi[i] = mo.p.Vars[i].Upper
	}
	return mo.lo, mo.hi
}

// checkStructure rebuilds from scratch when variables or constraints were
// appended behind the model's back.
func (mo *Model) checkStructure() {
	if len(mo.p.Vars) != mo.nv || len(mo.p.Constraints) != mo.m {
		mo.t64, mo.tbig, mo.tflt = nil, nil, nil
		mo.promoted = false
		mo.nv, mo.m = len(mo.p.Vars), len(mo.p.Constraints)
	}
}

// dropRat64 abandons the int64 fast path after an overflow; the model runs
// on big.Rat from here on (mirroring SolveLP's whole-solve promotion).
func (mo *Model) dropRat64() {
	mo.t64 = nil
	mo.promoted = true
}

func (mo *Model) exact64() *tableau[rat64, rat64Arith] {
	if mo.t64 == nil {
		mo.t64 = newTableau[rat64, rat64Arith](mo.p, rat64Arith{})
	}
	return mo.t64
}

func (mo *Model) exactBig() *tableau[*big.Rat, ratArith] {
	if mo.tbig == nil {
		mo.tbig = newTableau[*big.Rat, ratArith](mo.p, ratArith{})
	}
	return mo.tbig
}

func (mo *Model) float() *tableau[float64, floatArith] {
	if mo.tflt == nil {
		mo.tflt = newTableau[float64, floatArith](mo.p, floatArith{eps: defaultEps})
	}
	return mo.tflt
}
