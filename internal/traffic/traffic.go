// Package traffic implements the traffic-system design framework of §IV-A:
// grouping floorplan vertices into disjoint simple-path components (shelving
// rows, station queues, transports), wiring components through inlet/outlet
// relations, and validating the composition rules the paper imposes.
//
// Direction convention. The paper's prose and its Algorithm 1 use "head" and
// "tail" with opposite orientations; we follow Algorithm 1, which is the
// precise artifact: an agent enters a component at its Entry cell (the
// algorithm's TAIL), advances cell by cell toward the Exit cell (the
// algorithm's HEAD), and leaves from the Exit cell to the Entry cell of the
// next component. Consequently, for Cj ∈ Inlets(Ci) the floorplan must have
// an edge Exit(Cj) – Entry(Ci). DESIGN.md records this erratum.
package traffic

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/warehouse"
)

// Kind classifies a component per §IV-A.
type Kind int

// Component kinds.
const (
	Transport Kind = iota
	ShelvingRow
	StationQueue
)

func (k Kind) String() string {
	switch k {
	case Transport:
		return "transport"
	case ShelvingRow:
		return "shelving-row"
	case StationQueue:
		return "station-queue"
	}
	return "unknown"
}

// ComponentID indexes a component within its System.
type ComponentID int

// Component is a directed simple path of floorplan cells. Cells[0] is the
// entry; Cells[len-1] is the exit.
type Component struct {
	ID    ComponentID
	Kind  Kind
	Cells []grid.VertexID
}

// Entry returns the cell agents arrive on (Algorithm 1's TAIL).
func (c *Component) Entry() grid.VertexID { return c.Cells[0] }

// Exit returns the cell agents leave from (Algorithm 1's HEAD).
func (c *Component) Exit() grid.VertexID { return c.Cells[len(c.Cells)-1] }

// Len returns |Ci|, the number of cells.
func (c *Component) Len() int { return len(c.Cells) }

// Capacity returns ⌊|Ci|/2⌋, the per-cycle-period agent intake bound of
// §IV-C/IV-D.
func (c *Component) Capacity() int { return len(c.Cells) / 2 }

// IndexOf returns the position of v within the component, or -1.
func (c *Component) IndexOf(v grid.VertexID) int {
	for i, u := range c.Cells {
		if u == v {
			return i
		}
	}
	return -1
}

// Next returns the cell following v on the way to the exit, or grid.None if
// v is the exit (the algorithm's NEXT(Ci, u) = ⊥).
func (c *Component) Next(v grid.VertexID) grid.VertexID {
	i := c.IndexOf(v)
	if i < 0 || i+1 >= len(c.Cells) {
		return grid.None
	}
	return c.Cells[i+1]
}

// System is a validated traffic system: components plus the traffic system
// graph Gs of inlet/outlet arcs.
//
// Arcs carry a contiguous numbering e = 0..NumEdges()-1 (the order of
// Edges()), so downstream packages can keep per-arc state in flat slices
// instead of maps keyed by component pairs.
type System struct {
	W          *warehouse.Warehouse
	Components []*Component
	// Outlets[i] lists the components reachable from component i (1 or 2).
	Outlets [][]ComponentID
	// Inlets[i] lists the components feeding component i (1 or 2).
	Inlets [][]ComponentID

	cellOf    []ComponentID // vertex -> component, -1 if unused
	cellIndex []int32       // vertex -> position within its component, -1

	edges      [][2]ComponentID // Es under the contiguous arc numbering
	outEdgeIDs [][]int32        // arc IDs leaving component i, parallel to Outlets[i]
	inEdgeIDs  [][]int32        // arc IDs entering component i, parallel to Inlets[i]
	compStock  []int32          // dense UNITS_AT: component ci x product k at ci*|ρ|+k
}

// NumComponents returns |Vs|.
func (s *System) NumComponents() int { return len(s.Components) }

// ComponentAt returns the component containing vertex v, or -1 if v is
// unused.
func (s *System) ComponentAt(v grid.VertexID) ComponentID { return s.cellOf[v] }

// MaxComponentLen returns m := max |Ci|, which fixes the cycle time tc = 2m.
func (s *System) MaxComponentLen() int {
	m := 0
	for _, c := range s.Components {
		if c.Len() > m {
			m = c.Len()
		}
	}
	return m
}

// CycleTime returns tc = 2m (Property 4.1).
func (s *System) CycleTime() int { return 2 * s.MaxComponentLen() }

// Edges returns every arc (Ci, Cj) ∈ Es in the contiguous arc numbering:
// Edges()[e] is arc e. The returned slice is shared; callers must not
// mutate it.
func (s *System) Edges() [][2]ComponentID { return s.edges }

// NumEdges returns |Es|.
func (s *System) NumEdges() int { return len(s.edges) }

// EdgeID returns the contiguous arc number of (i, j) ∈ Es, or -1 if the arc
// does not exist. Out-degrees are at most 2, so the scan is constant time.
func (s *System) EdgeID(i, j ComponentID) int {
	for oi, out := range s.Outlets[i] {
		if out == j {
			return int(s.outEdgeIDs[i][oi])
		}
	}
	return -1
}

// OutEdgeIDs returns the arc numbers leaving component i, parallel to
// Outlets[i]. The returned slice is shared; callers must not mutate it.
func (s *System) OutEdgeIDs(i ComponentID) []int32 { return s.outEdgeIDs[i] }

// InEdgeIDs returns the arc numbers entering component i, parallel to
// Inlets[i]. The returned slice is shared; callers must not mutate it.
func (s *System) InEdgeIDs(i ComponentID) []int32 { return s.inEdgeIDs[i] }

// CellIndexAt returns the position of vertex v within its component
// (Components[ComponentAt(v)].Cells[CellIndexAt(v)] == v), or -1 if v is
// unused. It is the O(1) counterpart of Component.IndexOf.
func (s *System) CellIndexAt(v grid.VertexID) int {
	if v < 0 || int(v) >= len(s.cellIndex) {
		return -1
	}
	return int(s.cellIndex[v])
}

// NextCellAt returns the cell following v on the way to its component's
// exit, or grid.None if v is the exit or unused — Component.Next in O(1).
func (s *System) NextCellAt(v grid.VertexID) grid.VertexID {
	if v < 0 || int(v) >= len(s.cellIndex) {
		return grid.None
	}
	i := s.cellIndex[v]
	if i < 0 {
		return grid.None
	}
	cells := s.Components[s.cellOf[v]].Cells
	if int(i)+1 >= len(cells) {
		return grid.None
	}
	return cells[i+1]
}

// Build assembles and validates a System from directed cell paths. Kind is
// inferred from the warehouse: a path containing shelf-access vertices is a
// shelving row, one containing stations is a station queue, otherwise a
// transport (mixing shelf-access and station cells is an error). Inlet and
// outlet arcs are wired automatically wherever the floorplan has an edge
// Exit(Cj) – Entry(Ci).
func Build(w *warehouse.Warehouse, paths [][]grid.VertexID) (*System, error) {
	s := &System{W: w}
	s.cellOf = make([]ComponentID, w.Graph.NumVertices())
	s.cellIndex = make([]int32, w.Graph.NumVertices())
	for i := range s.cellOf {
		s.cellOf[i] = -1
		s.cellIndex[i] = -1
	}
	for _, cells := range paths {
		if err := s.addComponent(cells); err != nil {
			return nil, err
		}
	}
	if err := s.wire(); err != nil {
		return nil, err
	}
	s.indexEdges()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	s.indexStock()
	return s, nil
}

// indexEdges assigns the contiguous arc numbering (the iteration order of
// Outlets) and the per-component in/out arc ID lists.
func (s *System) indexEdges() {
	n := len(s.Components)
	s.edges = s.edges[:0]
	s.outEdgeIDs = make([][]int32, n)
	s.inEdgeIDs = make([][]int32, n)
	for i, outs := range s.Outlets {
		for _, j := range outs {
			e := int32(len(s.edges))
			s.edges = append(s.edges, [2]ComponentID{ComponentID(i), j})
			s.outEdgeIDs[i] = append(s.outEdgeIDs[i], e)
			s.inEdgeIDs[j] = append(s.inEdgeIDs[j], e)
		}
	}
}

// indexStock precomputes the dense UNITS_AT table: stock is fixed for the
// lifetime of a System, and synthesis queries it millions of times.
func (s *System) indexStock() {
	p := s.W.NumProducts
	s.compStock = make([]int32, len(s.Components)*p)
	for _, c := range s.Components {
		base := int(c.ID) * p
		for _, v := range c.Cells {
			col := s.W.ShelfColumn(v)
			if col < 0 {
				continue
			}
			for k := 0; k < p; k++ {
				if row := s.W.Stock[k]; row != nil {
					s.compStock[base+k] += int32(row[col])
				}
			}
		}
	}
}

func (s *System) addComponent(cells []grid.VertexID) error {
	id := ComponentID(len(s.Components))
	if len(cells) == 0 {
		return fmt.Errorf("traffic: component %d has no cells", id)
	}
	hasShelf, hasStation := false, false
	for i, v := range cells {
		if v < 0 || int(v) >= s.W.Graph.NumVertices() {
			return fmt.Errorf("traffic: component %d cell %d out of range", id, v)
		}
		if s.cellOf[v] >= 0 {
			return fmt.Errorf("traffic: cell %d in both component %d and %d", v, s.cellOf[v], id)
		}
		if i > 0 && !s.W.Graph.Adjacent(cells[i-1], v) {
			return fmt.Errorf("traffic: component %d cells %d and %d not adjacent", id, cells[i-1], v)
		}
		s.cellOf[v] = id
		s.cellIndex[v] = int32(i)
		if s.W.ShelfColumn(v) >= 0 {
			hasShelf = true
		}
		if s.W.IsStation(v) {
			hasStation = true
		}
	}
	kind := Transport
	switch {
	case hasShelf && hasStation:
		return fmt.Errorf("traffic: component %d mixes shelf-access and station cells", id)
	case hasShelf:
		kind = ShelvingRow
	case hasStation:
		kind = StationQueue
	}
	s.Components = append(s.Components, &Component{ID: id, Kind: kind, Cells: append([]grid.VertexID(nil), cells...)})
	return nil
}

// wire connects components: Cj -> Ci wherever Exit(Cj) is floorplan-adjacent
// to Entry(Ci).
func (s *System) wire() error {
	n := len(s.Components)
	s.Outlets = make([][]ComponentID, n)
	s.Inlets = make([][]ComponentID, n)
	entryAt := make(map[grid.VertexID]ComponentID, n)
	for _, c := range s.Components {
		entryAt[c.Entry()] = c.ID
	}
	for _, c := range s.Components {
		exit := c.Exit()
		var nbrs []grid.VertexID
		nbrs = s.W.Graph.Neighbors(exit, nbrs)
		for _, v := range nbrs {
			j, ok := entryAt[v]
			if !ok || j == c.ID {
				continue
			}
			s.Outlets[c.ID] = append(s.Outlets[c.ID], j)
			s.Inlets[j] = append(s.Inlets[j], c.ID)
		}
	}
	return nil
}

// Validate enforces the composition rules of §IV-A:
//   - components are disjoint simple paths (checked during construction);
//   - each component has 1 or 2 inlets and 1 or 2 outlets;
//   - every shelf-access and station vertex is covered by a component;
//   - the traffic system graph is strongly connected.
func (s *System) Validate() error {
	if len(s.Components) == 0 {
		return fmt.Errorf("traffic: empty system")
	}
	for _, c := range s.Components {
		if n := len(s.Outlets[c.ID]); n < 1 || n > 2 {
			return fmt.Errorf("traffic: component %d (%s, exit cell %v) has %d outlets, want 1 or 2",
				c.ID, c.Kind, s.W.Graph.Coord(c.Exit()), n)
		}
		if n := len(s.Inlets[c.ID]); n < 1 || n > 2 {
			return fmt.Errorf("traffic: component %d (%s, entry cell %v) has %d inlets, want 1 or 2",
				c.ID, c.Kind, s.W.Graph.Coord(c.Entry()), n)
		}
	}
	for _, v := range s.W.ShelfAccess {
		if s.cellOf[v] < 0 {
			return fmt.Errorf("traffic: shelf-access vertex %v not covered by any component", s.W.Graph.Coord(v))
		}
	}
	for _, v := range s.W.Stations {
		if s.cellOf[v] < 0 {
			return fmt.Errorf("traffic: station vertex %v not covered by any component", s.W.Graph.Coord(v))
		}
	}
	if !s.stronglyConnected() {
		return fmt.Errorf("traffic: traffic system graph is not strongly connected")
	}
	return nil
}

// stronglyConnected checks Gs with a forward and a reverse reachability pass.
func (s *System) stronglyConnected() bool {
	n := len(s.Components)
	if n == 0 {
		return false
	}
	reach := func(adj [][]ComponentID) int {
		seen := make([]bool, n)
		seen[0] = true
		stack := []ComponentID{0}
		count := 1
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range adj[v] {
				if !seen[u] {
					seen[u] = true
					count++
					stack = append(stack, u)
				}
			}
		}
		return count
	}
	return reach(s.Outlets) == n && reach(s.Inlets) == n
}

// ShelvingRows returns the IDs of all shelving-row components.
func (s *System) ShelvingRows() []ComponentID { return s.byKind(ShelvingRow) }

// StationQueues returns the IDs of all station-queue components.
func (s *System) StationQueues() []ComponentID { return s.byKind(StationQueue) }

// Transports returns the IDs of all transport components.
func (s *System) Transports() []ComponentID { return s.byKind(Transport) }

func (s *System) byKind(k Kind) []ComponentID {
	var out []ComponentID
	for _, c := range s.Components {
		if c.Kind == k {
			out = append(out, c.ID)
		}
	}
	return out
}

// UnitsAt returns UNITS_AT(Ci, ρk): the stock of product k across the
// shelf-access cells of component ci.
func (s *System) UnitsAt(ci ComponentID, k warehouse.ProductID) int {
	if k < 0 || int(k) >= s.W.NumProducts {
		return 0
	}
	if s.compStock != nil {
		return int(s.compStock[int(ci)*s.W.NumProducts+int(k)])
	}
	total := 0
	for _, v := range s.Components[ci].Cells {
		total += s.W.UnitsAt(v, k)
	}
	return total
}

// StationsIn returns the station vertices inside component ci.
func (s *System) StationsIn(ci ComponentID) []grid.VertexID {
	var out []grid.VertexID
	for _, v := range s.Components[ci].Cells {
		if s.W.IsStation(v) {
			out = append(out, v)
		}
	}
	return out
}
