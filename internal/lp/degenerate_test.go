package lp

import (
	"math/big"
	"testing"
)

// TestBealeCyclingExample runs Beale's classic degenerate LP, on which
// Dantzig's rule cycles forever; Bland's rule must terminate at the optimum
// (z = 1/20 for the standard minimization form).
//
//	min  -3/4 x4 + 150 x5 - 1/50 x6 + 6 x7
//	s.t.  1/4 x4 -  60 x5 - 1/25 x6 + 9 x7 <= 0
//	      1/2 x4 -  90 x5 - 1/50 x6 + 3 x7 <= 0
//	                                     x6 <= 1
func TestBealeCyclingExample(t *testing.T) {
	p := &Problem{}
	x4 := p.AddVar("x4", new(big.Rat), nil)
	x5 := p.AddVar("x5", new(big.Rat), nil)
	x6 := p.AddVar("x6", new(big.Rat), nil)
	x7 := p.AddVar("x7", new(big.Rat), nil)
	p.AddConstraint("r1", []Term{
		{x4, big.NewRat(1, 4)}, {x5, big.NewRat(-60, 1)}, {x6, big.NewRat(-1, 25)}, {x7, big.NewRat(9, 1)},
	}, LE, new(big.Rat))
	p.AddConstraint("r2", []Term{
		{x4, big.NewRat(1, 2)}, {x5, big.NewRat(-90, 1)}, {x6, big.NewRat(-1, 50)}, {x7, big.NewRat(3, 1)},
	}, LE, new(big.Rat))
	p.AddConstraint("r3", []Term{{x6, big.NewRat(1, 1)}}, LE, big.NewRat(1, 1))
	p.SetObjective([]Term{
		{x4, big.NewRat(-3, 4)}, {x5, big.NewRat(150, 1)}, {x6, big.NewRat(-1, 50)}, {x7, big.NewRat(6, 1)},
	}, false)

	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if want := big.NewRat(-1, 20); sol.Objective.Cmp(want) != 0 {
		t.Errorf("objective = %s, want -1/20", sol.Objective)
	}
}

// TestKleeMintyCube: the n=3 Klee–Minty cube maximizes 2^2 x1 + 2 x2 + x3
// with optimum 5^3 = 125. Worst case for Dantzig pivoting; any correct
// simplex must still land on the optimum.
func TestKleeMintyCube(t *testing.T) {
	p := &Problem{}
	x1 := p.AddVar("x1", new(big.Rat), nil)
	x2 := p.AddVar("x2", new(big.Rat), nil)
	x3 := p.AddVar("x3", new(big.Rat), nil)
	p.AddConstraint("c1", []Term{T(x1, 1)}, LE, big.NewRat(5, 1))
	p.AddConstraint("c2", []Term{T(x1, 4), T(x2, 1)}, LE, big.NewRat(25, 1))
	p.AddConstraint("c3", []Term{T(x1, 8), T(x2, 4), T(x3, 1)}, LE, big.NewRat(125, 1))
	p.SetObjective([]Term{T(x1, 4), T(x2, 2), T(x3, 1)}, true)
	for name, solve := range map[string]func(*Problem) (*Solution, error){"exact": SolveLP, "float": SolveLPFloat} {
		sol, err := solve(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sol.Status != StatusOptimal || sol.Objective.Cmp(big.NewRat(125, 1)) != 0 {
			t.Errorf("%s: objective = %v (status %v), want 125", name, sol.Objective, sol.Status)
		}
	}
}
