package lp

import (
	"math/big"
	"testing"
)

func rat(n, d int64) *big.Rat { return big.NewRat(n, d) }

func TestSolveLPSimpleMax(t *testing.T) {
	// max 3x + 2y  s.t. x + y <= 4, x + 3y <= 6, x,y >= 0  -> (4,0), obj 12.
	p := &Problem{}
	x := p.AddVar("x", rat(0, 1), nil)
	y := p.AddVar("y", rat(0, 1), nil)
	p.AddConstraint("c1", []Term{T(x, 1), T(y, 1)}, LE, rat(4, 1))
	p.AddConstraint("c2", []Term{T(x, 1), T(y, 3)}, LE, rat(6, 1))
	p.SetObjective([]Term{T(x, 3), T(y, 2)}, true)
	for name, solve := range map[string]func(*Problem) (*Solution, error){"exact": SolveLP, "float": SolveLPFloat} {
		sol, err := solve(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sol.Status != StatusOptimal {
			t.Fatalf("%s: status = %v", name, sol.Status)
		}
		if sol.Objective.Cmp(rat(12, 1)) != 0 {
			t.Errorf("%s: objective = %s, want 12", name, sol.Objective)
		}
	}
}

func TestSolveLPFractionalOptimum(t *testing.T) {
	// max x + y  s.t. 2x + y <= 3, x + 2y <= 3  -> (1,1) obj 2 at a vertex;
	// perturb to get fractional: max 2x+y, 3x+y<=4, x+3y<=4 -> x=1, y=1 obj 3.
	// Use a genuinely fractional one: max y s.t. 2y <= 1 -> y = 1/2.
	p := &Problem{}
	y := p.AddVar("y", rat(0, 1), nil)
	p.AddConstraint("c", []Term{T(y, 2)}, LE, rat(1, 1))
	p.SetObjective([]Term{T(y, 1)}, true)
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Values[y].Cmp(rat(1, 2)) != 0 {
		t.Errorf("y = %s, want 1/2", sol.Values[y])
	}
}

func TestSolveLPInfeasible(t *testing.T) {
	p := &Problem{}
	x := p.AddVar("x", rat(0, 1), nil)
	p.AddConstraint("lo", []Term{T(x, 1)}, GE, rat(5, 1))
	p.AddConstraint("hi", []Term{T(x, 1)}, LE, rat(3, 1))
	for name, solve := range map[string]func(*Problem) (*Solution, error){"exact": SolveLP, "float": SolveLPFloat} {
		sol, err := solve(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sol.Status != StatusInfeasible {
			t.Errorf("%s: status = %v, want infeasible", name, sol.Status)
		}
	}
}

func TestSolveLPUnbounded(t *testing.T) {
	p := &Problem{}
	x := p.AddVar("x", rat(0, 1), nil)
	p.SetObjective([]Term{T(x, 1)}, true)
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusUnbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestSolveLPEqualityAndNegativeRHS(t *testing.T) {
	// x - y = -2, x + y = 4  -> x=1, y=3.
	p := &Problem{}
	x := p.AddVar("x", rat(0, 1), nil)
	y := p.AddVar("y", rat(0, 1), nil)
	p.AddConstraint("e1", []Term{T(x, 1), T(y, -1)}, EQ, rat(-2, 1))
	p.AddConstraint("e2", []Term{T(x, 1), T(y, 1)}, EQ, rat(4, 1))
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.Values[x].Cmp(rat(1, 1)) != 0 || sol.Values[y].Cmp(rat(3, 1)) != 0 {
		t.Errorf("(x,y) = (%s,%s), want (1,3)", sol.Values[x], sol.Values[y])
	}
}

func TestSolveLPFreeVariable(t *testing.T) {
	// min x s.t. x >= -7 with x free below: objective pushes to -7... x has
	// no declared lower bound; constraint provides it.
	p := &Problem{}
	x := p.AddVar("x", nil, nil)
	p.AddConstraint("c", []Term{T(x, 1)}, GE, rat(-7, 1))
	p.SetObjective([]Term{T(x, 1)}, false)
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || sol.Values[x].Cmp(rat(-7, 1)) != 0 {
		t.Errorf("x = %v (status %v), want -7", sol.Values, sol.Status)
	}
}

func TestSolveLPBounds(t *testing.T) {
	// Upper bound enforced via variable bound; shifted lower bound too.
	p := &Problem{}
	x := p.AddVar("x", rat(2, 1), rat(5, 1))
	p.SetObjective([]Term{T(x, 1)}, true)
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Values[x].Cmp(rat(5, 1)) != 0 {
		t.Errorf("x = %s, want 5", sol.Values[x])
	}
	p.SetObjective([]Term{T(x, 1)}, false)
	sol, err = SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Values[x].Cmp(rat(2, 1)) != 0 {
		t.Errorf("x = %s, want 2", sol.Values[x])
	}
}

func TestSolveLPFixedVariable(t *testing.T) {
	p := &Problem{}
	x := p.AddVar("x", rat(3, 1), rat(3, 1))
	y := p.AddVar("y", rat(0, 1), nil)
	p.AddConstraint("c", []Term{T(x, 1), T(y, 1)}, EQ, rat(10, 1))
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Values[x].Cmp(rat(3, 1)) != 0 || sol.Values[y].Cmp(rat(7, 1)) != 0 {
		t.Errorf("(x,y) = (%s,%s), want (3,7)", sol.Values[x], sol.Values[y])
	}
}

func TestSolveLPContradictoryBounds(t *testing.T) {
	p := &Problem{}
	p.AddVar("x", rat(5, 1), rat(3, 1))
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInfeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestSolveILPKnapsack(t *testing.T) {
	// Wolsey-style 0/1 knapsack: max 8a + 11b + 6c + 4d
	// s.t. 5a + 7b + 4c + 3d <= 14. The LP relaxation is fractional; the
	// integer optimum is {b, c, d} with value 21.
	for _, engine := range []Engine{EngineExact, EngineFloat} {
		p := &Problem{}
		a := p.AddIntVar("a", rat(0, 1), rat(1, 1))
		b := p.AddIntVar("b", rat(0, 1), rat(1, 1))
		c := p.AddIntVar("c", rat(0, 1), rat(1, 1))
		d := p.AddIntVar("d", rat(0, 1), rat(1, 1))
		p.AddConstraint("wt", []Term{T(a, 5), T(b, 7), T(c, 4), T(d, 3)}, LE, rat(14, 1))
		p.SetObjective([]Term{T(a, 8), T(b, 11), T(c, 6), T(d, 4)}, true)
		sol, err := SolveILP(p, ILPOptions{Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != StatusOptimal {
			t.Fatalf("engine %v: status = %v", engine, sol.Status)
		}
		if sol.Objective.Cmp(rat(21, 1)) != 0 {
			t.Errorf("engine %v: objective = %s, want 21", engine, sol.Objective)
		}
		if err := p.Check(sol.Values); err != nil {
			t.Errorf("engine %v: solution fails exact check: %v", engine, err)
		}
	}
}

func TestSolveILPFeasibilityFirstSolution(t *testing.T) {
	// Pure feasibility: 3x + 5y = 22, x,y in N -> (4,2) or (... only (4,2)).
	p := &Problem{}
	x := p.AddNat("x")
	y := p.AddNat("y")
	p.AddConstraint("c", []Term{T(x, 3), T(y, 5)}, EQ, rat(22, 1))
	sol, err := SolveILP(p, ILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if err := p.Check(sol.Values); err != nil {
		t.Errorf("solution invalid: %v", err)
	}
	got := new(big.Rat).Add(new(big.Rat).Mul(rat(3, 1), sol.Values[x]), new(big.Rat).Mul(rat(5, 1), sol.Values[y]))
	if got.Cmp(rat(22, 1)) != 0 {
		t.Errorf("3x+5y = %s, want 22", got)
	}
}

func TestSolveILPInfeasible(t *testing.T) {
	// 2x + 4y = 7 has no integer solution (parity).
	p := &Problem{}
	x := p.AddNat("x")
	y := p.AddNat("y")
	p.AddConstraint("c", []Term{T(x, 2), T(y, 4)}, EQ, rat(7, 1))
	p.AddConstraint("boundX", []Term{T(x, 1)}, LE, rat(10, 1))
	p.AddConstraint("boundY", []Term{T(y, 1)}, LE, rat(10, 1))
	sol, err := SolveILP(p, ILPOptions{Engine: EngineExact})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInfeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestSolveILPNodeLimit(t *testing.T) {
	p := &Problem{}
	vars := make([]VarID, 12)
	terms := make([]Term, 12)
	for i := range vars {
		vars[i] = p.AddIntVar("x", rat(0, 1), rat(1, 1))
		terms[i] = T(vars[i], int64(2*i+3))
	}
	// An equality unlikely to be hit immediately forces branching.
	p.AddConstraint("c", terms, EQ, rat(1, 1)) // infeasible: min positive term is 3
	sol, err := SolveILP(p, ILPOptions{Engine: EngineExact, MaxNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusLimit && sol.Status != StatusInfeasible {
		t.Errorf("status = %v, want limit or infeasible", sol.Status)
	}
}

func TestCheckRejects(t *testing.T) {
	p := &Problem{}
	x := p.AddIntVar("x", rat(0, 1), rat(5, 1))
	p.AddConstraint("c", []Term{T(x, 2)}, LE, rat(6, 1))
	cases := []struct {
		name string
		vals []*big.Rat
	}{
		{"tooFew", nil},
		{"belowLower", []*big.Rat{rat(-1, 1)}},
		{"aboveUpper", []*big.Rat{rat(6, 1)}},
		{"fractional", []*big.Rat{rat(1, 2)}},
		{"violates", []*big.Rat{rat(4, 1)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := p.Check(tc.vals); err == nil {
				t.Error("Check accepted invalid assignment")
			}
		})
	}
	if err := p.Check([]*big.Rat{rat(3, 1)}); err != nil {
		t.Errorf("Check rejected valid assignment: %v", err)
	}
}

func TestRatFloorAndRound(t *testing.T) {
	cases := []struct {
		in         *big.Rat
		floor, rnd int64
	}{
		{rat(7, 2), 3, 4},    // 3.5
		{rat(-7, 2), -4, -3}, // -3.5 rounds to -3 (floor -4 + frac 1/2 -> up)
		{rat(5, 1), 5, 5},
		{rat(-5, 1), -5, -5},
		{rat(1, 3), 0, 0},
		{rat(-1, 3), -1, 0},
	}
	for _, tc := range cases {
		if got := ratFloor(tc.in); got.Cmp(rat(tc.floor, 1)) != 0 {
			t.Errorf("ratFloor(%s) = %s, want %d", tc.in, got, tc.floor)
		}
		if got := ratRound(tc.in); got.Cmp(rat(tc.rnd, 1)) != 0 {
			t.Errorf("ratRound(%s) = %s, want %d", tc.in, got, tc.rnd)
		}
	}
}

func TestProblemString(t *testing.T) {
	p := &Problem{}
	x := p.AddNat("x")
	p.AddConstraint("c", []Term{T(x, 2)}, LE, rat(6, 1))
	p.SetObjective([]Term{T(x, 1)}, true)
	s := p.String()
	for _, want := range []string{"max:", "c:", "2*x", "<= 6", "x in [0, +inf] int"} {
		if !contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
