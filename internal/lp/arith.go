package lp

import (
	"math"
	"math/big"
)

// arith abstracts the field the simplex pivots over, so one implementation
// serves the exact rational engines (big.Rat, and the int64 fast path in
// rat64.go) and the float64 engine.
type arith[T any] interface {
	add(a, b T) T
	sub(a, b T) T
	mul(a, b T) T
	div(a, b T) T
	neg(a T) T
	// sign returns -1, 0 or +1; the float implementation applies a tolerance.
	sign(a T) int
	// cmp returns the sign of a-b under the same tolerance regime as sign.
	cmp(a, b T) int
	zero() T
	one() T
	fromRat(r *big.Rat) T
	toRat(a T) *big.Rat
	// setRat writes a into dst without allocating a new big.Rat, so hot
	// paths (branch-and-bound relaxation extraction) can reuse storage.
	setRat(dst *big.Rat, a T)
	// isInt reports whether a is integral, under the same tolerance regime
	// as setRat (the float engine snaps near-integers).
	isInt(a T) bool
}

// ratArith is exact arithmetic over *big.Rat. Values are treated as
// immutable; every operation allocates. It is the promotion target when the
// rat64 engine overflows machine words.
type ratArith struct{}

func (ratArith) add(a, b *big.Rat) *big.Rat { return new(big.Rat).Add(a, b) }
func (ratArith) sub(a, b *big.Rat) *big.Rat { return new(big.Rat).Sub(a, b) }
func (ratArith) mul(a, b *big.Rat) *big.Rat { return new(big.Rat).Mul(a, b) }
func (ratArith) div(a, b *big.Rat) *big.Rat { return new(big.Rat).Quo(a, b) }
func (ratArith) neg(a *big.Rat) *big.Rat    { return new(big.Rat).Neg(a) }
func (ratArith) sign(a *big.Rat) int        { return a.Sign() }
func (ratArith) cmp(a, b *big.Rat) int      { return a.Cmp(b) }
func (ratArith) zero() *big.Rat             { return new(big.Rat) }
func (ratArith) one() *big.Rat              { return big.NewRat(1, 1) }
func (ratArith) fromRat(r *big.Rat) *big.Rat {
	return new(big.Rat).Set(r)
}
func (ratArith) toRat(a *big.Rat) *big.Rat       { return new(big.Rat).Set(a) }
func (ratArith) setRat(dst *big.Rat, a *big.Rat) { dst.Set(a) }
func (ratArith) isInt(a *big.Rat) bool           { return a.IsInt() }

// floatArith is float64 arithmetic with an absolute tolerance used by sign.
type floatArith struct{ eps float64 }

func (floatArith) add(a, b float64) float64 { return a + b }
func (floatArith) sub(a, b float64) float64 { return a - b }
func (floatArith) mul(a, b float64) float64 { return a * b }
func (floatArith) div(a, b float64) float64 { return a / b }
func (floatArith) neg(a float64) float64    { return -a }
func (f floatArith) sign(a float64) int {
	if a > f.eps {
		return 1
	}
	if a < -f.eps {
		return -1
	}
	return 0
}
func (f floatArith) cmp(a, b float64) int { return f.sign(a - b) }
func (floatArith) zero() float64          { return 0 }
func (floatArith) one() float64           { return 1 }
func (floatArith) fromRat(r *big.Rat) float64 {
	v, _ := r.Float64()
	return v
}
func (fa floatArith) toRat(a float64) *big.Rat {
	out := new(big.Rat)
	fa.setRat(out, a)
	return out
}
func (floatArith) setRat(dst *big.Rat, a float64) {
	// Round near-integers exactly so integral solutions survive conversion.
	if r := math.Round(a); math.Abs(a-r) < 1e-7 && math.Abs(r) < 1e15 {
		dst.SetFrac64(int64(r), 1)
		return
	}
	dst.SetFloat64(a)
}

// isInt matches setRat's snapping: a float counts as integral exactly when
// setRat would emit an integer for it.
func (floatArith) isInt(a float64) bool {
	return math.Abs(a-math.Round(a)) < 1e-7 && math.Abs(a) < 1e15
}

// defaultEps is the float engine's zero tolerance.
const defaultEps = 1e-9
