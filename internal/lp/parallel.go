package lp

import (
	"fmt"
	"math/big"
	"runtime"
	"sync"
	"sync/atomic"
)

// Frontier-decomposed branch and bound.
//
// The search is defined — for EVERY caller, sequential or parallel — as a
// series of subtree walks over deterministic frontier fences: a walk stops
// after bbFrontierNodes nodes (when at least two open subtrees remain on
// its stack) and hands the remainder of its stack back as independent
// subtree tasks, ordered top-of-stack first so that processing them in
// order IS the sequential DFS continuation. Every task restarts cold
// (dropWarm at the subtree root), which makes a task's pivot sequence a
// pure function of the pristine constraint system and its bound chain —
// independent of which arena runs it. That is the whole bit-identity
// argument: tasks are arena-portable by construction, so the only thing a
// parallel run has to get right is the ORDER in which task outcomes are
// folded and the incumbent/budget state each walk was launched under.
//
// The executor keeps the sequential fold as the single source of truth.
// Workers claim tasks ahead of the commit cursor and run them under a
// GUESS — a snapshot of the fold (incumbent, node and work totals) at
// claim time. At commit time, in task order, each speculative result is
// validated against the now-authoritative fold: the incumbent must not
// have moved (pruning decisions depended on it) and the walk must not have
// been shaped by a budget cap whose true value differs from the guessed
// one. Valid results commit as-is; invalid ones are redone synchronously
// on the caller's arena with exact inputs, which is always valid. The
// worker count therefore changes only which results arrive pre-computed,
// never what is committed — workers=N is bit-identical to workers=1 and to
// the plain sequential loop.
//
// Worker panics are recovered into an evFailed result, which is never
// valid; the redo re-raises any deterministic panic (e.g. rat64 overflow)
// on the caller goroutine, where the usual promote() machinery handles it.

// bbOpenBranchMax caps how many times the search may branch into an
// unboxed (open) side of one integer variable before rejecting the domain
// with ErrUnboundedIntDomain. Bounded instances branch into an open side
// at most a handful of times (the very next relaxation pins the value);
// only the runaway march of an integer-infeasible one-sided instance
// accumulates a deep same-direction chain.
var bbOpenBranchMax = 64

// openPushes counts the chain's bound tightenings of the given side on
// variable v — the open-march depth the guard compares against.
func openPushes(nd *boundDiff, v int, upper bool) int {
	n := 0
	for cur := nd; cur != nil; cur = cur.parent {
		if cur.v == v && cur.upper == upper {
			n++
		}
	}
	return n
}

// bbFrontierNodes is the frontier fence: a subtree walk stops after this
// many nodes (when ≥ 2 open subtrees remain on its stack) and hands the
// remaining stack back as tasks. The fence fires for every caller, so the
// task decomposition — and therefore the answer — never depends on the
// worker count. Each task restarts its node cold (arena-portable), so the
// fence cadence is also the sequential path's overhead knob: trees below
// it never fence (and pay nothing beyond the walk bookkeeping), and at 256
// the cold restarts stay under a couple percent of a subtree's work while
// big trees still shed hundreds of tasks. A var, not a const, so tests can
// lower it to force decomposition on small corpora.
var bbFrontierNodes = 256

// searchTokens caps the extra within-instance search workers alive in the
// whole process. Nested parallelism — a solverpool of concurrent solves,
// each with SearchParallel > 1 — acquires from this one pool, so the
// goroutine count stays bounded by it no matter how the knobs multiply.
// Acquisition is non-blocking: a solve that gets no token simply runs its
// frontier sequentially, which by construction returns the same answer.
// The floor of two keeps the machinery exercised even on one-CPU runners.
var searchTokens = make(chan struct{}, max(2, runtime.GOMAXPROCS(0)))

// bbEvent classifies how a subtree walk ended.
type bbEvent int

const (
	evDone      bbEvent = iota // subtree exhausted
	evFrontier                 // fence hit: remaining stack returned as tasks
	evLimit                    // node cap (byWork=false) or work budget (byWork=true)
	evCanceled                 // cancellation observed by a work tick
	evUnbounded                // a relaxation is unbounded
	evSolved                   // feasibility problem: first integral solution
	evAborted                  // abort flag observed; speculative run obsolete
	evPreempt                  // not run: claim-time totals already exhausted a budget
	evFailed                   // walk panicked on a worker; the redo re-raises it
)

// walkIn are the launch inputs of one subtree walk. For a caller-arena walk
// they come from the authoritative fold; for a speculative worker walk,
// from a claim-time guess that commit-time validation re-checks.
type walkIn struct {
	root    *boundDiff
	best    *Solution
	bestObj *big.Rat
	nodeCap int          // nodes this walk may visit before evLimit
	remWork int64        // work this walk may charge before evLimit (0 = unlimited)
	fence   bool         // stop at the frontier fence and decompose
	cold    bool         // dropWarm first (every task root; not the tree root)
	abort   *atomic.Bool // optional: checked once per node pop
}

// walkOut is the outcome of one subtree walk. best/bestObj carry the walk's
// final incumbent (the input one unless improved — pointer identity is what
// commit validation relies on), nodes/work its deterministic totals.
type walkOut struct {
	event   bbEvent
	byWork  bool // evLimit: work budget rather than node cap
	best    *Solution
	bestObj *big.Rat
	sol     *Solution    // evSolved: first-win feasibility solution
	tasks   []*boundDiff // evFrontier: continuation subtrees, DFS order
	nodes   int
	work    int64
	err     error
}

// bbWalker owns one arena plus the per-node scratch of the sequential
// search (effective bounds, chain replay stack, relaxation storage). The
// caller's walker doubles as the redo engine; each worker has its own.
type bbWalker[T any, A arith[T]] struct {
	p       *Problem
	tb      arena[T]
	ar      A
	certify func() bool
	loEff   []*big.Rat
	hiEff   []*big.Rat
	chain   []*boundDiff
	relax   []*big.Rat
	objTmp  *big.Rat
	mulTmp  *big.Rat
	stack   []*boundDiff
}

func newWalker[T any, A arith[T]](p *Problem, tb arena[T], ar A, certify func() bool) *bbWalker[T, A] {
	nv := len(p.Vars)
	w := &bbWalker[T, A]{
		p: p, tb: tb, ar: ar, certify: certify,
		loEff: make([]*big.Rat, nv), hiEff: make([]*big.Rat, nv),
		relax:  make([]*big.Rat, nv),
		objTmp: new(big.Rat), mulTmp: new(big.Rat),
		stack: make([]*boundDiff, 0, 64),
	}
	for i := range w.relax {
		w.relax[i] = new(big.Rat)
	}
	return w
}

// run executes one subtree walk: the node loop of the sequential search,
// verbatim, plus the three pre-pop checks (abort, node cap, frontier fence)
// in that order. The node cap replays the sequential `nodes >= maxNodes`
// check exactly — the cap is the caller's remaining allowance — and budget
// exhaustion inside solveNode surfaces as evLimit/evCanceled just as the
// sequential loop's break-and-map did.
func (w *bbWalker[T, A]) run(in walkIn) walkOut {
	if in.cold {
		w.tb.dropWarm()
	}
	if in.remWork > 0 {
		w.tb.setWorkBudget(w.tb.workSpent() + in.remWork)
	} else {
		w.tb.setWorkBudget(0)
	}
	start := w.tb.workSpent()
	out := walkOut{best: in.best, bestObj: in.bestObj}
	finish := func(ev bbEvent) walkOut {
		out.event = ev
		out.work = w.tb.workSpent() - start
		return out
	}
	w.stack = append(w.stack[:0], in.root)
	for len(w.stack) > 0 {
		if in.abort != nil && in.abort.Load() {
			return finish(evAborted)
		}
		if out.nodes >= in.nodeCap {
			return finish(evLimit)
		}
		if in.fence && out.nodes >= bbFrontierNodes && len(w.stack) >= 2 {
			ts := make([]*boundDiff, len(w.stack))
			for i := range ts {
				ts[i] = w.stack[len(w.stack)-1-i] // top first: DFS order
			}
			out.tasks = ts
			return finish(evFrontier)
		}
		out.nodes++
		nd := w.stack[len(w.stack)-1]
		w.stack = w.stack[:len(w.stack)-1]
		w.chain = nd.materialize(w.p, w.loEff, w.hiEff, w.chain)
		switch w.tb.solveNode(w.loEff, w.hiEff) {
		case StatusInfeasible:
			continue
		case StatusUnbounded:
			return finish(evUnbounded)
		case StatusLimit:
			if w.tb.canceled() {
				return finish(evCanceled)
			}
			out.byWork = true
			return finish(evLimit)
		}
		// Bound: prune if the relaxation cannot beat the incumbent. The
		// objective is evaluated in the arena's own field — per-node work
		// stays allocation-free until a candidate or branch value is needed.
		if out.bestObj != nil && len(w.p.Objective) > 0 {
			w.ar.setRat(w.objTmp, w.tb.objectiveValue())
			if w.p.Maximize {
				w.objTmp.Neg(w.objTmp) // cost is the minimization form
			}
			if !betterOrEqual(w.p, w.objTmp, out.bestObj) {
				continue
			}
		}
		// Hybrid certification: from here on the node's VALUES matter (the
		// branching variable, the candidate extraction), not just its
		// objective, so a warm-path search must prove the relaxation optimum
		// unique — the exact-only search would then have produced the very
		// same values. An uncertifiable node aborts the whole hybrid tree.
		if w.certify != nil && !w.certify() {
			out.err = errHybridBail
			return finish(evFailed)
		}
		// Find a fractional integer variable to branch on.
		branch := w.tb.firstFractionalInt()
		if branch < 0 {
			// Integral (by the relaxation's lights): round and verify exactly.
			w.tb.extractInto(w.relax)
			vals := roundIntegers(w.p, w.relax)
			if err := w.p.Check(vals); err != nil {
				// Float noise produced a bogus candidate; branch on the
				// variable with the largest rounding error to make progress.
				branch = worstRounded(w.p, w.relax)
				if branch < 0 {
					continue // nothing to branch on; abandon this node
				}
			} else {
				cand := &Solution{Status: StatusOptimal, Values: vals}
				if len(w.p.Objective) == 0 {
					out.sol = cand
					return finish(evSolved) // feasibility: first solution wins
				}
				cand.Objective = evalObjective(w.p, vals)
				if out.bestObj == nil || betterOrEqual(w.p, cand.Objective, out.bestObj) {
					out.best, out.bestObj = cand, cand.Objective
				}
				continue
			}
		}
		// Open-march guard: a branch that tightens INTO a bound side left
		// open (neither declared nor derivable by integerBox) is how an
		// integer-infeasible instance with feasible relaxations runs
		// forever — the chain pushes the open direction indefinitely. A
		// boxed side bounds its own branch count, so the guard counts only
		// open-direction pushes on this variable; past the cap the domain
		// is rejected with the typed error. The count is a pure function
		// of the node's bound chain, so the verdict lands on the same node
		// in every representation, engine, and worker schedule.
		if w.hiEff[branch] == nil && openPushes(nd, branch, false) >= bbOpenBranchMax {
			out.err = fmt.Errorf("%w: branching on %s marched %d steps into its open upper side", ErrUnboundedIntDomain, w.p.Vars[branch].Name, bbOpenBranchMax)
			return finish(evFailed)
		}
		if w.loEff[branch] == nil && openPushes(nd, branch, true) >= bbOpenBranchMax {
			out.err = fmt.Errorf("%w: branching on %s marched %d steps into its open lower side", ErrUnboundedIntDomain, w.p.Vars[branch].Name, bbOpenBranchMax)
			return finish(evFailed)
		}
		// Branch on floor/ceil of the fractional value: each child is one
		// bound diff off this node. Explore the floor side first (LIFO:
		// push ceil first).
		w.ar.setRat(w.mulTmp, w.tb.value(branch))
		fl := ratFloor(w.mulTmp)
		ceil := new(big.Rat).Add(fl, big.NewRat(1, 1))
		w.stack = append(w.stack, nd.push(branch, false, ceil), nd.push(branch, true, fl))
	}
	return finish(evDone)
}

// bbFold is the authoritative sequential state of the search: the fold of
// every committed walk, in task order. It is only ever mutated by the
// commit loop (under the executor's lock when workers exist).
type bbFold struct {
	best      *Solution
	bestObj   *big.Rat
	nodes     int
	work      int64
	canceled  bool
	limit     bool
	unbounded bool
	solved    *Solution
	err       error
}

func (f *bbFold) terminal() bool {
	return f.err != nil || f.canceled || f.limit || f.unbounded || f.solved != nil
}

func (f *bbFold) absorb(res walkOut) {
	f.nodes += res.nodes
	f.work += res.work
	f.best, f.bestObj = res.best, res.bestObj
	switch res.event {
	case evCanceled:
		f.canceled = true
	case evLimit:
		f.limit = true
	case evUnbounded:
		f.unbounded = true
	case evSolved:
		f.solved = res.sol
	}
	if res.err != nil {
		f.err = res.err
	}
}

// preempt replays the sequential search's between-node budget checks from
// the fold totals alone, without launching a walk: the node cap fires
// before a pop (plain limit), and an exhausted work budget surfaces through
// the next solve's first tick — which checks cancellation first, exactly
// like exhausted(). Reports whether the search must stop here.
func (f *bbFold) preempt(maxNodes int, maxWork int64, cancel <-chan struct{}) bool {
	if f.terminal() {
		return true
	}
	if f.nodes >= maxNodes {
		f.limit = true
		return true
	}
	if maxWork > 0 && f.work >= maxWork {
		select {
		case <-cancel:
			f.canceled = true
		default:
			f.limit = true
		}
		return true
	}
	return false
}

// solution maps the final fold to the sequential search's return, in its
// precedence order: error, feasibility first-win, unbounded, canceled
// (which trumps any incumbent), incumbent, budget limit, infeasible.
func (f *bbFold) solution(arenaCanceled bool) (*Solution, error) {
	if f.err != nil {
		return nil, f.err
	}
	if f.solved != nil {
		return f.solved, nil
	}
	if f.unbounded {
		return &Solution{Status: StatusUnbounded}, nil
	}
	if f.canceled || arenaCanceled {
		// Cancellation trumps any incumbent: the caller walked away from
		// the answer, so reporting a half-searched best would be
		// indistinguishable from a completed solve.
		return &Solution{Status: StatusCanceled}, nil
	}
	if f.best != nil {
		return f.best, nil
	}
	if f.limit {
		return &Solution{Status: StatusLimit}, nil
	}
	return &Solution{Status: StatusInfeasible}, nil
}

func remWorkOf(maxWork, spent int64) int64 {
	if maxWork > 0 {
		return maxWork - spent
	}
	return 0
}

// bbGuess is the fold snapshot a speculative walk launched under.
type bbGuess struct {
	best    *Solution
	bestObj *big.Rat
	nodes   int
	work    int64
}

// bbTask is one frontier subtree awaiting execution, plus its speculation
// state. All fields are guarded by the executor's lock except abort, which
// the walker reads lock-free.
type bbTask struct {
	root    *boundDiff
	claimed bool
	done    bool
	guess   bbGuess
	res     walkOut
	abort   *atomic.Bool
}

// validCommit reports whether a speculative result is exactly what a
// caller-arena walk launched from the current fold would produce, so it
// may commit without being rerun. The conditions are conservative: any
// doubt costs one synchronous redo, never correctness.
func validCommit(t *bbTask, fold *bbFold, maxNodes int, maxWork int64) bool {
	res := &t.res
	switch res.event {
	case evCanceled:
		// Cancellation is global and sticky: once observed, the search
		// ends with StatusCanceled regardless of scheduling, and the
		// sequential run would have observed it too (within its next tick).
		return true
	case evAborted, evPreempt, evFailed:
		return false
	}
	if t.guess.best != fold.best {
		return false // incumbent moved since the snapshot: pruning differed
	}
	capN := maxNodes - fold.nodes
	switch res.event {
	case evFrontier:
		// The fence check runs strictly after the node-cap check, so a
		// fence outcome is only real if the true cap was not yet reached.
		if res.nodes >= capN {
			return false
		}
	case evLimit:
		if res.byWork {
			// A work-budget stop is shaped by the exact remaining budget;
			// it replays identically iff the guessed spend was exact and
			// the node cap could not have fired first.
			return maxWork > 0 && t.guess.work == fold.work && res.nodes <= capN
		}
		if t.guess.nodes != fold.nodes {
			return false // the node cap would have fired elsewhere
		}
	default: // evDone, evSolved, evUnbounded
		if res.nodes > capN {
			return false
		}
	}
	// The work budget must never have been binding: every tick compares
	// cumulative spend ≥ budget, and a trailing tick sees the walk's final
	// spend, so equality already flips a verdict — hence strictly less.
	if maxWork > 0 && res.work >= maxWork-fold.work {
		return false
	}
	return true
}

// insertAt splices sub into s before index at, preserving order.
func insertAt[E any](s []E, at int, sub []E) []E {
	s = append(s, sub...)
	copy(s[at+len(sub):], s[at:])
	copy(s[at:], sub)
	return s
}

// runRecover runs one speculative walk, converting any panic into an
// evFailed result. The commit loop's redo then re-raises deterministic
// panics (rat64 overflow) on the caller goroutine, where promote() catches
// them exactly as in a sequential run.
func runRecover[T any, A arith[T]](w *bbWalker[T, A], in walkIn) (out walkOut) {
	defer func() {
		if r := recover(); r != nil {
			out = walkOut{event: evFailed}
		}
	}()
	return w.run(in)
}

// bbSearch runs the frontier-decomposed branch and bound: a fenced prefix
// walk on the caller's arena, then — if the prefix fenced — the ordered
// commit loop over the frontier tasks, with up to SearchParallel−1 extra
// workers speculating ahead when the caller opted in, an arena factory
// exists, and the process-wide token pool has capacity.
func bbSearch[T any, A arith[T]](p *Problem, tb arena[T], ar A, opts ILPOptions, hooks bbHooks[T], maxNodes int, rootChain *boundDiff) (*Solution, error) {
	w := newWalker(p, tb, ar, hooks.certify)
	fold := new(bbFold)
	// The fold's committed work total is the deterministic quantity MaxWork
	// is charged against (bit-identical at every worker count); metering it
	// once per search keeps the process meter representation-independent.
	defer func() { meterWork(fold.work) }()
	first := w.run(walkIn{root: rootChain, nodeCap: maxNodes, remWork: opts.MaxWork, fence: true})
	fold.absorb(first)
	if first.event != evFrontier || fold.terminal() {
		return fold.solution(tb.canceled())
	}
	workers := 0
	// The hybrid replay must stay on one certified arena; its exact
	// fallback re-enters through SolveILP and inherits the knob there.
	if opts.SearchParallel > 1 && hooks.spawn != nil && hooks.certify == nil {
		workers = opts.SearchParallel - 1
	}
	acquired := 0
	for i := 0; i < workers; i++ {
		select {
		case searchTokens <- struct{}{}:
			acquired++
		default:
		}
	}
	defer func() {
		for ; acquired > 0; acquired-- {
			<-searchTokens
		}
	}()
	return bbExec(w, fold, first.tasks, opts, hooks, maxNodes, acquired)
}

// bbExec is the ordered commit loop. The caller's goroutine owns the
// cursor: it commits task results in order, runs the in-order task itself
// whenever no worker has claimed it, validates speculative results against
// the authoritative fold, and redoes invalid ones synchronously. Workers
// claim the first unclaimed task at or after the cursor and run it under a
// claim-time guess. Frontier subtasks enter the queue at the commit cursor,
// which is exactly where the sequential DFS would continue.
func bbExec[T any, A arith[T]](w *bbWalker[T, A], fold *bbFold, roots []*boundDiff, opts ILPOptions, hooks bbHooks[T], maxNodes, workers int) (*Solution, error) {
	tasks := make([]*bbTask, len(roots))
	for i, r := range roots {
		tasks[i] = &bbTask{root: r}
	}
	var (
		mu       sync.Mutex
		cv       = sync.NewCond(&mu)
		cursor   int
		shutdown bool
		wg       sync.WaitGroup
	)

	worker := func() {
		defer wg.Done()
		var cur *bbTask
		defer func() {
			if r := recover(); r != nil {
				// Arena construction or bookkeeping failed: surrender any
				// claimed task so the commit loop redoes it on the caller
				// (re-raising a deterministic panic there), then retire.
				mu.Lock()
				if cur != nil && !cur.done {
					cur.res = walkOut{event: evFailed}
					cur.done = true
				}
				cv.Broadcast()
				mu.Unlock()
			}
		}()
		wtb := hooks.spawn()
		wtb.setCancel(opts.Cancel)
		ww := newWalker(w.p, wtb, w.ar, nil)
		mu.Lock()
		defer mu.Unlock()
		for {
			if shutdown {
				return
			}
			cur = nil
			for i := cursor; i < len(tasks); i++ {
				if !tasks[i].claimed {
					cur = tasks[i]
					break
				}
			}
			if cur == nil {
				cv.Wait()
				continue
			}
			cur.claimed = true
			g := bbGuess{best: fold.best, bestObj: fold.bestObj, nodes: fold.nodes, work: fold.work}
			cur.guess = g
			if g.nodes >= maxNodes || (opts.MaxWork > 0 && g.work >= opts.MaxWork) {
				// The totals known at claim time already exhaust a budget:
				// commit-time preemption is certain, so don't burn a walk.
				cur.res = walkOut{event: evPreempt}
				cur.done = true
				cv.Broadcast()
				continue
			}
			ab := new(atomic.Bool)
			cur.abort = ab
			mu.Unlock()
			res := runRecover(ww, walkIn{
				root: cur.root, best: g.best, bestObj: g.bestObj,
				nodeCap: maxNodes - g.nodes, remWork: remWorkOf(opts.MaxWork, g.work),
				fence: true, cold: true, abort: ab,
			})
			mu.Lock()
			cur.res = res
			cur.done = true
			cv.Broadcast()
		}
	}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go worker()
	}
	defer func() {
		// Runs on normal return AND on a re-raised redo panic: stop the
		// fleet, abort in-flight walks, and wait so no goroutine outlives
		// the solve (the token pool accounting depends on it).
		mu.Lock()
		shutdown = true
		for _, t := range tasks {
			if t.abort != nil {
				t.abort.Store(true)
			}
		}
		cv.Broadcast()
		mu.Unlock()
		wg.Wait()
	}()

	mu.Lock()
	for cursor < len(tasks) {
		if fold.preempt(maxNodes, opts.MaxWork, opts.Cancel) {
			break
		}
		t := tasks[cursor]
		var res walkOut
		switch {
		case !t.claimed:
			// The in-order task is unclaimed: run it here, on the caller's
			// arena, under the authoritative fold — valid by construction.
			t.claimed = true
			in := walkIn{
				root: t.root, best: fold.best, bestObj: fold.bestObj,
				nodeCap: maxNodes - fold.nodes, remWork: remWorkOf(opts.MaxWork, fold.work),
				fence: true, cold: true,
			}
			mu.Unlock()
			res = w.run(in)
			mu.Lock()
		case !t.done:
			cv.Wait()
			continue
		case validCommit(t, fold, maxNodes, opts.MaxWork):
			res = t.res
		default:
			// Speculation missed: redo synchronously with exact inputs.
			in := walkIn{
				root: t.root, best: fold.best, bestObj: fold.bestObj,
				nodeCap: maxNodes - fold.nodes, remWork: remWorkOf(opts.MaxWork, fold.work),
				fence: true, cold: true,
			}
			mu.Unlock()
			res = w.run(in)
			mu.Lock()
		}
		fold.absorb(res)
		cursor++
		if fold.terminal() {
			break
		}
		if res.event == evFrontier {
			tasks = insertAt(tasks, cursor, func() []*bbTask {
				sub := make([]*bbTask, len(res.tasks))
				for i, r := range res.tasks {
					sub[i] = &bbTask{root: r}
				}
				return sub
			}())
			cv.Broadcast()
		}
	}
	mu.Unlock()
	return fold.solution(w.tb.canceled())
}
