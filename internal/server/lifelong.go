package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/server/faultinject"
	"repro/wsp"
)

// POST /v1/lifelong streams a lifelong run as NDJSON: one "epoch" line per
// completed epoch (flushed immediately, so clients watch the run live), a
// terminal "report" line on success, or an in-band "error" line when the
// run fails after streaming began. Failures before the first epoch use the
// normal error envelope with the taxonomy status (499/504/422/...); once a
// 200 status line is committed, errors can only travel in-band — the code
// field carries the same taxonomy either way, and the outcome counters are
// bumped identically via countStatus.
//
// The endpoint is admission-controlled and charged like /v1/sweep: one
// solve cost per batch, since each batch release forces at least a
// re-planning epoch. Draining refuses new runs but lets a streaming run
// finish — Drain waits for handlers without cancelling request contexts.

// LifelongBatchSpec is one batch of a /v1/lifelong request: a release time
// plus demand as either a uniform total (units, spread over the map's
// products like InstanceSpec.Units) or an explicit per-product vector.
type LifelongBatchSpec struct {
	Release    int   `json:"release"`
	Units      int   `json:"units,omitempty"`
	PerProduct []int `json:"per_product,omitempty"`
}

// LifelongRequest is the /v1/lifelong body. The instance spec contributes
// the warehouse and horizon only; demand arrives exclusively in batches,
// so a top-level units field is rejected.
type LifelongRequest struct {
	InstanceSpec
	Batches []LifelongBatchSpec `json:"batches"`
	SolveOverrides
}

// LifelongEpochLine is one streamed NDJSON epoch record.
type LifelongEpochLine struct {
	Type        string `json:"type"` // "epoch"
	Epoch       int    `json:"epoch"`
	Start       int    `json:"start"`
	Horizon     int    `json:"horizon"`
	Changeover  int    `json:"changeover"`
	ServicedAt  int    `json:"serviced_at"`
	End         int    `json:"end"`
	Agents      int    `json:"agents"`
	Delivered   []int  `json:"delivered"`
	Outstanding []int  `json:"outstanding"`
	// Throughput is the cumulative units-per-window series over global
	// time (window = one cycle time).
	Throughput []int `json:"throughput"`
}

// LifelongBatchResult is one batch's fate in the terminal report line.
type LifelongBatchResult struct {
	Release   int `json:"release"`
	Units     int `json:"units"`
	Completed int `json:"completed"` // -1 if never delivered in full
}

// LifelongReportLine terminates a successful stream.
type LifelongReportLine struct {
	Type         string                `json:"type"` // "report"
	OK           bool                  `json:"ok"`
	Degraded     bool                  `json:"degraded"`
	DegradeSteps []string              `json:"degrade_steps,omitempty"`
	Strategy     string                `json:"strategy"`
	Epochs       int                   `json:"epochs"`
	PeakAgents   int                   `json:"peak_agents"`
	Delivered    []int                 `json:"delivered"`
	Batches      []LifelongBatchResult `json:"batches"`
	ElapsedMS    float64               `json:"elapsed_ms"`
}

// LifelongErrorLine reports a failure after streaming began.
type LifelongErrorLine struct {
	Type   string `json:"type"` // "error"
	Code   string `json:"code"`
	Error  string `json:"error"`
	Epochs int    `json:"epochs"` // epochs completed before the failure
}

// buildLifelongSystem materializes the instance part of a lifelong
// request. Unlike buildInstance no workload is required — demand arrives
// in batches — and a top-level units field is rejected rather than
// silently ignored.
func (s *Server) buildLifelongSystem(spec *InstanceSpec) (*wsp.System, int, error) {
	if spec.Units > 0 {
		return nil, 0, fmt.Errorf("lifelong demand is carried by batches, not a top-level units field")
	}
	T := spec.Horizon
	var sys *wsp.System
	switch {
	case spec.Instance != nil && spec.Map != "":
		return nil, 0, fmt.Errorf("request names both an inline instance and map %q", spec.Map)
	case spec.Instance != nil:
		var err error
		sys, _, err = wsp.DecodeInstance(spec.Instance)
		if err != nil {
			return nil, 0, err
		}
		if T <= 0 {
			T = spec.Instance.T
		}
	case spec.Map != "":
		m, err := s.builtinMap(spec.Map)
		if err != nil {
			return nil, 0, err
		}
		sys = m.S
	default:
		return nil, 0, fmt.Errorf("request names neither an inline instance nor a builtin map")
	}
	if T <= 0 {
		return nil, 0, fmt.Errorf("request carries no horizon")
	}
	return sys, T, nil
}

// buildLifelongBatches resolves batch specs against the warehouse. The
// engine re-validates, but failing here keeps validation errors on the
// 400 path instead of surfacing as run failures.
func buildLifelongBatches(sys *wsp.System, T int, specs []LifelongBatchSpec) ([]wsp.Batch, error) {
	out := make([]wsp.Batch, len(specs))
	for i, bs := range specs {
		if bs.Release < 0 || bs.Release >= T {
			return nil, fmt.Errorf("batch %d released at %d outside [0, %d)", i, bs.Release, T)
		}
		var units []int
		switch {
		case len(bs.PerProduct) > 0 && bs.Units > 0:
			return nil, fmt.Errorf("batch %d sets both units and per_product", i)
		case len(bs.PerProduct) > 0:
			if len(bs.PerProduct) != sys.W.NumProducts {
				return nil, fmt.Errorf("batch %d has %d demands for %d products", i, len(bs.PerProduct), sys.W.NumProducts)
			}
			units = bs.PerProduct
		case bs.Units > 0:
			wl, err := wsp.UniformWorkload(sys.W, bs.Units)
			if err != nil {
				return nil, fmt.Errorf("batch %d: %w", i, err)
			}
			units = wl.Units
		default:
			return nil, fmt.Errorf("batch %d carries no units", i)
		}
		out[i] = wsp.Batch{Release: bs.Release, Units: units}
	}
	return out, nil
}

func (s *Server) handleLifelong(w http.ResponseWriter, r *http.Request) {
	s.met.requests.Add(1)
	var req LifelongRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad-request", err.Error(), 0)
		return
	}
	if len(req.Batches) == 0 {
		s.writeError(w, http.StatusBadRequest, "bad-request", "lifelong run carries no batches", 0)
		return
	}
	if len(req.Batches) > s.cfg.MaxBatch {
		s.writeError(w, http.StatusUnprocessableEntity, "lifelong-too-large",
			fmt.Sprintf("lifelong run of %d batches exceeds the %d-batch bound", len(req.Batches), s.cfg.MaxBatch), 0)
		return
	}
	sys, T, err := s.buildLifelongSystem(&req.InstanceSpec)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad-instance", err.Error(), 0)
		return
	}
	batches, err := buildLifelongBatches(sys, T, req.Batches)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad-request", err.Error(), 0)
		return
	}
	cfg, err := s.requestConfig(&req.SolveOverrides)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad-request", err.Error(), 0)
		return
	}
	// Charged like /v1/sweep: each batch release forces at least one
	// re-planning epoch, so the work scales with the batch count.
	release := s.admitOrReject(w, r, s.solveCost(&req.SolveOverrides)*int64(len(batches)))
	if release == nil {
		return
	}
	defer release()

	ctx, cancel := s.solveContext(r, req.DeadlineMS)
	defer cancel()
	// The per-epoch fault hook aborts through a cause-carrying cancel so
	// the engine's next solve fails with the hook's error attached (the
	// cancel taxonomy then maps it exactly like a mid-solve failure).
	runCtx, abort := context.WithCancelCause(ctx)
	defer abort(nil)

	var steps []string
	if !req.NoDegrade {
		cfg, steps = degradeConfig(cfg, s.deg.rung())
	}

	cid := clientID(r)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	streamed := false
	obs := wsp.LifelongObserverFuncs{
		Epoch: func(er wsp.EpochReport) {
			// Per-epoch fault hook (Info.Horizon carries the epoch index):
			// the faultinject harness stalls or aborts runs between epochs
			// with it.
			if s.cfg.Fault != nil {
				if err := s.cfg.Fault(runCtx, faultinject.Info{Path: "/v1/lifelong", Client: cid, Horizon: er.Epoch}); err != nil {
					abort(err)
					return
				}
			}
			if !streamed {
				w.Header().Set("Content-Type", "application/x-ndjson")
				w.WriteHeader(http.StatusOK)
				streamed = true
			}
			enc.Encode(LifelongEpochLine{
				Type:        "epoch",
				Epoch:       er.Epoch,
				Start:       er.Start,
				Horizon:     er.Horizon,
				Changeover:  er.Changeover,
				ServicedAt:  er.ServicedAt,
				End:         er.End,
				Agents:      er.Agents,
				Delivered:   er.Delivered,
				Outstanding: er.Outstanding,
				Throughput:  er.Throughput,
			})
			if flusher != nil {
				flusher.Flush()
			}
		},
	}

	start := time.Now()
	var rep *wsp.LifelongReport
	err = func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				s.met.panics.Add(1)
				rep, err = nil, fmt.Errorf("%w: %v", errPanic, p)
			}
		}()
		if s.cfg.Fault != nil {
			if err := s.cfg.Fault(runCtx, faultinject.Info{Path: "/v1/lifelong", Client: cid, Horizon: T}); err != nil {
				return err
			}
		}
		rep, err = s.solverFor(cfg).Lifelong(runCtx, sys, batches, T, wsp.WithLifelongObserver(obs))
		return err
	}()
	if err != nil {
		status, code := errStatus(err)
		if code == "budget-exhausted" {
			// A load signal like everywhere else — but no degraded retry
			// here: epochs already streamed cannot be replayed by a
			// restarted cheaper run.
			s.met.budgetExhausted.Add(1)
			s.deg.observeExhausted()
		}
		if !streamed {
			s.writeError(w, status, code, err.Error(), 0)
			return
		}
		s.countStatus(status)
		epochs := 0
		if rep != nil {
			epochs = rep.Epochs
		}
		enc.Encode(LifelongErrorLine{Type: "error", Code: code, Error: err.Error(), Epochs: epochs})
		if flusher != nil {
			flusher.Flush()
		}
		return
	}
	s.met.completed.Add(1)
	if len(steps) > 0 {
		s.met.degraded.Add(1)
	}
	line := LifelongReportLine{
		Type:         "report",
		OK:           true,
		Degraded:     len(steps) > 0,
		DegradeSteps: steps,
		Strategy:     cfg.Strategy.String(),
		Epochs:       rep.Epochs,
		PeakAgents:   rep.PeakAgents,
		Delivered:    rep.Delivered,
		ElapsedMS:    float64(time.Since(start)) / float64(time.Millisecond),
	}
	for _, b := range rep.Batches {
		line.Batches = append(line.Batches, LifelongBatchResult{Release: b.Release, Units: b.Units, Completed: b.Completed})
	}
	if !streamed {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
	}
	enc.Encode(line)
	if flusher != nil {
		flusher.Flush()
	}
}
