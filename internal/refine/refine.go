// Package refine implements the paper's stated future work (§VI): taking
// the feasible solution the methodology produces and iteratively refining
// it toward a bounded-suboptimal one. Two refinements are provided:
//
//   - MergeCycles reduces the team size: cycles that traverse the same
//     component loop and have spare delivery budget are fused, freeing one
//     full loop's worth of agents per merge while preserving every
//     validated invariant.
//   - MinimalHorizon binary-searches for the smallest timestep budget T at
//     which the instance still solves. Feasibility is not monotone in T
//     (warm-up margins quantize with the cycle-period count), so the result
//     is a certified upper bound on the minimal makespan within the
//     methodology's solution space rather than a global minimum.
package refine

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/lp"
	"repro/internal/traffic"
	"repro/internal/warehouse"
)

// MergeCycles fuses cycles with identical component loops while their
// combined quotas fit one cycle's delivery budget (qeff per queue visit).
// The result is Check-validated; the input set is not modified.
func MergeCycles(cs *cycles.Set, wl warehouse.Workload) (*cycles.Set, error) {
	out := &cycles.Set{S: cs.S, Tc: cs.Tc, Qc: cs.Qc, QEff: cs.QEff}
	type bucket struct {
		cyc    *cycles.Cycle
		budget int
	}
	byLoop := make(map[string][]*bucket)
	keyOf := func(c *cycles.Cycle) string {
		// Loops are rotation-invariant in principle, but route packing
		// emits them with a canonical start, so the plain sequence works as
		// the merge key.
		key := make([]byte, 0, 4*len(c.Components))
		for _, comp := range c.Components {
			key = append(key, byte(comp), byte(comp>>8), byte(comp>>16), ',')
		}
		return string(key)
	}
	queueVisits := func(c *cycles.Cycle) int {
		n := 0
		for _, comp := range c.Components {
			if cs.S.Components[comp].Kind == traffic.StationQueue {
				n++
			}
		}
		return n
	}
	for _, c := range cs.Cycles {
		quota := 0
		for _, leg := range c.Legs {
			quota += leg.Quota
		}
		key := keyOf(c)
		merged := false
		for _, b := range byLoop[key] {
			if b.budget >= quota {
				// Fuse: legs indices refer to the identical loop, so they
				// transfer unchanged.
				b.cyc.Legs = append(b.cyc.Legs, c.Legs...)
				b.budget -= quota
				merged = true
				break
			}
		}
		if merged {
			continue
		}
		clone := &cycles.Cycle{
			Components: append([]traffic.ComponentID(nil), c.Components...),
			Legs:       append([]cycles.Leg(nil), c.Legs...),
		}
		out.Cycles = append(out.Cycles, clone)
		byLoop[key] = append(byLoop[key], &bucket{
			cyc:    clone,
			budget: cs.QEff*queueVisits(clone) - quota,
		})
	}
	if errs := out.Check(wl); len(errs) > 0 {
		return nil, fmt.Errorf("refine: merged cycle set invalid: %v", errs[0])
	}
	return out, nil
}

// HorizonResult reports a MinimalHorizon search.
type HorizonResult struct {
	// T is the smallest horizon for which Solve succeeded.
	T int
	// Result is the solution at that horizon.
	Result *core.Result
	// Probes counts the Solve attempts the search spent.
	Probes int
}

// MinimalHorizon binary-searches the smallest T' in [lo, T] for which the
// instance solves, where lo defaults to one cycle period. The returned
// solution is fully realized and validated at T'.
//
// Every probe solves the same instance at a different horizon, so the
// search holds one core.Scratch across all probes: for the ContractILP
// strategy each probe edits the horizon-dependent right-hand sides of the
// cached contract model and re-solves in the retained arena instead of
// recompiling the contract system per probe. Probe outcomes are
// bit-identical to scratchless core.Solve calls, so the search trajectory
// and result are unchanged.
//
// Cancelling ctx aborts the probe in flight and returns an error wrapping
// lp.ErrCanceled; an infeasible probe (any other error) just narrows the
// search window.
func MinimalHorizon(ctx context.Context, s *traffic.System, wl warehouse.Workload, T int, opts core.Options) (*HorizonResult, error) {
	lo := s.CycleTime()
	hi := T
	if lo > hi {
		return nil, fmt.Errorf("refine: horizon %d below one cycle period %d", T, lo)
	}
	probes := 0
	sc := &core.Scratch{}
	solve := func(t int) (*core.Result, error) {
		probes++
		res, err := core.SolveScratch(ctx, s, wl, t, opts, sc)
		if err != nil {
			if errors.Is(err, lp.ErrCanceled) {
				return nil, fmt.Errorf("refine: horizon search canceled at probe %d: %w", probes, err)
			}
			return nil, nil // infeasible probe: a search datum, not a failure
		}
		return res, nil
	}
	best, err := solve(hi)
	if err != nil {
		return nil, err
	}
	if best == nil {
		return nil, fmt.Errorf("refine: instance unsolvable at the initial horizon %d", T)
	}
	bestT := hi
	// The serviced timestep bounds the answer from below much tighter than
	// tc; use it to shrink the search window.
	if opts.SkipRealization {
		return nil, fmt.Errorf("refine: MinimalHorizon needs realization (SkipRealization must be false)")
	}
	if sa := best.Sim.ServicedAt; sa > lo {
		lo = sa
	}
	for lo < bestT {
		mid := lo + (bestT-lo)/2
		res, err := solve(mid)
		if err != nil {
			return nil, err
		}
		if res != nil {
			best, bestT = res, mid
			if sa := res.Sim.ServicedAt; sa > lo {
				lo = sa
			}
		} else {
			lo = mid + 1
		}
	}
	return &HorizonResult{T: bestT, Result: best, Probes: probes}, nil
}
