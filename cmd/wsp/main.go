// Command wsp is the toolchain driver: it solves WSP instances on the
// paper's evaluation maps, renders traffic-system maps (Figs. 4 and 5), and
// prints per-instance statistics. It is built entirely on the public wsp
// facade — the same API an embedding program uses.
//
// Usage:
//
//	wsp map   -name fulfillment1|fulfillment2|sorting
//	wsp solve -name sorting -units 480 [-T 3600] [-strategy route|flows|contract]
//	wsp table [-parallel N]                # reproduce Table I (N-wide solver pool)
//	wsp sweep [-corridors 2,3,4] [-lens 6,7,9] [-units 480] [-points 3]
//	                                       # walk the Fig. 5 co-design grid
//	wsp lifelong -name sorting -batches 0:160,1200:160 [-T 3600] [-stream]
//	                                       # service batches released over time
//	wsp corpus list|run|calibrate [-seed N] [-families stripes,rings,demand,movingai]
//	                                       # scenario corpus: enumerate, measure, tune knobs
//
// SIGINT/SIGTERM cancel the in-flight context: solves abort within one LP
// work-budget tick, commands flush whatever completed (a sweep prints its
// finished rows), and the process exits with code 130 instead of dying
// mid-write.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"repro/wsp"
)

// exitCanceled distinguishes an operator interrupt (128+SIGINT) from an
// ordinary failure (1) and a usage error (2).
const exitCanceled = 130

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// One context for the whole command: the first SIGINT/SIGTERM cancels
	// it (solves unwind and partial output flushes), a second signal kills
	// the process via the restored default handler.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var err error
	switch os.Args[1] {
	case "map":
		err = cmdMap(os.Args[2:])
	case "solve":
		err = cmdSolve(ctx, os.Args[2:])
	case "table":
		err = cmdTable(ctx, os.Args[2:])
	case "sweep":
		err = cmdSweep(ctx, os.Args[2:])
	case "lifelong":
		err = cmdLifelong(ctx, os.Args[2:])
	case "corpus":
		err = cmdCorpus(ctx, os.Args[2:])
	case "export":
		err = cmdExport(os.Args[2:])
	case "solvefile":
		err = cmdSolveFile(ctx, os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		msg := err.Error()
		if !strings.HasPrefix(msg, "wsp: ") {
			msg = "wsp: " + msg
		}
		fmt.Fprintln(os.Stderr, msg)
		if errors.Is(err, wsp.ErrCanceled) {
			os.Exit(exitCanceled)
		}
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: wsp <map|solve|table|sweep|lifelong|corpus|export|solvefile> [flags]")
}

// cmdExport writes a built-in instance to a JSON file that solvefile (or a
// third-party tool) can consume.
func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	name := fs.String("name", "sorting", "map name")
	units := fs.Int("units", 160, "total units to move")
	T := fs.Int("T", 3600, "timestep limit")
	out := fs.String("o", "instance.json", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := wsp.BuiltinMap(*name)
	if err != nil {
		return err
	}
	wl, err := wsp.UniformWorkload(m.W, *units)
	if err != nil {
		return err
	}
	inst, err := wsp.EncodeInstance(m.S, &wl, *T, *name)
	if err != nil {
		return err
	}
	data, err := wsp.MarshalInstance(inst)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes)\n", *out, len(data))
	return nil
}

// cmdSolveFile solves an instance previously exported (or hand-written).
func cmdSolveFile(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("solvefile", flag.ExitOnError)
	in := fs.String("f", "instance.json", "instance file")
	strat := fs.String("strategy", "route", "synthesis strategy: route, flows, or contract")
	if err := fs.Parse(args); err != nil {
		return err
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	inst, err := wsp.UnmarshalInstance(data)
	if err != nil {
		return err
	}
	s, wl, err := wsp.DecodeInstance(inst)
	if err != nil {
		return err
	}
	if wl == nil {
		return fmt.Errorf("instance %s has no workload", *in)
	}
	strategy, err := wsp.ParseStrategy(*strat)
	if err != nil {
		return err
	}
	T := inst.T
	if T == 0 {
		T = 3600
	}
	solver := wsp.New(wsp.WithStrategy(strategy))
	start := time.Now()
	res, err := solver.Solve(ctx, wsp.Instance{System: s, Workload: *wl, Horizon: T})
	if err != nil {
		return err
	}
	fmt.Printf("solved %s (%d units) in %v: %d agents, serviced at t=%d of %d\n",
		*in, wl.TotalUnits(), time.Since(start), res.Stats.Agents, res.Sim.ServicedAt, T)
	return nil
}

func cmdMap(args []string) error {
	fs := flag.NewFlagSet("map", flag.ExitOnError)
	name := fs.String("name", "sorting", "map name")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := wsp.BuiltinMap(*name)
	if err != nil {
		return err
	}
	fmt.Print(wsp.RenderTraffic(m.S))
	st := wsp.SummarizeTraffic(m.S)
	fmt.Printf("\n%s: %d cells, %d shelves, %d stations, %d products\n",
		*name, m.W.Graph.NumVertices(), len(m.Shelves), len(m.W.Stations), m.W.NumProducts)
	fmt.Printf("components: %d (%d shelving rows, %d station queues, %d transports), %d arcs, tc=%d\n",
		st.Components, st.ShelvingRows, st.StationQueues, st.Transports, st.Edges, st.CycleTime)
	return nil
}

func cmdSolve(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("solve", flag.ExitOnError)
	name := fs.String("name", "sorting", "map name")
	units := fs.Int("units", 160, "total units to move")
	T := fs.Int("T", 3600, "timestep limit")
	strat := fs.String("strategy", "route", "synthesis strategy: route, flows, or contract")
	simplex := fs.String("simplex", "auto", "exact LP engine: auto, dense, revised, or hybrid")
	hybrid := fs.Bool("hybrid", false, "float-first/exact-verify hybrid solves (same as -simplex hybrid)")
	rootCuts := fs.Bool("root-cuts", false, "Gomory/cover cuts at the exact ILP root")
	searchPar := fs.Int("search-parallel", 0, "within-instance parallelism: B&B subtree + route-probe workers (0 = sequential; bit-identical results)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := wsp.BuiltinMap(*name)
	if err != nil {
		return err
	}
	strategy, err := wsp.ParseStrategy(*strat)
	if err != nil {
		return err
	}
	sx, err := wsp.ParseSimplex(*simplex)
	if err != nil {
		return err
	}
	wl, err := wsp.UniformWorkload(m.W, *units)
	if err != nil {
		return err
	}
	solver := wsp.New(wsp.WithStrategy(strategy), wsp.WithSimplex(sx),
		wsp.WithHybrid(*hybrid || sx == wsp.SimplexHybrid), wsp.WithRootCuts(*rootCuts),
		wsp.WithSearchParallel(*searchPar))
	start := time.Now()
	res, err := solver.Solve(ctx, wsp.Instance{System: m.S, Workload: wl, Horizon: *T})
	if err != nil {
		return err
	}
	fmt.Printf("solved %s (%d units, %d products) in %v\n", *name, *units, m.W.NumProducts, time.Since(start))
	fmt.Printf("  strategy:   %v (attempt %d)\n", strategy, res.Attempts)
	fmt.Printf("  agents:     %d in %d cycles\n", res.Stats.Agents, len(res.CycleSet.Cycles))
	fmt.Printf("  serviced:   timestep %d of %d\n", res.Sim.ServicedAt, *T)
	fmt.Printf("  synthesis:  %v\n", res.Timing.Synthesis)
	fmt.Printf("  realize:    %v  (validate: %v)\n", res.Timing.Realize, res.Timing.Validate)
	return nil
}

// cmdSweep walks a co-design grid in the style of the paper's Fig. 5 via
// Solver.Sweep. On interrupt the completed rows are flushed before the
// distinct cancellation exit code — a half-walked grid is still data.
func cmdSweep(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	corridors := fs.String("corridors", "2,3,4", "comma-separated corridor widths (also sets aisle rows)")
	lens := fs.String("lens", "6,7,9", "comma-separated component-length caps")
	stripes := fs.Int("stripes", 4, "stripes per generated topology")
	products := fs.Int("products", 48, "distinct products per generated topology")
	units := fs.Int("units", 480, "total units at the top workload level")
	points := fs.Int("points", 3, "workload levels per topology (units·i/points, i=1..points)")
	T := fs.Int("T", 3600, "timestep limit")
	strat := fs.String("strategy", "route", "synthesis strategy: route, flows, or contract")
	simplex := fs.String("simplex", "auto", "exact LP engine: auto, dense, revised, or hybrid")
	hybrid := fs.Bool("hybrid", false, "float-first/exact-verify hybrid solves (same as -simplex hybrid)")
	rootCuts := fs.Bool("root-cuts", false, "Gomory/cover cuts at the exact ILP root")
	parallel := fs.Int("parallel", 1, "solver pool width (0 = GOMAXPROCS)")
	searchPar := fs.Int("search-parallel", 0, "within-instance parallelism: B&B subtree + route-probe workers (0 = sequential; bit-identical results)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	vs, err := parseInts(*corridors)
	if err != nil {
		return fmt.Errorf("bad -corridors: %w", err)
	}
	ls, err := parseInts(*lens)
	if err != nil {
		return fmt.Errorf("bad -lens: %w", err)
	}
	strategy, err := wsp.ParseStrategy(*strat)
	if err != nil {
		return err
	}
	sx, err := wsp.ParseSimplex(*simplex)
	if err != nil {
		return err
	}
	solver := wsp.New(wsp.WithStrategy(strategy), wsp.WithSimplex(sx), wsp.WithParallel(*parallel),
		wsp.WithHybrid(*hybrid || sx == wsp.SimplexHybrid), wsp.WithRootCuts(*rootCuts),
		wsp.WithSearchParallel(*searchPar))
	start := time.Now()
	cells, sweepErr := solver.Sweep(ctx, wsp.SweepSpec{
		Corridors: vs, Lens: ls,
		Stripes: *stripes, Products: *products,
		Units: *units, Points: *points, Horizon: *T,
	})
	// Flush whatever completed BEFORE reporting any error: an interrupted
	// sweep still prints its finished rows instead of dying mid-grid.
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "V\tL\tComponents\ttc\tUnits\tRuntime\tAgents\tServiced@")
	for _, cell := range cells {
		for _, pt := range cell.Points {
			if pt.Err != nil {
				// Infeasible design points are expected sweep outcomes,
				// not reasons to abandon the rest of the grid.
				fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%v\t-\tunsolved\n",
					cell.Corridor, cell.MaxLen, cell.Stats.Components, cell.Stats.CycleTime,
					pt.Units, pt.Elapsed.Round(time.Microsecond))
				continue
			}
			fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%v\t%d\t%d\n",
				cell.Corridor, cell.MaxLen, cell.Stats.Components, cell.Stats.CycleTime,
				pt.Units, pt.Elapsed.Round(time.Microsecond), pt.Result.Stats.Agents, pt.Result.Sim.ServicedAt)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if sweepErr != nil {
		return sweepErr
	}
	fmt.Printf("\n%d topologies × %d levels in %v\n",
		len(cells), *points, time.Since(start).Round(time.Microsecond))
	return nil
}

// cmdLifelong services batches released over time via Solver.Lifelong.
// With -stream, each epoch and batch completion prints as it happens (the
// engine's observer events); without it only the final summary appears. On
// interrupt the partial report — epochs completed so far — is still
// printed before the distinct cancellation exit code.
func cmdLifelong(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("lifelong", flag.ExitOnError)
	name := fs.String("name", "sorting", "map name")
	batchesArg := fs.String("batches", "0:160,1200:160", "comma-separated release:units batch list")
	T := fs.Int("T", 3600, "timestep limit for the whole run")
	strat := fs.String("strategy", "route", "synthesis strategy: route, flows, or contract")
	stream := fs.Bool("stream", false, "print each epoch and batch completion as it happens")
	window := fs.Int("window", 0, "throughput bin width in timesteps (0 = one cycle time; needs -stream)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := wsp.BuiltinMap(*name)
	if err != nil {
		return err
	}
	strategy, err := wsp.ParseStrategy(*strat)
	if err != nil {
		return err
	}
	var batches []wsp.Batch
	for _, f := range strings.Split(*batchesArg, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		rel, units, ok := strings.Cut(f, ":")
		if !ok {
			return fmt.Errorf("bad -batches entry %q (want release:units)", f)
		}
		r, err := strconv.Atoi(strings.TrimSpace(rel))
		if err != nil {
			return fmt.Errorf("bad -batches release %q: %w", rel, err)
		}
		u, err := strconv.Atoi(strings.TrimSpace(units))
		if err != nil {
			return fmt.Errorf("bad -batches units %q: %w", units, err)
		}
		wl, err := wsp.UniformWorkload(m.W, u)
		if err != nil {
			return err
		}
		batches = append(batches, wsp.Batch{Release: r, Units: wl.Units})
	}
	if len(batches) == 0 {
		return fmt.Errorf("empty -batches list")
	}

	var opts []wsp.LifelongOption
	if *stream {
		opts = append(opts, wsp.WithLifelongObserver(wsp.LifelongObserverFuncs{
			Epoch: func(er wsp.EpochReport) {
				fmt.Printf("epoch %d: t=%d..%d (horizon %d) agents=%d delivered=%d outstanding=%d\n",
					er.Epoch, er.Start, er.End, er.Horizon, er.Agents, sum(er.Delivered), sum(er.Outstanding))
			},
			BatchComplete: func(_ int, bs wsp.BatchStats) {
				fmt.Printf("batch released@%d completed at t=%d (%d units)\n",
					bs.Release, bs.Completed, bs.Units)
			},
		}))
		if *window > 0 {
			opts = append(opts, wsp.WithLifelongThroughputWindow(*window))
		}
	}
	solver := wsp.New(wsp.WithStrategy(strategy))
	start := time.Now()
	rep, runErr := solver.Lifelong(ctx, m.S, batches, *T, opts...)
	// Flush the (possibly partial) report BEFORE reporting any error: an
	// interrupted run still shows the epochs it completed.
	if rep != nil {
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "Release\tUnits\tCompleted@")
		for _, bs := range rep.Batches {
			if bs.Completed < 0 {
				fmt.Fprintf(tw, "%d\t%d\t-\n", bs.Release, bs.Units)
				continue
			}
			fmt.Fprintf(tw, "%d\t%d\t%d\n", bs.Release, bs.Units, bs.Completed)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		fmt.Printf("\n%d epochs, peak %d agents, %d units delivered in %v\n",
			rep.Epochs, rep.PeakAgents, sum(rep.Delivered), time.Since(start).Round(time.Microsecond))
	}
	return runErr
}

func sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func cmdTable(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("table", flag.ExitOnError)
	T := fs.Int("T", 3600, "timestep limit")
	parallel := fs.Int("parallel", 1, "solver pool width (0 = GOMAXPROCS); results are bit-identical to -parallel 1")
	searchPar := fs.Int("search-parallel", 0, "within-instance parallelism: B&B subtree + route-probe workers (0 = sequential; bit-identical results)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows := []struct {
		name  string
		units []int
	}{
		{"sorting", []int{160, 320, 480}},
		{"fulfillment1", []int{550, 825, 1100}},
		{"fulfillment2", []int{1200, 1320, 1440}},
	}
	type inst struct {
		name     string
		products int
		units    int
	}
	var insts []inst
	var batch []wsp.Instance
	for _, row := range rows {
		m, err := wsp.BuiltinMap(row.name)
		if err != nil {
			return err
		}
		for _, u := range row.units {
			wl, err := wsp.UniformWorkload(m.W, u)
			if err != nil {
				return err
			}
			insts = append(insts, inst{row.name, m.W.NumProducts, u})
			batch = append(batch, wsp.Instance{System: m.S, Workload: wl, Horizon: *T})
		}
	}
	solver := wsp.New(wsp.WithParallel(*parallel), wsp.WithSearchParallel(*searchPar))
	start := time.Now()
	results := solver.SolveBatch(ctx, batch)
	elapsed := time.Since(start)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Map\tUnique Products\tUnits Moved\tRuntime\tAgents\tServiced@")
	for i, r := range results {
		if r.Err != nil {
			return fmt.Errorf("%s (%d units): %w", insts[i].name, insts[i].units, r.Err)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%v\t%d\t%d\n",
			insts[i].name, insts[i].products, insts[i].units, r.Elapsed.Round(time.Microsecond),
			r.Res.Stats.Agents, r.Res.Sim.ServicedAt)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	// Mirror the pool's width resolution: 0 selects GOMAXPROCS, and no
	// more workers run than there are instances.
	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(batch) {
		workers = len(batch)
	}
	fmt.Printf("\n%d instances in %v (%d workers)\n", len(results), elapsed.Round(time.Microsecond), workers)
	return nil
}
