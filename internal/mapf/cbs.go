package mapf

import (
	"fmt"

	"repro/internal/grid"
)

// CBS runs optimal conflict-based search: a constraint tree whose low level
// is single-agent space-time A*. Supports goal sequences per agent.
func CBS(g *grid.Grid, starts []grid.VertexID, goals [][]grid.VertexID, lim Limits) (*Solution, error) {
	return ecbs(g, starts, goals, lim, 1.0)
}

// ECBS runs bounded-suboptimal conflict-based search with suboptimality
// factor w ≥ 1: both levels use focal lists preferring fewer conflicts
// among candidates within factor w of the best. This is the EECBS-family
// configuration the paper benchmarks against.
func ECBS(g *grid.Grid, starts []grid.VertexID, goals [][]grid.VertexID, w float64, lim Limits) (*Solution, error) {
	if w < 1 {
		return nil, fmt.Errorf("mapf: suboptimality factor %v < 1", w)
	}
	return ecbs(g, starts, goals, lim, w)
}

// cbsNode is one constraint-tree node. Constraints are stored as a parent
// chain to avoid copying sets on every branch.
type cbsNode struct {
	parent   *cbsNode
	agent    int        // agent the new constraint applies to (-1 at root)
	con      constraint // the added constraint
	paths    []Path
	cost     int
	nConflic int
}

// constraintsFor collects the constraint set of one agent along the chain.
func (n *cbsNode) constraintsFor(agent int) constraintSet {
	cs := make(constraintSet)
	for cur := n; cur != nil; cur = cur.parent {
		if cur.agent == agent {
			cs[cur.con] = true
		}
	}
	return cs
}

type conflictInfo struct {
	i, j int // agents
	v    grid.VertexID
	u    grid.VertexID // grid.None for vertex conflicts; else edge u->v for i
	t    int
}

// findConflict returns the earliest conflict between any two paths, or nil.
func findConflict(paths []Path) *conflictInfo {
	maxLen := 0
	for _, p := range paths {
		if len(p) > maxLen {
			maxLen = len(p)
		}
	}
	for t := 0; t < maxLen; t++ {
		occupied := make(map[grid.VertexID]int)
		for i, p := range paths {
			v := p.Vertex(t)
			if j, ok := occupied[v]; ok {
				return &conflictInfo{i: j, j: i, v: v, u: grid.None, t: t}
			}
			occupied[v] = i
		}
		if t == 0 {
			continue
		}
		for i := range paths {
			vi, pi := paths[i].Vertex(t), paths[i].Vertex(t-1)
			if vi == pi {
				continue
			}
			for j := i + 1; j < len(paths); j++ {
				if paths[j].Vertex(t) == pi && paths[j].Vertex(t-1) == vi {
					return &conflictInfo{i: i, j: j, v: vi, u: pi, t: t}
				}
			}
		}
	}
	return nil
}

// countConflicts totals pairwise conflicts (for the high-level focal key).
func countConflicts(paths []Path) int {
	maxLen := 0
	for _, p := range paths {
		if len(p) > maxLen {
			maxLen = len(p)
		}
	}
	n := 0
	for t := 0; t < maxLen; t++ {
		occupied := make(map[grid.VertexID]int)
		for _, p := range paths {
			v := p.Vertex(t)
			occupied[v]++
		}
		for _, c := range occupied {
			if c > 1 {
				n += c - 1
			}
		}
	}
	return n
}

func ecbs(g *grid.Grid, starts []grid.VertexID, goals [][]grid.VertexID, lim Limits, w float64) (*Solution, error) {
	if len(starts) != len(goals) {
		return nil, fmt.Errorf("mapf: %d starts for %d goal sequences", len(starts), len(goals))
	}
	h := newHeuristic(g)
	budget := lim.expansions()
	horizon := lim.horizon(g)
	sol := &Solution{}

	// conflictFn counts collisions of a candidate move against the other
	// agents' current paths; used by the low-level focal search.
	makeConflictFn := func(paths []Path, self int) func(u, v grid.VertexID, t int) int32 {
		if w <= 1 {
			return nil
		}
		return func(u, v grid.VertexID, t int) int32 {
			var c int32
			for j, p := range paths {
				if j == self || len(p) == 0 {
					continue
				}
				if p.Vertex(t) == v {
					c++
				}
				if u != v && p.Vertex(t) == u && p.Vertex(t-1) == v {
					c++
				}
			}
			return c
		}
	}

	replan := func(node *cbsNode, agent int) (Path, error) {
		before := budget
		p, err := planPath(planParams{
			g: g, h: h,
			start: starts[agent], goals: goals[agent],
			cons: node.constraintsFor(agent), horizon: horizon, budget: &budget,
			conflict: makeConflictFn(node.paths, agent), w: w,
		})
		sol.Expansions += before - budget
		return p, err
	}

	root := &cbsNode{agent: -1, paths: make([]Path, len(starts))}
	for i := range starts {
		p, err := replan(root, i)
		if err != nil {
			return sol, err
		}
		if p == nil {
			return sol, fmt.Errorf("mapf: agent %d has no path at the CBS root", i)
		}
		root.paths[i] = p
		root.cost += p.Cost()
	}
	root.nConflic = countConflicts(root.paths)

	open := []*cbsNode{root}
	for len(open) > 0 {
		sol.HighLevelNodes++
		// Select: min cost, or (ECBS) min conflicts within w * minCost.
		minCost := open[0].cost
		for _, n := range open {
			if n.cost < minCost {
				minCost = n.cost
			}
		}
		bestIdx := -1
		for i, n := range open {
			if w > 1 && float64(n.cost) > w*float64(minCost) {
				continue
			}
			if bestIdx < 0 {
				bestIdx = i
				continue
			}
			b := open[bestIdx]
			if w > 1 {
				if n.nConflic < b.nConflic || (n.nConflic == b.nConflic && n.cost < b.cost) {
					bestIdx = i
				}
			} else if n.cost < b.cost {
				bestIdx = i
			}
		}
		node := open[bestIdx]
		open = append(open[:bestIdx], open[bestIdx+1:]...)

		conf := findConflict(node.paths)
		if conf == nil {
			sol.Paths = node.paths
			return sol, nil
		}
		if budget <= 0 {
			return sol, fmt.Errorf("mapf: high-level search budget spent on %d conflicts: %w", sol.HighLevelNodes, ErrExpansionLimit)
		}
		// Branch: forbid the conflict for each involved agent in turn.
		for _, side := range [2]struct {
			agent int
			con   constraint
		}{
			{conf.i, vertexOrEdgeConstraint(conf, true)},
			{conf.j, vertexOrEdgeConstraint(conf, false)},
		} {
			child := &cbsNode{
				parent: node,
				agent:  side.agent,
				con:    side.con,
				paths:  append([]Path(nil), node.paths...),
			}
			p, err := replan(child, side.agent)
			if err != nil {
				return sol, err
			}
			if p == nil {
				continue // this branch is infeasible
			}
			child.paths[side.agent] = p
			for _, q := range child.paths {
				child.cost += q.Cost()
			}
			child.nConflic = countConflicts(child.paths)
			open = append(open, child)
		}
	}
	return sol, fmt.Errorf("mapf: CBS tree exhausted without a solution")
}

// vertexOrEdgeConstraint converts a conflict into the constraint for one of
// its two agents. Vertex conflicts block (v, t) for both; edge conflicts
// block the traversal direction each agent used.
func vertexOrEdgeConstraint(c *conflictInfo, first bool) constraint {
	if c.u == grid.None {
		return constraint{From: grid.None, V: c.v, T: c.t}
	}
	if first {
		// Agent i moved u -> v arriving at t.
		return constraint{From: c.u, V: c.v, T: c.t}
	}
	// Agent j moved v -> u arriving at t.
	return constraint{From: c.v, V: c.u, T: c.t}
}
