package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"repro/internal/server/faultinject"
	"repro/wsp"
)

// StatusClientClosedRequest reports a solve abandoned because the client
// disconnected (nginx's 499 convention — there is no standard code for
// "you hung up"). It is distinguishable from 504, where the SERVER's
// deadline policy cut the solve short.
const StatusClientClosedRequest = 499

// errPanic roots the taxonomy branch for solver panics caught by the
// per-request recover.
var errPanic = errors.New("server: solver panicked")

// InstanceSpec names one WSP instance in a request: either an inline
// serialized instance or a builtin evaluation map plus a uniform demand.
type InstanceSpec struct {
	// Instance is a full inline instance (the wspio JSON form).
	Instance *wsp.InstanceFile `json:"instance,omitempty"`
	// Map selects a builtin evaluation map instead:
	// fulfillment1|fulfillment2|sorting.
	Map string `json:"map,omitempty"`
	// Units spreads a uniform workload over the map's products (required
	// with Map; overrides an inline instance's workload when set).
	Units int `json:"units,omitempty"`
	// Horizon is the timestep budget T (falls back to the inline
	// instance's own T).
	Horizon int `json:"horizon,omitempty"`
}

// SolveOverrides are the per-request solver knobs shared by the solve and
// batch endpoints. Zero values inherit the server's base configuration.
type SolveOverrides struct {
	Strategy   string `json:"strategy,omitempty"` // route|flows|contract
	Exact      *bool  `json:"exact,omitempty"`
	WorkBudget int64  `json:"work_budget,omitempty"`
	NodeBudget int    `json:"node_budget,omitempty"`
	// DeadlineMS requests a per-solve deadline; the server clamps it to
	// its MaxDeadline and applies its default when absent.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// NoDegrade opts this request out of the degradation ladder: under
	// load it will be answered exactly as configured or fail trying.
	NoDegrade bool `json:"no_degrade,omitempty"`
}

// SolveRequest is the /v1/solve body.
type SolveRequest struct {
	InstanceSpec
	SolveOverrides
}

// SolveResponse is the /v1/solve answer envelope.
type SolveResponse struct {
	OK bool `json:"ok"`
	// Degraded marks a solve answered below the requested fidelity; the
	// applied ladder rungs are listed in DegradeSteps.
	Degraded     bool     `json:"degraded"`
	DegradeSteps []string `json:"degrade_steps,omitempty"`
	Strategy     string   `json:"strategy"`
	Agents       int      `json:"agents"`
	Cycles       int      `json:"cycles"`
	Attempts     int      `json:"attempts"`
	ServicedAt   int      `json:"serviced_at"`
	ElapsedMS    float64  `json:"elapsed_ms"`
}

// ErrorResponse is the error envelope of every non-2xx answer.
type ErrorResponse struct {
	Error         string `json:"error"`
	Code          string `json:"code"`
	RetryAfterSec int    `json:"retry_after_sec,omitempty"`
}

// BatchRequest is the /v1/batch body: one admission decision, one deadline,
// one (possibly degraded) configuration for the whole batch.
type BatchRequest struct {
	Instances []InstanceSpec `json:"instances"`
	SolveOverrides
}

// BatchItem is one instance's outcome within a /v1/batch answer.
type BatchItem struct {
	OK         bool    `json:"ok"`
	Error      string  `json:"error,omitempty"`
	Code       string  `json:"code,omitempty"`
	Agents     int     `json:"agents,omitempty"`
	ServicedAt int     `json:"serviced_at,omitempty"`
	ElapsedMS  float64 `json:"elapsed_ms"`
}

// BatchResponse is the /v1/batch answer envelope.
type BatchResponse struct {
	OK           bool        `json:"ok"`
	Degraded     bool        `json:"degraded"`
	DegradeSteps []string    `json:"degrade_steps,omitempty"`
	Items        []BatchItem `json:"items"`
}

// SweepRequest is the /v1/sweep body (the Fig. 5 co-design grid). With
// stream set, the answer is NDJSON: one "cell" line per completed
// topology (flushed immediately), then a terminal "summary" line — the
// same discipline as /v1/lifelong.
type SweepRequest struct {
	Corridors []int `json:"corridors"`
	Lens      []int `json:"lens"`
	Stripes   int   `json:"stripes,omitempty"`
	Products  int   `json:"products,omitempty"`
	Units     int   `json:"units"`
	Points    int   `json:"points"`
	Horizon   int   `json:"horizon"`
	Stream    bool  `json:"stream,omitempty"`
	SolveOverrides
}

// SweepPointResult is one (topology, level) evaluation in a sweep answer.
type SweepPointResult struct {
	Units  int    `json:"units"`
	OK     bool   `json:"ok"`
	Agents int    `json:"agents,omitempty"`
	Code   string `json:"code,omitempty"`
}

// SweepCellResult is one topology of the sweep grid.
type SweepCellResult struct {
	Corridor   int                `json:"corridor"`
	MaxLen     int                `json:"max_len"`
	Components int                `json:"components"`
	Points     []SweepPointResult `json:"points"`
}

// SweepResponse is the /v1/sweep answer envelope (non-streaming).
type SweepResponse struct {
	OK           bool              `json:"ok"`
	Degraded     bool              `json:"degraded"`
	DegradeSteps []string          `json:"degrade_steps,omitempty"`
	Cells        []SweepCellResult `json:"cells"`
}

// SweepCellLine is one streamed NDJSON topology record.
type SweepCellLine struct {
	Type string `json:"type"` // "cell"
	SweepCellResult
}

// SweepSummaryLine terminates a successful sweep stream.
type SweepSummaryLine struct {
	Type         string   `json:"type"` // "summary"
	OK           bool     `json:"ok"`
	Degraded     bool     `json:"degraded"`
	DegradeSteps []string `json:"degrade_steps,omitempty"`
	Cells        int      `json:"cells"`
	ElapsedMS    float64  `json:"elapsed_ms"`
}

// SweepErrorLine reports a failure after streaming began.
type SweepErrorLine struct {
	Type  string `json:"type"` // "error"
	Code  string `json:"code"`
	Error string `json:"error"`
	Cells int    `json:"cells"` // cells completed before the failure
}

// errStatus maps a solve error onto (HTTP status, taxonomy code). Order
// matters: a deadline expiry also satisfies ErrCanceled, so it is checked
// first; after it, any remaining cancellation means the client went away
// (the server never cancels an admitted solve — draining waits for them).
func errStatus(err error) (int, string) {
	switch {
	case errors.Is(err, errPanic):
		return http.StatusInternalServerError, "panic"
	case errors.Is(err, wsp.ErrDeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline-exceeded"
	case errors.Is(err, wsp.ErrCanceled), errors.Is(err, context.Canceled):
		return StatusClientClosedRequest, "client-closed-request"
	case errors.Is(err, wsp.ErrHorizonTooShort):
		return http.StatusUnprocessableEntity, "horizon-too-short"
	case errors.Is(err, wsp.ErrInfeasible):
		return http.StatusUnprocessableEntity, "infeasible"
	case errors.Is(err, wsp.ErrBudgetExhausted):
		return http.StatusServiceUnavailable, "budget-exhausted"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	resp := ErrorResponse{Error: msg, Code: code}
	if retryAfter > 0 {
		sec := int(retryAfter / time.Second)
		if sec < 1 {
			sec = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(sec))
		resp.RetryAfterSec = sec
	}
	s.countStatus(status)
	writeJSON(w, status, resp)
}

// countStatus attributes an error status to the outcome counters. Factored
// out of writeError so streaming handlers — which have already committed a
// 200 status line by the time a run fails — can account an in-band error
// the same way.
func (s *Server) countStatus(status int) {
	switch status {
	case http.StatusGatewayTimeout:
		s.met.deadline.Add(1)
	case StatusClientClosedRequest:
		s.met.clientGone.Add(1)
	case http.StatusUnprocessableEntity:
		s.met.infeasible.Add(1)
	}
}

// clientID resolves the admission identity: an explicit X-Client-ID header
// when present, the remote host otherwise.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// decodeBody parses a bounded JSON request body.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// buildInstance materializes an InstanceSpec. Builtin maps are built once
// and shared — a traffic.System is read-only after Build, so concurrent
// solves on one map are safe.
func (s *Server) buildInstance(spec *InstanceSpec) (wsp.Instance, error) {
	var inst wsp.Instance
	switch {
	case spec.Instance != nil && spec.Map != "":
		return inst, fmt.Errorf("request names both an inline instance and map %q", spec.Map)
	case spec.Instance != nil:
		sys, wl, err := wsp.DecodeInstance(spec.Instance)
		if err != nil {
			return inst, err
		}
		inst.System = sys
		if wl != nil {
			inst.Workload = *wl
		}
		inst.Horizon = spec.Instance.T
	case spec.Map != "":
		m, err := s.builtinMap(spec.Map)
		if err != nil {
			return inst, err
		}
		inst.System = m.S
	default:
		return inst, fmt.Errorf("request names neither an inline instance nor a builtin map")
	}
	if spec.Units > 0 {
		wl, err := wsp.UniformWorkload(inst.System.W, spec.Units)
		if err != nil {
			return inst, err
		}
		inst.Workload = wl
	}
	if len(inst.Workload.Units) == 0 {
		return inst, fmt.Errorf("request carries no workload (set units or an instance workload)")
	}
	if spec.Horizon > 0 {
		inst.Horizon = spec.Horizon
	}
	if inst.Horizon <= 0 {
		return inst, fmt.Errorf("request carries no horizon")
	}
	return inst, nil
}

// requestConfig resolves the per-request solver configuration from the
// server base and the request's overrides.
func (s *Server) requestConfig(ov *SolveOverrides) (wsp.Config, error) {
	cfg := s.cfg.Solver
	if ov.Strategy != "" {
		st, err := wsp.ParseStrategy(ov.Strategy)
		if err != nil {
			return cfg, err
		}
		cfg.Strategy = st
	}
	if ov.Exact != nil {
		cfg.Exact = *ov.Exact
	}
	if ov.WorkBudget > 0 {
		cfg.WorkBudget = ov.WorkBudget
	}
	if ov.NodeBudget > 0 {
		cfg.NodeBudget = ov.NodeBudget
	}
	return cfg, nil
}

// solveCost is the admission charge for one solve under ov.
func (s *Server) solveCost(ov *SolveOverrides) int64 {
	if ov.WorkBudget > 0 {
		return ov.WorkBudget
	}
	return s.cfg.SolveCost
}

// solveContext merges the server's deadline policy with the client's
// request: default when absent, clamped to MaxDeadline, layered on the
// request context so a client disconnect still cancels the solve.
func (s *Server) solveContext(r *http.Request, deadlineMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultDeadline
	if deadlineMS > 0 {
		d = time.Duration(deadlineMS) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return context.WithTimeout(r.Context(), d)
}

// admitOrReject runs the admission gate for a request charging cost units,
// returning a non-nil release closure on success and writing the 429/503
// itself on rejection.
func (s *Server) admitOrReject(w http.ResponseWriter, r *http.Request, cost int64) func() {
	if s.draining.Load() {
		s.met.rejectedDrain.Add(1)
		w.Header().Set("Connection", "close")
		s.writeError(w, http.StatusServiceUnavailable, "draining", "server is draining", 0)
		return nil
	}
	release, occ, d := s.adm.admit(clientID(r), cost)
	if d != nil {
		s.deg.observeReject()
		if d.reason == "load" {
			s.met.rejectedLoad.Add(1)
			s.writeError(w, http.StatusTooManyRequests, "over-capacity",
				fmt.Sprintf("all %d solve slots busy", s.cfg.MaxInFlight), d.retryAfter)
		} else {
			s.met.rejectedBudget.Add(1)
			s.writeError(w, http.StatusTooManyRequests, "work-budget",
				"client work budget exhausted", d.retryAfter)
		}
		return nil
	}
	s.met.admitted.Add(1)
	s.met.inFlight.Add(1)
	s.deg.observeAdmit(occ)
	return func() {
		s.met.inFlight.Add(-1)
		release()
	}
}

// solveGuarded runs one solve under the per-request panic isolation and
// the fault-injection hook, with a warm scratch checked out by topology
// signature. A panic is converted into an error wrapping errPanic — the
// daemon keeps serving — and the panicked scratch is discarded rather than
// returned to the warm pool.
func (s *Server) solveGuarded(ctx context.Context, cfg wsp.Config, inst wsp.Instance, info faultinject.Info) (res *wsp.Result, err error) {
	sig := inst.System.StructureSignature()
	clean := false
	var sc *wsp.Scratch
	defer func() {
		if p := recover(); p != nil {
			s.met.panics.Add(1)
			res, err = nil, fmt.Errorf("%w: %v", errPanic, p)
		}
		if sc != nil {
			if clean {
				s.cache.release(sig, sc)
			} else {
				s.cache.discard(sig)
			}
		}
	}()
	if s.cfg.Fault != nil {
		if err := s.cfg.Fault(ctx, info); err != nil {
			return nil, err
		}
	}
	sc, err = s.cache.checkout(ctx, sig)
	if err != nil {
		return nil, err
	}
	res, err = s.solverFor(cfg).SolveWithScratch(ctx, inst, sc)
	clean = true
	return res, err
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.met.requests.Add(1)
	var req SolveRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad-request", err.Error(), 0)
		return
	}
	inst, err := s.buildInstance(&req.InstanceSpec)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad-instance", err.Error(), 0)
		return
	}
	cfg, err := s.requestConfig(&req.SolveOverrides)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad-request", err.Error(), 0)
		return
	}
	release := s.admitOrReject(w, r, s.solveCost(&req.SolveOverrides))
	if release == nil {
		return
	}
	defer release()

	ctx, cancel := s.solveContext(r, req.DeadlineMS)
	defer cancel()

	var steps []string
	if !req.NoDegrade {
		cfg, steps = degradeConfig(cfg, s.deg.rung())
	}
	info := faultinject.Info{Path: "/v1/solve", Client: clientID(r), Horizon: inst.Horizon}
	start := time.Now()
	res, err := s.solveGuarded(ctx, cfg, inst, info)
	if err != nil && errors.Is(err, wsp.ErrBudgetExhausted) {
		// Budget exhaustion is itself a load signal — and, when the
		// request allows degradation, a recoverable one: answer with the
		// cheap strategy instead of erroring.
		s.deg.observeExhausted()
		if !req.NoDegrade && cfg.Strategy != wsp.RoutePacking {
			var more []string
			cfg, more = degradeConfig(cfg, 2)
			steps = append(steps, more...)
			res, err = s.solveGuarded(ctx, cfg, inst, info)
		}
	}
	if err != nil {
		status, code := errStatus(err)
		if code == "budget-exhausted" {
			s.met.budgetExhausted.Add(1)
		}
		s.writeError(w, status, code, err.Error(), 0)
		return
	}
	s.met.completed.Add(1)
	if len(steps) > 0 {
		s.met.degraded.Add(1)
	}
	writeJSON(w, http.StatusOK, SolveResponse{
		OK:           true,
		Degraded:     len(steps) > 0,
		DegradeSteps: steps,
		Strategy:     cfg.Strategy.String(),
		Agents:       res.Stats.Agents,
		Cycles:       len(res.CycleSet.Cycles),
		Attempts:     res.Attempts,
		ServicedAt:   res.Sim.ServicedAt,
		ElapsedMS:    float64(time.Since(start)) / float64(time.Millisecond),
	})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.met.requests.Add(1)
	var req BatchRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad-request", err.Error(), 0)
		return
	}
	if len(req.Instances) == 0 {
		s.writeError(w, http.StatusBadRequest, "bad-request", "batch carries no instances", 0)
		return
	}
	if len(req.Instances) > s.cfg.MaxBatch {
		s.writeError(w, http.StatusUnprocessableEntity, "batch-too-large",
			fmt.Sprintf("batch of %d exceeds the %d-instance bound", len(req.Instances), s.cfg.MaxBatch), 0)
		return
	}
	insts := make([]wsp.Instance, len(req.Instances))
	for i := range req.Instances {
		inst, err := s.buildInstance(&req.Instances[i])
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "bad-instance",
				fmt.Sprintf("instance %d: %v", i, err), 0)
			return
		}
		insts[i] = inst
	}
	cfg, err := s.requestConfig(&req.SolveOverrides)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad-request", err.Error(), 0)
		return
	}
	release := s.admitOrReject(w, r, s.solveCost(&req.SolveOverrides)*int64(len(insts)))
	if release == nil {
		return
	}
	defer release()

	ctx, cancel := s.solveContext(r, req.DeadlineMS)
	defer cancel()
	var steps []string
	if !req.NoDegrade {
		cfg, steps = degradeConfig(cfg, s.deg.rung())
	}

	var results []wsp.BatchResult
	err = func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				s.met.panics.Add(1)
				err = fmt.Errorf("%w: %v", errPanic, p)
			}
		}()
		if s.cfg.Fault != nil {
			info := faultinject.Info{Path: "/v1/batch", Client: clientID(r)}
			if err := s.cfg.Fault(ctx, info); err != nil {
				return err
			}
		}
		results = s.solverFor(cfg).SolveBatch(ctx, insts)
		return nil
	}()
	if err != nil {
		status, code := errStatus(err)
		s.writeError(w, status, code, err.Error(), 0)
		return
	}

	resp := BatchResponse{OK: true, Degraded: len(steps) > 0, DegradeSteps: steps}
	for _, br := range results {
		item := BatchItem{ElapsedMS: float64(br.Elapsed) / float64(time.Millisecond)}
		if br.Err != nil {
			_, item.Code = errStatus(br.Err)
			item.Error = br.Err.Error()
			if item.Code == "budget-exhausted" {
				s.deg.observeExhausted()
			}
		} else {
			item.OK = true
			item.Agents = br.Res.Stats.Agents
			item.ServicedAt = br.Res.Sim.ServicedAt
		}
		resp.Items = append(resp.Items, item)
	}
	s.met.completed.Add(1)
	if resp.Degraded {
		s.met.degraded.Add(1)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.met.requests.Add(1)
	var req SweepRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad-request", err.Error(), 0)
		return
	}
	points := len(req.Corridors) * len(req.Lens) * req.Points
	if points <= 0 {
		s.writeError(w, http.StatusBadRequest, "bad-request",
			"sweep needs corridors, lens, and points", 0)
		return
	}
	if points > s.cfg.MaxSweepPoints {
		s.writeError(w, http.StatusUnprocessableEntity, "sweep-too-large",
			fmt.Sprintf("sweep of %d evaluations exceeds the %d bound", points, s.cfg.MaxSweepPoints), 0)
		return
	}
	cfg, err := s.requestConfig(&req.SolveOverrides)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad-request", err.Error(), 0)
		return
	}
	release := s.admitOrReject(w, r, s.solveCost(&req.SolveOverrides)*int64(points))
	if release == nil {
		return
	}
	defer release()

	ctx, cancel := s.solveContext(r, req.DeadlineMS)
	defer cancel()
	var steps []string
	if !req.NoDegrade {
		cfg, steps = degradeConfig(cfg, s.deg.rung())
	}

	stripes, products := req.Stripes, req.Products
	if stripes <= 0 {
		stripes = 1
	}
	if products <= 0 {
		products = 2
	}
	spec := wsp.SweepSpec{
		Corridors: req.Corridors, Lens: req.Lens,
		Stripes: stripes, Products: products,
		Units: req.Units, Points: req.Points, Horizon: req.Horizon,
	}
	if req.Stream {
		s.streamSweep(w, r, ctx, cfg, spec, steps)
		return
	}
	var cells []wsp.SweepCell
	err = func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				s.met.panics.Add(1)
				err = fmt.Errorf("%w: %v", errPanic, p)
			}
		}()
		if s.cfg.Fault != nil {
			info := faultinject.Info{Path: "/v1/sweep", Client: clientID(r)}
			if err := s.cfg.Fault(ctx, info); err != nil {
				return err
			}
		}
		cells, err = s.solverFor(cfg).Sweep(ctx, spec)
		return err
	}()
	if err != nil {
		status, code := errStatus(err)
		s.writeError(w, status, code, err.Error(), 0)
		return
	}

	resp := SweepResponse{OK: true, Degraded: len(steps) > 0, DegradeSteps: steps}
	for _, c := range cells {
		resp.Cells = append(resp.Cells, sweepCellResult(c))
	}
	s.met.completed.Add(1)
	if resp.Degraded {
		s.met.degraded.Add(1)
	}
	writeJSON(w, http.StatusOK, resp)
}

// sweepCellResult converts one engine cell to its wire form, mapping
// per-point errors through the taxonomy exactly like the batch endpoint.
func sweepCellResult(c wsp.SweepCell) SweepCellResult {
	cell := SweepCellResult{Corridor: c.Corridor, MaxLen: c.MaxLen, Components: c.Stats.Components}
	for _, pt := range c.Points {
		pr := SweepPointResult{Units: pt.Units}
		if pt.Err != nil {
			_, pr.Code = errStatus(pt.Err)
		} else {
			pr.OK = true
			pr.Agents = pt.Result.Stats.Agents
		}
		cell.Points = append(cell.Points, pr)
	}
	return cell
}

// streamSweep is handleSweep's NDJSON tail: one "cell" line per completed
// topology (flushed immediately), then a terminal "summary" line — the
// same discipline as /v1/lifelong. Failures before the first cell use the
// normal error envelope; once the 200 is committed, errors travel in-band
// as an "error" line and the outcome counters are bumped via countStatus.
func (s *Server) streamSweep(w http.ResponseWriter, r *http.Request, ctx context.Context, cfg wsp.Config, spec wsp.SweepSpec, steps []string) {
	// The per-cell fault hook aborts through a cause-carrying cancel so the
	// walk's next topology fails with the hook's error attached (the cancel
	// taxonomy then maps it exactly like a mid-solve failure).
	runCtx, abort := context.WithCancelCause(ctx)
	defer abort(nil)

	cid := clientID(r)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	streamed := false
	cellsOut := 0
	observe := func(c wsp.SweepCell) {
		// Per-cell fault hook (Info.Horizon carries the cell index): the
		// faultinject harness stalls or aborts walks between cells with it.
		if s.cfg.Fault != nil {
			if err := s.cfg.Fault(runCtx, faultinject.Info{Path: "/v1/sweep", Client: cid, Horizon: cellsOut}); err != nil {
				abort(err)
				return
			}
		}
		if !streamed {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			streamed = true
		}
		enc.Encode(SweepCellLine{Type: "cell", SweepCellResult: sweepCellResult(c)})
		if flusher != nil {
			flusher.Flush()
		}
		cellsOut++
	}

	start := time.Now()
	err := func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				s.met.panics.Add(1)
				err = fmt.Errorf("%w: %v", errPanic, p)
			}
		}()
		if s.cfg.Fault != nil {
			if err := s.cfg.Fault(runCtx, faultinject.Info{Path: "/v1/sweep", Client: cid}); err != nil {
				return err
			}
		}
		_, err = s.solverFor(cfg).SweepObserve(runCtx, spec, observe)
		if err == nil && runCtx.Err() != nil {
			// The per-cell hook aborted on the walk's final topology: no
			// later pre-check could observe the cancellation, so surface
			// the cause here instead of a bogus ok summary.
			err = context.Cause(runCtx)
		}
		return err
	}()
	if err != nil {
		status, code := errStatus(err)
		if !streamed {
			s.writeError(w, status, code, err.Error(), 0)
			return
		}
		s.countStatus(status)
		enc.Encode(SweepErrorLine{Type: "error", Code: code, Error: err.Error(), Cells: cellsOut})
		if flusher != nil {
			flusher.Flush()
		}
		return
	}
	s.met.completed.Add(1)
	if len(steps) > 0 {
		s.met.degraded.Add(1)
	}
	line := SweepSummaryLine{
		Type:         "summary",
		OK:           true,
		Degraded:     len(steps) > 0,
		DegradeSteps: steps,
		Cells:        cellsOut,
		ElapsedMS:    float64(time.Since(start)) / float64(time.Millisecond),
	}
	if !streamed {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
	}
	enc.Encode(line)
	if flusher != nil {
		flusher.Flush()
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}
