package core

import (
	"context"
	"testing"

	"repro/internal/testmaps"
	"repro/internal/warehouse"
)

func TestSolveAllStrategiesOnRing(t *testing.T) {
	w, s := testmaps.MustRing()
	wl, err := warehouse.NewWorkload(w, []int{8, 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{RoutePacking, SequentialFlows, ContractILP} {
		t.Run(strat.String(), func(t *testing.T) {
			res, err := Solve(context.Background(), s, wl, 800, Options{Strategy: strat})
			if err != nil {
				t.Fatal(err)
			}
			if res.Plan == nil || res.CycleSet == nil {
				t.Fatal("missing plan or cycle set")
			}
			if ok, why := warehouse.Services(w, res.Plan, wl); !ok {
				t.Fatalf("not serviced: %v", why)
			}
			if res.Timing.Synthesis <= 0 {
				t.Error("synthesis timing not recorded")
			}
			if strat == RoutePacking && res.FlowSet != nil {
				t.Error("route packing should not produce a flow set")
			}
			if strat != RoutePacking && res.FlowSet == nil {
				t.Error("flow strategies should record the flow set")
			}
			if res.Attempts < 1 {
				t.Errorf("attempts = %d", res.Attempts)
			}
		})
	}
}

func TestSolveSkipRealization(t *testing.T) {
	w, s := testmaps.MustRing()
	wl, err := warehouse.NewWorkload(w, []int{4, 0})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(context.Background(), s, wl, 800, Options{SkipRealization: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan != nil {
		t.Error("plan produced despite SkipRealization")
	}
	if res.CycleSet == nil {
		t.Error("cycle set missing")
	}
}

func TestSolveInfeasibleReportsError(t *testing.T) {
	w, s := testmaps.MustRing()
	wl, err := warehouse.NewWorkload(w, []int{300, 300})
	if err != nil {
		t.Fatal(err)
	}
	// Horizon far too short for 600 units through a capacity-2 bottleneck.
	if _, err := Solve(context.Background(), s, wl, 120, Options{}); err == nil {
		t.Error("Solve accepted an infeasible instance")
	}
}

func TestSolveAdmissionCheck(t *testing.T) {
	w, s := testmaps.MustRing()
	wl, err := warehouse.NewWorkload(w, []int{300, 0})
	if err != nil {
		t.Fatal(err)
	}
	// Overloaded: with the check on, the failure carries the certificate.
	_, err = Solve(context.Background(), s, wl, 120, Options{AdmissionCheck: true})
	if err == nil {
		t.Fatal("overloaded instance accepted")
	}
	// A feasible instance passes through the check unchanged.
	wl2, _ := warehouse.NewWorkload(w, []int{5, 3})
	res, err := Solve(context.Background(), s, wl2, 800, Options{AdmissionCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sim.ServicedAt < 0 {
		t.Error("not serviced")
	}
}

func TestSolveUnknownStrategy(t *testing.T) {
	w, s := testmaps.MustRing()
	wl, _ := warehouse.NewWorkload(w, []int{1, 0})
	if _, err := Solve(context.Background(), s, wl, 800, Options{Strategy: Strategy(99)}); err == nil {
		t.Error("unknown strategy accepted")
	}
	if Strategy(99).String() != "unknown" {
		t.Error("Strategy.String for unknown value")
	}
}

func TestStrategyStrings(t *testing.T) {
	if RoutePacking.String() != "route-packing" ||
		SequentialFlows.String() != "sequential-flows" ||
		ContractILP.String() != "contract-ilp" {
		t.Error("strategy names changed")
	}
}
