package calibrate

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/flow"
	"repro/internal/lp"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Verdict
	}{
		{nil, VerdictSolved},
		{fmt.Errorf("wrap: %w", lp.ErrCanceled), VerdictCanceled},
		{fmt.Errorf("wrap: %w", lp.ErrBudgetExhausted), VerdictBudget},
		{fmt.Errorf("wrap: %w", flow.ErrHorizonTooShort), VerdictHorizon},
		{fmt.Errorf("wrap: %w", flow.ErrInfeasible), VerdictInfeasible},
		{fmt.Errorf("synthesis exploded"), VerdictError},
		// A cancelled solve that also exhausted its budget is canceled:
		// the caller walked away; the budget says nothing.
		{fmt.Errorf("%w after %w", lp.ErrCanceled, lp.ErrBudgetExhausted), VerdictCanceled},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%v) = %s, want %s", tc.err, got, tc.want)
		}
	}
}

func smallCorpus(t *testing.T) []*datasets.Instance {
	t.Helper()
	insts, err := datasets.Generate(1, "rings")
	if err != nil {
		t.Fatal(err)
	}
	return insts[:2]
}

// contractCorpus returns an instance every strategy solves, so the
// contract-path knob tests measure budgets rather than feasibility.
func contractCorpus(t *testing.T) []*datasets.Instance {
	t.Helper()
	insts, err := datasets.Generate(1, "stripes")
	if err != nil {
		t.Fatal(err)
	}
	return insts[:1]
}

// TestRunDeterministic pins the report determinism contract: two runs of
// the same corpus under the same knobs agree on every verdict and every
// work figure (latency is explicitly exempt).
func TestRunDeterministic(t *testing.T) {
	insts := smallCorpus(t)
	a := Run(context.Background(), insts, Knobs{}, "a", 1)
	b := Run(context.Background(), insts, Knobs{}, "b", 1)
	if len(a.Instances) != len(b.Instances) {
		t.Fatalf("instance counts differ: %d vs %d", len(a.Instances), len(b.Instances))
	}
	for i := range a.Instances {
		ia, ib := a.Instances[i], b.Instances[i]
		if ia.Verdict != ib.Verdict {
			t.Errorf("%s: verdict %s vs %s", ia.Name, ia.Verdict, ib.Verdict)
		}
		if ia.Work != ib.Work {
			t.Errorf("%s: work %d vs %d", ia.Name, ia.Work, ib.Work)
		}
		if ia.Verdict != VerdictSolved {
			t.Errorf("%s: %s (%s), want solved", ia.Name, ia.Verdict, ia.Err)
		}
	}
}

// TestCorpusSolvableByRoutePacking pins corpus health: every instance of
// every family must solve under the flagship route-packing strategy with
// default knobs. (The flows/contract strategies legitimately fail parts
// of the corpus — that coverage gap is exactly what reports measure — but
// an instance no strategy solves is a broken generator, not a scenario.)
func TestCorpusSolvableByRoutePacking(t *testing.T) {
	insts, err := datasets.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	rep := Run(context.Background(), insts, Knobs{}, "health", 1)
	for _, ir := range rep.Instances {
		if ir.Verdict != VerdictSolved {
			t.Errorf("%s: %s (%s)", ir.Name, ir.Verdict, ir.Err)
		}
	}
}

func TestRunReportShape(t *testing.T) {
	insts := contractCorpus(t)
	rep := Run(context.Background(), insts, Knobs{Strategy: core.ContractILP}, "shape", 7)
	if rep.Schema != ReportSchema {
		t.Errorf("schema %q", rep.Schema)
	}
	if rep.Label != "shape" || rep.Seed != 7 {
		t.Errorf("label %q seed %d", rep.Label, rep.Seed)
	}
	if len(rep.Families) != 1 || rep.Families[0].Family != "stripes" {
		t.Fatalf("families %+v", rep.Families)
	}
	f := rep.Families[0]
	if f.Instances != len(insts) || f.Solved != f.Verdicts[VerdictSolved] {
		t.Errorf("family stats %+v", f)
	}
	if f.P50Millis > f.P95Millis || f.P95Millis > f.P99Millis {
		t.Errorf("percentiles not monotone: %+v", f)
	}
	if f.Solved > 0 && f.Work == 0 {
		t.Error("contract solves reported zero work; meter tap missing")
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"schema":"wsp-corpus-report/v1"`, `"strategy":"contract-ilp"`, `"simplex":"auto"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("report JSON missing %s", want)
		}
	}
}

// TestCalibrateStable pins the calibration stability contract: the same
// corpus and spec produce the same candidate order and the same
// recommendation, and a starved work budget scores below a clean solve.
func TestCalibrateStable(t *testing.T) {
	insts := contractCorpus(t)
	spec := Spec{
		Base:        Knobs{Strategy: core.ContractILP},
		WorkBudgets: []int64{1, 0},
	}
	a, err := Calibrate(context.Background(), insts, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Calibrate(context.Background(), insts, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Candidates) != 2 {
		t.Fatalf("candidates = %d, want 2", len(a.Candidates))
	}
	if a.Recommended != b.Recommended {
		t.Errorf("recommendation unstable: %+v vs %+v", a.Recommended, b.Recommended)
	}
	for i := range a.Candidates {
		if a.Candidates[i].Knobs != b.Candidates[i].Knobs || a.Candidates[i].Score != b.Candidates[i].Score {
			t.Errorf("candidate %d unstable: %+v vs %+v", i, a.Candidates[i], b.Candidates[i])
		}
	}
	best, worst := a.Candidates[0], a.Candidates[1]
	if best.Knobs.WorkBudget != 0 || best.Solved != 1 {
		t.Errorf("best candidate %+v, want the unbudgeted clean solve", best)
	}
	if worst.Budget != 1 || worst.Score >= best.Score {
		t.Errorf("starved candidate %+v should be budget-stopped and score below %v", worst, best.Score)
	}
	var sb strings.Builder
	if err := a.Format(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "recommended: ") {
		t.Errorf("Format output missing recommendation:\n%s", sb.String())
	}
}

func TestWriteBenchLines(t *testing.T) {
	rep := &Report{
		Instances: []InstanceResult{
			{Name: "demand/bursty-0", Family: "demand", Verdict: VerdictSolved, Millis: 2.5, Work: 42},
			{Name: "rings/ring-10x6-L6-st1", Family: "rings", Verdict: VerdictBudget, Millis: 1, Work: 7},
		},
	}
	var sb strings.Builder
	if err := WriteBenchLines(&sb, rep); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"BenchmarkCorpus/family=demand/inst=bursty-0",
		"2500000 ns/op",
		"42 work/op",
		"1 solved",
		"BenchmarkCorpus/family=rings/inst=ring-10x6-L6-st1",
		"0 solved",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("bench lines missing %q in:\n%s", want, out)
		}
	}
}

func TestPercentile(t *testing.T) {
	s := []float64{1, 2, 3, 4}
	if got := percentile(s, 0.5); got != 2 {
		t.Errorf("p50 = %v, want 2", got)
	}
	if got := percentile(s, 0.99); got != 4 {
		t.Errorf("p99 = %v, want 4", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
}
