package flow

import (
	"context"
	"testing"

	"repro/internal/grid"
	"repro/internal/traffic"
	"repro/internal/warehouse"
)

// ringSystem builds a 10x6 ring warehouse used across the flow tests: the
// passable cells form a one-way ring around an interior block. The north
// edge is a shelving row (stocking products 0 and 1), the south edge a
// station queue, the sides transports. Lane capacities (⌊len/2⌋): south 5,
// east 2, north 4, west 2 — enough for one unit-rate flow per product plus
// the empty return flow.
func ringSystem(t *testing.T) (*warehouse.Warehouse, *traffic.System) {
	t.Helper()
	g, _, stations, err := grid.Parse(
		"..........\n" +
			".@@######.\n" +
			".########.\n" +
			".########.\n" +
			".########.\n" +
			"....T.....")
	if err != nil {
		t.Fatal(err)
	}
	shelfAccess := []grid.VertexID{
		g.At(grid.Coord{X: 1, Y: 5}),
		g.At(grid.Coord{X: 2, Y: 5}),
	}
	var stationVs []grid.VertexID
	for _, c := range stations {
		stationVs = append(stationVs, g.At(c))
	}
	w, err := warehouse.New(g, shelfAccess, stationVs, 2, [][]int{{300, 0}, {0, 300}})
	if err != nil {
		t.Fatal(err)
	}
	at := func(x, y int) grid.VertexID { return g.At(grid.Coord{X: x, Y: y}) }
	var bottom, east, top, west []grid.VertexID
	for x := 0; x <= 9; x++ {
		bottom = append(bottom, at(x, 0))
	}
	for y := 1; y <= 5; y++ {
		east = append(east, at(9, y))
	}
	for x := 8; x >= 0; x-- {
		top = append(top, at(x, 5))
	}
	for y := 4; y >= 1; y-- {
		west = append(west, at(0, y))
	}
	s, err := traffic.Build(w, [][]grid.VertexID{bottom, east, top, west})
	if err != nil {
		t.Fatal(err)
	}
	return w, s
}

func ringWorkload(t *testing.T, w *warehouse.Warehouse, u0, u1 int) warehouse.Workload {
	t.Helper()
	wl, err := warehouse.NewWorkload(w, []int{u0, u1})
	if err != nil {
		t.Fatal(err)
	}
	return wl
}

func TestPeriods(t *testing.T) {
	_, s := ringSystem(t)
	tc, qc, qeff, err := periods(s, 240, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tc != 20 { // max component 10 cells -> tc = 20
		t.Errorf("tc = %d, want 20", tc)
	}
	if qc != 12 || qeff != 10 {
		t.Errorf("(qc,qeff) = (%d,%d), want (12,10)", qc, qeff)
	}
	if _, _, _, err := periods(s, 5, 0); err == nil {
		t.Error("horizon shorter than a period accepted")
	}
}

func TestSynthesizeSequentialRing(t *testing.T) {
	w, s := ringSystem(t)
	wl := ringWorkload(t, w, 10, 5)
	set, err := SynthesizeSequential(context.Background(), s, wl, 600, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if errs := set.Check(wl); len(errs) > 0 {
		t.Fatalf("Check: %v", errs)
	}
	// The single queue must receive both products at rate >= 1.
	q := s.StationQueues()[0]
	if set.Fout[q][0] < 1 || set.Fout[q][1] < 1 {
		t.Errorf("Fout at queue = %v", set.Fout[q])
	}
	// The single row must emit both products.
	r := s.ShelvingRows()[0]
	if set.Fin[r][0] < 1 || set.Fin[r][1] < 1 {
		t.Errorf("Fin at row = %v", set.Fin[r])
	}
	if set.Quota[r][0] != 10 || set.Quota[r][1] != 5 {
		t.Errorf("Quota = %v, want [10 5]", set.Quota[r])
	}
}

func TestSynthesizeSequentialSatisfiesContracts(t *testing.T) {
	w, s := ringSystem(t)
	wl := ringWorkload(t, w, 8, 8)
	set, err := SynthesizeSequential(context.Background(), s, wl, 600, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyContracts(set, wl); err != nil {
		t.Errorf("sequential set violates the contract system: %v", err)
	}
}

func TestSynthesizeContractRing(t *testing.T) {
	w, s := ringSystem(t)
	wl := ringWorkload(t, w, 6, 3)
	set, err := SynthesizeContract(context.Background(), s, wl, 600, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if errs := set.Check(wl); len(errs) > 0 {
		t.Fatalf("Check: %v", errs)
	}
	if err := VerifyContracts(set, wl); err != nil {
		t.Errorf("contract set violates the contract system: %v", err)
	}
}

func TestSynthesizeContractExactEngine(t *testing.T) {
	w, s := ringSystem(t)
	wl := ringWorkload(t, w, 2, 2)
	set, err := SynthesizeContract(context.Background(), s, wl, 600, Options{ExactILP: true})
	if err != nil {
		t.Fatal(err)
	}
	if errs := set.Check(wl); len(errs) > 0 {
		t.Fatalf("Check: %v", errs)
	}
}

func TestSynthesizeInfeasibleDemandRate(t *testing.T) {
	w, s := ringSystem(t)
	// Demand so large the per-period rate exceeds the ring capacity: with
	// T=120 (qc=10, qeff small) demand 300 needs rate ~100/period >> cap 1.
	wl := ringWorkload(t, w, 300, 0)
	if _, err := SynthesizeSequential(context.Background(), s, wl, 120, Options{}); err == nil {
		t.Error("sequential synthesis accepted an infeasible rate")
	}
	if _, err := SynthesizeContract(context.Background(), s, wl, 120, Options{}); err == nil {
		t.Error("contract synthesis accepted an infeasible rate")
	}
}

func TestSynthesizeZeroWorkload(t *testing.T) {
	w, s := ringSystem(t)
	wl := ringWorkload(t, w, 0, 0)
	set, err := SynthesizeSequential(context.Background(), s, wl, 600, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if errs := set.Check(wl); len(errs) > 0 {
		t.Errorf("Check: %v", errs)
	}
	if got := set.EnteringTotal(s.StationQueues()[0]); got != 0 {
		t.Errorf("zero workload routed flow %d", got)
	}
}

func TestCheckCatchesCorruption(t *testing.T) {
	w, s := ringSystem(t)
	wl := ringWorkload(t, w, 4, 0)
	set, err := SynthesizeSequential(context.Background(), s, wl, 600, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Violate conservation.
	set.F[0][0] += 1
	if errs := set.Check(wl); len(errs) == 0 {
		t.Error("Check missed a conservation violation")
	}
}

func TestCompileComponentContractShape(t *testing.T) {
	_, s := ringSystem(t)
	r := s.ShelvingRows()[0]
	c, err := CompileComponentContract(s, r, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Assumptions) != 1 {
		t.Errorf("assumptions = %d, want 1 (capacity)", len(c.Assumptions))
	}
	// Guarantees: conservation per commodity (3) + fincap per product (2) +
	// fin-needs-empty (1) = 6.
	if len(c.Guarantees) != 6 {
		t.Errorf("guarantees = %d, want 6", len(c.Guarantees))
	}
	q := s.StationQueues()[0]
	cq, err := CompileComponentContract(s, q, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Conservation (3) + foutcap per product (2) = 5.
	if len(cq.Guarantees) != 5 {
		t.Errorf("queue guarantees = %d, want 5", len(cq.Guarantees))
	}
	tr := s.Transports()[0]
	ct, err := CompileComponentContract(s, tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ct.Guarantees) != 3 {
		t.Errorf("transport guarantees = %d, want 3 (conservation only)", len(ct.Guarantees))
	}
}

func TestCompileWorkloadContract(t *testing.T) {
	w, s := ringSystem(t)
	wl := ringWorkload(t, w, 5, 0)
	c, err := CompileWorkloadContract(s, wl, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Guarantees) != 1 {
		t.Errorf("guarantees = %d, want 1 (only product 0 demanded)", len(c.Guarantees))
	}
	if len(c.Assumptions) != 0 {
		t.Errorf("workload contract must make no assumptions, got %d", len(c.Assumptions))
	}
}

func TestEdgeIndex(t *testing.T) {
	_, s := ringSystem(t)
	wl := warehouse.Workload{Units: []int{0, 0}}
	set, err := SynthesizeSequential(context.Background(), s, wl, 600, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for e, edge := range set.Edges {
		if got := set.EdgeIndex(edge[0], edge[1]); got != e {
			t.Errorf("EdgeIndex(%v) = %d, want %d", edge, got, e)
		}
	}
	if got := set.EdgeIndex(0, 0); got != -1 {
		t.Errorf("EdgeIndex(self-loop) = %d, want -1", got)
	}
}
