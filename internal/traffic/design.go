package traffic

import (
	"fmt"
	"strings"

	"repro/internal/grid"
	"repro/internal/warehouse"
)

// SplitOptions tunes SplitLanes.
type SplitOptions struct {
	// MaxLen caps component length (and thereby the cycle time tc = 2m).
	// Zero means the default of 10.
	MaxLen int
}

// SplitLanes turns directed lanes (long simple paths produced by a map
// designer) into component-sized cell paths:
//
//   - a segment never mixes shelf-access and station cells (§IV-A forbids a
//     component containing both);
//   - segments are at most MaxLen cells long, and over-long runs are split
//     into balanced pieces (⌈L/MaxLen⌉ pieces of near-equal length) so that
//     no piece degenerates to a low-capacity tail — a 12-cell run under
//     MaxLen 9 becomes 6+6 (capacities 3+3), not 9+3 (capacities 4+1, which
//     would throttle every agent cycle passing through the run);
//   - no segment is a single cell (capacity ⌊1/2⌋ = 0 would make it
//     unusable).
//
// Lane junction points must already be lane boundaries: connections are only
// wired exit-to-entry, so a turn in the middle of a lane is unreachable.
func SplitLanes(w *warehouse.Warehouse, lanes [][]grid.VertexID, opts SplitOptions) ([][]grid.VertexID, error) {
	maxLen := opts.MaxLen
	if maxLen == 0 {
		maxLen = 10
	}
	if maxLen < 2 {
		return nil, fmt.Errorf("traffic: MaxLen %d must be at least 2", maxLen)
	}
	var out [][]grid.VertexID
	for li, lane := range lanes {
		if len(lane) < 2 {
			return nil, fmt.Errorf("traffic: lane %d has %d cells, want at least 2", li, len(lane))
		}
		// Pass 1: split at kind boundaries only.
		var runs [][]grid.VertexID
		var cur []grid.VertexID
		hasShelf, hasStation := false, false
		for _, v := range lane {
			cellShelf := w.ShelfColumn(v) >= 0
			cellStation := w.IsStation(v)
			if (cellShelf && hasStation) || (cellStation && hasShelf) {
				runs = append(runs, cur)
				cur = nil
				hasShelf, hasStation = false, false
			}
			cur = append(cur, v)
			hasShelf = hasShelf || cellShelf
			hasStation = hasStation || cellStation
		}
		runs = append(runs, cur)
		// Fix one-cell runs by borrowing from a neighboring run.
		for i := 0; i < len(runs); i++ {
			if len(runs[i]) != 1 {
				continue
			}
			switch {
			case i > 0 && len(runs[i-1]) > 2:
				last := runs[i-1][len(runs[i-1])-1]
				runs[i-1] = runs[i-1][:len(runs[i-1])-1]
				runs[i] = append([]grid.VertexID{last}, runs[i]...)
			case i+1 < len(runs) && len(runs[i+1]) > 2:
				first := runs[i+1][0]
				runs[i+1] = runs[i+1][1:]
				runs[i] = append(runs[i], first)
			case i > 0:
				merged := append(runs[i-1], runs[i]...)
				if segmentMixes(w, merged) {
					return nil, fmt.Errorf("traffic: lane %d leaves an unfixable 1-cell segment", li)
				}
				runs[i-1] = merged
				runs = append(runs[:i], runs[i+1:]...)
				i--
			default:
				return nil, fmt.Errorf("traffic: lane %d too short to split", li)
			}
		}
		// Pass 2: balanced length split of each run. If balancing would
		// create a 1-cell piece (e.g. 3 cells under MaxLen 2), fall back to
		// fewer pieces and tolerate a slight MaxLen overflow: length only
		// influences the cycle time, while a capacity-0 component would be
		// unusable.
		for _, run := range runs {
			pieces := (len(run) + maxLen - 1) / maxLen
			if pieces > 1 && len(run)/pieces < 2 {
				pieces = len(run) / 2
				if pieces < 1 {
					pieces = 1
				}
			}
			base := len(run) / pieces
			extra := len(run) % pieces
			at := 0
			for p := 0; p < pieces; p++ {
				n := base
				if p < extra {
					n++
				}
				out = append(out, run[at:at+n])
				at += n
			}
		}
	}
	return out, nil
}

func segmentMixes(w *warehouse.Warehouse, cells []grid.VertexID) bool {
	hasShelf, hasStation := false, false
	for _, v := range cells {
		if w.ShelfColumn(v) >= 0 {
			hasShelf = true
		}
		if w.IsStation(v) {
			hasStation = true
		}
	}
	return hasShelf && hasStation
}

// Render draws the traffic system in the style of the paper's Fig. 4/5:
// shelves '@', stations 'T', obstacles '#', unused cells '.', component exit
// cells '!', and every other component cell an arrow pointing to the next
// cell in its component.
func Render(s *System) string {
	g := s.W.Graph
	w, h := g.Width(), g.Height()
	canvas := make([][]byte, h)
	for y := range canvas {
		canvas[y] = make([]byte, w)
		for x := range canvas[y] {
			if g.At(grid.Coord{X: x, Y: y}) != grid.None {
				canvas[y][x] = '.'
			} else {
				canvas[y][x] = '#'
			}
		}
	}
	put := func(v grid.VertexID, b byte) {
		c := g.Coord(v)
		canvas[c.Y][c.X] = b
	}
	for _, c := range s.Components {
		for i, v := range c.Cells {
			if i == len(c.Cells)-1 {
				put(v, '!')
				continue
			}
			d, ok := g.DirTo(v, c.Cells[i+1])
			if !ok {
				put(v, '?')
				continue
			}
			switch d {
			case grid.East:
				put(v, '>')
			case grid.West:
				put(v, '<')
			case grid.North:
				put(v, '^')
			case grid.South:
				put(v, 'v')
			}
		}
	}
	// Stations overlay their cell so the picking locations stay visible
	// even inside queue components (as in the paper's Fig. 4/5).
	for _, v := range s.W.Stations {
		c := g.Coord(v)
		canvas[c.Y][c.X] = 'T'
	}
	var b strings.Builder
	for row := h - 1; row >= 0; row-- {
		b.Write(canvas[row])
		b.WriteByte('\n')
	}
	return b.String()
}

// StructureSignature fingerprints the solver-relevant shape of a system:
// the product count plus every component's kind, capacity, and wiring. Two
// systems with equal signatures compile to structurally identical contract
// systems — shelf stock and the horizon enter only through right-hand
// sides — which is what lets an incremental solver re-target one compiled
// model across lifelong epochs (same floorplan, depleted stock) and design
// sweeps instead of recompiling per solve.
func (s *System) StructureSignature() string {
	var b strings.Builder
	fmt.Fprintf(&b, "p%d", s.W.NumProducts)
	for _, c := range s.Components {
		fmt.Fprintf(&b, ";%d:%d", int(c.Kind), c.Capacity())
		for _, j := range s.Inlets[c.ID] {
			fmt.Fprintf(&b, "<%d", j)
		}
		for _, j := range s.Outlets[c.ID] {
			fmt.Fprintf(&b, ">%d", j)
		}
	}
	return b.String()
}

// Stats summarizes a system for reports and experiment logs.
type Stats struct {
	Components    int
	ShelvingRows  int
	StationQueues int
	Transports    int
	Edges         int
	MaxLen        int
	CycleTime     int
	UnusedCells   int
}

// Summarize computes summary statistics for s.
func Summarize(s *System) Stats {
	st := Stats{
		Components: len(s.Components),
		MaxLen:     s.MaxComponentLen(),
		CycleTime:  s.CycleTime(),
	}
	used := 0
	for _, c := range s.Components {
		used += c.Len()
		switch c.Kind {
		case ShelvingRow:
			st.ShelvingRows++
		case StationQueue:
			st.StationQueues++
		case Transport:
			st.Transports++
		}
	}
	st.UnusedCells = s.W.Graph.NumVertices() - used
	st.Edges = len(s.Edges())
	return st
}
