package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// testFlags mirrors the wspd flag set shape closely enough to exercise
// every value kind applyOverrides must round-trip (string, int, int64,
// bool, duration).
func testFlags() (*flag.FlagSet, map[string]any) {
	fs := flag.NewFlagSet("wspd", flag.ContinueOnError)
	vals := map[string]any{
		"addr":            fs.String("addr", ":8080", ""),
		"max-inflight":    fs.Int("max-inflight", 0, ""),
		"deadline":        fs.Duration("deadline", 0, ""),
		"search-parallel": fs.Int("search-parallel", 0, ""),
		"no-degrade":      fs.Bool("no-degrade", false, ""),
		"client-rate":     fs.Int64("client-rate", 0, ""),
		"config":          fs.String("config", "", ""),
	}
	return fs, vals
}

func writeConfig(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wspd.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestConfigFileFillsDefaults(t *testing.T) {
	fs, vals := testFlags()
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	path := writeConfig(t, `{"addr": ":9090", "max_inflight": 16, "deadline": "45s",
		"search_parallel": 4, "no_degrade": true, "client_rate": 123456}`)
	if err := applyOverrides(fs, path); err != nil {
		t.Fatal(err)
	}
	if got := *vals["addr"].(*string); got != ":9090" {
		t.Errorf("addr = %q", got)
	}
	if got := *vals["max-inflight"].(*int); got != 16 {
		t.Errorf("max-inflight = %d", got)
	}
	if got := *vals["deadline"].(*time.Duration); got != 45*time.Second {
		t.Errorf("deadline = %v", got)
	}
	if got := *vals["search-parallel"].(*int); got != 4 {
		t.Errorf("search-parallel = %d", got)
	}
	if !*vals["no-degrade"].(*bool) {
		t.Error("no-degrade not applied")
	}
	if got := *vals["client-rate"].(*int64); got != 123456 {
		t.Errorf("client-rate = %d", got)
	}
}

func TestExplicitFlagBeatsEnvBeatsConfig(t *testing.T) {
	fs, vals := testFlags()
	if err := fs.Parse([]string{"-max-inflight", "3"}); err != nil {
		t.Fatal(err)
	}
	t.Setenv("WSPD_MAX_INFLIGHT", "7")
	t.Setenv("WSPD_SEARCH_PARALLEL", "2")
	path := writeConfig(t, `{"max_inflight": 16, "search_parallel": 8, "addr": ":7070"}`)
	if err := applyOverrides(fs, path); err != nil {
		t.Fatal(err)
	}
	if got := *vals["max-inflight"].(*int); got != 3 {
		t.Errorf("explicit flag overridden: max-inflight = %d, want 3", got)
	}
	if got := *vals["search-parallel"].(*int); got != 2 {
		t.Errorf("env override lost: search-parallel = %d, want 2", got)
	}
	if got := *vals["addr"].(*string); got != ":7070" {
		t.Errorf("config file value lost: addr = %q, want :7070", got)
	}
}

func TestConfigRejectsUnknownKeyAndBadValue(t *testing.T) {
	fs, _ := testFlags()
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := applyOverrides(fs, writeConfig(t, `{"max_inflght": 16}`)); err == nil {
		t.Error("typo'd config key accepted")
	}
	fs, _ = testFlags()
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := applyOverrides(fs, writeConfig(t, `{"deadline": "not-a-duration"}`)); err == nil {
		t.Error("unparseable config value accepted")
	}
	if err := applyOverrides(fs, filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing config file accepted")
	}
}

func TestNoConfigNoEnvKeepsDefaults(t *testing.T) {
	fs, vals := testFlags()
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := applyOverrides(fs, ""); err != nil {
		t.Fatal(err)
	}
	if got := *vals["addr"].(*string); got != ":8080" {
		t.Errorf("addr default clobbered: %q", got)
	}
}
