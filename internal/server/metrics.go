package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
)

// metrics is the server's counter set, exported as a flat JSON object at
// /debug/vars. Counters are monotonic; in_flight is a gauge. Everything is
// a plain atomic so the hot path never takes a lock to count.
type metrics struct {
	requests        atomic.Int64 // requests hitting a /v1 endpoint
	admitted        atomic.Int64 // requests that passed admission
	rejectedLoad    atomic.Int64 // 429: in-flight semaphore full
	rejectedBudget  atomic.Int64 // 429: client work budget exhausted
	rejectedDrain   atomic.Int64 // 503: refused because draining
	completed       atomic.Int64 // solves answered 200
	infeasible      atomic.Int64 // 422 outcomes (infeasible / horizon)
	deadline        atomic.Int64 // 504: server deadline fired mid-solve
	clientGone      atomic.Int64 // 499: client disconnected mid-solve
	panics          atomic.Int64 // 500: solver panic caught by recover
	budgetExhausted atomic.Int64 // solves undecided within work/node budget
	degraded        atomic.Int64 // responses labeled degraded
	cacheHits       atomic.Int64 // warm-scratch checkouts
	cacheMisses     atomic.Int64 // cold-scratch checkouts
	cacheEvictions  atomic.Int64 // LRU signature evictions
	cacheWaits      atomic.Int64 // single-flight waits behind a compile
	drains          atomic.Int64 // Drain() invocations
	inFlight        atomic.Int64 // gauge: admitted solves currently running
}

func (m *metrics) snapshot() map[string]int64 {
	return map[string]int64{
		"requests_total":         m.requests.Load(),
		"admitted_total":         m.admitted.Load(),
		"rejected_load_total":    m.rejectedLoad.Load(),
		"rejected_budget_total":  m.rejectedBudget.Load(),
		"rejected_drain_total":   m.rejectedDrain.Load(),
		"completed_total":        m.completed.Load(),
		"infeasible_total":       m.infeasible.Load(),
		"deadline_total":         m.deadline.Load(),
		"client_gone_total":      m.clientGone.Load(),
		"panics_total":           m.panics.Load(),
		"budget_exhausted_total": m.budgetExhausted.Load(),
		"degraded_total":         m.degraded.Load(),
		"cache_hits_total":       m.cacheHits.Load(),
		"cache_misses_total":     m.cacheMisses.Load(),
		"cache_evictions_total":  m.cacheEvictions.Load(),
		"cache_waits_total":      m.cacheWaits.Load(),
		"drains_total":           m.drains.Load(),
		"in_flight":              m.inFlight.Load(),
	}
}

// handleVars serves the /debug/vars-style counter dump: the flat server
// counters plus a nested "clients" object holding each client's admission
// ledger (requests / 429s / work charged), bounded to the client-table
// cardinality.
func (s *Server) handleVars(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	snap := make(map[string]any)
	for name, v := range s.met.snapshot() {
		snap[name] = v
	}
	snap["clients"] = s.adm.clientStats()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap) // maps marshal with sorted keys
}

// metricsNamespace prefixes every exposition name so wspd's series never
// collide with another job's in a shared Prometheus.
const metricsNamespace = "wspd_"

// labelEscaper quotes Prometheus label values (the exposition format's
// escaping rules: backslash, double quote, newline).
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// handleMetrics serves the same counter set in the Prometheus text
// exposition format (text/plain; version=0.0.4): one # TYPE line and one
// sample per series, names sorted, `wspd_` namespace, plus the per-client
// admission ledgers as client-labeled series. Everything except in_flight
// is a counter; in_flight is a gauge. Hand-rolled on purpose — a few
// dozen integers do not justify a client-library dependency.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.met.snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		kind := "counter"
		if !strings.HasSuffix(name, "_total") {
			kind = "gauge"
		}
		fmt.Fprintf(&b, "# TYPE %s%s %s\n%s%s %d\n",
			metricsNamespace, name, kind, metricsNamespace, name, snap[name])
	}
	clients := s.adm.clientStats()
	ids := make([]string, 0, len(clients))
	for id := range clients {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, family := range []struct {
		name  string
		value func(ClientStats) int64
	}{
		{"client_requests_total", func(cs ClientStats) int64 { return cs.Requests }},
		{"client_rejected_total", func(cs ClientStats) int64 { return cs.Rejected }},
		{"client_work_charged_total", func(cs ClientStats) int64 { return cs.WorkCharged }},
	} {
		if len(ids) == 0 {
			continue
		}
		fmt.Fprintf(&b, "# TYPE %s%s counter\n", metricsNamespace, family.name)
		for _, id := range ids {
			fmt.Fprintf(&b, "%s%s{client=\"%s\"} %d\n",
				metricsNamespace, family.name, labelEscaper.Replace(id), family.value(clients[id]))
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}
