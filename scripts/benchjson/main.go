// Command benchjson converts `go test -bench` output (read from stdin) into
// a JSON snapshot and appends it to a trajectory file, so successive PRs
// can compare perf against every recorded predecessor. Labels must be
// unique within a trajectory file — a duplicate almost always means a run
// was accidentally recorded twice, and it would silently poison later
// comparisons.
//
// Benchmark names are normalized on ingest AND on load: `go test` appends
// the GOMAXPROCS suffix (`BenchmarkTableI/...-4`) to every name, so
// snapshots recorded on machines with different core counts would
// otherwise never pair up in -compare. The trailing `-N` is stripped
// everywhere (this repo's sub-benchmarks encode parameters with `=`, never
// a bare trailing `-N`), and previously recorded suffixed entries are
// migrated the next time the file is rewritten.
//
// With -compare, no input is read: the last two snapshots of the
// trajectory file are diffed per benchmark instead (the trajectory is long
// enough by now that regressions hide in raw JSON).
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkTableI$|BenchmarkSolveBatch' -benchmem . |
//	    go run ./scripts/benchjson -o BENCH_table1.json -label my-change
//	go run ./scripts/benchjson -compare -o BENCH_table1.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"
)

// Bench is one benchmark's parsed result line.
type Bench struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is one benchmarking session.
type Snapshot struct {
	Label      string           `json:"label"`
	Date       string           `json:"date"`
	CPU        string           `json:"cpu,omitempty"`
	Benchmarks map[string]Bench `json:"benchmarks"`
}

// File is the trajectory file layout.
type File struct {
	Unit      map[string]string `json:"unit"`
	Snapshots []Snapshot        `json:"snapshots"`
}

// gomaxprocsSuffix matches the `-N` parallelism suffix go test appends to
// every benchmark name.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// corpusPrefix marks synthetic corpus-report lines (`wsp corpus run
// -bench`). Their names are not emitted by go test, so they carry no
// GOMAXPROCS suffix — and instance names like `bursty-0`/`bursty-1` end in
// a literal `-N` that the strip would collide.
const corpusPrefix = "BenchmarkCorpus/"

// normalizeBenchName strips the GOMAXPROCS suffix so snapshots recorded on
// machines with different core counts pair up. Corpus-report names are
// exempt: their trailing digits are instance identity, not parallelism.
func normalizeBenchName(name string) string {
	if strings.HasPrefix(name, corpusPrefix) {
		return name
	}
	return gomaxprocsSuffix.ReplaceAllString(name, "")
}

// normalizeSnapshot rewrites a snapshot's benchmark names through
// normalizeBenchName — the migration path for entries recorded before the
// suffix fix. On a collision (the same benchmark recorded under several
// suffixes, e.g. a `-cpu 1,4` run) the alphabetically first original name
// wins — the same first-wins rule parseBench applies on ingest, and for
// go test's ascending `-cpu` output order the two agree on which variant
// survives. Every dropped original name is returned so the caller can
// surface the data loss instead of hiding it.
func normalizeSnapshot(s *Snapshot) (dropped []string) {
	names := make([]string, 0, len(s.Benchmarks))
	for name := range s.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make(map[string]Bench, len(names))
	for _, name := range names {
		norm := normalizeBenchName(name)
		if _, dup := out[norm]; dup {
			dropped = append(dropped, name)
			continue
		}
		out[norm] = s.Benchmarks[name]
	}
	s.Benchmarks = out
	return dropped
}

// parseBench reads `go test -bench` output, echoing every line to echo (so
// the run stays visible when piped), and returns the parsed snapshot
// fields: normalized benchmark results plus the cpu line, if any.
func parseBench(r io.Reader, echo io.Writer) (map[string]Bench, string, error) {
	benchmarks := map[string]Bench{}
	cpu := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		if c, ok := strings.CutPrefix(line, "cpu: "); ok {
			cpu = strings.TrimSpace(c)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		b := Bench{}
		name := normalizeBenchName(fields[0])
		if _, dup := benchmarks[name]; dup {
			// Several variants normalized onto one name (typically a
			// `-cpu 1,4` run): the first occurrence wins, loudly — the same
			// rule normalizeSnapshot applies when migrating old files, so
			// recorded and migrated snapshots stay comparable.
			fmt.Fprintf(os.Stderr, "benchjson: %s recorded more than once after suffix normalization (multi -cpu run?); keeping the first occurrence\n", name)
			continue
		}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				v := val
				b.BytesPerOp = &v
			case "allocs/op":
				v := val
				b.AllocsPerOp = &v
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = val
			}
		}
		benchmarks[name] = b
	}
	return benchmarks, cpu, sc.Err()
}

// loadFile reads a trajectory file, migrating any pre-fix suffixed
// benchmark names in every snapshot. A missing file yields an empty
// trajectory.
func loadFile(path string) (File, error) {
	f := File{Unit: map[string]string{
		"ns_per_op":     "nanoseconds per operation",
		"bytes_per_op":  "heap bytes per operation",
		"allocs_per_op": "heap allocations per operation",
	}}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return f, nil
		}
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s exists but is not a trajectory file: %w", path, err)
	}
	for i := range f.Snapshots {
		for _, name := range normalizeSnapshot(&f.Snapshots[i]) {
			fmt.Fprintf(os.Stderr, "benchjson: snapshot %q: dropping %s (collides after suffix normalization)\n",
				f.Snapshots[i].Label, name)
		}
	}
	return f, nil
}

// appendSnapshot adds snap to the trajectory, rejecting duplicate labels.
func appendSnapshot(f *File, snap Snapshot) error {
	for _, prev := range f.Snapshots {
		if prev.Label == snap.Label {
			return fmt.Errorf("already holds a snapshot labeled %q (recorded %s); pick a fresh label", snap.Label, prev.Date)
		}
	}
	f.Snapshots = append(f.Snapshots, snap)
	return nil
}

// compareTable diffs the last two snapshots of the trajectory, one line per
// benchmark present in either.
func compareTable(f File, w io.Writer) error {
	if len(f.Snapshots) < 2 {
		return fmt.Errorf("trajectory holds %d snapshot(s); need at least 2 to compare", len(f.Snapshots))
	}
	old, cur := f.Snapshots[len(f.Snapshots)-2], f.Snapshots[len(f.Snapshots)-1]
	fmt.Fprintf(w, "comparing %q (%s)\n       vs %q (%s)\n\n", old.Label, old.Date, cur.Label, cur.Date)
	names := make([]string, 0, len(old.Benchmarks)+len(cur.Benchmarks))
	seen := map[string]bool{}
	for name := range old.Benchmarks {
		names = append(names, name)
		seen[name] = true
	}
	for name := range cur.Benchmarks {
		if !seen[name] {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\told ns/op\tnew ns/op\tdelta")
	logSum, paired := 0.0, 0
	for _, name := range names {
		o, inOld := old.Benchmarks[name]
		c, inCur := cur.Benchmarks[name]
		switch {
		case !inOld:
			fmt.Fprintf(tw, "%s\t-\t%.0f\t(new)\n", name, c.NsPerOp)
		case !inCur:
			fmt.Fprintf(tw, "%s\t%.0f\t-\t(gone)\n", name, o.NsPerOp)
		case o.NsPerOp == 0:
			fmt.Fprintf(tw, "%s\t0\t%.0f\t?\n", name, c.NsPerOp)
		default:
			fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%+.1f%%\n", name, o.NsPerOp, c.NsPerOp, 100*(c.NsPerOp-o.NsPerOp)/o.NsPerOp)
			logSum += math.Log(c.NsPerOp / o.NsPerOp)
			paired++
		}
	}
	if paired > 0 {
		// The geometric mean of the per-benchmark new/old ratios: the one
		// scale-free overall number (arithmetic means over ns/op would let
		// the slowest benchmark drown out everything else). Only pairs
		// present in both snapshots contribute.
		fmt.Fprintf(tw, "geomean (%d paired)\t\t\t%+.1f%%\n", paired, 100*(math.Exp(logSum/float64(paired))-1))
	}
	return tw.Flush()
}

func main() {
	out := flag.String("o", "BENCH_table1.json", "trajectory file to append to (or read, with -compare)")
	label := flag.String("label", "", "snapshot label (required unless -compare)")
	compare := flag.Bool("compare", false, "diff the last two snapshots of the trajectory file and exit")
	flag.Parse()
	if *compare {
		f, err := loadFile(*out)
		if err == nil {
			err = compareTable(f, os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if *label == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -label is required")
		os.Exit(2)
	}

	benchmarks, cpu, err := parseBench(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	snap := Snapshot{
		Label:      *label,
		Date:       time.Now().UTC().Format("2006-01-02"),
		CPU:        cpu,
		Benchmarks: benchmarks,
	}
	f, err := loadFile(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := appendSnapshot(&f, snap); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s %v\n", *out, err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: appended snapshot %q (%d benchmarks) to %s\n", *label, len(snap.Benchmarks), *out)
}
