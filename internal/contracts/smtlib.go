package contracts

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"repro/internal/lp"
)

// ExportSMTLIB renders the contract's satisfiability query (Ã ∧ G̃) as an
// SMT-LIB 2 script in QF_LIA, the fragment the paper discharges to Z3.
// The output is accepted by any SMT-LIB 2 solver (z3, cvc5, ...) and exists
// so results of the built-in ILP decision procedure can be cross-checked
// against an external solver.
func (c *Contract) ExportSMTLIB() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; contract %s — satisfiability of assumptions ∧ guarantees\n", c.Name)
	b.WriteString("(set-logic QF_LIA)\n")
	names := make([]string, 0, len(c.Vars))
	for n := range c.Vars {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		spec := c.Vars[n]
		sortName := "Int"
		if !spec.Integer {
			sortName = "Real"
		}
		fmt.Fprintf(&b, "(declare-const %s %s)\n", smtName(n), sortName)
		if spec.Lower != nil {
			fmt.Fprintf(&b, "(assert (>= %s %s))\n", smtName(n), smtRat(spec.Lower))
		}
		if spec.Upper != nil {
			fmt.Fprintf(&b, "(assert (<= %s %s))\n", smtName(n), smtRat(spec.Upper))
		}
	}
	emit := func(role string, cons []Constraint) {
		for _, con := range cons {
			fmt.Fprintf(&b, "; %s %s\n(assert %s)\n", role, con.Name, smtConstraint(con))
		}
	}
	emit("assumption", c.Assumptions)
	emit("guarantee", c.Guarantees)
	b.WriteString("(check-sat)\n(get-model)\n")
	return b.String()
}

func smtName(n string) string {
	return strings.NewReplacer(" ", "_", "(", "_", ")", "_").Replace(n)
}

// smtRat renders a rational as an SMT-LIB integer or quotient term.
func smtRat(r *big.Rat) string {
	if r.IsInt() {
		return smtInt(r.Num())
	}
	return fmt.Sprintf("(/ %s %s)", smtInt(r.Num()), r.Denom().String())
}

func smtInt(n *big.Int) string {
	if n.Sign() < 0 {
		return fmt.Sprintf("(- %s)", new(big.Int).Neg(n).String())
	}
	return n.String()
}

func smtConstraint(con Constraint) string {
	var terms []string
	for _, t := range con.Terms {
		if t.Coef.Cmp(big.NewRat(1, 1)) == 0 {
			terms = append(terms, smtName(t.Var))
		} else {
			terms = append(terms, fmt.Sprintf("(* %s %s)", smtRat(t.Coef), smtName(t.Var)))
		}
	}
	lhs := terms[0]
	if len(terms) > 1 {
		lhs = "(+ " + strings.Join(terms, " ") + ")"
	}
	op := map[lp.Sense]string{lp.LE: "<=", lp.GE: ">=", lp.EQ: "="}[con.Sense]
	return fmt.Sprintf("(%s %s %s)", op, lhs, smtRat(con.RHS))
}
