package traffic

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/warehouse"
)

// corridor builds a 1-row all-passable warehouse of the given width with no
// shelves or stations, for split-length testing.
func corridor(t *testing.T, width int) (*warehouse.Warehouse, []grid.VertexID) {
	t.Helper()
	raster := make([][]bool, 1)
	raster[0] = make([]bool, width)
	for i := range raster[0] {
		raster[0][i] = true
	}
	g, err := grid.New(raster)
	if err != nil {
		t.Fatal(err)
	}
	w, err := warehouse.New(g, nil, nil, 0, [][]int{})
	if err != nil {
		t.Fatal(err)
	}
	lane := make([]grid.VertexID, width)
	for x := 0; x < width; x++ {
		lane[x] = g.At(grid.Coord{X: x, Y: 0})
	}
	return w, lane
}

func TestSplitLanesBalanced(t *testing.T) {
	cases := []struct {
		width, maxLen int
		wantLens      []int
	}{
		{12, 9, []int{6, 6}}, // not 9+3: the 3-cell tail would halve capacity
		{37, 7, []int{7, 6, 6, 6, 6, 6}},
		{10, 6, []int{5, 5}},
		{6, 6, []int{6}},
		{7, 6, []int{4, 3}},
	}
	for _, tc := range cases {
		w, lane := corridor(t, tc.width)
		segs, err := SplitLanes(w, [][]grid.VertexID{lane}, SplitOptions{MaxLen: tc.maxLen})
		if err != nil {
			t.Fatalf("width %d maxLen %d: %v", tc.width, tc.maxLen, err)
		}
		if len(segs) != len(tc.wantLens) {
			t.Errorf("width %d maxLen %d: %d segments, want %d", tc.width, tc.maxLen, len(segs), len(tc.wantLens))
			continue
		}
		for i, seg := range segs {
			if len(seg) != tc.wantLens[i] {
				t.Errorf("width %d maxLen %d: segment %d has %d cells, want %d",
					tc.width, tc.maxLen, i, len(seg), tc.wantLens[i])
			}
		}
		// Cells preserved in order.
		idx := 0
		for _, seg := range segs {
			for _, v := range seg {
				if v != lane[idx] {
					t.Fatalf("cell order broken at %d", idx)
				}
				idx++
			}
		}
	}
}

func TestSplitLanesOverflowFallback(t *testing.T) {
	// 3 cells with MaxLen 2 cannot split into pieces of >= 2 cells; the
	// fallback emits one 3-cell segment rather than a capacity-0 singleton.
	w, lane := corridor(t, 3)
	segs, err := SplitLanes(w, [][]grid.VertexID{lane}, SplitOptions{MaxLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || len(segs[0]) != 3 {
		t.Errorf("segments = %v, want one 3-cell segment", segs)
	}
}
