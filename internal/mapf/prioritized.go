package mapf

import (
	"fmt"

	"repro/internal/grid"
)

// Prioritized plans agents one at a time in index order (cooperative A*):
// each agent's space-time path is inserted into a shared reservation table
// that later agents must respect. Fast and scalable but incomplete — a
// lower-priority agent can be walled in by earlier paths.
func Prioritized(g *grid.Grid, starts []grid.VertexID, goals [][]grid.VertexID, lim Limits) (*Solution, error) {
	if len(starts) != len(goals) {
		return nil, fmt.Errorf("mapf: %d starts for %d goal sequences", len(starts), len(goals))
	}
	res := newReservations()
	h := newHeuristic(g)
	budget := lim.expansions()
	horizon := lim.horizon(g)
	sol := &Solution{Paths: make([]Path, len(starts))}
	for i := range starts {
		before := budget
		p, err := planPath(planParams{
			g: g, h: h,
			start: starts[i], goals: goals[i],
			res: res, horizon: horizon, budget: &budget,
		})
		sol.Expansions += before - budget
		if err != nil {
			return sol, err
		}
		if p == nil {
			return sol, fmt.Errorf("mapf: prioritized planning failed for agent %d", i)
		}
		sol.Paths[i] = p
		res.reservePath(p)
	}
	return sol, nil
}
