# Tier-1 gate plus the perf-trajectory harness. `make ci` is what a future
# pipeline should run; `make bench` appends a Table I snapshot to
# BENCH_table1.json so every PR leaves comparable numbers behind.

GO ?= go
BENCH_LABEL ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo dev)

.PHONY: build test vet race bench bench-compare test-lp-long examples serve-smoke corpus-smoke ci fmt

build:
	$(GO) build ./...

# Build every example program and run the quickstart end to end: the
# examples consume only the public `wsp` facade, so this is the gate that
# keeps the facade and its documented usage from drifting apart.
examples:
	$(GO) build -o /dev/null ./examples/quickstart ./examples/sorting ./examples/fulfillment ./examples/lifelong ./examples/codesign
	$(GO) run ./examples/quickstart

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Table I + solver-pool throughput + the contract→ILP path (ablation with
# its exact dense/revised-simplex variants, and the LP-core microbenchmarks
# incl. the BenchmarkLP Exact/ExactDense representation pairs) + the
# repeated-solve layers (refinement, lifelong, design sweep), recorded with
# allocation stats.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkTableI$$|BenchmarkTableIParallel|BenchmarkSolveBatch|BenchmarkSynthesizerAblation|BenchmarkLP|BenchmarkRefinement|BenchmarkLifelong|BenchmarkDesignSweep' -benchmem -benchtime 100x . | \
		$(GO) run ./scripts/benchjson -o BENCH_table1.json -label "$(BENCH_LABEL)"

# Diff the last two recorded snapshots per benchmark — the trajectory file
# is long enough that regressions hide in the raw JSON. Benchmark names are
# normalized (GOMAXPROCS suffix stripped), so snapshots recorded on machines
# with different core counts still pair up.
bench-compare:
	$(GO) run ./scripts/benchjson -compare -o BENCH_table1.json

# Long-running dense-vs-revised simplex parity fuzz under the race detector,
# plus the parallel-vs-sequential search parity fuzz (workers 1/2/4 against
# the sequential walk, forced multi-core so subtree workers really overlap).
# The short version of the same property tests runs in every `go test ./...`;
# LP_PARITY_ROUNDS scales the fuzz rounds.
test-lp-long:
	LP_PARITY_ROUNDS=2000 GOMAXPROCS=4 $(GO) test -race -run 'TestRevisedParity|TestHybridDisagreementFallback|TestFloatRevisedPartialLP|TestParallelSearch' -timeout 40m ./internal/lp

# End-to-end daemon smoke: build wspd, start it, hit /healthz and one
# /v1/solve, then SIGTERM and require a drain-clean exit 0. This is the
# gate for the service's lifecycle contract (serve → answer → drain).
serve-smoke:
	$(GO) run ./scripts/servesmoke

# Scenario-corpus smoke: solve two seeded generator families under the
# default knobs, write the JSON report and its bench lines, and require
# benchjson to ingest those lines (it exits 1 when nothing parses) — the
# gate that keeps the corpus runner, the wsp-corpus-report/v1 schema, and
# the benchjson label format from drifting apart.
corpus-smoke:
	$(GO) run ./cmd/wsp corpus run -families stripes,rings -label corpus-smoke \
		-json /tmp/wsp-corpus-report.json -bench /tmp/wsp-corpus-bench.txt
	rm -f /tmp/wsp-corpus-trajectory.json
	$(GO) run ./scripts/benchjson -o /tmp/wsp-corpus-trajectory.json -label corpus-smoke \
		< /tmp/wsp-corpus-bench.txt

fmt:
	gofmt -l .

ci: build vet test race examples serve-smoke corpus-smoke
