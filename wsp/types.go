package wsp

import (
	"math/rand"

	"repro/internal/agentplan"
	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/flow"
	"repro/internal/grid"
	"repro/internal/sim"
	"repro/internal/traffic"
	"repro/internal/warehouse"
	"repro/internal/workload"
)

// This file re-exports the building blocks an embedding program needs to
// construct instances and consume results, so programs built on the
// facade never import repro/internal/... directly. The aliases are the
// internal types themselves — values flow freely between the facade and
// any future internal surface — and the constructors are thin forwards.

// Floorplan building blocks.
type (
	// Grid is a 4-connected warehouse floorplan.
	Grid = grid.Grid
	// Coord is an (X, Y) cell address on a Grid.
	Coord = grid.Coord
	// VertexID identifies a traversable cell of a Grid.
	VertexID = grid.VertexID
	// Warehouse couples a floorplan with shelf stock and stations.
	Warehouse = warehouse.Warehouse
	// Workload is a per-product demand vector.
	Workload = warehouse.Workload
	// Plan is a realized multi-agent plan (paths plus pick/drop events).
	Plan = warehouse.Plan
	// ProductID indexes a product.
	ProductID = warehouse.ProductID
)

// NoVertex is the sentinel for "no vertex".
const NoVertex = grid.None

// ParseGrid parses an ASCII floorplan ('.' aisle, '@'/'#' obstacles —
// '@' marking shelves — and 'T' stations), returning the grid plus the
// shelf and station coordinates.
func ParseGrid(text string) (g *Grid, shelves, stations []Coord, err error) {
	return grid.Parse(text)
}

// NewWarehouse builds a warehouse model: shelfAccess lists the aisle
// cells from which each shelf is picked, stock[k][i] is the units of
// product k on shelf i.
func NewWarehouse(g *Grid, shelfAccess, stations []VertexID, numProducts int, stock [][]int) (*Warehouse, error) {
	return warehouse.New(g, shelfAccess, stations, numProducts, stock)
}

// NewWorkload validates a per-product demand vector against the
// warehouse's stock.
func NewWorkload(w *Warehouse, units []int) (Workload, error) {
	return warehouse.NewWorkload(w, units)
}

// UniformWorkload spreads totalUnits evenly over the warehouse's products.
func UniformWorkload(w *Warehouse, totalUnits int) (Workload, error) {
	return workload.Uniform(w, totalUnits)
}

// SkewedWorkload draws a Zipf-like demand vector (head products dominate,
// as in e-commerce traffic) totalling totalUnits.
func SkewedWorkload(w *Warehouse, totalUnits int, rng *rand.Rand) (Workload, error) {
	return workload.Skewed(w, totalUnits, rng)
}

// SingleWorkload demands totalUnits of one product.
func SingleWorkload(w *Warehouse, product ProductID, totalUnits int) (Workload, error) {
	return workload.Single(w, product, totalUnits)
}

// Traffic-system building blocks.
type (
	// System is a built traffic system: the warehouse partitioned into
	// one-way components with its cycle structure.
	System = traffic.System
	// Component is one traffic-system component (shelving row, station
	// queue, or transport).
	Component = traffic.Component
	// ComponentID indexes a component within a System.
	ComponentID = traffic.ComponentID
	// TrafficStats summarizes a System (component/arc counts, cycle
	// time).
	TrafficStats = traffic.Stats
)

// BuildTraffic partitions the warehouse into the directed component paths
// given as cell sequences and wires them into a traffic System.
func BuildTraffic(w *Warehouse, paths [][]VertexID) (*System, error) {
	return traffic.Build(w, paths)
}

// RenderTraffic draws the traffic system as ASCII art (the Figs. 4/5
// rendering).
func RenderTraffic(s *System) string { return traffic.Render(s) }

// SummarizeTraffic computes component/arc counts and the cycle time.
func SummarizeTraffic(s *System) TrafficStats { return traffic.Summarize(s) }

// Solve results.
type (
	// Result is a solved WSP instance: plan, cycle set, flow set,
	// realization stats, simulation outcome, and stage timings.
	Result = core.Result
	// CycleSet is a synthesized agent cycle set.
	CycleSet = cycles.Set
	// Cycle is one agent cycle (component loop plus delivery legs).
	Cycle = cycles.Cycle
	// FlowSet is a synthesized per-period agent flow set (§IV-D).
	FlowSet = flow.Set
	// RealizeStats reports realization statistics (team size etc.).
	RealizeStats = agentplan.Stats
	// SimResult is the validation simulation outcome.
	SimResult = sim.Result
	// Timing breaks down where a solve spent its time.
	Timing = core.Timing
)

// Execution under failures (beyond the nominal validation run).
type (
	// Failure freezes one agent for a duration during execution.
	Failure = sim.Failure
	// ExecResult reports a minimal-communication-policy execution.
	ExecResult = sim.ExecResult
)

// ExecuteMCP replays a plan under the minimal-communication policy with
// injected agent failures, within maxWall wall-clock timesteps.
func ExecuteMCP(w *Warehouse, plan *Plan, wl Workload, failures []Failure, maxWall int) (ExecResult, error) {
	return sim.ExecuteMCP(w, plan, wl, failures, maxWall)
}

// Throughput buckets a simulation's deliveries into windows of the given
// width — the data behind a throughput-over-time figure.
func Throughput(res SimResult, horizon, window int) []int {
	return sim.Throughput(res, horizon, window)
}
