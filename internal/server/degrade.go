package server

import (
	"sync"
	"time"

	"repro/wsp"
)

// Graceful degradation: under sustained load the server answers with a
// cheaper solve instead of an error. A sliding-window load signal (recent
// occupancy, rejections, and budget exhaustions) positions a ladder, and
// each rung trades answer cost for answer fidelity:
//
//	rung 1: exact rational arithmetic → the revised partial-pricing
//	        float engine (same pipeline, cheapest arithmetic)
//	rung 2: ContractILP → RoutePacking synthesis, and within-instance
//	        parallelism shed to sequential — under load the extra search
//	        workers only steal cores from concurrent requests, and
//	        shedding them never changes an answer, so they go before any
//	        budget does
//	rung 3: shrunken work/node budgets (fail fast instead of grinding)
//
// Degraded responses are still real, validated plans — they are labeled
// `degraded: true` with the applied rungs, never silently substituted.

// ladder thresholds: load ≥ degradeAt[i] ⇒ rung i+1.
var degradeAt = [3]float64{0.50, 0.75, 0.90}

// shrink factors applied at rung 3 to whatever budget would have run.
const (
	shrinkWork  = 2_000_000
	shrinkNodes = 20_000
)

const loadBucketCount = 16

type loadBucket struct {
	epoch     int64 // bucket start, in bucketDur units since the zero time
	admits    int64
	occSum    float64
	rejects   int64
	exhausted int64
}

// degrader accumulates load observations in a ring of time buckets and
// maps the windowed signal onto a ladder rung.
type degrader struct {
	disabled  bool
	now       func() time.Time
	bucketDur time.Duration

	mu      sync.Mutex
	buckets [loadBucketCount]loadBucket
}

func newDegrader(cfg Config) *degrader {
	return &degrader{
		disabled:  cfg.NoDegrade,
		now:       cfg.Now,
		bucketDur: cfg.DegradeWindow / loadBucketCount,
	}
}

// bucketAt rotates the ring to the current epoch and returns the live
// bucket. Callers hold d.mu.
func (d *degrader) bucketAt() *loadBucket {
	epoch := d.now().UnixNano() / int64(d.bucketDur)
	b := &d.buckets[epoch%loadBucketCount]
	if b.epoch != epoch {
		*b = loadBucket{epoch: epoch}
	}
	return b
}

func (d *degrader) observeAdmit(occupancy float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	b := d.bucketAt()
	b.admits++
	b.occSum += occupancy
}

func (d *degrader) observeReject() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.bucketAt().rejects++
}

func (d *degrader) observeExhausted() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.bucketAt().exhausted++
}

// load blends the window into one scalar in [0,1]: the mean in-flight
// occupancy at admission time, raised by the fraction of requests that
// were rejected or ran out of solver budget. An idle window reads 0.
func (d *degrader) load() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	live := d.now().UnixNano()/int64(d.bucketDur) - loadBucketCount + 1
	var admits, rejects, exhausted int64
	var occSum float64
	for i := range d.buckets {
		b := &d.buckets[i]
		if b.epoch < live {
			continue // stale ring slot from a past window
		}
		admits += b.admits
		rejects += b.rejects
		exhausted += b.exhausted
		occSum += b.occSum
	}
	total := admits + rejects
	if total == 0 {
		return 0
	}
	occ := occSum / float64(max(admits, 1))
	pressure := float64(rejects+exhausted) / float64(total)
	if pressure > 1 {
		pressure = 1
	}
	if pressure > occ {
		return pressure
	}
	return occ
}

// rung maps the current load to a ladder position (0 = no degradation).
func (d *degrader) rung() int {
	if d.disabled {
		return 0
	}
	l := d.load()
	r := 0
	for _, at := range degradeAt {
		if l >= at {
			r++
		}
	}
	return r
}

// degradeConfig applies ladder rung r to a resolved solver config and
// reports the applied steps (empty ⇒ the config ran exactly as requested).
func degradeConfig(cfg wsp.Config, r int) (wsp.Config, []string) {
	var steps []string
	if r >= 1 && cfg.Exact {
		cfg.Exact = false
		// The float rung rides the revised partial-pricing float engine:
		// clear representation overrides (hybrid is an exact-side solve
		// mode, and a pinned dense tableau would forgo the fast engine)
		// and the exact-only root cuts, so the degraded solve is the
		// cheap one.
		cfg.Simplex = wsp.SimplexAuto
		cfg.RootCuts = false
		steps = append(steps, "float-arith")
	}
	if r >= 2 && cfg.Strategy == wsp.ContractILP {
		cfg.Strategy = wsp.RoutePacking
		steps = append(steps, "route-packing")
	}
	if r >= 2 && cfg.SearchParallel > 1 {
		// Shed within-instance workers BEFORE touching budgets: dropping to
		// the sequential search returns the bit-identical answer (just
		// slower for this one request), while a shrunken budget can change
		// it — so parallelism is always the first sacrifice.
		cfg.SearchParallel = 0
		steps = append(steps, "search-shed")
	}
	if r >= 3 {
		if cfg.WorkBudget == 0 || cfg.WorkBudget > shrinkWork {
			cfg.WorkBudget = shrinkWork
		}
		if cfg.NodeBudget == 0 || cfg.NodeBudget > shrinkNodes {
			cfg.NodeBudget = shrinkNodes
		}
		cfg.MaxAttempts = 1
		steps = append(steps, "budget-shrink")
	}
	return cfg, steps
}
