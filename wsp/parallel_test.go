package wsp

// Facade-level tests for WithSearchParallel: within-instance parallelism
// (subtree-parallel branch & bound on the contract path, parallel route
// packing on the route path) must return bit-identical plans at every
// width, including when stacked with the solver pool — the nested
// solverpool × search-workers shape the process-wide token pools exist
// for.

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"
)

func requireSameResult(t *testing.T, tag string, want, got *Result) {
	t.Helper()
	if !reflect.DeepEqual(want.CycleSet, got.CycleSet) {
		t.Fatalf("%s: cycle set differs from sequential solve", tag)
	}
	if !reflect.DeepEqual(want.Stats, got.Stats) {
		t.Fatalf("%s: stats differ: %+v vs %+v", tag, got.Stats, want.Stats)
	}
	if !reflect.DeepEqual(want.Sim, got.Sim) {
		t.Fatalf("%s: sim result differs: %+v vs %+v", tag, got.Sim, want.Sim)
	}
	if want.Attempts != got.Attempts {
		t.Fatalf("%s: attempts %d vs %d", tag, got.Attempts, want.Attempts)
	}
}

func TestSearchParallelBitIdentity(t *testing.T) {
	m := tinyMap(t)
	inst := tinyInstance(t, m, 12, 800)
	ctx := context.Background()
	for _, strat := range []Strategy{RoutePacking, ContractILP} {
		exact := strat == ContractILP
		want, err := New(WithStrategy(strat), WithExact(exact)).Solve(ctx, inst)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4} {
			solver := New(WithStrategy(strat), WithExact(exact), WithSearchParallel(workers))
			got, err := solver.Solve(ctx, inst)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", strat, workers, err)
			}
			requireSameResult(t, strat.String(), want, got)
		}
	}
}

// Solver pool × search workers: every batch slot still returns the
// sequential answer bit for bit, and all worker goroutines join before the
// batch returns (the token pools bound them while it runs).
func TestSearchParallelNestedWithPool(t *testing.T) {
	m := tinyMap(t)
	inst := tinyInstance(t, m, 12, 800)
	ctx := context.Background()
	want, err := New(WithStrategy(ContractILP), WithExact(true)).Solve(ctx, inst)
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	solver := New(WithStrategy(ContractILP), WithExact(true),
		WithParallel(4), WithSearchParallel(4))
	batch := make([]Instance, 8)
	for i := range batch {
		batch[i] = inst
	}
	for i, r := range solver.SolveBatch(ctx, batch) {
		if r.Err != nil {
			t.Fatalf("batch slot %d: %v", i, r.Err)
		}
		requireSameResult(t, "batch", want, r.Res)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d, base %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
