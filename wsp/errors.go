package wsp

import (
	"context"

	"repro/internal/flow"
	"repro/internal/lp"
	"repro/internal/mapf"
)

// The error taxonomy of API v1. Every error the package returns wraps (via
// %w, at every internal layer) exactly one of these sentinels when the
// corresponding condition holds, so errors.Is classifies failures without
// string matching:
//
//	res, err := solver.Solve(ctx, inst)
//	switch {
//	case errors.Is(err, wsp.ErrCanceled):        // ctx fired mid-solve
//	case errors.Is(err, wsp.ErrInfeasible):      // no flow set exists
//	case errors.Is(err, wsp.ErrHorizonTooShort): // T below one cycle period
//	case errors.Is(err, wsp.ErrBudgetExhausted): // search undecided in budget
//	}
var (
	// ErrInfeasible: no agent flow set services the workload within the
	// instance's horizon. Use errors.As with *InfeasibleError to read the
	// admission certificate that distinguishes a sound LP-relaxation
	// proof from an exhausted integral search.
	ErrInfeasible = flow.ErrInfeasible

	// ErrHorizonTooShort: the horizon is below one traffic-system cycle
	// period — too short to host a single agent cycle.
	ErrHorizonTooShort = flow.ErrHorizonTooShort

	// ErrBudgetExhausted: the ILP search ran out of its deterministic
	// node or work budget (WithWorkBudget / WithNodeBudget) before
	// deciding.
	ErrBudgetExhausted = lp.ErrBudgetExhausted

	// ErrCanceled: the context was cancelled and the solve was abandoned
	// — inside the LP search, within one work-budget accounting tick.
	// WHY the context fired stays visible: a solve cut short by
	// context.WithDeadline/WithTimeout additionally satisfies
	// errors.Is(err, ErrDeadlineExceeded), and a context.CancelCause cause
	// rides along the same way, so a server can map deadline expiry and
	// client disconnect to different responses (wspd: 504 vs 499).
	ErrCanceled = lp.ErrCanceled

	// ErrDeadlineExceeded is context.DeadlineExceeded, re-exported so the
	// deadline/cancel distinction is part of the documented taxonomy. It
	// always co-occurs with ErrCanceled, never replaces it.
	ErrDeadlineExceeded = context.DeadlineExceeded

	// ErrExpansionLimit: a MAPF baseline planner (IteratedECBS) exhausted
	// its search budget — the "failed to terminate" outcome the paper
	// reports for the baseline.
	ErrExpansionLimit = mapf.ErrExpansionLimit
)

// InfeasibleError is the concrete infeasibility verdict behind
// ErrInfeasible; it carries the flow.Admit certificate.
type InfeasibleError = flow.InfeasibleError

// Certificate classifies an admission check (see Admit outcomes).
type Certificate = flow.Certificate

// Admission certificates carried by InfeasibleError.
const (
	// CertInfeasible: the LP relaxation of the contract conjunction is
	// infeasible — a sound proof that no agent flow set (integral or
	// not) services the workload in the horizon.
	CertInfeasible = flow.CertInfeasible
	// CertMaybeFeasible: the relaxation is satisfiable; only the
	// integral search failed (or was not run).
	CertMaybeFeasible = flow.CertMaybeFeasible
)
