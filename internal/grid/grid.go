// Package grid models a warehouse floorplan as an undirected graph of
// one-agent-wide cells, following §III of Leet et al., "Co-Design of
// Topology, Scheduling, and Path Planning in Automated Warehouses"
// (DATE 2023).
//
// A Grid is a rectangular raster of cells, each either passable or an
// obstacle. The floorplan graph G = (V, E) has a vertex for every passable
// cell and an edge between every pair of 4-adjacent passable cells. Vertices
// are identified by dense integer IDs so downstream packages can use slices
// instead of maps.
package grid

import (
	"fmt"
	"strings"
)

// Coord is a cell position. X grows to the east (right), Y to the north (up),
// matching the coordinate convention of Fig. 1 in the paper.
type Coord struct {
	X, Y int
}

func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Add returns the coordinate offset by d.
func (c Coord) Add(d Coord) Coord { return Coord{c.X + d.X, c.Y + d.Y} }

// Manhattan returns the L1 distance between two coordinates.
func (c Coord) Manhattan(o Coord) int {
	return abs(c.X-o.X) + abs(c.Y-o.Y)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Dir is one of the four cardinal movement directions.
type Dir int

// Cardinal directions in the order used throughout the package.
const (
	East Dir = iota
	North
	West
	South
)

// Offset returns the unit coordinate delta of the direction.
func (d Dir) Offset() Coord {
	switch d {
	case East:
		return Coord{1, 0}
	case North:
		return Coord{0, 1}
	case West:
		return Coord{-1, 0}
	case South:
		return Coord{0, -1}
	}
	panic(fmt.Sprintf("grid: invalid direction %d", int(d)))
}

// Opposite returns the reverse direction.
func (d Dir) Opposite() Dir {
	switch d {
	case East:
		return West
	case North:
		return South
	case West:
		return East
	case South:
		return North
	}
	panic(fmt.Sprintf("grid: invalid direction %d", int(d)))
}

func (d Dir) String() string {
	switch d {
	case East:
		return "E"
	case North:
		return "N"
	case West:
		return "W"
	case South:
		return "S"
	}
	return "?"
}

// Dirs lists the four cardinal directions.
var Dirs = [4]Dir{East, North, West, South}

// VertexID identifies a passable cell in the floorplan graph. IDs are dense:
// a Grid with n passable cells uses IDs 0..n-1.
type VertexID int

// None is the sentinel for "no vertex".
const None VertexID = -1

// Grid is an immutable rectangular floorplan.
type Grid struct {
	width, height int
	// id maps raster index y*width+x to a VertexID, or None for obstacles.
	id []VertexID
	// coord maps VertexID back to its cell coordinate.
	coord []Coord
	// adj holds, for each vertex, its neighbor in each cardinal direction
	// (None if blocked or out of bounds).
	adj [][4]VertexID
}

// New builds a grid from a passability raster. passable[y][x] reports whether
// the cell at (x, y) can be traversed. All rows must have equal length.
func New(passable [][]bool) (*Grid, error) {
	h := len(passable)
	if h == 0 {
		return nil, fmt.Errorf("grid: empty raster")
	}
	w := len(passable[0])
	if w == 0 {
		return nil, fmt.Errorf("grid: empty raster row")
	}
	for y, row := range passable {
		if len(row) != w {
			return nil, fmt.Errorf("grid: row %d has %d cells, want %d", y, len(row), w)
		}
	}
	g := &Grid{
		width:  w,
		height: h,
		id:     make([]VertexID, w*h),
	}
	for i := range g.id {
		g.id[i] = None
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if passable[y][x] {
				g.id[y*w+x] = VertexID(len(g.coord))
				g.coord = append(g.coord, Coord{x, y})
			}
		}
	}
	g.adj = make([][4]VertexID, len(g.coord))
	for v, c := range g.coord {
		for _, d := range Dirs {
			g.adj[v][d] = g.At(c.Add(d.Offset()))
		}
	}
	return g, nil
}

// Width returns the raster width in cells.
func (g *Grid) Width() int { return g.width }

// Height returns the raster height in cells.
func (g *Grid) Height() int { return g.height }

// NumVertices returns |V|, the number of passable cells.
func (g *Grid) NumVertices() int { return len(g.coord) }

// NumEdges returns |E|, the number of undirected adjacencies.
func (g *Grid) NumEdges() int {
	n := 0
	for v := range g.adj {
		if g.adj[v][East] != None {
			n++
		}
		if g.adj[v][North] != None {
			n++
		}
	}
	return n
}

// At returns the vertex at coordinate c, or None if c is out of bounds or an
// obstacle.
func (g *Grid) At(c Coord) VertexID {
	if c.X < 0 || c.X >= g.width || c.Y < 0 || c.Y >= g.height {
		return None
	}
	return g.id[c.Y*g.width+c.X]
}

// Coord returns the coordinate of vertex v.
func (g *Grid) Coord(v VertexID) Coord { return g.coord[v] }

// Neighbor returns the vertex adjacent to v in direction d, or None.
func (g *Grid) Neighbor(v VertexID, d Dir) VertexID { return g.adj[v][d] }

// Neighbors appends the vertices adjacent to v to dst and returns it.
func (g *Grid) Neighbors(v VertexID, dst []VertexID) []VertexID {
	for _, d := range Dirs {
		if u := g.adj[v][d]; u != None {
			dst = append(dst, u)
		}
	}
	return dst
}

// Adjacent reports whether u and v are distinct adjacent vertices.
func (g *Grid) Adjacent(u, v VertexID) bool {
	if u == v || u == None || v == None {
		return false
	}
	for _, d := range Dirs {
		if g.adj[u][d] == v {
			return true
		}
	}
	return false
}

// DirTo returns the direction from u to adjacent vertex v. ok is false if the
// vertices are not adjacent.
func (g *Grid) DirTo(u, v VertexID) (d Dir, ok bool) {
	for _, dd := range Dirs {
		if g.adj[u][dd] == v {
			return dd, true
		}
	}
	return 0, false
}

// BFS computes unit-cost shortest-path distances from src to every vertex.
// Unreachable vertices get distance -1.
func (g *Grid) BFS(src VertexID) []int {
	dist := make([]int, g.NumVertices())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []VertexID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, d := range Dirs {
			if u := g.adj[v][d]; u != None && dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// ShortestPath returns a minimum-hop path from src to dst inclusive, or nil
// if dst is unreachable.
func (g *Grid) ShortestPath(src, dst VertexID) []VertexID {
	if src == dst {
		return []VertexID{src}
	}
	prev := make([]VertexID, g.NumVertices())
	for i := range prev {
		prev[i] = None
	}
	prev[src] = src
	queue := []VertexID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, d := range Dirs {
			u := g.adj[v][d]
			if u == None || prev[u] != None {
				continue
			}
			prev[u] = v
			if u == dst {
				return reconstruct(prev, src, dst)
			}
			queue = append(queue, u)
		}
	}
	return nil
}

func reconstruct(prev []VertexID, src, dst VertexID) []VertexID {
	var rev []VertexID
	for v := dst; ; v = prev[v] {
		rev = append(rev, v)
		if v == src {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Connected reports whether the floorplan graph is connected (ignoring grids
// with zero vertices, which are considered connected vacuously).
func (g *Grid) Connected() bool {
	if g.NumVertices() == 0 {
		return true
	}
	dist := g.BFS(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// Map characters understood by Parse and produced by Render.
const (
	CellEmpty    = '.'
	CellObstacle = '#'
	CellShelf    = '@' // shelf body: an obstacle that stores product
	CellStation  = 'T' // station vertex (passable)
)

// Parse reads an ASCII floorplan. Rows are newline separated; the first text
// row is the highest Y (north edge), matching how maps are drawn. Recognized
// cells: '.' passable, '#' obstacle, '@' shelf body (obstacle), 'T' station
// (passable). Any other rune is an error.
//
// Parse returns the grid plus the coordinates of shelves and stations so
// callers can derive shelf-access vertices.
func Parse(text string) (g *Grid, shelves, stations []Coord, err error) {
	lines := strings.Split(strings.Trim(text, "\n"), "\n")
	h := len(lines)
	if h == 0 {
		return nil, nil, nil, fmt.Errorf("grid: empty map")
	}
	w := len(lines[0])
	passable := make([][]bool, h)
	for i := range passable {
		passable[i] = make([]bool, w)
	}
	for row, line := range lines {
		if len(line) != w {
			return nil, nil, nil, fmt.Errorf("grid: line %d has width %d, want %d", row, len(line), w)
		}
		y := h - 1 - row // first text row is the north edge
		for x, r := range line {
			switch r {
			case CellEmpty:
				passable[y][x] = true
			case CellObstacle:
				// impassable
			case CellShelf:
				shelves = append(shelves, Coord{x, y})
			case CellStation:
				passable[y][x] = true
				stations = append(stations, Coord{x, y})
			default:
				return nil, nil, nil, fmt.Errorf("grid: unknown cell %q at (%d,%d)", r, x, y)
			}
		}
	}
	g, err = New(passable)
	if err != nil {
		return nil, nil, nil, err
	}
	return g, shelves, stations, nil
}

// Render draws the grid as ASCII, marking the supplied shelf and station
// coordinates. It is the inverse of Parse for maps that round-trip.
func Render(g *Grid, shelves, stations []Coord) string {
	shelfSet := make(map[Coord]bool, len(shelves))
	for _, c := range shelves {
		shelfSet[c] = true
	}
	stationSet := make(map[Coord]bool, len(stations))
	for _, c := range stations {
		stationSet[c] = true
	}
	var b strings.Builder
	for row := 0; row < g.height; row++ {
		y := g.height - 1 - row
		for x := 0; x < g.width; x++ {
			c := Coord{x, y}
			switch {
			case shelfSet[c]:
				b.WriteByte(CellShelf)
			case stationSet[c]:
				b.WriteByte(CellStation)
			case g.At(c) != None:
				b.WriteByte(CellEmpty)
			default:
				b.WriteByte(CellObstacle)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
