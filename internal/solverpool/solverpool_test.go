package solverpool

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/maps"
	"repro/internal/workload"
)

// TestSolveBatchMatchesSequential checks that the concurrent pool returns
// bit-identical results to sequential core.Solve on the three Table I maps:
// same ServicedAt, same cycle sets, same plans. All requests per map share
// one traffic.System on purpose — run under -race this also proves that
// concurrent solves never mutate shared synthesis inputs.
func TestSolveBatchMatchesSequential(t *testing.T) {
	rows := []struct {
		name  string
		build func() (*maps.Map, error)
		units int
	}{
		{"SortingCenter", maps.SortingCenter, 160},
		{"Fulfillment1", maps.Fulfillment1, 550},
		{"Fulfillment2", maps.Fulfillment2, 1200},
	}
	const T = 3600

	var reqs []Request
	for _, row := range rows {
		m, err := row.build()
		if err != nil {
			t.Fatalf("%s: %v", row.name, err)
		}
		wl, err := workload.Uniform(m.W, row.units)
		if err != nil {
			t.Fatalf("%s: %v", row.name, err)
		}
		// Two identical requests per map: the pool must produce the same
		// answer for both even when they solve concurrently on one System.
		reqs = append(reqs,
			Request{S: m.S, WL: wl, T: T},
			Request{S: m.S, WL: wl, T: T},
		)
	}

	want := make([]*core.Result, len(reqs))
	for i, r := range reqs {
		res, err := core.Solve(r.S, r.WL, r.T, r.Opts)
		if err != nil {
			t.Fatalf("sequential solve %d: %v", i, err)
		}
		want[i] = res
	}

	got := SolveBatch(reqs, 4)
	if len(got) != len(reqs) {
		t.Fatalf("SolveBatch returned %d results for %d requests", len(got), len(reqs))
	}
	for i, g := range got {
		if g.Err != nil {
			t.Fatalf("parallel solve %d: %v", i, g.Err)
		}
		if g.Res.Sim.ServicedAt != want[i].Sim.ServicedAt {
			t.Errorf("request %d: parallel ServicedAt %d, sequential %d", i, g.Res.Sim.ServicedAt, want[i].Sim.ServicedAt)
		}
		if !reflect.DeepEqual(g.Res.CycleSet.Cycles, want[i].CycleSet.Cycles) {
			t.Errorf("request %d: parallel cycle set differs from sequential", i)
		}
		if !reflect.DeepEqual(g.Res.Plan, want[i].Plan) {
			t.Errorf("request %d: parallel plan differs from sequential", i)
		}
		if !reflect.DeepEqual(g.Res.Sim.Delivered, want[i].Sim.Delivered) {
			t.Errorf("request %d: parallel deliveries %v, sequential %v", i, g.Res.Sim.Delivered, want[i].Sim.Delivered)
		}
	}
}

// TestPoolWidths checks ordering and error propagation across widths.
func TestPoolWidths(t *testing.T) {
	m, err := maps.SortingCenter()
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.Uniform(m.W, 160)
	if err != nil {
		t.Fatal(err)
	}
	good := Request{S: m.S, WL: wl, T: 3600, Opts: core.Options{SkipRealization: true}}
	bad := Request{S: m.S, WL: wl, T: 1} // horizon shorter than one cycle period
	for _, workers := range []int{1, 2, 8} {
		got := SolveBatch([]Request{good, bad, good}, workers)
		if got[0].Err != nil || got[2].Err != nil {
			t.Fatalf("workers=%d: good requests failed: %v %v", workers, got[0].Err, got[2].Err)
		}
		if got[1].Err == nil {
			t.Fatalf("workers=%d: infeasible request did not fail", workers)
		}
		if got[0].Res.CycleSet == nil || got[2].Res.CycleSet == nil {
			t.Fatalf("workers=%d: missing cycle sets", workers)
		}
	}
}
