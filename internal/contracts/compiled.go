package contracts

import (
	"fmt"
	"math/big"

	"repro/internal/lp"
)

// Compiled pairs a contract's one-time ILP compilation with a persistent
// solver model, for callers that re-solve the same contract system under
// edited right-hand sides or variable bounds: horizon refinement probes,
// lifelong epochs, and design-sweep evaluations all differ from their
// predecessor only in a handful of numbers, not in structure.
//
// The compilation (variable ordering, constraint ordering, coefficients) is
// frozen at Compile time; Satisfy and RelaxationFeasible answers are
// bit-identical to re-compiling the edited contract and solving it from
// scratch (see lp.Model for how the warm paths preserve that guarantee).
// The source Contract must not gain variables or constraints afterwards.
type Compiled struct {
	Contract *Contract
	Prob     *lp.Problem
	// Index maps variable names to problem variables, as ToProblem returns.
	Index map[string]lp.VarID

	rows  map[string]int // constraint name → row
	model *lp.Model
}

// Compile freezes the contract's conjunction Ã ∧ G̃ into an editable ILP
// model. It is the one-time counterpart of ToProblem + SolveILP.
//
// Constraint names are the edit handles, so a name shared by several rows
// is poisoned rather than silently resolved to the first occurrence:
// SetRHS on it would retarget one row and leave its twins stale, breaking
// the bit-identity-with-recompile guarantee without a trace. (The flow
// compiler emits unique names; this guards the public seam.)
func (c *Contract) Compile() *Compiled {
	p, index := c.ToProblem()
	rows := make(map[string]int, len(p.Constraints))
	for i := range p.Constraints {
		name := p.Constraints[i].Name
		if _, dup := rows[name]; dup {
			rows[name] = -1 // ambiguous handle: reject edits through it
			continue
		}
		rows[name] = i
	}
	return &Compiled{Contract: c, Prob: p, Index: index, rows: rows, model: lp.NewModel(p)}
}

// SetRHS retargets the named constraint's right-hand side for the next
// solve. The edit keeps any warm basis usable (dual-simplex reentry).
func (cc *Compiled) SetRHS(name string, rhs *big.Rat) error {
	i, ok := cc.rows[name]
	if !ok {
		return fmt.Errorf("contracts: no constraint %q in compiled %s", name, cc.Contract.Name)
	}
	if i < 0 {
		return fmt.Errorf("contracts: constraint name %q is shared by several rows of compiled %s; edits through it are ambiguous", name, cc.Contract.Name)
	}
	cc.model.SetRHS(i, rhs)
	return nil
}

// Row resolves a constraint name to its row index, for callers that edit
// the same rows every solve and want to skip the name lookup (SetRHSAt).
// Names shared by several rows do not resolve.
func (cc *Compiled) Row(name string) (int, bool) {
	i, ok := cc.rows[name]
	return i, ok && i >= 0
}

// SetRHSAt is SetRHS addressed by row index (from Row).
func (cc *Compiled) SetRHSAt(row int, rhs *big.Rat) {
	cc.model.SetRHS(row, rhs)
}

// SetVarBound replaces the named variable's bounds (nil = unbounded).
func (cc *Compiled) SetVarBound(name string, lo, hi *big.Rat) error {
	id, ok := cc.Index[name]
	if !ok {
		return fmt.Errorf("contracts: no variable %q in compiled %s", name, cc.Contract.Name)
	}
	cc.model.SetBound(id, lo, hi)
	return nil
}

// Satisfy searches for a satisfying assignment of the edited system — the
// incremental counterpart of Contract.SatisfyOpts, with the same nil-means-
// unsatisfiable convention and bit-identical assignments.
func (cc *Compiled) Satisfy(opts lp.ILPOptions) (Assignment, error) {
	sol, err := cc.model.ResolveILP(opts)
	if err != nil {
		return nil, err
	}
	switch sol.Status {
	case lp.StatusOptimal:
		out := make(Assignment, len(cc.Index))
		for name, id := range cc.Index {
			out[name] = sol.Value(id)
		}
		return out, nil
	case lp.StatusInfeasible:
		return nil, nil
	case lp.StatusCanceled:
		return nil, fmt.Errorf("contracts: %s solve abandoned: %w", cc.Contract.Name, lp.ErrCanceled)
	case lp.StatusLimit:
		return nil, fmt.Errorf("contracts: %s undecided: %w", cc.Contract.Name, lp.ErrBudgetExhausted)
	default:
		return nil, fmt.Errorf("contracts: solver returned %v for %s", sol.Status, cc.Contract.Name)
	}
}

// RelaxationFeasible decides the continuous relaxation of the edited system
// with the exact engine — the incremental counterpart of the admission
// test's SolveLP call. Infeasibility verdicts ride the warm dual reentry,
// which is the common fast path when probing ever-tighter horizons.
//
// Only a proven StatusInfeasible counts as infeasible, exactly as the
// from-scratch admission test maps statuses: an unbounded relaxation (only
// possible once a caller installs an objective) still has feasible points.
func (cc *Compiled) RelaxationFeasible() (bool, error) {
	return cc.RelaxationFeasibleOpts(lp.SolveOptions{})
}

// RelaxationFeasibleWith is RelaxationFeasible with a per-call simplex
// representation override — preferred over SetSimplex for callers that
// share the compiled model, since it leaves no sticky model-level state
// behind.
func (cc *Compiled) RelaxationFeasibleWith(sx lp.SimplexEngine) (bool, error) {
	return cc.RelaxationFeasibleOpts(lp.SolveOptions{Simplex: sx})
}

// RelaxationFeasibleOpts is RelaxationFeasible with full per-call solve
// options (simplex representation and cancellation channel).
func (cc *Compiled) RelaxationFeasibleOpts(opts lp.SolveOptions) (bool, error) {
	sol, err := cc.model.ResolveWith(opts)
	if err != nil {
		return false, err
	}
	if sol.Status == lp.StatusCanceled {
		return false, fmt.Errorf("contracts: %s relaxation solve abandoned: %w", cc.Contract.Name, lp.ErrCanceled)
	}
	return sol.Status != lp.StatusInfeasible, nil
}
