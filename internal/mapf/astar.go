package mapf

import (
	"container/heap"
	"fmt"

	"repro/internal/grid"
)

// reservation tables: vertex occupancy and directed edge traversals per
// timestep, plus parking (a vertex blocked from some time onward).
type reservations struct {
	vertex map[vtKey]bool
	edge   map[etKey]bool
	parked map[grid.VertexID]int // vertex -> first blocked timestep
}

type vtKey struct {
	v grid.VertexID
	t int32
}

type etKey struct {
	from, to grid.VertexID
	t        int32 // time of arrival at "to"
}

func newReservations() *reservations {
	return &reservations{
		vertex: make(map[vtKey]bool),
		edge:   make(map[etKey]bool),
		parked: make(map[grid.VertexID]int),
	}
}

// blocked reports whether moving from u (at t-1) to v (arriving at t) is
// forbidden by the table.
func (r *reservations) blocked(u, v grid.VertexID, t int) bool {
	if r.vertex[vtKey{v, int32(t)}] {
		return true
	}
	if p, ok := r.parked[v]; ok && t >= p {
		return true
	}
	if u != v && r.edge[etKey{v, u, int32(t)}] {
		return true // the opposing traversal is reserved: swap conflict
	}
	return false
}

// reservePath writes an agent's path into the table, parking it at its final
// vertex from its arrival time onward.
func (r *reservations) reservePath(p Path) {
	for t := 0; t < len(p); t++ {
		r.vertex[vtKey{p[t], int32(t)}] = true
		if t > 0 && p[t] != p[t-1] {
			r.edge[etKey{p[t-1], p[t], int32(t)}] = true
		}
	}
	if len(p) > 0 {
		r.parked[p[len(p)-1]] = len(p) - 1
	}
}

// constraint forbids an agent from occupying vertex V at time T (edge From
// set to None) or from traversing From->V arriving at T.
type constraint struct {
	From grid.VertexID // grid.None for vertex constraints
	V    grid.VertexID
	T    int
}

type constraintSet map[constraint]bool

func (cs constraintSet) blocked(u, v grid.VertexID, t int) bool {
	if cs == nil {
		return false
	}
	if cs[constraint{grid.None, v, t}] {
		return true
	}
	if u != v && cs[constraint{u, v, t}] {
		return true
	}
	return false
}

// heuristic caches true-distance BFS fields toward goals.
type heuristic struct {
	g     *grid.Grid
	cache map[grid.VertexID][]int
}

func newHeuristic(g *grid.Grid) *heuristic {
	return &heuristic{g: g, cache: make(map[grid.VertexID][]int)}
}

// to returns the true shortest-path distance from v to goal (-1 if
// unreachable).
func (h *heuristic) to(goal, v grid.VertexID) int {
	d, ok := h.cache[goal]
	if !ok {
		d = h.g.BFS(goal)
		h.cache[goal] = d
	}
	return d[v]
}

// chain returns the distance of completing goals[idx:] starting at v:
// v -> goals[idx] -> goals[idx+1] -> ...
func (h *heuristic) chain(goals []grid.VertexID, idx int, v grid.VertexID) int {
	if idx >= len(goals) {
		return 0
	}
	total := h.to(goals[idx], v)
	if total < 0 {
		return -1
	}
	for i := idx + 1; i < len(goals); i++ {
		d := h.to(goals[i], goals[i-1])
		if d < 0 {
			return -1
		}
		total += d
	}
	return total
}

// stState is a space-time A* search state.
type stState struct {
	v       grid.VertexID
	t       int32
	goalIdx int16
}

type stNode struct {
	state     stState
	g, f      int32
	conflicts int32 // secondary key for focal search
	parent    *stNode
	heapIdx   int
}

type stHeap []*stNode

func (h stHeap) Len() int { return len(h) }
func (h stHeap) Less(i, j int) bool {
	if h[i].f != h[j].f {
		return h[i].f < h[j].f
	}
	if h[i].conflicts != h[j].conflicts {
		return h[i].conflicts < h[j].conflicts
	}
	return h[i].g > h[j].g // deeper first among ties
}
func (h stHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *stHeap) Push(x interface{}) {
	n := x.(*stNode)
	n.heapIdx = len(*h)
	*h = append(*h, n)
}
func (h *stHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// planParams bundles the inputs of one low-level search.
type planParams struct {
	g        *grid.Grid
	h        *heuristic
	start    grid.VertexID
	goals    []grid.VertexID
	res      *reservations // may be nil
	cons     constraintSet // may be nil
	horizon  int
	budget   *int // decremented per expansion; abort at 0
	conflict func(u, v grid.VertexID, t int) int32
	w        float64 // suboptimality factor for focal; <=1 disables
}

// planPath runs space-time A* through the goal sequence. It returns nil if
// no path exists within the horizon, and ErrExpansionLimit via the budget
// pointer semantics (budget reaching zero).
func planPath(p planParams) (Path, error) {
	if len(p.goals) == 0 {
		return Path{p.start}, nil
	}
	startState := stState{p.start, 0, 0}
	if p.start == p.goals[0] {
		startState.goalIdx = advanceGoals(p.goals, 0, p.start)
	}
	h0 := p.h.chain(p.goals, int(startState.goalIdx), p.start)
	if h0 < 0 {
		return nil, nil
	}
	open := &stHeap{}
	best := make(map[stState]int32)
	root := &stNode{state: startState, g: 0, f: int32(h0)}
	heap.Push(open, root)
	best[startState] = 0

	for open.Len() > 0 {
		node := pickNode(open, p.w)
		if int(node.state.goalIdx) >= len(p.goals) {
			return extractPath(node), nil
		}
		if *p.budget <= 0 {
			return nil, fmt.Errorf("mapf: low-level search budget spent: %w", ErrExpansionLimit)
		}
		*p.budget--
		if int(node.state.t) >= p.horizon {
			continue
		}
		u := node.state.v
		t := int(node.state.t) + 1
		moves := []grid.VertexID{u}
		moves = p.g.Neighbors(u, moves)
		for _, v := range moves {
			if p.res != nil && p.res.blocked(u, v, t) {
				continue
			}
			if p.cons.blocked(u, v, t) {
				continue
			}
			gi := advanceGoals(p.goals, node.state.goalIdx, v)
			ns := stState{v, int32(t), gi}
			ng := node.g + 1
			if prev, ok := best[ns]; ok && prev <= ng {
				continue
			}
			hv := p.h.chain(p.goals, int(gi), v)
			if hv < 0 {
				continue
			}
			best[ns] = ng
			child := &stNode{state: ns, g: ng, f: ng + int32(hv), parent: node}
			child.conflicts = node.conflicts
			if p.conflict != nil {
				child.conflicts += p.conflict(u, v, t)
			}
			heap.Push(open, child)
		}
	}
	return nil, nil
}

// advanceGoals returns the goal index after arriving at v with current
// index idx (consecutive identical goals all advance).
func advanceGoals(goals []grid.VertexID, idx int16, v grid.VertexID) int16 {
	for int(idx) < len(goals) && goals[idx] == v {
		idx++
	}
	return idx
}

// pickNode pops the best node: plain A* when w <= 1, otherwise a focal
// search preferring the fewest conflicts among nodes with f ≤ w·fmin.
func pickNode(open *stHeap, w float64) *stNode {
	if w <= 1 || open.Len() == 1 {
		return heap.Pop(open).(*stNode)
	}
	bound := int32(float64((*open)[0].f) * w)
	bestIdx := 0
	bestConf := (*open)[0].conflicts
	// The heap slice is not sorted, but every member's f is ≥ the root's;
	// scan for focal members. This is O(n) per pop, acceptable for the
	// baseline's role as a comparator.
	for i := 1; i < open.Len(); i++ {
		n := (*open)[i]
		if n.f <= bound && n.conflicts < bestConf {
			bestIdx, bestConf = i, n.conflicts
		}
	}
	n := (*open)[bestIdx]
	heap.Remove(open, bestIdx)
	return n
}

func extractPath(node *stNode) Path {
	var rev Path
	for n := node; n != nil; n = n.parent {
		rev = append(rev, n.state.v)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
