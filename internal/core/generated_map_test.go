package core

import (
	"context"
	"testing"

	"repro/internal/maps"
	"repro/internal/warehouse"
	"repro/internal/workload"
)

// TestFlowStrategiesOnGeneratedMap runs the per-period flow-set strategies
// (SequentialFlows and ContractILP) end to end on a small generated
// warehouse. Integer per-period rates need demand ≥ one unit per period per
// product, so the instance uses few products and generous stock —
// exactly the regime DESIGN.md says these strategies are for.
func TestFlowStrategiesOnGeneratedMap(t *testing.T) {
	m, err := maps.Generate(maps.Params{
		Stripes: 1, Rows: 2, BayWidth: 8, CorridorWidth: 2,
		MaxComponentLen: 6, DoubleShelfRows: false,
		NumProducts: 2, UnitsPerShelf: 120, StationsPerStripe: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.Uniform(m.W, 40)
	if err != nil {
		t.Fatal(err)
	}
	const T = 2400
	for _, strat := range []Strategy{SequentialFlows, ContractILP} {
		t.Run(strat.String(), func(t *testing.T) {
			res, err := Solve(context.Background(), m.S, wl, T, Options{Strategy: strat})
			if err != nil {
				t.Fatal(err)
			}
			if ok, why := warehouse.Services(m.W, res.Plan, wl); !ok {
				t.Fatalf("not serviced: %v", why)
			}
			if res.FlowSet == nil {
				t.Error("flow set missing")
			}
		})
	}
}
