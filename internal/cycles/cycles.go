// Package cycles builds agent cycle sets (§IV-B, §IV-E): closed loops of
// traffic-system components along which teams of agents circulate, carrying
// products from target shelving rows to target station queues.
//
// Two constructors are provided:
//
//   - FromFlowSet decomposes a synthesized agent flow set into the path sets
//     Pk and P0 of Properties 4.2/4.3 and chains them into cycles via the
//     bijection B_F. Where the paper pairs exactly one product path with one
//     empty path, the chaining here forms closed alternating walks, which
//     also covers flow sets whose product/empty endpoint distributions do
//     not transpose onto each other (the bijection the paper asserts does
//     not always exist; DESIGN.md records the erratum). A cycle may
//     therefore have several (pick row, product, drop queue) legs.
//
//   - Synthesize packs workload demand into cycles directly (route packing):
//     each product's stock-bounded demand shares are split into legs of at
//     most qeff units, legs are grouped geographically, and a loop through
//     the legs' rows and a station queue is routed over the residual
//     component capacities. This is the strategy that reaches the paper's
//     Table I scale, where integer per-product per-period flow rates are too
//     coarse (a product demanded 10 times in 3600 steps needs 1/360 of a
//     delivery per period, not a full unit).
package cycles

import (
	"fmt"
	"sort"

	"repro/internal/flow"
	"repro/internal/traffic"
	"repro/internal/warehouse"
)

// Leg is one pickup→drop-off assignment within a cycle.
type Leg struct {
	// PickIdx indexes Cycle.Components: the target shelving row.
	PickIdx int
	// DropIdx indexes Cycle.Components: the target station queue. It is
	// always "after" PickIdx in loop order (possibly wrapping).
	DropIdx int
	// Product carried on this leg.
	Product warehouse.ProductID
	// Quota is the total number of units this leg delivers over the plan.
	Quota int
}

// Cycle is a closed loop of components. One agent occupies each position;
// every cycle period all agents advance one position (wrapping).
type Cycle struct {
	Components []traffic.ComponentID
	Legs       []Leg
}

// Len returns b, the number of components (and agents) in the cycle.
func (c *Cycle) Len() int { return len(c.Components) }

// Set is an agent cycle set Σ with its timing parameters.
type Set struct {
	S    *traffic.System
	Tc   int // cycle time (2m)
	Qc   int // periods available in the horizon
	QEff int // periods the quotas were sized for (≤ Qc, warm-up headroom)

	Cycles []*Cycle
}

// NumAgents returns the total team size: one agent per cycle position.
func (cs *Set) NumAgents() int {
	n := 0
	for _, c := range cs.Cycles {
		n += c.Len()
	}
	return n
}

// Check validates the structural invariants realization relies on
// (Property 4.1 preconditions plus leg sanity):
//
//   - consecutive cycle components (wrapping) are arcs of Gs;
//   - each component hosts at most ⌊|Ci|/2⌋ cycle positions in total;
//   - legs pick at shelving rows and drop at station queues, in loop order;
//   - per-leg quotas fit the delivery rate (≤ qeff) and per-row stock;
//   - the workload demand is covered by quotas.
func (cs *Set) Check(wl warehouse.Workload) []error {
	var errs []error
	s := cs.S
	p := s.W.NumProducts
	usage := make([]int, s.NumComponents())
	quotaByRow := make([]int, s.NumComponents()*p) // row*|ρ|+product -> assigned quota
	delivered := make([]int, p)
	for ci, c := range cs.Cycles {
		if c.Len() < 2 {
			errs = append(errs, fmt.Errorf("cycles: cycle %d has %d components, want >= 2", ci, c.Len()))
			continue
		}
		queueVisits := 0
		for i, comp := range c.Components {
			usage[comp]++
			if s.Components[comp].Kind == traffic.StationQueue {
				queueVisits++
			}
			next := c.Components[(i+1)%c.Len()]
			if s.EdgeID(comp, next) < 0 {
				errs = append(errs, fmt.Errorf("cycles: cycle %d step %d: no arc %d->%d in Gs", ci, i, comp, next))
			}
		}
		if len(c.Legs) == 0 {
			errs = append(errs, fmt.Errorf("cycles: cycle %d has no legs", ci))
		}
		totalQuota := 0
		for li, leg := range c.Legs {
			if leg.PickIdx < 0 || leg.PickIdx >= c.Len() || leg.DropIdx < 0 || leg.DropIdx >= c.Len() {
				errs = append(errs, fmt.Errorf("cycles: cycle %d leg %d indices out of range", ci, li))
				continue
			}
			row := c.Components[leg.PickIdx]
			queue := c.Components[leg.DropIdx]
			if s.Components[row].Kind != traffic.ShelvingRow {
				errs = append(errs, fmt.Errorf("cycles: cycle %d leg %d picks at non-row component %d", ci, li, row))
			}
			if s.Components[queue].Kind != traffic.StationQueue {
				errs = append(errs, fmt.Errorf("cycles: cycle %d leg %d drops at non-queue component %d", ci, li, queue))
			}
			if leg.Quota < 0 {
				errs = append(errs, fmt.Errorf("cycles: cycle %d leg %d negative quota", ci, li))
			}
			if leg.Quota > cs.QEff {
				errs = append(errs, fmt.Errorf("cycles: cycle %d leg %d quota %d exceeds %d deliverable periods", ci, li, leg.Quota, cs.QEff))
			}
			totalQuota += leg.Quota
			quotaByRow[int(row)*p+int(leg.Product)] += leg.Quota
			delivered[leg.Product] += leg.Quota
		}
		// Throughput bound: one agent arrives at each queue position per
		// period, and every arrival delivers at most one unit.
		if totalQuota > cs.QEff*queueVisits {
			errs = append(errs, fmt.Errorf("cycles: cycle %d quota %d exceeds throughput %d (qeff %d × %d queue visits)",
				ci, totalQuota, cs.QEff*queueVisits, cs.QEff, queueVisits))
		}
	}
	for _, comp := range s.Components {
		if usage[comp.ID] > comp.Capacity() {
			errs = append(errs, fmt.Errorf("cycles: component %d hosts %d cycle positions, capacity %d",
				comp.ID, usage[comp.ID], comp.Capacity()))
		}
	}
	for idx, q := range quotaByRow {
		if q == 0 {
			continue
		}
		row, k := idx/p, idx%p
		if stock := s.UnitsAt(traffic.ComponentID(row), warehouse.ProductID(k)); q > stock {
			errs = append(errs, fmt.Errorf("cycles: row %d product %d quota %d exceeds stock %d", row, k, q, stock))
		}
	}
	for k, want := range wl.Units {
		if delivered[k] < want {
			errs = append(errs, fmt.Errorf("cycles: product %d quotas %d below demand %d", k, delivered[k], want))
		}
	}
	return errs
}

// path is one decomposed flow path on Gs.
type path struct {
	comps   []traffic.ComponentID
	product warehouse.ProductID // NoProduct for empty paths
}

// FromFlowSet converts an agent flow set into an agent cycle set (§IV-E).
func FromFlowSet(set *flow.Set, wl warehouse.Workload) (*Set, error) {
	s := set.S
	p := s.W.NumProducts

	// Decompose each product commodity into paths (Property 4.2).
	var productPaths []path
	for k := 0; k < p; k++ {
		paths, err := decompose(set, k)
		if err != nil {
			return nil, err
		}
		productPaths = append(productPaths, paths...)
	}
	// Decompose the empty commodity (Property 4.3).
	emptyPaths, err := decompose(set, set.EmptyIndex())
	if err != nil {
		return nil, err
	}

	// Chain alternating product/empty paths into closed walks (B_F
	// generalized). Index unused paths by their start component.
	n := s.NumComponents()
	prodByStart := make([][]int, n)
	for i, pp := range productPaths {
		prodByStart[pp.comps[0]] = append(prodByStart[pp.comps[0]], i)
	}
	emptyByStart := make([][]int, n)
	for i, ep := range emptyPaths {
		emptyByStart[ep.comps[0]] = append(emptyByStart[ep.comps[0]], i)
	}
	pop := func(m [][]int, at traffic.ComponentID) int {
		lst := m[at]
		if len(lst) == 0 {
			return -1
		}
		i := lst[len(lst)-1]
		m[at] = lst[:len(lst)-1]
		return i
	}

	cs := &Set{S: s, Tc: set.Tc, Qc: set.Qc, QEff: set.QEff}
	quotaPool := make([]int, n*p) // row*|ρ|+product -> undistributed quota
	for i := range set.Quota {
		for k, q := range set.Quota[i] {
			quotaPool[i*p+k] = q
		}
	}
	demand := append([]int(nil), wl.Units...)

	for start := range productPaths {
		if len(prodByStart[productPaths[start].comps[0]]) == 0 {
			continue // consumed already
		}
		origin := productPaths[start].comps[0]
		first := pop(prodByStart, origin)
		if first < 0 {
			continue
		}
		cyc := &Cycle{}
		cur := productPaths[first]
		for {
			pickIdx := len(cyc.Components)
			cyc.Components = append(cyc.Components, cur.comps[:len(cur.comps)-1]...)
			dropIdx := len(cyc.Components)
			cyc.Legs = append(cyc.Legs, Leg{
				PickIdx: pickIdx,
				DropIdx: dropIdx,
				Product: cur.product,
			})
			q := cur.comps[len(cur.comps)-1]
			ei := pop(emptyByStart, q)
			if ei < 0 {
				return nil, fmt.Errorf("cycles: no empty return path from component %d (flow conservation should prevent this)", q)
			}
			ep := emptyPaths[ei]
			cyc.Components = append(cyc.Components, ep.comps[:len(ep.comps)-1]...)
			r := ep.comps[len(ep.comps)-1]
			if r == origin {
				break
			}
			ni := pop(prodByStart, r)
			if ni < 0 {
				return nil, fmt.Errorf("cycles: no onward product path from component %d (degree balance should prevent this)", r)
			}
			cur = productPaths[ni]
		}
		assignLegQuotas(cyc, cs.QEff, p, quotaPool, demand)
		cs.Cycles = append(cs.Cycles, cyc)
	}
	if errs := cs.Check(wl); len(errs) > 0 {
		return nil, fmt.Errorf("cycles: decomposition produced an invalid cycle set: %v", errs[0])
	}
	return cs, nil
}

// assignLegQuotas hands each leg as much of its (row, product) quota pool as
// the delivery rate allows, clamped by remaining workload demand. quotaPool
// is indexed row*numProducts+product.
func assignLegQuotas(cyc *Cycle, qeff, numProducts int, quotaPool, demand []int) {
	for li := range cyc.Legs {
		leg := &cyc.Legs[li]
		key := int(cyc.Components[leg.PickIdx])*numProducts + int(leg.Product)
		give := quotaPool[key]
		if give > qeff {
			give = qeff
		}
		if give > demand[leg.Product] {
			give = demand[leg.Product]
		}
		leg.Quota = give
		quotaPool[key] -= give
		demand[leg.Product] -= give
	}
}

// decompose peels commodity k's edge flows into source→sink paths on Gs.
// Sources and sinks are the components with positive fin/fout for product
// commodities, and the queues/rows (fout/fin totals) for the empty
// commodity. Leftover circulations carry no deliveries and are dropped.
func decompose(set *flow.Set, k int) ([]path, error) {
	s := set.S
	p := s.W.NumProducts
	n := s.NumComponents()
	residual := make([]int, len(set.Edges))
	for e := range set.Edges {
		residual[e] = set.F[e][k]
	}
	source := make([]int, n)
	sink := make([]int, n)
	product := warehouse.NoProduct
	if k < p {
		product = warehouse.ProductID(k)
		for i := 0; i < n; i++ {
			source[i] = set.Fin[i][k]
			sink[i] = set.Fout[i][k]
		}
	} else {
		for i := 0; i < n; i++ {
			for kk := 0; kk < p; kk++ {
				source[i] += set.Fout[i][kk]
				sink[i] += set.Fin[i][kk]
			}
		}
	}
	var out []path
	for i := 0; i < n; i++ {
		for source[i] > 0 {
			source[i]--
			comps := []traffic.ComponentID{traffic.ComponentID(i)}
			cur := i
			steps := 0
			// Walk until a component with unmet sink demand absorbs the unit.
			for {
				if sink[cur] > 0 && len(comps) > 1 {
					sink[cur]--
					break
				}
				if sink[cur] > 0 && len(comps) == 1 && k >= p {
					// Empty unit sourced and sunk at the same component
					// (e.g. a row that is also... not possible; defensive).
					sink[cur]--
					break
				}
				advanced := false
				for _, e := range s.OutEdgeIDs(traffic.ComponentID(cur)) {
					if residual[e] > 0 {
						residual[e]--
						cur = int(set.Edges[e][1])
						comps = append(comps, traffic.ComponentID(cur))
						advanced = true
						break
					}
				}
				if !advanced {
					return nil, fmt.Errorf("cycles: flow decomposition stuck at component %d for commodity %d", cur, k)
				}
				steps++
				if steps > len(set.Edges)*maxInt(1, maxFlowBound(set, k))+1 {
					return nil, fmt.Errorf("cycles: flow decomposition did not terminate for commodity %d", k)
				}
			}
			out = append(out, path{comps: comps, product: product})
		}
	}
	return out, nil
}

func maxFlowBound(set *flow.Set, k int) int {
	m := 0
	for e := range set.Edges {
		if set.F[e][k] > m {
			m = set.F[e][k]
		}
	}
	return m
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// sortedRows returns the shelving rows sorted by ID for determinism.
func sortedRows(s *traffic.System) []traffic.ComponentID {
	rows := append([]traffic.ComponentID(nil), s.ShelvingRows()...)
	sort.Slice(rows, func(a, b int) bool { return rows[a] < rows[b] })
	return rows
}
