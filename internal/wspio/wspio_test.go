package wspio

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/maps"
	"repro/internal/testmaps"
	"repro/internal/warehouse"
	"repro/internal/workload"
)

func TestRoundTripRing(t *testing.T) {
	w, s := testmaps.MustRing()
	wl, err := warehouse.NewWorkload(w, []int{7, 4})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Encode(s, &wl, 800, "ring")
	if err != nil {
		t.Fatal(err)
	}
	data, err := Marshal(inst)
	if err != nil {
		t.Fatal(err)
	}
	inst2, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	s2, wl2, err := Decode(inst2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.NumComponents() != s.NumComponents() {
		t.Errorf("components %d != %d", s2.NumComponents(), s.NumComponents())
	}
	if wl2 == nil || wl2.TotalUnits() != 11 {
		t.Fatalf("workload lost in round trip: %v", wl2)
	}
	for k := 0; k < w.NumProducts; k++ {
		if got, want := s2.W.TotalStock(warehouse.ProductID(k)), w.TotalStock(warehouse.ProductID(k)); got != want {
			t.Errorf("product %d stock %d != %d", k, got, want)
		}
	}
	// The decoded instance must solve like the original.
	res, err := core.Solve(context.Background(), s2, *wl2, 800, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sim.ServicedAt < 0 {
		t.Error("decoded instance not serviced")
	}
}

func TestRoundTripPaperMap(t *testing.T) {
	m, err := maps.SortingCenter()
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.Uniform(m.W, 160)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Encode(m.S, &wl, 3600, "sorting")
	if err != nil {
		t.Fatal(err)
	}
	data, err := Marshal(inst)
	if err != nil {
		t.Fatal(err)
	}
	inst2, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	s2, wl2, err := Decode(inst2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Solve(context.Background(), s2, *wl2, inst2.T, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sim.ServicedAt < 0 {
		t.Error("decoded paper map not serviced")
	}
}

func TestDecodeRejectsCorruptInstances(t *testing.T) {
	w, s := testmaps.MustRing()
	_ = w
	inst, err := Encode(s, nil, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	bad := *inst
	bad.Stock = append([]StockEntry(nil), inst.Stock...)
	bad.Stock[0].Product = 99
	if _, _, err := Decode(&bad); err == nil {
		t.Error("out-of-range product accepted")
	}
	bad2 := *inst
	bad2.Stock = append([]StockEntry(nil), inst.Stock...)
	bad2.Stock[0].X = -5
	if _, _, err := Decode(&bad2); err == nil {
		t.Error("off-map stock cell accepted")
	}
	bad3 := *inst
	bad3.Components = [][][2]int{{{0, 0}, {5, 5}}}
	if _, _, err := Decode(&bad3); err == nil {
		t.Error("non-adjacent component cells accepted")
	}
	bad4 := *inst
	bad4.Map = "..x"
	if _, _, err := Decode(&bad4); err == nil {
		t.Error("corrupt map accepted")
	}
	if _, err := Unmarshal([]byte("{")); err == nil {
		t.Error("corrupt JSON accepted")
	}
}
