package datasets

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/traffic"
	"repro/internal/warehouse"
)

// RingParams describes one perimeter-ring warehouse: a one-way circulation
// loop around an impassable interior block, shelving on the north edge,
// stations on the south edge — the minimal strongly-connected shape (the
// generalization of the hand-built testmaps ring) at arbitrary footprint.
type RingParams struct {
	// Width and Height are the outer footprint (Width ≥ 6, Height ≥ 4).
	Width, Height int
	// MaxComponentLen caps component length after splitting (≥ 2).
	MaxComponentLen int
	// Stations is the number of station berths on the south edge (≥ 1),
	// spaced so each lands in its own component.
	Stations int
	// NumProducts shelves one product per north-edge access cell (≥ 1).
	NumProducts int
	// UnitsPerShelf is each shelf's stock (≥ 1).
	UnitsPerShelf int
}

func (p RingParams) validate() error {
	switch {
	case p.Width < 6:
		return fmt.Errorf("datasets: ring width %d < 6", p.Width)
	case p.Height < 4:
		return fmt.Errorf("datasets: ring height %d < 4", p.Height)
	case p.MaxComponentLen < 2:
		return fmt.Errorf("datasets: ring MaxComponentLen %d < 2", p.MaxComponentLen)
	case p.Stations < 1:
		return fmt.Errorf("datasets: ring needs at least one station")
	case p.NumProducts < 1:
		return fmt.Errorf("datasets: ring needs at least one product")
	case p.UnitsPerShelf < 1:
		return fmt.Errorf("datasets: ring UnitsPerShelf %d < 1", p.UnitsPerShelf)
	case p.NumProducts > p.Width-4:
		return fmt.Errorf("datasets: %d products need %d north-edge cells; width %d holds %d",
			p.NumProducts, p.NumProducts, p.Width, p.Width-4)
	}
	// Stations walk west from x = Width-3 with a gap that keeps them in
	// distinct components after splitting.
	gap := p.MaxComponentLen + 2
	if p.Width-3-(p.Stations-1)*gap < 2 {
		return fmt.Errorf("datasets: ring width %d cannot hold %d stations with gap %d", p.Width, p.Stations, gap)
	}
	return nil
}

// GenerateRing builds the warehouse and traffic system for p: one loop
// flowing east along the south edge, up the east edge, west along the
// north edge, and down the west edge, split into MaxComponentLen-capped
// components.
func GenerateRing(p RingParams) (*warehouse.Warehouse, *traffic.System, error) {
	if err := p.validate(); err != nil {
		return nil, nil, err
	}
	W, H := p.Width, p.Height
	passable := make([][]bool, H)
	for y := range passable {
		passable[y] = make([]bool, W)
		for x := range passable[y] {
			passable[y][x] = y == 0 || y == H-1 || x == 0 || x == W-1
		}
	}
	g, err := grid.New(passable)
	if err != nil {
		return nil, nil, err
	}
	at := func(x, y int) grid.VertexID { return g.At(grid.Coord{X: x, Y: y}) }

	// Shelf access cells on the north edge, one shelf per product, starting
	// at x=1 (clear of the north-west corner turn by construction: the top
	// lane's exit is (0, H-1)).
	var access []grid.VertexID
	stock := make([][]int, p.NumProducts)
	for k := 0; k < p.NumProducts; k++ {
		access = append(access, at(1+k, H-1))
		stock[k] = make([]int, p.NumProducts)
		stock[k][k] = p.UnitsPerShelf
	}
	// Stations on the south edge, east to west.
	var stations []grid.VertexID
	gap := p.MaxComponentLen + 2
	for j := 0; j < p.Stations; j++ {
		stations = append(stations, at(W-3-j*gap, 0))
	}
	w, err := warehouse.New(g, access, stations, p.NumProducts, stock)
	if err != nil {
		return nil, nil, err
	}

	// The loop: east along the south edge, north up the east edge, west
	// along the north edge, south down the west edge — the testmaps ring
	// at arbitrary footprint.
	var south, east, north, west []grid.VertexID
	for x := 0; x <= W-1; x++ {
		south = append(south, at(x, 0))
	}
	for y := 1; y <= H-1; y++ {
		east = append(east, at(W-1, y))
	}
	for x := W - 2; x >= 0; x-- {
		north = append(north, at(x, H-1))
	}
	for y := H - 2; y >= 1; y-- {
		west = append(west, at(0, y))
	}
	segs, err := traffic.SplitLanes(w, [][]grid.VertexID{south, east, north, west},
		traffic.SplitOptions{MaxLen: p.MaxComponentLen})
	if err != nil {
		return nil, nil, err
	}
	s, err := traffic.Build(w, segs)
	if err != nil {
		return nil, nil, err
	}
	seen := make(map[traffic.ComponentID]bool)
	for _, st := range stations {
		c := s.ComponentAt(st)
		if seen[c] {
			return nil, nil, fmt.Errorf("datasets: ring stations share component %d; widen the gap", c)
		}
		seen[c] = true
	}
	return w, s, nil
}
