package lp

import "math/big"

// boundDiff is one branch-and-bound bound tightening, stored as a parent
// chain exactly like mapf's cbsNode constraint chain: a child node differs
// from its parent by ONE bound, so materializing a node's effective bounds
// walks the chain instead of cloning per-variable slices. Pushing a node
// allocates O(1) regardless of the variable count (the alloc regression
// test in alloc_test.go pins this down).
type boundDiff struct {
	parent *boundDiff
	v      int      // variable index
	upper  bool     // true: tightened upper bound, false: raised lower bound
	val    *big.Rat // the new bound
	depth  int
}

func (nd *boundDiff) push(v int, upper bool, val *big.Rat) *boundDiff {
	d := 0
	if nd != nil {
		d = nd.depth
	}
	return &boundDiff{parent: nd, v: v, upper: upper, val: val, depth: d + 1}
}

// materialize fills lo/hi (len == NumVars, reused across nodes) with the
// node's effective bounds: the declared Problem bounds overlaid with every
// diff on the chain, deeper diffs winning. scratch is a reusable stack for
// the root-to-leaf replay; the returned slice is the (possibly grown)
// scratch for the caller to keep.
func (nd *boundDiff) materialize(p *Problem, lo, hi []*big.Rat, scratch []*boundDiff) []*boundDiff {
	for i := range p.Vars {
		lo[i] = p.Vars[i].Lower
		hi[i] = p.Vars[i].Upper
	}
	scratch = scratch[:0]
	for cur := nd; cur != nil; cur = cur.parent {
		scratch = append(scratch, cur)
	}
	// Replay root→leaf so deeper (later) diffs overwrite shallower ones.
	for i := len(scratch) - 1; i >= 0; i-- {
		d := scratch[i]
		if d.upper {
			hi[d.v] = d.val
		} else {
			lo[d.v] = d.val
		}
	}
	return scratch
}
