package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/warehouse"
)

// This file holds the corpus demand-trace generators: shapes beyond the
// paper's uniform Table I vectors, each deterministic for a fixed input
// (and, where randomized, a fixed *rand.Rand stream) so corpus instances
// regenerate byte-identically from their seed.

// clampToStock caps each product's demand by its stock and pushes the
// displaced units onto products with headroom, left to right; it errors
// when total stock cannot absorb the demand. Shared by the trace
// generators (same discipline as Uniform).
func clampToStock(w *warehouse.Warehouse, units []int) error {
	overflow := 0
	for k := range units {
		if stock := w.TotalStock(warehouse.ProductID(k)); units[k] > stock {
			overflow += units[k] - stock
			units[k] = stock
		}
	}
	for k := 0; k < len(units) && overflow > 0; k++ {
		room := w.TotalStock(warehouse.ProductID(k)) - units[k]
		if room <= 0 {
			continue
		}
		if room > overflow {
			room = overflow
		}
		units[k] += room
		overflow -= room
	}
	if overflow > 0 {
		return fmt.Errorf("workload: demand exceeds total stock by %d units", overflow)
	}
	return nil
}

// Bursty concentrates hotShare (0..1) of totalUnits on hotProducts
// rng-chosen products — the flash-sale shape — and spreads the remainder
// evenly over the whole catalog. Stock-clamped like Uniform; the same rng
// stream reproduces the same hot set.
func Bursty(w *warehouse.Warehouse, totalUnits, hotProducts int, hotShare float64, rng *rand.Rand) (warehouse.Workload, error) {
	p := w.NumProducts
	if p == 0 {
		return warehouse.Workload{}, fmt.Errorf("workload: warehouse has no products")
	}
	if hotProducts <= 0 || hotProducts > p {
		return warehouse.Workload{}, fmt.Errorf("workload: %d hot products outside [1, %d]", hotProducts, p)
	}
	if hotShare < 0 || hotShare > 1 {
		return warehouse.Workload{}, fmt.Errorf("workload: hot share %v outside [0, 1]", hotShare)
	}
	hotUnits := int(float64(totalUnits) * hotShare)
	coldUnits := totalUnits - hotUnits
	units := make([]int, p)
	for i, k := range rng.Perm(p)[:hotProducts] {
		units[k] = hotUnits / hotProducts
		if i < hotUnits%hotProducts {
			units[k]++
		}
	}
	base, extra := coldUnits/p, coldUnits%p
	for k := range units {
		units[k] += base
		if k < extra {
			units[k]++
		}
	}
	if err := clampToStock(w, units); err != nil {
		return warehouse.Workload{}, err
	}
	return warehouse.NewWorkload(w, units)
}

// DiurnalLevel is the integer day-curve used by Diurnal: a triangle wave
// over the period that ramps from 25% of peak at the trough to 100% at
// mid-period, in per-mille. Integer arithmetic keeps the curve identical
// on every platform.
func DiurnalLevel(phase, period int) int {
	if period <= 0 {
		period = 24
	}
	phase = ((phase % period) + period) % period
	// Distance from mid-period, normalized to 0 (peak) .. period/2 (trough).
	half := period / 2
	d := phase - half
	if d < 0 {
		d = -d
	}
	// 1000‰ at d=0 down to 250‰ at d=half.
	if half == 0 {
		return 1000
	}
	return 1000 - (750*d)/half
}

// Diurnal scales peakUnits by the phase's position on the day curve
// (DiurnalLevel) and spreads the result uniformly — the shift-cycle shape:
// corpus instances sample several phases of one day to exercise trough,
// shoulder, and peak load. Fully deterministic.
func Diurnal(w *warehouse.Warehouse, peakUnits, phase, period int) (warehouse.Workload, error) {
	units := peakUnits * DiurnalLevel(phase, period) / 1000
	if units < 1 {
		units = 1
	}
	return Uniform(w, units)
}

// Spike is the adversarial single-product shape: demand every unit of
// stock the warehouse holds for one product, forcing the synthesis to
// route all flow through that product's shelves.
func Spike(w *warehouse.Warehouse, product warehouse.ProductID) (warehouse.Workload, error) {
	if int(product) < 0 || int(product) >= w.NumProducts {
		return warehouse.Workload{}, fmt.Errorf("workload: product %d out of range", product)
	}
	return Single(w, product, w.TotalStock(product))
}
