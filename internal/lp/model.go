package lp

import "math/big"

// Model is a persistent, editable linear (or mixed-integer) program: the
// tableau arena is built once, bounds / right-hand sides / the objective are
// edited between solves, and Resolve / ResolveILP re-solve the edited
// program. Both are bit-identical to handing the current Problem to a fresh
// SolveLP / SolveILP:
//
//   - Resolve re-enters through the warm-start paths when it can — the dual
//     simplex after bound or RHS edits (reduced costs are untouched, so the
//     last optimal basis stays dual feasible), the primal phase 2 after an
//     objective-only edit (the basis stays primal feasible) — and accepts the
//     warm answer only when it provably equals the from-scratch one: an
//     infeasible/unbounded verdict (a status is an objective fact under exact
//     arithmetic) or an optimum certified unique by strictly signed reduced
//     costs. Anything else falls back to the deterministic cold solve, still
//     inside the retained arena.
//   - ResolveILP always branches cold from the root (a warm root would steer
//     the search down a different, albeit valid, subtree and break
//     reproducibility); the warm-started dual reentry between tree nodes and
//     the reused arena are where the time goes.
//
// The Model owns its Problem: edit bounds, RHS and objective only through
// the setters. Appending variables or constraints to the Problem after
// NewModel discards the arenas and rebuilds on the next solve.
//
// A Model is not safe for concurrent use; callers that solve many related
// instances concurrently keep one Model per worker (see solverpool).
type Model struct {
	p *Problem

	// One arena per engine and representation, built lazily on first use.
	// The exact path mirrors SolveLP/SolveILP: rat64 until an overflow
	// promotes the model to big.Rat for good. The dense and revised
	// representations return bit-identical answers, so a model may serve
	// solves through either (or both, under per-call overrides) without
	// observable effect.
	t64      *tableau[rat64, rat64Arith]
	tbig     *tableau[*big.Rat, ratArith]
	tflt     *tableau[float64, floatArith]
	r64      *revised[rat64, rat64Arith]
	rbig     *revised[*big.Rat, ratArith]
	rflt     *revised[float64, floatArith]
	promoted bool

	// simplex is the model-level representation override; SimplexAuto
	// (the default) selects by instance size, per-call ILPOptions.Simplex
	// wins over both.
	simplex SimplexEngine

	// autoRows is the model-level SimplexAuto crossover override; 0 keeps
	// the calibrated default, per-call option AutoRows wins over both.
	autoRows int

	nv, m int // structure snapshot; growth forces a rebuild

	lo, hi []*big.Rat // per-solve declared-bound scratch

	// Memoized integer box (intbox.go): the box is a pure function of the
	// declared bounds and constraint rows, so between bound/RHS edits every
	// ResolveILP reuses one chain instead of re-deriving it. The chain and
	// its rationals are immutable once built — sharing across solves is
	// safe.
	box   *boundDiff
	boxOK bool
}

// NewModel wraps p in a persistent model. No tableau is built until the
// first solve.
func NewModel(p *Problem) *Model {
	return &Model{p: p, nv: len(p.Vars), m: len(p.Constraints)}
}

// Problem returns the underlying program (read-only for structure; use the
// setters for edits).
func (mo *Model) Problem() *Problem { return mo.p }

// SetSimplex overrides the simplex representation for this model's exact
// solves (SimplexAuto restores size-based selection). Existing arenas are
// retained: answers are bit-identical across representations, so a
// mid-stream switch only changes which arena the next solve warms.
func (mo *Model) SetSimplex(e SimplexEngine) { mo.simplex = e }

// SetAutoRows overrides the SimplexAuto size crossover for this model's
// solves (see SolveOptions.AutoRows); 0 restores the calibrated default.
// Per-call option AutoRows wins over the model-level setting. Answers are
// unaffected — this only moves the dense/revised routing decision.
func (mo *Model) SetAutoRows(rows int) { mo.autoRows = rows }

// SetBound replaces the bounds of v (nil = unbounded). The edit takes
// effect at the next solve; warm reentry handles it via the dual simplex.
func (mo *Model) SetBound(v VarID, lo, hi *big.Rat) {
	mo.p.Vars[v].Lower, mo.p.Vars[v].Upper = lo, hi
	mo.boxOK = false
}

// SetRHS retargets constraint ci to a new right-hand side, keeping any warm
// basis dual feasible (the textbook dual-simplex re-solve case).
func (mo *Model) SetRHS(ci int, rhs *big.Rat) {
	mo.p.Constraints[ci].RHS = rhs
	mo.boxOK = false
	if mo.t64 != nil && !promote(func() { mo.t64.updateRHS(ci, rhs) }) {
		mo.dropRat64()
	}
	if mo.r64 != nil && !promote(func() { mo.r64.updateRHS(ci, rhs) }) {
		mo.dropRat64()
	}
	if mo.tbig != nil {
		mo.tbig.updateRHS(ci, rhs)
	}
	if mo.rbig != nil {
		mo.rbig.updateRHS(ci, rhs)
	}
	if mo.tflt != nil {
		mo.tflt.updateRHSPristine(ci, rhs)
	}
	if mo.rflt != nil {
		mo.rflt.updateRHSPristine(ci, rhs)
	}
}

// SetObjective replaces the objective. The last basis stays primal feasible,
// so the next Resolve may re-enter through phase 2 alone.
func (mo *Model) SetObjective(terms []Term, maximize bool) {
	mo.p.SetObjective(terms, maximize)
	if mo.t64 != nil && !promote(func() { mo.t64.updateCost() }) {
		mo.dropRat64()
	}
	if mo.r64 != nil && !promote(func() { mo.r64.updateCost() }) {
		mo.dropRat64()
	}
	if mo.tbig != nil {
		mo.tbig.updateCost()
	}
	if mo.rbig != nil {
		mo.rbig.updateCost()
	}
	if mo.tflt != nil {
		mo.tflt.updateCost()
	}
	if mo.rflt != nil {
		mo.rflt.updateCost()
	}
}

// pick resolves the simplex representation for an exact solve: a per-call
// override wins, then the model-level override, then instance size (with
// the same per-call-then-model precedence for the auto crossover).
func (mo *Model) pick(call SimplexEngine, callRows int) SimplexEngine {
	return pickSimplex(mo.p, mo.effective(call), mo.effectiveRows(callRows))
}

// effectiveRows resolves the SimplexAuto crossover override chain.
func (mo *Model) effectiveRows(callRows int) int {
	if callRows > 0 {
		return callRows
	}
	return mo.autoRows
}

// effective resolves only the override chain (per-call, then model-level),
// keeping SimplexHybrid visible: hybrid is a solve mode the Resolve entry
// points route before representations are picked.
func (mo *Model) effective(call SimplexEngine) SimplexEngine {
	if call == SimplexAuto {
		return mo.simplex
	}
	return call
}

// Resolve solves the current program with the exact engine, warm when the
// edits allow it. The result is bit-identical to SolveLP(m.Problem()).
func (mo *Model) Resolve() (*Solution, error) {
	return mo.ResolveWith(SolveOptions{})
}

// ResolveWith is Resolve with per-call solve options; opts.Simplex wins
// over the model-level override for this call only.
func (mo *Model) ResolveWith(opts SolveOptions) (*Solution, error) {
	mo.checkStructure()
	if mo.effective(opts.Simplex) == SimplexHybrid {
		// Hybrid is float-first with its own certification dance; it never
		// reuses the retained exact arenas, and a fresh hybrid solve is
		// bit-identical to the exact answer by its own contract.
		return solveLPHybrid(mo.p, opts.Cancel)
	}
	rev := mo.pick(opts.Simplex, opts.AutoRows) == SimplexRevised
	if !mo.promoted {
		var sol *Solution
		var err error
		if promote(func() { sol, err = resolveLP(mo, mo.arena64(rev), opts.Cancel) }) {
			return sol, err
		}
		mo.dropRat64()
	}
	return resolveLP(mo, mo.arenaBig(rev), opts.Cancel)
}

// ResolveILP solves the current program by branch and bound in the retained
// arena. The result is bit-identical to SolveILP(m.Problem(), opts).
func (mo *Model) ResolveILP(opts ILPOptions) (*Solution, error) {
	mo.checkStructure()
	if opts.Engine == EngineFloat {
		// The parallel executor's extra arenas are spawned fresh (the
		// retained one cannot be shared across goroutines); cold subtree
		// solves are arena-independent, so the answer is unchanged.
		spawn := func() arena[float64] { return floatArena(mo.p, opts.Simplex, opts.AutoRows) }
		return bbSolveTableau(mo.p, mo.floatArena(opts.Simplex, opts.AutoRows), floatArith{eps: defaultEps}, opts, spawn, mo.cachedBox)
	}
	if opts.RootCuts {
		// Root cuts append rows, which a retained arena cannot absorb;
		// solve fresh, exactly as SolveILP would.
		return solveILPRootCuts(mo.p, opts)
	}
	if mo.effective(opts.Simplex) == SimplexHybrid {
		return solveILPHybrid(mo.p, opts)
	}
	rev := mo.pick(opts.Simplex, opts.AutoRows) == SimplexRevised
	if !mo.promoted {
		var sol *Solution
		var err error
		spawn := func() arena[rat64] { return freshArena[rat64, rat64Arith](mo.p, rat64Arith{}, rev) }
		if promote(func() { sol, err = bbSolveTableau(mo.p, mo.arena64(rev), rat64Arith{}, opts, spawn, mo.cachedBox) }) {
			return sol, err
		}
		mo.dropRat64()
	}
	spawn := func() arena[*big.Rat] { return freshArena[*big.Rat, ratArith](mo.p, ratArith{}, rev) }
	return bbSolveTableau(mo.p, mo.arenaBig(rev), ratArith{}, opts, spawn, mo.cachedBox)
}

// cachedBox returns the memoized integer box for the model's current
// program, deriving it on first use after any bound or RHS edit.
func (mo *Model) cachedBox() *boundDiff {
	if !mo.boxOK {
		mo.box = integerBox(mo.p)
		mo.boxOK = true
	}
	return mo.box
}

// freshArena builds a new arena of the requested representation, as the
// parallel executor's per-worker spawn hook.
func freshArena[T any, A arith[T]](p *Problem, ar A, revisedEngine bool) arena[T] {
	if revisedEngine {
		return newRevised[T, A](p, ar)
	}
	return newTableau[T, A](p, ar)
}

// resolveLP drives one LP solve over the given arena: declared bounds in,
// warm or cold solve, Solution out.
func resolveLP[T any](mo *Model, tb arena[T], cancel <-chan struct{}) (*Solution, error) {
	lo, hi := mo.declaredBounds()
	tb.setCancel(cancel)
	tb.setWorkBudget(0)
	start := tb.workSpent()
	status := tb.resolveModel(lo, hi)
	meterWork(tb.workSpent() - start)
	switch status {
	case StatusInfeasible, StatusUnbounded:
		return &Solution{Status: status}, nil
	case StatusLimit:
		// Model LP solves carry no work budget; the tick can only have
		// fired through the cancellation channel.
		return &Solution{Status: StatusCanceled}, nil
	}
	return optimalSolution(tb), nil
}

// resolveModel solves under the given bounds, preferring warm reentry but
// returning a warm answer only when it provably matches the from-scratch
// one; everything else re-runs the deterministic cold path in place.
func (tb *tableau[T, A]) resolveModel(lo, hi []*big.Rat) Status {
	ok, changed := tb.setBounds(lo, hi)
	if changed {
		tb.basisOK = false
	}
	if !ok {
		return StatusInfeasible // conflicting bounds, as solveNode reports
	}
	if tb.warmOK {
		if tb.rewarm() {
			// Dual reentry: bound and RHS edits leave the basis dual
			// feasible.
			switch tb.dual() {
			case dualOptimal:
				tb.basisOK = true
				if tb.uniqueOptimum() {
					return StatusOptimal
				}
				// Optimal but possibly not unique: only the cold path's
				// answer is canonical.
			case dualInfeasible:
				return StatusInfeasible
			case dualBudget:
				// Cancelled mid-reentry (Model LP solves carry no work
				// budget): drop the mid-walk state and report promptly.
				tb.warmOK, tb.basisOK = false, false
				return StatusLimit
			}
			// dualStuck: anti-cycling cap hit; restart cold for certainty.
		}
		// A failed rewarm reshuffled the nonbasic states mid-walk.
		tb.basisOK = false
	} else if tb.basisOK {
		// Primal reentry: bounds and RHS are as last solved, only the
		// objective changed, so the basis is still primal feasible and
		// phase 1 can be skipped outright.
		switch tb.phase2() {
		case StatusOptimal:
			tb.warmOK = true
			if tb.uniqueOptimum() {
				return StatusOptimal
			}
		case StatusUnbounded:
			tb.warmOK, tb.basisOK = false, false
			return StatusUnbounded
		case StatusLimit:
			tb.warmOK, tb.basisOK = false, false
			return StatusLimit
		}
	}
	tb.warmOK = false
	status := tb.solveFresh()
	tb.warmOK = status == StatusOptimal
	tb.basisOK = status == StatusOptimal
	return status
}

// declaredBounds snapshots the Problem's variable bounds into reusable
// scratch slices.
func (mo *Model) declaredBounds() ([]*big.Rat, []*big.Rat) {
	if len(mo.lo) != len(mo.p.Vars) {
		mo.lo = make([]*big.Rat, len(mo.p.Vars))
		mo.hi = make([]*big.Rat, len(mo.p.Vars))
	}
	for i := range mo.p.Vars {
		mo.lo[i] = mo.p.Vars[i].Lower
		mo.hi[i] = mo.p.Vars[i].Upper
	}
	return mo.lo, mo.hi
}

// checkStructure rebuilds from scratch when variables or constraints were
// appended behind the model's back.
func (mo *Model) checkStructure() {
	if len(mo.p.Vars) != mo.nv || len(mo.p.Constraints) != mo.m {
		mo.t64, mo.tbig, mo.tflt = nil, nil, nil
		mo.r64, mo.rbig, mo.rflt = nil, nil, nil
		mo.promoted = false
		mo.box, mo.boxOK = nil, false
		mo.nv, mo.m = len(mo.p.Vars), len(mo.p.Constraints)
	}
}

// dropRat64 abandons the int64 fast path after an overflow; the model runs
// on big.Rat from here on (mirroring SolveLP's whole-solve promotion).
func (mo *Model) dropRat64() {
	mo.t64 = nil
	mo.r64 = nil
	mo.promoted = true
}

// arena64 returns the rat64 arena of the requested representation,
// building it on first use.
func (mo *Model) arena64(revisedEngine bool) arena[rat64] {
	if revisedEngine {
		if mo.r64 == nil {
			mo.r64 = newRevised[rat64, rat64Arith](mo.p, rat64Arith{})
		}
		return mo.r64
	}
	if mo.t64 == nil {
		mo.t64 = newTableau[rat64, rat64Arith](mo.p, rat64Arith{})
	}
	return mo.t64
}

// arenaBig returns the big.Rat arena of the requested representation,
// building it on first use.
func (mo *Model) arenaBig(revisedEngine bool) arena[*big.Rat] {
	if revisedEngine {
		if mo.rbig == nil {
			mo.rbig = newRevised[*big.Rat, ratArith](mo.p, ratArith{})
		}
		return mo.rbig
	}
	if mo.tbig == nil {
		mo.tbig = newTableau[*big.Rat, ratArith](mo.p, ratArith{})
	}
	return mo.tbig
}

// floatArena returns the retained float arena of the representation the
// override chain and the size rule select, mirroring the package-level
// floatArena.
func (mo *Model) floatArena(call SimplexEngine, callRows int) arena[float64] {
	if floatPick(mo.p, mo.effective(call), mo.effectiveRows(callRows)) == SimplexRevised {
		if mo.rflt == nil {
			mo.rflt = newRevisedFloat(mo.p)
		}
		return mo.rflt
	}
	if mo.tflt == nil {
		mo.tflt = newTableau[float64, floatArith](mo.p, floatArith{eps: defaultEps})
	}
	return mo.tflt
}
