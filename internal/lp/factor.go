package lp

import "sort"

// This file implements the basis factorization behind the revised simplex
// engine (revised.go): a product-form LU of the basis matrix B, rebuilt by
// refactor() and extended by one eta column per pivot (update()), with
// FTRAN/BTRAN solves over sparse work vectors.
//
// Representation. refactor() eliminates the basis columns in a sparsity-
// chosen order σ: step t pivots column basis[σ(t)] on row p_t and records
// the elementary matrix E_t (identity except column p_t, which holds the
// partially transformed basis column). The running transform
// M = E_k⁻¹···E_1⁻¹ then satisfies
//
//	M·B = Q,  with Q[p_t, σ(t)] = 1,
//
// i.e. M is B⁻¹ up to the row permutation Q, recorded as posOfPiv (pivot
// row → basis position) and rowOfPos (its inverse). A pivot that replaces
// basis position r builds its eta from the FTRAN'd entering column with
// pivot row rowOfPos[r]; E⁻¹·M then satisfies the same identity with the
// SAME Q for the new basis, so the permutation survives every update and is
// refreshed only by refactor(). FTRAN takes a vector in constraint-row
// space and returns M·v (callers map pivot rows to basis positions through
// posOfPiv); BTRAN takes basis-position costs scattered through rowOfPos
// and returns yᵀ = c_Bᵀ·B⁻¹ in constraint-row space.
//
// Triggers. The eta file is folded back into a fresh factorization when it
// exceeds etaUpdateCap updates or when its fill outgrows the base
// factorization (needRefactor). Floating-point codes pair the length
// trigger with an accuracy trigger; exact rational arithmetic cannot
// drift, so what grows instead is the bit-length of the eta entries — the
// fill bound is what caps that here.

// eta is one elementary matrix E: identity except column piv, which holds
// pivV on the diagonal and vals on rows. E⁻¹·x is t := x[piv]/pivV;
// x[rows[k]] -= t·vals[k]; x[piv] = t.
type eta[T any] struct {
	piv  int32
	pivV T
	rows []int32
	vals []T
}

// spVec is a dense work vector with an explicit index list of the entries
// touched since the last clear, so FTRAN/BTRAN cost scales with the
// entries reached instead of with m. Listed entries may still be exactly
// zero after cancellation; consumers test signs. Untouched slots hold a
// shared ar.zero() value — never T's zero value, which for *big.Rat would
// be a nil pointer.
type spVec[T any] struct {
	val  []T
	mark []bool
	idx  []int32
}

func newSpVec[T any, A arith[T]](ar A, m int) *spVec[T] {
	v := &spVec[T]{val: make([]T, m), mark: make([]bool, m), idx: make([]int32, 0, 16)}
	z := ar.zero()
	for i := range v.val {
		v.val[i] = z
	}
	return v
}

func (v *spVec[T]) set(i int32, x T) {
	v.val[i] = x
	if !v.mark[i] {
		v.mark[i] = true
		v.idx = append(v.idx, i)
	}
}

func (v *spVec[T]) clear(zero T) {
	for _, i := range v.idx {
		v.val[i] = zero
		v.mark[i] = false
	}
	v.idx = v.idx[:0]
}

// colStore is the column-major (CSC) view of the standard-form matrix
// [A | I | S]: structural columns 0..nv-1 hold the problem matrix, logical
// column nv+i is e_i, and artificial column artStart+i is artSign[i]·e_i —
// the sign the revised engine's cold start chose so the activated
// artificial begins non-negative (the dense engine encodes the same choice
// by negating the whole tableau row; see tableau.cold).
type colStore[T any] struct {
	nv, m    int
	artStart int
	ptr      []int32
	rows     []int32
	vals     []T
	artSign  []int8
}

func newColStore[T any](csr *csrRows, convVal []T, nv int) *colStore[T] {
	m := csr.numRows()
	cs := &colStore[T]{nv: nv, m: m, artStart: nv + m, artSign: make([]int8, m)}
	ptr := make([]int32, nv+1)
	for _, c := range csr.cols {
		ptr[c+1]++
	}
	for j := 0; j < nv; j++ {
		ptr[j+1] += ptr[j]
	}
	cs.ptr = ptr
	cs.rows = make([]int32, len(csr.cols))
	cs.vals = make([]T, len(csr.cols))
	next := make([]int32, nv)
	copy(next, ptr[:nv])
	for i := 0; i < m; i++ {
		for k := csr.ptr[i]; k < csr.ptr[i+1]; k++ {
			j := csr.cols[k]
			at := next[j]
			cs.rows[at] = int32(i)
			cs.vals[at] = convVal[k]
			next[j]++
		}
	}
	return cs
}

// basisFactor is the factorized-basis state: the LU etas from the last
// refactorization, the eta file appended since, and the pivot-row
// permutation connecting raw (constraint-row) and basis-position space.
type basisFactor[T any, A arith[T]] struct {
	ar   A
	m    int
	cols *colStore[T]

	lu            []eta[T]
	upd           []eta[T]
	luNNZ, updNNZ int

	posOfPiv []int32 // raw pivot row → basis position
	rowOfPos []int32 // basis position → raw pivot row

	zero, one T

	claimed []bool    // refactor scratch: rows already pivoted
	work    *spVec[T] // refactor scratch: partially transformed column
}

func newBasisFactor[T any, A arith[T]](ar A, cols *colStore[T]) *basisFactor[T, A] {
	m := cols.m
	return &basisFactor[T, A]{
		ar: ar, m: m, cols: cols,
		posOfPiv: make([]int32, m),
		rowOfPos: make([]int32, m),
		zero:     ar.zero(),
		one:      ar.one(),
		claimed:  make([]bool, m),
		work:     newSpVec(ar, m),
	}
}

// etaUpdateCap bounds the eta file between refactorizations. Each update
// makes every later FTRAN/BTRAN a little more expensive (and, in exact
// arithmetic, a little wider numerically), while a refactorization costs
// one partial FTRAN per basis column; a few dozen updates per rebuild is
// the classic balance point.
const etaUpdateCap = 64

func (f *basisFactor[T, A]) needRefactor() bool {
	return len(f.upd) >= etaUpdateCap || f.updNNZ > 4*(f.luNNZ+f.m)
}

// refactor rebuilds the factorization from the given basis: unit columns
// (logicals, artificials) pivot on their own row with zero fill, then the
// structural columns are eliminated in ascending-sparsity order, each
// pivoting on its lowest-index still-unclaimed nonzero row. A valid basis
// always factors; failure to find a pivot means the caller handed over a
// singular column set, which is an internal invariant violation.
func (f *basisFactor[T, A]) refactor(basis []int) {
	if !f.tryRefactor(basis) {
		panic("lp: singular basis")
	}
}

// tryRefactor is refactor for bases of unproven provenance: a hybrid solve
// adopts the float engine's final basis into an exact engine, and a column
// set that is nonsingular in float arithmetic can still be exactly
// singular. It reports false instead of panicking, leaving the
// factorization in an undefined state the caller must not use.
func (f *basisFactor[T, A]) tryRefactor(basis []int) bool {
	ar := f.ar
	cs := f.cols
	f.lu = f.lu[:0]
	f.upd = f.upd[:0]
	f.luNNZ, f.updNNZ = 0, 0
	for i := range f.claimed {
		f.claimed[i] = false
	}
	type structCol struct{ pos, j, nnz int }
	var structs []structCol
	for pos, j := range basis {
		switch {
		case j >= cs.artStart:
			i := j - cs.artStart
			if f.claimed[i] {
				return false // two unit columns on one row
			}
			f.claimed[i] = true
			f.posOfPiv[i] = int32(pos)
			f.rowOfPos[pos] = int32(i)
			if cs.artSign[i] < 0 {
				f.lu = append(f.lu, eta[T]{piv: int32(i), pivV: ar.neg(f.one)})
				f.luNNZ++
			}
		case j >= cs.nv:
			i := j - cs.nv
			if f.claimed[i] {
				return false // two unit columns on one row
			}
			f.claimed[i] = true
			f.posOfPiv[i] = int32(pos)
			f.rowOfPos[pos] = int32(i)
			// Identity eta: nothing to store.
		default:
			structs = append(structs, structCol{pos, j, int(cs.ptr[j+1] - cs.ptr[j])})
		}
	}
	sort.Slice(structs, func(a, b int) bool {
		if structs[a].nnz != structs[b].nnz {
			return structs[a].nnz < structs[b].nnz
		}
		return structs[a].j < structs[b].j
	})
	for _, sc := range structs {
		v := f.work
		v.clear(f.zero)
		for k := cs.ptr[sc.j]; k < cs.ptr[sc.j+1]; k++ {
			v.set(cs.rows[k], cs.vals[k])
		}
		f.applyEtas(f.lu, v)
		piv := int32(-1)
		for _, i := range v.idx {
			if f.claimed[i] || ar.sign(v.val[i]) == 0 {
				continue
			}
			if piv < 0 || i < piv {
				piv = i
			}
		}
		if piv < 0 {
			return false // structural column eliminated to zero
		}
		var rows []int32
		var vals []T
		for _, i := range v.idx {
			if i == piv || ar.sign(v.val[i]) == 0 {
				continue
			}
			rows = append(rows, i)
			vals = append(vals, v.val[i])
		}
		f.lu = append(f.lu, eta[T]{piv: piv, pivV: v.val[piv], rows: rows, vals: vals})
		f.luNNZ += len(rows) + 1
		f.claimed[piv] = true
		f.posOfPiv[piv] = int32(sc.pos)
		f.rowOfPos[sc.pos] = piv
	}
	return true
}

// update extends the eta file after a basis exchange: alphaRaw is the
// FTRAN'd entering column (raw space, still untouched since ftran) and
// pivRow the raw pivot row of the leaving position. An identity eta is
// dropped rather than stored.
func (f *basisFactor[T, A]) update(alphaRaw *spVec[T], pivRow int32) {
	ar := f.ar
	var rows []int32
	var vals []T
	for _, i := range alphaRaw.idx {
		if i == pivRow || ar.sign(alphaRaw.val[i]) == 0 {
			continue
		}
		rows = append(rows, i)
		vals = append(vals, alphaRaw.val[i])
	}
	pv := alphaRaw.val[pivRow]
	if len(rows) == 0 && ar.cmp(pv, f.one) == 0 {
		return
	}
	f.upd = append(f.upd, eta[T]{piv: pivRow, pivV: pv, rows: rows, vals: vals})
	f.updNNZ += len(rows) + 1
}

// ftran applies M in place: v ← E_k⁻¹···E_1⁻¹·v over the LU etas, then the
// update file. Input and output are in constraint-row (raw) space; the
// value of basis position posOfPiv[i] lands at raw index i.
func (f *basisFactor[T, A]) ftran(v *spVec[T]) {
	f.applyEtas(f.lu, v)
	f.applyEtas(f.upd, v)
}

func (f *basisFactor[T, A]) applyEtas(es []eta[T], v *spVec[T]) {
	ar := f.ar
	for ei := range es {
		e := &es[ei]
		t := v.val[e.piv]
		if ar.sign(t) == 0 {
			continue
		}
		t = ar.div(t, e.pivV)
		for k, r := range e.rows {
			v.set(r, ar.sub(v.val[r], ar.mul(t, e.vals[k])))
		}
		v.set(e.piv, t)
	}
}

// btran applies Mᵀ in place (transposed etas in reverse order): scatter
// basis-position costs through rowOfPos, btran, and the result is
// yᵀ = c_Bᵀ·B⁻¹ in constraint-row space, ready to dot against matrix
// columns.
func (f *basisFactor[T, A]) btran(v *spVec[T]) {
	f.applyEtasT(f.upd, v)
	f.applyEtasT(f.lu, v)
}

func (f *basisFactor[T, A]) applyEtasT(es []eta[T], v *spVec[T]) {
	ar := f.ar
	for ei := len(es) - 1; ei >= 0; ei-- {
		e := &es[ei]
		s := v.val[e.piv]
		for k, r := range e.rows {
			yr := v.val[r]
			if ar.sign(yr) != 0 {
				s = ar.sub(s, ar.mul(e.vals[k], yr))
			}
		}
		if ar.sign(s) == 0 && !v.mark[e.piv] {
			continue
		}
		v.set(e.piv, ar.div(s, e.pivV))
	}
}
