package lifelong

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/maps"
	"repro/internal/testmaps"
)

func TestRunSingleBatchMatchesOneShot(t *testing.T) {
	_, s := testmaps.MustRing()
	rep, err := Run(context.Background(), s, []Batch{{Release: 0, Units: []int{10, 5}}}, 2400, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epochs != 1 {
		t.Errorf("epochs = %d, want 1", rep.Epochs)
	}
	if rep.Delivered[0] != 10 || rep.Delivered[1] != 5 {
		t.Errorf("delivered = %v, want [10 5]", rep.Delivered)
	}
	if rep.Batches[0].Completed < 0 {
		t.Error("batch never completed")
	}
}

func TestRunStaggeredBatches(t *testing.T) {
	_, s := testmaps.MustRing()
	batches := []Batch{
		{Release: 0, Units: []int{8, 0}},
		{Release: 900, Units: []int{0, 8}},
		{Release: 1800, Units: []int{4, 4}},
	}
	rep, err := Run(context.Background(), s, batches, 4800, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered[0] != 12 || rep.Delivered[1] != 12 {
		t.Errorf("delivered = %v, want [12 12]", rep.Delivered)
	}
	if rep.Epochs < 2 {
		t.Errorf("epochs = %d, want >= 2 (staggered releases force re-planning)", rep.Epochs)
	}
	prev := -1
	for i, b := range rep.Batches {
		if b.Completed < 0 {
			t.Errorf("batch %d never completed", i)
			continue
		}
		if b.Completed < b.Release {
			t.Errorf("batch %d completed at %d before release %d", i, b.Completed, b.Release)
		}
		if b.Completed < prev {
			t.Errorf("batch completion out of FIFO order: %d after %d", b.Completed, prev)
		}
		prev = b.Completed
	}
	if rep.PeakAgents == 0 {
		t.Error("no agents recorded")
	}
}

func TestRunOnPaperMap(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	m, err := maps.SortingCenter()
	if err != nil {
		t.Fatal(err)
	}
	units := make([]int, m.W.NumProducts)
	for k := range units {
		units[k] = 2
	}
	batches := []Batch{
		{Release: 0, Units: units},
		{Release: 2000, Units: units},
	}
	rep, err := Run(context.Background(), m.S, batches, 8000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * len(units) * 2
	got := 0
	for _, d := range rep.Delivered {
		got += d
	}
	if got != want {
		t.Errorf("delivered %d units, want %d", got, want)
	}
}

// Every epoch changeover is charged exactly one cycle time, and the epoch
// log timeline is internally consistent — for the default strategy and for
// the contract-ILP strategy that re-targets one compiled model per epoch.
func TestRunChargesOneCycleTimePerEpoch(t *testing.T) {
	_, s := testmaps.MustRing()
	batches := []Batch{
		{Release: 0, Units: []int{8, 0}},
		{Release: 900, Units: []int{0, 8}},
		{Release: 1800, Units: []int{4, 4}},
	}
	for _, strat := range []core.Strategy{core.RoutePacking, core.ContractILP} {
		rep, err := Run(context.Background(), s, batches, 4800, Options{Core: core.Options{Strategy: strat}})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if len(rep.EpochLog) != rep.Epochs {
			t.Fatalf("%v: epoch log has %d entries for %d epochs", strat, len(rep.EpochLog), rep.Epochs)
		}
		prevEnd := 0
		for i, e := range rep.EpochLog {
			if e.Changeover != s.CycleTime() {
				t.Errorf("%v: epoch %d charged changeover %d, want one cycle time %d", strat, i, e.Changeover, s.CycleTime())
			}
			if e.End != e.Start+e.Changeover+e.ServicedAt {
				t.Errorf("%v: epoch %d timeline broken: end %d != start %d + changeover %d + serviced %d",
					strat, i, e.End, e.Start, e.Changeover, e.ServicedAt)
			}
			if e.Start < prevEnd {
				t.Errorf("%v: epoch %d starts at %d before previous end %d", strat, i, e.Start, prevEnd)
			}
			prevEnd = e.End
		}
	}
}

func TestRunRejectsBadBatches(t *testing.T) {
	_, s := testmaps.MustRing()
	if _, err := Run(context.Background(), s, []Batch{{Release: 0, Units: []int{1}}}, 1000, Options{}); err == nil {
		t.Error("short demand vector accepted")
	}
	if _, err := Run(context.Background(), s, []Batch{{Release: -1, Units: []int{1, 0}}}, 1000, Options{}); err == nil {
		t.Error("negative release accepted")
	}
	if _, err := Run(context.Background(), s, []Batch{{Release: 5000, Units: []int{1, 0}}}, 1000, Options{}); err == nil {
		t.Error("release beyond horizon accepted")
	}
}

func TestRunOverloadedHorizonFails(t *testing.T) {
	_, s := testmaps.MustRing()
	// 600 units through a capacity-2 ring in 600 steps is impossible.
	if _, err := Run(context.Background(), s, []Batch{{Release: 0, Units: []int{300, 300}}}, 600, Options{}); err == nil {
		t.Error("overloaded lifelong run reported success")
	}
}

func TestRunNoBatches(t *testing.T) {
	_, s := testmaps.MustRing()
	rep, err := Run(context.Background(), s, nil, 1000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epochs != 0 {
		t.Errorf("epochs = %d, want 0", rep.Epochs)
	}
}
