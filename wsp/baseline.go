package wsp

import "repro/internal/mapf"

// MAPF baseline planners (§V's Iterated ECBS comparison). These are the
// paper's baseline, re-exported so benchmark programs can compare the
// contract pipeline against direct multi-agent pathfinding without
// reaching into internal packages.

type (
	// MAPFSolution is a set of collision-free paths plus search effort
	// counters.
	MAPFSolution = mapf.Solution
	// MAPFLimits bounds a MAPF search (expansions, horizon).
	MAPFLimits = mapf.Limits
	// IteratedOptions tunes IteratedECBS (window, suboptimality, limits).
	IteratedOptions = mapf.IteratedOptions
)

// IteratedECBS runs windowed Enhanced CBS through each agent's goal
// sequence — the lifelong MAPF baseline. A planner that exhausts its
// budget returns an error wrapping ErrExpansionLimit.
func IteratedECBS(g *Grid, starts []VertexID, goals [][]VertexID, opts IteratedOptions) (*MAPFSolution, error) {
	return mapf.IteratedECBS(g, starts, goals, opts)
}
