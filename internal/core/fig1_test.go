package core

import (
	"context"
	"testing"

	"repro/internal/grid"
	"repro/internal/traffic"
	"repro/internal/warehouse"
)

// TestPaperFig1Scenario solves a WSP instance on the warehouse of the
// paper's Fig. 1 — two shelves and two stations on a 5-wide floorplan —
// extended by one row so a one-way circulation of disjoint lanes exists
// (the original 5×3 floorplan cannot host §IV-A components around both
// shelves). Shelves are accessed from the avenue above them, so the
// location matrix collapses from Fig. 1's three access columns to two.
//
//	y=3:  . > > > !    north avenue eastward; access cells (1,3), (3,3)
//	y=2:  ^ @ . @ v    shelves at (1,2), (3,2); side columns cross
//	y=1:  ^ . . . v
//	y=0:  ! < < T <    south avenue westward with stations (1,0), (3,0)
func TestPaperFig1Scenario(t *testing.T) {
	g, _, stationCoords, err := grid.Parse(
		".....\n" +
			".@.@.\n" +
			".....\n" +
			".T.T.")
	if err != nil {
		t.Fatal(err)
	}
	at := func(x, y int) grid.VertexID { return g.At(grid.Coord{X: x, Y: y}) }
	var stations []grid.VertexID
	for _, c := range stationCoords {
		stations = append(stations, g.At(c))
	}
	w, err := warehouse.New(g, []grid.VertexID{at(1, 3), at(3, 3)}, stations, 2, [][]int{
		{10, 10}, // ρ1: both shelves
		{0, 10},  // ρ2: the eastern shelf only
	})
	if err != nil {
		t.Fatal(err)
	}
	var south, west, north, east []grid.VertexID
	for x := 4; x >= 0; x-- {
		south = append(south, at(x, 0))
	}
	for y := 1; y <= 3; y++ {
		west = append(west, at(0, y))
	}
	for x := 1; x <= 4; x++ {
		north = append(north, at(x, 3))
	}
	for y := 2; y >= 1; y-- {
		east = append(east, at(4, y))
	}
	s, err := traffic.Build(w, [][]grid.VertexID{south, west, north, east})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.ShelvingRows()); got != 1 {
		t.Fatalf("shelving rows = %d, want 1 (the north avenue)", got)
	}
	if got := len(s.StationQueues()); got != 1 {
		t.Fatalf("station queues = %d, want 1 (the south avenue)", got)
	}
	wl, err := warehouse.NewWorkload(w, []int{6, 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(context.Background(), s, wl, 600, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok, why := warehouse.Services(w, res.Plan, wl); !ok {
		t.Fatalf("Fig. 1 scenario not serviced: %v", why)
	}
	if res.Stats.Agents == 0 || res.Sim.ServicedAt <= 0 {
		t.Errorf("implausible stats: %+v", res.Stats)
	}
}
