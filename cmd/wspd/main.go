// Command wspd is the long-running WSP solve service: an HTTP+JSON daemon
// over the wsp facade with admission control, deadline policy, graceful
// degradation, panic isolation, and drain-clean shutdown. See
// internal/server for the service semantics and DESIGN.md for the
// rationale.
//
// Usage:
//
//	wspd [-addr :8080] [-max-inflight N] [-deadline 30s] [-drain 30s]
//	     [-strategy route|flows|contract] [-no-degrade]
//
// Endpoints:
//
//	POST /v1/solve   one instance  (builtin map or inline JSON instance)
//	POST /v1/batch   many instances, one admission decision
//	POST /v1/sweep   the Fig. 5 co-design grid
//	GET  /healthz    liveness  (200 while the process runs)
//	GET  /readyz     readiness (503 once draining)
//	GET  /debug/vars service counters as JSON
//
// SIGINT/SIGTERM start a drain: admission stops, in-flight solves finish
// (bounded by -drain), and the process exits 0 on a clean drain or 1 when
// the drain deadline forces connections closed. A second signal kills the
// process immediately via the restored default handler.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/wsp"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("wspd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	maxInFlight := fs.Int("max-inflight", 0, "max concurrent solves (0 = 2×GOMAXPROCS)")
	deadline := fs.Duration("deadline", 0, "default per-solve deadline (0 = 30s)")
	maxDeadline := fs.Duration("max-deadline", 0, "clamp on client deadlines (0 = 2m)")
	drain := fs.Duration("drain", 0, "shutdown drain budget (0 = 30s)")
	strategy := fs.String("strategy", "contract", "base strategy: route|flows|contract")
	exact := fs.Bool("exact", false, "base config: exact rational ILP arithmetic")
	noDegrade := fs.Bool("no-degrade", false, "disable the graceful-degradation ladder")
	clientRate := fs.Int64("client-rate", 0, "per-client budget refill, work units/sec (0 = default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	st, err := wsp.ParseStrategy(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wspd:", err)
		return 2
	}

	logger := log.New(os.Stderr, "", log.LstdFlags)
	srv := server.New(server.Config{
		Solver:          wsp.Config{Strategy: st, Exact: *exact},
		MaxInFlight:     *maxInFlight,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		DrainTimeout:    *drain,
		NoDegrade:       *noDegrade,
		ClientRate:      *clientRate,
		Logf:            logger.Printf,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wspd:", err)
		return 1
	}

	// First SIGINT/SIGTERM starts the drain; a second one restores the
	// default handler and kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	select {
	case err := <-serveErr:
		// Listener failed before any signal.
		fmt.Fprintln(os.Stderr, "wspd:", err)
		return 1
	case <-ctx.Done():
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), drainBudget(*drain))
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "wspd: drain incomplete:", err)
		return 1
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "wspd:", err)
		return 1
	}
	return 0
}

func drainBudget(d time.Duration) time.Duration {
	if d <= 0 {
		return 30 * time.Second
	}
	return d
}
