// Package testmaps provides small hand-built warehouses and traffic systems
// shared by tests across the repository.
package testmaps

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/traffic"
	"repro/internal/warehouse"
)

// Ring builds a 10x6 warehouse whose passable cells form a one-way ring
// around an interior block: a shelving row on the north edge stocking
// products 0 and 1 (300 units each), a station queue on the south edge, and
// two transport components on the sides.
//
// Component IDs: 0 = south queue (10 cells), 1 = east transport (5 cells),
// 2 = north shelving row (9 cells), 3 = west transport (4 cells).
func Ring() (*warehouse.Warehouse, *traffic.System, error) {
	g, _, stations, err := grid.Parse(
		"..........\n" +
			".@@######.\n" +
			".########.\n" +
			".########.\n" +
			".########.\n" +
			"....T.....")
	if err != nil {
		return nil, nil, err
	}
	shelfAccess := []grid.VertexID{
		g.At(grid.Coord{X: 1, Y: 5}),
		g.At(grid.Coord{X: 2, Y: 5}),
	}
	var stationVs []grid.VertexID
	for _, c := range stations {
		stationVs = append(stationVs, g.At(c))
	}
	w, err := warehouse.New(g, shelfAccess, stationVs, 2, [][]int{{300, 0}, {0, 300}})
	if err != nil {
		return nil, nil, err
	}
	at := func(x, y int) grid.VertexID { return g.At(grid.Coord{X: x, Y: y}) }
	var bottom, east, top, west []grid.VertexID
	for x := 0; x <= 9; x++ {
		bottom = append(bottom, at(x, 0))
	}
	for y := 1; y <= 5; y++ {
		east = append(east, at(9, y))
	}
	for x := 8; x >= 0; x-- {
		top = append(top, at(x, 5))
	}
	for y := 4; y >= 1; y-- {
		west = append(west, at(0, y))
	}
	s, err := traffic.Build(w, [][]grid.VertexID{bottom, east, top, west})
	if err != nil {
		return nil, nil, err
	}
	return w, s, nil
}

// MustRing is Ring for tests that prefer panicking helpers.
func MustRing() (*warehouse.Warehouse, *traffic.System) {
	w, s, err := Ring()
	if err != nil {
		panic(fmt.Sprintf("testmaps: %v", err))
	}
	return w, s
}
