package flow

import (
	"context"
	"testing"

	"repro/internal/warehouse"
)

func TestAdmitFeasibleInstance(t *testing.T) {
	w, s := ringSystem(t)
	wl := ringWorkload(t, w, 6, 3)
	cert, err := Admit(context.Background(), s, wl, 800, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cert != CertMaybeFeasible {
		t.Errorf("cert = %v, want maybe-feasible", cert)
	}
}

func TestAdmitRejectsOverloadedInstance(t *testing.T) {
	w, s := ringSystem(t)
	// Rate 300 units with qeff ~ a handful of periods through capacity-2
	// bottlenecks: the relaxation itself is infeasible.
	wl := ringWorkload(t, w, 300, 0)
	cert, err := Admit(context.Background(), s, wl, 120, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cert != CertInfeasible {
		t.Errorf("cert = %v, want infeasible", cert)
	}
	if err := MustAdmit(context.Background(), s, wl, 120, Options{}); err == nil {
		t.Error("MustAdmit accepted an infeasible instance")
	}
}

func TestAdmitShortHorizon(t *testing.T) {
	w, s := ringSystem(t)
	wl := ringWorkload(t, w, 1, 0)
	cert, err := Admit(context.Background(), s, wl, 3, Options{}) // below one cycle period
	if err != nil {
		t.Fatal(err)
	}
	if cert != CertInfeasible {
		t.Errorf("cert = %v, want infeasible for sub-period horizon", cert)
	}
	wl0 := ringWorkload(t, w, 0, 0)
	cert, err = Admit(context.Background(), s, wl0, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cert != CertMaybeFeasible {
		t.Errorf("cert = %v for empty workload", cert)
	}
}

// Soundness: whenever Admit says infeasible, every synthesis strategy must
// also fail.
func TestAdmitSoundAgainstSynthesizers(t *testing.T) {
	w, s := ringSystem(t)
	for _, units := range [][2]int{{300, 0}, {150, 150}, {10, 10}, {2, 0}} {
		wl, err := warehouse.NewWorkload(w, []int{units[0], units[1]})
		if err != nil {
			t.Fatal(err)
		}
		for _, T := range []int{120, 400, 800} {
			cert, err := Admit(context.Background(), s, wl, T, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if cert != CertInfeasible {
				continue
			}
			if _, err := SynthesizeSequential(context.Background(), s, wl, T, Options{}); err == nil {
				t.Errorf("units %v T %d: certified infeasible but sequential synthesis succeeded", units, T)
			}
			if _, err := SynthesizeContract(context.Background(), s, wl, T, Options{}); err == nil {
				t.Errorf("units %v T %d: certified infeasible but contract synthesis succeeded", units, T)
			}
		}
	}
}
