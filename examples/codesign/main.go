// Topology co-design exploration: sweep the warehouse design space
// (corridor width, component length cap, stripe count) and measure how each
// design trades agents, makespan, and synthesis effort on a fixed workload —
// the "co-design" loop the paper's title promises.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/wsp"
)

func main() {
	const T = 3600
	const units = 480
	ctx := context.Background()

	type design struct {
		name string
		p    wsp.MapParams
	}
	base := wsp.MapParams{
		Stripes: 4, Rows: 3, BayWidth: 12, CorridorWidth: 3,
		MaxComponentLen: 7, DoubleShelfRows: true,
		NumProducts: 48, UnitsPerShelf: 30, StationsPerStripe: 1,
	}
	designs := []design{
		{"baseline V=3 L=7", base},
		{"narrow corridors V=2", with(base, func(p *wsp.MapParams) { p.CorridorWidth = 2; p.MaxComponentLen = 6 })},
		{"long components L=12", with(base, func(p *wsp.MapParams) { p.MaxComponentLen = 12 })},
		{"two wide stripes", with(base, func(p *wsp.MapParams) { p.Stripes = 2; p.BayWidth = 24 })},
		{"eight thin stripes", with(base, func(p *wsp.MapParams) { p.Stripes = 8; p.BayWidth = 6 })},
	}

	solver := wsp.New()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Design\tComponents\ttc\tAgents\tCycles\tServiced@\tSynthesis")
	for _, d := range designs {
		m, err := wsp.GenerateMap(d.p)
		if err != nil {
			fmt.Fprintf(tw, "%s\t-\t-\t-\t-\t-\tgenerate: %v\n", d.name, err)
			continue
		}
		wl, err := wsp.UniformWorkload(m.W, units)
		if err != nil {
			log.Fatal(err)
		}
		st := wsp.SummarizeTraffic(m.S)
		res, err := solver.Solve(ctx, wsp.Instance{System: m.S, Workload: wl, Horizon: T})
		if err != nil {
			fmt.Fprintf(tw, "%s\t%d\t%d\t-\t-\t-\tsolve: %v\n", d.name, st.Components, st.CycleTime, err)
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%v\n",
			d.name, st.Components, st.CycleTime,
			res.Stats.Agents, len(res.CycleSet.Cycles), res.Sim.ServicedAt, res.Timing.Synthesis)
	}
	tw.Flush()
	fmt.Println("\nLower tc (shorter components) buys more cycle periods; wider corridors")
	fmt.Println("buy concurrent cycles. The best design balances both against agent count.")
}

func with(p wsp.MapParams, f func(*wsp.MapParams)) wsp.MapParams {
	f(&p)
	return p
}
