package datasets

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/wspio"
)

// TestCorpusGenerates pins that every family enumerates, every instance
// carries a validated traffic system (traffic.Build ran), demand within
// stock, a positive horizon, and a unique family-prefixed name.
func TestCorpusGenerates(t *testing.T) {
	insts, err := Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) == 0 {
		t.Fatal("empty corpus")
	}
	perFamily := map[string]int{}
	names := map[string]bool{}
	for _, in := range insts {
		perFamily[in.Family]++
		if names[in.Name] {
			t.Errorf("duplicate instance name %s", in.Name)
		}
		names[in.Name] = true
		if !strings.HasPrefix(in.Name, in.Family+"/") {
			t.Errorf("instance %s not prefixed by family %s", in.Name, in.Family)
		}
		if in.Sys == nil || in.Sys.W == nil {
			t.Fatalf("instance %s carries no system", in.Name)
		}
		if err := in.Sys.Validate(); err != nil {
			t.Errorf("instance %s: invalid traffic system: %v", in.Name, err)
		}
		if in.WL.TotalUnits() <= 0 {
			t.Errorf("instance %s has no demand", in.Name)
		}
		if in.T <= 0 {
			t.Errorf("instance %s has no horizon", in.Name)
		}
	}
	for _, fam := range FamilyNames() {
		if perFamily[fam] == 0 {
			t.Errorf("family %s enumerated no instances", fam)
		}
	}
}

// TestCorpusDeterministic pins the corpus determinism contract: the same
// seed enumerates byte-identical instances (through the wspio canonical
// encoding), and a different seed moves at least one randomized instance.
func TestCorpusDeterministic(t *testing.T) {
	a, err := Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("instance counts differ: %d vs %d", len(a), len(b))
	}
	encode := func(in *Instance) []byte {
		enc, err := wspio.Encode(in.Sys, &in.WL, in.T, in.Name)
		if err != nil {
			t.Fatalf("%s: %v", in.Name, err)
		}
		data, err := wspio.Marshal(enc)
		if err != nil {
			t.Fatalf("%s: %v", in.Name, err)
		}
		return data
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("instance %d name %s vs %s", i, a[i].Name, b[i].Name)
		}
		if !bytes.Equal(encode(a[i]), encode(b[i])) {
			t.Errorf("instance %s not byte-identical across same-seed runs", a[i].Name)
		}
	}
	c, err := Generate(8)
	if err != nil {
		t.Fatal(err)
	}
	moved := false
	for i := range a {
		if !bytes.Equal(encode(a[i]), encode(c[i])) {
			moved = true
			break
		}
	}
	if !moved {
		t.Error("changing the seed moved no instance; randomized families ignore it")
	}
}

func TestGenerateFilters(t *testing.T) {
	insts, err := Generate(1, "rings")
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range insts {
		if in.Family != "rings" {
			t.Errorf("filter leaked %s", in.Name)
		}
	}
	if _, err := Generate(1, "nope"); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestGenerateRingRejectsTightFootprints(t *testing.T) {
	if _, _, err := GenerateRing(RingParams{Width: 5, Height: 6, MaxComponentLen: 4, Stations: 1, NumProducts: 1, UnitsPerShelf: 1}); err == nil {
		t.Error("narrow ring accepted")
	}
	if _, _, err := GenerateRing(RingParams{Width: 10, Height: 6, MaxComponentLen: 6, Stations: 3, NumProducts: 1, UnitsPerShelf: 1}); err == nil {
		t.Error("over-stationed ring accepted")
	}
}

func TestImportMovingAIRejects(t *testing.T) {
	params := MovingAIParams{NumProducts: 1, UnitsPerShelf: 1, Stations: 1, MaxComponentLen: 4}
	cases := []struct {
		name, text string
	}{
		{"blocked border", "height 7\nwidth 8\nmap\n.@......\n........\n..@@@...\n........\n..@@@...\n........\n........\n"},
		{"even height", "height 6\nwidth 8\nmap\n........\n........\n..@@@...\n........\n........\n........\n"},
		{"blocked aisle row", "height 7\nwidth 8\nmap\n........\n.@@@@@@.\n........\n........\n..@@@...\n........\n........\n"},
		{"no shelves", "height 7\nwidth 8\nmap\n........\n........\n........\n........\n........\n........\n........\n"},
	}
	for _, tc := range cases {
		if _, _, err := ImportMovingAI(tc.text, params); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

// TestImportMovingAIBuildsEmbedded pins the embedded maps' structure: both
// import, have stations on the south edge and shelves covered by aisles.
func TestImportMovingAIBuildsEmbedded(t *testing.T) {
	insts, err := movingaiFamily(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 2 {
		t.Fatalf("embedded maps = %d, want 2", len(insts))
	}
	for _, in := range insts {
		if err := in.Sys.Validate(); err != nil {
			t.Errorf("%s: %v", in.Name, err)
		}
	}
}
