package lp

import "sync/atomic"

// workMeter is the process-wide ledger of deterministic simplex work units
// committed by finished solves. Every LP solve adds the arena work it spent
// and every branch-and-bound search adds its fold's committed total — the
// same deterministic quantity the MaxWork budget is charged against, so the
// meter advances identically across runs of the same instance sequence (and
// across simplex representations, which share the work-unit contract).
//
// The meter exists for callers that need work attribution without touching
// Solution values: the corpus runner samples it around each solve to report
// work-budget consumption per instance. It is monotone and never reset.
var workMeter atomic.Int64

// WorkMeter returns the cumulative deterministic work units committed by
// all LP/ILP solves in this process. Subtracting two samples taken around a
// sequential stretch of solves yields the work those solves committed.
func WorkMeter() int64 {
	return workMeter.Load()
}

// meterWork records finished-solve work on the process meter.
func meterWork(n int64) {
	if n > 0 {
		workMeter.Add(n)
	}
}
