package warehouse

import (
	"testing"

	"repro/internal/grid"
)

// paperFig1 builds the warehouse of Fig. 1: a 5x3 floorplan with shelves at
// (1,2) and (3,2), shelf access at (0,2), (2,2), (4,2), stations at (1,0)
// and (3,0), and the location matrix Λ = [[10 10 0] [0 10 10]].
func paperFig1(t *testing.T) *Warehouse {
	t.Helper()
	g, _, _, err := grid.Parse(".@.@.\n.....\n.T.T.")
	if err != nil {
		t.Fatal(err)
	}
	shelfAccess := []grid.VertexID{
		g.At(grid.Coord{X: 0, Y: 2}),
		g.At(grid.Coord{X: 2, Y: 2}),
		g.At(grid.Coord{X: 4, Y: 2}),
	}
	stations := []grid.VertexID{
		g.At(grid.Coord{X: 1, Y: 0}),
		g.At(grid.Coord{X: 3, Y: 0}),
	}
	stock := [][]int{
		{10, 10, 0},
		{0, 10, 10},
	}
	w, err := New(g, shelfAccess, stations, 2, stock)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestPaperFig1Model(t *testing.T) {
	w := paperFig1(t)
	if got := w.TotalStock(0); got != 20 {
		t.Errorf("TotalStock(0) = %d, want 20", got)
	}
	mid := w.ShelfAccess[1]
	if got := len(w.ProductsAt(mid)); got != 2 {
		t.Errorf("ProductsAt(middle) = %d products, want 2", got)
	}
	left := w.ShelfAccess[0]
	if got := w.UnitsAt(left, 1); got != 0 {
		t.Errorf("UnitsAt(left, ρ2) = %d, want 0", got)
	}
	if w.IsStation(left) {
		t.Error("shelf access vertex reported as station")
	}
	if !w.IsStation(w.Stations[0]) {
		t.Error("station vertex not reported as station")
	}
	if got := w.ShelfColumn(w.Stations[0]); got != -1 {
		t.Errorf("ShelfColumn(station) = %d, want -1", got)
	}
	if got := w.ShelfColumn(mid); got != 1 {
		t.Errorf("ShelfColumn(mid) = %d, want 1", got)
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	g, _, _, err := grid.Parse("...\n...")
	if err != nil {
		t.Fatal(err)
	}
	v0, v1 := g.At(grid.Coord{X: 0, Y: 0}), g.At(grid.Coord{X: 1, Y: 0})
	cases := []struct {
		name    string
		shelves []grid.VertexID
		sts     []grid.VertexID
		np      int
		stock   [][]int
	}{
		{"dupShelf", []grid.VertexID{v0, v0}, nil, 0, [][]int{}},
		{"dupStation", nil, []grid.VertexID{v1, v1}, 0, [][]int{}},
		{"overlap", []grid.VertexID{v0}, []grid.VertexID{v0}, 0, [][]int{}},
		{"outOfRange", []grid.VertexID{99}, nil, 0, [][]int{}},
		{"stockRows", []grid.VertexID{v0}, nil, 2, [][]int{{1}}},
		{"stockCols", []grid.VertexID{v0}, nil, 1, [][]int{{1, 2}}},
		{"negStock", []grid.VertexID{v0}, nil, 1, [][]int{{-1}}},
		{"negProducts", nil, nil, -1, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(g, tc.shelves, tc.sts, tc.np, tc.stock); err == nil {
				t.Error("New succeeded, want error")
			}
		})
	}
	if _, err := New(nil, nil, nil, 0, [][]int{}); err == nil {
		t.Error("New(nil grid) succeeded")
	}
}

func TestWorkloadValidation(t *testing.T) {
	w := paperFig1(t)
	if _, err := NewWorkload(w, []int{5, 5}); err != nil {
		t.Errorf("valid workload rejected: %v", err)
	}
	if _, err := NewWorkload(w, []int{5}); err == nil {
		t.Error("short workload accepted")
	}
	if _, err := NewWorkload(w, []int{-1, 0}); err == nil {
		t.Error("negative workload accepted")
	}
	if _, err := NewWorkload(w, []int{21, 0}); err == nil {
		t.Error("over-stock workload accepted")
	}
	wl, _ := NewWorkload(w, []int{3, 4})
	if wl.TotalUnits() != 7 {
		t.Errorf("TotalUnits = %d, want 7", wl.TotalUnits())
	}
}

// handPlan builds a 1-agent plan walking a vertex/product sequence.
func handPlan(states ...AgentState) *Plan {
	return &Plan{States: [][]AgentState{states}}
}

func TestValidatePlanAcceptsLegalTour(t *testing.T) {
	w := paperFig1(t)
	g := w.Graph
	at := func(x, y int) grid.VertexID { return g.At(grid.Coord{X: x, Y: y}) }
	// Start at shelf access (2,2) carrying nothing, pick ρ1, walk to station
	// (1,0), drop, done.
	p := handPlan(
		AgentState{at(2, 2), NoProduct},
		AgentState{at(2, 2), 0}, // pickup at shelf access
		AgentState{at(2, 1), 0},
		AgentState{at(1, 1), 0},
		AgentState{at(1, 0), 0},
		AgentState{at(1, 0), NoProduct}, // drop at station
	)
	if v := ValidatePlan(w, p); len(v) != 0 {
		t.Fatalf("legal plan rejected: %v", v)
	}
	got := Delivered(w, p)
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("Delivered = %v, want [1 0]", got)
	}
	wl, _ := NewWorkload(w, []int{1, 0})
	if ok, v := Services(w, p, wl); !ok {
		t.Errorf("Services = false: %v", v)
	}
	wl2, _ := NewWorkload(w, []int{2, 0})
	if ok, _ := Services(w, p, wl2); ok {
		t.Error("under-delivering plan reported as servicing")
	}
}

func TestValidatePlanCatchesTeleport(t *testing.T) {
	w := paperFig1(t)
	g := w.Graph
	p := handPlan(
		AgentState{g.At(grid.Coord{X: 0, Y: 0}), NoProduct},
		AgentState{g.At(grid.Coord{X: 4, Y: 0}), NoProduct},
	)
	v := ValidatePlan(w, p)
	if len(v) != 1 || v[0].Condition != 1 {
		t.Errorf("violations = %v, want one condition-1", v)
	}
}

func TestValidatePlanCatchesVertexConflict(t *testing.T) {
	w := paperFig1(t)
	v0 := w.Graph.At(grid.Coord{X: 0, Y: 0})
	p := &Plan{States: [][]AgentState{
		{{v0, NoProduct}},
		{{v0, NoProduct}},
	}}
	vs := ValidatePlan(w, p)
	if len(vs) != 1 || vs[0].Condition != 2 {
		t.Errorf("violations = %v, want one condition-2", vs)
	}
}

func TestValidatePlanCatchesEdgeSwap(t *testing.T) {
	w := paperFig1(t)
	g := w.Graph
	a := g.At(grid.Coord{X: 0, Y: 0})
	b := g.At(grid.Coord{X: 1, Y: 0})
	p := &Plan{States: [][]AgentState{
		{{a, NoProduct}, {b, NoProduct}},
		{{b, NoProduct}, {a, NoProduct}},
	}}
	vs := ValidatePlan(w, p)
	if len(vs) != 1 || vs[0].Condition != 2 {
		t.Errorf("violations = %v, want one condition-2 swap", vs)
	}
}

func TestValidatePlanCatchesIllegalPickup(t *testing.T) {
	w := paperFig1(t)
	g := w.Graph
	// Picking ρ2 at the left shelf access, which stocks only ρ1.
	left := g.At(grid.Coord{X: 0, Y: 2})
	p := handPlan(AgentState{left, NoProduct}, AgentState{left, 1})
	vs := ValidatePlan(w, p)
	if len(vs) != 1 || vs[0].Condition != 3 {
		t.Errorf("violations = %v, want one condition-3", vs)
	}
}

func TestValidatePlanCatchesIllegalDrop(t *testing.T) {
	w := paperFig1(t)
	g := w.Graph
	mid := g.At(grid.Coord{X: 2, Y: 2})
	next := g.At(grid.Coord{X: 2, Y: 1})
	p := handPlan(
		AgentState{mid, NoProduct},
		AgentState{mid, 0},
		AgentState{next, 0},
		AgentState{next, NoProduct}, // drop in the aisle
	)
	vs := ValidatePlan(w, p)
	if len(vs) != 1 || vs[0].Condition != 3 {
		t.Errorf("violations = %v, want one condition-3", vs)
	}
}

func TestValidatePlanCatchesProductMutation(t *testing.T) {
	w := paperFig1(t)
	mid := w.Graph.At(grid.Coord{X: 2, Y: 2})
	p := handPlan(
		AgentState{mid, NoProduct},
		AgentState{mid, 0},
		AgentState{mid, 1}, // mutate carried product
	)
	vs := ValidatePlan(w, p)
	if len(vs) != 1 || vs[0].Condition != 3 {
		t.Errorf("violations = %v, want one condition-3 mutation", vs)
	}
}

func TestValidatePlanCatchesStockOverdraw(t *testing.T) {
	g, _, _, err := grid.Parse(".T")
	if err != nil {
		t.Fatal(err)
	}
	shelf := g.At(grid.Coord{X: 0, Y: 0})
	station := g.At(grid.Coord{X: 1, Y: 0})
	w, err := New(g, []grid.VertexID{shelf}, []grid.VertexID{station}, 1, [][]int{{1}})
	if err != nil {
		t.Fatal(err)
	}
	// Two pickups of a product with stock 1.
	p := handPlan(
		AgentState{shelf, NoProduct},
		AgentState{shelf, 0},
		AgentState{station, 0},
		AgentState{station, NoProduct},
		AgentState{shelf, NoProduct},
		AgentState{shelf, 0},
		AgentState{station, 0},
		AgentState{station, NoProduct},
	)
	vs := ValidatePlan(w, p)
	if len(vs) != 1 || vs[0].Condition != 3 {
		t.Errorf("violations = %v, want one stock overdraw", vs)
	}
}

func TestPlanAccessors(t *testing.T) {
	var empty Plan
	if empty.NumAgents() != 0 || empty.Horizon() != 0 {
		t.Error("empty plan accessors wrong")
	}
	p := handPlan(AgentState{0, NoProduct}, AgentState{0, NoProduct})
	if p.NumAgents() != 1 || p.Horizon() != 2 {
		t.Errorf("accessors = (%d,%d), want (1,2)", p.NumAgents(), p.Horizon())
	}
}

func TestValidatePlanRaggedStates(t *testing.T) {
	w := paperFig1(t)
	v0 := w.Graph.At(grid.Coord{X: 0, Y: 0})
	p := &Plan{States: [][]AgentState{
		{{v0, NoProduct}, {v0, NoProduct}},
		{{v0, NoProduct}},
	}}
	if vs := ValidatePlan(w, p); len(vs) == 0 {
		t.Error("ragged plan accepted")
	}
}
