package lp

import "math/big"

// This file implements the sparse revised simplex engine: the constraint
// matrix is stored once (the CSR triplets every engine shares, plus a CSC
// view for column access), the basis is kept as an LU factorization with an
// eta file (factor.go), reduced costs are priced by BTRAN + sparse column
// dots, and pivot columns come from FTRAN — no dense tableau rows exist.
//
// The engine is decision-for-decision identical to the dense tableau:
// Dantzig/Bland pricing over the same reduced costs, the same two-sided
// ratio test and tie-breaks, the same cold start (logical basis patched
// with signed artificials), the same dual-simplex warm reentry, and the
// same deterministic work accounting (a pivot charges the rows an
// elimination would touch times the dense row length). Because both
// engines run exact arithmetic, every compared quantity is the same
// canonical rational in both representations, so the pivot sequences —
// and therefore the returned Solutions — are bit-identical. The dense
// tableau stays the reference engine; this one is the fast path for large
// sparse instances (see pickSimplex).
//
// Costs per pivot: the dense tableau pays O(m·(n+1)) row updates; the
// revised engine pays one BTRAN + one FTRAN (O(factor fill)) plus one
// reduced-cost pass over the matrix nonzeros. Contract-shaped systems are
// extremely sparse, which is where the revised engine wins.

// SimplexEngine selects the simplex representation. The exact engines keep
// a bit-identity contract across representations; the float engine has no
// such contract (its answers are approximate either way), which frees its
// revised representation to use partial pricing (see newRevisedFloat).
type SimplexEngine int

// Simplex representations.
const (
	// SimplexAuto routes by instance size: revised for large systems,
	// dense below the crossover (revisedAutoRows).
	SimplexAuto SimplexEngine = iota
	// SimplexDense forces the dense bounded-variable tableau — the
	// reference engine.
	SimplexDense
	// SimplexRevised forces the LU-factorized revised engine.
	SimplexRevised
	// SimplexHybrid solves float-first on the revised partial-pricing
	// float engine, then verifies with the exact engine warm-started from
	// the float basis; certified answers are bit-identical to an
	// exact-only solve, and anything that fails certification falls back
	// to the deterministic cold exact path. See solveLPHybrid.
	SimplexHybrid
)

// revisedAutoRows is the SimplexAuto crossover: systems with at least this
// many constraint rows route to the revised engine. BenchmarkLP's
// Exact vs ExactDense pairs sized the cutover: on contract-shaped sparsity
// the revised engine is at worst even by ~10 rows and pulls away steeply
// (5× by ~200 rows), while on tiny or dense systems the tableau's tight
// loops still win; 16 keeps every contract conjunction (the ablation ring
// is 23 rows) on the revised path without penalizing toy programs.
const revisedAutoRows = 16

// pickSimplex resolves a SimplexEngine choice against the instance.
// SimplexHybrid is a solve MODE, not a representation; entry points route
// it before reaching here, so a hybrid choice that leaks this far falls
// back to size-based selection of an exact representation. autoRows
// overrides the SimplexAuto crossover; zero (or negative) keeps the
// calibrated revisedAutoRows default. The override moves only the routing
// decision — whichever representation wins returns the same bit-identical
// Solution, so autoRows is a pure speed knob (and the quantity the corpus
// calibration stage sweeps).
func pickSimplex(p *Problem, choice SimplexEngine, autoRows int) SimplexEngine {
	if choice == SimplexHybrid {
		choice = SimplexAuto
	}
	if choice != SimplexAuto {
		return choice
	}
	if autoRows <= 0 {
		autoRows = revisedAutoRows
	}
	if len(p.Constraints) >= autoRows {
		return SimplexRevised
	}
	return SimplexDense
}

// floatPick resolves the float engine's representation: same size-based
// auto rule, with SimplexHybrid folding into auto (hybrid is a property of
// exact solves; its float half takes the auto choice).
func floatPick(p *Problem, choice SimplexEngine, autoRows int) SimplexEngine {
	if choice == SimplexHybrid {
		choice = SimplexAuto
	}
	return pickSimplex(p, choice, autoRows)
}

// revised is the factorized-basis counterpart of tableau. The column
// layout, bound arrays, statuses and warm-state flags are identical; only
// the representation of B⁻¹ differs.
type revised[T any, A arith[T]] struct {
	ar       A
	p        *Problem
	m        int // constraint rows
	nv       int // structural columns
	artStart int // nv + m
	n        int // total columns: nv + 2m
	stride   int // n + 1: dense row length, kept for work-unit parity

	basis []int
	rowOf []int // column → basis position, -1 otherwise
	xB    []T   // value of the basic variable of each position
	stat  []vstat
	lo    []T
	hi    []T
	loF   []bool
	hiF   []bool

	cost   []T // phase-2 minimization costs, len n
	hasObj bool
	// d holds reduced costs for columns 0..artStart-1. It is refreshed by
	// price() at every consumer (pricing loops, rewarm, uniqueOptimum), so
	// it never serves stale values; in exact arithmetic the refresh equals
	// the reduced-cost row the dense tableau maintains through pivots.
	d []T

	csr     *csrRows
	convVal []T
	convRHS []T
	cols    *colStore[T]
	fac     *basisFactor[T, A]

	nArt       int
	warmOK     bool
	basisOK    bool
	pr         pricer
	work       int64
	workBudget int64
	// Partial pricing (float engine only): primal pivots price a rotating
	// candidate window instead of every column. Exact engines never enable
	// it — the entering choices would diverge from the dense reference and
	// break the bit-identity contract.
	partial bool
	pwin    int // rotating window width
	scan    int // column the next window starts at
	// Cancellation channel and latch, as on the dense tableau: checked on
	// the same per-pivot tick as the work budget.
	cancelC     <-chan struct{}
	cancelFired bool

	// Solve scratch: FTRAN output in raw space, the same column gathered
	// into basis-position space, the BTRAN cost vector, and the dual
	// pivot-row vector.
	fraw   *spVec[T]
	apos   *spVec[T]
	yv     *spVec[T]
	rho    *spVec[T]
	costP1 []T // phase-1 cost vector scratch
	prow   []T // dual pivot-row scratch, len artStart

	zero, one T
}

func newRevised[T any, A arith[T]](p *Problem, ar A) *revised[T, A] {
	nv := len(p.Vars)
	m := len(p.Constraints)
	rv := &revised[T, A]{
		ar: ar, p: p,
		m: m, nv: nv, artStart: nv + m, n: nv + 2*m, stride: nv + 2*m + 1,
		zero: ar.zero(), one: ar.one(),
	}
	rv.csr, rv.convVal, rv.convRHS = problemCSR(p, ar)
	rv.cols = newColStore(rv.csr, rv.convVal, nv)
	rv.fac = newBasisFactor(ar, rv.cols)

	rv.basis = make([]int, m)
	rv.rowOf = make([]int, rv.n)
	rv.xB = make([]T, m)
	rv.stat = make([]vstat, rv.n)
	rv.lo = make([]T, rv.n)
	rv.hi = make([]T, rv.n)
	rv.loF = make([]bool, rv.n)
	rv.hiF = make([]bool, rv.n)
	rv.cost = make([]T, rv.n)
	rv.d = make([]T, rv.artStart)
	rv.costP1 = make([]T, rv.n)
	rv.prow = make([]T, rv.artStart)
	for j := range rv.cost {
		rv.cost[j] = rv.zero
		rv.costP1[j] = rv.zero
		rv.lo[j] = rv.zero
		rv.hi[j] = rv.zero
	}
	for j := range rv.d {
		rv.d[j] = rv.zero
		rv.prow[j] = rv.zero
	}
	for i := 0; i < m; i++ {
		rv.xB[i] = rv.zero
		lcol := nv + i
		switch p.Constraints[i].Sense {
		case LE:
			rv.loF[lcol] = true // [0, ∞)
		case GE:
			rv.hiF[lcol] = true // (-∞, 0]
		case EQ:
			rv.loF[lcol], rv.hiF[lcol] = true, true // [0, 0]
		}
		acol := rv.artStart + i
		rv.loF[acol], rv.hiF[acol] = true, true
	}
	rv.fraw = newSpVec(ar, m)
	rv.apos = newSpVec(ar, m)
	rv.yv = newSpVec(ar, m)
	rv.rho = newSpVec(ar, m)
	rv.updateCost()
	rv.pr = newPricer(m, rv.n)
	return rv
}

// newRevisedFloat builds the float64 revised engine: the same LU machinery
// as the exact revised engine, plus partial pricing. The float engine has
// no bit-identity contract to a reference representation (see
// SimplexEngine), so the cheaper entering rule is safe here and only here.
func newRevisedFloat(p *Problem) *revised[float64, floatArith] {
	rv := newRevised[float64, floatArith](p, floatArith{eps: defaultEps})
	rv.partial = true
	rv.pwin = partialWindow(rv.artStart)
	return rv
}

// partialWindow sizes the rotating candidate window: wide enough to give
// Dantzig's rule real choice (narrow windows degenerate into Bland-like
// crawls), narrow enough that pricing stops paying one dot per column per
// pivot on large systems.
func partialWindow(n int) int {
	w := n / 8
	if w < 32 {
		w = 32
	}
	return w
}

// Arena surface shared with the dense tableau (see arena in ilp.go).

func (rv *revised[T, A]) prob() *Problem { return rv.p }

func (rv *revised[T, A]) startSearch(workBudget int64) {
	rv.warmOK = false
	rv.basisOK = false
	rv.work = 0
	rv.workBudget = workBudget
	// Partial pricing's window position is part of the pivot-sequence
	// state: a retained arena must replay a fresh arena's solve exactly,
	// so every search starts the rotation from column zero.
	rv.scan = 0
}

// startSearchWarm is startSearch for the hybrid branch-and-bound root: the
// work counter, budget and pricing rotation reset exactly as on a cold
// start, but a pre-seeded dual-feasible basis (adopted from the float half
// of the solve, see adoptBasis) is kept so the root relaxation re-enters
// through the dual simplex instead of a two-phase cold solve.
func (rv *revised[T, A]) startSearchWarm(workBudget int64) {
	rv.basisOK = false
	rv.work = 0
	rv.workBudget = workBudget
	rv.scan = 0
}

func (rv *revised[T, A]) setWorkBudget(b int64) { rv.workBudget = b }

func (rv *revised[T, A]) workSpent() int64 { return rv.work }

// dropWarm mirrors tableau.dropWarm: forget the warm basis so the next
// solveNode cold-solves deterministically from the pristine system. The
// partial-pricing window is part of the pivot-sequence state, so it resets
// with the warm state — a subtree root must start the rotation from column
// zero on every arena for the fenced search to be arena-independent.
func (rv *revised[T, A]) dropWarm() {
	rv.warmOK = false
	rv.basisOK = false
	rv.scan = 0
}

// basisState snapshots the basis columns and every column's status: the
// hand-off payload from the float half of a hybrid solve to the exact
// verifier.
func (rv *revised[T, A]) basisState() ([]int, []vstat) {
	basis := make([]int, len(rv.basis))
	copy(basis, rv.basis)
	stat := make([]vstat, len(rv.stat))
	copy(stat, rv.stat)
	return basis, stat
}

// adoptBasis installs a basis snapshot produced by another engine over the
// same Problem — the float half of a hybrid solve, or a deliberately
// corrupted snapshot in the fault-injection tests. Declared bounds must
// already be installed (setBounds). The snapshot is validated rather than
// trusted: wrong shape, statuses inconsistent with the bound structure,
// artificial columns still basic, or a column set that is singular in exact
// arithmetic all report false, leaving the engine cold so callers fall back
// to the deterministic cold exact solve. On success the basis is factorized
// and the caller re-enters through rewarm()/dual() (directly or via a warm
// solveNode); basic values are not computed here — rewarm rebuilds them.
func (rv *revised[T, A]) adoptBasis(basis []int, stat []vstat) bool {
	if len(basis) != rv.m || len(stat) != rv.n {
		return false
	}
	for j := range rv.rowOf {
		rv.rowOf[j] = -1
	}
	for i, j := range basis {
		if j < 0 || j >= rv.artStart || rv.rowOf[j] >= 0 || stat[j] != inBasis {
			return false
		}
		rv.rowOf[j] = i
	}
	for j := 0; j < rv.artStart; j++ {
		switch stat[j] {
		case inBasis:
			if rv.rowOf[j] < 0 {
				return false
			}
		case nbLower:
			if !rv.loF[j] {
				return false
			}
		case nbUpper:
			if !rv.hiF[j] {
				return false
			}
		case nbFree:
			if rv.loF[j] || rv.hiF[j] {
				return false
			}
		default:
			return false
		}
		rv.stat[j] = stat[j]
	}
	// Artificials stay locked at [0,0], as after any completed phase 1.
	for j := rv.artStart; j < rv.n; j++ {
		rv.stat[j] = nbLower
		rv.lo[j], rv.hi[j] = rv.zero, rv.zero
		rv.loF[j], rv.hiF[j] = true, true
	}
	copy(rv.basis, basis)
	if !rv.fac.tryRefactor(rv.basis) {
		return false
	}
	rv.nArt = 0
	rv.warmOK = false
	rv.basisOK = false
	return true
}

// setCancel installs the cancellation channel for subsequent solves and
// re-arms the latch, mirroring tableau.setCancel.
func (rv *revised[T, A]) setCancel(c <-chan struct{}) {
	rv.cancelC = c
	rv.cancelFired = false
}

func (rv *revised[T, A]) canceled() bool { return rv.cancelFired }

// exhausted reports budget exhaustion or cancellation, checked once per
// pivot. The revised engine charges the same work units per pivot as the
// dense elimination would, so budgeted AND cancelled searches stop at the
// same tick across representations.
func (rv *revised[T, A]) exhausted() bool {
	if rv.cancelC != nil {
		select {
		case <-rv.cancelC:
			rv.cancelFired = true
			return true
		default:
		}
	}
	return rv.workBudget > 0 && rv.work >= rv.workBudget
}

// updateCost mirrors tableau.updateCost: rebuild the phase-2 cost vector
// and drop dual-feasible warm state (the basis itself stays valid).
func (rv *revised[T, A]) updateCost() {
	ar := rv.ar
	for j := range rv.cost {
		rv.cost[j] = rv.zero
	}
	rv.hasObj = len(rv.p.Objective) > 0
	for _, t := range rv.p.Objective {
		c := ar.fromRat(t.Coef)
		if rv.p.Maximize {
			c = ar.neg(c)
		}
		rv.cost[t.Var] = ar.add(rv.cost[t.Var], c)
	}
	rv.warmOK = false
}

// updateRHS retargets constraint i. Unlike the dense tableau there is no
// maintained B⁻¹b column to delta-update: rewarm recomputes basic values
// from the pristine right-hand sides through one FTRAN, so dual-feasible
// warm state survives the edit for free. Primal reentry is invalidated as
// in the dense engine.
func (rv *revised[T, A]) updateRHS(i int, rhs *big.Rat) {
	rv.convRHS[i] = rv.ar.fromRat(rhs)
	rv.csr.rhs[i] = rhs
	rv.basisOK = false
}

// updateRHSPristine mirrors tableau.updateRHSPristine for the Model's
// float revised arena: pristine system only, every warm state dropped —
// ResolveILP cold-rebuilds the root, so a float warm basis is never
// consumed and keeping it would be a rounding trap.
func (rv *revised[T, A]) updateRHSPristine(i int, rhs *big.Rat) {
	rv.convRHS[i] = rv.ar.fromRat(rhs)
	rv.csr.rhs[i] = rhs
	rv.warmOK = false
	rv.basisOK = false
}

func (rv *revised[T, A]) setBounds(lo, hi []*big.Rat) (ok, changed bool) {
	return installBounds(rv.ar, rv.nv, lo, hi, rv.lo, rv.hi, rv.loF, rv.hiF)
}

func (rv *revised[T, A]) nbValue(j int) T {
	switch rv.stat[j] {
	case nbLower:
		return rv.lo[j]
	case nbUpper:
		return rv.hi[j]
	}
	return rv.zero
}

func (rv *revised[T, A]) fixedRange(j int) bool {
	return rv.loF[j] && rv.hiF[j] && rv.ar.cmp(rv.lo[j], rv.hi[j]) == 0
}

// solveNode mirrors tableau.solveNode: dual warm reentry when the basis is
// still dual feasible, cold two-phase solve otherwise.
func (rv *revised[T, A]) solveNode(lo, hi []*big.Rat) Status {
	if ok, _ := rv.setBounds(lo, hi); !ok {
		return StatusInfeasible
	}
	if rv.warmOK && rv.rewarm() {
		switch rv.dual() {
		case dualOptimal:
			return StatusOptimal
		case dualInfeasible:
			return StatusInfeasible
		case dualBudget:
			return StatusLimit
		}
		// dualStuck: anti-cycling cap hit; restart cold for certainty.
	}
	rv.warmOK = false
	status := rv.solveFresh()
	rv.warmOK = status == StatusOptimal
	return status
}

// resolveModel mirrors tableau.resolveModel: warm answers are returned
// only when provably identical to the from-scratch solve.
func (rv *revised[T, A]) resolveModel(lo, hi []*big.Rat) Status {
	ok, changed := rv.setBounds(lo, hi)
	if changed {
		rv.basisOK = false
	}
	if !ok {
		return StatusInfeasible
	}
	if rv.warmOK {
		if rv.rewarm() {
			switch rv.dual() {
			case dualOptimal:
				rv.basisOK = true
				if rv.uniqueOptimum() {
					return StatusOptimal
				}
			case dualInfeasible:
				return StatusInfeasible
			case dualBudget:
				// Cancelled mid-reentry (Model LP solves carry no work
				// budget): drop the mid-walk state and report promptly.
				rv.warmOK, rv.basisOK = false, false
				return StatusLimit
			}
			// dualStuck: restart cold for certainty.
		}
		rv.basisOK = false
	} else if rv.basisOK {
		switch rv.phase2() {
		case StatusOptimal:
			rv.warmOK = true
			if rv.uniqueOptimum() {
				return StatusOptimal
			}
		case StatusUnbounded:
			rv.warmOK, rv.basisOK = false, false
			return StatusUnbounded
		case StatusLimit:
			rv.warmOK, rv.basisOK = false, false
			return StatusLimit
		}
	}
	rv.warmOK = false
	status := rv.solveFresh()
	rv.warmOK = status == StatusOptimal
	rv.basisOK = status == StatusOptimal
	return status
}

func (rv *revised[T, A]) solveFresh() Status {
	rv.cold()
	if st := rv.phase1(); st != StatusOptimal {
		return st
	}
	return rv.phase2()
}

// cold mirrors tableau.cold: all-logical basis, nonbasic structurals at
// their preferred bound, one artificial per row whose logical cannot
// absorb the residual. Where the dense engine negates a tableau row to
// give the artificial coefficient +1, this engine records the sign in the
// column store (artSign) and leaves the matrix untouched.
func (rv *revised[T, A]) cold() {
	ar := rv.ar
	for j := range rv.rowOf {
		rv.rowOf[j] = -1
	}
	for j := 0; j < rv.nv; j++ {
		switch {
		case rv.loF[j]:
			rv.stat[j] = nbLower
		case rv.hiF[j]:
			rv.stat[j] = nbUpper
		default:
			rv.stat[j] = nbFree
		}
	}
	for i := 0; i < rv.m; i++ {
		lcol := rv.nv + i
		rv.basis[i] = lcol
		rv.rowOf[lcol] = i
		rv.stat[lcol] = inBasis
		acol := rv.artStart + i
		rv.stat[acol] = nbLower
		rv.lo[acol], rv.hi[acol] = rv.zero, rv.zero
		rv.loF[acol], rv.hiF[acol] = true, true
		rv.cols.artSign[i] = 1
		// x_logical = b - Σ a_ij v_j over nonbasic structurals at bounds.
		v := rv.convRHS[i]
		cols, _ := rv.csr.row(i)
		start := int(rv.csr.ptr[i])
		for idx, col := range cols {
			cv := rv.nbValue(int(col))
			if ar.sign(cv) != 0 {
				v = ar.sub(v, ar.mul(rv.convVal[start+idx], cv))
			}
		}
		rv.xB[i] = v
	}
	rv.nArt = 0
	for i := 0; i < rv.m; i++ {
		lcol := rv.nv + i
		var target T
		switch {
		case rv.loF[lcol] && ar.cmp(rv.xB[i], rv.lo[lcol]) < 0:
			target = rv.lo[lcol]
			rv.stat[lcol] = nbLower
		case rv.hiF[lcol] && ar.cmp(rv.xB[i], rv.hi[lcol]) > 0:
			target = rv.hi[lcol]
			rv.stat[lcol] = nbUpper
		default:
			continue
		}
		resid := ar.sub(rv.xB[i], target)
		acol := rv.artStart + i
		if ar.sign(resid) < 0 {
			rv.cols.artSign[i] = -1
			resid = ar.neg(resid)
		}
		rv.hiF[acol] = false // open to [0, ∞) for phase 1
		rv.rowOf[lcol] = -1
		rv.basis[i] = acol
		rv.rowOf[acol] = i
		rv.stat[acol] = inBasis
		rv.xB[i] = resid
		rv.nArt++
	}
	rv.fac.refactor(rv.basis)
}

// phase1 mirrors tableau.phase1 over the phase-1 cost vector (unit cost on
// each activated artificial); price() re-derives the same reduced costs
// the dense engine maintains by pricing out the basic artificials.
func (rv *revised[T, A]) phase1() Status {
	ar := rv.ar
	if rv.nArt == 0 {
		return StatusOptimal
	}
	for j := rv.artStart; j < rv.n; j++ {
		if rv.hiF[j] {
			rv.costP1[j] = rv.zero // not activated
		} else {
			rv.costP1[j] = rv.one
		}
	}
	rv.pr.reset()
	switch rv.primal(rv.costP1) {
	case StatusOptimal:
	case StatusLimit:
		return StatusLimit
	default:
		// A feasibility phase bounded below by zero cannot be unbounded;
		// reaching this means numerical failure. Report infeasible.
		return StatusInfeasible
	}
	infeas := rv.zero
	for i := 0; i < rv.m; i++ {
		if rv.basis[i] >= rv.artStart {
			infeas = ar.add(infeas, rv.xB[i])
		}
	}
	if ar.sign(infeas) != 0 {
		return StatusInfeasible
	}
	// Drive zero-valued basic artificials out, exactly as the dense engine
	// scans its tableau row: the pivot row ρ = eᵣᵀB⁻¹A is priced column by
	// column and the first nonzero wins; rows with none are redundant.
	for i := 0; i < rv.m; i++ {
		if rv.basis[i] < rv.artStart {
			continue
		}
		rv.pivotRow(i)
		for j := 0; j < rv.artStart; j++ {
			if ar.sign(rv.dot(rv.rho, j)) != 0 {
				rv.swapZero(i, j)
				break
			}
		}
	}
	// Re-lock every artificial.
	for j := rv.artStart; j < rv.n; j++ {
		rv.hi[j] = rv.zero
		rv.hiF[j] = true
	}
	return StatusOptimal
}

func (rv *revised[T, A]) phase2() Status {
	if !rv.hasObj {
		return StatusOptimal
	}
	rv.pr.reset()
	return rv.primal(rv.cost)
}

// price refreshes the reduced costs d_j = c_j − yᵀA_j for every candidate
// column (nonbasic, non-fixed, j < artStart) against the given cost
// vector, with y = B⁻ᵀc_B from one BTRAN. In exact arithmetic this equals
// the reduced-cost row the dense tableau maintains through eliminations,
// bit for bit. Basic and fixed-range columns are never read by any
// consumer and are set to zero.
func (rv *revised[T, A]) price(cost []T) {
	ar := rv.ar
	y := rv.yv
	y.clear(rv.zero)
	for pos := 0; pos < rv.m; pos++ {
		cb := cost[rv.basis[pos]]
		if ar.sign(cb) != 0 {
			y.set(rv.fac.rowOfPos[pos], cb)
		}
	}
	rv.fac.btran(y)
	for j := 0; j < rv.artStart; j++ {
		if rv.stat[j] == inBasis || rv.fixedRange(j) {
			rv.d[j] = rv.zero
			continue
		}
		rv.d[j] = ar.sub(cost[j], rv.dot(y, j))
	}
}

// dot is yᵀA_j over column j's sparse entries (logical columns are unit
// vectors).
func (rv *revised[T, A]) dot(y *spVec[T], j int) T {
	ar := rv.ar
	cs := rv.cols
	if j >= rv.nv {
		return y.val[j-rv.nv]
	}
	s := rv.zero
	for k := cs.ptr[j]; k < cs.ptr[j+1]; k++ {
		yv := y.val[cs.rows[k]]
		if ar.sign(yv) != 0 {
			s = ar.add(s, ar.mul(yv, cs.vals[k]))
		}
	}
	return s
}

// ftranCol computes α = B⁻¹A_j: the column is scattered in raw space,
// FTRAN'd (fraw, kept for the eta update), and gathered into basis
// positions (apos) for the ratio test and xB updates.
func (rv *revised[T, A]) ftranCol(j int) {
	ar := rv.ar
	cs := rv.cols
	fr := rv.fraw
	fr.clear(rv.zero)
	switch {
	case j >= cs.artStart:
		i := int32(j - cs.artStart)
		v := rv.one
		if cs.artSign[i] < 0 {
			v = ar.neg(v)
		}
		fr.set(i, v)
	case j >= rv.nv:
		fr.set(int32(j-rv.nv), rv.one)
	default:
		for k := cs.ptr[j]; k < cs.ptr[j+1]; k++ {
			fr.set(cs.rows[k], cs.vals[k])
		}
	}
	rv.fac.ftran(fr)
	ap := rv.apos
	ap.clear(rv.zero)
	for _, i := range fr.idx {
		if ar.sign(fr.val[i]) != 0 {
			ap.set(rv.fac.posOfPiv[i], fr.val[i])
		}
	}
}

// pivotRow computes ρ = eᵣᵀB⁻¹ (basis position r) into rv.rho; ρᵀA_j is
// then row r of B⁻¹A — the dense engine's pivot row — one dot at a time.
func (rv *revised[T, A]) pivotRow(r int) {
	rv.rho.clear(rv.zero)
	rv.rho.set(rv.fac.rowOfPos[r], rv.one)
	rv.fac.btran(rv.rho)
}

// primal runs the bounded-variable primal simplex over the given cost
// vector, repricing after every basis change (the revised engine's
// equivalent of the dense engine's maintained objective row; bound flips
// leave the basis — and hence every reduced cost — untouched, so they
// skip the reprice).
func (rv *revised[T, A]) primal(cost []T) Status {
	if rv.partial {
		return rv.primalPartial(cost)
	}
	ar := rv.ar
	dirty := true
	for {
		if rv.exhausted() {
			return StatusLimit
		}
		if dirty {
			rv.price(cost)
			dirty = false
		}
		enter, dir := rv.priceEnter()
		if enter < 0 {
			return StatusOptimal
		}
		rv.ftranCol(enter)
		step, flip, leaveRow, leaveAtUpper, ok := rv.ratio(enter, dir)
		if !ok {
			return StatusUnbounded
		}
		if flip {
			rv.boundFlip(enter, dir)
		} else {
			delta := step
			if dir < 0 {
				delta = ar.neg(step)
			}
			leaveStat := nbLower
			if leaveAtUpper {
				leaveStat = nbUpper
			}
			// The entering reduced cost is nonzero by construction, so the
			// dense engine always charges its objective row here.
			rv.exchange(leaveRow, enter, delta, leaveStat, true)
			dirty = true
		}
		rv.pr.observe(ar.sign(step) == 0)
	}
}

// primalPartial is primal under partial pricing: each pivot BTRANs the
// dual vector once (priceY) and derives reduced costs on demand for a
// rotating window of candidate columns, instead of refreshing all of them.
// An empty window advances to the next; scanning every window IS full
// pricing, so an optimality claim is never window-local. The
// degenerate-stall counter degrades the rule to Bland's least index over
// the full range, exactly as the full-pricing loop does. Work accounting is
// unchanged — exchange charges the same dense-equivalent units — so MaxWork
// budgets stay deterministic for this engine.
func (rv *revised[T, A]) primalPartial(cost []T) Status {
	ar := rv.ar
	dirty := true
	for {
		if rv.exhausted() {
			return StatusLimit
		}
		if dirty {
			rv.priceY(cost)
			dirty = false
		}
		enter, dir := rv.partialEnter(cost)
		if enter < 0 {
			return StatusOptimal
		}
		rv.ftranCol(enter)
		step, flip, leaveRow, leaveAtUpper, ok := rv.ratio(enter, dir)
		if !ok {
			return StatusUnbounded
		}
		if flip {
			rv.boundFlip(enter, dir)
		} else {
			delta := step
			if dir < 0 {
				delta = ar.neg(step)
			}
			leaveStat := nbLower
			if leaveAtUpper {
				leaveStat = nbUpper
			}
			rv.exchange(leaveRow, enter, delta, leaveStat, true)
			dirty = true
		}
		rv.pr.observe(ar.sign(step) == 0)
	}
}

// priceY refreshes only the BTRAN'd dual vector y = B⁻ᵀc_B into rv.yv;
// partialEnter derives individual reduced costs from it on demand.
func (rv *revised[T, A]) priceY(cost []T) {
	ar := rv.ar
	y := rv.yv
	y.clear(rv.zero)
	for pos := 0; pos < rv.m; pos++ {
		cb := cost[rv.basis[pos]]
		if ar.sign(cb) != 0 {
			y.set(rv.fac.rowOfPos[pos], cb)
		}
	}
	rv.fac.btran(y)
}

// partialEnter picks the entering column for primalPartial: Dantzig's rule
// over a rotating window of candidates, advancing window by window until
// one offers an eligible column (none across a full rotation ⇒ optimal),
// or Bland's least index over the full range under the stall fallback.
func (rv *revised[T, A]) partialEnter(cost []T) (enter, dir int) {
	ar := rv.ar
	n := rv.artStart
	y := rv.yv
	if rv.pr.bland {
		for j := 0; j < n; j++ {
			if rv.stat[j] == inBasis || rv.fixedRange(j) {
				continue
			}
			if jdir := rv.eligibleDir(ar.sub(cost[j], rv.dot(y, j)), j); jdir != 0 {
				return j, jdir
			}
		}
		return -1, 0
	}
	best := -1
	bestDir := 0
	var bestMag T
	j := rv.scan
	if j >= n {
		j = 0
	}
	for scanned := 0; scanned < n; {
		stop := scanned + rv.pwin
		if stop > n {
			stop = n
		}
		for ; scanned < stop; scanned++ {
			jj := j
			if j++; j >= n {
				j = 0
			}
			if rv.stat[jj] == inBasis || rv.fixedRange(jj) {
				continue
			}
			dj := ar.sub(cost[jj], rv.dot(y, jj))
			jdir := rv.eligibleDir(dj, jj)
			if jdir == 0 {
				continue
			}
			mag := dj
			if ar.sign(dj) < 0 {
				mag = ar.neg(dj)
			}
			if best < 0 || ar.cmp(mag, bestMag) > 0 {
				best, bestMag, bestDir = jj, mag, jdir
			}
		}
		if best >= 0 {
			rv.scan = j
			return best, bestDir
		}
	}
	return -1, 0
}

// eligibleDir returns the movement direction a nonbasic column with reduced
// cost d may profitably take from its current home, or 0 when none.
func (rv *revised[T, A]) eligibleDir(d T, j int) int {
	sd := rv.ar.sign(d)
	switch rv.stat[j] {
	case nbLower:
		if sd < 0 {
			return 1
		}
	case nbUpper:
		if sd > 0 {
			return -1
		}
	case nbFree:
		if sd < 0 {
			return 1
		} else if sd > 0 {
			return -1
		}
	}
	return 0
}

// priceEnter is tableau.priceEnter over the repriced d vector: Dantzig's
// most-attractive reduced cost, or Bland's least index under the stall
// fallback.
func (rv *revised[T, A]) priceEnter() (enter, dir int) {
	ar := rv.ar
	best := -1
	bestDir := 0
	var bestMag T
	for j := 0; j < rv.artStart; j++ {
		if rv.stat[j] == inBasis || rv.fixedRange(j) {
			continue
		}
		dj := rv.d[j]
		sd := ar.sign(dj)
		jdir := 0
		switch rv.stat[j] {
		case nbLower:
			if sd < 0 {
				jdir = 1
			}
		case nbUpper:
			if sd > 0 {
				jdir = -1
			}
		case nbFree:
			if sd < 0 {
				jdir = 1
			} else if sd > 0 {
				jdir = -1
			}
		}
		if jdir == 0 {
			continue
		}
		if rv.pr.bland {
			return j, jdir
		}
		mag := dj
		if sd < 0 {
			mag = ar.neg(dj)
		}
		if best < 0 || ar.cmp(mag, bestMag) > 0 {
			best, bestMag, bestDir = j, mag, jdir
		}
	}
	return best, bestDir
}

// ratio is tableau.ratio over the FTRAN'd entering column. Ties are
// resolved by (step, leaving basis index), a total order, so iterating the
// column's nonzeros in scatter order picks the same row as the dense
// engine's ascending row scan.
func (rv *revised[T, A]) ratio(enter, dir int) (step T, flip bool, leaveRow int, leaveAtUpper bool, ok bool) {
	ar := rv.ar
	haveLim := false
	var limT T
	leaveRow = -1
	for _, pos := range rv.apos.idx {
		a := rv.apos.val[pos]
		sa := ar.sign(a)
		if sa == 0 {
			continue
		}
		i := int(pos)
		k := rv.basis[i]
		decreasing := (dir > 0) == (sa > 0)
		var bound T
		if decreasing {
			if !rv.loF[k] {
				continue
			}
			bound = rv.lo[k]
		} else {
			if !rv.hiF[k] {
				continue
			}
			bound = rv.hi[k]
		}
		den := a
		if dir < 0 {
			den = ar.neg(a)
		}
		t := ar.div(ar.sub(rv.xB[i], bound), den)
		if ar.sign(t) < 0 {
			t = rv.zero
		}
		if !haveLim || ar.cmp(t, limT) < 0 ||
			(ar.cmp(t, limT) == 0 && k < rv.basis[leaveRow]) {
			haveLim, limT, leaveRow, leaveAtUpper = true, t, i, !decreasing
		}
	}
	if rv.loF[enter] && rv.hiF[enter] {
		rng := ar.sub(rv.hi[enter], rv.lo[enter])
		if !haveLim || ar.cmp(rng, limT) <= 0 {
			return rng, true, -1, false, true
		}
	}
	if !haveLim {
		var z T
		return z, false, -1, false, false
	}
	return limT, false, leaveRow, leaveAtUpper, true
}

// boundFlip moves the entering column to its opposite bound; no basis
// change, no eta, no work charge — as in the dense engine.
func (rv *revised[T, A]) boundFlip(enter, dir int) {
	ar := rv.ar
	rng := ar.sub(rv.hi[enter], rv.lo[enter])
	if dir < 0 {
		rng = ar.neg(rng)
	}
	if ar.sign(rng) != 0 {
		for _, pos := range rv.apos.idx {
			a := rv.apos.val[pos]
			if ar.sign(a) != 0 {
				rv.xB[pos] = ar.sub(rv.xB[pos], ar.mul(rng, a))
			}
		}
	}
	if dir > 0 {
		rv.stat[enter] = nbUpper
	} else {
		rv.stat[enter] = nbLower
	}
}

// exchange performs the basis exchange at position r with entering column
// e, whose FTRAN'd column is current in fraw/apos: basic values move by
// −delta·α, the leaving variable is re-homed to leaveStat, the eta file
// grows by one column, and work is charged exactly as the dense
// elimination would charge it — the pivot row, every other row with a
// nonzero in the entering column, and (when chargeObj) the objective row,
// each at one dense row length.
func (rv *revised[T, A]) exchange(r, e int, delta T, leaveStat vstat, chargeObj bool) {
	ar := rv.ar
	touched := int64(1)
	move := ar.sign(delta) != 0
	for _, pos := range rv.apos.idx {
		if int(pos) == r {
			continue
		}
		a := rv.apos.val[pos]
		if ar.sign(a) == 0 {
			continue
		}
		touched++
		if move {
			rv.xB[pos] = ar.sub(rv.xB[pos], ar.mul(delta, a))
		}
	}
	if chargeObj {
		touched++
	}
	rv.work += touched * int64(rv.stride)
	enterVal := ar.add(rv.nbValue(e), delta)
	k := rv.basis[r]
	rv.stat[k] = leaveStat
	rv.rowOf[k] = -1
	rv.fac.update(rv.fraw, rv.fac.rowOfPos[r])
	rv.basis[r] = e
	rv.rowOf[e] = r
	rv.stat[e] = inBasis
	rv.xB[r] = enterVal
	if rv.fac.needRefactor() {
		rv.fac.refactor(rv.basis)
	}
}

// swapZero drives a zero-valued basic artificial out through a zero-step
// exchange, charging work as the dense eliminate with a nil objective row.
func (rv *revised[T, A]) swapZero(r, enter int) {
	rv.ftranCol(enter)
	rv.exchange(r, enter, rv.zero, nbLower, false)
}

// dual mirrors tableau.dual: the bounded-variable dual simplex from a
// dual-feasible basis, with the same leaving/entering rules, stall
// fallback, and budget behavior. It requires d to be current on entry
// (rewarm prices before handing over, exactly as the dense engine's
// maintained objective row survives between solves) and maintains it
// across its own pivots with the dense update rule d_j ← d_j − θ·ρ_j over
// the pivot row computed for the entering scan, so no full reprice runs
// inside the loop.
func (rv *revised[T, A]) dual() dualResult {
	ar := rv.ar
	cap := 20*(rv.m+rv.n) + 1000
	rv.pr.reset()
	for iter := 0; ; iter++ {
		if iter > cap {
			return dualStuck
		}
		if rv.exhausted() {
			return dualBudget
		}
		// Leaving row: most violated basic bound (least basis index once
		// the degenerate-stall fallback engages).
		r := -1
		below := false
		var bestViol T
		for i := 0; i < rv.m; i++ {
			k := rv.basis[i]
			var viol T
			var vBelow bool
			switch {
			case rv.loF[k] && ar.cmp(rv.xB[i], rv.lo[k]) < 0:
				viol = ar.sub(rv.lo[k], rv.xB[i])
				vBelow = true
			case rv.hiF[k] && ar.cmp(rv.xB[i], rv.hi[k]) > 0:
				viol = ar.sub(rv.xB[i], rv.hi[k])
				vBelow = false
			default:
				continue
			}
			if r < 0 || (rv.pr.bland && k < rv.basis[r]) || (!rv.pr.bland && ar.cmp(viol, bestViol) > 0) {
				r, bestViol, below = i, viol, vBelow
			}
		}
		if r < 0 {
			return dualOptimal
		}
		k := rv.basis[r]
		target := rv.hi[k]
		if below {
			target = rv.lo[k]
		}
		rv.pivotRow(r)
		// Entering column: min |d_j|/|a_rj| over sign-eligible columns.
		// Every scanned pivot-row entry is cached for the d update below.
		e := -1
		var bestRatio, bestAbsA, prowE T
		for j := 0; j < rv.artStart; j++ {
			if rv.stat[j] == inBasis || rv.fixedRange(j) {
				continue
			}
			a := rv.dot(rv.rho, j)
			rv.prow[j] = a
			sa := ar.sign(a)
			if sa == 0 {
				continue
			}
			eligible := false
			switch rv.stat[j] {
			case nbLower:
				eligible = (below && sa < 0) || (!below && sa > 0)
			case nbUpper:
				eligible = (below && sa > 0) || (!below && sa < 0)
			case nbFree:
				eligible = true
			}
			if !eligible {
				continue
			}
			dj := rv.d[j]
			if ar.sign(dj) < 0 {
				dj = ar.neg(dj)
			}
			absA := a
			if sa < 0 {
				absA = ar.neg(a)
			}
			if e < 0 {
				e, bestRatio, bestAbsA, prowE = j, dj, absA, a
				continue
			}
			c := ar.cmp(ar.mul(dj, bestAbsA), ar.mul(bestRatio, absA))
			if c < 0 || (c == 0 && ((rv.pr.bland && j < e) || (!rv.pr.bland && ar.cmp(absA, bestAbsA) > 0))) {
				e, bestRatio, bestAbsA, prowE = j, dj, absA, a
			}
		}
		if e < 0 {
			// No column can absorb the violation: primal infeasible, with
			// dual feasibility intact for the next warm start.
			return dualInfeasible
		}
		delta := ar.div(ar.sub(rv.xB[r], target), prowE)
		rv.pr.observe(ar.sign(delta) == 0)
		chargeObj := ar.sign(rv.d[e]) != 0
		// Maintain reduced costs across the exchange with the dense
		// eliminate's own update, d_j ← d_j − θ·ρ_j (θ = d_e/ρ_e), over
		// the scanned columns; the entering column lands on zero
		// automatically and the leaving one picks up −θ.
		theta := ar.div(rv.d[e], prowE)
		if ar.sign(theta) != 0 {
			for j := 0; j < rv.artStart; j++ {
				if rv.stat[j] == inBasis || rv.fixedRange(j) {
					continue
				}
				if ar.sign(rv.prow[j]) != 0 {
					rv.d[j] = ar.sub(rv.d[j], ar.mul(theta, rv.prow[j]))
				}
			}
		}
		rv.ftranCol(e)
		leaveStat := nbUpper
		if below {
			leaveStat = nbLower
		}
		rv.exchange(r, e, delta, leaveStat, chargeObj)
		if k < rv.artStart {
			rv.d[k] = ar.neg(theta)
		}
		rv.d[e] = rv.zero
	}
}

// rewarm mirrors tableau.rewarm: re-home every nonbasic structural column
// against the new bounds using freshly priced reduced costs, then rebuild
// basic values as xB = B⁻¹(b − Σ A_j·v_j) with one FTRAN (the dense engine
// reads its maintained B⁻¹b column instead; the values are identical).
func (rv *revised[T, A]) rewarm() bool {
	ar := rv.ar
	rv.price(rv.cost)
	for j := 0; j < rv.nv; j++ {
		if rv.stat[j] == inBasis {
			continue
		}
		if rv.fixedRange(j) {
			rv.stat[j] = nbLower
			continue
		}
		sd := ar.sign(rv.d[j])
		switch rv.stat[j] {
		case nbLower:
			if rv.loF[j] && sd >= 0 {
				continue
			}
		case nbUpper:
			if rv.hiF[j] && sd <= 0 {
				continue
			}
		case nbFree:
			if !rv.loF[j] && !rv.hiF[j] && sd == 0 {
				continue
			}
		}
		switch {
		case sd > 0:
			if !rv.loF[j] {
				return false
			}
			rv.stat[j] = nbLower
		case sd < 0:
			if !rv.hiF[j] {
				return false
			}
			rv.stat[j] = nbUpper
		default:
			switch {
			case rv.loF[j]:
				rv.stat[j] = nbLower
			case rv.hiF[j]:
				rv.stat[j] = nbUpper
			default:
				rv.stat[j] = nbFree
			}
		}
	}
	w := rv.fraw
	w.clear(rv.zero)
	for i := 0; i < rv.m; i++ {
		if ar.sign(rv.convRHS[i]) != 0 {
			w.set(int32(i), rv.convRHS[i])
		}
	}
	for j := 0; j < rv.n; j++ {
		if rv.stat[j] == inBasis {
			continue
		}
		v := rv.nbValue(j)
		if ar.sign(v) == 0 {
			continue
		}
		rv.axpyCol(w, j, ar.neg(v))
	}
	rv.fac.ftran(w)
	for i := range rv.xB {
		rv.xB[i] = rv.zero
	}
	for _, i := range w.idx {
		rv.xB[rv.fac.posOfPiv[i]] = w.val[i]
	}
	return true
}

// axpyCol adds s·A_j into w (raw space).
func (rv *revised[T, A]) axpyCol(w *spVec[T], j int, s T) {
	ar := rv.ar
	cs := rv.cols
	switch {
	case j >= cs.artStart:
		i := int32(j - cs.artStart)
		v := s
		if cs.artSign[i] < 0 {
			v = ar.neg(v)
		}
		w.set(i, ar.add(w.val[i], v))
	case j >= rv.nv:
		i := int32(j - rv.nv)
		w.set(i, ar.add(w.val[i], s))
	default:
		for k := cs.ptr[j]; k < cs.ptr[j+1]; k++ {
			r := cs.rows[k]
			w.set(r, ar.add(w.val[r], ar.mul(s, cs.vals[k])))
		}
	}
}

// uniqueOptimum mirrors tableau.uniqueOptimum over freshly priced reduced
// costs.
func (rv *revised[T, A]) uniqueOptimum() bool {
	if !rv.hasObj {
		return false
	}
	rv.price(rv.cost)
	for j := 0; j < rv.artStart; j++ {
		if rv.stat[j] == inBasis || rv.fixedRange(j) {
			continue
		}
		if rv.ar.sign(rv.d[j]) == 0 {
			return false
		}
	}
	return true
}

// value is the current assignment of structural column j.
func (rv *revised[T, A]) value(j int) T {
	if rv.stat[j] == inBasis {
		return rv.xB[rv.rowOf[j]]
	}
	return rv.nbValue(j)
}

func (rv *revised[T, A]) extractInto(dst []*big.Rat) {
	for j := 0; j < rv.nv; j++ {
		rv.ar.setRat(dst[j], rv.value(j))
	}
}

func (rv *revised[T, A]) firstFractionalInt() int {
	for j := 0; j < rv.nv; j++ {
		if rv.p.Vars[j].Integer && !rv.ar.isInt(rv.value(j)) {
			return j
		}
	}
	return -1
}

func (rv *revised[T, A]) objectiveValue() T {
	ar := rv.ar
	v := rv.zero
	for j := 0; j < rv.nv; j++ {
		if ar.sign(rv.cost[j]) == 0 {
			continue
		}
		v = ar.add(v, ar.mul(rv.cost[j], rv.value(j)))
	}
	return v
}
