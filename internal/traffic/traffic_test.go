package traffic

import (
	"strings"
	"testing"

	"repro/internal/grid"
	"repro/internal/warehouse"
)

// ringWarehouse builds a 6x4 warehouse whose passable cells form a ring
// around an interior block. Two interior cells are shelves accessed from the
// north edge; one south-edge cell is a station.
//
//	y=3:  ......
//	y=2:  .@@##.
//	y=1:  .####.
//	y=0:  ..T...
func ringWarehouse(t *testing.T) *warehouse.Warehouse {
	t.Helper()
	g, _, stations, err := grid.Parse("......\n.@@##.\n.####.\n..T...")
	if err != nil {
		t.Fatal(err)
	}
	shelfAccess := []grid.VertexID{
		g.At(grid.Coord{X: 1, Y: 3}),
		g.At(grid.Coord{X: 2, Y: 3}),
	}
	var stationVs []grid.VertexID
	for _, c := range stations {
		stationVs = append(stationVs, g.At(c))
	}
	w, err := warehouse.New(g, shelfAccess, stationVs, 2, [][]int{{10, 0}, {0, 10}})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// ringLanes returns the four sides of the ring as directed lanes
// (clockwise: south->east->north->west).
func ringLanes(w *warehouse.Warehouse) [][]grid.VertexID {
	g := w.Graph
	at := func(x, y int) grid.VertexID { return g.At(grid.Coord{X: x, Y: y}) }
	bottom := []grid.VertexID{at(0, 0), at(1, 0), at(2, 0), at(3, 0), at(4, 0), at(5, 0)}
	east := []grid.VertexID{at(5, 1), at(5, 2), at(5, 3)}
	top := []grid.VertexID{at(4, 3), at(3, 3), at(2, 3), at(1, 3), at(0, 3)}
	west := []grid.VertexID{at(0, 2), at(0, 1)}
	return [][]grid.VertexID{bottom, east, top, west}
}

func buildRing(t *testing.T) (*warehouse.Warehouse, *System) {
	t.Helper()
	w := ringWarehouse(t)
	s, err := Build(w, ringLanes(w))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return w, s
}

func TestBuildRingSystem(t *testing.T) {
	_, s := buildRing(t)
	if got := s.NumComponents(); got != 4 {
		t.Fatalf("components = %d, want 4", got)
	}
	kinds := map[Kind]int{}
	for _, c := range s.Components {
		kinds[c.Kind]++
	}
	if kinds[StationQueue] != 1 || kinds[ShelvingRow] != 1 || kinds[Transport] != 2 {
		t.Errorf("kind histogram = %v", kinds)
	}
	for _, c := range s.Components {
		if len(s.Outlets[c.ID]) != 1 || len(s.Inlets[c.ID]) != 1 {
			t.Errorf("component %d has %d outlets / %d inlets, want 1/1",
				c.ID, len(s.Outlets[c.ID]), len(s.Inlets[c.ID]))
		}
	}
	if got := s.MaxComponentLen(); got != 6 {
		t.Errorf("MaxComponentLen = %d, want 6", got)
	}
	if got := s.CycleTime(); got != 12 {
		t.Errorf("CycleTime = %d, want 12", got)
	}
	if got := len(s.Edges()); got != 4 {
		t.Errorf("edges = %d, want 4", got)
	}
}

func TestComponentAccessors(t *testing.T) {
	_, s := buildRing(t)
	c := s.Components[0] // bottom lane, 6 cells
	if c.Len() != 6 || c.Capacity() != 3 {
		t.Errorf("Len/Capacity = %d/%d, want 6/3", c.Len(), c.Capacity())
	}
	if c.Entry() != c.Cells[0] || c.Exit() != c.Cells[5] {
		t.Error("Entry/Exit mismatch")
	}
	if got := c.Next(c.Cells[2]); got != c.Cells[3] {
		t.Errorf("Next = %d, want %d", got, c.Cells[3])
	}
	if got := c.Next(c.Exit()); got != grid.None {
		t.Errorf("Next(exit) = %d, want None", got)
	}
	if got := c.IndexOf(grid.VertexID(9999)); got != -1 {
		t.Errorf("IndexOf(miss) = %d, want -1", got)
	}
}

func TestComponentAtAndUnits(t *testing.T) {
	w, s := buildRing(t)
	rows := s.ShelvingRows()
	if len(rows) != 1 {
		t.Fatalf("shelving rows = %v", rows)
	}
	if got := s.UnitsAt(rows[0], 0); got != 10 {
		t.Errorf("UnitsAt(row, ρ0) = %d, want 10", got)
	}
	queues := s.StationQueues()
	if len(queues) != 1 {
		t.Fatalf("queues = %v", queues)
	}
	if got := len(s.StationsIn(queues[0])); got != 1 {
		t.Errorf("StationsIn = %d, want 1", got)
	}
	if got := len(s.Transports()); got != 2 {
		t.Errorf("transports = %d, want 2", got)
	}
	// Every ring cell maps to its component; no unused cells here.
	for v := 0; v < w.Graph.NumVertices(); v++ {
		if s.ComponentAt(grid.VertexID(v)) < 0 {
			t.Errorf("vertex %d unused, want covered", v)
		}
	}
}

func TestBuildRejectsOverlap(t *testing.T) {
	w := ringWarehouse(t)
	lanes := ringLanes(w)
	lanes = append(lanes, lanes[0]) // duplicate bottom lane
	if _, err := Build(w, lanes); err == nil {
		t.Error("Build accepted overlapping components")
	}
}

func TestBuildRejectsNonAdjacentCells(t *testing.T) {
	w := ringWarehouse(t)
	g := w.Graph
	bad := [][]grid.VertexID{{g.At(grid.Coord{X: 0, Y: 0}), g.At(grid.Coord{X: 5, Y: 0})}}
	if _, err := Build(w, bad); err == nil {
		t.Error("Build accepted non-adjacent component cells")
	}
}

func TestBuildRejectsUncoveredShelf(t *testing.T) {
	w := ringWarehouse(t)
	lanes := ringLanes(w)
	// Drop the top lane, leaving shelf-access cells uncovered (and the ring
	// broken).
	if _, err := Build(w, [][]grid.VertexID{lanes[0], lanes[1], lanes[3]}); err == nil {
		t.Error("Build accepted uncovered shelf-access vertices")
	}
}

func TestBuildRejectsWeakConnectivity(t *testing.T) {
	// Two parallel disconnected lanes cannot form a strongly connected Gs.
	g, _, _, err := grid.Parse("....\n####\n....")
	if err != nil {
		t.Fatal(err)
	}
	w, err := warehouse.New(g, nil, nil, 0, [][]int{})
	if err != nil {
		t.Fatal(err)
	}
	at := func(x, y int) grid.VertexID { return g.At(grid.Coord{X: x, Y: y}) }
	lanes := [][]grid.VertexID{
		{at(0, 0), at(1, 0), at(2, 0), at(3, 0)},
		{at(0, 2), at(1, 2), at(2, 2), at(3, 2)},
	}
	if _, err := Build(w, lanes); err == nil {
		t.Error("Build accepted a disconnected system")
	}
}

func TestBuildRejectsMixedComponent(t *testing.T) {
	// A 1x4 corridor where a shelf-access cell and a station share a lane.
	g, _, stations, err := grid.Parse("..T.")
	if err != nil {
		t.Fatal(err)
	}
	at := func(x, y int) grid.VertexID { return g.At(grid.Coord{X: x, Y: y}) }
	w, err := warehouse.New(g, []grid.VertexID{at(0, 0)}, []grid.VertexID{g.At(stations[0])}, 1, [][]int{{5}})
	if err != nil {
		t.Fatal(err)
	}
	lanes := [][]grid.VertexID{{at(0, 0), at(1, 0), at(2, 0), at(3, 0)}}
	if _, err := Build(w, lanes); err == nil {
		t.Error("Build accepted a component with both shelf and station cells")
	}
}

func TestSplitLanesLength(t *testing.T) {
	w := ringWarehouse(t)
	lanes := ringLanes(w)
	segs, err := SplitLanes(w, lanes, SplitOptions{MaxLen: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range segs {
		if len(seg) > 3 || len(seg) < 2 {
			t.Errorf("segment length %d outside [2,3]", len(seg))
		}
	}
	// 6-cell bottom lane must split into two 3-cell segments.
	total := 0
	for _, seg := range segs {
		total += len(seg)
	}
	want := 0
	for _, l := range lanes {
		want += len(l)
	}
	if total != want {
		t.Errorf("split lost cells: %d -> %d", want, total)
	}
}

func TestSplitLanesSeparatesKinds(t *testing.T) {
	// Corridor shelf..station: the lane must split between them.
	g, _, stations, err := grid.Parse("....T.")
	if err != nil {
		t.Fatal(err)
	}
	at := func(x, y int) grid.VertexID { return g.At(grid.Coord{X: x, Y: y}) }
	w, err := warehouse.New(g, []grid.VertexID{at(0, 0)}, []grid.VertexID{g.At(stations[0])}, 1, [][]int{{5}})
	if err != nil {
		t.Fatal(err)
	}
	lane := []grid.VertexID{at(0, 0), at(1, 0), at(2, 0), at(3, 0), at(4, 0), at(5, 0)}
	segs, err := SplitLanes(w, [][]grid.VertexID{lane}, SplitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("segments = %d, want 2", len(segs))
	}
	for _, seg := range segs {
		if segmentMixes(w, seg) {
			t.Error("segment mixes shelf and station cells")
		}
	}
}

func TestSplitLanesRejectsBadInput(t *testing.T) {
	w := ringWarehouse(t)
	if _, err := SplitLanes(w, [][]grid.VertexID{{0}}, SplitOptions{}); err == nil {
		t.Error("1-cell lane accepted")
	}
	if _, err := SplitLanes(w, ringLanes(w), SplitOptions{MaxLen: 1}); err == nil {
		t.Error("MaxLen 1 accepted")
	}
}

func TestSplitLanesNoSingletonTail(t *testing.T) {
	w := ringWarehouse(t)
	// A 7-cell lane with MaxLen 3 would naively leave a 1-cell tail.
	g := w.Graph
	at := func(x, y int) grid.VertexID { return g.At(grid.Coord{X: x, Y: y}) }
	lane := []grid.VertexID{at(0, 0), at(1, 0), at(2, 0), at(3, 0), at(4, 0), at(5, 0), at(5, 1)}
	segs, err := SplitLanes(w, [][]grid.VertexID{lane}, SplitOptions{MaxLen: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range segs {
		if len(seg) < 2 {
			t.Errorf("singleton segment survived: %v", seg)
		}
	}
}

func TestRenderShowsArrowsAndExits(t *testing.T) {
	_, s := buildRing(t)
	out := Render(s)
	if !strings.Contains(out, "!") {
		t.Error("render missing exit markers")
	}
	if !strings.Contains(out, ">") || !strings.Contains(out, "<") {
		t.Error("render missing direction arrows")
	}
	if !strings.Contains(out, "#") {
		t.Error("render missing obstacles")
	}
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != 4 || len(lines[0]) != 6 {
		t.Errorf("render dims wrong: %d lines", len(lines))
	}
}

func TestSummarize(t *testing.T) {
	_, s := buildRing(t)
	st := Summarize(s)
	if st.Components != 4 || st.ShelvingRows != 1 || st.StationQueues != 1 || st.Transports != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.Edges != 4 || st.MaxLen != 6 || st.CycleTime != 12 {
		t.Errorf("stats = %+v", st)
	}
	if st.UnusedCells != 0 {
		t.Errorf("UnusedCells = %d, want 0", st.UnusedCells)
	}
}
