package flow

import (
	"errors"
	"fmt"
)

// Sentinel errors of the synthesis layer. The wsp facade re-exports them
// (wsp.ErrInfeasible, wsp.ErrHorizonTooShort); every layer in between
// wraps with %w so errors.Is/As work at any altitude.
var (
	// ErrInfeasible reports that no agent flow set can service the
	// workload within the instance's horizon. Match the concrete
	// *InfeasibleError with errors.As to read the admission certificate.
	ErrInfeasible = errors.New("flow: no agent flow set services the workload")

	// ErrHorizonTooShort reports a horizon below one traffic-system
	// cycle period — too short to host even a single cycle.
	ErrHorizonTooShort = errors.New("flow: horizon shorter than one cycle period")
)

// InfeasibleError is the concrete infeasibility verdict: it satisfies
// errors.Is(err, ErrInfeasible) and carries the flow.Admit certificate so
// callers can distinguish a sound LP-relaxation proof (CertInfeasible —
// no flow set exists, integral or not) from an exhausted integral search
// over a rationally feasible relaxation (CertMaybeFeasible).
type InfeasibleError struct {
	// Cert is CertInfeasible when the LP relaxation soundly proves
	// infeasibility, CertMaybeFeasible when only the integral search
	// failed.
	Cert Certificate
	// Horizon is the timestep budget of the failed instance.
	Horizon int
	// Reason names the stage that produced the verdict.
	Reason string
}

func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("flow: %s: no agent flow set services the workload in %d timesteps (certificate: %v)",
		e.Reason, e.Horizon, e.Cert)
}

// Is makes errors.Is(err, ErrInfeasible) match any InfeasibleError.
func (e *InfeasibleError) Is(target error) bool { return target == ErrInfeasible }
