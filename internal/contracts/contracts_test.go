package contracts

import (
	"math/big"
	"testing"

	"repro/internal/lp"
)

func nat(c *Contract, t *testing.T, names ...string) {
	t.Helper()
	for _, n := range names {
		if err := c.DeclareVar(NatSpec(n)); err != nil {
			t.Fatal(err)
		}
	}
}

func mustAssume(t *testing.T, c *Contract, con Constraint) {
	t.Helper()
	if err := c.Assume(con); err != nil {
		t.Fatal(err)
	}
}

func mustGuarantee(t *testing.T, c *Contract, con Constraint) {
	t.Helper()
	if err := c.Guarantee(con); err != nil {
		t.Fatal(err)
	}
}

func TestDeclareVarConflict(t *testing.T) {
	c := New("c")
	nat(c, t, "x")
	if err := c.DeclareVar(NatSpec("x")); err != nil {
		t.Errorf("re-declaring identical spec failed: %v", err)
	}
	if err := c.DeclareVar(VarSpec{Name: "x", Integer: false}); err == nil {
		t.Error("conflicting re-declaration accepted")
	}
}

func TestAssumeRejectsUndeclared(t *testing.T) {
	c := New("c")
	if err := c.Assume(CT("a", lp.LE, 1, LT(1, "ghost"))); err == nil {
		t.Error("assumption over undeclared variable accepted")
	}
	if err := c.Guarantee(CT("g", lp.LE, 1, LT(1, "ghost"))); err == nil {
		t.Error("guarantee over undeclared variable accepted")
	}
}

func TestSatisfyFindsAssignment(t *testing.T) {
	// x + y <= 4 (assumption), x >= 1, y >= 2 (guarantees).
	c := New("c")
	nat(c, t, "x", "y")
	mustAssume(t, c, CT("cap", lp.LE, 4, LT(1, "x"), LT(1, "y")))
	mustGuarantee(t, c, CT("gx", lp.GE, 1, LT(1, "x")))
	mustGuarantee(t, c, CT("gy", lp.GE, 2, LT(1, "y")))
	asn, err := c.Satisfy(lp.EngineExact)
	if err != nil {
		t.Fatal(err)
	}
	if asn == nil {
		t.Fatal("satisfiable contract reported unsatisfiable")
	}
	sum := new(big.Rat).Add(asn["x"], asn["y"])
	if sum.Cmp(big.NewRat(4, 1)) > 0 {
		t.Errorf("assignment violates assumption: x+y = %s", sum)
	}
	if asn["x"].Cmp(big.NewRat(1, 1)) < 0 || asn["y"].Cmp(big.NewRat(2, 1)) < 0 {
		t.Errorf("assignment violates guarantees: %v", asn)
	}
}

func TestSatisfyUnsat(t *testing.T) {
	c := New("c")
	nat(c, t, "x")
	mustAssume(t, c, CT("lo", lp.GE, 5, LT(1, "x")))
	mustGuarantee(t, c, CT("hi", lp.LE, 3, LT(1, "x")))
	asn, err := c.Satisfy(lp.EngineExact)
	if err != nil {
		t.Fatal(err)
	}
	if asn != nil {
		t.Errorf("unsatisfiable contract returned %v", asn)
	}
}

func TestConsistentAndCompatible(t *testing.T) {
	c := New("c")
	nat(c, t, "x")
	mustAssume(t, c, CT("a", lp.LE, 10, LT(1, "x")))
	mustGuarantee(t, c, CT("g1", lp.GE, 5, LT(1, "x")))
	mustGuarantee(t, c, CT("g2", lp.LE, 3, LT(1, "x")))
	ok, err := c.Consistent(lp.EngineExact)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("inconsistent guarantees reported consistent")
	}
	ok, err = c.Compatible(lp.EngineExact)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("satisfiable assumptions reported incompatible")
	}
}

func TestComposeDischargesAssumptions(t *testing.T) {
	// c1 assumes its input inflow <= 3; c2 guarantees inflow <= 2.
	// Composing should discharge c1's assumption.
	c1 := New("consumer")
	nat(c1, t, "inflow")
	mustAssume(t, c1, CT("a", lp.LE, 3, LT(1, "inflow")))
	c2 := New("producer")
	nat(c2, t, "inflow")
	mustGuarantee(t, c2, CT("g", lp.LE, 2, LT(1, "inflow")))

	comp, err := Compose(c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp.Assumptions) != 0 {
		t.Errorf("assumption not discharged: %v", comp.Assumptions)
	}
	if len(comp.Guarantees) != 1 {
		t.Errorf("guarantees = %d, want 1", len(comp.Guarantees))
	}
}

func TestComposeKeepsUndischargedAssumptions(t *testing.T) {
	c1 := New("consumer")
	nat(c1, t, "inflow")
	mustAssume(t, c1, CT("a", lp.LE, 3, LT(1, "inflow")))
	c2 := New("producer")
	nat(c2, t, "inflow")
	mustGuarantee(t, c2, CT("g", lp.LE, 5, LT(1, "inflow"))) // too weak

	comp, err := Compose(c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp.Assumptions) != 1 {
		t.Errorf("assumptions = %v, want the undischarged one kept", comp.Assumptions)
	}
}

func TestComposeAll(t *testing.T) {
	if _, err := ComposeAll(nil); err == nil {
		t.Error("ComposeAll(nil) succeeded")
	}
	var cs []*Contract
	for i := 0; i < 3; i++ {
		c := New("c")
		nat(c, t, "x")
		mustGuarantee(t, c, CT("g", lp.LE, int64(10+i), LT(1, "x")))
		cs = append(cs, c)
	}
	comp, err := ComposeAll(cs)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp.Guarantees) != 3 {
		t.Errorf("guarantees = %d, want 3", len(comp.Guarantees))
	}
}

func TestConjoin(t *testing.T) {
	c1 := New("ts")
	nat(c1, t, "f")
	mustGuarantee(t, c1, CT("cap", lp.LE, 7, LT(1, "f")))
	c2 := New("workload")
	nat(c2, t, "f")
	mustGuarantee(t, c2, CT("demand", lp.GE, 5, LT(1, "f")))
	conj, err := Conjoin(c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	asn, err := conj.Satisfy(lp.EngineExact)
	if err != nil {
		t.Fatal(err)
	}
	if asn == nil {
		t.Fatal("conjunction unsatisfiable")
	}
	f := asn["f"]
	if f.Cmp(big.NewRat(5, 1)) < 0 || f.Cmp(big.NewRat(7, 1)) > 0 {
		t.Errorf("f = %s outside [5,7]", f)
	}
}

func TestConjoinConflictingVarSpecs(t *testing.T) {
	c1 := New("a")
	nat(c1, t, "x")
	c2 := New("b")
	if err := c2.DeclareVar(VarSpec{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := Conjoin(c1, c2); err == nil {
		t.Error("conjoin with conflicting specs succeeded")
	}
	if _, err := Compose(c1, c2); err == nil {
		t.Error("compose with conflicting specs succeeded")
	}
}

func TestRefines(t *testing.T) {
	// Stronger guarantee, weaker assumption refines.
	strong := New("strong")
	nat(strong, t, "x")
	mustAssume(t, strong, CT("a", lp.LE, 10, LT(1, "x"))) // weaker than weak's (assumes more inputs OK)
	mustGuarantee(t, strong, CT("g", lp.LE, 2, LT(1, "x")))

	weak := New("weak")
	nat(weak, t, "x")
	mustAssume(t, weak, CT("a", lp.LE, 5, LT(1, "x")))
	mustGuarantee(t, weak, CT("g", lp.LE, 4, LT(1, "x")))

	ok, err := Refines(strong, weak)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("strong should refine weak")
	}
	ok, err = Refines(weak, strong)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("weak should not refine strong")
	}
}

func TestRefinesEqualityGoal(t *testing.T) {
	c1 := New("c1")
	nat(c1, t, "x")
	mustGuarantee(t, c1, CT("fix", lp.EQ, 4, LT(1, "x")))
	c2 := New("c2")
	nat(c2, t, "x")
	mustGuarantee(t, c2, CT("range", lp.LE, 4, LT(1, "x")))
	ok, err := Refines(c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("x=4 should refine x<=4")
	}
	ok, err = Refines(c2, c1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("x<=4 should not refine x=4")
	}
}

func TestEntailsVacuous(t *testing.T) {
	// Infeasible premise entails anything.
	vars := map[string]VarSpec{"x": NatSpec("x")}
	premise := []Constraint{
		CT("lo", lp.GE, 5, LT(1, "x")),
		CT("hi", lp.LE, 3, LT(1, "x")),
	}
	ok, err := entails(vars, premise, CT("goal", lp.LE, -100, LT(1, "x")))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("infeasible premise did not entail goal")
	}
}

func TestEntailsUnboundedGoal(t *testing.T) {
	vars := map[string]VarSpec{"x": NatSpec("x")}
	ok, err := entails(vars, nil, CT("goal", lp.LE, 10, LT(1, "x")))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("unbounded lhs reported entailed")
	}
}

func TestContractString(t *testing.T) {
	c := New("demo")
	nat(c, t, "x")
	mustAssume(t, c, CT("a", lp.LE, 3, LT(1, "x")))
	mustGuarantee(t, c, CT("g", lp.GE, 1, LT(2, "x")))
	s := c.String()
	for _, want := range []string{"contract demo", "assume a:", "guarantee g:", "1*x <= 3", "2*x >= 1"} {
		if !containsStr(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestToProblemDeterministicOrder(t *testing.T) {
	c := New("c")
	nat(c, t, "b", "a", "c")
	p, idx := c.ToProblem()
	if p.NumVars() != 3 {
		t.Fatalf("NumVars = %d", p.NumVars())
	}
	if idx["a"] != 0 || idx["b"] != 1 || idx["c"] != 2 {
		t.Errorf("variable order not sorted: %v", idx)
	}
}
