// Command wsp is the toolchain driver: it solves WSP instances on the
// paper's evaluation maps, renders traffic-system maps (Figs. 4 and 5), and
// prints per-instance statistics.
//
// Usage:
//
//	wsp map   -name fulfillment1|fulfillment2|sorting
//	wsp solve -name sorting -units 480 [-T 3600] [-strategy route|flows|contract]
//	wsp table [-parallel N]                # reproduce Table I (N-wide solver pool)
//	wsp sweep [-corridors 2,3,4] [-lens 6,7,9] [-units 480] [-points 3]
//	                                       # walk the Fig. 5 co-design grid
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/lp"
	"repro/internal/maps"
	"repro/internal/solverpool"
	"repro/internal/traffic"
	"repro/internal/workload"
	"repro/internal/wspio"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "map":
		err = cmdMap(os.Args[2:])
	case "solve":
		err = cmdSolve(os.Args[2:])
	case "table":
		err = cmdTable(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "export":
		err = cmdExport(os.Args[2:])
	case "solvefile":
		err = cmdSolveFile(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "wsp:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: wsp <map|solve|table|sweep|export|solvefile> [flags]")
}

// cmdExport writes a built-in instance to a JSON file that solvefile (or a
// third-party tool) can consume.
func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	name := fs.String("name", "sorting", "map name")
	units := fs.Int("units", 160, "total units to move")
	T := fs.Int("T", 3600, "timestep limit")
	out := fs.String("o", "instance.json", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := buildMap(*name)
	if err != nil {
		return err
	}
	wl, err := workload.Uniform(m.W, *units)
	if err != nil {
		return err
	}
	inst, err := wspio.Encode(m.S, &wl, *T, *name)
	if err != nil {
		return err
	}
	data, err := wspio.Marshal(inst)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes)\n", *out, len(data))
	return nil
}

// cmdSolveFile solves an instance previously exported (or hand-written).
func cmdSolveFile(args []string) error {
	fs := flag.NewFlagSet("solvefile", flag.ExitOnError)
	in := fs.String("f", "instance.json", "instance file")
	strat := fs.String("strategy", "route", "synthesis strategy: route, flows, or contract")
	if err := fs.Parse(args); err != nil {
		return err
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	inst, err := wspio.Unmarshal(data)
	if err != nil {
		return err
	}
	s, wl, err := wspio.Decode(inst)
	if err != nil {
		return err
	}
	if wl == nil {
		return fmt.Errorf("instance %s has no workload", *in)
	}
	strategy, err := strategyOf(*strat)
	if err != nil {
		return err
	}
	T := inst.T
	if T == 0 {
		T = 3600
	}
	start := time.Now()
	res, err := core.Solve(s, *wl, T, core.Options{Strategy: strategy})
	if err != nil {
		return err
	}
	fmt.Printf("solved %s (%d units) in %v: %d agents, serviced at t=%d of %d\n",
		*in, wl.TotalUnits(), time.Since(start), res.Stats.Agents, res.Sim.ServicedAt, T)
	return nil
}

func buildMap(name string) (*maps.Map, error) {
	switch name {
	case "fulfillment1":
		return maps.Fulfillment1()
	case "fulfillment2":
		return maps.Fulfillment2()
	case "sorting":
		return maps.SortingCenter()
	}
	return nil, fmt.Errorf("unknown map %q (want fulfillment1, fulfillment2, or sorting)", name)
}

func cmdMap(args []string) error {
	fs := flag.NewFlagSet("map", flag.ExitOnError)
	name := fs.String("name", "sorting", "map name")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := buildMap(*name)
	if err != nil {
		return err
	}
	fmt.Print(traffic.Render(m.S))
	st := traffic.Summarize(m.S)
	fmt.Printf("\n%s: %d cells, %d shelves, %d stations, %d products\n",
		*name, m.W.Graph.NumVertices(), len(m.Shelves), len(m.W.Stations), m.W.NumProducts)
	fmt.Printf("components: %d (%d shelving rows, %d station queues, %d transports), %d arcs, tc=%d\n",
		st.Components, st.ShelvingRows, st.StationQueues, st.Transports, st.Edges, st.CycleTime)
	return nil
}

func strategyOf(name string) (core.Strategy, error) {
	switch name {
	case "route":
		return core.RoutePacking, nil
	case "flows":
		return core.SequentialFlows, nil
	case "contract":
		return core.ContractILP, nil
	}
	return 0, fmt.Errorf("unknown strategy %q (want route, flows, or contract)", name)
}

// simplexOf parses the -simplex flag: the exact LP engines' representation
// for the contract path. Results are bit-identical across choices; auto
// routes by instance size.
func simplexOf(name string) (lp.SimplexEngine, error) {
	switch name {
	case "auto":
		return lp.SimplexAuto, nil
	case "dense":
		return lp.SimplexDense, nil
	case "revised":
		return lp.SimplexRevised, nil
	}
	return 0, fmt.Errorf("unknown simplex %q (want auto, dense, or revised)", name)
}

func cmdSolve(args []string) error {
	fs := flag.NewFlagSet("solve", flag.ExitOnError)
	name := fs.String("name", "sorting", "map name")
	units := fs.Int("units", 160, "total units to move")
	T := fs.Int("T", 3600, "timestep limit")
	strat := fs.String("strategy", "route", "synthesis strategy: route, flows, or contract")
	simplex := fs.String("simplex", "auto", "exact LP representation: auto, dense, or revised")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := buildMap(*name)
	if err != nil {
		return err
	}
	strategy, err := strategyOf(*strat)
	if err != nil {
		return err
	}
	sx, err := simplexOf(*simplex)
	if err != nil {
		return err
	}
	wl, err := workload.Uniform(m.W, *units)
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := core.Solve(m.S, wl, *T, core.Options{Strategy: strategy, Simplex: sx})
	if err != nil {
		return err
	}
	fmt.Printf("solved %s (%d units, %d products) in %v\n", *name, *units, m.W.NumProducts, time.Since(start))
	fmt.Printf("  strategy:   %v (attempt %d)\n", strategy, res.Attempts)
	fmt.Printf("  agents:     %d in %d cycles\n", res.Stats.Agents, len(res.CycleSet.Cycles))
	fmt.Printf("  serviced:   timestep %d of %d\n", res.Sim.ServicedAt, *T)
	fmt.Printf("  synthesis:  %v\n", res.Timing.Synthesis)
	fmt.Printf("  realize:    %v  (validate: %v)\n", res.Timing.Realize, res.Timing.Validate)
	return nil
}

// cmdSweep walks a co-design grid in the style of the paper's Fig. 5:
// corridor width × component-length cap, each generated topology evaluated
// against a series of workload levels. Every topology's series runs as one
// solver-pool batch, so a worker's scratch — cycle buffers plus, for the
// contract strategy, the compiled contract model — is reused across the
// whole series instead of being rebuilt per evaluation.
func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	corridors := fs.String("corridors", "2,3,4", "comma-separated corridor widths (also sets aisle rows)")
	lens := fs.String("lens", "6,7,9", "comma-separated component-length caps")
	stripes := fs.Int("stripes", 4, "stripes per generated topology")
	products := fs.Int("products", 48, "distinct products per generated topology")
	units := fs.Int("units", 480, "total units at the top workload level")
	points := fs.Int("points", 3, "workload levels per topology (units·i/points, i=1..points)")
	T := fs.Int("T", 3600, "timestep limit")
	strat := fs.String("strategy", "route", "synthesis strategy: route, flows, or contract")
	simplex := fs.String("simplex", "auto", "exact LP representation: auto, dense, or revised")
	parallel := fs.Int("parallel", 1, "solver pool width (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	vs, err := parseInts(*corridors)
	if err != nil {
		return fmt.Errorf("bad -corridors: %w", err)
	}
	ls, err := parseInts(*lens)
	if err != nil {
		return fmt.Errorf("bad -lens: %w", err)
	}
	strategy, err := strategyOf(*strat)
	if err != nil {
		return err
	}
	sx, err := simplexOf(*simplex)
	if err != nil {
		return err
	}
	if *points < 1 {
		return fmt.Errorf("-points %d must be at least 1", *points)
	}
	// units ≥ points keeps the level series units·i/points positive and
	// strictly increasing (each step adds at least one unit).
	if *units < *points {
		return fmt.Errorf("-units %d must be at least -points %d", *units, *points)
	}
	pool := solverpool.New(*parallel)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "V\tL\tComponents\ttc\tUnits\tRuntime\tAgents\tServiced@")
	start := time.Now()
	cells := 0
	for _, v := range vs {
		for _, l := range ls {
			m, err := maps.Generate(maps.Params{
				Stripes: *stripes, Rows: v, BayWidth: 12, CorridorWidth: v,
				MaxComponentLen: l, DoubleShelfRows: true,
				NumProducts: *products, UnitsPerShelf: 30, StationsPerStripe: 1,
			})
			if err != nil {
				return fmt.Errorf("V=%d L=%d: %w", v, l, err)
			}
			var reqs []solverpool.Request
			var levels []int
			for i := 1; i <= *points; i++ {
				u := *units * i / *points
				wl, err := workload.Uniform(m.W, u)
				if err != nil {
					return fmt.Errorf("V=%d L=%d units=%d: %w", v, l, u, err)
				}
				levels = append(levels, u)
				reqs = append(reqs, solverpool.Request{S: m.S, WL: wl, T: *T, Opts: core.Options{Strategy: strategy, Simplex: sx}})
			}
			st := traffic.Summarize(m.S)
			for i, r := range pool.SolveBatch(reqs) {
				if r.Err != nil {
					// Infeasible design points are expected sweep outcomes,
					// not reasons to abandon the rest of the grid.
					fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%v\t-\tunsolved\n",
						v, l, st.Components, st.CycleTime, levels[i],
						r.Elapsed.Round(time.Microsecond))
					continue
				}
				fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%v\t%d\t%d\n",
					v, l, st.Components, st.CycleTime, levels[i],
					r.Elapsed.Round(time.Microsecond), r.Res.Stats.Agents, r.Res.Sim.ServicedAt)
			}
			cells++
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("\n%d topologies × %d levels in %v (%d workers)\n",
		cells, *points, time.Since(start).Round(time.Microsecond), pool.Workers())
	return nil
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func cmdTable(args []string) error {
	fs := flag.NewFlagSet("table", flag.ExitOnError)
	T := fs.Int("T", 3600, "timestep limit")
	parallel := fs.Int("parallel", 1, "solver pool width (0 = GOMAXPROCS); results are bit-identical to -parallel 1")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows := []struct {
		name  string
		units []int
	}{
		{"sorting", []int{160, 320, 480}},
		{"fulfillment1", []int{550, 825, 1100}},
		{"fulfillment2", []int{1200, 1320, 1440}},
	}
	type inst struct {
		name     string
		products int
		units    int
	}
	var insts []inst
	var reqs []solverpool.Request
	for _, row := range rows {
		m, err := buildMap(row.name)
		if err != nil {
			return err
		}
		for _, u := range row.units {
			wl, err := workload.Uniform(m.W, u)
			if err != nil {
				return err
			}
			insts = append(insts, inst{row.name, m.W.NumProducts, u})
			reqs = append(reqs, solverpool.Request{S: m.S, WL: wl, T: *T})
		}
	}
	pool := solverpool.New(*parallel)
	start := time.Now()
	results := pool.SolveBatch(reqs)
	batch := time.Since(start)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Map\tUnique Products\tUnits Moved\tRuntime\tAgents\tServiced@")
	for i, r := range results {
		if r.Err != nil {
			return fmt.Errorf("%s (%d units): %w", insts[i].name, insts[i].units, r.Err)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%v\t%d\t%d\n",
			insts[i].name, insts[i].products, insts[i].units, r.Elapsed.Round(time.Microsecond),
			r.Res.Stats.Agents, r.Res.Sim.ServicedAt)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	workers := pool.Workers()
	if workers > len(reqs) {
		workers = len(reqs)
	}
	fmt.Printf("\n%d instances in %v (%d workers)\n", len(results), batch.Round(time.Microsecond), workers)
	return nil
}
