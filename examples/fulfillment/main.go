// Fulfillment-center walkthrough: solve the paper's Fulfillment 1 instance
// (550 units over 55 products, T = 3600), print a delivery-throughput
// timeline, and re-solve under a skewed e-commerce workload — all through
// the public wsp facade.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/wsp"
)

func rng() *rand.Rand { return rand.New(rand.NewSource(1)) }

func main() {
	ctx := context.Background()
	m, err := wsp.Fulfillment1()
	if err != nil {
		log.Fatal(err)
	}
	st := wsp.SummarizeTraffic(m.S)
	fmt.Printf("Fulfillment 1: %d cells, %d shelves, %d stations, %d products\n",
		m.W.Graph.NumVertices(), len(m.Shelves), len(m.W.Stations), m.W.NumProducts)
	fmt.Printf("traffic system: %d components, %d arcs, cycle time %d\n\n",
		st.Components, st.Edges, st.CycleTime)

	const T = 3600
	wl, err := wsp.UniformWorkload(m.W, 550)
	if err != nil {
		log.Fatal(err)
	}
	solver := wsp.New(wsp.WithStrategy(wsp.RoutePacking))
	res, err := solver.Solve(ctx, wsp.Instance{System: m.S, Workload: wl, Horizon: T})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("route-packing: %d agents, %d cycles, serviced at t=%d (synthesis %v)\n",
		res.Stats.Agents, len(res.CycleSet.Cycles), res.Sim.ServicedAt, res.Timing.Synthesis)

	// Delivery throughput per 300-step window (the data behind a
	// throughput-over-time figure).
	fmt.Println("\nthroughput (units per 300 steps):")
	for i, n := range wsp.Throughput(res.Sim, T, 300) {
		fmt.Printf("  t=%4d-%4d: %s (%d)\n", i*300, (i+1)*300-1, bar(n), n)
	}

	// A skewed (Zipf-like) workload: the head products dominate, as in
	// e-commerce demand.
	skew, err := wsp.SkewedWorkload(m.W, 550, rng())
	if err != nil {
		log.Fatal(err)
	}
	res2, err := solver.Solve(ctx, wsp.Instance{System: m.S, Workload: skew, Horizon: T})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nskewed workload: %d agents, %d cycles, serviced at t=%d\n",
		res2.Stats.Agents, len(res2.CycleSet.Cycles), res2.Sim.ServicedAt)
}

func bar(n int) string {
	if n > 60 {
		n = 60
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
