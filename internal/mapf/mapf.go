// Package mapf implements search-based multi-agent path finding: the
// algorithm family of the paper's comparison baseline, Iterated EECBS [4].
//
// Three planners are provided, in increasing sophistication:
//
//   - Prioritized (cooperative A*): agents plan one at a time through a
//     shared space-time reservation table.
//   - CBS: conflict-based search with vertex and edge constraints, optimal
//     for single-goal agents.
//   - ECBS(w): the bounded-suboptimal variant — a focal search on both
//     levels, accepting solutions within factor w of optimal while
//     preferring low-conflict nodes. Iterated ECBS (lifelong.go) replans
//     with it over a sliding window, which is how such solvers are deployed
//     on warehouse instances.
//
// The evaluation uses these planners to reproduce the §V scaling claim: the
// runtime of search-based planners grows super-linearly with team size,
// while the contract-based pipeline stays nearly flat.
package mapf

import (
	"errors"
	"fmt"

	"repro/internal/grid"
)

// Path is one agent's trajectory: position per timestep (index 0 = start).
// Agents that finish early park at their final vertex; Vertex(t) extends the
// path accordingly.
type Path []grid.VertexID

// Vertex returns the agent's position at time t, extending the final
// position for t beyond the path's end.
func (p Path) Vertex(t int) grid.VertexID {
	if len(p) == 0 {
		return grid.None
	}
	if t >= len(p) {
		return p[len(p)-1]
	}
	return p[t]
}

// Cost is the path's travel cost: the index of the last timestep at which
// the agent moves (the standard sum-of-costs component).
func (p Path) Cost() int {
	last := 0
	for t := 1; t < len(p); t++ {
		if p[t] != p[t-1] {
			last = t
		}
	}
	return last
}

// Solution bundles the paths of all agents plus search-effort counters.
type Solution struct {
	Paths []Path
	// Expansions counts low-level A* state expansions (the search-effort
	// metric used by the scaling benches).
	Expansions int
	// HighLevelNodes counts CBS constraint-tree nodes (zero for prioritized
	// planning).
	HighLevelNodes int
}

// SumOfCosts is the standard MAPF objective.
func (s *Solution) SumOfCosts() int {
	total := 0
	for _, p := range s.Paths {
		total += p.Cost()
	}
	return total
}

// Validate checks the solution for vertex conflicts, edge swaps, and
// movement discontinuities over the given horizon.
func (s *Solution) Validate(g *grid.Grid, horizon int) error {
	for i, p := range s.Paths {
		for t := 1; t < len(p); t++ {
			if p[t] != p[t-1] && !g.Adjacent(p[t-1], p[t]) {
				return fmt.Errorf("mapf: agent %d teleports at t=%d", i, t)
			}
		}
	}
	for t := 0; t <= horizon; t++ {
		seen := make(map[grid.VertexID]int)
		for i, p := range s.Paths {
			v := p.Vertex(t)
			if j, ok := seen[v]; ok {
				return fmt.Errorf("mapf: agents %d and %d collide at vertex %d t=%d", j, i, v, t)
			}
			seen[v] = i
		}
		if t == 0 {
			continue
		}
		for i := range s.Paths {
			for j := i + 1; j < len(s.Paths); j++ {
				if s.Paths[i].Vertex(t) == s.Paths[j].Vertex(t-1) &&
					s.Paths[j].Vertex(t) == s.Paths[i].Vertex(t-1) &&
					s.Paths[i].Vertex(t) != s.Paths[i].Vertex(t-1) {
					return fmt.Errorf("mapf: agents %d and %d swap at t=%d", i, j, t)
				}
			}
		}
	}
	return nil
}

// Limits bounds planner effort.
type Limits struct {
	// MaxExpansions aborts the search once this many low-level states have
	// been expanded (0 = 5,000,000).
	MaxExpansions int
	// Horizon bounds plan length in timesteps (0 = 4 × grid size).
	Horizon int
}

func (l Limits) expansions() int {
	if l.MaxExpansions == 0 {
		return 5_000_000
	}
	return l.MaxExpansions
}

func (l Limits) horizon(g *grid.Grid) int {
	if l.Horizon == 0 {
		return 4 * g.NumVertices()
	}
	return l.Horizon
}

// ErrExpansionLimit is the sentinel for a planner exhausting its search
// budget — the "failed to terminate" outcome the paper reports for the
// baseline. Planners return it wrapped with %w and stage context; classify
// with errors.Is(err, ErrExpansionLimit), never by equality or message.
var ErrExpansionLimit = errors.New("mapf: expansion limit exhausted")
