package flownet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxFlowClassic(t *testing.T) {
	// CLRS-style example with max flow 23.
	g := NewGraph(6)
	g.AddEdge(0, 1, 16, 0)
	g.AddEdge(0, 2, 13, 0)
	g.AddEdge(1, 2, 10, 0)
	g.AddEdge(2, 1, 4, 0)
	g.AddEdge(1, 3, 12, 0)
	g.AddEdge(3, 2, 9, 0)
	g.AddEdge(2, 4, 14, 0)
	g.AddEdge(4, 3, 7, 0)
	g.AddEdge(3, 5, 20, 0)
	g.AddEdge(4, 5, 4, 0)
	if got := g.MaxFlow(0, 5); got != 23 {
		t.Errorf("MaxFlow = %d, want 23", got)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 5, 0)
	g.AddEdge(2, 3, 5, 0)
	if got := g.MaxFlow(0, 3); got != 0 {
		t.Errorf("MaxFlow = %d, want 0", got)
	}
}

func TestMaxFlowSelfTarget(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1, 5, 0)
	if got := g.MaxFlow(0, 0); got != 0 {
		t.Errorf("MaxFlow(s,s) = %d, want 0", got)
	}
}

func TestFlowAccessorsAndReset(t *testing.T) {
	g := NewGraph(2)
	e := g.AddEdge(0, 1, 7, 0)
	if g.Capacity(e) != 7 {
		t.Errorf("Capacity = %d, want 7", g.Capacity(e))
	}
	g.MaxFlow(0, 1)
	if g.Flow(e) != 7 {
		t.Errorf("Flow = %d, want 7", g.Flow(e))
	}
	g.Reset()
	if g.Flow(e) != 0 {
		t.Errorf("Flow after Reset = %d, want 0", g.Flow(e))
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := NewGraph(2)
	for _, fn := range []func(){
		func() { g.AddEdge(-1, 0, 1, 0) },
		func() { g.AddEdge(0, 2, 1, 0) },
		func() { g.AddEdge(0, 1, -1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("AddEdge with bad args did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestMinCostFlowPrefersCheapPath(t *testing.T) {
	// Two parallel 2-hop routes; the cheap one saturates first.
	g := NewGraph(4)
	g.AddEdge(0, 1, 2, 1)
	g.AddEdge(1, 3, 2, 1)
	g.AddEdge(0, 2, 2, 5)
	g.AddEdge(2, 3, 2, 5)
	flow, cost := g.MinCostFlow(0, 3, 3)
	if flow != 3 {
		t.Fatalf("flow = %d, want 3", flow)
	}
	if want := int64(2*2 + 1*10); cost != want {
		t.Errorf("cost = %d, want %d", cost, want)
	}
}

func TestMinCostFlowPartial(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 1, 2)
	g.AddEdge(1, 2, 1, 2)
	flow, cost := g.MinCostFlow(0, 2, 10)
	if flow != 1 || cost != 4 {
		t.Errorf("(flow,cost) = (%d,%d), want (1,4)", flow, cost)
	}
}

func TestMinCostFlowNegativeEdge(t *testing.T) {
	// Route of cost 1 + (-3) = -2 beats direct cost 0 edge.
	g := NewGraph(3)
	g.AddEdge(0, 2, 1, 0)
	g.AddEdge(0, 1, 1, 1)
	g.AddEdge(1, 2, 1, -3)
	flow, cost := g.MinCostFlow(0, 2, 1)
	if flow != 1 || cost != -2 {
		t.Errorf("(flow,cost) = (%d,%d), want (1,-2)", flow, cost)
	}
}

func TestMinCostFlowZeroRequest(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1, 1, 1)
	if f, c := g.MinCostFlow(0, 1, 0); f != 0 || c != 0 {
		t.Errorf("(flow,cost) = (%d,%d), want (0,0)", f, c)
	}
}

// conservationOK verifies flow conservation at every vertex except s and t.
func conservationOK(g *Graph, s, t int) bool {
	net := make([]int64, g.NumVertices())
	for u := 0; u < g.NumVertices(); u++ {
		for _, eid := range g.head[u] {
			if eid%2 != 0 {
				continue // skip reverse edges
			}
			f := g.Flow(EdgeID(eid))
			net[u] -= f
			net[g.edge[eid].to] += f
		}
	}
	for v, n := range net {
		if v == s || v == t {
			continue
		}
		if n != 0 {
			return false
		}
	}
	return true
}

// bruteMaxFlow computes max flow by repeated DFS augmentation on a tiny
// adjacency-matrix network (reference implementation).
func bruteMaxFlow(capm [][]int64, s, t int) int64 {
	n := len(capm)
	res := make([][]int64, n)
	for i := range res {
		res[i] = append([]int64(nil), capm[i]...)
	}
	var total int64
	for {
		// BFS for any augmenting path.
		prev := make([]int, n)
		for i := range prev {
			prev[i] = -1
		}
		prev[s] = s
		queue := []int{s}
		for len(queue) > 0 && prev[t] < 0 {
			v := queue[0]
			queue = queue[1:]
			for u := 0; u < n; u++ {
				if res[v][u] > 0 && prev[u] < 0 {
					prev[u] = v
					queue = append(queue, u)
				}
			}
		}
		if prev[t] < 0 {
			return total
		}
		push := int64(1 << 62)
		for v := t; v != s; v = prev[v] {
			if res[prev[v]][v] < push {
				push = res[prev[v]][v]
			}
		}
		for v := t; v != s; v = prev[v] {
			res[prev[v]][v] -= push
			res[v][prev[v]] += push
		}
		total += push
	}
}

// Property: Dinic agrees with the brute-force reference on random graphs and
// produces a conserving flow.
func TestMaxFlowMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		capm := make([][]int64, n)
		for i := range capm {
			capm[i] = make([]int64, n)
		}
		g := NewGraph(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Intn(2) == 0 {
					c := int64(rng.Intn(10))
					capm[i][j] += c
					g.AddEdge(i, j, c, 0)
				}
			}
		}
		s, tt := 0, n-1
		want := bruteMaxFlow(capm, s, tt)
		got := g.MaxFlow(s, tt)
		return got == want && conservationOK(g, s, tt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: min-cost flow of the full max-flow value routes the same amount
// as Dinic and never at a cost above "every unit takes the most expensive
// possible simple path".
func TestMinCostFlowRoutesMaxFlow(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		gMax := NewGraph(n)
		gMin := NewGraph(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Intn(2) == 0 {
					c := int64(rng.Intn(10))
					w := int64(rng.Intn(5))
					gMax.AddEdge(i, j, c, 0)
					gMin.AddEdge(i, j, c, w)
				}
			}
		}
		s, tt := 0, n-1
		want := gMax.MaxFlow(s, tt)
		got, _ := gMin.MinCostFlow(s, tt, 1<<30)
		return got == want && conservationOK(gMin, s, tt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
