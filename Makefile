# Tier-1 gate plus the perf-trajectory harness. `make ci` is what a future
# pipeline should run; `make bench` appends a Table I snapshot to
# BENCH_table1.json so every PR leaves comparable numbers behind.

GO ?= go
BENCH_LABEL ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo dev)

.PHONY: build test vet race bench ci fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Table I + solver-pool throughput + the contract→ILP path (ablation and
# LP-core microbenchmarks), recorded with allocation stats.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkTableI$$|BenchmarkSolveBatch|BenchmarkSynthesizerAblation|BenchmarkLP' -benchmem -benchtime 100x . | \
		$(GO) run ./scripts/benchjson -o BENCH_table1.json -label "$(BENCH_LABEL)"

fmt:
	gofmt -l .

ci: build vet test race
