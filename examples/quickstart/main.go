// Quickstart: build a small warehouse, design its traffic system, and solve
// a WSP instance end to end through the public wsp facade — the five-minute
// tour of the library.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/wsp"
)

func main() {
	// A 10x6 floorplan: a one-way ring around an interior block. '@' cells
	// are shelves (obstacles holding stock), 'T' is a packing station.
	g, _, stationCoords, err := wsp.ParseGrid(
		"..........\n" +
			".@@######.\n" +
			".########.\n" +
			".########.\n" +
			".########.\n" +
			"....T.....")
	if err != nil {
		log.Fatal(err)
	}

	// Shelf-access vertices: the aisle cells north of the two shelves.
	shelfAccess := []wsp.VertexID{
		g.At(wsp.Coord{X: 1, Y: 5}),
		g.At(wsp.Coord{X: 2, Y: 5}),
	}
	var stations []wsp.VertexID
	for _, c := range stationCoords {
		stations = append(stations, g.At(c))
	}
	// Two products, 300 units each: Λ = [[300 0] [0 300]].
	w, err := wsp.NewWarehouse(g, shelfAccess, stations, 2, [][]int{{300, 0}, {0, 300}})
	if err != nil {
		log.Fatal(err)
	}

	// Design the traffic system: four directed lanes forming the ring.
	at := func(x, y int) wsp.VertexID { return g.At(wsp.Coord{X: x, Y: y}) }
	var south, east, north, west []wsp.VertexID
	for x := 0; x <= 9; x++ {
		south = append(south, at(x, 0))
	}
	for y := 1; y <= 5; y++ {
		east = append(east, at(9, y))
	}
	for x := 8; x >= 0; x-- {
		north = append(north, at(x, 5))
	}
	for y := 4; y >= 1; y-- {
		west = append(west, at(0, y))
	}
	sys, err := wsp.BuildTraffic(w, [][]wsp.VertexID{south, east, north, west})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("traffic system:")
	fmt.Print(wsp.RenderTraffic(sys))

	// The WSP instance: bring 12 units of product 0 and 7 of product 1 to
	// the station within 800 timesteps.
	wl, err := wsp.NewWorkload(w, []int{12, 7})
	if err != nil {
		log.Fatal(err)
	}
	solver := wsp.New() // defaults: route-packing strategy
	res, err := solver.Solve(context.Background(), wsp.Instance{System: sys, Workload: wl, Horizon: 800})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsolved: %d agents in %d cycles, workload serviced at timestep %d\n",
		res.Stats.Agents, len(res.CycleSet.Cycles), res.Sim.ServicedAt)
	fmt.Printf("synthesis %v, realization %v, delivered %v\n",
		res.Timing.Synthesis, res.Timing.Realize, res.Sim.Delivered)
}
