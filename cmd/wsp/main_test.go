package main

import (
	"testing"

	"repro/internal/core"
)

func TestBuildMapNames(t *testing.T) {
	for _, name := range []string{"fulfillment1", "fulfillment2", "sorting"} {
		m, err := buildMap(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if m.W == nil || m.S == nil {
			t.Errorf("%s: incomplete map", name)
		}
	}
	if _, err := buildMap("nope"); err == nil {
		t.Error("unknown map accepted")
	}
}

func TestStrategyOf(t *testing.T) {
	cases := map[string]core.Strategy{
		"route":    core.RoutePacking,
		"flows":    core.SequentialFlows,
		"contract": core.ContractILP,
	}
	for name, want := range cases {
		got, err := strategyOf(name)
		if err != nil || got != want {
			t.Errorf("strategyOf(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := strategyOf("quantum"); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestCmdMapAndSolveRun(t *testing.T) {
	if err := cmdMap([]string{"-name", "sorting"}); err != nil {
		t.Errorf("cmdMap: %v", err)
	}
	if err := cmdSolve([]string{"-name", "sorting", "-units", "80", "-T", "3600"}); err != nil {
		t.Errorf("cmdSolve: %v", err)
	}
}

func TestCmdSweepRuns(t *testing.T) {
	if err := cmdSweep([]string{"-corridors", "2", "-lens", "6", "-units", "96", "-points", "2"}); err != nil {
		t.Errorf("cmdSweep: %v", err)
	}
	if err := cmdSweep([]string{"-corridors", "x"}); err == nil {
		t.Error("bad corridor list accepted")
	}
	if err := cmdSweep([]string{"-points", "0"}); err == nil {
		t.Error("zero points accepted")
	}
	if err := cmdSweep([]string{"-units", "2", "-points", "3"}); err == nil {
		t.Error("fewer units than points accepted (zero/duplicate levels)")
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts(" 2,3 ,4")
	if err != nil || len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Errorf("parseInts = %v, %v", got, err)
	}
	if _, err := parseInts(""); err == nil {
		t.Error("empty list accepted")
	}
}
