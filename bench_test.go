// Benchmark harness reproducing every table and figure of the paper's
// evaluation (§V). DESIGN.md maps each benchmark to the paper table or
// figure it backs and records the errata the implementation corrects.
//
// Run with:  go test -bench=. -benchmem
//
// `make bench` runs the Table I benchmarks and appends a snapshot to
// BENCH_table1.json so successive PRs leave a performance trajectory.
package repro

import (
	"context"
	"fmt"
	"math/big"
	"testing"

	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/grid"
	"repro/internal/lifelong"
	"repro/internal/lp"
	"repro/internal/mapf"
	"repro/internal/maps"
	"repro/internal/refine"
	"repro/internal/sim"
	"repro/internal/solverpool"
	"repro/internal/testmaps"
	"repro/internal/warehouse"
	"repro/internal/workload"
)

const horizonT = 3600 // the paper's plan-length limit

// tableIRows enumerates the nine WSP instances of Table I.
var tableIRows = []struct {
	name  string
	build func() (*maps.Map, error)
	units []int
}{
	{"SortingCenter", maps.SortingCenter, []int{160, 320, 480}},
	{"Fulfillment1", maps.Fulfillment1, []int{550, 825, 1100}},
	{"Fulfillment2", maps.Fulfillment2, []int{1200, 1320, 1440}},
}

// BenchmarkTableI (E1-E3) regenerates Table I: the time to synthesize an
// agent flow/cycle set for each of the nine instances. As in the paper, the
// timed quantity is synthesis ("the time required to convert an agent flow
// set into a plan is small"); BenchmarkTableIEndToEnd covers the full
// pipeline.
func BenchmarkTableI(b *testing.B) {
	for _, row := range tableIRows {
		m, err := row.build()
		if err != nil {
			b.Fatal(err)
		}
		for _, units := range row.units {
			wl, err := workload.Uniform(m.W, units)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s_units=%d", row.name, units), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.Solve(context.Background(), m.S, wl, horizonT, core.Options{SkipRealization: true}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTableIParallel is BenchmarkTableI with within-instance
// parallelism enabled (parallel route packing; the contract strategies add
// subtree-parallel branch & bound). Answers are bit-identical to the
// sequential engines, so the delta against BenchmarkTableI is pure
// speedup — a documented tie on a single-core runner.
func BenchmarkTableIParallel(b *testing.B) {
	for _, row := range tableIRows {
		m, err := row.build()
		if err != nil {
			b.Fatal(err)
		}
		for _, units := range row.units {
			wl, err := workload.Uniform(m.W, units)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s_units=%d", row.name, units), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					opts := core.Options{SkipRealization: true, SearchParallel: 4, PackParallel: 4}
					if _, err := core.Solve(context.Background(), m.S, wl, horizonT, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSolveBatch measures solver-pool throughput: the nine Table I
// instances solved end to end as one batch, at pool widths 1 and 4. Results
// are bit-identical across widths (solverpool's parity test asserts it);
// the speedup on multi-core hardware approaches min(width, GOMAXPROCS).
func BenchmarkSolveBatch(b *testing.B) {
	var reqs []solverpool.Request
	for _, row := range tableIRows {
		m, err := row.build()
		if err != nil {
			b.Fatal(err)
		}
		for _, units := range row.units {
			wl, err := workload.Uniform(m.W, units)
			if err != nil {
				b.Fatal(err)
			}
			reqs = append(reqs, solverpool.Request{S: m.S, WL: wl, T: horizonT})
		}
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("parallel=%d", workers), func(b *testing.B) {
			pool := solverpool.New(workers)
			for i := 0; i < b.N; i++ {
				for _, r := range pool.SolveBatch(context.Background(), reqs) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
			b.ReportMetric(float64(len(reqs))*float64(b.N)/b.Elapsed().Seconds(), "solves/s")
		})
	}
}

// BenchmarkTableIEndToEnd times the whole pipeline (synthesis, cycle
// mapping, Algorithm 1 realization, and validation by simulation).
func BenchmarkTableIEndToEnd(b *testing.B) {
	for _, row := range tableIRows {
		m, err := row.build()
		if err != nil {
			b.Fatal(err)
		}
		units := row.units[len(row.units)-1] // largest instance per map
		wl, err := workload.Uniform(m.W, units)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("%s_units=%d", row.name, units), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Solve(context.Background(), m.S, wl, horizonT, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if res.Sim.ServicedAt < 0 {
					b.Fatal("not serviced")
				}
			}
		})
	}
}

// BenchmarkWorkloadScaling (E7) backs the §V claim that doubling the units
// moved increases runtime by less than 10%: compare ns/op across the 1x,
// 2x, and 3x sub-benchmarks.
func BenchmarkWorkloadScaling(b *testing.B) {
	for _, row := range tableIRows {
		m, err := row.build()
		if err != nil {
			b.Fatal(err)
		}
		// x3 equals the largest Table I workload for the map, so every
		// multiple stays within the instance family's feasible range.
		base := row.units[len(row.units)-1] / 3
		for mult := 1; mult <= 3; mult++ {
			wl, err := workload.Uniform(m.W, base*mult)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s_x%d", row.name, mult), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.Solve(context.Background(), m.S, wl, horizonT, core.Options{SkipRealization: true}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkComponentScaling (E8) backs the §V claim that the methodology's
// cost is governed by the number of traffic-system components: sweep the
// stripe count at fixed workload.
func BenchmarkComponentScaling(b *testing.B) {
	for _, stripes := range []int{2, 4, 8, 16} {
		m, err := maps.Generate(maps.Params{
			Stripes: stripes, Rows: 3, BayWidth: 12, CorridorWidth: 3,
			MaxComponentLen: 7, DoubleShelfRows: true,
			NumProducts: 48, UnitsPerShelf: 30, StationsPerStripe: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		wl, err := workload.Uniform(m.W, 480)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("components=%d", m.S.NumComponents()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve(context.Background(), m.S, wl, horizonT, core.Options{SkipRealization: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkProductScaling (E8) shows near-insensitivity to the product
// count at fixed map and fixed total units.
func BenchmarkProductScaling(b *testing.B) {
	for _, products := range []int{16, 48, 96, 192} {
		m, err := maps.Generate(maps.Params{
			Stripes: 4, Rows: 3, BayWidth: 12, CorridorWidth: 3,
			MaxComponentLen: 7, DoubleShelfRows: true,
			NumProducts: products, UnitsPerShelf: 30, StationsPerStripe: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		wl, err := workload.Uniform(m.W, 480)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("products=%d", products), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve(context.Background(), m.S, wl, horizonT, core.Options{SkipRealization: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSynthesizerAblation (E9) compares the three synthesis strategies
// on an instance small enough for the faithful contract→ILP path.
func BenchmarkSynthesizerAblation(b *testing.B) {
	w, s := testmaps.MustRing()
	wl, err := warehouse.NewWorkload(w, []int{8, 5})
	if err != nil {
		b.Fatal(err)
	}
	for _, strat := range []core.Strategy{core.RoutePacking, core.SequentialFlows, core.ContractILP} {
		b.Run(strat.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve(context.Background(), s, wl, 800, core.Options{Strategy: strat, SkipRealization: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// The exact-arithmetic contract path: auto (revised at this size) vs
	// pinned dense is the representation ablation, hybrid is the certified
	// float-first solve mode, cuts adds the root cutting planes. Auto,
	// dense and hybrid results are bit-identical; cuts preserves the exact
	// objective (alternate optima may differ).
	for _, sx := range []struct {
		name     string
		simplex  lp.SimplexEngine
		rootCuts bool
	}{
		{"contract-ilp-exact", lp.SimplexAuto, false},
		{"contract-ilp-exact-dense", lp.SimplexDense, false},
		{"contract-ilp-exact-hybrid", lp.SimplexHybrid, false},
		{"contract-ilp-exact-cuts", lp.SimplexAuto, true},
	} {
		b.Run(sx.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := core.Options{Strategy: core.ContractILP, SkipRealization: true,
					ExactILP: true, Simplex: sx.simplex, RootCuts: sx.rootCuts}
				if _, err := core.Solve(context.Background(), s, wl, 800, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// contractShapedLP builds an LP/ILP with the shape the §IV-D contract
// compiler emits: per-arc per-commodity flow variables over a component
// ring, conservation equalities per (component, commodity), a shared
// capacity row per arc, and pickup/drop demand rows per product. With
// ring=4, products=2 it matches the ablation instance's 16-variable scale;
// larger parameters stress the solver the way co-design sweeps do.
func contractShapedLP(ring, products int, integer bool) *lp.Problem {
	p := &lp.Problem{}
	ncom := products + 1 // commodity 0 is the empty flow
	fv := make([][]lp.VarID, ring)
	zero := big.NewRat(0, 1)
	for e := 0; e < ring; e++ {
		fv[e] = make([]lp.VarID, ncom)
		for k := 0; k < ncom; k++ {
			name := fmt.Sprintf("f_%d_%d", e, k)
			if integer {
				fv[e][k] = p.AddIntVar(name, zero, nil)
			} else {
				fv[e][k] = p.AddVar(name, zero, nil)
			}
		}
	}
	// Conservation: flow in = flow out on every component, per commodity,
	// except commodity exchange at component 0 (the pick row): product k is
	// created there and the empty commodity absorbed symmetrically.
	for c := 0; c < ring; c++ {
		in, out := (c+ring-1)%ring, c
		for k := 0; k < ncom; k++ {
			terms := []lp.Term{lp.T(fv[in][k], 1), lp.T(fv[out][k], -1)}
			if c == 0 && k > 0 {
				// Pick row converts empties into product-k carriers.
				p.AddConstraint(fmt.Sprintf("pick_%d", k), terms, lp.GE, big.NewRat(-int64(2+k), 1))
				continue
			}
			p.AddConstraint(fmt.Sprintf("cons_%d_%d", c, k), terms, lp.EQ, zero)
		}
	}
	// Arc capacity: total concurrent flow per arc bounded by the corridor
	// width, the contract guarantee that makes the ILP nontrivial.
	for e := 0; e < ring; e++ {
		terms := make([]lp.Term, ncom)
		for k := 0; k < ncom; k++ {
			terms[k] = lp.T(fv[e][k], 1)
		}
		p.AddConstraint(fmt.Sprintf("cap_%d", e), terms, lp.LE, big.NewRat(int64(3+products), 1))
	}
	// Demand: each product must ship at least its workload quota. Quotas
	// sum to at most the arc capacity so every size stays feasible.
	for k := 1; k < ncom; k++ {
		p.AddConstraint(fmt.Sprintf("demand_%d", k),
			[]lp.Term{lp.T(fv[ring/2][k], 1)}, lp.GE, big.NewRat(int64(1+k%2), 1))
	}
	return p
}

// BenchmarkLP isolates the internal/lp solver on contract-shaped problems:
// the continuous relaxation in both engines and both exact simplex
// representations (dense tableau vs LU-factorized revised), and the full
// branch-and-bound ILP likewise. These are the microbenchmarks behind the
// `flow.Certify` / `SynthesizeContract` / `refine.MinimalHorizon` costs;
// the Dense/Revised pairs size the SimplexAuto crossover.
func BenchmarkLP(b *testing.B) {
	sizes := []struct {
		name           string
		ring, products int
	}{
		{"ring=4_products=2", 4, 2},
		{"ring=8_products=4", 8, 4},
		// Demand quotas must fit the shared arc capacity (3+products), which
		// caps products at 6; the large instance grows the ring instead.
		{"ring=24_products=6", 24, 6},
	}
	for _, sz := range sizes {
		cont := contractShapedLP(sz.ring, sz.products, false)
		obj := make([]lp.Term, 0, len(cont.Vars))
		for i := range cont.Vars {
			obj = append(obj, lp.T(lp.VarID(i), 1))
		}
		cont.SetObjective(obj, false) // minimize total flow
		// "Exact" is the default entry point (SimplexAuto routes these
		// sizes to the revised engine); "ExactDense" pins the reference
		// tableau so the representation win stays measurable per snapshot.
		for _, sx := range []struct {
			name    string
			simplex lp.SimplexEngine
		}{{"Exact", lp.SimplexAuto}, {"ExactDense", lp.SimplexDense}} {
			b.Run(sx.name+"/"+sz.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sol, err := lp.SolveLPWith(cont, lp.SolveOptions{Simplex: sx.simplex})
					if err != nil || sol.Status != lp.StatusOptimal {
						b.Fatalf("status %v err %v", sol.Status, err)
					}
				}
			})
		}
		// "Float" routes through floatPick (the revised partial-pricing
		// engine at these sizes); "FloatDense" pins the float tableau so the
		// partial-pricing win stays measurable per snapshot. "Hybrid" is the
		// certified float-first/exact-verify mode — the number to compare
		// against "Exact", since both return bit-identical rational answers.
		for _, fx := range []struct {
			name    string
			simplex lp.SimplexEngine
		}{{"Float", lp.SimplexAuto}, {"FloatDense", lp.SimplexDense}} {
			b.Run(fx.name+"/"+sz.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sol, err := lp.SolveLPFloatWith(cont, lp.SolveOptions{Simplex: fx.simplex})
					if err != nil || sol.Status != lp.StatusOptimal {
						b.Fatalf("status %v err %v", sol.Status, err)
					}
				}
			})
		}
		b.Run("Hybrid/"+sz.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sol, err := lp.SolveLPWith(cont, lp.SolveOptions{Simplex: lp.SimplexHybrid})
				if err != nil || sol.Status != lp.StatusOptimal {
					b.Fatalf("status %v err %v", sol.Status, err)
				}
			}
		})
		ilp := contractShapedLP(sz.ring, sz.products, true)
		for _, eng := range []struct {
			name string
			opts lp.ILPOptions
		}{
			{"ILPExact", lp.ILPOptions{Engine: lp.EngineExact}},
			{"ILPExactDense", lp.ILPOptions{Engine: lp.EngineExact, Simplex: lp.SimplexDense}},
			{"ILPFloat", lp.ILPOptions{Engine: lp.EngineFloat}},
			{"ILPHybrid", lp.ILPOptions{Simplex: lp.SimplexHybrid}},
			{"ILPRootCuts", lp.ILPOptions{RootCuts: true}},
			// Subtree-parallel search (bit-identical answers, see
			// internal/lp/parallel.go); vs ILPExact/ILPFloat these measure
			// the within-instance speedup — a tie on a single-core runner.
			{"ILPParallel2", lp.ILPOptions{Engine: lp.EngineExact, SearchParallel: 2}},
			{"ILPParallel4", lp.ILPOptions{Engine: lp.EngineExact, SearchParallel: 4}},
			{"ILPParallelFloat4", lp.ILPOptions{Engine: lp.EngineFloat, SearchParallel: 4}},
		} {
			b.Run(eng.name+"/"+sz.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sol, err := lp.SolveILP(ilp, eng.opts)
					if err != nil || sol.Status != lp.StatusOptimal {
						b.Fatalf("status %v err %v", sol.Status, err)
					}
				}
			})
		}
	}
}

// BenchmarkBaselineComparison (E6) reproduces the §V comparison: the
// search-based baseline's effort explodes with team size while the contract
// pipeline (BenchmarkTableI) stays flat. Expansions per solve are reported
// as a metric; runs that exhaust the budget report the cap (the paper's
// baseline ran out of its one-hour budget the same way).
func BenchmarkBaselineComparison(b *testing.B) {
	m, err := maps.SortingCenter()
	if err != nil {
		b.Fatal(err)
	}
	for _, agents := range []int{1, 2, 4, 8} {
		starts, goals := baselineTasks(m, agents, 2)
		b.Run(fmt.Sprintf("IteratedECBS_agents=%d", agents), func(b *testing.B) {
			var exp int
			for i := 0; i < b.N; i++ {
				sol, _ := mapf.IteratedECBS(m.W.Graph, starts, goals, mapf.IteratedOptions{
					Window: 20,
					Limits: mapf.Limits{MaxExpansions: 500_000, Horizon: horizonT},
				})
				exp = sol.Expansions
			}
			b.ReportMetric(float64(exp), "expansions")
		})
	}
}

// baselineTasks gives each baseline agent a distinct start, a distinct shelf
// cell, and a station, with `tours` shelf→station round trips — the "same
// sequence of shelves and stations" protocol of §V.
func baselineTasks(m *maps.Map, n, tours int) ([]grid.VertexID, [][]grid.VertexID) {
	var starts []grid.VertexID
	var goals [][]grid.VertexID
	rows := m.S.ShelvingRows()
	used := map[grid.VertexID]bool{}
	for a := 0; a < n; a++ {
		row := m.S.Components[rows[a%len(rows)]]
		shelf := row.Cells[(1+2*(a/len(rows)))%row.Len()]
		station := m.W.Stations[a%len(m.W.Stations)]
		start := grid.None
		for _, v := range row.Cells {
			if !used[v] && v != shelf {
				start = v
				break
			}
		}
		if start == grid.None {
			continue
		}
		used[start] = true
		starts = append(starts, start)
		var seq []grid.VertexID
		for t := 0; t < tours; t++ {
			seq = append(seq, shelf, station)
		}
		goals = append(goals, seq)
	}
	return starts, goals
}

// BenchmarkTopologyDesignSpace (E10) sweeps the co-design space: corridor
// width and component-length cap against a fixed workload.
func BenchmarkTopologyDesignSpace(b *testing.B) {
	cases := []struct {
		name string
		p    maps.Params
	}{
		{"V2_L6", maps.Params{Stripes: 4, Rows: 2, BayWidth: 12, CorridorWidth: 2, MaxComponentLen: 6, DoubleShelfRows: true, NumProducts: 48, UnitsPerShelf: 30, StationsPerStripe: 1}},
		{"V3_L7", maps.Params{Stripes: 4, Rows: 3, BayWidth: 12, CorridorWidth: 3, MaxComponentLen: 7, DoubleShelfRows: true, NumProducts: 48, UnitsPerShelf: 30, StationsPerStripe: 1}},
		{"V4_L9", maps.Params{Stripes: 4, Rows: 4, BayWidth: 12, CorridorWidth: 4, MaxComponentLen: 9, DoubleShelfRows: true, NumProducts: 48, UnitsPerShelf: 30, StationsPerStripe: 1}},
	}
	for _, tc := range cases {
		m, err := maps.Generate(tc.p)
		if err != nil {
			b.Fatal(err)
		}
		wl, err := workload.Uniform(m.W, 480)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(tc.name, func(b *testing.B) {
			var serviced int
			for i := 0; i < b.N; i++ {
				res, err := core.Solve(context.Background(), m.S, wl, horizonT, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				serviced = res.Sim.ServicedAt
			}
			b.ReportMetric(float64(serviced), "serviced@step")
		})
	}
}

// BenchmarkFailureRobustness (extension) measures makespan dilation when
// one agent freezes mid-plan, under the minimal-communication execution
// policy (sim.ExecuteMCP).
func BenchmarkFailureRobustness(b *testing.B) {
	m, err := maps.SortingCenter()
	if err != nil {
		b.Fatal(err)
	}
	wl, err := workload.Uniform(m.W, 320)
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Solve(context.Background(), m.S, wl, horizonT, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, dur := range []int{0, 120, 480} {
		b.Run(fmt.Sprintf("freeze=%d", dur), func(b *testing.B) {
			var serviced int
			for i := 0; i < b.N; i++ {
				var failures []sim.Failure
				if dur > 0 {
					failures = []sim.Failure{{Agent: 0, At: 100, Duration: dur}}
				}
				ex, err := sim.ExecuteMCP(m.W, res.Plan, wl, failures, 6*horizonT)
				if err != nil {
					b.Fatal(err)
				}
				serviced = ex.ServicedAt
			}
			b.ReportMetric(float64(serviced), "serviced@step")
		})
	}
}

// BenchmarkRefinement (extension, §VI future work) measures the two
// refinement passes: cycle merging and horizon minimization.
func BenchmarkRefinement(b *testing.B) {
	m, err := maps.SortingCenter()
	if err != nil {
		b.Fatal(err)
	}
	wl, err := workload.Uniform(m.W, 320)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("MergeCycles", func(b *testing.B) {
		cs, err := cycles.Synthesize(m.S, wl, horizonT, cycles.Options{MaxLegsPerCycle: 6})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := refine.MergeCycles(cs, wl); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MinimalHorizon", func(b *testing.B) {
		var minT int
		for i := 0; i < b.N; i++ {
			hr, err := refine.MinimalHorizon(context.Background(), m.S, wl, horizonT, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			minT = hr.T
		}
		b.ReportMetric(float64(minT), "minimal-T")
	})
	// The faithful contract→ILP path, where every probe re-solves the same
	// contract conjunction at a different horizon — the repeated-solve
	// workload the incremental model layer targets.
	b.Run("MinimalHorizonContract", func(b *testing.B) {
		w, s := testmaps.MustRing()
		rwl, err := warehouse.NewWorkload(w, []int{8, 5})
		if err != nil {
			b.Fatal(err)
		}
		var minT int
		for i := 0; i < b.N; i++ {
			hr, err := refine.MinimalHorizon(context.Background(), s, rwl, 1600, core.Options{Strategy: core.ContractILP})
			if err != nil {
				b.Fatal(err)
			}
			minT = hr.T
		}
		b.ReportMetric(float64(minT), "minimal-T")
	})
}

// BenchmarkLifelong (extension, §II-A lifelong WSP) measures the epoch loop:
// staggered batches force repeated re-synthesis over the residual demand on
// near-identical instances. The contract-ILP variant re-solves the same
// contract conjunction every epoch, so it is the lifelong face of the
// repeated-solve workload.
func BenchmarkLifelong(b *testing.B) {
	_, s := testmaps.MustRing()
	batches := []lifelong.Batch{
		{Release: 0, Units: []int{8, 0}},
		{Release: 900, Units: []int{0, 8}},
		{Release: 1800, Units: []int{4, 4}},
	}
	for _, strat := range []core.Strategy{core.RoutePacking, core.ContractILP} {
		b.Run(strat.String(), func(b *testing.B) {
			var epochs int
			for i := 0; i < b.N; i++ {
				rep, err := lifelong.Run(context.Background(), s, batches, 4800, lifelong.Options{Core: core.Options{Strategy: strat}})
				if err != nil {
					b.Fatal(err)
				}
				epochs = rep.Epochs
			}
			b.ReportMetric(float64(epochs), "epochs")
		})
	}
}

// BenchmarkLifelongStream measures what observation costs: the same
// staggered-batch run event-free (nil observer — the engine skips all
// event bookkeeping) versus with a counting observer consuming every
// epoch, delivery, and completion event. Streaming should be ~free next
// to the epoch solves.
func BenchmarkLifelongStream(b *testing.B) {
	_, s := testmaps.MustRing()
	batches := []lifelong.Batch{
		{Release: 0, Units: []int{8, 0}},
		{Release: 900, Units: []int{0, 8}},
		{Release: 1800, Units: []int{4, 4}},
	}
	run := func(b *testing.B, opts lifelong.Options) {
		for i := 0; i < b.N; i++ {
			if _, err := lifelong.Run(context.Background(), s, batches, 4800, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("nil-observer", func(b *testing.B) {
		run(b, lifelong.Options{})
	})
	b.Run("observer", func(b *testing.B) {
		var events int
		run(b, lifelong.Options{Observer: lifelong.ObserverFuncs{
			Epoch:         func(lifelong.EpochReport) { events++ },
			Delivery:      func(lifelong.Delivery) { events++ },
			BatchComplete: func(int, lifelong.BatchStats) { events++ },
		}})
		b.ReportMetric(float64(events)/float64(b.N), "events/run")
	})
}

// BenchmarkDesignSweep measures one design-sweep cell: the same topology
// evaluated at a series of workload levels as one solver-pool batch, which
// is the unit of work the `wsp sweep` grid walk repeats per topology. The
// contract-ILP strategy re-solves the same contract conjunction per level.
func BenchmarkDesignSweep(b *testing.B) {
	w, s := testmaps.MustRing()
	var reqs []solverpool.Request
	for _, units := range [][]int{{4, 2}, {6, 4}, {8, 5}} {
		wl, err := warehouse.NewWorkload(w, units)
		if err != nil {
			b.Fatal(err)
		}
		reqs = append(reqs, solverpool.Request{
			S: s, WL: wl, T: 1600,
			Opts: core.Options{Strategy: core.ContractILP, SkipRealization: true},
		})
	}
	b.Run("contract-series", func(b *testing.B) {
		pool := solverpool.New(1)
		for i := 0; i < b.N; i++ {
			for _, r := range pool.SolveBatch(context.Background(), reqs) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
	})
}

// BenchmarkRealization isolates Algorithm 1: agent-steps simulated per
// second on the largest Table I instance.
func BenchmarkRealization(b *testing.B) {
	m, err := maps.Fulfillment2()
	if err != nil {
		b.Fatal(err)
	}
	wl, err := workload.Uniform(m.W, 1440)
	if err != nil {
		b.Fatal(err)
	}
	pre, err := core.Solve(context.Background(), m.S, wl, horizonT, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	agents := pre.Stats.Agents
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Solve(context.Background(), m.S, wl, horizonT, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
	b.ReportMetric(float64(agents*horizonT), "agent-steps/op")
}
