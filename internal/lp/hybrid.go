package lp

import (
	"errors"
	"math/big"
)

// This file implements the hybrid solve mode (SimplexHybrid): solve in
// float64 first with the revised partial-pricing engine, then verify the
// float basis with an exact engine warm-started from it. The mode exists
// for large instances where the float engine finds the optimal basis in a
// fraction of the exact engine's time and the exact half only has to
// confirm it (re-home the nonbasics, a handful of dual pivots, one pricing
// pass); its contract is that every answer is bit-identical to the
// exact-only engines'.
//
// Certification. An exact warm solve started from a float basis can land on
// a DIFFERENT optimal vertex than the cold exact solve when the optimum is
// not unique, so optimality alone does not give bit-identity. The
// certificate is uniqueOptimum(): every nonbasic reduced cost strictly
// signed means the optimal point is unique, and a unique optimal point is
// the same point whatever path reached it. Anything short of a certified
// unique optimum — the float solve failed, the basis is exactly singular,
// re-homing hit an unbounded direction, the dual walk stalled, or the
// optimum is simply not unique — falls back to the cold exact solve, which
// is the exact-only answer by definition. Exact infeasibility proofs
// (dualInfeasible) are accepted directly: infeasibility is a property of
// the problem, not of the basis that exposed it.
//
// For ILP the same certificate is demanded at every consumed branch-and-
// bound node (bbHooks.certify): node-wise unique relaxation optima pin the
// branching variables, the pruning bounds and the incumbents to exactly
// the values of the exact-only search, so the whole tree replays
// identically. The first uncertifiable node aborts the hybrid search
// (errHybridBail) and the plain exact search reruns from scratch.
//
// MaxWork caveat: hybrid work counts differ from exact-only work counts
// (the float pivots are not charged to the exact budget, and the exact root
// re-enters warm instead of cold), so a budget-limited hybrid solve is
// deterministic per mode but stops at a different tick than a
// budget-limited exact-only solve. Budgeted bit-identity claims are
// per-engine, as with the float engine.

// errHybridBail aborts a hybrid branch-and-bound search at the first node
// whose relaxation optimum cannot be certified unique; the caller reruns
// the plain exact search. It never escapes the package.
var errHybridBail = errors.New("lp: hybrid node optimum not certified unique")

// declaredBounds returns the per-variable declared bounds — the bound
// vectors of an LP solve or of the branch-and-bound root.
func declaredBounds(p *Problem) (lo, hi []*big.Rat) {
	lo = make([]*big.Rat, len(p.Vars))
	hi = make([]*big.Rat, len(p.Vars))
	for i := range p.Vars {
		lo[i] = p.Vars[i].Lower
		hi[i] = p.Vars[i].Upper
	}
	return lo, hi
}

// solveLPHybrid is the LP entry of the hybrid mode: float-first, exact
// verify, cold exact fallback.
func solveLPHybrid(p *Problem, cancel <-chan struct{}) (*Solution, error) {
	// A pure feasibility problem has no reduced-cost certificate
	// (uniqueOptimum is vacuously false), so the float half cannot pay for
	// itself: go exact directly.
	if len(p.Objective) > 0 {
		ft := newRevisedFloat(p)
		ft.setCancel(cancel)
		lo, hi := declaredBounds(p)
		if ft.solveNode(lo, hi) == StatusOptimal {
			basis, stat := ft.basisState()
			if sol := verifyFloatBasis(p, basis, stat, cancel); sol != nil {
				return sol, nil
			}
		}
		if ft.canceled() {
			return &Solution{Status: StatusCanceled}, nil
		}
	}
	return SolveLPWith(p, SolveOptions{Cancel: cancel})
}

// verifyFloatBasis runs the exact verification half of a hybrid LP solve:
// adopt the float basis, re-home and repair with the dual simplex, and
// accept only certified answers (a unique optimum, or an exact
// infeasibility proof). nil means "not certified" and the caller must fall
// back to the cold exact solve. Split from solveLPHybrid so the
// disagreement-path tests can feed it corrupted bases directly.
func verifyFloatBasis(p *Problem, basis []int, stat []vstat, cancel <-chan struct{}) *Solution {
	var sol *Solution
	if promote(func() { sol = verifyBasisWith[rat64, rat64Arith](p, rat64Arith{}, basis, stat, cancel) }) {
		return sol
	}
	return verifyBasisWith[*big.Rat, ratArith](p, ratArith{}, basis, stat, cancel)
}

func verifyBasisWith[T any, A arith[T]](p *Problem, ar A, basis []int, stat []vstat, cancel <-chan struct{}) *Solution {
	rv := newRevised[T, A](p, ar)
	rv.setCancel(cancel)
	lo, hi := declaredBounds(p)
	if ok, _ := rv.setBounds(lo, hi); !ok {
		return nil // crossed declared bounds; let the cold path report it
	}
	if !rv.adoptBasis(basis, stat) || !rv.rewarm() {
		return nil
	}
	switch rv.dual() {
	case dualOptimal:
		if rv.uniqueOptimum() {
			return optimalSolution[T](rv)
		}
	case dualInfeasible:
		return &Solution{Status: StatusInfeasible}
	}
	// dualStuck or cancelled mid-walk: not certified.
	return nil
}

// solveILPHybrid is the branch-and-bound entry of the hybrid mode: solve
// the root relaxation in float, adopt its basis into an exact arena, and
// run the exact search warm from it with per-node uniqueness certification.
// Any certification failure abandons the hybrid tree and reruns the plain
// exact search.
func solveILPHybrid(p *Problem, opts ILPOptions) (*Solution, error) {
	exact := func() (*Solution, error) {
		o := opts
		o.Simplex = SimplexAuto
		o.RootCuts = false
		return SolveILP(p, o)
	}
	if len(p.Objective) == 0 {
		return exact() // no certificate possible; see solveLPHybrid
	}
	ft := newRevisedFloat(p)
	ft.setCancel(opts.Cancel)
	lo, hi := declaredBounds(p)
	if ft.solveNode(lo, hi) != StatusOptimal {
		if ft.canceled() {
			return &Solution{Status: StatusCanceled}, nil
		}
		return exact()
	}
	basis, stat := ft.basisState()
	var sol *Solution
	var err error
	if !promote(func() { sol, err = hybridSearchWith[rat64, rat64Arith](p, rat64Arith{}, basis, stat, opts) }) {
		sol, err = hybridSearchWith[*big.Rat, ratArith](p, ratArith{}, basis, stat, opts)
	}
	if errors.Is(err, errHybridBail) {
		return exact()
	}
	return sol, err
}

func hybridSearchWith[T any, A arith[T]](p *Problem, ar A, basis []int, stat []vstat, opts ILPOptions) (*Solution, error) {
	rv := newRevised[T, A](p, ar)
	rv.setCancel(opts.Cancel)
	lo, hi := declaredBounds(p)
	if ok, _ := rv.setBounds(lo, hi); !ok {
		return nil, errHybridBail
	}
	if !rv.adoptBasis(basis, stat) {
		return nil, errHybridBail
	}
	// Mark the adopted basis warm: the root solveNode re-enters through
	// rewarm()/dual(), and falls back to the cold two-phase solve — the
	// exact-only root, bit for bit — on its own if re-homing fails.
	rv.warmOK = true
	return bbSolveHooked(p, rv, ar, opts, bbHooks[T]{
		start:   rv.startSearchWarm,
		certify: rv.uniqueOptimum,
	})
}
