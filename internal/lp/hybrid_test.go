package lp

import (
	"math/big"
	"math/rand"
	"testing"
)

// This file pins the hybrid mode (hybrid.go) and the root cuts (cuts.go) to
// the exact-only engines: hybrid Solutions must be bit-identical on every
// corpus, root-cut Solutions must preserve the status and the optimal
// objective exactly, and no separated cut may exclude a known integer
// optimum. Tests are named TestRevisedParity* so `make test-lp-long` scales
// their rounds alongside the representation-parity fuzzes.

// TestRevisedParityHybridLP checks LP bit-identity of SimplexHybrid against
// the exact-only engine on the bounded-random and network corpora.
func TestRevisedParityHybridLP(t *testing.T) {
	rounds := parityRounds(t, 200)
	for seed := 0; seed < rounds; seed++ {
		rng := rand.New(rand.NewSource(int64(7000 + seed)))
		var p *Problem
		if seed%4 == 3 {
			p = randomSparseNetwork(rng, 10+rng.Intn(6), 3+rng.Intn(3), false)
		} else {
			p = randomBoundedProblem(rng, false)
		}
		exact, err := SolveLPWith(p, SolveOptions{})
		if err != nil {
			t.Fatalf("seed %d: exact: %v", seed, err)
		}
		hyb, err := SolveLPWith(p, SolveOptions{Simplex: SimplexHybrid})
		if err != nil {
			t.Fatalf("seed %d: hybrid: %v", seed, err)
		}
		requireSameSolution(t, "hybrid-lp", exact, hyb)
	}
}

// TestRevisedParityHybridILP checks branch-and-bound bit-identity of
// SimplexHybrid: per-node certification (or the bail to the plain exact
// search) must reproduce the exact-only tree's answer exactly.
func TestRevisedParityHybridILP(t *testing.T) {
	rounds := parityRounds(t, 100)
	for seed := 0; seed < rounds; seed++ {
		rng := rand.New(rand.NewSource(int64(8000 + seed)))
		var p *Problem
		if seed%4 == 3 {
			p = randomSparseNetwork(rng, 8+rng.Intn(5), 3+rng.Intn(2), true)
		} else {
			p = randomBoundedProblem(rng, true)
		}
		exact, err := SolveILP(p, ILPOptions{})
		if err != nil {
			t.Fatalf("seed %d: exact: %v", seed, err)
		}
		hyb, err := SolveILP(p, ILPOptions{Simplex: SimplexHybrid})
		if err != nil {
			t.Fatalf("seed %d: hybrid: %v", seed, err)
		}
		requireSameSolution(t, "hybrid-ilp", exact, hyb)
	}
}

// TestRevisedParityRootCuts checks the RootCuts contract: identical status,
// identical optimal objective (cuts never exclude an integer point), and an
// exactly feasible returned assignment. Values may legitimately differ from
// the cut-free tree under alternate optima, so they are checked for
// feasibility and objective, not for equality.
func TestRevisedParityRootCuts(t *testing.T) {
	rounds := parityRounds(t, 100)
	for seed := 0; seed < rounds; seed++ {
		rng := rand.New(rand.NewSource(int64(9000 + seed)))
		var p *Problem
		if seed%3 == 2 {
			p = randomSparseNetwork(rng, 8+rng.Intn(5), 3+rng.Intn(2), true)
		} else {
			p = randomBoundedProblem(rng, true)
		}
		exact, err := SolveILP(p, ILPOptions{})
		if err != nil {
			t.Fatalf("seed %d: exact: %v", seed, err)
		}
		cut, err := SolveILP(p, ILPOptions{RootCuts: true})
		if err != nil {
			t.Fatalf("seed %d: rootcuts: %v", seed, err)
		}
		if exact.Status != cut.Status {
			t.Fatalf("seed %d: status exact=%v cuts=%v", seed, exact.Status, cut.Status)
		}
		if exact.Status != StatusOptimal {
			continue
		}
		if (exact.Objective == nil) != (cut.Objective == nil) ||
			(exact.Objective != nil && exact.Objective.Cmp(cut.Objective) != 0) {
			t.Fatalf("seed %d: objective exact=%v cuts=%v", seed, exact.Objective, cut.Objective)
		}
		if err := p.Check(cut.Values); err != nil {
			t.Fatalf("seed %d: cut solution infeasible: %v", seed, err)
		}
	}
}

// TestRevisedParityCutValidity fuzzes the one invariant every cut family
// must keep: no separated cut may exclude the known integer optimum of the
// uncut problem.
func TestRevisedParityCutValidity(t *testing.T) {
	rounds := parityRounds(t, 150)
	checked := 0
	for seed := 0; seed < rounds; seed++ {
		rng := rand.New(rand.NewSource(int64(10000 + seed)))
		var p *Problem
		if seed%2 == 1 {
			p = randomSparseNetwork(rng, 8+rng.Intn(5), 3+rng.Intn(2), true)
		} else {
			p = randomBoundedProblem(rng, true)
		}
		exact, err := SolveILP(p, ILPOptions{})
		if err != nil {
			t.Fatalf("seed %d: exact: %v", seed, err)
		}
		if exact.Status != StatusOptimal {
			continue
		}
		for _, cut := range separateRootCuts(p, nil) {
			lhs := new(big.Rat)
			tmp := new(big.Rat)
			for _, term := range cut.Terms {
				lhs.Add(lhs, tmp.Mul(term.Coef, exact.Values[term.Var]))
			}
			violated := false
			switch cut.Sense {
			case LE:
				violated = lhs.Cmp(cut.RHS) > 0
			case GE:
				violated = lhs.Cmp(cut.RHS) < 0
			case EQ:
				violated = lhs.Cmp(cut.RHS) != 0
			}
			if violated {
				t.Fatalf("seed %d: cut %q excludes the integer optimum: lhs=%s %s rhs=%s",
					seed, cut.Name, lhs, cut.Sense, cut.RHS)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("fuzz separated no cuts at all; corpus or separator regressed")
	}
}

// TestHybridDisagreementFallback fault-injects wrong float bases into the
// exact verifier. A structurally invalid snapshot must be rejected
// outright (nil); a valid-shaped but wrong snapshot may be rejected OR
// repaired, but anything the verifier does return must be bit-identical to
// the exact-only answer — that is the whole hybrid contract.
func TestHybridDisagreementFallback(t *testing.T) {
	rounds := parityRounds(t, 60)
	repaired, rejected := 0, 0
	for seed := 0; seed < rounds; seed++ {
		rng := rand.New(rand.NewSource(int64(11000 + seed)))
		p := randomSparseNetwork(rng, 9+rng.Intn(5), 3+rng.Intn(2), false)
		exact, err := SolveLPWith(p, SolveOptions{})
		if err != nil {
			t.Fatalf("seed %d: exact: %v", seed, err)
		}
		ft := newRevisedFloat(p)
		lo, hi := declaredBounds(p)
		if ft.solveNode(lo, hi) != StatusOptimal {
			continue
		}
		basis, stat := ft.basisState()

		// Corruption 1: duplicate basis column — must be rejected.
		dup := append([]int(nil), basis...)
		if len(dup) >= 2 {
			dupStat := append([]vstat(nil), stat...)
			dupStat[dup[1]] = nbLower
			dup[1] = dup[0]
			if sol := verifyFloatBasis(p, dup, dupStat, nil); sol != nil {
				t.Fatalf("seed %d: duplicate-column basis was accepted", seed)
			}
		}

		// Corruption 2: swap a basic column with a nonbasic structural one,
		// keeping the snapshot structurally valid. The verifier may reject
		// (singular / un-homeable) or repair via dual pivots; a repaired
		// answer must be certified and therefore bit-identical.
		bad := append([]int(nil), basis...)
		badStat := append([]vstat(nil), stat...)
		swapped := false
		for j := 0; j < len(p.Vars) && !swapped; j++ {
			if badStat[j] != nbLower {
				continue
			}
			old := bad[0]
			bad[0] = j
			badStat[j] = inBasis
			badStat[old] = nbLower
			swapped = true
		}
		if !swapped {
			continue
		}
		sol := verifyFloatBasis(p, bad, badStat, nil)
		if sol == nil {
			rejected++
			continue
		}
		repaired++
		requireSameSolution(t, "fault-injected", exact, sol)
	}
	if repaired+rejected == 0 {
		t.Fatal("fault injection never ran; corpus regressed")
	}
}

// TestFloatRevisedPartialLP sanity-checks the partial-pricing float engine
// against the exact optimum: same status and an objective within float
// tolerance, on networks large enough to route to the revised
// representation.
func TestFloatRevisedPartialLP(t *testing.T) {
	rounds := parityRounds(t, 40)
	for seed := 0; seed < rounds; seed++ {
		rng := rand.New(rand.NewSource(int64(12000 + seed)))
		p := randomSparseNetwork(rng, 12+rng.Intn(6), 4+rng.Intn(3), false)
		if floatPick(p, SimplexAuto, 0) != SimplexRevised {
			t.Fatalf("seed %d: network too small to exercise the revised float engine", seed)
		}
		exact, err := SolveLP(p)
		if err != nil {
			t.Fatalf("seed %d: exact: %v", seed, err)
		}
		fl, err := SolveLPFloatWith(p, SolveOptions{Simplex: SimplexRevised})
		if err != nil {
			t.Fatalf("seed %d: float: %v", seed, err)
		}
		if exact.Status != fl.Status {
			t.Fatalf("seed %d: status exact=%v float=%v", seed, exact.Status, fl.Status)
		}
		if exact.Status != StatusOptimal {
			continue
		}
		want, _ := exact.Objective.Float64()
		got, _ := fl.Objective.Float64()
		diff := want - got
		if diff < 0 {
			diff = -diff
		}
		scale := 1.0
		if want > 1 || want < -1 {
			if want < 0 {
				scale = -want
			} else {
				scale = want
			}
		}
		if diff > 1e-6*scale {
			t.Fatalf("seed %d: objective exact=%g float=%g", seed, want, got)
		}
	}
}
