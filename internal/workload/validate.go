package workload

import (
	"errors"
	"fmt"

	"repro/internal/warehouse"
)

// ErrInvalidDemand is the sentinel every demand-construction rejection
// wraps; callers gate on it with errors.Is and inspect the typed
// *DemandError for the offending entry.
var ErrInvalidDemand = errors.New("workload: invalid demand")

// DemandError reports one rejected demand entry: which product, how many
// units, and why. It wraps ErrInvalidDemand so the taxonomy stays
// errors.Is-testable while the fields stay inspectable.
type DemandError struct {
	Product warehouse.ProductID
	Units   int
	Reason  string // "non-positive units" | "duplicate product" | "unknown product"
}

func (e *DemandError) Error() string {
	return fmt.Sprintf("workload: product %d (%d units): %s", e.Product, e.Units, e.Reason)
}

func (e *DemandError) Unwrap() error { return ErrInvalidDemand }

// Entry is one explicit demand: Units of Product.
type Entry struct {
	Product warehouse.ProductID
	Units   int
}

// FromEntries builds a workload from explicit per-product entries,
// validating at construction instead of failing deep inside synthesis:
// entries demanding zero or negative units, naming a product twice, or
// naming a product outside the warehouse are rejected with a *DemandError
// (wrapping ErrInvalidDemand). Stock coverage is still checked by
// warehouse.NewWorkload, so an over-stock demand fails here too, just with
// the warehouse's own message.
func FromEntries(w *warehouse.Warehouse, entries []Entry) (warehouse.Workload, error) {
	units := make([]int, w.NumProducts)
	seen := make(map[warehouse.ProductID]bool, len(entries))
	for _, e := range entries {
		if int(e.Product) < 0 || int(e.Product) >= w.NumProducts {
			return warehouse.Workload{}, &DemandError{Product: e.Product, Units: e.Units, Reason: "unknown product"}
		}
		if e.Units <= 0 {
			return warehouse.Workload{}, &DemandError{Product: e.Product, Units: e.Units, Reason: "non-positive units"}
		}
		if seen[e.Product] {
			return warehouse.Workload{}, &DemandError{Product: e.Product, Units: e.Units, Reason: "duplicate product"}
		}
		seen[e.Product] = true
		units[e.Product] = e.Units
	}
	return warehouse.NewWorkload(w, units)
}
