package lp

import (
	"math"
	"math/big"
)

// rat64 is an exact rational with int64 numerator and denominator: the
// small-rational fast path of the exact engine. Contract tableaus almost
// never leave machine words, so pivoting on rat64 values avoids the heap
// churn of big.Rat entirely. Every operation that would overflow an int64
// panics with rat64Overflow; the solver entry points catch the panic and
// transparently re-run the whole solve over big.Rat (see promote()).
//
// Invariants: d > 0 and gcd(|n|, d) == 1.
type rat64 struct{ n, d int64 }

// rat64Overflow is the panic payload signalling promotion to big.Rat.
type rat64Overflow struct{}

// promote runs f, converting a rat64 overflow panic into ok=false so the
// caller can retry with the big.Rat engine. Other panics pass through.
func promote(f func()) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, is := r.(rat64Overflow); is {
				ok = false
				return
			}
			panic(r)
		}
	}()
	f()
	return true
}

func chkAdd64(a, b int64) int64 {
	c := a + b
	if (b > 0 && c < a) || (b < 0 && c > a) {
		panic(rat64Overflow{})
	}
	return c
}

func chkMul64(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	c := a * b
	if c/b != a || (a == math.MinInt64 && b == -1) || (b == math.MinInt64 && a == -1) {
		panic(rat64Overflow{})
	}
	return c
}

func chkNeg64(a int64) int64 {
	if a == math.MinInt64 {
		panic(rat64Overflow{})
	}
	return -a
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func abs64(a int64) int64 {
	if a < 0 {
		return chkNeg64(a)
	}
	return a
}

// makeRat64 normalizes n/d into the canonical reduced form.
func makeRat64(n, d int64) rat64 {
	if d == 0 {
		panic("lp: rat64 division by zero")
	}
	if d < 0 {
		n, d = chkNeg64(n), chkNeg64(d)
	}
	if n == 0 {
		return rat64{0, 1}
	}
	g := gcd64(abs64(n), d)
	return rat64{n / g, d / g}
}

// rat64Arith implements arith[rat64].
type rat64Arith struct{}

func (rat64Arith) add(a, b rat64) rat64 {
	if a.n == 0 {
		return b
	}
	if b.n == 0 {
		return a
	}
	g := gcd64(a.d, b.d)
	bd := b.d / g
	n := chkAdd64(chkMul64(a.n, bd), chkMul64(b.n, a.d/g))
	return makeRat64(n, chkMul64(a.d, bd))
}

func (ra rat64Arith) sub(a, b rat64) rat64 { return ra.add(a, rat64{chkNeg64(b.n), b.d}) }

func (rat64Arith) mul(a, b rat64) rat64 {
	if a.n == 0 || b.n == 0 {
		return rat64{0, 1}
	}
	// Cross-reduce before multiplying to keep intermediates small.
	g1 := gcd64(abs64(a.n), b.d)
	g2 := gcd64(abs64(b.n), a.d)
	return rat64{chkMul64(a.n/g1, b.n/g2), chkMul64(a.d/g2, b.d/g1)}
}

func (ra rat64Arith) div(a, b rat64) rat64 {
	if b.n == 0 {
		panic("lp: rat64 division by zero")
	}
	inv := rat64{b.d, b.n}
	if inv.d < 0 {
		inv.n, inv.d = chkNeg64(inv.n), chkNeg64(inv.d)
	}
	return ra.mul(a, inv)
}

func (rat64Arith) neg(a rat64) rat64 { return rat64{chkNeg64(a.n), a.d} }

func (rat64Arith) sign(a rat64) int {
	switch {
	case a.n > 0:
		return 1
	case a.n < 0:
		return -1
	}
	return 0
}

func (ra rat64Arith) cmp(a, b rat64) int {
	// a.n/a.d - b.n/b.d has the sign of a.n*b.d - b.n*a.d (denominators > 0).
	return ra.sign(rat64{chkAdd64(chkMul64(a.n, b.d), chkNeg64(chkMul64(b.n, a.d))), 1})
}

func (rat64Arith) zero() rat64 { return rat64{0, 1} }
func (rat64Arith) one() rat64  { return rat64{1, 1} }

func (rat64Arith) fromRat(r *big.Rat) rat64 {
	num, den := r.Num(), r.Denom()
	if !num.IsInt64() || !den.IsInt64() {
		panic(rat64Overflow{})
	}
	return rat64{num.Int64(), den.Int64()} // big.Rat is already reduced
}

func (rat64Arith) toRat(a rat64) *big.Rat { return new(big.Rat).SetFrac64(a.n, a.d) }

func (rat64Arith) setRat(dst *big.Rat, a rat64) { dst.SetFrac64(a.n, a.d) }

func (rat64Arith) isInt(a rat64) bool { return a.d == 1 }
