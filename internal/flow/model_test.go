package flow

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/grid"
	"repro/internal/testmaps"
	"repro/internal/traffic"
	"repro/internal/warehouse"
)

// TestContractModelMatchesScratch drives one ContractModel through the
// kinds of re-solves the pipeline issues — horizon probes, workload
// changes (including support changes), both ILP engines — and pins every
// answer bit-identical to a from-scratch SynthesizeContract.
func TestContractModelMatchesScratch(t *testing.T) {
	w, s := testmaps.MustRing()
	cm := &ContractModel{}
	cases := []struct {
		units []int
		T     int
		exact bool
	}{
		{[]int{8, 5}, 1600, false},
		{[]int{8, 5}, 1200, false}, // horizon probe: qc/qeff retarget only
		{[]int{8, 5}, 800, false},
		{[]int{4, 0}, 1600, false}, // support change: workload contract recompiles
		{[]int{6, 4}, 1600, true},  // engine change on the cached model
		{[]int{8, 5}, 1600, false}, // back to the original support
	}
	for i, tc := range cases {
		wl, err := warehouse.NewWorkload(w, tc.units)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		opts := Options{ExactILP: tc.exact}
		got, gotErr := cm.Synthesize(context.Background(), s, wl, tc.T, opts)
		want, wantErr := SynthesizeContract(context.Background(), s, wl, tc.T, opts)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("case %d: model err %v, scratch err %v", i, gotErr, wantErr)
		}
		if gotErr != nil {
			continue
		}
		if !reflect.DeepEqual(got.F, want.F) || !reflect.DeepEqual(got.Fin, want.Fin) ||
			!reflect.DeepEqual(got.Fout, want.Fout) || !reflect.DeepEqual(got.Quota, want.Quota) {
			t.Errorf("case %d: model flow set differs from scratch", i)
		}
		if got.Tc != want.Tc || got.Qc != want.Qc || got.QEff != want.QEff {
			t.Errorf("case %d: periods differ: model %d/%d/%d, scratch %d/%d/%d",
				i, got.Tc, got.Qc, got.QEff, want.Tc, want.Qc, want.QEff)
		}
	}
}

// A lifelong-style epoch builds a fresh system over depleted stock: the
// structure signature matches, so the model reuses its compilation, yet the
// fincap retarget must pick up the new UNITS_AT values.
func TestContractModelTracksStockAcrossSystems(t *testing.T) {
	w, s := testmaps.MustRing()
	cm := &ContractModel{}
	wl, err := warehouse.NewWorkload(w, []int{8, 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cm.Synthesize(context.Background(), s, wl, 1600, Options{}); err != nil {
		t.Fatal(err)
	}
	// Deplete product 0 and rebuild the same floorplan, as lifelong.Run does.
	stock := [][]int{{7, 0}, {0, 290}}
	w2, err := warehouse.New(w.Graph, w.ShelfAccess, w.Stations, 2, stock)
	if err != nil {
		t.Fatal(err)
	}
	paths := make([][]grid.VertexID, len(s.Components))
	for i, c := range s.Components {
		paths[i] = c.Cells
	}
	s2, err := traffic.Build(w2, paths)
	if err != nil {
		t.Fatal(err)
	}
	if s.StructureSignature() != s2.StructureSignature() {
		t.Fatal("depleted-stock rebuild changed the structure signature")
	}
	wl2, err := warehouse.NewWorkload(w2, []int{7, 5})
	if err != nil {
		t.Fatal(err)
	}
	got, gotErr := cm.Synthesize(context.Background(), s2, wl2, 1600, Options{})
	want, wantErr := SynthesizeContract(context.Background(), s2, wl2, 1600, Options{})
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("model err %v, scratch err %v", gotErr, wantErr)
	}
	if gotErr == nil && (!reflect.DeepEqual(got.F, want.F) || !reflect.DeepEqual(got.Fin, want.Fin) ||
		!reflect.DeepEqual(got.Fout, want.Fout) || !reflect.DeepEqual(got.Quota, want.Quota)) {
		t.Error("model flow set differs from scratch on the depleted system")
	}
}

// Admit through the model must return the same certificate as the
// from-scratch admission test, across feasible and infeasible horizons —
// the infeasible side is decided by warm dual reentry on the cached model.
func TestContractModelAdmitMatchesScratch(t *testing.T) {
	w, s := testmaps.MustRing()
	cm := &ContractModel{}
	for _, tc := range []struct {
		units []int
		T     int
	}{
		{[]int{8, 5}, 1600},
		{[]int{300, 300}, 400}, // overloaded: LP certificate fires
		{[]int{8, 5}, 100},     // below one cycle period
		{[]int{8, 5}, 1600},
	} {
		wl, err := warehouse.NewWorkload(w, tc.units)
		if err != nil {
			t.Fatal(err)
		}
		got, gotErr := cm.Admit(context.Background(), s, wl, tc.T, Options{})
		want, wantErr := Admit(context.Background(), s, wl, tc.T, Options{})
		if (gotErr == nil) != (wantErr == nil) || got != want {
			t.Errorf("units=%v T=%d: model (%v, %v), scratch (%v, %v)",
				tc.units, tc.T, got, gotErr, want, wantErr)
		}
	}
}
