// Package warehouse implements the automated-warehouse model of §III of
// Leet et al. (DATE 2023): the 5-tuple W = (G, S, R, ρ, Λ), workloads, and
// T-timestep plans with the paper's three feasibility conditions.
package warehouse

import (
	"fmt"

	"repro/internal/grid"
)

// ProductID indexes the product vector ρ. The sentinel NoProduct (ρ0 in the
// paper) means "agent carries nothing".
type ProductID int

// NoProduct is ρ0: the empty-handed marker.
const NoProduct ProductID = -1

// Warehouse is the 5-tuple W := (G, S, R, ρ, Λ).
type Warehouse struct {
	// Graph is the floorplan graph G = (V, E).
	Graph *grid.Grid
	// ShelfAccess lists S ⊂ V, vertices from which an agent can access a
	// shelf. Order is significant: it is the column index of Λ.
	ShelfAccess []grid.VertexID
	// Stations lists R ⊂ V, vertices where workers unload agents.
	Stations []grid.VertexID
	// NumProducts is |ρ|. Products are identified by 0..NumProducts-1.
	NumProducts int
	// Stock is the location matrix Λ: Stock[k][l] is the number of units of
	// product k available at shelf-access vertex ShelfAccess[l]. A row may be
	// nil, meaning the product is stocked nowhere.
	Stock [][]int

	shelfCol  []int32 // vertex -> column of Λ, -1 if v ∉ S
	isStation []bool  // vertex -> v ∈ R
}

// New validates and indexes a warehouse description.
func New(g *grid.Grid, shelfAccess, stations []grid.VertexID, numProducts int, stock [][]int) (*Warehouse, error) {
	if g == nil {
		return nil, fmt.Errorf("warehouse: nil grid")
	}
	if numProducts < 0 {
		return nil, fmt.Errorf("warehouse: negative product count %d", numProducts)
	}
	if len(stock) != numProducts {
		return nil, fmt.Errorf("warehouse: stock has %d rows, want %d", len(stock), numProducts)
	}
	w := &Warehouse{
		Graph:       g,
		ShelfAccess: shelfAccess,
		Stations:    stations,
		NumProducts: numProducts,
		Stock:       stock,
		shelfCol:    make([]int32, g.NumVertices()),
		isStation:   make([]bool, g.NumVertices()),
	}
	for i := range w.shelfCol {
		w.shelfCol[i] = -1
	}
	for i, v := range shelfAccess {
		if v < 0 || int(v) >= g.NumVertices() {
			return nil, fmt.Errorf("warehouse: shelf access vertex %d out of range", v)
		}
		if w.shelfCol[v] >= 0 {
			return nil, fmt.Errorf("warehouse: duplicate shelf access vertex %d", v)
		}
		w.shelfCol[v] = int32(i)
	}
	for _, v := range stations {
		if v < 0 || int(v) >= g.NumVertices() {
			return nil, fmt.Errorf("warehouse: station vertex %d out of range", v)
		}
		if w.isStation[v] {
			return nil, fmt.Errorf("warehouse: duplicate station vertex %d", v)
		}
		if w.shelfCol[v] >= 0 {
			return nil, fmt.Errorf("warehouse: vertex %d is both shelf access and station", v)
		}
		w.isStation[v] = true
	}
	for k, row := range stock {
		if row == nil {
			continue
		}
		if len(row) != len(shelfAccess) {
			return nil, fmt.Errorf("warehouse: stock row %d has %d columns, want %d", k, len(row), len(shelfAccess))
		}
		for l, units := range row {
			if units < 0 {
				return nil, fmt.Errorf("warehouse: negative stock Λ[%d][%d] = %d", k, l, units)
			}
		}
	}
	return w, nil
}

// IsStation reports whether v ∈ R.
func (w *Warehouse) IsStation(v grid.VertexID) bool {
	return v >= 0 && int(v) < len(w.isStation) && w.isStation[v]
}

// ShelfColumn returns the Λ column of shelf-access vertex v, or -1 if v ∉ S.
func (w *Warehouse) ShelfColumn(v grid.VertexID) int {
	if v < 0 || int(v) >= len(w.shelfCol) {
		return -1
	}
	return int(w.shelfCol[v])
}

// UnitsAt returns Λ[k][column of v]: the stock of product k at shelf-access
// vertex v, or 0 if v ∉ S or the product is unstocked.
func (w *Warehouse) UnitsAt(v grid.VertexID, k ProductID) int {
	col := w.ShelfColumn(v)
	if col < 0 || k < 0 || int(k) >= w.NumProducts {
		return 0
	}
	row := w.Stock[k]
	if row == nil {
		return 0
	}
	return row[col]
}

// ProductsAt returns PRODUCTS_AT(v): the products with positive stock at v.
func (w *Warehouse) ProductsAt(v grid.VertexID) []ProductID {
	col := w.ShelfColumn(v)
	if col < 0 {
		return nil
	}
	var out []ProductID
	for k := 0; k < w.NumProducts; k++ {
		if row := w.Stock[k]; row != nil && row[col] > 0 {
			out = append(out, ProductID(k))
		}
	}
	return out
}

// TotalStock returns the total units of product k across all shelves.
func (w *Warehouse) TotalStock(k ProductID) int {
	if k < 0 || int(k) >= w.NumProducts {
		return 0
	}
	row := w.Stock[k]
	total := 0
	for _, u := range row {
		total += u
	}
	return total
}

// Workload is the demand vector w: Units[k] units of product k must reach a
// station.
type Workload struct {
	Units []int
}

// NewWorkload validates a demand vector against the warehouse: demands must
// be non-negative, one per product, and not exceed total stock.
func NewWorkload(w *Warehouse, units []int) (Workload, error) {
	if len(units) != w.NumProducts {
		return Workload{}, fmt.Errorf("workload: %d demands for %d products", len(units), w.NumProducts)
	}
	for k, u := range units {
		if u < 0 {
			return Workload{}, fmt.Errorf("workload: negative demand %d for product %d", u, k)
		}
		if stock := w.TotalStock(ProductID(k)); u > stock {
			return Workload{}, fmt.Errorf("workload: demand %d for product %d exceeds stock %d", u, k, stock)
		}
	}
	return Workload{Units: append([]int(nil), units...)}, nil
}

// TotalUnits returns Σk w_k, the units-moved figure reported in Table I.
func (wl Workload) TotalUnits() int {
	total := 0
	for _, u := range wl.Units {
		total += u
	}
	return total
}

// AgentState is (π, φ): an agent's vertex and carried product at one step.
type AgentState struct {
	Vertex  grid.VertexID
	Carried ProductID
}

// Plan is a T-timestep plan (π, φ) for c agents: States[i][t] is agent i's
// state at timestep t (0-based; the paper's t ∈ [1, T] maps to t-1 here).
type Plan struct {
	States [][]AgentState
}

// NumAgents returns c, the team size.
func (p *Plan) NumAgents() int { return len(p.States) }

// Horizon returns T, the number of timesteps.
func (p *Plan) Horizon() int {
	if len(p.States) == 0 {
		return 0
	}
	return len(p.States[0])
}
