package wsp

import (
	"context"
	"io"

	"repro/internal/calibrate"
	"repro/internal/datasets"
)

// The scenario corpus: seeded deterministic generator families (stripes
// sweeps, perimeter rings, demand traces, MovingAI map imports) plus the
// corpus runner and knob calibration stages that measure them. These are
// thin re-exports of internal/datasets and internal/calibrate so CLI and
// service code keeps importing only the facade.

// CorpusInstance is one named, reproducible corpus scenario.
type CorpusInstance = datasets.Instance

// CorpusFamily is one generator family of the corpus.
type CorpusFamily = datasets.Family

// CorpusFamilies lists the registered generator families in deterministic
// order.
func CorpusFamilies() []CorpusFamily { return datasets.Families() }

// CorpusFamilyNames lists the family names in deterministic order.
func CorpusFamilyNames() []string { return datasets.FamilyNames() }

// GenerateCorpus enumerates the corpus for a seed — every family, or just
// the named ones. The same seed always produces byte-identical instances.
func GenerateCorpus(seed int64, families ...string) ([]*CorpusInstance, error) {
	return datasets.Generate(seed, families...)
}

// CorpusKnobs is one solver configuration under corpus measurement.
type CorpusKnobs = calibrate.Knobs

// CorpusVerdict classifies how one corpus solve ended.
type CorpusVerdict = calibrate.Verdict

// Corpus verdicts.
const (
	CorpusSolved     = calibrate.VerdictSolved
	CorpusInfeasible = calibrate.VerdictInfeasible
	CorpusHorizon    = calibrate.VerdictHorizon
	CorpusBudget     = calibrate.VerdictBudget
	CorpusCanceled   = calibrate.VerdictCanceled
	CorpusError      = calibrate.VerdictError
)

// CorpusReport is one corpus run's JSON-serializable result.
type CorpusReport = calibrate.Report

// RunCorpus solves every instance under k and aggregates per-family
// solve rates, verdicts, latency percentiles and deterministic work.
func RunCorpus(ctx context.Context, insts []*CorpusInstance, k CorpusKnobs, label string, seed int64) *CorpusReport {
	return calibrate.Run(ctx, insts, k, label, seed)
}

// WriteCorpusBenchLines renders a report as `go test -bench`-style lines
// for the scripts/benchjson trajectory tooling.
func WriteCorpusBenchLines(w io.Writer, rep *CorpusReport) error {
	return calibrate.WriteBenchLines(w, rep)
}

// CalibrationSpec is a knob grid to search over the corpus.
type CalibrationSpec = calibrate.Spec

// CalibrationTable is a scored calibration result, best candidate first.
type CalibrationTable = calibrate.Table

// CalibrateCorpus grid-searches knob defaults over the corpus. Scoring
// uses only deterministic quantities (verdicts and work), so the same
// corpus and spec always produce the same recommendation.
func CalibrateCorpus(ctx context.Context, insts []*CorpusInstance, spec CalibrationSpec) (*CalibrationTable, error) {
	return calibrate.Calibrate(ctx, insts, spec)
}
