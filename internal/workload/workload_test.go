package workload

import (
	"math/rand"
	"testing"

	"repro/internal/grid"
	"repro/internal/warehouse"
)

// smallWarehouse has 3 products with stocks 40, 40, 10.
func smallWarehouse(t *testing.T) *warehouse.Warehouse {
	t.Helper()
	g, _, _, err := grid.Parse("...")
	if err != nil {
		t.Fatal(err)
	}
	access := []grid.VertexID{g.At(grid.Coord{X: 0, Y: 0}), g.At(grid.Coord{X: 1, Y: 0})}
	stock := [][]int{{20, 20}, {40, 0}, {10, 0}}
	w, err := warehouse.New(g, access, nil, 3, stock)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestUniformSpreadsEvenly(t *testing.T) {
	w := smallWarehouse(t)
	wl, err := Uniform(w, 30)
	if err != nil {
		t.Fatal(err)
	}
	if wl.TotalUnits() != 30 {
		t.Errorf("total = %d, want 30", wl.TotalUnits())
	}
	for k, u := range wl.Units {
		if u != 10 {
			t.Errorf("product %d demand = %d, want 10", k, u)
		}
	}
}

func TestUniformRemainderGoesToLowProducts(t *testing.T) {
	w := smallWarehouse(t)
	wl, err := Uniform(w, 31)
	if err != nil {
		t.Fatal(err)
	}
	if wl.Units[0] != 11 || wl.Units[1] != 10 || wl.Units[2] != 10 {
		t.Errorf("units = %v, want [11 10 10]", wl.Units)
	}
}

func TestUniformClampsByStock(t *testing.T) {
	w := smallWarehouse(t)
	// 75 over 3 products = 25 each, but product 2 stocks only 10; overflow
	// must land on products with headroom.
	wl, err := Uniform(w, 75)
	if err != nil {
		t.Fatal(err)
	}
	if wl.TotalUnits() != 75 {
		t.Errorf("total = %d, want 75", wl.TotalUnits())
	}
	if wl.Units[2] > 10 {
		t.Errorf("product 2 demand %d exceeds stock 10", wl.Units[2])
	}
}

func TestUniformRejectsOverStock(t *testing.T) {
	w := smallWarehouse(t)
	if _, err := Uniform(w, 91); err == nil { // total stock is 90
		t.Error("over-stock workload accepted")
	}
}

func TestUniformNoProducts(t *testing.T) {
	g, _, _, err := grid.Parse("...")
	if err != nil {
		t.Fatal(err)
	}
	w, err := warehouse.New(g, nil, nil, 0, [][]int{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Uniform(w, 1); err == nil {
		t.Error("workload on product-less warehouse accepted")
	}
}

func TestSkewedHeadHeavyAndStockSafe(t *testing.T) {
	w := smallWarehouse(t)
	rng := rand.New(rand.NewSource(7))
	wl, err := Skewed(w, 60, rng)
	if err != nil {
		t.Fatal(err)
	}
	if wl.TotalUnits() != 60 {
		t.Errorf("total = %d, want 60", wl.TotalUnits())
	}
	for k, u := range wl.Units {
		if u > w.TotalStock(warehouse.ProductID(k)) {
			t.Errorf("product %d demand %d exceeds stock", k, u)
		}
	}
	// Zipf-like: product 0 should not be the least demanded.
	if wl.Units[0] < wl.Units[2] {
		t.Errorf("head product demand %d below tail %d", wl.Units[0], wl.Units[2])
	}
}

func TestSkewedOverStock(t *testing.T) {
	w := smallWarehouse(t)
	rng := rand.New(rand.NewSource(7))
	if _, err := Skewed(w, 91, rng); err == nil {
		t.Error("over-stock skewed workload accepted")
	}
}

func TestSingle(t *testing.T) {
	w := smallWarehouse(t)
	wl, err := Single(w, 1, 15)
	if err != nil {
		t.Fatal(err)
	}
	if wl.Units[0] != 0 || wl.Units[1] != 15 || wl.Units[2] != 0 {
		t.Errorf("units = %v", wl.Units)
	}
	if _, err := Single(w, 9, 1); err == nil {
		t.Error("out-of-range product accepted")
	}
	if _, err := Single(w, 1, 999); err == nil {
		t.Error("over-stock single workload accepted")
	}
}
