// Lifelong operation: workload batches arrive over the day; the controller
// re-synthesizes cycle sets per epoch, stock depletes, and we also inject an
// agent failure into one epoch's plan to measure the degradation — the
// operational questions a deployed system faces beyond the one-shot WSP.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/wsp"
)

func main() {
	ctx := context.Background()
	m, err := wsp.SortingCenter()
	if err != nil {
		log.Fatal(err)
	}
	solver := wsp.New()

	// Three waves of packages, released over a 10,800-step shift.
	unit := func(per int) []int {
		u := make([]int, m.W.NumProducts)
		for k := range u {
			u[k] = per
		}
		return u
	}
	batches := []wsp.Batch{
		{Release: 0, Units: unit(4)},
		{Release: 3000, Units: unit(5)},
		{Release: 6000, Units: unit(3)},
	}
	rep, err := solver.Lifelong(ctx, m.S, batches, 10800)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lifelong run: %d epochs, peak team %d agents\n", rep.Epochs, rep.PeakAgents)
	for i, b := range rep.Batches {
		fmt.Printf("  batch %d: released t=%5d, %3d units, completed t=%d (latency %d)\n",
			i, b.Release, b.Units, b.Completed, b.Completed-b.Release)
	}

	// Failure injection: solve one instance, then replay its plan under the
	// minimal-communication policy with an agent frozen mid-run.
	wl, err := wsp.UniformWorkload(m.W, 320)
	if err != nil {
		log.Fatal(err)
	}
	res, err := solver.Solve(ctx, wsp.Instance{System: m.S, Workload: wl, Horizon: 3600})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfailure injection on a %d-agent plan (nominal makespan %d):\n",
		res.Stats.Agents, res.Sim.ServicedAt)
	for _, dur := range []int{0, 60, 240, 960} {
		var failures []wsp.Failure
		label := "none"
		if dur > 0 {
			failures = []wsp.Failure{{Agent: 0, At: 100, Duration: dur}}
			label = fmt.Sprintf("agent 0 frozen %d steps", dur)
		}
		ex, err := wsp.ExecuteMCP(m.W, res.Plan, wl, failures, 6*3600)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-26s serviced@%5d  waits=%6d  stalled=%v\n",
			label, ex.ServicedAt, ex.Waits, ex.Stalled)
	}
}
