// Command benchjson converts `go test -bench` output (read from stdin) into
// a JSON snapshot and appends it to a trajectory file, so successive PRs
// can compare perf against every recorded predecessor.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkTableI$|BenchmarkSolveBatch' -benchmem . |
//	    go run ./scripts/benchjson -o BENCH_table1.json -label my-change
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Bench is one benchmark's parsed result line.
type Bench struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is one benchmarking session.
type Snapshot struct {
	Label      string           `json:"label"`
	Date       string           `json:"date"`
	CPU        string           `json:"cpu,omitempty"`
	Benchmarks map[string]Bench `json:"benchmarks"`
}

// File is the trajectory file layout.
type File struct {
	Unit      map[string]string `json:"unit"`
	Snapshots []Snapshot        `json:"snapshots"`
}

func main() {
	out := flag.String("o", "BENCH_table1.json", "trajectory file to append to")
	label := flag.String("label", "", "snapshot label (required)")
	flag.Parse()
	if *label == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -label is required")
		os.Exit(2)
	}

	snap := Snapshot{
		Label:      *label,
		Date:       time.Now().UTC().Format("2006-01-02"),
		Benchmarks: map[string]Bench{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the run stays visible
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			snap.CPU = strings.TrimSpace(cpu)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		b := Bench{}
		name := fields[0]
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				v := val
				b.BytesPerOp = &v
			case "allocs/op":
				v := val
				b.AllocsPerOp = &v
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = val
			}
		}
		snap.Benchmarks[name] = b
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	f := File{Unit: map[string]string{
		"ns_per_op":     "nanoseconds per operation",
		"bytes_per_op":  "heap bytes per operation",
		"allocs_per_op": "heap allocations per operation",
	}}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s exists but is not a trajectory file: %v\n", *out, err)
			os.Exit(1)
		}
	}
	f.Snapshots = append(f.Snapshots, snap)
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: appended snapshot %q (%d benchmarks) to %s\n", *label, len(snap.Benchmarks), *out)
}
