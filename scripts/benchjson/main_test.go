package main

import (
	"io"
	"strings"
	"testing"
)

func TestNormalizeBenchName(t *testing.T) {
	cases := []struct{ in, want string }{
		// The GOMAXPROCS suffix is stripped, whatever the core count.
		{"BenchmarkTableI/SortingCenter_units=160-4", "BenchmarkTableI/SortingCenter_units=160"},
		{"BenchmarkLP/Exact/ring=4_products=2-128", "BenchmarkLP/Exact/ring=4_products=2"},
		// Single-core runs carry no suffix and pass through unchanged.
		{"BenchmarkTableI/SortingCenter_units=160", "BenchmarkTableI/SortingCenter_units=160"},
		// Hyphenated sub-benchmark names are not parallelism suffixes.
		{"BenchmarkLifelong/contract-ilp", "BenchmarkLifelong/contract-ilp"},
		{"BenchmarkSynthesizerAblation/contract-ilp-exact-dense", "BenchmarkSynthesizerAblation/contract-ilp-exact-dense"},
		{"BenchmarkLifelong/contract-ilp-8", "BenchmarkLifelong/contract-ilp"},
		// Corpus-report lines are synthetic (`wsp corpus run -bench`), not
		// go test output: trailing digits are instance identity
		// (bursty-0 vs bursty-1), never a GOMAXPROCS suffix.
		{"BenchmarkCorpus/family=demand/inst=bursty-0", "BenchmarkCorpus/family=demand/inst=bursty-0"},
		{"BenchmarkCorpus/family=demand/inst=bursty-1", "BenchmarkCorpus/family=demand/inst=bursty-1"},
	}
	for _, c := range cases {
		if got := normalizeBenchName(c.in); got != c.want {
			t.Errorf("normalizeBenchName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseBench(t *testing.T) {
	input := strings.Join([]string{
		"goos: linux",
		"goarch: amd64",
		"pkg: repro",
		"cpu: Intel(R) Xeon(R) CPU @ 2.20GHz",
		"BenchmarkTableI/SortingCenter_units=160-4         \t     100\t    123456 ns/op\t   2048 B/op\t      12 allocs/op",
		"BenchmarkSolveBatch/parallel=1-4                  \t     100\t   9876543 ns/op\t        42.5 solves/s",
		"BenchmarkLifelong/contract-ilp                    \t     100\t    555555 ns/op",
		"BenchmarkCorpus/family=demand/inst=bursty-1      \t       1\t   2500000 ns/op\t     42 work/op\t      1 solved",
		"PASS",
		"ok  \trepro\t1.234s",
	}, "\n")
	benchmarks, cpu, err := parseBench(strings.NewReader(input), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cpu != "Intel(R) Xeon(R) CPU @ 2.20GHz" {
		t.Errorf("cpu = %q", cpu)
	}
	if len(benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %v", len(benchmarks), benchmarks)
	}
	// The -4 suffix must be gone from stored names.
	b, ok := benchmarks["BenchmarkTableI/SortingCenter_units=160"]
	if !ok {
		t.Fatalf("suffixed name not normalized; have %v", benchmarks)
	}
	if b.NsPerOp != 123456 {
		t.Errorf("ns/op = %v", b.NsPerOp)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 2048 {
		t.Errorf("B/op = %v", b.BytesPerOp)
	}
	if b.AllocsPerOp == nil || *b.AllocsPerOp != 12 {
		t.Errorf("allocs/op = %v", b.AllocsPerOp)
	}
	if m := benchmarks["BenchmarkSolveBatch/parallel=1"].Metrics["solves/s"]; m != 42.5 {
		t.Errorf("solves/s metric = %v", m)
	}
	// An unsuffixed, hyphenated name survives untouched.
	if _, ok := benchmarks["BenchmarkLifelong/contract-ilp"]; !ok {
		t.Errorf("hyphenated name mangled; have %v", benchmarks)
	}
	// A corpus-report line keeps its instance digits and carries the
	// deterministic work and solved metrics.
	cb, ok := benchmarks["BenchmarkCorpus/family=demand/inst=bursty-1"]
	if !ok {
		t.Fatalf("corpus name mangled; have %v", benchmarks)
	}
	if cb.Metrics["work/op"] != 42 || cb.Metrics["solved"] != 1 {
		t.Errorf("corpus metrics = %v", cb.Metrics)
	}
}

// A multi-`-cpu` run collapses onto one normalized name; the first parsed
// occurrence wins — the same rule normalizeSnapshot applies on migration.
func TestParseBenchCPUCollision(t *testing.T) {
	input := "BenchmarkY-1 \t 10 \t 111 ns/op\nBenchmarkY-4 \t 10 \t 444 ns/op\n"
	benchmarks, _, err := parseBench(strings.NewReader(input), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(benchmarks) != 1 {
		t.Fatalf("have %v", benchmarks)
	}
	if benchmarks["BenchmarkY"].NsPerOp != 111 {
		t.Errorf("first occurrence did not win: %v", benchmarks)
	}
}

func TestAppendSnapshotRejectsDuplicateLabel(t *testing.T) {
	f := File{}
	if err := appendSnapshot(&f, Snapshot{Label: "pr-x", Date: "2026-07-01"}); err != nil {
		t.Fatal(err)
	}
	if err := appendSnapshot(&f, Snapshot{Label: "pr-y", Date: "2026-07-02"}); err != nil {
		t.Fatal(err)
	}
	err := appendSnapshot(&f, Snapshot{Label: "pr-x", Date: "2026-07-26"})
	if err == nil {
		t.Fatal("duplicate label accepted")
	}
	if !strings.Contains(err.Error(), "pr-x") || !strings.Contains(err.Error(), "2026-07-01") {
		t.Errorf("error should name the clashing label and its date: %v", err)
	}
	if len(f.Snapshots) != 2 {
		t.Errorf("rejected append still grew the trajectory to %d", len(f.Snapshots))
	}
}

func TestNormalizeSnapshotMigratesSuffixes(t *testing.T) {
	s := Snapshot{Benchmarks: map[string]Bench{
		"BenchmarkTableI/SortingCenter_units=160-8": {NsPerOp: 100},
		"BenchmarkLifelong/contract-ilp":            {NsPerOp: 200},
		// Collision after stripping: the alphabetically first original
		// name wins, deterministically.
		"BenchmarkX/sub-2": {NsPerOp: 1},
		"BenchmarkX/sub-4": {NsPerOp: 2},
	}}
	dropped := normalizeSnapshot(&s)
	if len(s.Benchmarks) != 3 {
		t.Fatalf("migrated to %d entries, want 3: %v", len(s.Benchmarks), s.Benchmarks)
	}
	if len(dropped) != 1 || dropped[0] != "BenchmarkX/sub-4" {
		t.Errorf("collision not reported for surfacing: dropped=%v", dropped)
	}
	if s.Benchmarks["BenchmarkTableI/SortingCenter_units=160"].NsPerOp != 100 {
		t.Errorf("suffix not migrated: %v", s.Benchmarks)
	}
	if s.Benchmarks["BenchmarkLifelong/contract-ilp"].NsPerOp != 200 {
		t.Errorf("unsuffixed entry disturbed: %v", s.Benchmarks)
	}
	if s.Benchmarks["BenchmarkX/sub"].NsPerOp != 1 {
		t.Errorf("collision not resolved deterministically: %v", s.Benchmarks)
	}
}

// TestComparePairsAcrossCoreCounts is the regression test for the suffix
// bug: a snapshot recorded on a 4-core machine (suffixed names) must pair
// with one recorded on a single-core machine (bare names) instead of
// reporting every benchmark as (gone)/(new).
func TestComparePairsAcrossCoreCounts(t *testing.T) {
	f := File{Snapshots: []Snapshot{
		{Label: "old", Date: "2026-07-01", Benchmarks: map[string]Bench{
			"BenchmarkTableI/SortingCenter_units=160-4": {NsPerOp: 200},
			"BenchmarkLP/Exact/ring=4_products=2-4":     {NsPerOp: 50},
		}},
		{Label: "new", Date: "2026-07-26", Benchmarks: map[string]Bench{
			"BenchmarkTableI/SortingCenter_units=160": {NsPerOp: 100},
			"BenchmarkLP/Exact/ring=4_products=2":     {NsPerOp: 25},
		}},
	}}
	// Loading a file normalizes every snapshot; compare runs on the
	// normalized view. Mimic the load step here.
	for i := range f.Snapshots {
		normalizeSnapshot(&f.Snapshots[i])
	}
	var buf strings.Builder
	if err := compareTable(f, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "(gone)") || strings.Contains(out, "(new)") {
		t.Fatalf("suffixed and bare names did not pair up:\n%s", out)
	}
	if !strings.Contains(out, "-50.0%") {
		t.Errorf("expected a -50%% delta line:\n%s", out)
	}
}

func TestCompareGeomeanRow(t *testing.T) {
	f := File{Snapshots: []Snapshot{
		{Label: "old", Date: "2026-08-01", Benchmarks: map[string]Bench{
			"BenchmarkA": {NsPerOp: 100},
			"BenchmarkB": {NsPerOp: 100},
			"BenchmarkC": {NsPerOp: 100}, // gone in new: must not count
		}},
		{Label: "new", Date: "2026-08-07", Benchmarks: map[string]Bench{
			"BenchmarkA": {NsPerOp: 50},  // ratio 0.5
			"BenchmarkB": {NsPerOp: 200}, // ratio 2.0
			"BenchmarkD": {NsPerOp: 10},  // new: must not count
		}},
	}}
	var buf strings.Builder
	if err := compareTable(f, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// geomean(0.5, 2.0) = 1.0 → +0.0% over the 2 paired benchmarks.
	if !strings.Contains(out, "geomean (2 paired)") || !strings.Contains(out, "+0.0%") {
		t.Errorf("expected a +0.0%% geomean row over 2 pairs:\n%s", out)
	}
}

func TestCompareNeedsTwoSnapshots(t *testing.T) {
	f := File{Snapshots: []Snapshot{{Label: "only", Benchmarks: map[string]Bench{}}}}
	if err := compareTable(f, io.Discard); err == nil {
		t.Fatal("compare with one snapshot should error")
	}
}
