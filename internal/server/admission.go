package server

import (
	"math"
	"sync"
	"time"
)

// Admission control: a request is admitted only if (1) an in-flight slot is
// free and (2) its client's token bucket covers the solve's work cost. Both
// checks are non-blocking — an over-admitted or over-budget request is
// rejected immediately with 429 + Retry-After, so load sheds at the door
// instead of queueing unboundedly in front of the solver pool.

// denial explains a rejected admission.
type denial struct {
	reason     string // "load" (semaphore full) or "budget" (bucket dry)
	retryAfter time.Duration
}

type admission struct {
	slots chan struct{} // buffered semaphore; len() = solves in flight
	buckets
}

func newAdmission(cfg Config) *admission {
	return &admission{
		slots: make(chan struct{}, cfg.MaxInFlight),
		buckets: buckets{
			rate:  float64(cfg.ClientRate),
			burst: float64(cfg.ClientBurst),
			max:   cfg.MaxClients,
			now:   cfg.Now,
			m:     make(map[string]*bucket),
		},
	}
}

// admit reserves a slot and charges cost work units to client. On success
// it returns a release closure (idempotence is the caller's duty — call it
// exactly once) and the post-admission occupancy in [0,1], the degradation
// ladder's load sample. On rejection release is nil and d explains why.
func (a *admission) admit(client string, cost int64) (release func(), occupancy float64, d *denial) {
	select {
	case a.slots <- struct{}{}:
	default:
		// Full house. The earliest a slot can free up is when one of the
		// in-flight solves finishes; one second is the honest "soon".
		return nil, 1, &denial{reason: "load", retryAfter: time.Second}
	}
	if ok, retry := a.take(client, float64(cost)); !ok {
		<-a.slots
		return nil, 0, &denial{reason: "budget", retryAfter: retry}
	}
	// The load sample is the occupancy this request FOUND on arrival
	// (itself excluded): serial traffic on an idle server reads 0 however
	// small MaxInFlight is, while sustained overlap — requests queueing on
	// top of each other — reads high. Saturation beyond the slot count
	// shows up as rejections, which the degrader weighs separately.
	occ := float64(len(a.slots)-1) / float64(cap(a.slots))
	return func() { <-a.slots }, occ, nil
}

// buckets is the per-client token-bucket table. Budgets are measured in
// the LP's deterministic MaxWork units — the one load currency that does
// not depend on machine speed — refilled at rate units/sec up to burst.
type buckets struct {
	mu    sync.Mutex
	rate  float64
	burst float64
	max   int
	now   func() time.Time
	m     map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// take charges cost to client's bucket. When the bucket is short it leaves
// the balance untouched and reports how long the refill needs to cover the
// deficit.
func (b *buckets) take(client string, cost float64) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	bk := b.m[client]
	if bk == nil {
		if len(b.m) >= b.max {
			b.evictStalest()
		}
		bk = &bucket{tokens: b.burst, last: now}
		b.m[client] = bk
	} else {
		dt := now.Sub(bk.last).Seconds()
		if dt > 0 {
			bk.tokens = math.Min(b.burst, bk.tokens+dt*b.rate)
		}
		bk.last = now
	}
	if bk.tokens >= cost {
		bk.tokens -= cost
		return true, 0
	}
	deficit := cost - bk.tokens
	retry := time.Duration(math.Ceil(deficit/b.rate)) * time.Second
	if retry < time.Second {
		retry = time.Second
	}
	return false, retry
}

// evictStalest drops the least-recently charged client so the table stays
// bounded under client-ID churn. Callers hold b.mu.
func (b *buckets) evictStalest() {
	var victim string
	var oldest time.Time
	first := true
	for id, bk := range b.m {
		if first || bk.last.Before(oldest) {
			victim, oldest, first = id, bk.last, false
		}
	}
	if !first {
		delete(b.m, victim)
	}
}
