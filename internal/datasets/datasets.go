// Package datasets is the scenario corpus: seeded, deterministic generator
// families that enumerate named, reproducible WSP instances far beyond the
// paper's nine Table I rows. Three kinds of family ship today:
//
//   - topology families ("stripes", "rings") sweep warehouse layouts
//     parametrically — the stripe-circulation generator of internal/maps
//     walked across stripe counts, aisle rows, corridor widths and
//     component-length caps, plus a perimeter-ring builder for the
//     minimal-circulation shapes the paper's Fig. 5 never visits;
//   - the demand family fixes one topology and sweeps workload shapes
//     (uniform, Zipf-skewed, bursty flash-sale, diurnal shift curve,
//     adversarial single-product spike) from internal/workload;
//   - the movingai family imports MAPF-literature grid maps through
//     grid.ParseMovingAI and co-designs a traffic system onto them
//     (movingai.go).
//
// Determinism contract: Generate(seed) is a pure function — the same seed
// enumerates byte-identical instances (pinned by TestCorpusDeterministic
// via wspio round-trips), so corpus reports from different runs, machines,
// and PRs are comparable line by line.
package datasets

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/maps"
	"repro/internal/traffic"
	"repro/internal/warehouse"
	"repro/internal/workload"
)

// Instance is one named, reproducible corpus scenario.
type Instance struct {
	// Name is "<family>/<variant>", unique across the corpus.
	Name   string
	Family string
	Sys    *traffic.System
	WL     warehouse.Workload
	// T is the timestep horizon the scenario is evaluated at.
	T int
}

// Family is one generator family of the corpus.
type Family struct {
	Name string
	Desc string
	// Generate enumerates the family's instances for a seed. Same seed,
	// same instances, byte for byte.
	Generate func(seed int64) ([]*Instance, error)
}

// Families returns the corpus families in deterministic order.
func Families() []Family {
	return []Family{
		{
			Name:     "stripes",
			Desc:     "stripe-circulation layouts swept over stripes × rows × corridor width × component cap",
			Generate: stripesFamily,
		},
		{
			Name:     "rings",
			Desc:     "perimeter-ring layouts swept over footprint, station count and component cap",
			Generate: ringsFamily,
		},
		{
			Name:     "demand",
			Desc:     "one fixed topology under uniform, skewed, bursty, diurnal and spike demand",
			Generate: demandFamily,
		},
		{
			Name:     "movingai",
			Desc:     "MAPF-benchmark grid maps imported via grid.ParseMovingAI",
			Generate: movingaiFamily,
		},
	}
}

// FamilyNames lists the family names in deterministic order.
func FamilyNames() []string {
	fams := Families()
	names := make([]string, len(fams))
	for i, f := range fams {
		names[i] = f.Name
	}
	return names
}

// Generate enumerates the whole corpus (every family) for a seed, in
// family order. Unknown names in the filter are rejected; an empty filter
// selects every family.
func Generate(seed int64, families ...string) ([]*Instance, error) {
	want := map[string]bool{}
	for _, f := range families {
		want[f] = true
	}
	known := map[string]bool{}
	var out []*Instance
	for _, fam := range Families() {
		known[fam.Name] = true
		if len(want) > 0 && !want[fam.Name] {
			continue
		}
		insts, err := fam.Generate(seed)
		if err != nil {
			return nil, fmt.Errorf("datasets: family %s: %w", fam.Name, err)
		}
		out = append(out, insts...)
	}
	var unknown []string
	for f := range want {
		if !known[f] {
			unknown = append(unknown, f)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return nil, fmt.Errorf("datasets: unknown families %v (have %v)", unknown, FamilyNames())
	}
	return out, nil
}

// horizonFor budgets the evaluation horizon: enough cycle periods for the
// demand plus a generous warm-up/queueing margin, in the units the paper's
// Table I instances empirically need. Deterministic in the instance alone.
func horizonFor(s *traffic.System, units int) int {
	return s.CycleTime() * (2*units + 40)
}

// stripesFamily sweeps the maps.Generate design space. The sweep is pure
// — seeds only matter to randomized demand families — but takes the seed
// anyway so every family has the same shape.
func stripesFamily(int64) ([]*Instance, error) {
	type variant struct {
		stripes, rows, corridor, maxLen, stations int
		units                                     int
	}
	variants := []variant{
		{stripes: 1, rows: 2, corridor: 2, maxLen: 6, stations: 1, units: 10},
		{stripes: 2, rows: 2, corridor: 2, maxLen: 6, stations: 1, units: 12},
		{stripes: 1, rows: 3, corridor: 2, maxLen: 6, stations: 1, units: 10},
		{stripes: 2, rows: 3, corridor: 3, maxLen: 6, stations: 2, units: 16},
		{stripes: 3, rows: 2, corridor: 2, maxLen: 8, stations: 1, units: 12},
	}
	var out []*Instance
	for _, v := range variants {
		m, err := maps.Generate(maps.Params{
			Stripes: v.stripes, Rows: v.rows, BayWidth: 12, CorridorWidth: v.corridor,
			MaxComponentLen: v.maxLen, DoubleShelfRows: true,
			NumProducts: 2 * v.stripes, UnitsPerShelf: 30, StationsPerStripe: v.stations,
		})
		if err != nil {
			return nil, err
		}
		wl, err := workload.Uniform(m.W, v.units)
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("S%d-R%d-V%d-L%d-st%d", v.stripes, v.rows, v.corridor, v.maxLen, v.stations)
		out = append(out, &Instance{
			Name: "stripes/" + name, Family: "stripes",
			Sys: m.S, WL: wl, T: horizonFor(m.S, v.units),
		})
	}
	return out, nil
}

// ringsFamily sweeps the perimeter-ring builder (rings.go).
func ringsFamily(int64) ([]*Instance, error) {
	type variant struct {
		w, h, maxLen, stations, products, units int
	}
	variants := []variant{
		{w: 10, h: 6, maxLen: 6, stations: 1, products: 2, units: 8},
		{w: 14, h: 8, maxLen: 6, stations: 2, products: 3, units: 12},
		{w: 18, h: 8, maxLen: 8, stations: 2, products: 4, units: 12},
		{w: 22, h: 10, maxLen: 10, stations: 2, products: 4, units: 16},
	}
	var out []*Instance
	for _, v := range variants {
		w, s, err := GenerateRing(RingParams{
			Width: v.w, Height: v.h, MaxComponentLen: v.maxLen,
			Stations: v.stations, NumProducts: v.products, UnitsPerShelf: 40,
		})
		if err != nil {
			return nil, err
		}
		wl, err := workload.Uniform(w, v.units)
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("%dx%d-L%d-st%d", v.w, v.h, v.maxLen, v.stations)
		out = append(out, &Instance{
			Name: "rings/" + name, Family: "rings",
			Sys: s, WL: wl, T: horizonFor(s, v.units),
		})
	}
	return out, nil
}

// demandFamily fixes one two-stripe topology and sweeps the demand shape.
// The randomized shapes (skewed, bursty) draw from rand streams derived
// deterministically from the corpus seed.
func demandFamily(seed int64) ([]*Instance, error) {
	m, err := maps.Generate(maps.Params{
		Stripes: 2, Rows: 2, BayWidth: 12, CorridorWidth: 2,
		MaxComponentLen: 6, DoubleShelfRows: true,
		NumProducts: 4, UnitsPerShelf: 30, StationsPerStripe: 1,
	})
	if err != nil {
		return nil, err
	}
	w := m.W
	type shape struct {
		name  string
		build func() (warehouse.Workload, error)
	}
	shapes := []shape{
		{"uniform", func() (warehouse.Workload, error) { return workload.Uniform(w, 12) }},
		{"skewed-0", func() (warehouse.Workload, error) {
			return workload.Skewed(w, 12, rand.New(rand.NewSource(seed)))
		}},
		{"bursty-0", func() (warehouse.Workload, error) {
			return workload.Bursty(w, 12, 1, 0.75, rand.New(rand.NewSource(seed+1)))
		}},
		{"bursty-1", func() (warehouse.Workload, error) {
			return workload.Bursty(w, 16, 2, 0.6, rand.New(rand.NewSource(seed+2)))
		}},
		{"diurnal-trough", func() (warehouse.Workload, error) { return workload.Diurnal(w, 16, 0, 24) }},
		{"diurnal-peak", func() (warehouse.Workload, error) { return workload.Diurnal(w, 16, 12, 24) }},
		{"spike-0", func() (warehouse.Workload, error) {
			// Full-stock single-product adversarial demand is deliberately
			// heavy; cap it at a routable level while keeping the
			// one-product concentration.
			units := w.TotalStock(0)
			if units > 20 {
				units = 20
			}
			return workload.Single(w, 0, units)
		}},
	}
	var out []*Instance
	for _, sh := range shapes {
		wl, err := sh.build()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sh.name, err)
		}
		out = append(out, &Instance{
			Name: "demand/" + sh.name, Family: "demand",
			Sys: m.S, WL: wl, T: horizonFor(m.S, wl.TotalUnits()),
		})
	}
	return out, nil
}
