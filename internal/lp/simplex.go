package lp

import (
	"fmt"
	"math/big"
)

// SolveLP solves the continuous relaxation of p with the exact rational
// two-phase simplex (Bland's rule, guaranteed termination). Integrality
// markers on variables are ignored.
func SolveLP(p *Problem) (*Solution, error) {
	return solveWith[*big.Rat](p, ratArith{}, nil, nil)
}

// SolveLPFloat solves the continuous relaxation of p with the float64
// engine. It is much faster than SolveLP on large problems but subject to
// rounding; callers that need certainty should verify with Problem.Check.
func SolveLPFloat(p *Problem) (*Solution, error) {
	return solveWith[float64](p, floatArith{eps: defaultEps}, nil, nil)
}

// solveWith runs two-phase simplex over the chosen field. loOverride and
// hiOverride, when non-nil, replace per-variable bounds (used by branch and
// bound); entries that are nil fall back to the declared bounds.
func solveWith[T any](p *Problem, ar arith[T], loOverride, hiOverride []*big.Rat) (*Solution, error) {
	std, err := standardize(p, ar, loOverride, hiOverride)
	if err != nil {
		return nil, err
	}
	if std.infeasible {
		return &Solution{Status: StatusInfeasible}, nil
	}
	status := std.run()
	switch status {
	case StatusInfeasible, StatusUnbounded:
		return &Solution{Status: status}, nil
	}
	values := std.extract()
	sol := &Solution{Status: StatusOptimal, Values: values}
	if len(p.Objective) > 0 {
		obj := new(big.Rat)
		tmp := new(big.Rat)
		for _, t := range p.Objective {
			obj.Add(obj, tmp.Mul(t.Coef, values[t.Var]))
		}
		sol.Objective = obj
	}
	return sol, nil
}

// colInfo records how a model variable maps into simplex columns.
type colInfo struct {
	pos   int      // column of the (shifted) non-negative part, -1 if none
	neg   int      // column of the negative part for free variables, -1 if none
	shift *big.Rat // value to add back after solving (the lower bound), may be nil
	fixed *big.Rat // set when lower == upper: variable eliminated, may be nil
}

// tableauState is a dense simplex tableau over field T.
//
// Layout: rows 0..m-1 are constraints in equality form with non-negative
// RHS (column n holds the RHS). basis[i] is the variable occupying row i.
// Columns 0..nStruct-1 are structural, then slacks, then artificials.
type tableauState[T any] struct {
	ar         arith[T]
	m, n       int // rows, total columns excluding RHS
	nStruct    int
	rows       [][]T // m x (n+1)
	basis      []int
	cost       []T // phase-2 reduced-objective coefficients, len n
	hasObj     bool
	nArt       int
	artStart   int
	cols       []colInfo
	p          *Problem
	infeasible bool // detected during standardization (e.g. lo > hi)
}

// standardize converts p into equality standard form.
func standardize[T any](p *Problem, ar arith[T], loOverride, hiOverride []*big.Rat) (*tableauState[T], error) {
	st := &tableauState[T]{ar: ar, p: p}
	st.cols = make([]colInfo, len(p.Vars))

	effLo := func(i int) *big.Rat {
		if loOverride != nil && loOverride[i] != nil {
			return loOverride[i]
		}
		return p.Vars[i].Lower
	}
	effHi := func(i int) *big.Rat {
		if hiOverride != nil && hiOverride[i] != nil {
			return hiOverride[i]
		}
		return p.Vars[i].Upper
	}

	// Assign structural columns. Fixed variables (lo == hi) are eliminated.
	ncol := 0
	type upperRow struct {
		col int
		cap *big.Rat // upper - lower
	}
	var uppers []upperRow
	for i := range p.Vars {
		lo, hi := effLo(i), effHi(i)
		if lo != nil && hi != nil {
			switch lo.Cmp(hi) {
			case 1:
				st.infeasible = true
				return st, nil
			case 0:
				st.cols[i] = colInfo{pos: -1, neg: -1, fixed: lo}
				continue
			}
		}
		if lo != nil {
			st.cols[i] = colInfo{pos: ncol, neg: -1, shift: lo}
			if hi != nil {
				uppers = append(uppers, upperRow{ncol, new(big.Rat).Sub(hi, lo)})
			}
			ncol++
			continue
		}
		// Free below: split x = x+ - x-. A finite upper bound on such a
		// variable becomes a synthetic x+ - x- <= hi row, added after the
		// model constraints below.
		st.cols[i] = colInfo{pos: ncol, neg: ncol + 1}
		ncol += 2
	}
	st.nStruct = ncol

	// Build rows in sorted sparse-triplet (CSR) form: one per model
	// constraint plus one per finite upper bound. The construction is
	// big.Rat-valued and independent of the tableau field, so the float and
	// rational engines share it.
	csr := newCSRRows(len(p.Constraints)+len(uppers), 4*len(p.Constraints))
	for ci := range p.Constraints {
		c := &p.Constraints[ci]
		rhs := new(big.Rat).Set(c.RHS)
		csr.beginRow()
		for _, t := range c.Terms {
			info := st.cols[t.Var]
			if info.fixed != nil {
				rhs.Sub(rhs, new(big.Rat).Mul(t.Coef, info.fixed))
				continue
			}
			if info.shift != nil {
				rhs.Sub(rhs, new(big.Rat).Mul(t.Coef, info.shift))
			}
			csr.add(info.pos, t.Coef)
			if info.neg >= 0 {
				csr.add(info.neg, new(big.Rat).Neg(t.Coef))
			}
		}
		csr.endRow(c.Sense, rhs)
	}
	for _, u := range uppers {
		csr.beginRow()
		csr.add(u.col, ratOne)
		csr.endRow(LE, u.cap)
	}
	// Upper bounds on free-below variables.
	for i := range p.Vars {
		info := st.cols[i]
		if info.neg < 0 || info.fixed != nil {
			continue
		}
		if hi := effHi(i); hi != nil {
			csr.beginRow()
			csr.add(info.pos, ratOne)
			csr.add(info.neg, ratNegOne)
			csr.endRow(LE, new(big.Rat).Set(hi))
		}
	}

	st.m = csr.numRows()
	// Count slack columns.
	nSlack := 0
	for _, sense := range csr.senses {
		if sense != EQ {
			nSlack++
		}
	}
	st.artStart = st.nStruct + nSlack
	st.nArt = st.m // one artificial per row (unused ones are dropped by phase 1)
	st.n = st.artStart + st.nArt

	st.rows = make([][]T, st.m)
	st.basis = make([]int, st.m)
	slackCol := st.nStruct
	one := ar.one()
	negOne := ar.sub(ar.zero(), one)
	// One backing array for the whole tableau keeps rows contiguous.
	back := make([]T, st.m*(st.n+1))
	for i := range back {
		back[i] = ar.zero()
	}
	for ri := 0; ri < st.m; ri++ {
		row := back[ri*(st.n+1) : (ri+1)*(st.n+1) : (ri+1)*(st.n+1)]
		rcols, rvals := csr.row(ri)
		negate := csr.rhs[ri].Sign() < 0
		for idx, col := range rcols {
			v := ar.fromRat(rvals[idx])
			if negate {
				v = ar.sub(ar.zero(), v)
			}
			row[col] = v
		}
		rhs := new(big.Rat).Set(csr.rhs[ri])
		sense := csr.senses[ri]
		if negate {
			rhs.Neg(rhs)
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		row[st.n] = ar.fromRat(rhs)
		switch sense {
		case LE:
			row[slackCol] = one
			slackCol++
		case GE:
			row[slackCol] = negOne
			slackCol++
		}
		// Artificial for this row.
		art := st.artStart + ri
		row[art] = one
		st.basis[ri] = art
		st.rows[ri] = row
	}

	// Phase-2 cost vector from the objective (minimization form).
	st.cost = make([]T, st.n)
	for j := range st.cost {
		st.cost[j] = ar.zero()
	}
	if len(p.Objective) > 0 {
		st.hasObj = true
		for _, t := range p.Objective {
			coef := new(big.Rat).Set(t.Coef)
			if p.Maximize {
				coef.Neg(coef)
			}
			info := st.cols[t.Var]
			if info.fixed != nil {
				continue
			}
			v := ar.fromRat(coef)
			st.cost[info.pos] = ar.add(st.cost[info.pos], v)
			if info.neg >= 0 {
				st.cost[info.neg] = ar.sub(st.cost[info.neg], v)
			}
		}
	}
	return st, nil
}

var (
	ratOne    = big.NewRat(1, 1)
	ratNegOne = big.NewRat(-1, 1)
)

// csrRows accumulates the standardized constraint system as sorted sparse
// triplets with a CSR layout: row r occupies cols/vals[ptr[r]:ptr[r+1]],
// sorted by column with duplicates merged. Compared to one map[int]*big.Rat
// per row this is two flat appends per term and no hashing.
type csrRows struct {
	ptr    []int32
	cols   []int32
	vals   []*big.Rat
	senses []Sense
	rhs    []*big.Rat
}

func newCSRRows(rowHint, nnzHint int) *csrRows {
	return &csrRows{
		ptr:    make([]int32, 1, rowHint+1),
		cols:   make([]int32, 0, nnzHint),
		vals:   make([]*big.Rat, 0, nnzHint),
		senses: make([]Sense, 0, rowHint),
		rhs:    make([]*big.Rat, 0, rowHint),
	}
}

func (c *csrRows) numRows() int { return len(c.senses) }

func (c *csrRows) row(r int) ([]int32, []*big.Rat) {
	return c.cols[c.ptr[r]:c.ptr[r+1]], c.vals[c.ptr[r]:c.ptr[r+1]]
}

func (c *csrRows) beginRow() {}

// add appends a term to the open row. coef is not retained; duplicates of
// the same column are merged by endRow.
func (c *csrRows) add(col int, coef *big.Rat) {
	c.cols = append(c.cols, int32(col))
	c.vals = append(c.vals, new(big.Rat).Set(coef))
}

// endRow seals the open row: sorts its triplets by column (insertion sort —
// rows are short), merges duplicate columns, and records sense and RHS.
func (c *csrRows) endRow(sense Sense, rhs *big.Rat) {
	start := int(c.ptr[len(c.ptr)-1])
	seg := c.cols[start:]
	vseg := c.vals[start:]
	for i := 1; i < len(seg); i++ {
		for j := i; j > 0 && seg[j] < seg[j-1]; j-- {
			seg[j], seg[j-1] = seg[j-1], seg[j]
			vseg[j], vseg[j-1] = vseg[j-1], vseg[j]
		}
	}
	// Merge equal columns in place.
	out := 0
	for i := 0; i < len(seg); i++ {
		if out > 0 && seg[out-1] == seg[i] {
			vseg[out-1].Add(vseg[out-1], vseg[i])
			continue
		}
		seg[out] = seg[i]
		vseg[out] = vseg[i]
		out++
	}
	c.cols = c.cols[:start+out]
	c.vals = c.vals[:start+out]
	c.ptr = append(c.ptr, int32(len(c.cols)))
	c.senses = append(c.senses, sense)
	c.rhs = append(c.rhs, rhs)
}

// run executes phase 1 then (if there is an objective) phase 2.
func (st *tableauState[T]) run() Status {
	ar := st.ar
	// Phase 1: minimize the sum of artificials. Since every initial basis
	// variable is an artificial with cost 1, the phase-1 objective row entry
	// for column j is Σ_i rows[i][j]; the row is pivoted with the tableau and
	// its RHS entry is the current infeasibility, driven to zero.
	objRow := make([]T, st.n+1)
	for j := 0; j <= st.n; j++ {
		s := ar.zero()
		for i := 0; i < st.m; i++ {
			s = ar.add(s, st.rows[i][j])
		}
		objRow[j] = s
	}
	// Artificial columns have reduced cost 0 in their own basis; exclude them
	// from entering by zeroing their objective entries.
	for j := st.artStart; j < st.n; j++ {
		objRow[j] = ar.zero()
	}
	if !st.pivotLoop(objRow, st.artStart) {
		// Phase 1 of a feasibility system cannot be unbounded (objective is
		// bounded below by 0); treat as numerical failure -> infeasible.
		return StatusInfeasible
	}
	if ar.sign(objRow[st.n]) != 0 {
		return StatusInfeasible
	}
	// Drive any artificial still in the basis out (degenerate rows).
	for i := 0; i < st.m; i++ {
		if st.basis[i] < st.artStart {
			continue
		}
		pivoted := false
		for j := 0; j < st.artStart; j++ {
			if ar.sign(st.rows[i][j]) != 0 {
				st.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Row is all zeros across structural+slack columns: redundant.
			// Leave the artificial basic at value 0; it never re-enters.
			continue
		}
	}
	if !st.hasObj {
		return StatusOptimal
	}
	// Phase 2: reduced costs r_j = c_j - c_B B^-1 A_j. Build the objective
	// row from st.cost and current basis.
	objRow2 := make([]T, st.n+1)
	copy(objRow2, st.cost)
	objRow2[st.n] = ar.zero()
	// Subtract c_B times each row to zero out basic columns.
	for i := 0; i < st.m; i++ {
		cb := ar.zero()
		if st.basis[i] < st.n {
			cb = st.cost[st.basis[i]]
		}
		if ar.sign(cb) == 0 {
			continue
		}
		for j := 0; j <= st.n; j++ {
			objRow2[j] = ar.sub(objRow2[j], ar.mul(cb, st.rows[i][j]))
		}
	}
	// In phase 2 the entering test wants negative reduced cost; pivotLoop is
	// written for "positive entries enter" (phase-1 style), so negate.
	for j := 0; j <= st.n; j++ {
		objRow2[j] = ar.sub(ar.zero(), objRow2[j])
	}
	if !st.pivotLoop(objRow2, st.artStart) {
		return StatusUnbounded
	}
	return StatusOptimal
}

// pivotLoop repeatedly pivots while some eligible column has a positive
// objective-row entry (Bland's rule: lowest index first). colLimit bounds the
// eligible columns (artificials are excluded by passing artStart). Returns
// false if an entering column has no positive pivot element (unbounded).
func (st *tableauState[T]) pivotLoop(objRow []T, colLimit int) bool {
	ar := st.ar
	for {
		enter := -1
		for j := 0; j < colLimit; j++ {
			if ar.sign(objRow[j]) > 0 {
				enter = j
				break
			}
		}
		if enter < 0 {
			return true
		}
		// Ratio test with Bland tie-breaking on the leaving basic variable.
		leave := -1
		var best T
		for i := 0; i < st.m; i++ {
			a := st.rows[i][enter]
			if ar.sign(a) <= 0 {
				continue
			}
			ratio := ar.div(st.rows[i][st.n], a)
			if leave < 0 {
				leave, best = i, ratio
				continue
			}
			switch ar.sign(ar.sub(ratio, best)) {
			case -1:
				leave, best = i, ratio
			case 0:
				if st.basis[i] < st.basis[leave] {
					leave = i
				}
			}
		}
		if leave < 0 {
			return false
		}
		st.pivotWithObj(leave, enter, objRow)
	}
}

// pivot makes (row, col) the pivot element and updates basis.
func (st *tableauState[T]) pivot(row, col int) {
	st.pivotWithObj(row, col, nil)
}

func (st *tableauState[T]) pivotWithObj(row, col int, objRow []T) {
	ar := st.ar
	pr := st.rows[row]
	pv := pr[col]
	inv := ar.div(ar.one(), pv)
	for j := 0; j <= st.n; j++ {
		pr[j] = ar.mul(pr[j], inv)
	}
	for i := 0; i < st.m; i++ {
		if i == row {
			continue
		}
		f := st.rows[i][col]
		if ar.sign(f) == 0 {
			continue
		}
		ri := st.rows[i]
		for j := 0; j <= st.n; j++ {
			ri[j] = ar.sub(ri[j], ar.mul(f, pr[j]))
		}
	}
	if objRow != nil {
		f := objRow[col]
		if ar.sign(f) != 0 {
			for j := 0; j <= st.n; j++ {
				objRow[j] = ar.sub(objRow[j], ar.mul(f, pr[j]))
			}
		}
	}
	st.basis[row] = col
}

// extract reads the model-variable values out of the final tableau.
func (st *tableauState[T]) extract() []*big.Rat {
	ar := st.ar
	colVal := make([]*big.Rat, st.n)
	for j := range colVal {
		colVal[j] = new(big.Rat)
	}
	for i := 0; i < st.m; i++ {
		if st.basis[i] < st.n {
			colVal[st.basis[i]] = ar.toRat(st.rows[i][st.n])
		}
	}
	out := make([]*big.Rat, len(st.p.Vars))
	for i := range st.p.Vars {
		info := st.cols[i]
		if info.fixed != nil {
			out[i] = new(big.Rat).Set(info.fixed)
			continue
		}
		v := new(big.Rat).Set(colVal[info.pos])
		if info.neg >= 0 {
			v.Sub(v, colVal[info.neg])
		}
		if info.shift != nil {
			v.Add(v, info.shift)
		}
		out[i] = v
	}
	return out
}

var _ = fmt.Sprintf // keep fmt imported for debug helpers
