package sim

import (
	"testing"

	"repro/internal/agentplan"
	"repro/internal/cycles"
	"repro/internal/testmaps"
	"repro/internal/warehouse"
)

func TestRunCountsDeliveriesAndMoves(t *testing.T) {
	w, s := testmaps.MustRing()
	wl, err := warehouse.NewWorkload(w, []int{6, 4})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := cycles.Synthesize(s, wl, 800, cycles.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, stats, err := agentplan.Realize(cs, wl, 800)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(w, plan, wl)
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations[0])
	}
	if res.Delivered[0] != stats.Delivered[0] || res.Delivered[1] != stats.Delivered[1] {
		t.Errorf("sim delivered %v, realization says %v", res.Delivered, stats.Delivered)
	}
	if res.ServicedAt != stats.ServicedAt {
		t.Errorf("sim ServicedAt %d, realization %d", res.ServicedAt, stats.ServicedAt)
	}
	if got, want := res.Moves+res.Waits, plan.NumAgents()*(plan.Horizon()-1); got != want {
		t.Errorf("moves+waits = %d, want %d", got, want)
	}
	if len(res.DeliveryTimes) != res.Delivered[0]+res.Delivered[1] {
		t.Errorf("delivery events %d, delivered %v", len(res.DeliveryTimes), res.Delivered)
	}
	// Ten deliveries across the ring take at least a loop's worth of loaded
	// travel each.
	if res.Carrying < 10 {
		t.Errorf("Carrying = %d, want >= 10 loaded agent-steps", res.Carrying)
	}
	for i := 1; i < len(res.DeliveryTimes); i++ {
		if res.DeliveryTimes[i] < res.DeliveryTimes[i-1] {
			t.Error("DeliveryTimes not sorted")
			break
		}
	}
}

func TestRunZeroWorkloadServicedImmediately(t *testing.T) {
	w, _ := testmaps.MustRing()
	wl := warehouse.Workload{Units: []int{0, 0}}
	plan := &warehouse.Plan{}
	res := Run(w, plan, wl)
	if res.ServicedAt != 0 {
		t.Errorf("ServicedAt = %d, want 0", res.ServicedAt)
	}
}

func TestThroughputBinning(t *testing.T) {
	res := Result{DeliveryTimes: []int{1, 5, 9, 10, 19, 25}}
	bins := Throughput(res, 30, 10)
	if len(bins) != 3 {
		t.Fatalf("bins = %d, want 3", len(bins))
	}
	if bins[0] != 3 || bins[1] != 2 || bins[2] != 1 {
		t.Errorf("bins = %v, want [3 2 1]", bins)
	}
	if Throughput(res, 0, 10) != nil || Throughput(res, 30, 0) != nil {
		t.Error("degenerate Throughput inputs should return nil")
	}
}

func TestWindowStreamingMatchesThroughput(t *testing.T) {
	res := Result{DeliveryTimes: []int{25, 1, 5, 9, 10, 19}}
	w := NewWindow(10)
	for _, ts := range res.DeliveryTimes {
		w.Observe(ts)
	}
	bins := w.Bins()
	want := Throughput(res, 30, 10)
	if len(bins) != len(want) {
		t.Fatalf("bins = %v, want %v", bins, want)
	}
	for i := range bins {
		if bins[i] != want[i] {
			t.Fatalf("bins = %v, want %v", bins, want)
		}
	}
	if w.Total() != len(res.DeliveryTimes) {
		t.Errorf("Total = %d, want %d", w.Total(), len(res.DeliveryTimes))
	}
	if w.Width() != 10 {
		t.Errorf("Width = %d, want 10", w.Width())
	}
}

func TestWindowGrowsOnDemand(t *testing.T) {
	w := NewWindow(4)
	if got := w.Bins(); len(got) != 0 {
		t.Fatalf("fresh window bins = %v, want empty", got)
	}
	w.Observe(-3) // ignored
	w.Observe(9)
	w.Observe(0)
	bins := w.Bins()
	if len(bins) != 3 || bins[0] != 1 || bins[1] != 0 || bins[2] != 1 {
		t.Errorf("bins = %v, want [1 0 1]", bins)
	}
	// Mutating the returned slice must not alias internal state.
	bins[0] = 99
	if w.Bins()[0] != 1 {
		t.Error("Bins must return a copy")
	}
	if NewWindow(0).Width() != 1 {
		t.Error("non-positive width should clamp to 1")
	}
}
