package warehouse

import (
	"fmt"

	"repro/internal/grid"
)

// PlanViolation describes one breach of the feasibility conditions of §III.
type PlanViolation struct {
	Timestep  int // 0-based timestep at which the violation occurs
	Agent     int // primary agent involved
	OtherIdx  int // second agent for collision violations, else -1
	Condition int // 1 = movement, 2 = collision, 3 = product handling
	Detail    string
}

func (v PlanViolation) Error() string {
	return fmt.Sprintf("plan violation (condition %d) at t=%d agent=%d: %s", v.Condition, v.Timestep, v.Agent, v.Detail)
}

// ValidatePlan checks the three feasibility conditions of §III against the
// warehouse and returns every violation found (nil means feasible).
//
//	(1) an agent moves by 0 or 1 vertices per timestep;
//	(2) no two agents occupy the same vertex or swap along an edge;
//	(3) pickups happen only at shelf-access vertices stocking the product,
//	    drop-offs only at stations, and carried products never mutate.
//
// ValidatePlan also checks that shelf stock is never over-drawn: the number
// of units of product k picked up at shelf-access vertex v over the whole
// plan must not exceed Λ[k][v].
func ValidatePlan(w *Warehouse, p *Plan) []PlanViolation {
	var out []PlanViolation
	T := p.Horizon()
	c := p.NumAgents()
	for i := 0; i < c; i++ {
		if len(p.States[i]) != T {
			out = append(out, PlanViolation{Agent: i, OtherIdx: -1, Condition: 1,
				Detail: fmt.Sprintf("agent has %d states, want %d", len(p.States[i]), T)})
			return out
		}
	}
	// Per-(vertex,product) pickup totals for stock accounting.
	type pick struct {
		v grid.VertexID
		k ProductID
	}
	picked := make(map[pick]int)

	// Stamped occupancy arena: occAgent[v] holds the occupant at timestep t
	// iff occStamp[v] == t+1, so no per-step clearing is needed.
	nv := w.Graph.NumVertices()
	occAgent := grid.GetInt32(nv)
	occStamp := grid.GetInt32(nv)
	defer grid.PutInt32(occAgent)
	defer grid.PutInt32(occStamp)
	for t := 0; t < T; t++ {
		stamp := int32(t) + 1
		// Condition 2a: vertex conflicts.
		for i := 0; i < c; i++ {
			v := p.States[i][t].Vertex
			if v < 0 || int(v) >= nv {
				out = append(out, PlanViolation{Timestep: t, Agent: i, OtherIdx: -1, Condition: 1,
					Detail: fmt.Sprintf("vertex %d out of range", v)})
				continue
			}
			if occStamp[v] == stamp {
				out = append(out, PlanViolation{Timestep: t, Agent: i, OtherIdx: int(occAgent[v]), Condition: 2,
					Detail: fmt.Sprintf("agents %d and %d both at vertex %d", occAgent[v], i, v)})
			}
			occAgent[v] = int32(i)
			occStamp[v] = stamp
		}
		if t+1 >= T {
			break
		}
		for i := 0; i < c; i++ {
			cur, next := p.States[i][t], p.States[i][t+1]
			// Condition 1: unit moves.
			if cur.Vertex != next.Vertex && !w.Graph.Adjacent(cur.Vertex, next.Vertex) {
				out = append(out, PlanViolation{Timestep: t, Agent: i, OtherIdx: -1, Condition: 1,
					Detail: fmt.Sprintf("teleport %d -> %d", cur.Vertex, next.Vertex)})
			}
			// Condition 2b: edge swaps.
			if next.Vertex >= 0 && int(next.Vertex) < nv && occStamp[next.Vertex] == stamp {
				if j := int(occAgent[next.Vertex]); j != i && p.States[j][t+1].Vertex == cur.Vertex {
					if i < j { // report each swap once
						out = append(out, PlanViolation{Timestep: t, Agent: i, OtherIdx: j, Condition: 2,
							Detail: fmt.Sprintf("agents %d and %d swap across edge %d-%d", i, j, cur.Vertex, next.Vertex)})
					}
				}
			}
			// Condition 3: product handling.
			switch {
			case cur.Carried == next.Carried:
				// holding steady is always fine
			case cur.Carried == NoProduct:
				// pickup: must stand at a shelf-access vertex stocking it
				if w.UnitsAt(cur.Vertex, next.Carried) <= 0 {
					out = append(out, PlanViolation{Timestep: t, Agent: i, OtherIdx: -1, Condition: 3,
						Detail: fmt.Sprintf("picked product %d at vertex %d which stocks none", next.Carried, cur.Vertex)})
				} else {
					picked[pick{cur.Vertex, next.Carried}]++
				}
			case next.Carried == NoProduct:
				// drop-off: must stand at a station
				if !w.IsStation(cur.Vertex) {
					out = append(out, PlanViolation{Timestep: t, Agent: i, OtherIdx: -1, Condition: 3,
						Detail: fmt.Sprintf("dropped product %d at non-station vertex %d", cur.Carried, cur.Vertex)})
				}
			default:
				out = append(out, PlanViolation{Timestep: t, Agent: i, OtherIdx: -1, Condition: 3,
					Detail: fmt.Sprintf("carried product mutated %d -> %d", cur.Carried, next.Carried)})
			}
		}
	}
	for pk, n := range picked {
		if have := w.UnitsAt(pk.v, pk.k); n > have {
			out = append(out, PlanViolation{Timestep: T - 1, Agent: -1, OtherIdx: -1, Condition: 3,
				Detail: fmt.Sprintf("picked %d units of product %d at vertex %d, stock is %d", n, pk.k, pk.v, have)})
		}
	}
	return out
}

// Delivered counts, per product, the units a plan transfers to stations: a
// delivery is a transition carried=k -> carried=ρ0 at a station vertex.
func Delivered(w *Warehouse, p *Plan) []int {
	units := make([]int, w.NumProducts)
	for i := 0; i < p.NumAgents(); i++ {
		for t := 0; t+1 < p.Horizon(); t++ {
			cur, next := p.States[i][t], p.States[i][t+1]
			if cur.Carried != NoProduct && next.Carried == NoProduct && w.IsStation(cur.Vertex) {
				units[cur.Carried]++
			}
		}
	}
	return units
}

// Services reports whether plan p services workload wl: it is feasible and
// delivers at least Units[k] of every product k.
func Services(w *Warehouse, p *Plan, wl Workload) (bool, []PlanViolation) {
	if v := ValidatePlan(w, p); len(v) > 0 {
		return false, v
	}
	got := Delivered(w, p)
	for k, want := range wl.Units {
		if got[k] < want {
			return false, []PlanViolation{{Timestep: p.Horizon() - 1, Agent: -1, OtherIdx: -1, Condition: 3,
				Detail: fmt.Sprintf("delivered %d of product %d, want %d", got[k], k, want)}}
		}
	}
	return true, nil
}
