package mapf

import (
	"fmt"

	"repro/internal/grid"
)

// IteratedOptions tunes IteratedECBS.
type IteratedOptions struct {
	// Window is the replanning window in timesteps (0 = 20).
	Window int
	// W is the suboptimality factor (0 = 1.5).
	W float64
	// Limits bound each window's search and the overall plan length.
	Limits Limits
}

// IteratedECBS is the lifelong deployment of the bounded-suboptimal solver:
// every Window timesteps, each agent plans toward its next outstanding goal
// with ECBS, the first Window steps are committed, and planning repeats —
// the standard windowed scheme for warehouse-scale MAPD, and the
// configuration of the paper's comparison baseline.
//
// It returns the executed paths (one position per timestep for every agent)
// once every goal sequence is exhausted, or an error when the expansion
// budget or horizon runs out first.
func IteratedECBS(g *grid.Grid, starts []grid.VertexID, goals [][]grid.VertexID, opts IteratedOptions) (*Solution, error) {
	if len(starts) != len(goals) {
		return nil, fmt.Errorf("mapf: %d starts for %d goal sequences", len(starts), len(goals))
	}
	window := opts.Window
	if window == 0 {
		window = 20
	}
	w := opts.W
	if w == 0 {
		w = 1.5
	}
	horizon := opts.Limits.horizon(g)
	budget := opts.Limits.expansions()

	cur := append([]grid.VertexID(nil), starts...)
	remaining := make([][]grid.VertexID, len(goals))
	for i := range goals {
		remaining[i] = append([]grid.VertexID(nil), goals[i]...)
	}
	executed := make([]Path, len(starts))
	for i := range executed {
		executed[i] = Path{cur[i]}
	}
	total := &Solution{Paths: executed}

	for t := 0; t < horizon; t += window {
		done := true
		for i := range remaining {
			if len(remaining[i]) > 0 {
				done = false
				break
			}
		}
		if done {
			return total, nil
		}
		// Plan each agent toward its next goal only (windowed decomposition).
		next := make([][]grid.VertexID, len(remaining))
		for i := range remaining {
			if len(remaining[i]) > 0 {
				next[i] = remaining[i][:1]
			}
		}
		lim := Limits{MaxExpansions: budget, Horizon: opts.Limits.horizon(g)}
		sol, err := ECBS(g, cur, next, w, lim)
		budget -= sol.Expansions
		total.Expansions += sol.Expansions
		total.HighLevelNodes += sol.HighLevelNodes
		if err != nil {
			return total, err
		}
		if budget <= 0 {
			return total, fmt.Errorf("mapf: iterated window budget spent after %d expansions: %w", total.Expansions, ErrExpansionLimit)
		}
		// Execute the first `window` steps.
		for i, p := range sol.Paths {
			for dt := 1; dt <= window; dt++ {
				v := p.Vertex(dt)
				executed[i] = append(executed[i], v)
			}
			cur[i] = executed[i][len(executed[i])-1]
			// Goal reached within the window?
			if len(remaining[i]) > 0 {
				for dt := 1; dt <= window; dt++ {
					if p.Vertex(dt) == remaining[i][0] {
						remaining[i] = remaining[i][1:]
						break
					}
				}
			}
		}
	}
	return total, fmt.Errorf("mapf: horizon exhausted with goals outstanding")
}
