package calibrate

import (
	"context"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"repro/internal/datasets"
)

// Spec is a knob grid to search. Each axis lists the values to try; an
// empty axis keeps Base's value (so the zero Spec measures Base alone).
// The grid is the cross product of all axes.
type Spec struct {
	// Base supplies every knob not being swept.
	Base Knobs
	// AutoRows values for the lp.SimplexAuto crossover (0 = default).
	AutoRows []int
	// WorkBudgets values for the per-attempt work cap (0 = default).
	WorkBudgets []int64
	// NodeBudgets values for the per-attempt node cap (0 = default).
	NodeBudgets []int
	// SearchWidths values for branch-and-bound worker width.
	SearchWidths []int
}

// Candidate is one evaluated grid point.
type Candidate struct {
	Knobs     Knobs   `json:"knobs"`
	Instances int     `json:"instances"`
	Solved    int     `json:"solved"`
	SolveRate float64 `json:"solve_rate"`
	// Budget counts instances stopped by work/node budget exhaustion.
	Budget int `json:"budget"`
	// Work is total deterministic simplex work across the corpus.
	Work int64 `json:"work"`
	// Score is the deterministic ranking metric: solve rate out of 100
	// with a penalty per budget-stopped instance. Wall time never enters.
	Score float64 `json:"score"`
	// Millis is total wall-clock latency (informational; never scored).
	Millis float64 `json:"millis"`
}

// Table is a scored calibration result: candidates sorted best-first
// under a deterministic total order, with the winner's knobs pinned.
type Table struct {
	Candidates  []Candidate `json:"candidates"`
	Recommended Knobs       `json:"recommended"`
}

// score computes the deterministic candidate score: each solved instance
// is worth 100/n points, each budget-stopped instance forfeits 25/n —
// exhausting a limit is worse than a clean infeasibility verdict because
// it proves nothing and wasted the whole budget doing so.
func score(solved, budget, n int) float64 {
	if n == 0 {
		return 0
	}
	return (100*float64(solved) - 25*float64(budget)) / float64(n)
}

// less is the deterministic candidate total order: score descending, then
// deterministic work ascending, then cheaper knobs (narrower search,
// smaller budgets, smaller crossover). Latency is deliberately absent —
// two runs of the same grid must order candidates identically.
func less(a, b Candidate) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	if a.Work != b.Work {
		return a.Work < b.Work
	}
	ka, kb := a.Knobs, b.Knobs
	if ka.SearchParallel != kb.SearchParallel {
		return ka.SearchParallel < kb.SearchParallel
	}
	if ka.WorkBudget != kb.WorkBudget {
		return ka.WorkBudget < kb.WorkBudget
	}
	if ka.NodeBudget != kb.NodeBudget {
		return ka.NodeBudget < kb.NodeBudget
	}
	return ka.AutoRows < kb.AutoRows
}

// grid expands the spec's cross product into concrete knob sets.
func (s Spec) grid() []Knobs {
	autoRows := s.AutoRows
	if len(autoRows) == 0 {
		autoRows = []int{s.Base.AutoRows}
	}
	workBudgets := s.WorkBudgets
	if len(workBudgets) == 0 {
		workBudgets = []int64{s.Base.WorkBudget}
	}
	nodeBudgets := s.NodeBudgets
	if len(nodeBudgets) == 0 {
		nodeBudgets = []int{s.Base.NodeBudget}
	}
	widths := s.SearchWidths
	if len(widths) == 0 {
		widths = []int{s.Base.SearchParallel}
	}
	var out []Knobs
	for _, ar := range autoRows {
		for _, wb := range workBudgets {
			for _, nb := range nodeBudgets {
				for _, sw := range widths {
					k := s.Base
					k.AutoRows = ar
					k.WorkBudget = wb
					k.NodeBudget = nb
					k.SearchParallel = sw
					out = append(out, k)
				}
			}
		}
	}
	return out
}

// Calibrate evaluates every grid point of spec over the corpus and
// returns the scored table. Scoring uses only deterministic quantities
// (verdicts and work), so the same corpus and spec always recommend the
// same knobs — pinned by TestCalibrateStable. The sort is stable over a
// deterministic enumeration order, making ties reproducible too.
func Calibrate(ctx context.Context, insts []*datasets.Instance, spec Spec) (*Table, error) {
	points := spec.grid()
	if len(points) == 0 {
		return nil, fmt.Errorf("calibrate: empty knob grid")
	}
	t := &Table{}
	for i, k := range points {
		rep := Run(ctx, insts, k, fmt.Sprintf("cand-%d", i), 0)
		c := Candidate{Knobs: k, Instances: len(rep.Instances)}
		for _, ir := range rep.Instances {
			switch ir.Verdict {
			case VerdictSolved:
				c.Solved++
			case VerdictBudget:
				c.Budget++
			}
			c.Work += ir.Work
			c.Millis += ir.Millis
		}
		if c.Instances > 0 {
			c.SolveRate = float64(c.Solved) / float64(c.Instances)
		}
		c.Score = score(c.Solved, c.Budget, c.Instances)
		t.Candidates = append(t.Candidates, c)
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("calibrate: canceled after %d of %d candidates: %w", i+1, len(points), err)
		}
	}
	sort.SliceStable(t.Candidates, func(i, j int) bool { return less(t.Candidates[i], t.Candidates[j]) })
	t.Recommended = t.Candidates[0].Knobs
	return t, nil
}

// Format renders the table for terminals, best candidate first.
func (t *Table) Format(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "score\tsolved\tbudget\twork\tautorows\tmaxwork\tmaxnodes\twidth\tms")
	for _, c := range t.Candidates {
		fmt.Fprintf(tw, "%.1f\t%d/%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.0f\n",
			c.Score, c.Solved, c.Instances, c.Budget, c.Work,
			c.Knobs.AutoRows, c.Knobs.WorkBudget, c.Knobs.NodeBudget, c.Knobs.SearchParallel, c.Millis)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	k := t.Recommended
	_, err := fmt.Fprintf(w, "\nrecommended: autorows=%d maxwork=%d maxnodes=%d width=%d (strategy=%s simplex=%s)\n",
		k.AutoRows, k.WorkBudget, k.NodeBudget, k.SearchParallel, strategyName(k.Strategy), simplexName(k.Simplex))
	return err
}
