package lp

import "math/big"

// integerBox guards branch and bound against one-sided integer domains.
//
// An integer variable with an open bound side lets the branching chain walk
// that direction forever when the instance is integer-infeasible but its
// relaxations stay feasible (the historical pathology of edit-corpus seed
// 1376). Yet one-sided declarations are the norm here: every agent flow is
// an AddNat variable over [0, ∞), and the finite upper bound is implied by
// the capacity rows rather than declared. integerBox recovers those implied
// bounds by activity-based propagation over the constraint rows and returns
// them as a root bound-diff chain for the search to branch under.
//
// Every derived bound is implied by the constraints, so installing it
// changes neither the feasible set nor the optimal value. It can, however,
// participate in simplex ratio tests, so on instances that reach the slow
// path the search may surface a different vertex among alternate optima
// than a hypothetical box-free run — which is fine, because without the box
// that run might not terminate at all. Fully boxed problems take the nil
// fast path and are untouched, bit for bit.
//
// A side the propagation cannot derive stays open rather than failing the
// solve: genuinely unbounded relaxations still belong here (the contract
// algebra's entailment checks read StatusUnbounded as "not entailed", and
// variables outside every row never branch at all). The runaway-branching
// case those open sides could still cause is rejected lazily, inside the
// search, by the open-march guard in the walker (ErrUnboundedIntDomain) —
// so the a-priori box plus the in-search guard together make every solve
// terminate.
//
// Like the simplex engines, the propagation runs on rat64 machine words
// first and re-runs over big.Rat only if a value overflows int64 (contract
// coefficients never do in practice). Both paths are exact, so the derived
// chain is identical either way.
func integerBox(p *Problem) *boundDiff {
	need := false
	for _, v := range p.Vars {
		if v.Integer && (v.Lower == nil || v.Upper == nil) {
			need = true
			break
		}
	}
	if !need {
		return nil
	}
	var chain *boundDiff
	if promote(func() { chain = boxPropagate[rat64, rat64Arith](p, rat64Arith{}) }) {
		return chain
	}
	return boxPropagate[*big.Rat, ratArith](p, ratArith{})
}

// boxPropagate runs the activity-propagation rounds under the arithmetic A
// and returns the derived chain. Each round scans every row in both senses
// and fills missing bound sides (for all variables — a derived continuous
// bound can unlock an integer one next round). Declared or previously
// derived bounds are never replaced, so the state is monotone; a few rounds
// reach everything reachable on real instances, and the fixed cap keeps the
// guard O(rounds · nnz) even on adversarial chains. This runs at the root
// of every B&B, so rowFill prefilters each row with bound-presence checks
// alone and touches arithmetic only when the row can actually fill a
// missing side.
func boxPropagate[T any, A arith[T]](p *Problem, ar A) *boundDiff {
	nv := len(p.Vars)
	lo, hi := make([]T, nv), make([]T, nv)
	loOK, hiOK := make([]bool, nv), make([]bool, nv)
	for i, v := range p.Vars {
		if v.Lower != nil {
			lo[i], loOK[i] = ar.fromRat(v.Lower), true
		}
		if v.Upper != nil {
			hi[i], hiOK[i] = ar.fromRat(v.Upper), true
		}
	}
	sc := &boxScratch[T]{}
	for round := 0; round < 4; round++ {
		changed := false
		for ci := range p.Constraints {
			c := &p.Constraints[ci]
			if c.Sense == LE || c.Sense == EQ {
				changed = rowFill(ar, c, false, lo, hi, loOK, hiOK, sc) || changed
			}
			if c.Sense == GE || c.Sense == EQ {
				changed = rowFill(ar, c, true, lo, hi, loOK, hiOK, sc) || changed
			}
		}
		if !changed {
			break
		}
	}
	var chain *boundDiff
	for i, v := range p.Vars {
		if !v.Integer {
			continue
		}
		if v.Lower == nil && loOK[i] {
			chain = chain.push(i, false, boxChainVal(ar, lo[i], false))
		}
		if v.Upper == nil && hiOK[i] {
			chain = chain.push(i, true, boxChainVal(ar, hi[i], true))
		}
	}
	return chain
}

// boxChainVal rounds a derived bound to the integral *big.Rat the chain
// stores: floor for an upper bound, ceil for a lower one. The rat64 case is
// a single int64 division — going through toRat would make SetFrac64's GCD
// normalization and big.Int flooring dominate the whole propagation on
// boxed-flow instances, where nearly every variable receives a bound.
func boxChainVal[T any, A arith[T]](ar A, v T, upper bool) *big.Rat {
	if x, ok := any(v).(rat64); ok {
		q := x.n / x.d // d > 0 by invariant; Go division truncates toward zero
		if x.n%x.d != 0 {
			if upper {
				if x.n < 0 {
					q--
				}
			} else if x.n > 0 {
				q++
			}
		}
		return new(big.Rat).SetInt64(q)
	}
	r := ar.toRat(v)
	if upper {
		return ratFloor(r)
	}
	return ratCeil(r)
}

// boxScratch recycles rowFill's per-row contribution buffer across the
// whole propagation. Under rat64 the values are machine words and the rest
// of the pass is allocation-free; the big.Rat fallback allocates per
// operation, which is fine for a path taken only on int64 overflow.
type boxScratch[T any] struct {
	contrib []T // finite contribution per term (valid[i] says which)
	valid   []bool
}

// rowFill derives missing variable bounds from one row read as
// Σ aⱼxⱼ ≤ b (neg flips every coefficient and the RHS first, which turns a
// GE row into the same form; an EQ row is processed once per direction).
// For any feasible point, aⱼxⱼ ≤ b − Σ_{k≠j} aₖxₖ ≤ b − minactivity_{−j},
// where each term's minimum contribution is aₖ·loₖ (aₖ > 0) or aₖ·hiₖ
// (aₖ < 0) — infinite when the needed bound is missing. With two or more
// infinite contributions nothing is derivable; with exactly one, only the
// variable contributing it has a finite residual; with none, every
// variable does. Derived bounds only FILL missing sides, never tighten
// declared ones. Reports whether any side was filled.
//
// The first pass over the terms costs only sign and presence checks: it
// counts infinite contributions and looks for a fillable target side,
// bailing out before any arithmetic when the row cannot derive anything —
// which is the overwhelmingly common case after the first round.
func rowFill[T any, A arith[T]](ar A, c *Constraint, neg bool, lo, hi []T, loOK, hiOK []bool, sc *boxScratch[T]) bool {
	infs, infAt := 0, -1
	fillable := false
	for ti, t := range c.Terms {
		sign := t.Coef.Sign()
		if neg {
			sign = -sign
		}
		if sign == 0 {
			continue
		}
		needOK, targetOK := loOK[t.Var], hiOK[t.Var]
		if sign < 0 {
			needOK, targetOK = targetOK, needOK
		}
		if !needOK {
			infs++
			infAt = ti
			if infs > 1 {
				return false
			}
			// With one infinite contribution only its own term can
			// receive a bound, so earlier fillable targets are moot.
			fillable = !targetOK
			continue
		}
		if infs == 0 && !targetOK {
			fillable = true
		}
	}
	if !fillable {
		return false
	}
	if cap(sc.contrib) < len(c.Terms) {
		sc.contrib = make([]T, len(c.Terms))
		sc.valid = make([]bool, len(c.Terms))
	}
	contrib, valid := sc.contrib[:len(c.Terms)], sc.valid[:len(c.Terms)]
	sumFin := ar.zero()
	for ti, t := range c.Terms {
		sign := t.Coef.Sign()
		if neg {
			sign = -sign
		}
		valid[ti] = false
		if sign == 0 || ti == infAt {
			continue
		}
		b := lo[t.Var]
		if sign < 0 {
			b = hi[t.Var]
		}
		cv := ar.mul(ar.fromRat(t.Coef), b)
		if neg {
			cv = ar.neg(cv)
		}
		contrib[ti] = cv
		valid[ti] = true
		sumFin = ar.add(sumFin, cv)
	}
	rhs := ar.fromRat(c.RHS)
	if neg {
		rhs = ar.neg(rhs)
	}
	changed := false
	for ti, t := range c.Terms {
		sign := t.Coef.Sign()
		if neg {
			sign = -sign
		}
		if sign == 0 || (infs == 1 && ti != infAt) {
			continue
		}
		j := t.Var
		if sign > 0 {
			if hiOK[j] {
				continue
			}
		} else if loOK[j] {
			continue
		}
		rest := sumFin
		if valid[ti] {
			rest = ar.sub(rest, contrib[ti])
		}
		aj := ar.fromRat(t.Coef)
		if neg {
			aj = ar.neg(aj)
		}
		val := ar.div(ar.sub(rhs, rest), aj)
		if sign > 0 {
			hi[j], hiOK[j] = val, true
		} else {
			lo[j], loOK[j] = val, true
		}
		changed = true
	}
	return changed
}

// ratCeil returns ⌈r⌉ as a rational.
func ratCeil(r *big.Rat) *big.Rat {
	f := ratFloor(new(big.Rat).Neg(r))
	return f.Neg(f)
}
