package server

import (
	"testing"

	"repro/wsp"
)

// Within-instance parallelism is shed at rung 2 — before any budget is
// touched at rung 3 — because dropping to the sequential search returns
// the bit-identical answer while a shrunken budget can change it.
func TestDegradeShedsSearchWorkersBeforeBudgets(t *testing.T) {
	base := wsp.Config{Strategy: wsp.RoutePacking, SearchParallel: 4}

	cfg, steps := degradeConfig(base, 1)
	if cfg.SearchParallel != 4 || hasStep(steps, "search-shed") {
		t.Errorf("rung 1 shed workers early: cfg=%+v steps=%v", cfg, steps)
	}

	cfg, steps = degradeConfig(base, 2)
	if cfg.SearchParallel != 0 || !hasStep(steps, "search-shed") {
		t.Errorf("rung 2 kept workers: cfg=%+v steps=%v", cfg, steps)
	}
	if cfg.WorkBudget != 0 || cfg.NodeBudget != 0 {
		t.Errorf("rung 2 touched budgets before shedding finished: %+v", cfg)
	}

	cfg, steps = degradeConfig(base, 3)
	if cfg.SearchParallel != 0 || !hasStep(steps, "search-shed") || !hasStep(steps, "budget-shrink") {
		t.Errorf("rung 3: cfg=%+v steps=%v", cfg, steps)
	}

	// A sequential base config has nothing to shed — no misleading label.
	if _, steps = degradeConfig(wsp.Config{Strategy: wsp.RoutePacking}, 3); hasStep(steps, "search-shed") {
		t.Errorf("sequential config labeled search-shed: %v", steps)
	}
}

func hasStep(steps []string, want string) bool {
	for _, s := range steps {
		if s == want {
			return true
		}
	}
	return false
}
