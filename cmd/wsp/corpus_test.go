package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCmdCorpusList drives the list subcommand end to end: every family
// header and at least one instance per family must render.
func TestCmdCorpusList(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return cmdCorpusList([]string{"-seed", "1"})
	})
	if err != nil {
		t.Fatalf("corpus list: %v\n%s", err, out)
	}
	for _, want := range []string{"stripes (", "rings (", "demand (", "movingai (",
		"stripes/S1-R2-V2-L6-st1", "rings/10x6-L6-st1", "demand/bursty-0", "movingai/pods-12x7"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q:\n%s", want, out)
		}
	}
	if _, err := captureStdout(t, func() error {
		return cmdCorpusList([]string{"-families", "nope"})
	}); err == nil {
		t.Error("unknown family accepted")
	}
}

// TestCmdCorpusRun drives the run subcommand on one small family and
// checks the table, the JSON report file, and the bench-line file.
func TestCmdCorpusRun(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "report.json")
	benchPath := filepath.Join(dir, "bench.txt")
	out, err := captureStdout(t, func() error {
		return cmdCorpusRun(context.Background(), []string{
			"-families", "rings", "-label", "t", "-json", jsonPath, "-bench", benchPath,
		})
	})
	if err != nil {
		t.Fatalf("corpus run: %v\n%s", err, out)
	}
	if !strings.Contains(out, "rings") || !strings.Contains(out, "4/4") {
		t.Errorf("run table missing rings solve rate:\n%s", out)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Schema    string `json:"schema"`
		Instances []struct {
			Name    string `json:"name"`
			Verdict string `json:"verdict"`
		} `json:"instances"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report not JSON: %v", err)
	}
	if rep.Schema != "wsp-corpus-report/v1" || len(rep.Instances) != 4 {
		t.Errorf("report schema %q with %d instances", rep.Schema, len(rep.Instances))
	}
	bench, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(bench), "BenchmarkCorpus/family=rings/inst=10x6-L6-st1") {
		t.Errorf("bench lines missing corpus name:\n%s", bench)
	}
}

// TestCmdCorpusCalibrate drives the calibrate subcommand on one instance
// family with a two-point budget grid.
func TestCmdCorpusCalibrate(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return cmdCorpusCalibrate(context.Background(), []string{
			"-families", "rings", "-strategy", "route", "-autorows", "0,16",
		})
	})
	if err != nil {
		t.Fatalf("corpus calibrate: %v\n%s", err, out)
	}
	for _, want := range []string{"score", "recommended: ", "2 candidates × 4 instances"} {
		if !strings.Contains(out, want) {
			t.Errorf("calibrate output missing %q:\n%s", want, out)
		}
	}
	if err := cmdCorpusCalibrate(context.Background(), []string{"-autorows", "x"}); err == nil {
		t.Error("bad autorows list accepted")
	}
	if err := cmdCorpus(context.Background(), []string{"bogus"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
}
