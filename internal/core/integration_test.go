package core

import (
	"context"
	"testing"

	"repro/internal/maps"
	"repro/internal/warehouse"
	"repro/internal/workload"
)

// TestTableIInstancesSolve runs the nine Table I instances end to end
// (synthesis → cycles → realization → simulation) with the route-packing
// strategy and verifies every plan services its workload within T = 3600.
func TestTableIInstancesSolve(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cases := []struct {
		name  string
		build func() (*maps.Map, error)
		units []int
	}{
		{"SortingCenter", maps.SortingCenter, []int{160, 320, 480}},
		{"Fulfillment1", maps.Fulfillment1, []int{550, 825, 1100}},
		{"Fulfillment2", maps.Fulfillment2, []int{1200, 1320, 1440}},
	}
	const T = 3600
	for _, tc := range cases {
		m, err := tc.build()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for _, total := range tc.units {
			wl, err := workload.Uniform(m.W, total)
			if err != nil {
				t.Fatalf("%s/%d: workload: %v", tc.name, total, err)
			}
			res, err := Solve(context.Background(), m.S, wl, T, Options{Strategy: RoutePacking})
			if err != nil {
				t.Errorf("%s/%d: %v", tc.name, total, err)
				continue
			}
			if ok, why := warehouse.Services(m.W, res.Plan, wl); !ok {
				t.Errorf("%s/%d: not serviced: %v", tc.name, total, why)
			}
			t.Logf("%s units=%d: agents=%d cycles=%d serviced@%d synth=%v attempts=%d",
				tc.name, total, res.Stats.Agents, len(res.CycleSet.Cycles),
				res.Sim.ServicedAt, res.Timing.Synthesis, res.Attempts)
		}
	}
}
