package grid

import "sync"

// int32Pool recycles vertex-indexed scratch buffers across simulation and
// realization runs (and across the core.Solve retry loop).
var int32Pool sync.Pool // holds *[]int32

// GetInt32 returns a zeroed []int32 of length n, reusing a pooled buffer
// when one is large enough. Callers that use the stamp/epoch idiom rely on
// the zeroing: a fresh buffer compares unequal to any positive stamp.
// Return the buffer with PutInt32 when done; failing to do so merely leaks
// it to the garbage collector.
func GetInt32(n int) []int32 {
	if bp, _ := int32Pool.Get().(*[]int32); bp != nil && cap(*bp) >= n {
		b := (*bp)[:n]
		clear(b)
		return b
	}
	return make([]int32, n)
}

// PutInt32 returns a buffer obtained from GetInt32 to the pool. The buffer
// must not be used after Put.
func PutInt32(b []int32) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	int32Pool.Put(&b)
}
