package flow

import (
	"context"
	"fmt"

	"repro/internal/contracts"
	"repro/internal/lp"
	"repro/internal/traffic"
	"repro/internal/warehouse"
)

// Certificate classifies an admission check.
type Certificate int

// Admission outcomes.
const (
	// CertInfeasible: the LP relaxation of the contract conjunction is
	// infeasible, which soundly proves no agent flow set (integral or not)
	// services the workload in the given horizon.
	CertInfeasible Certificate = iota
	// CertMaybeFeasible: the relaxation is satisfiable; the integral
	// problem may or may not be.
	CertMaybeFeasible
)

func (c Certificate) String() string {
	switch c {
	case CertInfeasible:
		return "infeasible"
	case CertMaybeFeasible:
		return "maybe-feasible"
	}
	return "unknown"
}

// Admit runs the fast admission test: it compiles the §IV-D contract
// conjunction and solves only its continuous relaxation — no branch and
// bound — so it can gate expensive synthesis attempts. The relaxation is
// solved once, exactly: the lp core's int64 small-rational fast path makes
// the exact engine competitive with the float one on contract-shaped
// problems, and an exact verdict needs no confirmation pass (the seed
// implementation solved in float first and re-solved exactly to confirm
// infeasibility).
func Admit(ctx context.Context, s *traffic.System, wl warehouse.Workload, T int, opts Options) (Certificate, error) {
	margin := opts.WarmupMargin
	if margin == 0 {
		margin = autoMargin(s, T)
	}
	_, qc, qeff, err := periods(s, T, margin)
	if err != nil {
		// A horizon below one cycle period cannot host any plan with
		// positive demand.
		if wl.TotalUnits() > 0 {
			return CertInfeasible, nil
		}
		return CertMaybeFeasible, nil
	}
	cts, err := CompileSystemContract(s, qc, false)
	if err != nil {
		return CertMaybeFeasible, err
	}
	cw, err := CompileWorkloadContract(s, wl, qeff)
	if err != nil {
		return CertMaybeFeasible, err
	}
	goal, err := contracts.Conjoin(cts, cw)
	if err != nil {
		return CertMaybeFeasible, err
	}
	p, _ := goal.ToProblem()
	sol, err := lp.SolveLPWith(p, lp.SolveOptions{Simplex: opts.Simplex, AutoRows: opts.AutoRows, Cancel: cancelOf(ctx)})
	if err != nil {
		return CertMaybeFeasible, err
	}
	switch sol.Status {
	case lp.StatusInfeasible:
		return CertInfeasible, nil
	case lp.StatusCanceled:
		return CertMaybeFeasible, fmt.Errorf("flow: admission check abandoned: %w", lp.ErrCanceled)
	}
	return CertMaybeFeasible, nil
}

// MustAdmit wraps Admit into an error for pipeline use: a CertInfeasible
// verdict becomes an *InfeasibleError carrying the certificate.
func MustAdmit(ctx context.Context, s *traffic.System, wl warehouse.Workload, T int, opts Options) error {
	cert, err := Admit(ctx, s, wl, T, opts)
	if err != nil {
		return err
	}
	if cert == CertInfeasible {
		return &InfeasibleError{Cert: CertInfeasible, Horizon: T, Reason: "LP certificate"}
	}
	return nil
}
