package lp

import (
	"math"
	"math/big"
)

// arith abstracts the field the simplex pivots over, so one implementation
// serves both the exact rational engine and the float64 fast path.
type arith[T any] interface {
	add(a, b T) T
	sub(a, b T) T
	mul(a, b T) T
	div(a, b T) T
	// sign returns -1, 0 or +1; the float implementation applies a tolerance.
	sign(a T) int
	zero() T
	one() T
	fromRat(r *big.Rat) T
	toRat(a T) *big.Rat
}

// ratArith is exact arithmetic over *big.Rat. Values are treated as
// immutable; every operation allocates.
type ratArith struct{}

func (ratArith) add(a, b *big.Rat) *big.Rat { return new(big.Rat).Add(a, b) }
func (ratArith) sub(a, b *big.Rat) *big.Rat { return new(big.Rat).Sub(a, b) }
func (ratArith) mul(a, b *big.Rat) *big.Rat { return new(big.Rat).Mul(a, b) }
func (ratArith) div(a, b *big.Rat) *big.Rat { return new(big.Rat).Quo(a, b) }
func (ratArith) sign(a *big.Rat) int        { return a.Sign() }
func (ratArith) zero() *big.Rat             { return new(big.Rat) }
func (ratArith) one() *big.Rat              { return big.NewRat(1, 1) }
func (ratArith) fromRat(r *big.Rat) *big.Rat {
	return new(big.Rat).Set(r)
}
func (ratArith) toRat(a *big.Rat) *big.Rat { return new(big.Rat).Set(a) }

// floatArith is float64 arithmetic with an absolute tolerance used by sign.
type floatArith struct{ eps float64 }

func (floatArith) add(a, b float64) float64 { return a + b }
func (floatArith) sub(a, b float64) float64 { return a - b }
func (floatArith) mul(a, b float64) float64 { return a * b }
func (floatArith) div(a, b float64) float64 { return a / b }
func (f floatArith) sign(a float64) int {
	if a > f.eps {
		return 1
	}
	if a < -f.eps {
		return -1
	}
	return 0
}
func (floatArith) zero() float64 { return 0 }
func (floatArith) one() float64  { return 1 }
func (floatArith) fromRat(r *big.Rat) float64 {
	v, _ := r.Float64()
	return v
}
func (floatArith) toRat(a float64) *big.Rat {
	// Round near-integers exactly so integral solutions survive conversion.
	if r := math.Round(a); math.Abs(a-r) < 1e-7 && math.Abs(r) < 1e15 {
		return big.NewRat(int64(r), 1)
	}
	out := new(big.Rat)
	out.SetFloat64(a)
	return out
}

// defaultEps is the float engine's zero tolerance.
const defaultEps = 1e-9
