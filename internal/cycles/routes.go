package cycles

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/lp"
	"repro/internal/traffic"
	"repro/internal/warehouse"
)

// Options tunes Synthesize.
type Options struct {
	// WarmupMargin reserves cycle periods for realization warm-up. Zero
	// selects an automatic margin.
	WarmupMargin int
	// MaxLegsPerCycle caps how many (row, product) legs are packed into one
	// cycle. Zero means the default of 32.
	MaxLegsPerCycle int
	// Cancel, when non-nil, aborts the packing loop when the channel fires
	// (normally a context's Done channel). The check runs once per placed
	// leg — before each route/placement step, never inside the BFS — so a
	// cancelled synthesis returns within one packed cycle rather than one
	// full synthesis, and an uncancelled run performs exactly the work it
	// would with no channel installed. The error wraps lp.ErrCanceled.
	Cancel <-chan struct{}
	// Scratch, when non-nil, supplies reusable buffers so repeated
	// syntheses (the core.Solve retry loop, solver-pool workers) stay
	// allocation-free on the packing hot path. A Scratch must not be shared
	// between concurrent Synthesize calls.
	Scratch *Scratch
	// PackParallel probes route candidates for a new cycle with up to this
	// many workers (0 or 1 = sequential). Opening a cycle tries candidate
	// target rows in a deterministic order, and each probe — routing a loop
	// over the residual capacities — is side-effect-free, so probes run
	// concurrently in candidate-order waves on private routing scratches
	// and the first success in CANDIDATE order commits, discarding any
	// later speculative results. The produced Set (and every error string,
	// including the accumulated per-candidate attempt log) is bit-identical
	// to the sequential packing at every worker count. Effective workers
	// are additionally clamped by a process-wide GOMAXPROCS-sized token
	// pool shared with nested callers (a solver pool running many
	// syntheses cannot oversubscribe the machine); clamping never changes
	// answers. Waves also carry the cancellation check, so a cancelled
	// synthesis returns within one probe wave rather than one full cycle
	// opening.
	PackParallel int
}

// packTokens caps the extra route-probe workers alive in the whole process,
// mirroring the lp search-worker pool: nested parallelism (a solver pool of
// concurrent syntheses, each with PackParallel > 1) acquires from this one
// pool, and a synthesis that gets no token probes sequentially — which by
// construction returns the same Set. The floor of two keeps the machinery
// exercised on one-CPU runners.
var packTokens = make(chan struct{}, max(2, runtime.GOMAXPROCS(0)))

// Scratch holds the per-synthesis working buffers of the route packer. The
// zero value is ready to use; buffers grow to the largest instance seen and
// are reused on subsequent calls.
type Scratch struct {
	stockUsed []int32 // row*|ρ|+product -> units already assigned
	residual  []int   // component -> remaining intake capacity
	count     []int32 // component -> occurrences on the candidate loop
	prev      []int32 // BFS parent, -1 = unvisited
	queue     []traffic.ComponentID
	path      []traffic.ComponentID
	loop      []traffic.ComponentID
	cands     []traffic.ComponentID
	route     []*Scratch // per-worker routing scratches for parallel probes
}

// grow readies the scratch for a system with n components and p products.
func (sc *Scratch) grow(n, p int) {
	if cap(sc.stockUsed) < n*p {
		sc.stockUsed = make([]int32, n*p)
	}
	sc.stockUsed = sc.stockUsed[:n*p]
	for i := range sc.stockUsed {
		sc.stockUsed[i] = 0
	}
	if cap(sc.residual) < n {
		sc.residual = make([]int, n)
	}
	sc.residual = sc.residual[:n]
	sc.growRoute(n)
}

// growRoute readies just the loop-routing buffers (BFS state and occurrence
// counters) — the subset a parallel route probe needs on its private
// sub-scratch.
func (sc *Scratch) growRoute(n int) {
	if cap(sc.count) < n {
		sc.count = make([]int32, n)
		sc.prev = make([]int32, n)
	}
	sc.count = sc.count[:n]
	sc.prev = sc.prev[:n]
	for i := 0; i < n; i++ {
		sc.count[i] = 0
	}
}

// routeScratch returns the i-th per-worker routing sub-scratch, ready for a
// system with n components.
func (sc *Scratch) routeScratch(i, n int) *Scratch {
	for len(sc.route) <= i {
		sc.route = append(sc.route, &Scratch{})
	}
	sub := sc.route[i]
	sub.growRoute(n)
	return sub
}

// rowRef locates a shelving row on an open cycle's loop.
type rowRef struct {
	row traffic.ComponentID
	idx int // first index of the row within Cycle.Components
}

// Synthesize builds an agent cycle set directly by route packing — the
// strategy that scales to Table I. Each product's demand is split over its
// stocked shelving rows, chunked into legs, and legs are packed into cycles
// whose loops are routed over the residual component capacities (Property
// 4.1: a component is entered by at most ⌊|Ci|/2⌋ concurrent cycles).
//
// Compared with the flow-set path (flow.Synthesize* followed by
// FromFlowSet), route packing works at total-units granularity rather than
// integer units-per-period, which is what instances with hundreds of
// products and demand ≪ one unit per period per product require.
//
// All bookkeeping lives in flat slices indexed by the traffic system's
// component and arc numbering; with a warm Options.Scratch the packing loop
// itself does not allocate.
func Synthesize(s *traffic.System, wl warehouse.Workload, T int, opts Options) (*Set, error) {
	maxLegs := opts.MaxLegsPerCycle
	if maxLegs == 0 {
		maxLegs = 32
	}
	tc := s.CycleTime()
	if tc <= 0 {
		return nil, fmt.Errorf("cycles: traffic system has zero cycle time")
	}
	qc := T / tc
	if qc < 1 {
		return nil, fmt.Errorf("cycles: horizon %d shorter than one cycle period %d", T, tc)
	}
	margin := opts.WarmupMargin
	if margin == 0 {
		// Warm-up ends once every agent has completed one revolution; loop
		// lengths are bounded by the component count. Cap the reserve at an
		// eighth of the budget so tight instances keep enough per-cycle
		// delivery budget (the Solve retry loop widens the margin if the
		// realization falls short).
		margin = s.NumComponents() + 2
		if margin > qc/8 {
			margin = qc / 8
		}
	}
	qeff := qc - margin
	if qeff < 1 {
		qeff = 1
	}

	n := s.NumComponents()
	p := s.W.NumProducts
	sc := opts.Scratch
	if sc == nil {
		sc = &Scratch{}
	}
	sc.grow(n, p)

	cs := &Set{S: s, Tc: tc, Qc: qc, QEff: qeff}
	residual := sc.residual
	for i, c := range s.Components {
		residual[i] = c.Capacity()
	}
	queues := s.StationQueues()
	rows := sortedRows(s)

	// Feasibility-driven packing. A routed loop passes a set of shelving
	// rows; any product stocked on any of those rows can join the cycle as a
	// leg, sharing the cycle's delivery budget of qeff units (one queue
	// visit per period). Products are walked in index order; each share goes
	// to an already-open cycle when one passes a stocked row, and a new
	// cycle is routed over the residual capacities otherwise. Capacity
	// consumption is therefore interleaved with allocation, so the packing
	// self-balances across stripes and aisles.
	type openCycle struct {
		cyc      *Cycle
		budget   int
		legs     int
		queueIdx int
		rows     []rowRef // shelving rows on the loop, in loop order
	}
	var open []*openCycle

	stockLeft := func(ri traffic.ComponentID, k int) int {
		return s.UnitsAt(ri, warehouse.ProductID(k)) - int(sc.stockUsed[int(ri)*p+k])
	}
	addLeg := func(oc *openCycle, ri traffic.ComponentID, pickIdx, k, units int) {
		oc.cyc.Legs = append(oc.cyc.Legs, Leg{
			PickIdx: pickIdx,
			DropIdx: oc.queueIdx,
			Product: warehouse.ProductID(k),
			Quota:   units,
		})
		oc.budget -= units
		oc.legs++
		sc.stockUsed[int(ri)*p+k] += int32(units)
	}
	// Opening a cycle is the expensive step of the packing loop: each
	// candidate row costs a full multi-waypoint routing pass over the
	// residual graph. The candidates are the per-cycle work items of the
	// parallel packer — a failed probe leaves the shared state untouched
	// (capacity is consumed only on commit), so any number of candidates
	// may be probed concurrently against the same residual snapshot, and
	// the merge simply takes the first success in candidate order, exactly
	// as the sequential scan would. pack is the wave width.
	pack := 1
	if opts.PackParallel > 1 {
		acquired := 0
		for i := 1; i < opts.PackParallel; i++ {
			select {
			case packTokens <- struct{}{}:
				acquired++
			default:
			}
		}
		defer func() {
			for ; acquired > 0; acquired-- {
				<-packTokens
			}
		}()
		pack += acquired
	}
	type probe struct {
		target traffic.ComponentID
		loop   []traffic.ComponentID
		err    error
	}
	probeCand := func(ri traffic.ComponentID, rsc *Scratch) probe {
		// Target the last segment of the row's aisle chain so the loop
		// traverses every segment of the aisle.
		target := zoneLast(s, ri)
		loop, err := findLoop(s, []traffic.ComponentID{target}, queues, residual, rsc)
		return probe{target: target, loop: loop, err: err}
	}
	commitCand := func(loop []traffic.ComponentID) *openCycle {
		for _, comp := range loop {
			residual[comp]--
		}
		cyc := &Cycle{Components: loop}
		oc := &openCycle{cyc: cyc, budget: qeff, queueIdx: -1}
		for i, comp := range cyc.Components {
			if s.Components[comp].Kind == traffic.ShelvingRow {
				seen := false
				for _, rr := range oc.rows {
					if rr.row == comp {
						seen = true
						break
					}
				}
				if !seen {
					oc.rows = append(oc.rows, rowRef{row: comp, idx: i})
				}
			}
			if oc.queueIdx < 0 && s.Components[comp].Kind == traffic.StationQueue {
				oc.queueIdx = i
			}
		}
		cs.Cycles = append(cs.Cycles, cyc)
		open = append(open, oc)
		return oc
	}
	newCycle := func(k int) (*openCycle, error) {
		// Candidate target rows, by remaining stock of product k.
		cands := sc.cands[:0]
		for _, ri := range rows {
			if stockLeft(ri, k) > 0 {
				cands = append(cands, ri)
			}
		}
		sc.cands = cands
		sort.Slice(cands, func(a, b int) bool {
			sa, sb := stockLeft(cands[a], k), stockLeft(cands[b], k)
			if sa != sb {
				return sa > sb
			}
			return cands[a] < cands[b]
		})
		var attempts []string
		probes := make([]probe, pack)
		for start := 0; start < len(cands); start += pack {
			// Per-wave cancellation: probing dominates the cost of opening
			// a cycle, so checking here (at every wave width, the parallel
			// ones included) bounds the cancel latency by one wave instead
			// of one full cycle opening.
			select {
			case <-opts.Cancel:
				return nil, fmt.Errorf("cycles: route probing canceled: %w", lp.ErrCanceled)
			default:
			}
			wave := cands[start:min(start+pack, len(cands))]
			if pack > 1 && len(wave) > 1 {
				var wg sync.WaitGroup
				for i := range wave {
					rsc := sc.routeScratch(i, n) // resolved before the spawn: the sub-scratch table is not goroutine-safe
					wg.Add(1)
					go func(i int, rsc *Scratch) {
						defer wg.Done()
						probes[i] = probeCand(wave[i], rsc)
					}(i, rsc)
				}
				wg.Wait()
			} else {
				for i := range wave {
					probes[i] = probeCand(wave[i], sc)
				}
			}
			for i, pr := range probes[:len(wave)] {
				if pr.err != nil {
					attempts = append(attempts, fmt.Sprintf("row %d (target %d): %v", wave[i], pr.target, pr.err))
					continue
				}
				// First success in candidate order wins; any speculative
				// results after it are discarded unused, so the committed
				// Set never depends on the wave width.
				return commitCand(pr.loop), nil
			}
		}
		if len(attempts) == 0 {
			return nil, fmt.Errorf("cycles: product %d has no stocked shelving row", k)
		}
		return nil, fmt.Errorf("cycles: no feasible loop for product %d: %s", k, strings.Join(attempts, "; "))
	}

	for k, want := range wl.Units {
		remaining := want
		for remaining > 0 {
			select {
			case <-opts.Cancel:
				return nil, fmt.Errorf("cycles: route packing canceled with %d units of product %d unplaced: %w",
					remaining, k, lp.ErrCanceled)
			default:
			}
			// Prefer an open cycle passing a row that still stocks k. Among
			// equal gives the lowest row wins, then the earliest-opened cycle.
			var bestOC *openCycle
			bestPick := 0
			var bestRow traffic.ComponentID
			bestGive := 0
			for _, oc := range open {
				if oc.budget <= 0 || oc.legs >= maxLegs {
					continue
				}
				for _, rr := range oc.rows {
					give := stockLeft(rr.row, k)
					if give > oc.budget {
						give = oc.budget
					}
					if give > remaining {
						give = remaining
					}
					if give > bestGive || (give == bestGive && give > 0 && (bestOC == nil || rr.row < bestRow)) {
						bestOC, bestRow, bestPick, bestGive = oc, rr.row, rr.idx, give
					}
				}
			}
			if bestGive > 0 {
				addLeg(bestOC, bestRow, bestPick, k, bestGive)
				remaining -= bestGive
				continue
			}
			oc, err := newCycle(k)
			if err != nil {
				return nil, fmt.Errorf("cycles: cannot place %d remaining units of product %d: %w", remaining, k, err)
			}
			// The new cycle must serve k (its target row stocks it).
			give := 0
			givePick := 0
			var giveRow traffic.ComponentID
			for _, rr := range oc.rows {
				if g := stockLeft(rr.row, k); g > give {
					give, giveRow, givePick = g, rr.row, rr.idx
				}
			}
			if give > oc.budget {
				give = oc.budget
			}
			if give > remaining {
				give = remaining
			}
			if give <= 0 {
				return nil, fmt.Errorf("cycles: routed cycle for product %d does not pass a stocked row", k)
			}
			addLeg(oc, giveRow, givePick, k, give)
			remaining -= give
		}
	}
	// Drop cycles that ended up without legs (cannot happen today, but keep
	// the invariant Check expects).
	kept := cs.Cycles[:0]
	for _, c := range cs.Cycles {
		if len(c.Legs) > 0 {
			kept = append(kept, c)
		}
	}
	cs.Cycles = kept
	if errs := cs.Check(wl); len(errs) > 0 {
		return nil, fmt.Errorf("cycles: route packing produced an invalid cycle set: %v", errs[0])
	}
	return cs, nil
}

// zoneLast follows the chain of shelving-row components downstream from ri
// and returns the last row segment of the aisle, so a loop targeting it
// traverses the whole aisle.
func zoneLast(s *traffic.System, ri traffic.ComponentID) traffic.ComponentID {
	cur := ri
	for steps := 0; steps < s.NumComponents(); steps++ {
		next := traffic.ComponentID(-1)
		for _, out := range s.Outlets[cur] {
			if s.Components[out].Kind == traffic.ShelvingRow {
				next = out
				break
			}
		}
		if next < 0 {
			return cur
		}
		cur = next
	}
	return cur
}

// routeCycle builds a closed loop visiting the given rows (in order) and one
// station queue, over components with positive residual capacity, and
// decrements the capacities it consumes.
func routeCycle(s *traffic.System, rows []traffic.ComponentID, queues []traffic.ComponentID, residual []int, sc *Scratch) (*Cycle, error) {
	best, err := findLoop(s, rows, queues, residual, sc)
	if err != nil {
		return nil, err
	}
	for _, comp := range best {
		residual[comp]--
	}
	return &Cycle{Components: best}, nil
}

// findLoop is the side-effect-free probe half of routeCycle: it routes a
// closed loop over the rows and one station queue without consuming any
// capacity, returning an owned slice. Among the queues that admit a
// capacity-feasible loop, the one giving the shortest loop wins — locality
// keeps loops inside their own circulation stripe, which is what preserves
// corridor capacity for the remaining cycles. Reading only the residual
// capacities (and writing only sc), concurrent findLoop calls with private
// scratches are safe and independent — the property the parallel candidate
// waves of Synthesize build on.
func findLoop(s *traffic.System, rows []traffic.ComponentID, queues []traffic.ComponentID, residual []int, sc *Scratch) ([]traffic.ComponentID, error) {
	var best []traffic.ComponentID
	var lastErr error
	for _, q := range queues {
		if residual[q] <= 0 {
			continue
		}
		loop, err := routeLoop(s, rows, q, residual, sc)
		if err != nil {
			lastErr = err
			continue
		}
		// The loop must fit the residual capacities, one unit per occurrence.
		ok := true
		for _, comp := range loop {
			sc.count[comp]++
			if int(sc.count[comp]) > residual[comp] {
				ok = false
				break
			}
		}
		for _, comp := range loop {
			sc.count[comp] = 0
		}
		if !ok {
			lastErr = fmt.Errorf("cycles: loop revisits a component beyond its residual capacity")
			continue
		}
		if best == nil || len(loop) < len(best) {
			best = append(best[:0], loop...)
		}
	}
	if best == nil {
		if lastErr == nil {
			lastErr = fmt.Errorf("cycles: no station queue has residual capacity")
		}
		return nil, lastErr
	}
	return best, nil
}

// routeLoop routes waypoints rows[0] -> rows[1] -> ... -> queue -> rows[0]
// through Gs, using only components with residual capacity (waypoints
// included), and returns the loop with the final return to rows[0] omitted
// (the cycle wraps implicitly). The returned slice aliases sc.loop and is
// only valid until the next routeLoop call.
func routeLoop(s *traffic.System, rows []traffic.ComponentID, queue traffic.ComponentID, residual []int, sc *Scratch) ([]traffic.ComponentID, error) {
	loop := sc.loop[:0]
	prevWP := rows[0]
	for i := 0; i <= len(rows); i++ {
		nextWP := queue
		if i < len(rows)-1 {
			nextWP = rows[i+1]
		} else if i == len(rows) {
			nextWP = rows[0]
		}
		seg, err := bfsComponents(s, prevWP, nextWP, residual, sc)
		if err != nil {
			sc.loop = loop
			return nil, err
		}
		loop = append(loop, seg[:len(seg)-1]...) // drop the junction duplicate
		prevWP = nextWP
	}
	sc.loop = loop
	return loop, nil
}

// bfsComponents finds a shortest path from a to b in Gs restricted to
// components with positive residual capacity (a and b themselves must have
// capacity too). The returned slice aliases sc.path and is only valid until
// the next call.
func bfsComponents(s *traffic.System, a, b traffic.ComponentID, residual []int, sc *Scratch) ([]traffic.ComponentID, error) {
	if residual[a] <= 0 || residual[b] <= 0 {
		return nil, fmt.Errorf("cycles: waypoint %d or %d has no residual capacity", a, b)
	}
	if a == b {
		sc.path = append(sc.path[:0], a)
		return sc.path, nil
	}
	prev := sc.prev
	for i := range prev {
		prev[i] = -1
	}
	prev[a] = int32(a)
	queue := append(sc.queue[:0], a)
	defer func() { sc.queue = queue[:0] }()
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		for _, u := range s.Outlets[v] {
			if prev[u] >= 0 || residual[u] <= 0 {
				continue
			}
			prev[u] = int32(v)
			if u == b {
				path := sc.path[:0]
				for x := b; ; x = traffic.ComponentID(prev[x]) {
					path = append(path, x)
					if x == a {
						break
					}
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				sc.path = path
				return path, nil
			}
			queue = append(queue, u)
		}
	}
	return nil, fmt.Errorf("cycles: no capacity-feasible route from component %d to %d", a, b)
}
