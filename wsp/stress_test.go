package wsp

import (
	"context"
	"sync"
	"testing"
)

// TestSharedSolverStress interleaves Solve, SolveBatch, and Sweep on ONE
// shared Solver from many goroutines — the wspd service's usage pattern —
// and requires every answer to be bit-identical to a quiet sequential run.
// Run under -race this also proves the facade's scratch pooling and the
// sweep's internal worker pool never share state across concurrent calls.
func TestSharedSolverStress(t *testing.T) {
	m := tinyMap(t)
	instA := tinyInstance(t, m, 12, 800)
	instB := tinyInstance(t, m, 8, 800)
	spec := SweepSpec{
		Corridors: []int{2}, Lens: []int{6}, Stripes: 1, Products: 2,
		Units: 60, Points: 2, Horizon: 1200,
	}
	solver := New(WithStrategy(ContractILP), WithParallel(2))
	ctx := context.Background()

	// Quiet sequential baselines.
	wantA, err := solver.Solve(ctx, instA)
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := solver.Solve(ctx, instB)
	if err != nil {
		t.Fatal(err)
	}
	wantSweep, err := solver.Sweep(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	sameResult := func(t *testing.T, tag string, got, want *Result) {
		t.Helper()
		if got.Stats.Agents != want.Stats.Agents || got.Sim.ServicedAt != want.Sim.ServicedAt ||
			len(got.CycleSet.Cycles) != len(want.CycleSet.Cycles) {
			t.Errorf("%s: got agents=%d serviced=%d cycles=%d, want agents=%d serviced=%d cycles=%d",
				tag, got.Stats.Agents, got.Sim.ServicedAt, len(got.CycleSet.Cycles),
				want.Stats.Agents, want.Sim.ServicedAt, len(want.CycleSet.Cycles))
		}
	}

	const rounds = 4
	var wg sync.WaitGroup
	for g := 0; g < rounds; g++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			for i := 0; i < 2; i++ {
				got, err := solver.Solve(ctx, instA)
				if err != nil {
					t.Errorf("solve: %v", err)
					return
				}
				sameResult(t, "solve", got, wantA)
			}
		}()
		go func() {
			defer wg.Done()
			for i, r := range solver.SolveBatch(ctx, []Instance{instA, instB, instA}) {
				if r.Err != nil {
					t.Errorf("batch slot %d: %v", i, r.Err)
					return
				}
				want := wantA
				if i == 1 {
					want = wantB
				}
				sameResult(t, "batch", r.Res, want)
			}
		}()
		go func() {
			defer wg.Done()
			cells, err := solver.Sweep(ctx, spec)
			if err != nil {
				t.Errorf("sweep: %v", err)
				return
			}
			if len(cells) != len(wantSweep) {
				t.Errorf("sweep: %d cells, want %d", len(cells), len(wantSweep))
				return
			}
			for ci, c := range cells {
				want := wantSweep[ci]
				if len(c.Points) != len(want.Points) {
					t.Errorf("sweep cell %d: %d points, want %d", ci, len(c.Points), len(want.Points))
					continue
				}
				for pi, p := range c.Points {
					wp := want.Points[pi]
					if (p.Err == nil) != (wp.Err == nil) {
						t.Errorf("sweep cell %d point %d: err=%v, want err=%v", ci, pi, p.Err, wp.Err)
						continue
					}
					if p.Err == nil {
						sameResult(t, "sweep", p.Result, wp.Result)
					}
				}
			}
		}()
	}
	wg.Wait()
}
