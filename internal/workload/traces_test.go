package workload

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/warehouse"
)

func TestFromEntries(t *testing.T) {
	w := smallWarehouse(t)
	wl, err := FromEntries(w, []Entry{{Product: 0, Units: 5}, {Product: 2, Units: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wl.Units, []int{5, 0, 3}) {
		t.Errorf("units = %v, want [5 0 3]", wl.Units)
	}
}

func TestFromEntriesRejectsZeroUnits(t *testing.T) {
	w := smallWarehouse(t)
	_, err := FromEntries(w, []Entry{{Product: 0, Units: 0}})
	assertDemandError(t, err, 0, "non-positive units")
}

func TestFromEntriesRejectsNegativeUnits(t *testing.T) {
	w := smallWarehouse(t)
	_, err := FromEntries(w, []Entry{{Product: 1, Units: -4}})
	assertDemandError(t, err, 1, "non-positive units")
}

func TestFromEntriesRejectsDuplicateProduct(t *testing.T) {
	w := smallWarehouse(t)
	_, err := FromEntries(w, []Entry{{Product: 1, Units: 2}, {Product: 1, Units: 3}})
	assertDemandError(t, err, 1, "duplicate product")
}

func TestFromEntriesRejectsUnknownProduct(t *testing.T) {
	w := smallWarehouse(t)
	_, err := FromEntries(w, []Entry{{Product: 7, Units: 2}})
	assertDemandError(t, err, 7, "unknown product")
	_, err = FromEntries(w, []Entry{{Product: -1, Units: 2}})
	assertDemandError(t, err, -1, "unknown product")
}

// assertDemandError checks both halves of the taxonomy contract: the
// sentinel answers errors.Is, and the typed error carries the entry.
func assertDemandError(t *testing.T, err error, product warehouse.ProductID, reason string) {
	t.Helper()
	if err == nil {
		t.Fatal("invalid demand accepted")
	}
	if !errors.Is(err, ErrInvalidDemand) {
		t.Fatalf("error %v does not wrap ErrInvalidDemand", err)
	}
	var de *DemandError
	if !errors.As(err, &de) {
		t.Fatalf("error %v is not a *DemandError", err)
	}
	if de.Product != product || de.Reason != reason {
		t.Errorf("DemandError{%d, %q}, want {%d, %q}", de.Product, de.Reason, product, reason)
	}
}

func TestBurstyConcentratesAndConserves(t *testing.T) {
	w := smallWarehouse(t)
	// Seed 1 makes product 0 (stock 40) the hot product, so the burst is
	// not stock-clamped away.
	wl, err := Bursty(w, 40, 1, 0.8, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if wl.TotalUnits() != 40 {
		t.Errorf("total = %d, want 40", wl.TotalUnits())
	}
	max := 0
	for _, u := range wl.Units {
		if u > max {
			max = u
		}
	}
	// 80% of 40 on one hot product (plus its uniform share) dominates.
	if max < 32 {
		t.Errorf("hot product got %d units, want ≥ 32", max)
	}
}

func TestBurstyDeterministicPerSeed(t *testing.T) {
	w := smallWarehouse(t)
	a, err := Bursty(w, 40, 2, 0.7, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bursty(w, 40, 2, 0.7, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Units, b.Units) {
		t.Errorf("same seed diverged: %v vs %v", a.Units, b.Units)
	}
}

func TestBurstyRejectsBadShape(t *testing.T) {
	w := smallWarehouse(t)
	if _, err := Bursty(w, 10, 0, 0.5, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero hot products accepted")
	}
	if _, err := Bursty(w, 10, 1, 1.5, rand.New(rand.NewSource(1))); err == nil {
		t.Error("hot share above 1 accepted")
	}
}

func TestDiurnalLevelCurve(t *testing.T) {
	if l := DiurnalLevel(12, 24); l != 1000 {
		t.Errorf("peak level = %d, want 1000", l)
	}
	if l := DiurnalLevel(0, 24); l != 250 {
		t.Errorf("trough level = %d, want 250", l)
	}
	if a, b := DiurnalLevel(6, 24), DiurnalLevel(18, 24); a != b {
		t.Errorf("shoulder asymmetry: %d vs %d", a, b)
	}
	if a, b := DiurnalLevel(-6, 24), DiurnalLevel(18, 24); a != b {
		t.Errorf("negative phase %d != wrapped phase %d", a, b)
	}
}

func TestDiurnalScalesWithPhase(t *testing.T) {
	w := smallWarehouse(t)
	peak, err := Diurnal(w, 40, 12, 24)
	if err != nil {
		t.Fatal(err)
	}
	trough, err := Diurnal(w, 40, 0, 24)
	if err != nil {
		t.Fatal(err)
	}
	if peak.TotalUnits() != 40 {
		t.Errorf("peak total = %d, want 40", peak.TotalUnits())
	}
	if trough.TotalUnits() != 10 {
		t.Errorf("trough total = %d, want 10 (25%% of peak)", trough.TotalUnits())
	}
}

func TestSpikeDemandsFullStock(t *testing.T) {
	w := smallWarehouse(t)
	wl, err := Spike(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wl.Units, []int{0, 40, 0}) {
		t.Errorf("units = %v, want [0 40 0]", wl.Units)
	}
	if _, err := Spike(w, 9); err == nil {
		t.Error("out-of-range spike accepted")
	}
}
