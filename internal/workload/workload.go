// Package workload generates the demand vectors of the §V evaluation: the
// nine Table I instances spread demand uniformly over a map's products, and
// skewed/random generators support the extension benches.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/warehouse"
)

// Uniform spreads totalUnits as evenly as possible over every product
// (Table I workloads: e.g. 550 units over 55 products = 10 each), clamped
// per product by available stock.
func Uniform(w *warehouse.Warehouse, totalUnits int) (warehouse.Workload, error) {
	p := w.NumProducts
	if p == 0 {
		return warehouse.Workload{}, fmt.Errorf("workload: warehouse has no products")
	}
	units := make([]int, p)
	base, extra := totalUnits/p, totalUnits%p
	for k := range units {
		units[k] = base
		if k < extra {
			units[k]++
		}
	}
	// Clamp by stock, pushing the overflow onto products with headroom.
	overflow := 0
	for k := range units {
		if stock := w.TotalStock(warehouse.ProductID(k)); units[k] > stock {
			overflow += units[k] - stock
			units[k] = stock
		}
	}
	for k := 0; k < p && overflow > 0; k++ {
		room := w.TotalStock(warehouse.ProductID(k)) - units[k]
		if room <= 0 {
			continue
		}
		if room > overflow {
			room = overflow
		}
		units[k] += room
		overflow -= room
	}
	if overflow > 0 {
		return warehouse.Workload{}, fmt.Errorf("workload: %d units exceed total stock", totalUnits)
	}
	return warehouse.NewWorkload(w, units)
}

// Skewed draws a Zipf-like demand: product popularity falls off as 1/(k+1),
// a common e-commerce assumption. The result is stock-clamped and sums to
// totalUnits (or errors if stock cannot cover it).
func Skewed(w *warehouse.Warehouse, totalUnits int, rng *rand.Rand) (warehouse.Workload, error) {
	p := w.NumProducts
	if p == 0 {
		return warehouse.Workload{}, fmt.Errorf("workload: warehouse has no products")
	}
	weights := make([]float64, p)
	var sum float64
	for k := range weights {
		weights[k] = 1 / float64(k+1)
		sum += weights[k]
	}
	units := make([]int, p)
	assigned := 0
	for k := range units {
		units[k] = int(float64(totalUnits) * weights[k] / sum)
		if stock := w.TotalStock(warehouse.ProductID(k)); units[k] > stock {
			units[k] = stock
		}
		assigned += units[k]
	}
	// Distribute the rounding remainder randomly over products with stock
	// headroom.
	for assigned < totalUnits {
		progressed := false
		for tries := 0; tries < 4*p; tries++ {
			k := rng.Intn(p)
			if units[k] < w.TotalStock(warehouse.ProductID(k)) {
				units[k]++
				assigned++
				progressed = true
				break
			}
		}
		if !progressed {
			// Fall back to a deterministic sweep.
			added := false
			for k := 0; k < p && assigned < totalUnits; k++ {
				if units[k] < w.TotalStock(warehouse.ProductID(k)) {
					units[k]++
					assigned++
					added = true
				}
			}
			if !added {
				return warehouse.Workload{}, fmt.Errorf("workload: %d units exceed total stock", totalUnits)
			}
		}
	}
	return warehouse.NewWorkload(w, units)
}

// Single demands totalUnits of one product only.
func Single(w *warehouse.Warehouse, product warehouse.ProductID, totalUnits int) (warehouse.Workload, error) {
	units := make([]int, w.NumProducts)
	if int(product) < 0 || int(product) >= w.NumProducts {
		return warehouse.Workload{}, fmt.Errorf("workload: product %d out of range", product)
	}
	units[product] = totalUnits
	return warehouse.NewWorkload(w, units)
}
