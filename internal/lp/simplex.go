package lp

import "math/big"

// This file implements a bounded-variable primal simplex with a dual-simplex
// reentry path, dense over an exact or floating field T.
//
// Standard form: every model constraint i gets one logical column s_i with
//
//	Σ_j a_ij x_j + s_i = b_i,   s_i ∈ [0,∞) for ≤, (-∞,0] for ≥, [0,0] for =,
//
// and every variable keeps its declared bounds implicitly: a nonbasic column
// sits at its lower bound, at its upper bound, or (for free columns) at
// zero, instead of contributing extra `x ≤ cap` rows. Branch-and-bound nodes
// therefore change only bound values, never the column structure, which is
// what makes the warm-started reentry in solveNode sound: reduced costs
// depend on the basis alone, so the final basis of any previously solved
// node stays dual feasible and the child is re-solved with a handful of
// dual pivots instead of a fresh two-phase solve from artificials.
//
// Pricing is Dantzig's rule (most attractive reduced cost) with a
// degenerate-stall fallback to Bland's least-index rule (pricing.go), so
// typical pivot counts stay low while termination remains guaranteed.

// SolveLP solves the continuous relaxation of p with the exact rational
// engine. Arithmetic runs over int64 numerator/denominator pairs (rat64)
// and transparently promotes the whole solve to big.Rat on overflow, so
// results are exact either way. Integrality markers on variables are
// ignored. The simplex representation is chosen by instance size (see
// SolveLPWith for an explicit override); both representations return
// bit-identical Solutions.
func SolveLP(p *Problem) (*Solution, error) {
	return SolveLPWith(p, SolveOptions{})
}

// SolveOptions tunes SolveLP's engine selection.
type SolveOptions struct {
	// Simplex overrides the representation choice: dense tableau or
	// LU-factorized revised simplex. SimplexAuto selects by instance size.
	// Answers are bit-identical either way.
	Simplex SimplexEngine
	// Cancel, when non-nil, aborts the solve when the channel fires; the
	// solve then returns StatusCanceled. See ILPOptions.Cancel for the
	// tick semantics.
	Cancel <-chan struct{}
	// AutoRows overrides the SimplexAuto size crossover (the constraint-row
	// count at which auto routing prefers the revised engine); 0 keeps the
	// calibrated default. Ignored when Simplex names a representation
	// explicitly. Answers are unaffected either way.
	AutoRows int
}

// SolveLPWith is SolveLP with explicit solve options.
func SolveLPWith(p *Problem, opts SolveOptions) (*Solution, error) {
	if opts.Simplex == SimplexHybrid {
		return solveLPHybrid(p, opts.Cancel)
	}
	rev := pickSimplex(p, opts.Simplex, opts.AutoRows) == SimplexRevised
	var sol *Solution
	var err error
	if promote(func() { sol, err = solveLPWith[rat64, rat64Arith](p, rat64Arith{}, rev, opts.Cancel) }) {
		return sol, err
	}
	return solveLPWith[*big.Rat, ratArith](p, ratArith{}, rev, opts.Cancel)
}

// SolveLPFloat solves the continuous relaxation of p with the float64
// engine. It is much faster than SolveLP on very large problems but subject
// to rounding; callers that need certainty should verify with Problem.Check.
// The representation follows the exact engines' size-based auto rule: the
// revised partial-pricing engine above the crossover, the dense tableau
// below it.
func SolveLPFloat(p *Problem) (*Solution, error) {
	return SolveLPFloatWith(p, SolveOptions{})
}

// SolveLPFloatWith is SolveLPFloat with explicit solve options.
func SolveLPFloatWith(p *Problem, opts SolveOptions) (*Solution, error) {
	tb := floatArena(p, opts.Simplex, opts.AutoRows)
	tb.setCancel(opts.Cancel)
	return solveArenaLP(tb)
}

// floatArena builds the float engine of the chosen (or size-selected)
// representation.
func floatArena(p *Problem, choice SimplexEngine, autoRows int) arena[float64] {
	if floatPick(p, choice, autoRows) == SimplexRevised {
		return newRevisedFloat(p)
	}
	return newTableau[float64, floatArith](p, floatArith{eps: defaultEps})
}

func solveLPWith[T any, A arith[T]](p *Problem, ar A, revisedEngine bool, cancel <-chan struct{}) (*Solution, error) {
	var tb arena[T]
	if revisedEngine {
		tb = newRevised[T, A](p, ar)
	} else {
		tb = newTableau[T, A](p, ar)
	}
	tb.setCancel(cancel)
	return solveArenaLP(tb)
}

// solveArenaLP runs one LP solve over a freshly built arena whose
// cancellation is already installed: declared bounds in, Solution out.
func solveArenaLP[T any](tb arena[T]) (*Solution, error) {
	p := tb.prob()
	lo, hi := declaredBounds(p)
	start := tb.workSpent()
	status := tb.solveNode(lo, hi)
	meterWork(tb.workSpent() - start)
	switch status {
	case StatusInfeasible, StatusUnbounded:
		return &Solution{Status: status}, nil
	case StatusLimit:
		// An LP solve has no work budget of its own; the only way to hit
		// the tick is the cancellation channel.
		return &Solution{Status: StatusCanceled}, nil
	}
	return optimalSolution(tb), nil
}

// optimalSolution materializes the arena's current (optimal) basis into a
// full Solution, evaluating the objective exactly over the extracted values.
func optimalSolution[T any](tb arena[T]) *Solution {
	p := tb.prob()
	values := make([]*big.Rat, len(p.Vars))
	for i := range values {
		values[i] = new(big.Rat)
	}
	tb.extractInto(values)
	sol := &Solution{Status: StatusOptimal, Values: values}
	if len(p.Objective) > 0 {
		sol.Objective = evalObjective(p, values)
	}
	return sol
}

// vstat is the simplex status of one column.
type vstat uint8

const (
	nbLower vstat = iota // nonbasic at its lower bound
	nbUpper              // nonbasic at its upper bound
	nbFree               // nonbasic free column resting at zero
	inBasis
)

// tableau is the dense bounded-variable simplex state over field T. One
// tableau serves an entire branch-and-bound tree: newTableau allocates the
// arena once, and solveNode re-solves it per node, warm when possible.
//
// Column layout: 0..nv-1 structural (one per model variable — free columns
// are kept free, not split), nv..nv+m-1 logicals (one per row), then m
// artificial slots used by cold phase-1 starts. Column n of each row stores
// B⁻¹b, maintained through pivots so warm starts can rebuild basic values
// after bound changes without refactorizing.
type tableau[T any, A arith[T]] struct {
	ar       A
	p        *Problem
	m        int // constraint rows
	nv       int // structural columns
	artStart int // nv + m
	n        int // total columns: nv + 2m
	stride   int // n + 1; column n is B⁻¹b

	rows  []T // m × stride, row-major
	basis []int
	rowOf []int // column → row it is basic in, -1 otherwise
	xB    []T   // value of the basic variable of each row
	stat  []vstat
	lo    []T
	hi    []T
	loF   []bool // finite-bound flags
	hiF   []bool

	cost   []T // phase-2 minimization costs, len n
	obj    []T // maintained phase-2 reduced-cost row, len stride
	hasObj bool

	// Pristine constraint system, converted to T once at construction.
	csr     *csrRows
	convVal []T // csr.vals converted
	convRHS []T

	nArt   int  // artificials activated by the last cold start
	warmOK bool // tableau holds a dual-feasible basis from a prior solve
	// basisOK marks the basis primal feasible for the CURRENT bounds and
	// right-hand sides with xB valid — the precondition of the Model layer's
	// primal reentry after an objective-only edit. Invalidated by RHS edits,
	// by bound changes, and by branch-and-bound (which leaves node bounds).
	basisOK bool
	pr      pricer
	// work counts row-update operations spent in eliminate; workBudget is
	// the allowance from ILPOptions.MaxWork (0 = unlimited).
	work       int64
	workBudget int64
	// cancelC aborts the solve when it fires; cancelFired latches the
	// observation so status mapping can distinguish cancellation from
	// budget exhaustion after the fact.
	cancelC     <-chan struct{}
	cancelFired bool
}

func newTableau[T any, A arith[T]](p *Problem, ar A) *tableau[T, A] {
	nv := len(p.Vars)
	m := len(p.Constraints)
	tb := &tableau[T, A]{
		ar: ar, p: p,
		m: m, nv: nv, artStart: nv + m, n: nv + 2*m, stride: nv + 2*m + 1,
	}
	tb.csr, tb.convVal, tb.convRHS = problemCSR(p, ar)

	tb.rows = make([]T, m*tb.stride)
	tb.basis = make([]int, m)
	tb.rowOf = make([]int, tb.n)
	tb.xB = make([]T, m)
	tb.stat = make([]vstat, tb.n)
	tb.lo = make([]T, tb.n)
	tb.hi = make([]T, tb.n)
	tb.loF = make([]bool, tb.n)
	tb.hiF = make([]bool, tb.n)
	tb.obj = make([]T, tb.stride)
	tb.cost = make([]T, tb.n)
	zero := ar.zero()
	for j := range tb.cost {
		tb.cost[j] = zero
		tb.lo[j] = zero
		tb.hi[j] = zero
	}
	// Logical bounds encode the row sense; artificials stay locked at [0,0]
	// except while a cold phase 1 owns them.
	for i := 0; i < m; i++ {
		lcol := nv + i
		switch p.Constraints[i].Sense {
		case LE:
			tb.loF[lcol] = true // [0, ∞)
		case GE:
			tb.hiF[lcol] = true // (-∞, 0]
		case EQ:
			tb.loF[lcol], tb.hiF[lcol] = true, true // [0, 0]
		}
		acol := tb.artStart + i
		tb.loF[acol], tb.hiF[acol] = true, true
	}
	tb.updateCost() // phase-2 cost vector (minimization form)
	tb.pr = newPricer(m, tb.n)
	return tb
}

// problemCSR builds the constraint matrix as sorted CSR triplets with
// duplicates merged, plus the values and right-hand sides converted to the
// engine's field — shared by the dense tableau, the revised engine, and
// every cold restart.
func problemCSR[T any, A arith[T]](p *Problem, ar A) (*csrRows, []T, []T) {
	m := len(p.Constraints)
	csr := newCSRRows(m, 4*m)
	for ci := range p.Constraints {
		c := &p.Constraints[ci]
		for _, t := range c.Terms {
			csr.add(int(t.Var), t.Coef)
		}
		csr.endRow(c.Sense, c.RHS)
	}
	convVal := make([]T, len(csr.vals))
	for i, v := range csr.vals {
		convVal[i] = ar.fromRat(v)
	}
	convRHS := make([]T, m)
	for i, r := range csr.rhs {
		convRHS[i] = ar.fromRat(r)
	}
	return csr, convVal, convRHS
}

// Arena surface shared with the revised engine (see arena in ilp.go).

func (tb *tableau[T, A]) prob() *Problem { return tb.p }

func (tb *tableau[T, A]) startSearch(workBudget int64) {
	tb.warmOK = false
	tb.basisOK = false
	tb.work = 0
	tb.workBudget = workBudget
}

func (tb *tableau[T, A]) setWorkBudget(b int64) { tb.workBudget = b }

func (tb *tableau[T, A]) workSpent() int64 { return tb.work }

// dropWarm forgets any warm basis so the next solveNode runs the
// deterministic cold path (a pure function of the pristine system and the
// node bounds), while the cumulative work counter and budget keep running.
// The frontier-decomposed search calls this at every subtree root, which is
// what makes a subtree's pivot sequence independent of the arena it runs
// on — the keystone of the parallel search's bit-identity.
func (tb *tableau[T, A]) dropWarm() {
	tb.warmOK = false
	tb.basisOK = false
}

// setCancel installs (or, with nil, removes) the cancellation channel for
// subsequent solves and re-arms the latch; a retained arena serves many
// solves, each under its own caller context.
func (tb *tableau[T, A]) setCancel(c <-chan struct{}) {
	tb.cancelC = c
	tb.cancelFired = false
}

func (tb *tableau[T, A]) canceled() bool { return tb.cancelFired }

// updateCost (re)derives the phase-2 minimization cost vector from the
// problem's current objective. The maintained reduced-cost row still prices
// the previous objective afterwards, so any dual-feasible warm state is
// dropped; the basis itself stays valid (basisOK is untouched), which is
// what the Model layer's primal reentry relies on.
func (tb *tableau[T, A]) updateCost() {
	ar := tb.ar
	zero := ar.zero()
	for j := range tb.cost {
		tb.cost[j] = zero
	}
	tb.hasObj = len(tb.p.Objective) > 0
	for _, t := range tb.p.Objective {
		c := ar.fromRat(t.Coef)
		if tb.p.Maximize {
			c = ar.neg(c)
		}
		tb.cost[t.Var] = ar.add(tb.cost[t.Var], c)
	}
	tb.warmOK = false
}

// updateRHS retargets constraint i to a new right-hand side. The pristine
// system (convRHS) is always updated for future cold rebuilds; while the
// tableau holds a valid pivoted basis, the maintained B⁻¹b column is
// delta-updated through the logical column of row i (which is exactly B⁻¹
// applied to the row's unit vector, up to the row negation cold() may have
// applied — the sign cancels), so dual-feasible warm state survives the
// edit. xB becomes stale either way; rewarm recomputes it from B⁻¹b, and
// primal reentry is invalidated via basisOK.
func (tb *tableau[T, A]) updateRHS(i int, rhs *big.Rat) {
	ar := tb.ar
	v := ar.fromRat(rhs)
	if tb.warmOK {
		delta := ar.sub(v, tb.convRHS[i])
		if ar.sign(delta) != 0 {
			lcol := tb.nv + i
			for r := 0; r < tb.m; r++ {
				a := tb.rows[r*tb.stride+lcol]
				if ar.sign(a) != 0 {
					tb.rows[r*tb.stride+tb.n] = ar.add(tb.rows[r*tb.stride+tb.n], ar.mul(delta, a))
				}
			}
		}
	}
	tb.convRHS[i] = v
	tb.csr.rhs[i] = rhs
	tb.basisOK = false
}

// updateRHSPristine updates only the pristine system and discards any warm
// state. The Model uses it for the float arena, whose warm basis is never
// consumed (ResolveILP cold-rebuilds the root): propagating deltas there
// would be wasted work per edit and, worse, a rounding-parity trap if a
// future caller ever read the float rows warm.
func (tb *tableau[T, A]) updateRHSPristine(i int, rhs *big.Rat) {
	tb.convRHS[i] = tb.ar.fromRat(rhs)
	tb.csr.rhs[i] = rhs
	tb.warmOK = false
	tb.basisOK = false
}

// uniqueOptimum reports whether the current optimal basis certifies a
// unique optimal solution vector: every nonbasic non-fixed column carries a
// strictly signed reduced cost, so any optimal point must keep all of them
// on their current bounds, which pins the basic values too. This is the
// acceptance test that lets a warm re-solve return its answer as
// bit-identical to a from-scratch solve; pure feasibility problems (zero
// objective row) never certify and fall back to the deterministic cold
// path.
func (tb *tableau[T, A]) uniqueOptimum() bool {
	if !tb.hasObj {
		return false
	}
	for j := 0; j < tb.artStart; j++ {
		if tb.stat[j] == inBasis || tb.fixedRange(j) {
			continue
		}
		if tb.ar.sign(tb.obj[j]) == 0 {
			return false
		}
	}
	return true
}

// exhausted reports whether the work budget has run out or the solve has
// been cancelled. It is checked once per pivot — the MaxWork accounting
// tick — so the elimination hot path stays unbranched between ticks and a
// cancelled solve stops within one pivot of the channel firing.
func (tb *tableau[T, A]) exhausted() bool {
	if tb.cancelC != nil {
		select {
		case <-tb.cancelC:
			tb.cancelFired = true
			return true
		default:
		}
	}
	return tb.workBudget > 0 && tb.work >= tb.workBudget
}

// setBounds installs per-variable bounds for the next solve (structural
// columns only; logical and artificial bounds are fixed by construction).
// It reports ok=false when some lower bound exceeds its upper bound, which
// proves the node infeasible before any pivoting, and changed=true when any
// bound differs from the previously installed one (the Model layer uses
// this to invalidate its primal-reentry state).
func (tb *tableau[T, A]) setBounds(lo, hi []*big.Rat) (ok, changed bool) {
	return installBounds(tb.ar, tb.nv, lo, hi, tb.lo, tb.hi, tb.loF, tb.hiF)
}

// installBounds writes per-variable declared bounds into an engine's bound
// arrays (structural columns only), reporting ok=false on a lo>hi conflict
// and changed=true when any bound differs from the installed one. It is
// shared by the dense and revised engines.
func installBounds[T any, A arith[T]](ar A, nv int, lo, hi []*big.Rat, tlo, thi []T, loF, hiF []bool) (ok, changed bool) {
	zero := ar.zero()
	ok = true
	for j := 0; j < nv; j++ {
		l, h := lo[j], hi[j]
		if l != nil {
			v := ar.fromRat(l)
			if !loF[j] || ar.cmp(v, tlo[j]) != 0 {
				changed = true
			}
			tlo[j], loF[j] = v, true
		} else {
			if loF[j] {
				changed = true
			}
			tlo[j], loF[j] = zero, false
		}
		if h != nil {
			v := ar.fromRat(h)
			if !hiF[j] || ar.cmp(v, thi[j]) != 0 {
				changed = true
			}
			thi[j], hiF[j] = v, true
		} else {
			if hiF[j] {
				changed = true
			}
			thi[j], hiF[j] = zero, false
		}
		// Compare by VALUE, in the engine's field (big.Rat.Cmp allocates,
		// and this runs per variable per branch-and-bound node). An earlier
		// revision short-circuited on pointer equality of the two *big.Rat
		// bounds, which silently assumed callers never alias distinct
		// values through one pointer; values are the contract now, and
		// aliased fixed bounds (lo == hi through the same pointer) compare
		// equal rather than skipping the conflict check.
		if l != nil && h != nil && ar.cmp(tlo[j], thi[j]) > 0 {
			ok = false
		}
	}
	return ok, changed
}

// solveNode solves the problem under the given bounds, warm-starting from
// the previous node's basis via dual simplex when the tableau still holds a
// dual-feasible basis, and falling back to a cold two-phase solve otherwise.
func (tb *tableau[T, A]) solveNode(lo, hi []*big.Rat) Status {
	if ok, _ := tb.setBounds(lo, hi); !ok {
		return StatusInfeasible
	}
	if tb.warmOK && tb.rewarm() {
		switch tb.dual() {
		case dualOptimal:
			return StatusOptimal
		case dualInfeasible:
			// The basis is still dual feasible — only this node's bounds
			// are unservable — so the NEXT node may warm-start from here.
			return StatusInfeasible
		case dualBudget:
			return StatusLimit
		}
		// dualStuck: anti-cycling cap hit; restart cold for certainty.
	}
	tb.warmOK = false
	status := tb.solveFresh()
	tb.warmOK = status == StatusOptimal
	return status
}

// solveFresh is the cold path: rebuild the tableau, run phase 1 from an
// all-logical basis patched with artificials, then phase 2.
func (tb *tableau[T, A]) solveFresh() Status {
	tb.cold()
	if st := tb.phase1(); st != StatusOptimal {
		return st
	}
	return tb.phase2()
}

// nbValue is the current value of a nonbasic column.
func (tb *tableau[T, A]) nbValue(j int) T {
	switch tb.stat[j] {
	case nbLower:
		return tb.lo[j]
	case nbUpper:
		return tb.hi[j]
	}
	return tb.ar.zero()
}

// fixedRange reports whether a column's bounds pin it to a single value
// (lo == hi), which removes it from every entering-candidate scan: such a
// column can never move, so pivoting it is pure basis shuffling. Locked
// artificials fall out of play through exactly this test.
func (tb *tableau[T, A]) fixedRange(j int) bool {
	return tb.loF[j] && tb.hiF[j] && tb.ar.cmp(tb.lo[j], tb.hi[j]) == 0
}

// cold rebuilds the tableau from the pristine constraint system: logical
// basis, nonbasic structurals at their preferred bound, and one artificial
// per row whose logical cannot absorb the residual.
func (tb *tableau[T, A]) cold() {
	ar := tb.ar
	zero := ar.zero()
	one := ar.one()
	for i := range tb.rows {
		tb.rows[i] = zero
	}
	for j := range tb.rowOf {
		tb.rowOf[j] = -1
	}
	for j := 0; j < tb.nv; j++ {
		switch {
		case tb.loF[j]:
			tb.stat[j] = nbLower
		case tb.hiF[j]:
			tb.stat[j] = nbUpper
		default:
			tb.stat[j] = nbFree
		}
	}
	for i := 0; i < tb.m; i++ {
		row := tb.rows[i*tb.stride : (i+1)*tb.stride]
		cols, _ := tb.csr.row(i)
		start := int(tb.csr.ptr[i])
		for idx, col := range cols {
			row[col] = tb.convVal[start+idx]
		}
		lcol := tb.nv + i
		row[lcol] = one
		row[tb.n] = tb.convRHS[i]
		tb.basis[i] = lcol
		tb.rowOf[lcol] = i
		tb.stat[lcol] = inBasis
		acol := tb.artStart + i
		tb.stat[acol] = nbLower
		tb.lo[acol], tb.hi[acol] = zero, zero
		tb.loF[acol], tb.hiF[acol] = true, true
		// x_logical = b - Σ a_ij v_j over nonbasic structurals at bounds.
		v := row[tb.n]
		for idx, col := range cols {
			cv := tb.nbValue(int(col))
			if ar.sign(cv) != 0 {
				v = ar.sub(v, ar.mul(tb.convVal[start+idx], cv))
			}
		}
		tb.xB[i] = v
	}
	// Patch rows whose logical start violates its own bounds with a basic
	// artificial absorbing the residual (always non-negative by sign choice).
	tb.nArt = 0
	for i := 0; i < tb.m; i++ {
		lcol := tb.nv + i
		var target T
		switch {
		case tb.loF[lcol] && ar.cmp(tb.xB[i], tb.lo[lcol]) < 0:
			target = tb.lo[lcol]
			tb.stat[lcol] = nbLower
		case tb.hiF[lcol] && ar.cmp(tb.xB[i], tb.hi[lcol]) > 0:
			target = tb.hi[lcol]
			tb.stat[lcol] = nbUpper
		default:
			continue
		}
		resid := ar.sub(tb.xB[i], target)
		acol := tb.artStart + i
		row := tb.rows[i*tb.stride : (i+1)*tb.stride]
		if ar.sign(resid) < 0 {
			// Negate the whole row so the artificial carries coefficient +1
			// and the tableau stays in basis-normalized (unit-column) form.
			for j := 0; j < tb.stride; j++ {
				row[j] = ar.neg(row[j])
			}
			resid = ar.neg(resid)
		}
		row[acol] = one
		tb.hiF[acol] = false // open to [0, ∞) for phase 1
		tb.rowOf[lcol] = -1
		tb.basis[i] = acol
		tb.rowOf[acol] = i
		tb.stat[acol] = inBasis
		tb.xB[i] = resid
		tb.nArt++
	}
}

// phase1 minimizes the activated artificials to zero. On success all
// artificials are driven nonbasic (or left basic at zero on redundant rows)
// and re-locked to [0,0].
func (tb *tableau[T, A]) phase1() Status {
	ar := tb.ar
	if tb.nArt > 0 {
		objRow := make([]T, tb.stride)
		zero := ar.zero()
		for j := range objRow {
			objRow[j] = zero
		}
		for j := tb.artStart; j < tb.n; j++ {
			if tb.hiF[j] {
				continue // not activated
			}
			objRow[j] = ar.one()
		}
		// Price out the basic artificials: objRow -= Σ cost_B · row_i.
		for i := 0; i < tb.m; i++ {
			if tb.basis[i] < tb.artStart {
				continue
			}
			row := tb.rows[i*tb.stride : (i+1)*tb.stride]
			for j := 0; j < tb.stride; j++ {
				objRow[j] = ar.sub(objRow[j], row[j])
			}
		}
		tb.pr.reset()
		switch tb.primal(objRow) {
		case StatusOptimal:
		case StatusLimit:
			return StatusLimit
		default:
			// A feasibility phase bounded below by zero cannot be unbounded;
			// reaching this means numerical failure. Report infeasible.
			return StatusInfeasible
		}
		infeas := zero
		for i := 0; i < tb.m; i++ {
			if tb.basis[i] >= tb.artStart {
				infeas = ar.add(infeas, tb.xB[i])
			}
		}
		if ar.sign(infeas) != 0 {
			return StatusInfeasible
		}
		// Drive zero-valued basic artificials out so later phases and warm
		// reentries never pivot around them; rows with no eligible column
		// are redundant and keep their artificial pinned at zero.
		for i := 0; i < tb.m; i++ {
			if tb.basis[i] < tb.artStart {
				continue
			}
			row := tb.rows[i*tb.stride : (i+1)*tb.stride]
			for j := 0; j < tb.artStart; j++ {
				if ar.sign(row[j]) != 0 {
					tb.swapZero(i, j)
					break
				}
			}
		}
		// Re-lock every artificial.
		for j := tb.artStart; j < tb.n; j++ {
			tb.hi[j] = zero
			tb.hiF[j] = true
		}
	}
	return StatusOptimal
}

// phase2 prices the model objective over the feasible basis and optimizes.
// Feasibility problems keep an all-zero objective row, which is exactly the
// dual-feasibility invariant warm starts rely on.
func (tb *tableau[T, A]) phase2() Status {
	ar := tb.ar
	zero := ar.zero()
	for j := range tb.obj {
		tb.obj[j] = zero
	}
	if !tb.hasObj {
		return StatusOptimal
	}
	copy(tb.obj, tb.cost)
	for i := 0; i < tb.m; i++ {
		cb := tb.cost[tb.basis[i]]
		if ar.sign(cb) == 0 {
			continue
		}
		row := tb.rows[i*tb.stride : (i+1)*tb.stride]
		for j := 0; j < tb.stride; j++ {
			tb.obj[j] = ar.sub(tb.obj[j], ar.mul(cb, row[j]))
		}
	}
	tb.pr.reset()
	return tb.primal(tb.obj)
}

// primal runs the bounded-variable primal simplex to optimality over the
// given reduced-cost row (maintained through pivots). Artificial columns
// never enter; fixed-range columns are skipped wholesale.
func (tb *tableau[T, A]) primal(objRow []T) Status {
	ar := tb.ar
	for {
		if tb.exhausted() {
			return StatusLimit
		}
		enter, dir := tb.priceEnter(objRow)
		if enter < 0 {
			return StatusOptimal
		}
		step, flip, leaveRow, leaveAtUpper, ok := tb.ratio(enter, dir)
		if !ok {
			return StatusUnbounded
		}
		if flip {
			tb.boundFlip(enter, dir)
		} else {
			tb.pivot(leaveRow, enter, dir, step, leaveAtUpper, objRow)
		}
		tb.pr.observe(ar.sign(step) == 0)
	}
}

// priceEnter picks the entering column: Dantzig's most-attractive reduced
// cost, or Bland's least index while the stall fallback is active. dir is
// +1 when the column will increase off its lower bound (or zero), -1 when
// it will decrease off its upper bound.
func (tb *tableau[T, A]) priceEnter(objRow []T) (enter, dir int) {
	ar := tb.ar
	best := -1
	bestDir := 0
	var bestMag T
	for j := 0; j < tb.artStart; j++ {
		if tb.stat[j] == inBasis || tb.fixedRange(j) {
			continue
		}
		d := objRow[j]
		sd := ar.sign(d)
		jdir := 0
		switch tb.stat[j] {
		case nbLower:
			if sd < 0 {
				jdir = 1
			}
		case nbUpper:
			if sd > 0 {
				jdir = -1
			}
		case nbFree:
			if sd < 0 {
				jdir = 1
			} else if sd > 0 {
				jdir = -1
			}
		}
		if jdir == 0 {
			continue
		}
		if tb.pr.bland {
			return j, jdir
		}
		mag := d
		if sd < 0 {
			mag = ar.neg(d)
		}
		if best < 0 || ar.cmp(mag, bestMag) > 0 {
			best, bestMag, bestDir = j, mag, jdir
		}
	}
	return best, bestDir
}

// ratio runs the two-sided ratio test for entering column `enter` moving in
// direction dir. It returns the step length and either a bound flip (the
// entering column traverses to its opposite bound) or the leaving row and
// which of its bounds blocks. ok=false means no limit exists: unbounded.
func (tb *tableau[T, A]) ratio(enter, dir int) (step T, flip bool, leaveRow int, leaveAtUpper bool, ok bool) {
	ar := tb.ar
	haveLim := false
	var limT T
	leaveRow = -1
	for i := 0; i < tb.m; i++ {
		a := tb.rows[i*tb.stride+enter]
		sa := ar.sign(a)
		if sa == 0 {
			continue
		}
		k := tb.basis[i]
		// x_k moves by -dir·t·a: dir·a > 0 pushes it down toward its lower
		// bound, dir·a < 0 up toward its upper bound.
		decreasing := (dir > 0) == (sa > 0)
		var bound T
		if decreasing {
			if !tb.loF[k] {
				continue
			}
			bound = tb.lo[k]
		} else {
			if !tb.hiF[k] {
				continue
			}
			bound = tb.hi[k]
		}
		den := a
		if dir < 0 {
			den = ar.neg(a)
		}
		t := ar.div(ar.sub(tb.xB[i], bound), den)
		if ar.sign(t) < 0 {
			t = ar.zero() // float drift below a bound: force a degenerate step
		}
		if !haveLim || ar.cmp(t, limT) < 0 ||
			(ar.cmp(t, limT) == 0 && k < tb.basis[leaveRow]) {
			haveLim, limT, leaveRow, leaveAtUpper = true, t, i, !decreasing
		}
	}
	if tb.loF[enter] && tb.hiF[enter] {
		rng := ar.sub(tb.hi[enter], tb.lo[enter])
		if !haveLim || ar.cmp(rng, limT) <= 0 {
			return rng, true, -1, false, true
		}
	}
	if !haveLim {
		var z T
		return z, false, -1, false, false
	}
	return limT, false, leaveRow, leaveAtUpper, true
}

// boundFlip moves the entering column across to its opposite bound without
// a basis change — the O(m) fast case of the bounded ratio test.
func (tb *tableau[T, A]) boundFlip(enter, dir int) {
	ar := tb.ar
	rng := ar.sub(tb.hi[enter], tb.lo[enter])
	if dir < 0 {
		rng = ar.neg(rng)
	}
	if ar.sign(rng) != 0 {
		for i := 0; i < tb.m; i++ {
			a := tb.rows[i*tb.stride+enter]
			if ar.sign(a) != 0 {
				tb.xB[i] = ar.sub(tb.xB[i], ar.mul(rng, a))
			}
		}
	}
	if dir > 0 {
		tb.stat[enter] = nbUpper
	} else {
		tb.stat[enter] = nbLower
	}
}

// pivot performs the basis exchange: entering column moves dir·step off its
// bound, the leaving row's basic variable lands exactly on the blocking
// bound, and the tableau (plus objRow, when given) is eliminated around the
// new unit column.
func (tb *tableau[T, A]) pivot(r, enter, dir int, step T, leaveAtUpper bool, objRow []T) {
	ar := tb.ar
	delta := step
	if dir < 0 {
		delta = ar.neg(step)
	}
	if ar.sign(delta) != 0 {
		for i := 0; i < tb.m; i++ {
			if i == r {
				continue
			}
			a := tb.rows[i*tb.stride+enter]
			if ar.sign(a) != 0 {
				tb.xB[i] = ar.sub(tb.xB[i], ar.mul(delta, a))
			}
		}
	}
	enterVal := ar.add(tb.nbValue(enter), delta)
	k := tb.basis[r]
	if leaveAtUpper {
		tb.stat[k] = nbUpper
	} else {
		tb.stat[k] = nbLower
	}
	tb.rowOf[k] = -1
	tb.eliminate(r, enter, objRow)
	tb.basis[r] = enter
	tb.rowOf[enter] = r
	tb.stat[enter] = inBasis
	tb.xB[r] = enterVal
}

// swapZero performs the zero-step basis swap used to drive a basic
// artificial (at value zero) out of the basis.
func (tb *tableau[T, A]) swapZero(r, enter int) {
	k := tb.basis[r]
	tb.stat[k] = nbLower
	tb.rowOf[k] = -1
	enterVal := tb.nbValue(enter)
	tb.eliminate(r, enter, nil)
	tb.basis[r] = enter
	tb.rowOf[enter] = r
	tb.stat[enter] = inBasis
	tb.xB[r] = enterVal
}

// eliminate normalizes row r on column col and eliminates the column from
// every other row (and from objRow when non-nil), including the B⁻¹b column.
// Every basis change passes through here, so this is also where the work
// accounting lives: each touched row charges one row length.
func (tb *tableau[T, A]) eliminate(r, col int, objRow []T) {
	ar := tb.ar
	touched := int64(1) // the pivot row itself
	prow := tb.rows[r*tb.stride : (r+1)*tb.stride]
	pv := prow[col]
	if ar.cmp(pv, ar.one()) != 0 {
		inv := ar.div(ar.one(), pv)
		for j := 0; j < tb.stride; j++ {
			prow[j] = ar.mul(prow[j], inv)
		}
	}
	for i := 0; i < tb.m; i++ {
		if i == r {
			continue
		}
		row := tb.rows[i*tb.stride : (i+1)*tb.stride]
		f := row[col]
		if ar.sign(f) == 0 {
			continue
		}
		touched++
		for j := 0; j < tb.stride; j++ {
			row[j] = ar.sub(row[j], ar.mul(f, prow[j]))
		}
	}
	if objRow != nil {
		f := objRow[col]
		if ar.sign(f) != 0 {
			touched++
			for j := 0; j < tb.stride; j++ {
				objRow[j] = ar.sub(objRow[j], ar.mul(f, prow[j]))
			}
		}
	}
	tb.work += touched * int64(tb.stride)
}

// rewarm re-anchors nonbasic columns to the new node's bounds and rebuilds
// basic values from the maintained B⁻¹b column. Every nonbasic structural
// column is re-checked for dual feasibility, not just those whose bound
// disappeared: columns pinned by an earlier branch (lo == hi) are excluded
// from entering scans, so their reduced costs may drift to either sign
// while pinned, and a later node that un-pins them must re-home them — or
// give up and solve cold. rewarm reports false in that give-up case.
func (tb *tableau[T, A]) rewarm() bool {
	ar := tb.ar
	for j := 0; j < tb.nv; j++ {
		if tb.stat[j] == inBasis {
			continue
		}
		if tb.fixedRange(j) {
			tb.stat[j] = nbLower // lo == hi: either side, any reduced cost
			continue
		}
		// Dual feasibility (minimization) demands d ≥ 0 at a lower bound,
		// d ≤ 0 at an upper bound, d = 0 for a free column.
		sd := ar.sign(tb.obj[j])
		switch tb.stat[j] {
		case nbLower:
			if tb.loF[j] && sd >= 0 {
				continue
			}
		case nbUpper:
			if tb.hiF[j] && sd <= 0 {
				continue
			}
		case nbFree:
			if !tb.loF[j] && !tb.hiF[j] && sd == 0 {
				continue
			}
		}
		switch {
		case sd > 0:
			if !tb.loF[j] {
				return false
			}
			tb.stat[j] = nbLower
		case sd < 0:
			if !tb.hiF[j] {
				return false
			}
			tb.stat[j] = nbUpper
		default:
			switch {
			case tb.loF[j]:
				tb.stat[j] = nbLower
			case tb.hiF[j]:
				tb.stat[j] = nbUpper
			default:
				tb.stat[j] = nbFree
			}
		}
	}
	// xB = B⁻¹b − Σ (B⁻¹A)_j · v_j over nonbasic columns off zero.
	for i := 0; i < tb.m; i++ {
		tb.xB[i] = tb.rows[i*tb.stride+tb.n]
	}
	for j := 0; j < tb.n; j++ {
		if tb.stat[j] == inBasis {
			continue
		}
		v := tb.nbValue(j)
		if ar.sign(v) == 0 {
			continue
		}
		for i := 0; i < tb.m; i++ {
			a := tb.rows[i*tb.stride+j]
			if ar.sign(a) != 0 {
				tb.xB[i] = ar.sub(tb.xB[i], ar.mul(a, v))
			}
		}
	}
	return true
}

type dualResult uint8

const (
	dualOptimal dualResult = iota
	dualInfeasible
	dualStuck
	dualBudget // pivot budget exhausted mid-reentry
)

// dual runs the bounded-variable dual simplex from a dual-feasible basis
// until primal feasibility (⇒ optimality), a primal-infeasibility
// certificate, or the anti-cycling pivot cap. This is the warm-start
// engine: a branch-and-bound child differs from the last solved node by one
// bound, so a handful of dual pivots replaces a full cold solve.
func (tb *tableau[T, A]) dual() dualResult {
	ar := tb.ar
	cap := 20*(tb.m+tb.n) + 1000
	tb.pr.reset()
	for iter := 0; ; iter++ {
		if iter > cap {
			return dualStuck
		}
		if tb.exhausted() {
			return dualBudget
		}
		// Leaving row: most violated basic bound (least basis index once
		// the degenerate-stall fallback engages).
		r := -1
		below := false
		var bestViol T
		for i := 0; i < tb.m; i++ {
			k := tb.basis[i]
			var viol T
			var vBelow bool
			switch {
			case tb.loF[k] && ar.cmp(tb.xB[i], tb.lo[k]) < 0:
				viol = ar.sub(tb.lo[k], tb.xB[i])
				vBelow = true
			case tb.hiF[k] && ar.cmp(tb.xB[i], tb.hi[k]) > 0:
				viol = ar.sub(tb.xB[i], tb.hi[k])
				vBelow = false
			default:
				continue
			}
			if r < 0 || (tb.pr.bland && k < tb.basis[r]) || (!tb.pr.bland && ar.cmp(viol, bestViol) > 0) {
				r, bestViol, below = i, viol, vBelow
			}
		}
		if r < 0 {
			return dualOptimal
		}
		k := tb.basis[r]
		target := tb.hi[k]
		if below {
			target = tb.lo[k]
		}
		prow := tb.rows[r*tb.stride : (r+1)*tb.stride]
		// Entering column: min |d_j|/|a_rj| over sign-eligible columns keeps
		// every reduced cost on its feasible side after the pivot.
		e := -1
		var bestRatio, bestAbsA T
		for j := 0; j < tb.artStart; j++ {
			if tb.stat[j] == inBasis || tb.fixedRange(j) {
				continue
			}
			a := prow[j]
			sa := ar.sign(a)
			if sa == 0 {
				continue
			}
			eligible := false
			switch tb.stat[j] {
			case nbLower: // moves up: needs a < 0 to raise x_k (below), a > 0 to lower it
				eligible = (below && sa < 0) || (!below && sa > 0)
			case nbUpper: // moves down
				eligible = (below && sa > 0) || (!below && sa < 0)
			case nbFree:
				eligible = true
			}
			if !eligible {
				continue
			}
			d := tb.obj[j]
			if ar.sign(d) < 0 {
				d = ar.neg(d)
			}
			absA := a
			if sa < 0 {
				absA = ar.neg(a)
			}
			// Compare d/|a| against bestRatio/bestAbsA without dividing:
			// d·bestAbsA vs bestRatio·absA.
			if e < 0 {
				e, bestRatio, bestAbsA = j, d, absA
				continue
			}
			c := ar.cmp(ar.mul(d, bestAbsA), ar.mul(bestRatio, absA))
			if c < 0 || (c == 0 && ((tb.pr.bland && j < e) || (!tb.pr.bland && ar.cmp(absA, bestAbsA) > 0))) {
				e, bestRatio, bestAbsA = j, d, absA
			}
		}
		if e < 0 {
			// No column can absorb the violation: primal infeasible, with
			// dual feasibility intact for the next warm start.
			return dualInfeasible
		}
		delta := ar.div(ar.sub(tb.xB[r], target), prow[e])
		tb.pr.observe(ar.sign(delta) == 0)
		for i := 0; i < tb.m; i++ {
			if i == r {
				continue
			}
			a := tb.rows[i*tb.stride+e]
			if ar.sign(a) != 0 {
				tb.xB[i] = ar.sub(tb.xB[i], ar.mul(delta, a))
			}
		}
		enterVal := ar.add(tb.nbValue(e), delta)
		if below {
			tb.stat[k] = nbLower
		} else {
			tb.stat[k] = nbUpper
		}
		tb.rowOf[k] = -1
		tb.eliminate(r, e, tb.obj)
		tb.basis[r] = e
		tb.rowOf[e] = r
		tb.stat[e] = inBasis
		tb.xB[r] = enterVal
	}
}

// value is the current assignment of structural column j.
func (tb *tableau[T, A]) value(j int) T {
	if tb.stat[j] == inBasis {
		return tb.xB[tb.rowOf[j]]
	}
	return tb.nbValue(j)
}

// extractInto writes the model-variable values of the current basis into
// dst (len NumVars, entries preallocated), reusing the big.Rat storage so
// branch-and-bound reads candidate values without allocating fresh slices.
func (tb *tableau[T, A]) extractInto(dst []*big.Rat) {
	for j := 0; j < tb.nv; j++ {
		tb.ar.setRat(dst[j], tb.value(j))
	}
}

// firstFractionalInt returns the first integer-marked variable with a
// fractional relaxation value, or -1. It works in the tableau's own field,
// so the branch-and-bound hot path never materializes big.Rat values.
func (tb *tableau[T, A]) firstFractionalInt() int {
	for j := 0; j < tb.nv; j++ {
		if tb.p.Vars[j].Integer && !tb.ar.isInt(tb.value(j)) {
			return j
		}
	}
	return -1
}

// objectiveValue is Σ cost_j·x_j over the current assignment — the model
// objective in minimization form (negated when the problem maximizes).
func (tb *tableau[T, A]) objectiveValue() T {
	ar := tb.ar
	v := ar.zero()
	for j := 0; j < tb.nv; j++ {
		if ar.sign(tb.cost[j]) == 0 {
			continue
		}
		v = ar.add(v, ar.mul(tb.cost[j], tb.value(j)))
	}
	return v
}

// csrRows accumulates the constraint system as sorted sparse triplets with
// a CSR layout: row r occupies cols/vals[ptr[r]:ptr[r+1]], sorted by column
// with duplicates merged. Compared to one map[int]*big.Rat per row this is
// two flat appends per term and no hashing.
type csrRows struct {
	ptr    []int32
	cols   []int32
	vals   []*big.Rat
	senses []Sense
	rhs    []*big.Rat
}

func newCSRRows(rowHint, nnzHint int) *csrRows {
	return &csrRows{
		ptr:    make([]int32, 1, rowHint+1),
		cols:   make([]int32, 0, nnzHint),
		vals:   make([]*big.Rat, 0, nnzHint),
		senses: make([]Sense, 0, rowHint),
		rhs:    make([]*big.Rat, 0, rowHint),
	}
}

func (c *csrRows) numRows() int { return len(c.senses) }

func (c *csrRows) row(r int) ([]int32, []*big.Rat) {
	return c.cols[c.ptr[r]:c.ptr[r+1]], c.vals[c.ptr[r]:c.ptr[r+1]]
}

// add appends a term to the open row. coef is not retained; duplicates of
// the same column are merged by endRow.
func (c *csrRows) add(col int, coef *big.Rat) {
	c.cols = append(c.cols, int32(col))
	c.vals = append(c.vals, new(big.Rat).Set(coef))
}

// endRow seals the open row: sorts its triplets by column (insertion sort —
// rows are short), merges duplicate columns, and records sense and RHS.
func (c *csrRows) endRow(sense Sense, rhs *big.Rat) {
	start := int(c.ptr[len(c.ptr)-1])
	seg := c.cols[start:]
	vseg := c.vals[start:]
	for i := 1; i < len(seg); i++ {
		for j := i; j > 0 && seg[j] < seg[j-1]; j-- {
			seg[j], seg[j-1] = seg[j-1], seg[j]
			vseg[j], vseg[j-1] = vseg[j-1], vseg[j]
		}
	}
	// Merge equal columns in place.
	out := 0
	for i := 0; i < len(seg); i++ {
		if out > 0 && seg[out-1] == seg[i] {
			vseg[out-1].Add(vseg[out-1], vseg[i])
			continue
		}
		seg[out] = seg[i]
		vseg[out] = vseg[i]
		out++
	}
	c.cols = c.cols[:start+out]
	c.vals = c.vals[:start+out]
	c.ptr = append(c.ptr, int32(len(c.cols)))
	c.senses = append(c.senses, sense)
	c.rhs = append(c.rhs, rhs)
}
