package contracts

import (
	"math/big"
	"testing"

	"repro/internal/lp"
)

// editable builds a small contract with the shapes the pipeline edits:
// a capacity assumption, a conservation guarantee, and a demand guarantee.
func editable(t *testing.T) *Contract {
	t.Helper()
	c := New("editable")
	for _, v := range []string{"a", "b", "c"} {
		if err := c.DeclareVar(NatSpec(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Assume(CT("cap", lp.LE, 6, LT(1, "a"), LT(1, "b"))); err != nil {
		t.Fatal(err)
	}
	if err := c.Guarantee(CT("cons", lp.EQ, 0, LT(1, "a"), LT(-1, "c"))); err != nil {
		t.Fatal(err)
	}
	if err := c.Guarantee(CT("demand", lp.GE, 3, LT(1, "c"))); err != nil {
		t.Fatal(err)
	}
	return c
}

// Compiled edits must track a from-scratch solve of the equivalently edited
// contract: Satisfy after SetRHS / SetVarBound is bit-identical to
// SatisfyOpts on a rebuilt contract, feasible and infeasible alike.
func TestCompiledEditsMatchScratch(t *testing.T) {
	cc := editable(t).Compile()
	opts := lp.ILPOptions{Engine: lp.EngineExact}
	for _, tc := range []struct {
		demand int64 // RHS of "demand"
		hiC    int64 // upper bound of variable c, -1 = unbounded
	}{
		{3, -1},
		{5, -1},
		{5, 4}, // bound conflicts with demand: unsatisfiable
		{2, 4},
		{9, -1}, // exceeds the capacity assumption via cons: unsatisfiable
	} {
		if err := cc.SetRHS("demand", big.NewRat(tc.demand, 1)); err != nil {
			t.Fatal(err)
		}
		var hi *big.Rat
		if tc.hiC >= 0 {
			hi = big.NewRat(tc.hiC, 1)
		}
		if err := cc.SetVarBound("c", new(big.Rat), hi); err != nil {
			t.Fatal(err)
		}
		got, err := cc.Satisfy(opts)
		if err != nil {
			t.Fatalf("demand=%d hiC=%d: %v", tc.demand, tc.hiC, err)
		}
		scratch := editable(t)
		scratch.Guarantees[1].RHS = big.NewRat(tc.demand, 1)
		spec := scratch.Vars["c"]
		spec.Upper = hi
		scratch.Vars["c"] = spec
		want, err := scratch.SatisfyOpts(opts)
		if err != nil {
			t.Fatalf("demand=%d hiC=%d scratch: %v", tc.demand, tc.hiC, err)
		}
		if (got == nil) != (want == nil) {
			t.Fatalf("demand=%d hiC=%d: compiled sat=%v, scratch sat=%v", tc.demand, tc.hiC, got != nil, want != nil)
		}
		for name, v := range want {
			if got[name].Cmp(v) != 0 {
				t.Errorf("demand=%d hiC=%d: %s = %s, scratch %s", tc.demand, tc.hiC, name, got[name], v)
			}
		}
		// The relaxation verdict must agree with the ILP whenever the ILP
		// is satisfiable (rational relaxation of a satisfiable system).
		feasible, err := cc.RelaxationFeasible()
		if err != nil {
			t.Fatal(err)
		}
		if want != nil && !feasible {
			t.Errorf("demand=%d hiC=%d: satisfiable system with infeasible relaxation", tc.demand, tc.hiC)
		}
	}
}

// A name shared by several rows is an ambiguous edit handle: editing
// through it must fail loudly instead of retargeting only the first row.
func TestCompiledRejectsDuplicateNameEdits(t *testing.T) {
	c := New("dup")
	if err := c.DeclareVar(NatSpec("a")); err != nil {
		t.Fatal(err)
	}
	if err := c.Guarantee(CT("g", lp.LE, 5, LT(1, "a"))); err != nil {
		t.Fatal(err)
	}
	if err := c.Guarantee(CT("g", lp.GE, 1, LT(1, "a"))); err != nil {
		t.Fatal(err)
	}
	cc := c.Compile()
	if err := cc.SetRHS("g", big.NewRat(2, 1)); err == nil {
		t.Error("edit through a duplicated constraint name accepted")
	}
	if _, ok := cc.Row("g"); ok {
		t.Error("duplicated constraint name resolved to a single row")
	}
	// Solving the untouched system still works.
	if _, err := cc.Satisfy(lp.ILPOptions{Engine: lp.EngineExact}); err != nil {
		t.Fatal(err)
	}
}

func TestCompiledRejectsUnknownNames(t *testing.T) {
	cc := editable(t).Compile()
	if err := cc.SetRHS("nope", new(big.Rat)); err == nil {
		t.Error("unknown constraint accepted")
	}
	if err := cc.SetVarBound("nope", nil, nil); err == nil {
		t.Error("unknown variable accepted")
	}
	if _, ok := cc.Row("cap"); !ok {
		t.Error("known constraint not found")
	}
	if _, ok := cc.Row("nope"); ok {
		t.Error("unknown constraint resolved to a row")
	}
}
