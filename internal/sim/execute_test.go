package sim

import (
	"testing"

	"repro/internal/agentplan"
	"repro/internal/cycles"
	"repro/internal/testmaps"
	"repro/internal/warehouse"
)

func solvedRingPlan(t *testing.T, u0, u1, T int) (*warehouse.Warehouse, *warehouse.Plan, warehouse.Workload) {
	t.Helper()
	w, s := testmaps.MustRing()
	wl, err := warehouse.NewWorkload(w, []int{u0, u1})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := cycles.Synthesize(s, wl, T, cycles.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, _, err := agentplan.Realize(cs, wl, T)
	if err != nil {
		t.Fatal(err)
	}
	return w, plan, wl
}

func TestExecuteMCPNoFailuresMatchesPlan(t *testing.T) {
	w, plan, wl := solvedRingPlan(t, 8, 4, 800)
	base := Run(w, plan, wl)
	res, err := ExecuteMCP(w, plan, wl, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalled {
		t.Fatal("failure-free execution stalled")
	}
	if res.Delivered[0] != base.Delivered[0] || res.Delivered[1] != base.Delivered[1] {
		t.Errorf("MCP delivered %v, plan delivered %v", res.Delivered, base.Delivered)
	}
	// Without failures the executor can only be faster or equal (wait steps
	// in the plan compress away), never slower.
	if base.ServicedAt >= 0 && res.ServicedAt > base.ServicedAt {
		t.Errorf("MCP serviced at %d, plan at %d", res.ServicedAt, base.ServicedAt)
	}
}

func TestExecuteMCPTransientFailureDelaysButServices(t *testing.T) {
	w, plan, wl := solvedRingPlan(t, 8, 4, 800)
	base, err := ExecuteMCP(w, plan, wl, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExecuteMCP(w, plan, wl, []Failure{{Agent: 0, At: 10, Duration: 120}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalled {
		t.Fatal("transient failure caused a permanent stall")
	}
	if res.ServicedAt < 0 {
		t.Fatal("workload not serviced after transient failure")
	}
	if res.ServicedAt < base.ServicedAt {
		t.Errorf("failure made execution faster: %d < %d", res.ServicedAt, base.ServicedAt)
	}
	if res.Waits == 0 {
		t.Error("no wait steps recorded despite a 120-step freeze")
	}
}

func TestExecuteMCPPermanentFailureDegrades(t *testing.T) {
	w, plan, wl := solvedRingPlan(t, 8, 4, 800)
	res, err := ExecuteMCP(w, plan, wl, []Failure{{Agent: 0, At: 5, Duration: 0}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// On a single-ring system a permanently frozen agent eventually blocks
	// the loop: the run must end (stall or wall limit), not hang, and any
	// deliveries must respect stock accounting.
	for k, d := range res.Delivered {
		if d > wl.Units[k]+300 {
			t.Errorf("implausible delivery count %d for product %d", d, k)
		}
	}
	if res.ServicedAt >= 0 && !res.Stalled {
		// Possible if the frozen agent was not load-bearing; both outcomes
		// are acceptable, but servicing plus stalling is contradictory.
		t.Logf("plan survived a permanent single-agent failure (serviced at %d)", res.ServicedAt)
	}
}

func TestExecuteMCPBadFailureAgent(t *testing.T) {
	w, plan, wl := solvedRingPlan(t, 2, 0, 600)
	if _, err := ExecuteMCP(w, plan, wl, []Failure{{Agent: 99}}, 0); err == nil {
		t.Error("out-of-range failure agent accepted")
	}
}

func TestExecuteMCPEmptyPlan(t *testing.T) {
	w, _ := testmaps.MustRing()
	res, err := ExecuteMCP(w, &warehouse.Plan{}, warehouse.Workload{Units: []int{0, 0}}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServicedAt != 0 {
		t.Errorf("empty workload on empty plan: ServicedAt = %d, want 0", res.ServicedAt)
	}
}
