package grid

import "testing"

func TestParseMovingAI(t *testing.T) {
	text := "type octile\nheight 3\nwidth 5\nmap\n.....\n..@..\nG...W\n"
	g, err := ParseMovingAI(text)
	if err != nil {
		t.Fatal(err)
	}
	if g.Width() != 5 || g.Height() != 3 {
		t.Fatalf("dims %dx%d", g.Width(), g.Height())
	}
	// 15 cells minus one '@' and one 'W'.
	if got := g.NumVertices(); got != 13 {
		t.Errorf("vertices = %d, want 13", got)
	}
	// First text row is the north edge: the '@' sits at y=1.
	if g.At(Coord{X: 2, Y: 1}) != None {
		t.Error("obstacle cell passable")
	}
	if g.At(Coord{X: 0, Y: 0}) == None { // the 'G' in the last row
		t.Error("G terrain not passable")
	}
}

func TestParseMovingAIErrors(t *testing.T) {
	cases := []string{
		"",
		"height 3\nwidth 5\n",           // no map keyword
		"height x\nwidth 5\nmap\n",      // bad height
		"height 2\nwidth 5\nmap\n.....", // too few rows
		"height 1\nwidth 5\nmap\n...",   // short row
		"height 1\nwidth 3\nmap\n.z.",   // unknown terrain
		"height 1\nwidth\nmap\n...",     // malformed width
		"type octile\nheight\nmap\n",    // malformed height line
	}
	for i, text := range cases {
		if _, err := ParseMovingAI(text); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestParseMovingAICRLF(t *testing.T) {
	text := "type octile\r\nheight 1\r\nwidth 3\r\nmap\r\n...\r\n"
	g, err := ParseMovingAI(text)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 {
		t.Errorf("vertices = %d, want 3", g.NumVertices())
	}
}

// TestParseMovingAICRLFMultiRow pins that CRLF endings neither shift the
// north-edge orientation nor leave '\r' bytes to be read as terrain.
func TestParseMovingAICRLFMultiRow(t *testing.T) {
	text := "type octile\r\nheight 2\r\nwidth 3\r\nmap\r\n..@\r\n...\r\n"
	g, err := ParseMovingAI(text)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 5 {
		t.Errorf("vertices = %d, want 5", g.NumVertices())
	}
	// First text row is the north edge: the '@' sits at y=1.
	if g.At(Coord{X: 2, Y: 1}) != None {
		t.Error("obstacle cell passable under CRLF")
	}
}

// TestParseMovingAIGoldenErrors pins the exact message for each malformed
// input class, so importer diagnostics stay stable for corpus tooling that
// surfaces them verbatim.
func TestParseMovingAIGoldenErrors(t *testing.T) {
	cases := []struct {
		name, text, want string
	}{
		{
			name: "truncated header",
			text: "type octile\nheight 3\n",
			want: "grid: missing height/width/map header",
		},
		{
			name: "header cut mid-keyword",
			text: "type octile\nheight 3\nwidth 5\nma",
			want: "grid: missing height/width/map header",
		},
		{
			name: "body shorter than declared height",
			text: "height 3\nwidth 3\nmap\n...\n...\n",
			want: "grid: map body has 2 rows, want 3",
		},
		{
			name: "body taller than declared height",
			text: "height 1\nwidth 3\nmap\n...\n...\n",
			want: "grid: map body has 2 rows, want 1",
		},
		{
			name: "row narrower than declared width",
			text: "height 1\nwidth 5\nmap\n...\n",
			want: "grid: map row 0 has 3 cells, want 5",
		},
		{
			name: "row wider than declared width",
			text: "height 2\nwidth 3\nmap\n...\n....\n",
			want: "grid: map row 1 has 4 cells, want 3",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseMovingAI(tc.text)
			if err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
			if err.Error() != tc.want {
				t.Errorf("error = %q, want %q", err, tc.want)
			}
		})
	}
}
