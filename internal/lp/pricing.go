package lp

// pricer selects the primal entering rule: Dantzig (most-attractive reduced
// cost) by default for low pivot counts, falling back to Bland's least-index
// rule after a run of consecutive degenerate (zero-step) pivots so that
// termination stays guaranteed on cycling-prone instances (Beale's example
// cycles forever under pure Dantzig pricing). A nonzero step strictly
// improves the objective, so no basis can recur across improving steps;
// within a degenerate stretch Bland's rule cannot cycle. The same stall
// counter drives the dual reentry loop's rule switch. Both simplex
// representations — the dense tableau and the revised engine — share this
// type and observe the identical pivot sequence, which keeps the rule
// switches (and hence the answers) bit-identical across them.
type pricer struct {
	stall     int  // consecutive degenerate steps
	threshold int  // stalls tolerated before switching rules
	bland     bool // least-index mode active
}

func newPricer(m, n int) pricer {
	th := 2 * (m + n)
	if th < 32 {
		th = 32
	}
	return pricer{threshold: th}
}

// observe records one pivot or bound flip; degenerate steps eventually
// switch pricing to Bland's rule, any real step switches back.
func (pr *pricer) observe(degenerate bool) {
	if !degenerate {
		pr.stall = 0
		pr.bland = false
		return
	}
	pr.stall++
	if pr.stall > pr.threshold {
		pr.bland = true
	}
}

func (pr *pricer) reset() {
	pr.stall = 0
	pr.bland = false
}
