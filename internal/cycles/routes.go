package cycles

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/traffic"
	"repro/internal/warehouse"
)

// Options tunes Synthesize.
type Options struct {
	// WarmupMargin reserves cycle periods for realization warm-up. Zero
	// selects an automatic margin.
	WarmupMargin int
	// MaxLegsPerCycle caps how many (row, product) legs are packed into one
	// cycle. Zero means the default of 32.
	MaxLegsPerCycle int
}

// Synthesize builds an agent cycle set directly by route packing — the
// strategy that scales to Table I. Each product's demand is split over its
// stocked shelving rows, chunked into legs, and legs are packed into cycles
// whose loops are routed over the residual component capacities (Property
// 4.1: a component is entered by at most ⌊|Ci|/2⌋ concurrent cycles).
//
// Compared with the flow-set path (flow.Synthesize* followed by
// FromFlowSet), route packing works at total-units granularity rather than
// integer units-per-period, which is what instances with hundreds of
// products and demand ≪ one unit per period per product require.
func Synthesize(s *traffic.System, wl warehouse.Workload, T int, opts Options) (*Set, error) {
	maxLegs := opts.MaxLegsPerCycle
	if maxLegs == 0 {
		maxLegs = 32
	}
	tc := s.CycleTime()
	if tc <= 0 {
		return nil, fmt.Errorf("cycles: traffic system has zero cycle time")
	}
	qc := T / tc
	if qc < 1 {
		return nil, fmt.Errorf("cycles: horizon %d shorter than one cycle period %d", T, tc)
	}
	margin := opts.WarmupMargin
	if margin == 0 {
		// Warm-up ends once every agent has completed one revolution; loop
		// lengths are bounded by the component count. Cap the reserve at an
		// eighth of the budget so tight instances keep enough per-cycle
		// delivery budget (the Solve retry loop widens the margin if the
		// realization falls short).
		margin = s.NumComponents() + 2
		if margin > qc/8 {
			margin = qc / 8
		}
	}
	qeff := qc - margin
	if qeff < 1 {
		qeff = 1
	}

	cs := &Set{S: s, Tc: tc, Qc: qc, QEff: qeff}
	residual := make([]int, s.NumComponents())
	for i, c := range s.Components {
		residual[i] = c.Capacity()
	}
	queues := s.StationQueues()
	rows := sortedRows(s)

	// Feasibility-driven packing. A routed loop passes a set of shelving
	// rows; any product stocked on any of those rows can join the cycle as a
	// leg, sharing the cycle's delivery budget of qeff units (one queue
	// visit per period). Products are walked in index order; each share goes
	// to an already-open cycle when one passes a stocked row, and a new
	// cycle is routed over the residual capacities otherwise. Capacity
	// consumption is therefore interleaved with allocation, so the packing
	// self-balances across stripes and aisles.
	type openCycle struct {
		cyc      *Cycle
		budget   int
		legs     int
		queueIdx int
		rowPos   map[traffic.ComponentID]int // shelving rows on the loop -> first index
	}
	var open []*openCycle
	stockUsed := make(map[[2]int]int) // (row, product) -> units taken

	stockLeft := func(ri traffic.ComponentID, k int) int {
		return s.UnitsAt(ri, warehouse.ProductID(k)) - stockUsed[[2]int{int(ri), k}]
	}
	addLeg := func(oc *openCycle, ri traffic.ComponentID, k, units int) {
		oc.cyc.Legs = append(oc.cyc.Legs, Leg{
			PickIdx: oc.rowPos[ri],
			DropIdx: oc.queueIdx,
			Product: warehouse.ProductID(k),
			Quota:   units,
		})
		oc.budget -= units
		oc.legs++
		stockUsed[[2]int{int(ri), k}] += units
	}
	newCycle := func(k int) (*openCycle, error) {
		// Candidate target rows, by remaining stock of product k.
		cands := make([]traffic.ComponentID, 0, 4)
		for _, ri := range rows {
			if stockLeft(ri, k) > 0 {
				cands = append(cands, ri)
			}
		}
		sort.Slice(cands, func(a, b int) bool {
			sa, sb := stockLeft(cands[a], k), stockLeft(cands[b], k)
			if sa != sb {
				return sa > sb
			}
			return cands[a] < cands[b]
		})
		var attempts []string
		for _, ri := range cands {
			// Target the last segment of the row's aisle chain so the loop
			// traverses every segment of the aisle.
			target := zoneLast(s, ri)
			cyc, err := routeCycle(s, []traffic.ComponentID{target}, queues, residual, qeff)
			if err != nil {
				attempts = append(attempts, fmt.Sprintf("row %d (target %d): %v", ri, target, err))
				continue
			}
			oc := &openCycle{cyc: cyc, budget: qeff, queueIdx: -1, rowPos: map[traffic.ComponentID]int{}}
			for i, comp := range cyc.Components {
				if s.Components[comp].Kind == traffic.ShelvingRow {
					if _, ok := oc.rowPos[comp]; !ok {
						oc.rowPos[comp] = i
					}
				}
				if oc.queueIdx < 0 && s.Components[comp].Kind == traffic.StationQueue {
					oc.queueIdx = i
				}
			}
			cs.Cycles = append(cs.Cycles, cyc)
			open = append(open, oc)
			return oc, nil
		}
		if len(attempts) == 0 {
			return nil, fmt.Errorf("cycles: product %d has no stocked shelving row", k)
		}
		return nil, fmt.Errorf("cycles: no feasible loop for product %d: %s", k, strings.Join(attempts, "; "))
	}

	for k, want := range wl.Units {
		remaining := want
		for remaining > 0 {
			// Prefer an open cycle passing a row that still stocks k.
			var bestOC *openCycle
			var bestRow traffic.ComponentID
			bestGive := 0
			for _, oc := range open {
				if oc.budget <= 0 || oc.legs >= maxLegs {
					continue
				}
				for ri := range oc.rowPos {
					give := stockLeft(ri, k)
					if give > oc.budget {
						give = oc.budget
					}
					if give > remaining {
						give = remaining
					}
					if give > bestGive || (give == bestGive && give > 0 && (bestOC == nil || ri < bestRow)) {
						bestOC, bestRow, bestGive = oc, ri, give
					}
				}
			}
			if bestGive > 0 {
				addLeg(bestOC, bestRow, k, bestGive)
				remaining -= bestGive
				continue
			}
			oc, err := newCycle(k)
			if err != nil {
				return nil, fmt.Errorf("cycles: cannot place %d remaining units of product %d: %w", remaining, k, err)
			}
			// The new cycle must serve k (its target row stocks it).
			give := 0
			var giveRow traffic.ComponentID
			for ri := range oc.rowPos {
				if g := stockLeft(ri, k); g > give {
					give, giveRow = g, ri
				}
			}
			if give > oc.budget {
				give = oc.budget
			}
			if give > remaining {
				give = remaining
			}
			if give <= 0 {
				return nil, fmt.Errorf("cycles: routed cycle for product %d does not pass a stocked row", k)
			}
			addLeg(oc, giveRow, k, give)
			remaining -= give
		}
	}
	// Drop cycles that ended up without legs (cannot happen today, but keep
	// the invariant Check expects).
	kept := cs.Cycles[:0]
	for _, c := range cs.Cycles {
		if len(c.Legs) > 0 {
			kept = append(kept, c)
		}
	}
	cs.Cycles = kept
	if errs := cs.Check(wl); len(errs) > 0 {
		return nil, fmt.Errorf("cycles: route packing produced an invalid cycle set: %v", errs[0])
	}
	return cs, nil
}

// zoneLast follows the chain of shelving-row components downstream from ri
// and returns the last row segment of the aisle, so a loop targeting it
// traverses the whole aisle.
func zoneLast(s *traffic.System, ri traffic.ComponentID) traffic.ComponentID {
	cur := ri
	for steps := 0; steps < s.NumComponents(); steps++ {
		next := traffic.ComponentID(-1)
		for _, out := range s.Outlets[cur] {
			if s.Components[out].Kind == traffic.ShelvingRow {
				next = out
				break
			}
		}
		if next < 0 {
			return cur
		}
		cur = next
	}
	return cur
}

// routeCycle builds a closed loop visiting the given rows (in order) and one
// station queue, over components with positive residual capacity, and
// decrements the capacities it consumes. Among the queues that admit a
// capacity-feasible loop, the one giving the shortest loop wins — locality
// keeps loops inside their own circulation stripe, which is what preserves
// corridor capacity for the remaining cycles.
func routeCycle(s *traffic.System, rows []traffic.ComponentID, queues []traffic.ComponentID, residual []int, qeff int) (*Cycle, error) {
	var best []traffic.ComponentID
	var lastErr error
	for _, q := range queues {
		if residual[q] <= 0 {
			continue
		}
		loop, err := routeLoop(s, rows, q, residual)
		if err != nil {
			lastErr = err
			continue
		}
		// The loop must fit the residual capacities, one unit per occurrence.
		ok := true
		count := map[traffic.ComponentID]int{}
		for _, comp := range loop {
			count[comp]++
			if count[comp] > residual[comp] {
				ok = false
				break
			}
		}
		if !ok {
			lastErr = fmt.Errorf("cycles: loop revisits a component beyond its residual capacity")
			continue
		}
		if best == nil || len(loop) < len(best) {
			best = loop
		}
	}
	if best == nil {
		if lastErr == nil {
			lastErr = fmt.Errorf("cycles: no station queue has residual capacity")
		}
		return nil, lastErr
	}
	for _, comp := range best {
		residual[comp]--
	}
	return &Cycle{Components: best}, nil
}

// routeLoop routes waypoints rows[0] -> rows[1] -> ... -> queue -> rows[0]
// through Gs, using only components with residual capacity (waypoints
// included), and returns the loop with the final return to rows[0] omitted
// (the cycle wraps implicitly).
func routeLoop(s *traffic.System, rows []traffic.ComponentID, queue traffic.ComponentID, residual []int) ([]traffic.ComponentID, error) {
	waypoints := append(append([]traffic.ComponentID(nil), rows...), queue, rows[0])
	var loop []traffic.ComponentID
	for i := 0; i+1 < len(waypoints); i++ {
		seg, err := bfsComponents(s, waypoints[i], waypoints[i+1], residual)
		if err != nil {
			return nil, err
		}
		loop = append(loop, seg[:len(seg)-1]...) // drop the junction duplicate
	}
	return loop, nil
}

// bfsComponents finds a shortest path from a to b in Gs restricted to
// components with positive residual capacity (a and b themselves must have
// capacity too).
func bfsComponents(s *traffic.System, a, b traffic.ComponentID, residual []int) ([]traffic.ComponentID, error) {
	if residual[a] <= 0 || residual[b] <= 0 {
		return nil, fmt.Errorf("cycles: waypoint %d or %d has no residual capacity", a, b)
	}
	if a == b {
		return []traffic.ComponentID{a}, nil
	}
	prev := make([]traffic.ComponentID, s.NumComponents())
	for i := range prev {
		prev[i] = -1
	}
	prev[a] = a
	queue := []traffic.ComponentID{a}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range s.Outlets[v] {
			if prev[u] >= 0 || residual[u] <= 0 {
				continue
			}
			prev[u] = v
			if u == b {
				var rev []traffic.ComponentID
				for x := b; ; x = prev[x] {
					rev = append(rev, x)
					if x == a {
						break
					}
				}
				for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
					rev[i], rev[j] = rev[j], rev[i]
				}
				return rev, nil
			}
			queue = append(queue, u)
		}
	}
	return nil, fmt.Errorf("cycles: no capacity-feasible route from component %d to %d", a, b)
}
