// Package maps generates the evaluation warehouses of §V together with
// their co-designed traffic systems: two fulfillment-center maps modeled on
// the Kiva layout of [10] and a sorting-center map modeled on [11], plus a
// parametric family used by the scaling and design-space benches.
//
// Topology. A generated map is a row of S vertical stripes. Each stripe has
// a west corridor (width V, carrying traffic up), a bay of shelf columns
// (width B), and an east corridor (width V, carrying traffic down). Aisle
// rows run eastward through the bays every third row; the bottom row is a
// single westward avenue shared by all stripes, holding the stations.
// Between consecutive aisle rows sit shelf bands (two shelf rows in the
// fulfillment maps, one chute row in the sorting map); the band between the
// bottom avenue and the first aisle row is left empty so station queues
// never mix with shelf access cells. An eastward avenue above the top aisle
// row closes the global circulation (the bottom avenue only flows west), so
// the traffic system graph is strongly connected.
//
// Every lane either ends at a junction cell it owns (so its exit can feed
// both the continuing lane and a turn) or starts at one (so it can be fed by
// a crossing and by through traffic), which is exactly the wiring rule of
// §IV-A under the Algorithm 1 direction convention. Corridor crossings are
// 2V+1-cell serpentines, so corridor capacity scales with V.
package maps

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/traffic"
	"repro/internal/warehouse"
)

// Params describes one parametric warehouse.
type Params struct {
	// Stripes is S, the number of vertical circulation stripes (≥1).
	Stripes int
	// Rows is R: aisle rows above the bottom avenue (≥2).
	Rows int
	// BayWidth is B, shelf columns per stripe (≥2).
	BayWidth int
	// CorridorWidth is V, corridor columns per side (≥2).
	CorridorWidth int
	// MaxComponentLen caps component length (sets m and tc = 2m). Zero
	// means 6.
	MaxComponentLen int
	// DoubleShelfRows selects two shelf rows per band (fulfillment pods)
	// instead of one (sorting chutes).
	DoubleShelfRows bool
	// NumProducts is |ρ|; products are assigned to shelves round-robin.
	NumProducts int
	// UnitsPerShelf is the stock each shelf holds of its product.
	UnitsPerShelf int
	// StationsPerStripe places this many station berths on the bottom
	// avenue under each stripe (total stations = Stripes × StationsPerStripe).
	StationsPerStripe int
}

// Map bundles a generated warehouse with its co-designed traffic system.
type Map struct {
	W      *warehouse.Warehouse
	S      *traffic.System
	Params Params
	// Shelves lists the shelf cells (obstacles holding stock).
	Shelves []grid.Coord
}

func (p Params) validate() error {
	switch {
	case p.Stripes < 1:
		return fmt.Errorf("maps: Stripes %d < 1", p.Stripes)
	case p.Rows < 2:
		return fmt.Errorf("maps: Rows %d < 2", p.Rows)
	case p.BayWidth < 2:
		return fmt.Errorf("maps: BayWidth %d < 2", p.BayWidth)
	case p.CorridorWidth < 2:
		return fmt.Errorf("maps: CorridorWidth %d < 2", p.CorridorWidth)
	case p.NumProducts < 1:
		return fmt.Errorf("maps: NumProducts %d < 1", p.NumProducts)
	case p.UnitsPerShelf < 1:
		return fmt.Errorf("maps: UnitsPerShelf %d < 1", p.UnitsPerShelf)
	case p.StationsPerStripe < 1:
		return fmt.Errorf("maps: StationsPerStripe %d < 1", p.StationsPerStripe)
	}
	return nil
}

// Generate builds the warehouse and traffic system for p.
func Generate(p Params) (*Map, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if p.MaxComponentLen == 0 {
		p.MaxComponentLen = 6
	}
	sw := 2*p.CorridorWidth + p.BayWidth // stripe width
	W := p.Stripes * sw
	H := 3*p.Rows + 2 // +1 for the bottom avenue, +1 for the top avenue
	V := p.CorridorWidth

	// Stripe landmarks.
	xW := func(i int) int { return i*sw + V - 1 }             // west junction column
	xE := func(i int) int { return i*sw + V + p.BayWidth }    // east junction column
	bayX0 := func(i int) int { return i*sw + V }              // first bay column
	bayX1 := func(i int) int { return i*sw + V + p.BayWidth } // one past last bay column

	// Raster: everything passable except shelf cells.
	passable := make([][]bool, H)
	for y := range passable {
		passable[y] = make([]bool, W)
		for x := range passable[y] {
			passable[y][x] = true
		}
	}
	var shelves []grid.Coord
	// Shelf bands between aisle rows r and r+1 for r = 1..Rows-1.
	for r := 1; r < p.Rows; r++ {
		yLo, yHi := 3*r+1, 3*r+2
		for i := 0; i < p.Stripes; i++ {
			for x := bayX0(i); x < bayX1(i); x++ {
				passable[yLo][x] = false
				shelves = append(shelves, grid.Coord{X: x, Y: yLo})
				if p.DoubleShelfRows {
					passable[yHi][x] = false
					shelves = append(shelves, grid.Coord{X: x, Y: yHi})
				}
			}
		}
	}
	g, err := grid.New(passable)
	if err != nil {
		return nil, err
	}

	// Shelf access: a lower shelf (y = 3r+1) is served from the aisle cell
	// below it; an upper shelf (y = 3r+2) from the aisle cell above. Access
	// cells may serve two shelves (one above, one below).
	accessIndex := make(map[grid.VertexID]int)
	var accessList []grid.VertexID
	accessOf := func(c grid.Coord) int {
		v := g.At(c)
		if v == grid.None {
			panic(fmt.Sprintf("maps: access cell %v not passable", c))
		}
		if idx, ok := accessIndex[v]; ok {
			return idx
		}
		idx := len(accessList)
		accessIndex[v] = idx
		accessList = append(accessList, v)
		return idx
	}
	type shelfRef struct {
		col  int // Λ column of the access vertex
		prod int
	}
	var refs []shelfRef
	shelfAccessCol := make([]int, len(shelves))
	for si, sc := range shelves {
		var access grid.Coord
		if (sc.Y-1)%3 == 0 { // lower shelf row: served from below
			access = grid.Coord{X: sc.X, Y: sc.Y - 1}
		} else { // upper shelf row: served from above
			access = grid.Coord{X: sc.X, Y: sc.Y + 1}
		}
		shelfAccessCol[si] = accessOf(access)
		refs = append(refs, shelfRef{col: shelfAccessCol[si], prod: si % p.NumProducts})
	}
	// With more products than shelves (e.g. 36 destinations on 32 chutes),
	// the leftover products become second occupants, round-robin.
	for k := len(shelves); k < p.NumProducts; k++ {
		refs = append(refs, shelfRef{col: shelfAccessCol[k%len(shelves)], prod: k})
	}

	// Stations on the bottom avenue near each stripe mouth's east end (the
	// end every loop enters through), spaced so each lands in its own
	// component after splitting.
	var stations []grid.VertexID
	minGap := p.MaxComponentLen + 2
	for i := 0; i < p.Stripes; i++ {
		lo, hi := xW(i)+2, xE(i)-2
		for j := 0; j < p.StationsPerStripe; j++ {
			x := hi - j*minGap
			if x < lo {
				return nil, fmt.Errorf("maps: stripe %d cannot hold %d stations with gap %d", i, p.StationsPerStripe, minGap)
			}
			stations = append(stations, g.At(grid.Coord{X: x, Y: 0}))
		}
	}

	// Location matrix.
	stock := make([][]int, p.NumProducts)
	for k := range stock {
		stock[k] = make([]int, len(accessList))
	}
	for _, ref := range refs {
		stock[ref.prod][ref.col] += p.UnitsPerShelf
	}
	w, err := warehouse.New(g, accessList, stations, p.NumProducts, stock)
	if err != nil {
		return nil, err
	}

	lanes, err := buildLanes(p, g, sw, W)
	if err != nil {
		return nil, err
	}
	segs, err := traffic.SplitLanes(w, lanes, traffic.SplitOptions{MaxLen: p.MaxComponentLen})
	if err != nil {
		return nil, err
	}
	s, err := traffic.Build(w, segs)
	if err != nil {
		return nil, err
	}
	// Each station berth must sit in its own queue component so station
	// throughput scales with the berth count.
	seen := make(map[traffic.ComponentID]bool)
	for _, st := range stations {
		c := s.ComponentAt(st)
		if seen[c] {
			return nil, fmt.Errorf("maps: two stations share component %d; increase spacing", c)
		}
		seen[c] = true
	}
	return &Map{W: w, S: s, Params: p, Shelves: shelves}, nil
}

// buildLanes emits the directed lanes of the stripe-circulation design.
func buildLanes(p Params, g *grid.Grid, sw, W int) ([][]grid.VertexID, error) {
	V := p.CorridorWidth
	at := func(x, y int) grid.VertexID {
		v := g.At(grid.Coord{X: x, Y: y})
		if v == grid.None {
			panic(fmt.Sprintf("maps: lane cell (%d,%d) not passable", x, y))
		}
		return v
	}
	xW := func(i int) int { return i*sw + V - 1 }
	xE := func(i int) int { return i*sw + V + p.BayWidth }
	x0 := func(i int) int { return i * sw }

	var lanes [][]grid.VertexID
	add := func(cells []grid.VertexID) { lanes = append(lanes, cells) }

	// Bottom avenue: westward from the last stripe's east junction to the
	// first stripe's west junction. Junction cells xE(i) start segments;
	// junction cells xW(i) end them.
	last := p.Stripes - 1
	// Stripe-mouth segments [xE(i) .. xW(i)] and inter-stripe connectors
	// [xW(i)-1 .. xE(i-1)+1].
	for i := last; i >= 0; i-- {
		var mouth []grid.VertexID
		for x := xE(i); x >= xW(i); x-- {
			mouth = append(mouth, at(x, 0))
		}
		add(mouth)
		if i > 0 {
			var conn []grid.VertexID
			for x := xW(i) - 1; x >= xE(i-1)+1; x-- {
				conn = append(conn, at(x, 0))
			}
			if len(conn) < 2 {
				return nil, fmt.Errorf("maps: inter-stripe connector too short; CorridorWidth must be >= 2")
			}
			add(conn)
		}
	}

	// Top avenue: eastward at y = 3*Rows+1, split at each stripe's west
	// junction (segment start, fed by the stripe's top crossing) and east
	// junction (segment end, feeding the stripe's east corridor).
	yTop := 3*p.Rows + 1
	for i := 0; i < p.Stripes; i++ {
		var seg []grid.VertexID
		for x := xW(i); x <= xE(i); x++ {
			seg = append(seg, at(x, yTop))
		}
		add(seg)
		if i < p.Stripes-1 {
			var conn []grid.VertexID
			for x := xE(i) + 1; x <= xW(i+1)-1; x++ {
				conn = append(conn, at(x, yTop))
			}
			if len(conn) < 2 {
				return nil, fmt.Errorf("maps: top connector too short; CorridorWidth must be >= 2")
			}
			add(conn)
		}
	}

	for i := 0; i < p.Stripes; i++ {
		// Bay aisle rows r = 1..Rows: eastward from west junction+1 to east
		// junction-1 (the east junction belongs to the east crossing).
		for r := 1; r <= p.Rows; r++ {
			y := 3 * r
			var bay []grid.VertexID
			for x := xW(i) + 1; x <= xE(i)-1; x++ {
				bay = append(bay, at(x, y))
			}
			add(bay)
		}
		// West corridor crossings (upward): crossing r -> r+1 starts at
		// (xW, 3r+1), serpentines west then east, and ends at the junction
		// (xW, 3(r+1)) so it can feed both the bay row and the next crossing.
		for r := 0; r < p.Rows; r++ {
			y := 3 * r
			var c []grid.VertexID
			for x := xW(i); x >= x0(i); x-- {
				c = append(c, at(x, y+1))
			}
			for x := x0(i); x <= xW(i); x++ {
				c = append(c, at(x, y+2))
			}
			c = append(c, at(xW(i), y+3))
			add(c)
		}
		// East corridor crossings (downward): crossing r -> r-1 starts at
		// the junction (xE, 3r) (fed by bay row r and the crossing above),
		// serpentines east then west, and exits at (xE, 3r-2) which feeds
		// the junction below.
		for r := p.Rows; r >= 1; r-- {
			y := 3 * r
			var c []grid.VertexID
			for x := xE(i); x <= xE(i)+V-1; x++ {
				c = append(c, at(x, y))
			}
			for x := xE(i) + V - 1; x >= xE(i); x-- {
				c = append(c, at(x, y-1))
			}
			c = append(c, at(xE(i), y-2))
			add(c)
		}
	}
	_ = W
	return lanes, nil
}
