// Package solverpool serves batches of WSP instances concurrently: a
// bounded pool of workers, each with its own reusable synthesis scratch,
// drains a request list and solves every instance with core.SolveScratch.
//
// core.Solve is a pure function of its inputs — a traffic.System is
// read-only after traffic.Build — so concurrent solves of requests that
// share a System are safe, and the pool's output for every request is
// bit-identical to what a sequential core.Solve of that request returns.
// This is what lets an online re-planner answer many what-if workloads (or
// serve many tenants on the same floorplan) at once without giving up the
// reproducibility of the sequential path.
package solverpool

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/lp"
	"repro/internal/traffic"
	"repro/internal/warehouse"
)

// Request is one WSP instance to solve.
type Request struct {
	S    *traffic.System
	WL   warehouse.Workload
	T    int
	Opts core.Options
}

// Result pairs a request's outcome with its wall-clock solve time.
type Result struct {
	Res     *core.Result
	Err     error
	Elapsed time.Duration
}

// Pool is a bounded solver pool. Use New; the zero value works but
// degrades to draining every batch sequentially.
type Pool struct {
	workers int
}

// New returns a pool of the given width. workers <= 0 selects GOMAXPROCS.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool width.
func (p *Pool) Workers() int { return p.workers }

// SolveBatch solves every request and returns results in request order. At
// most Workers() solves run concurrently; each worker owns a core.Scratch
// that is reused across all requests it drains, so the synthesis hot path
// allocates per worker, not per request.
//
// Cancelling ctx aborts in-flight solves (within one LP work-budget tick)
// and fails every not-yet-started request fast; the pool still drains the
// whole batch — every Result slot is filled, workers exit, and no
// goroutine outlives the call. Cancelled slots carry an error wrapping
// lp.ErrCanceled.
func (p *Pool) SolveBatch(ctx context.Context, reqs []Request) []Result {
	results := make([]Result, len(reqs))
	n := p.workers
	if n > len(reqs) {
		n = len(reqs)
	}
	if n <= 1 {
		solveRange(ctx, reqs, results, new(atomic.Int64))
		return results
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			solveRange(ctx, reqs, results, &next)
		}()
	}
	wg.Wait()
	return results
}

// solveRange drains requests by atomic index, reusing one scratch for every
// request this worker handles. Once ctx is cancelled the remaining indices
// drain without solving, so the batch always completes with every slot
// filled.
func solveRange(ctx context.Context, reqs []Request, results []Result, next *atomic.Int64) {
	sc := &core.Scratch{}
	for {
		i := int(next.Add(1)) - 1
		if i >= len(reqs) {
			return
		}
		if err := ctx.Err(); err != nil {
			results[i] = Result{Err: lp.WrapCancelCause(ctx,
				fmt.Errorf("solverpool: request %d canceled before solving: %w", i, lp.ErrCanceled))}
			continue
		}
		start := time.Now()
		res, err := core.SolveScratch(ctx, reqs[i].S, reqs[i].WL, reqs[i].T, reqs[i].Opts, sc)
		results[i] = Result{Res: res, Err: err, Elapsed: time.Since(start)}
	}
}

// SolveBatch solves reqs on a fresh pool of the given width (<= 0 selects
// GOMAXPROCS) — the one-call form of Pool.SolveBatch.
func SolveBatch(ctx context.Context, reqs []Request, workers int) []Result {
	return New(workers).SolveBatch(ctx, reqs)
}
