// Package lifelong runs the warehouse over an open-ended horizon with
// workload batches released over time — the lifelong variant of the WSP,
// mirroring how lifelong MAPD extends one-shot MAPD (§II-A).
//
// The controller is epoch-based: whenever a batch is released, outstanding
// demand is re-synthesized into a fresh agent cycle set for the remaining
// horizon and realized from scratch. The changeover between epochs is
// charged one full cycle time (agents redeploy to their new initial cells;
// DESIGN.md discusses the abstraction). Within an epoch the usual
// guarantees hold: the plan is collision-free and validated.
package lifelong

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/lp"
	"repro/internal/traffic"
	"repro/internal/warehouse"
)

// Batch is a demand vector released at a point in time.
type Batch struct {
	Release int   // timestep the batch becomes known
	Units   []int // per-product demand
}

// Options tunes Run.
type Options struct {
	// Core options forwarded to each epoch's Solve.
	Core core.Options
}

// BatchStats reports one batch's fate.
type BatchStats struct {
	Release   int
	Completed int // timestep all of the batch's units were delivered, -1 if never
	Units     int
}

// EpochInfo records one epoch's timeline. Each epoch changeover is charged
// exactly one cycle time (agents redeploy to their new initial cells), so
// End = Start + Changeover + ServicedAt always holds.
type EpochInfo struct {
	Start      int // timestep the epoch was planned at
	Horizon    int // planning horizon handed to the solver
	Changeover int // redeployment charge: one cycle time
	ServicedAt int // simulated servicing timestep within the epoch
	End        int // Start + Changeover + ServicedAt
}

// Report summarizes a lifelong run.
type Report struct {
	Batches []BatchStats
	// Epochs counts re-synthesis rounds.
	Epochs int
	// EpochLog records each epoch's timeline, in order.
	EpochLog []EpochInfo
	// PeakAgents is the largest team any epoch deployed.
	PeakAgents int
	// Delivered is the total delivered per product.
	Delivered []int
}

// Run services all batches within T timesteps. Batches must have distinct,
// non-negative release times and demand vectors sized to the warehouse.
//
// Cancelling ctx aborts the epoch in flight; the partial Report (epochs
// completed so far) is returned alongside an error wrapping lp.ErrCanceled.
func Run(ctx context.Context, s *traffic.System, batches []Batch, T int, opts Options) (*Report, error) {
	w := s.W
	p := w.NumProducts
	sorted := append([]Batch(nil), batches...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Release < sorted[b].Release })
	for i, b := range sorted {
		if len(b.Units) != p {
			return nil, fmt.Errorf("lifelong: batch %d has %d demands for %d products", i, len(b.Units), p)
		}
		if b.Release < 0 || b.Release >= T {
			return nil, fmt.Errorf("lifelong: batch %d released at %d outside [0, %d)", i, b.Release, T)
		}
	}

	rep := &Report{Delivered: make([]int, p)}
	rep.Batches = make([]BatchStats, len(sorted))
	for i, b := range sorted {
		total := 0
		for _, u := range b.Units {
			total += u
		}
		rep.Batches[i] = BatchStats{Release: b.Release, Completed: -1, Units: total}
	}

	// Outstanding demand per product, plus per-batch remaining counts so
	// deliveries can be attributed FIFO to the oldest open batch.
	outstanding := make([]int, p)
	remaining := make([][]int, len(sorted))
	for i, b := range sorted {
		remaining[i] = append([]int(nil), b.Units...)
	}
	// Physical stock depletes across epochs; each epoch solves on a
	// warehouse whose Λ reflects the units already shipped.
	stock := make([][]int, p)
	for k := 0; k < p; k++ {
		stock[k] = append([]int(nil), w.Stock[k]...)
	}
	paths := make([][]grid.VertexID, len(s.Components))
	for i, c := range s.Components {
		paths[i] = c.Cells
	}
	// One synthesis scratch for the whole run: every epoch rebuilds the same
	// floorplan with depleted stock, so the structure signature is stable
	// and the ContractILP strategy re-targets one compiled contract model on
	// the residual demand instead of recompiling per epoch (bit-identical to
	// scratchless solves).
	sc := &core.Scratch{}

	now := 0
	next := 0 // next batch to release
	for next < len(sorted) || sumPos(outstanding) > 0 {
		// Absorb every batch released by `now`.
		for next < len(sorted) && sorted[next].Release <= now {
			for k, u := range sorted[next].Units {
				outstanding[k] += u
			}
			next++
		}
		if sumPos(outstanding) == 0 {
			if next >= len(sorted) {
				break
			}
			now = sorted[next].Release
			continue
		}
		// Epoch horizon: until the next release (we re-plan then anyway) or
		// the end of time, minus one cycle-time changeover.
		horizon := T - now
		if next < len(sorted) && sorted[next].Release-now < horizon {
			horizon = sorted[next].Release - now
		}
		horizon -= s.CycleTime() // changeover charge
		if horizon < s.CycleTime() {
			// Too little time to do anything before the next event.
			if next < len(sorted) {
				now = sorted[next].Release
				continue
			}
			return rep, fmt.Errorf("lifelong: %d units outstanding with no time left", sumPos(outstanding))
		}
		// Build the epoch's warehouse with the depleted stock and re-wire
		// the same traffic-system components onto it.
		we, err := warehouse.New(w.Graph, w.ShelfAccess, w.Stations, p, stock)
		if err != nil {
			return rep, err
		}
		se, err := traffic.Build(we, paths)
		if err != nil {
			return rep, err
		}
		wl, err := warehouse.NewWorkload(we, clampByStock(we, outstanding))
		if err != nil {
			return rep, err
		}
		res, err := core.SolveScratch(ctx, se, wl, horizon, opts.Core, sc)
		if err != nil {
			if errors.Is(err, lp.ErrCanceled) {
				return rep, fmt.Errorf("lifelong: run canceled in epoch at t=%d: %w", now, err)
			}
			// The epoch may be too short for the whole backlog; retry with a
			// reduced target before giving up.
			half := halve(wl.Units)
			wl2, err2 := warehouse.NewWorkload(we, half)
			if err2 != nil {
				return rep, err
			}
			res, err = core.SolveScratch(ctx, se, wl2, horizon, opts.Core, sc)
			if err != nil {
				return rep, fmt.Errorf("lifelong: epoch at t=%d failed: %w", now, err)
			}
			wl = wl2
		}
		rep.Epochs++
		if res.Stats.Agents > rep.PeakAgents {
			rep.PeakAgents = res.Stats.Agents
		}
		// Attribute deliveries FIFO to open batches using the simulation's
		// delivery ordering, and deplete physical stock.
		for k := 0; k < p; k++ {
			delivered := res.Sim.Delivered[k]
			if delivered > outstanding[k] {
				delivered = outstanding[k]
			}
			outstanding[k] -= delivered
			rep.Delivered[k] += delivered
			deplete(stock[k], delivered)
			for bi := range remaining {
				if delivered == 0 {
					break
				}
				take := remaining[bi][k]
				if take > delivered {
					take = delivered
				}
				remaining[bi][k] -= take
				delivered -= take
			}
		}
		epochEnd := now + s.CycleTime() + res.Sim.ServicedAt
		rep.EpochLog = append(rep.EpochLog, EpochInfo{
			Start:      now,
			Horizon:    horizon,
			Changeover: s.CycleTime(),
			ServicedAt: res.Sim.ServicedAt,
			End:        epochEnd,
		})
		for bi := range remaining {
			if rep.Batches[bi].Completed < 0 && sumPos(remaining[bi]) == 0 && sorted[bi].Release <= now {
				rep.Batches[bi].Completed = epochEnd
			}
		}
		now = epochEnd
		if now >= T && (next < len(sorted) || sumPos(outstanding) > 0) {
			return rep, fmt.Errorf("lifelong: horizon exhausted with %d units outstanding", sumPos(outstanding))
		}
	}
	return rep, nil
}

func sumPos(units []int) int {
	total := 0
	for _, u := range units {
		total += u
	}
	return total
}

func halve(units []int) []int {
	out := make([]int, len(units))
	for i, u := range units {
		out[i] = u / 2
	}
	return out
}

// deplete removes n units from a stock row, draining columns greedily.
func deplete(row []int, n int) {
	for i := range row {
		if n == 0 {
			return
		}
		take := row[i]
		if take > n {
			take = n
		}
		row[i] -= take
		n -= take
	}
}

// clampByStock caps each product's demand at total stock (re-synthesis per
// epoch re-counts the full stock; execution never over-draws because each
// epoch's realization is stock-checked).
func clampByStock(w *warehouse.Warehouse, units []int) []int {
	out := make([]int, len(units))
	for k, u := range units {
		if stock := w.TotalStock(warehouse.ProductID(k)); u > stock {
			u = stock
		}
		out[k] = u
	}
	return out
}
