package wsp

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestDeadlineTaxonomy pins the deadline-vs-cancel distinction end to end:
// a solve cut short by a context DEADLINE satisfies both ErrCanceled and
// ErrDeadlineExceeded; one cut short by a plain cancel satisfies only
// ErrCanceled; a context.WithCancelCause cause rides along. This is the
// contract the wspd service maps onto 504 vs 499.
func TestDeadlineTaxonomy(t *testing.T) {
	m := tinyMap(t)
	inst := tinyInstance(t, m, 12, 800)
	solver := New(WithStrategy(ContractILP), WithExact(true))

	t.Run("deadline", func(t *testing.T) {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		_, err := solver.Solve(ctx, inst)
		if err == nil {
			t.Fatal("expired deadline produced a result")
		}
		if !errors.Is(err, ErrCanceled) {
			t.Errorf("deadline error does not wrap ErrCanceled: %v", err)
		}
		if !errors.Is(err, ErrDeadlineExceeded) {
			t.Errorf("deadline error does not wrap ErrDeadlineExceeded: %v", err)
		}
	})

	t.Run("plain-cancel", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := solver.Solve(ctx, inst)
		if err == nil {
			t.Fatal("cancelled context produced a result")
		}
		if !errors.Is(err, ErrCanceled) {
			t.Errorf("cancel error does not wrap ErrCanceled: %v", err)
		}
		if errors.Is(err, ErrDeadlineExceeded) {
			t.Errorf("plain cancel misreports a deadline: %v", err)
		}
	})

	t.Run("custom-cause", func(t *testing.T) {
		cause := errors.New("operator pulled the plug")
		ctx, cancel := context.WithCancelCause(context.Background())
		cancel(cause)
		_, err := solver.Solve(ctx, inst)
		if err == nil {
			t.Fatal("cancelled context produced a result")
		}
		if !errors.Is(err, ErrCanceled) || !errors.Is(err, cause) {
			t.Errorf("cause lost in transit: %v", err)
		}
	})

	t.Run("batch-deadline", func(t *testing.T) {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		for i, r := range solver.SolveBatch(ctx, []Instance{inst, inst}) {
			if r.Err == nil {
				t.Fatalf("slot %d: expired deadline produced a result", i)
			}
			if !errors.Is(r.Err, ErrCanceled) || !errors.Is(r.Err, ErrDeadlineExceeded) {
				t.Errorf("slot %d: want ErrCanceled+ErrDeadlineExceeded, got %v", i, r.Err)
			}
		}
	})

	t.Run("sweep-deadline", func(t *testing.T) {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		_, err := solver.Sweep(ctx, SweepSpec{
			Corridors: []int{2}, Lens: []int{6}, Stripes: 1, Products: 2,
			Units: 60, Points: 2, Horizon: 1200,
		})
		if err == nil {
			t.Fatal("expired deadline swept the grid")
		}
		if !errors.Is(err, ErrCanceled) || !errors.Is(err, ErrDeadlineExceeded) {
			t.Errorf("sweep deadline error: want ErrCanceled+ErrDeadlineExceeded, got %v", err)
		}
	})
}

// TestDeadlineMidSolve cancels via deadline while the ILP search is
// actually running (not before it starts), proving the cause survives the
// lp-layer channel crossing.
func TestDeadlineMidSolve(t *testing.T) {
	m := midMap(t)
	inst := tinyInstance(t, m, 64, 1200)
	solver := New(WithStrategy(ContractILP), WithExact(true), WithMaxAttempts(1))

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := solver.Solve(ctx, inst)
	if err == nil {
		t.Skip("solve finished inside the deadline; nothing to assert")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("mid-solve deadline does not wrap ErrCanceled: %v", err)
	}
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Errorf("mid-solve deadline does not wrap ErrDeadlineExceeded: %v", err)
	}
}
