// Package lp is a self-contained linear and integer-linear programming
// solver used as the decision procedure behind the contract framework.
//
// The paper discharges flow-synthesis queries to the Z3 SMT solver; those
// queries are quantifier-free linear integer arithmetic feasibility problems
// (the paper notes the synthesis "is reducible to the Integer Linear
// Programming problem"). This package decides the same fragment with a
// two-phase primal simplex — available both in exact rational arithmetic
// (math/big.Rat, Bland's rule, guaranteed termination) and in float64 with
// tolerances (fast path) — plus a branch-and-bound wrapper for integrality.
package lp

import (
	"fmt"
	"math/big"
	"strings"
)

// VarID identifies a decision variable within a Problem.
type VarID int

// Sense is the relational operator of a constraint.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // Σ terms ≤ rhs
	GE              // Σ terms ≥ rhs
	EQ              // Σ terms = rhs
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Term is one coefficient–variable product in a linear expression.
type Term struct {
	Var  VarID
	Coef *big.Rat
}

// T is a convenience constructor for a Term with an integer coefficient.
func T(v VarID, coef int64) Term { return Term{Var: v, Coef: big.NewRat(coef, 1)} }

// Var describes one decision variable.
type Var struct {
	Name    string
	Lower   *big.Rat // nil means -inf
	Upper   *big.Rat // nil means +inf
	Integer bool
}

// Constraint is a linear constraint Σ Coef·Var (Sense) RHS.
type Constraint struct {
	Name  string
	Terms []Term
	Sense Sense
	RHS   *big.Rat
}

// Problem is a linear (or mixed-integer linear) program. The zero value is
// an empty feasibility problem; add variables and constraints, optionally an
// objective, then hand it to SolveLP or SolveILP.
type Problem struct {
	Vars        []Var
	Constraints []Constraint
	// Objective is maximized when Maximize is true, else minimized. A nil or
	// empty objective makes the problem a pure feasibility question.
	Objective []Term
	Maximize  bool
}

// AddVar declares a continuous variable with the given bounds (nil = ±inf)
// and returns its ID.
func (p *Problem) AddVar(name string, lower, upper *big.Rat) VarID {
	p.Vars = append(p.Vars, Var{Name: name, Lower: lower, Upper: upper})
	return VarID(len(p.Vars) - 1)
}

// AddIntVar declares an integer variable with the given bounds.
func (p *Problem) AddIntVar(name string, lower, upper *big.Rat) VarID {
	p.Vars = append(p.Vars, Var{Name: name, Lower: lower, Upper: upper, Integer: true})
	return VarID(len(p.Vars) - 1)
}

// AddNat declares an integer variable over {0} ∪ N, the domain the paper
// gives every agent flow.
func (p *Problem) AddNat(name string) VarID {
	return p.AddIntVar(name, big.NewRat(0, 1), nil)
}

// AddConstraint appends a constraint and returns its index. Terms mentioning
// out-of-range variables cause a panic: that is a programming error, not an
// input error.
func (p *Problem) AddConstraint(name string, terms []Term, sense Sense, rhs *big.Rat) int {
	for _, t := range terms {
		if t.Var < 0 || int(t.Var) >= len(p.Vars) {
			panic(fmt.Sprintf("lp: constraint %q references unknown variable %d", name, t.Var))
		}
		if t.Coef == nil {
			panic(fmt.Sprintf("lp: constraint %q has nil coefficient", name))
		}
	}
	if rhs == nil {
		panic(fmt.Sprintf("lp: constraint %q has nil rhs", name))
	}
	p.Constraints = append(p.Constraints, Constraint{Name: name, Terms: terms, Sense: sense, RHS: rhs})
	return len(p.Constraints) - 1
}

// SetObjective installs the objective Σ terms, maximized or minimized.
func (p *Problem) SetObjective(terms []Term, maximize bool) {
	p.Objective = terms
	p.Maximize = maximize
}

// NumVars returns the number of declared variables.
func (p *Problem) NumVars() int { return len(p.Vars) }

// Status classifies the outcome of a solve.
type Status int

// Solve outcomes.
const (
	StatusOptimal    Status = iota // solution found (optimal for LP; incumbent for ILP)
	StatusInfeasible               // no assignment satisfies the constraints
	StatusUnbounded                // objective can improve without limit
	StatusLimit                    // ILP search hit its node limit before deciding
	StatusCanceled                 // solve abandoned: the cancellation channel fired
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusLimit:
		return "limit"
	case StatusCanceled:
		return "canceled"
	}
	return "unknown"
}

// Solution is an assignment of rationals to every variable.
type Solution struct {
	Status    Status
	Values    []*big.Rat
	Objective *big.Rat // nil for pure feasibility problems
}

// Value returns the assigned value of v.
func (s *Solution) Value(v VarID) *big.Rat { return s.Values[v] }

// Int returns the value of v as an int, which must be exact.
func (s *Solution) Int(v VarID) int {
	r := s.Values[v]
	if !r.IsInt() {
		panic(fmt.Sprintf("lp: value %s of variable %d is not integral", r, v))
	}
	return int(r.Num().Int64())
}

// Check verifies an assignment against every constraint and bound of p using
// exact arithmetic. It returns nil if the assignment is feasible; otherwise
// an error naming the first violated constraint. Integrality of integer
// variables is enforced.
func (p *Problem) Check(values []*big.Rat) error {
	if len(values) != len(p.Vars) {
		return fmt.Errorf("lp: %d values for %d variables", len(values), len(p.Vars))
	}
	for i, v := range p.Vars {
		x := values[i]
		if v.Lower != nil && x.Cmp(v.Lower) < 0 {
			return fmt.Errorf("lp: %s = %s below lower bound %s", v.Name, x, v.Lower)
		}
		if v.Upper != nil && x.Cmp(v.Upper) > 0 {
			return fmt.Errorf("lp: %s = %s above upper bound %s", v.Name, x, v.Upper)
		}
		if v.Integer && !x.IsInt() {
			return fmt.Errorf("lp: %s = %s is not integral", v.Name, x)
		}
	}
	for _, c := range p.Constraints {
		lhs := new(big.Rat)
		tmp := new(big.Rat)
		for _, t := range c.Terms {
			lhs.Add(lhs, tmp.Mul(t.Coef, values[t.Var]))
		}
		cmp := lhs.Cmp(c.RHS)
		ok := (c.Sense == LE && cmp <= 0) || (c.Sense == GE && cmp >= 0) || (c.Sense == EQ && cmp == 0)
		if !ok {
			return fmt.Errorf("lp: constraint %q violated: lhs=%s %s rhs=%s", c.Name, lhs, c.Sense, c.RHS)
		}
	}
	return nil
}

// String renders the problem in an LP-file-like format, useful in tests and
// error messages.
func (p *Problem) String() string {
	var b strings.Builder
	if len(p.Objective) > 0 {
		if p.Maximize {
			b.WriteString("max:")
		} else {
			b.WriteString("min:")
		}
		writeTerms(&b, p, p.Objective)
		b.WriteByte('\n')
	}
	for _, c := range p.Constraints {
		fmt.Fprintf(&b, "%s:", c.Name)
		writeTerms(&b, p, c.Terms)
		fmt.Fprintf(&b, " %s %s\n", c.Sense, c.RHS.RatString())
	}
	for _, v := range p.Vars {
		lo, hi := "-inf", "+inf"
		if v.Lower != nil {
			lo = v.Lower.RatString()
		}
		if v.Upper != nil {
			hi = v.Upper.RatString()
		}
		kind := "cont"
		if v.Integer {
			kind = "int"
		}
		fmt.Fprintf(&b, "%s in [%s, %s] %s\n", v.Name, lo, hi, kind)
	}
	return b.String()
}

func writeTerms(b *strings.Builder, p *Problem, terms []Term) {
	for _, t := range terms {
		fmt.Fprintf(b, " %s*%s", t.Coef.RatString(), p.Vars[t.Var].Name)
	}
}
