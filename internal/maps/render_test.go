package maps

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/traffic"
	"repro/internal/warehouse"
)

// TestRenderPaperMaps is the Fig. 4 / Fig. 5 analogue: the rendered maps
// must show component arrows, exits, obstacles (shelf blocks), and stations,
// with the raster dimensions of the generated grid.
func TestRenderPaperMaps(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func() (*Map, error)
	}{
		{"Fulfillment1_Fig4", Fulfillment1},
		{"SortingCenter_Fig5", SortingCenter},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			out := traffic.Render(m.S)
			for _, marker := range []string{"!", ">", "<", "^", "v", "#", "T"} {
				if !strings.Contains(out, marker) {
					t.Errorf("render missing %q", marker)
				}
			}
			lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
			if len(lines) != m.W.Graph.Height() {
				t.Errorf("render has %d rows, want %d", len(lines), m.W.Graph.Height())
			}
			if len(lines[0]) != m.W.Graph.Width() {
				t.Errorf("render row width %d, want %d", len(lines[0]), m.W.Graph.Width())
			}
			if strings.Count(out, "T") != len(m.W.Stations) {
				t.Errorf("render shows %d stations, want %d", strings.Count(out, "T"), len(m.W.Stations))
			}
		})
	}
}

// Property: random small parameterizations either fail fast with a clear
// error or produce a warehouse whose traffic system passed validation and
// whose stock covers every product.
func TestGenerateRandomParamsProperty(t *testing.T) {
	f := func(sRaw, rRaw, bRaw, vRaw uint8) bool {
		p := Params{
			Stripes:           1 + int(sRaw%3),
			Rows:              2 + int(rRaw%3),
			BayWidth:          4 + int(bRaw%10),
			CorridorWidth:     2 + int(vRaw%3),
			NumProducts:       3,
			UnitsPerShelf:     5,
			StationsPerStripe: 1,
			DoubleShelfRows:   bRaw%2 == 0,
		}
		m, err := Generate(p)
		if err != nil {
			// Some parameter combinations are legitimately infeasible (e.g.
			// station spacing); an error is an acceptable outcome, a panic
			// is not (quick.Check would catch it).
			return true
		}
		for k := 0; k < m.W.NumProducts; k++ {
			if m.W.TotalStock(warehouse.ProductID(k)) == 0 {
				return false
			}
		}
		// The system survived traffic.Build's Validate; spot-check a core
		// invariant anyway: every station is covered by a queue component.
		for _, st := range m.W.Stations {
			ci := m.S.ComponentAt(st)
			if ci < 0 || m.S.Components[ci].Kind != traffic.StationQueue {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
