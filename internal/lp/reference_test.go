package lp

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// This file keeps the SEED implementation of the exact LP path — a dense
// Bland's-rule two-phase simplex over big.Rat that emits one `x ≤ cap` row
// per finite upper bound, splits free variables, and starts every solve
// from an all-artificial basis — as a reference oracle. The cross-engine
// parity property tests below pin the rewritten bounded-variable engine
// (implicit bounds, Dantzig/Bland pricing, rat64 fast path, dual-simplex
// warm starts) to it: same status, same objective value, exactly.

// refColInfo records how a model variable maps into reference columns.
type refColInfo struct {
	pos   int
	neg   int
	shift *big.Rat
	fixed *big.Rat
}

type refState struct {
	m, n       int
	nStruct    int
	rows       [][]*big.Rat
	basis      []int
	cost       []*big.Rat
	hasObj     bool
	artStart   int
	cols       []refColInfo
	p          *Problem
	infeasible bool
}

// refSolveLP is the seed-style exact solver: standardize with explicit
// upper-bound rows, then two-phase Bland simplex.
func refSolveLP(p *Problem) (*Solution, error) {
	st := refStandardize(p)
	if st.infeasible {
		return &Solution{Status: StatusInfeasible}, nil
	}
	status := st.run()
	switch status {
	case StatusInfeasible, StatusUnbounded:
		return &Solution{Status: status}, nil
	}
	values := st.extract()
	sol := &Solution{Status: StatusOptimal, Values: values}
	if len(p.Objective) > 0 {
		obj := new(big.Rat)
		tmp := new(big.Rat)
		for _, t := range p.Objective {
			obj.Add(obj, tmp.Mul(t.Coef, values[t.Var]))
		}
		sol.Objective = obj
	}
	return sol, nil
}

func refStandardize(p *Problem) *refState {
	st := &refState{p: p}
	st.cols = make([]refColInfo, len(p.Vars))
	ncol := 0
	type upperRow struct {
		col int
		cap *big.Rat
	}
	var uppers []upperRow
	for i := range p.Vars {
		lo, hi := p.Vars[i].Lower, p.Vars[i].Upper
		if lo != nil && hi != nil {
			switch lo.Cmp(hi) {
			case 1:
				st.infeasible = true
				return st
			case 0:
				st.cols[i] = refColInfo{pos: -1, neg: -1, fixed: lo}
				continue
			}
		}
		if lo != nil {
			st.cols[i] = refColInfo{pos: ncol, neg: -1, shift: lo}
			if hi != nil {
				uppers = append(uppers, upperRow{ncol, new(big.Rat).Sub(hi, lo)})
			}
			ncol++
			continue
		}
		st.cols[i] = refColInfo{pos: ncol, neg: ncol + 1}
		ncol += 2
	}
	st.nStruct = ncol

	type rawRow struct {
		coef  map[int]*big.Rat
		sense Sense
		rhs   *big.Rat
	}
	var raws []rawRow
	for ci := range p.Constraints {
		c := &p.Constraints[ci]
		rhs := new(big.Rat).Set(c.RHS)
		coef := map[int]*big.Rat{}
		addCoef := func(col int, v *big.Rat) {
			if prev, ok := coef[col]; ok {
				prev.Add(prev, v)
			} else {
				coef[col] = new(big.Rat).Set(v)
			}
		}
		for _, t := range c.Terms {
			info := st.cols[t.Var]
			if info.fixed != nil {
				rhs.Sub(rhs, new(big.Rat).Mul(t.Coef, info.fixed))
				continue
			}
			if info.shift != nil {
				rhs.Sub(rhs, new(big.Rat).Mul(t.Coef, info.shift))
			}
			addCoef(info.pos, t.Coef)
			if info.neg >= 0 {
				addCoef(info.neg, new(big.Rat).Neg(t.Coef))
			}
		}
		raws = append(raws, rawRow{coef, c.Sense, rhs})
	}
	one := big.NewRat(1, 1)
	for _, u := range uppers {
		raws = append(raws, rawRow{map[int]*big.Rat{u.col: new(big.Rat).Set(one)}, LE, u.cap})
	}
	for i := range p.Vars {
		info := st.cols[i]
		if info.neg < 0 || info.fixed != nil {
			continue
		}
		if hi := p.Vars[i].Upper; hi != nil {
			raws = append(raws, rawRow{
				map[int]*big.Rat{info.pos: new(big.Rat).Set(one), info.neg: big.NewRat(-1, 1)},
				LE, new(big.Rat).Set(hi),
			})
		}
	}

	st.m = len(raws)
	nSlack := 0
	for _, r := range raws {
		if r.sense != EQ {
			nSlack++
		}
	}
	st.artStart = st.nStruct + nSlack
	st.n = st.artStart + st.m

	st.rows = make([][]*big.Rat, st.m)
	st.basis = make([]int, st.m)
	slackCol := st.nStruct
	for ri, raw := range raws {
		row := make([]*big.Rat, st.n+1)
		for j := range row {
			row[j] = new(big.Rat)
		}
		negate := raw.rhs.Sign() < 0
		for col, v := range raw.coef {
			if negate {
				row[col].Neg(v)
			} else {
				row[col].Set(v)
			}
		}
		rhs := new(big.Rat).Set(raw.rhs)
		sense := raw.sense
		if negate {
			rhs.Neg(rhs)
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		row[st.n].Set(rhs)
		switch sense {
		case LE:
			row[slackCol].SetInt64(1)
			slackCol++
		case GE:
			row[slackCol].SetInt64(-1)
			slackCol++
		}
		art := st.artStart + ri
		row[art].SetInt64(1)
		st.basis[ri] = art
		st.rows[ri] = row
	}

	st.cost = make([]*big.Rat, st.n)
	for j := range st.cost {
		st.cost[j] = new(big.Rat)
	}
	if len(p.Objective) > 0 {
		st.hasObj = true
		for _, t := range p.Objective {
			coef := new(big.Rat).Set(t.Coef)
			if p.Maximize {
				coef.Neg(coef)
			}
			info := st.cols[t.Var]
			if info.fixed != nil {
				continue
			}
			st.cost[info.pos].Add(st.cost[info.pos], coef)
			if info.neg >= 0 {
				st.cost[info.neg].Sub(st.cost[info.neg], coef)
			}
		}
	}
	return st
}

func (st *refState) run() Status {
	objRow := make([]*big.Rat, st.n+1)
	for j := 0; j <= st.n; j++ {
		s := new(big.Rat)
		for i := 0; i < st.m; i++ {
			s.Add(s, st.rows[i][j])
		}
		objRow[j] = s
	}
	for j := st.artStart; j < st.n; j++ {
		objRow[j] = new(big.Rat)
	}
	if !st.pivotLoop(objRow, st.artStart) {
		return StatusInfeasible
	}
	if objRow[st.n].Sign() != 0 {
		return StatusInfeasible
	}
	for i := 0; i < st.m; i++ {
		if st.basis[i] < st.artStart {
			continue
		}
		for j := 0; j < st.artStart; j++ {
			if st.rows[i][j].Sign() != 0 {
				st.pivot(i, j, nil)
				break
			}
		}
	}
	if !st.hasObj {
		return StatusOptimal
	}
	objRow2 := make([]*big.Rat, st.n+1)
	for j := range objRow2 {
		objRow2[j] = new(big.Rat)
		if j < st.n {
			objRow2[j].Set(st.cost[j])
		}
	}
	for i := 0; i < st.m; i++ {
		cb := new(big.Rat)
		if st.basis[i] < st.n {
			cb.Set(st.cost[st.basis[i]])
		}
		if cb.Sign() == 0 {
			continue
		}
		tmp := new(big.Rat)
		for j := 0; j <= st.n; j++ {
			objRow2[j].Sub(objRow2[j], tmp.Mul(cb, st.rows[i][j]))
		}
	}
	for j := 0; j <= st.n; j++ {
		objRow2[j].Neg(objRow2[j])
	}
	if !st.pivotLoop(objRow2, st.artStart) {
		return StatusUnbounded
	}
	return StatusOptimal
}

func (st *refState) pivotLoop(objRow []*big.Rat, colLimit int) bool {
	for {
		enter := -1
		for j := 0; j < colLimit; j++ {
			if objRow[j].Sign() > 0 {
				enter = j
				break
			}
		}
		if enter < 0 {
			return true
		}
		leave := -1
		best := new(big.Rat)
		ratio := new(big.Rat)
		for i := 0; i < st.m; i++ {
			a := st.rows[i][enter]
			if a.Sign() <= 0 {
				continue
			}
			ratio.Quo(st.rows[i][st.n], a)
			if leave < 0 {
				leave = i
				best.Set(ratio)
				continue
			}
			switch ratio.Cmp(best) {
			case -1:
				leave = i
				best.Set(ratio)
			case 0:
				if st.basis[i] < st.basis[leave] {
					leave = i
				}
			}
		}
		if leave < 0 {
			return false
		}
		st.pivot(leave, enter, objRow)
	}
}

func (st *refState) pivot(row, col int, objRow []*big.Rat) {
	pr := st.rows[row]
	inv := new(big.Rat).Inv(pr[col])
	for j := 0; j <= st.n; j++ {
		pr[j].Mul(pr[j], inv)
	}
	tmp := new(big.Rat)
	for i := 0; i < st.m; i++ {
		if i == row {
			continue
		}
		f := new(big.Rat).Set(st.rows[i][col])
		if f.Sign() == 0 {
			continue
		}
		ri := st.rows[i]
		for j := 0; j <= st.n; j++ {
			ri[j].Sub(ri[j], tmp.Mul(f, pr[j]))
		}
	}
	if objRow != nil {
		f := new(big.Rat).Set(objRow[col])
		if f.Sign() != 0 {
			for j := 0; j <= st.n; j++ {
				objRow[j].Sub(objRow[j], tmp.Mul(f, pr[j]))
			}
		}
	}
	st.basis[row] = col
}

func (st *refState) extract() []*big.Rat {
	colVal := make([]*big.Rat, st.n)
	for j := range colVal {
		colVal[j] = new(big.Rat)
	}
	for i := 0; i < st.m; i++ {
		if st.basis[i] < st.n {
			colVal[st.basis[i]].Set(st.rows[i][st.n])
		}
	}
	out := make([]*big.Rat, len(st.p.Vars))
	for i := range st.p.Vars {
		info := st.cols[i]
		if info.fixed != nil {
			out[i] = new(big.Rat).Set(info.fixed)
			continue
		}
		v := new(big.Rat).Set(colVal[info.pos])
		if info.neg >= 0 {
			v.Sub(v, colVal[info.neg])
		}
		if info.shift != nil {
			v.Add(v, info.shift)
		}
		out[i] = v
	}
	return out
}

// randomBoundedProblem builds a random LP/ILP with a mix of bound shapes:
// finite boxes, one-sided bounds, fixed and free variables, all three
// constraint senses, and an optional objective.
func randomBoundedProblem(rng *rand.Rand, integer bool) *Problem {
	p := &Problem{}
	nVars := 2 + rng.Intn(4)
	for i := 0; i < nVars; i++ {
		var lo, hi *big.Rat
		switch rng.Intn(5) {
		case 0: // box
			l := int64(rng.Intn(7) - 3)
			lo, hi = big.NewRat(l, 1), big.NewRat(l+int64(rng.Intn(6)), 1)
		case 1: // lower only
			lo = big.NewRat(int64(rng.Intn(5)-2), 1)
		case 2: // upper only
			hi = big.NewRat(int64(rng.Intn(7)), 1)
		case 3: // fixed
			v := big.NewRat(int64(rng.Intn(5)-1), 1)
			lo, hi = v, v
		case 4: // free
		}
		if integer {
			// Integer search needs a bounded box to terminate.
			if lo == nil {
				lo = big.NewRat(int64(-2-rng.Intn(3)), 1)
			}
			if hi == nil {
				hi = new(big.Rat).Add(lo, big.NewRat(int64(rng.Intn(6)), 1))
			}
			p.AddIntVar("x", lo, hi)
		} else {
			p.AddVar("x", lo, hi)
		}
	}
	nCons := 1 + rng.Intn(4)
	for c := 0; c < nCons; c++ {
		var terms []Term
		for i := 0; i < nVars; i++ {
			coef := int64(rng.Intn(9) - 4)
			if coef != 0 {
				terms = append(terms, T(VarID(i), coef))
			}
		}
		if len(terms) == 0 {
			terms = append(terms, T(0, 1))
		}
		sense := []Sense{LE, GE, EQ}[rng.Intn(3)]
		p.AddConstraint("c", terms, sense, big.NewRat(int64(rng.Intn(17)-6), 1))
	}
	if rng.Intn(4) > 0 {
		var obj []Term
		for i := 0; i < nVars; i++ {
			if coef := int64(rng.Intn(7) - 3); coef != 0 {
				obj = append(obj, T(VarID(i), coef))
			}
		}
		if len(obj) > 0 {
			p.SetObjective(obj, rng.Intn(2) == 0)
		}
	}
	return p
}

// Property: on random bounded LPs the rewritten exact engine agrees with
// the seed-style Bland reference — same status and, when optimal, the same
// exact objective value — and any solution it returns satisfies every
// constraint and bound.
func TestSolveLPParityWithReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomBoundedProblem(rng, false)
		got, err := SolveLP(p)
		if err != nil {
			return false
		}
		want, err := refSolveLP(p)
		if err != nil {
			return false
		}
		if got.Status != want.Status {
			t.Logf("seed %d: status %v, reference %v\n%s", seed, got.Status, want.Status, p)
			return false
		}
		if got.Status != StatusOptimal {
			return true
		}
		if len(p.Objective) > 0 && got.Objective.Cmp(want.Objective) != 0 {
			t.Logf("seed %d: objective %s, reference %s\n%s", seed, got.Objective, want.Objective, p)
			return false
		}
		// The optimal vertex need not be unique, but the returned point
		// must be feasible (ignoring integrality markers, which SolveLP
		// does not enforce).
		relaxed := *p
		relaxed.Vars = append([]Var(nil), p.Vars...)
		for i := range relaxed.Vars {
			relaxed.Vars[i].Integer = false
		}
		return relaxed.Check(got.Values) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: on random bounded ILPs, EngineExact (new pivoting/bounds
// machinery plus warm-started branch and bound) agrees with the seed-style
// reference relaxation driven through the same branch-and-bound, and with
// EngineFloat-with-exact-verify whenever the float engine reaches a
// verdict. Solutions must pass the exact Check.
func TestSolveILPCrossEngineParity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomBoundedProblem(rng, true)
		exact, err := SolveILP(p, ILPOptions{Engine: EngineExact})
		if err != nil {
			return false
		}
		if exact.Status == StatusOptimal && p.Check(exact.Values) != nil {
			t.Logf("seed %d: exact solution fails Check\n%s", seed, p)
			return false
		}
		// Reference verdict: brute-force the integer box using the seed
		// reference solver's feasibility machinery via Check on all corners
		// is exponential; instead compare the LP relaxation bound — the
		// reference relaxation must agree in status, and for optimization
		// problems the exact ILP optimum must respect the reference
		// relaxation bound.
		relax, err := refSolveLP(p)
		if err != nil {
			return false
		}
		if relax.Status == StatusInfeasible && exact.Status != StatusInfeasible {
			t.Logf("seed %d: relaxation infeasible but ILP %v\n%s", seed, exact.Status, p)
			return false
		}
		if exact.Status == StatusOptimal && relax.Status == StatusOptimal && len(p.Objective) > 0 {
			// maximization: ILP ≤ LP bound; minimization: ILP ≥ LP bound.
			if p.Maximize && exact.Objective.Cmp(relax.Objective) > 0 {
				return false
			}
			if !p.Maximize && exact.Objective.Cmp(relax.Objective) < 0 {
				return false
			}
		}
		// Cross-engine: float with exact verification of its incumbent.
		fl, err := SolveILP(p, ILPOptions{Engine: EngineFloat})
		if err != nil {
			return false
		}
		switch fl.Status {
		case StatusOptimal:
			if p.Check(fl.Values) != nil {
				t.Logf("seed %d: float solution fails exact Check\n%s", seed, p)
				return false
			}
			if exact.Status != StatusOptimal {
				t.Logf("seed %d: float optimal but exact %v\n%s", seed, exact.Status, p)
				return false
			}
			if len(p.Objective) > 0 && exact.Objective.Cmp(fl.Objective) != 0 {
				t.Logf("seed %d: exact obj %s, float obj %s\n%s", seed, exact.Objective, fl.Objective, p)
				return false
			}
		case StatusInfeasible:
			// Float may (rarely) misreport feasible systems as infeasible
			// due to rounding; the exact engine is the authority, so no
			// assertion in this direction.
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestRat64Promotion forces the int64 fast path to overflow (coefficients
// near 2^62 whose tableau products exceed int64) and checks the solve still
// returns the exact answer via transparent big.Rat promotion.
func TestRat64Promotion(t *testing.T) {
	p := &Problem{}
	huge := new(big.Rat).SetInt64(1 << 62)
	x := p.AddVar("x", big.NewRat(0, 1), nil)
	y := p.AddVar("y", big.NewRat(0, 1), nil)
	p.AddConstraint("c1", []Term{{x, huge}, {y, big.NewRat(3, 1)}}, LE, new(big.Rat).Mul(huge, big.NewRat(5, 1)))
	p.AddConstraint("c2", []Term{{x, big.NewRat(1, 1)}, {y, huge}}, LE, huge)
	p.SetObjective([]Term{T(x, 1), T(y, 1)}, true)
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	ref, err := refSolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective.Cmp(ref.Objective) != 0 {
		t.Errorf("objective = %s, reference %s", sol.Objective, ref.Objective)
	}
}
