// Topology co-design exploration: sweep the warehouse design space
// (corridor width, component length cap, stripe count) and measure how each
// design trades agents, makespan, and synthesis effort on a fixed workload —
// the "co-design" loop the paper's title promises.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/maps"
	"repro/internal/traffic"
	"repro/internal/workload"
)

func main() {
	const T = 3600
	const units = 480

	type design struct {
		name string
		p    maps.Params
	}
	base := maps.Params{
		Stripes: 4, Rows: 3, BayWidth: 12, CorridorWidth: 3,
		MaxComponentLen: 7, DoubleShelfRows: true,
		NumProducts: 48, UnitsPerShelf: 30, StationsPerStripe: 1,
	}
	designs := []design{
		{"baseline V=3 L=7", base},
		{"narrow corridors V=2", with(base, func(p *maps.Params) { p.CorridorWidth = 2; p.MaxComponentLen = 6 })},
		{"long components L=12", with(base, func(p *maps.Params) { p.MaxComponentLen = 12 })},
		{"two wide stripes", with(base, func(p *maps.Params) { p.Stripes = 2; p.BayWidth = 24 })},
		{"eight thin stripes", with(base, func(p *maps.Params) { p.Stripes = 8; p.BayWidth = 6 })},
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Design\tComponents\ttc\tAgents\tCycles\tServiced@\tSynthesis")
	for _, d := range designs {
		m, err := maps.Generate(d.p)
		if err != nil {
			fmt.Fprintf(tw, "%s\t-\t-\t-\t-\t-\tgenerate: %v\n", d.name, err)
			continue
		}
		wl, err := workload.Uniform(m.W, units)
		if err != nil {
			log.Fatal(err)
		}
		st := traffic.Summarize(m.S)
		res, err := core.Solve(m.S, wl, T, core.Options{})
		if err != nil {
			fmt.Fprintf(tw, "%s\t%d\t%d\t-\t-\t-\tsolve: %v\n", d.name, st.Components, st.CycleTime, err)
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%v\n",
			d.name, st.Components, st.CycleTime,
			res.Stats.Agents, len(res.CycleSet.Cycles), res.Sim.ServicedAt, res.Timing.Synthesis)
	}
	tw.Flush()
	fmt.Println("\nLower tc (shorter components) buys more cycle periods; wider corridors")
	fmt.Println("buy concurrent cycles. The best design balances both against agent count.")
}

func with(p maps.Params, f func(*maps.Params)) maps.Params {
	f(&p)
	return p
}
