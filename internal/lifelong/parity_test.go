package lifelong

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/lp"
	"repro/internal/testmaps"
	"repro/internal/traffic"
	"repro/internal/warehouse"
)

// seedRun is the pre-engine monolithic Run loop, copied verbatim from the
// last commit before the event-driven refactor. The parity corpus below
// proves the engine path returns a bit-identical Report (and identical
// error strings) on randomized batch schedules, including canceled and
// budget-exhausted runs. Do not "fix" this copy — it IS the spec.
func seedRun(ctx context.Context, s *traffic.System, batches []Batch, T int, opts Options) (*Report, error) {
	w := s.W
	p := w.NumProducts
	sorted := append([]Batch(nil), batches...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Release < sorted[b].Release })
	for i, b := range sorted {
		if len(b.Units) != p {
			return nil, fmt.Errorf("lifelong: batch %d has %d demands for %d products", i, len(b.Units), p)
		}
		if b.Release < 0 || b.Release >= T {
			return nil, fmt.Errorf("lifelong: batch %d released at %d outside [0, %d)", i, b.Release, T)
		}
	}

	rep := &Report{Delivered: make([]int, p)}
	rep.Batches = make([]BatchStats, len(sorted))
	for i, b := range sorted {
		total := 0
		for _, u := range b.Units {
			total += u
		}
		rep.Batches[i] = BatchStats{Release: b.Release, Completed: -1, Units: total}
	}

	outstanding := make([]int, p)
	remaining := make([][]int, len(sorted))
	for i, b := range sorted {
		remaining[i] = append([]int(nil), b.Units...)
	}
	stock := make([][]int, p)
	for k := 0; k < p; k++ {
		stock[k] = append([]int(nil), w.Stock[k]...)
	}
	paths := make([][]grid.VertexID, len(s.Components))
	for i, c := range s.Components {
		paths[i] = c.Cells
	}
	sc := &core.Scratch{}

	now := 0
	next := 0
	for next < len(sorted) || sumPos(outstanding) > 0 {
		for next < len(sorted) && sorted[next].Release <= now {
			for k, u := range sorted[next].Units {
				outstanding[k] += u
			}
			next++
		}
		if sumPos(outstanding) == 0 {
			if next >= len(sorted) {
				break
			}
			now = sorted[next].Release
			continue
		}
		horizon := T - now
		if next < len(sorted) && sorted[next].Release-now < horizon {
			horizon = sorted[next].Release - now
		}
		horizon -= s.CycleTime()
		if horizon < s.CycleTime() {
			if next < len(sorted) {
				now = sorted[next].Release
				continue
			}
			return rep, fmt.Errorf("lifelong: %d units outstanding with no time left", sumPos(outstanding))
		}
		we, err := warehouse.New(w.Graph, w.ShelfAccess, w.Stations, p, stock)
		if err != nil {
			return rep, err
		}
		se, err := traffic.Build(we, paths)
		if err != nil {
			return rep, err
		}
		wl, err := warehouse.NewWorkload(we, clampByStock(we, outstanding))
		if err != nil {
			return rep, err
		}
		res, err := core.SolveScratch(ctx, se, wl, horizon, opts.Core, sc)
		if err != nil {
			if errors.Is(err, lp.ErrCanceled) {
				return rep, fmt.Errorf("lifelong: run canceled in epoch at t=%d: %w", now, err)
			}
			half := halve(wl.Units)
			wl2, err2 := warehouse.NewWorkload(we, half)
			if err2 != nil {
				return rep, err
			}
			res, err = core.SolveScratch(ctx, se, wl2, horizon, opts.Core, sc)
			if err != nil {
				return rep, fmt.Errorf("lifelong: epoch at t=%d failed: %w", now, err)
			}
			wl = wl2
		}
		rep.Epochs++
		if res.Stats.Agents > rep.PeakAgents {
			rep.PeakAgents = res.Stats.Agents
		}
		for k := 0; k < p; k++ {
			delivered := res.Sim.Delivered[k]
			if delivered > outstanding[k] {
				delivered = outstanding[k]
			}
			outstanding[k] -= delivered
			rep.Delivered[k] += delivered
			deplete(stock[k], delivered)
			for bi := range remaining {
				if delivered == 0 {
					break
				}
				take := remaining[bi][k]
				if take > delivered {
					take = delivered
				}
				remaining[bi][k] -= take
				delivered -= take
			}
		}
		epochEnd := now + s.CycleTime() + res.Sim.ServicedAt
		rep.EpochLog = append(rep.EpochLog, EpochInfo{
			Start:      now,
			Horizon:    horizon,
			Changeover: s.CycleTime(),
			ServicedAt: res.Sim.ServicedAt,
			End:        epochEnd,
		})
		for bi := range remaining {
			if rep.Batches[bi].Completed < 0 && sumPos(remaining[bi]) == 0 && sorted[bi].Release <= now {
				rep.Batches[bi].Completed = epochEnd
			}
		}
		now = epochEnd
		if now >= T && (next < len(sorted) || sumPos(outstanding) > 0) {
			return rep, fmt.Errorf("lifelong: horizon exhausted with %d units outstanding", sumPos(outstanding))
		}
	}
	return rep, nil
}

// parityCase is one randomized schedule + solver config + context setup.
type parityCase struct {
	name    string
	batches []Batch
	T       int
	opts    Options
	ctx     context.Context
}

// parityCorpus builds randomized batch schedules with distinct release
// times (the seed's documented precondition — same-release merging is new
// engine behavior, deliberately outside the parity surface) and crosses
// them with solver configs that exercise the success, canceled, and
// budget-exhausted paths. Release times and demand stay within what the
// ring map services comfortably, so the seed's any-error retry and the
// engine's classified retry never diverge on these runs.
func parityCorpus(t *testing.T) []parityCase {
	t.Helper()
	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	rng := rand.New(rand.NewSource(9))
	var cases []parityCase
	for i := 0; i < 10; i++ {
		T := 3600 + 1200*rng.Intn(3)
		nb := 1 + rng.Intn(3)
		// Distinct releases on a 600-step grid, always including t=0.
		slots := rng.Perm(5)
		releases := []int{0}
		for _, s := range slots[:nb-1] {
			releases = append(releases, 600*(s+1))
		}
		sort.Ints(releases)
		var batches []Batch
		for _, r := range releases {
			batches = append(batches, Batch{
				Release: r,
				Units:   []int{rng.Intn(7), rng.Intn(7)},
			})
		}
		cases = append(cases,
			parityCase{
				name:    fmt.Sprintf("case%d/route", i),
				batches: batches, T: T,
				opts: Options{Core: core.Options{Strategy: core.RoutePacking}},
				ctx:  context.Background(),
			},
			parityCase{
				name:    fmt.Sprintf("case%d/contract", i),
				batches: batches, T: T,
				opts: Options{Core: core.Options{Strategy: core.ContractILP}},
				ctx:  context.Background(),
			},
			parityCase{
				name:    fmt.Sprintf("case%d/canceled", i),
				batches: batches, T: T,
				opts: Options{Core: core.Options{Strategy: core.RoutePacking}},
				ctx:  canceled,
			},
		)
		// Budget exhaustion: a work budget far below one contract solve
		// forces lp.ErrBudgetExhausted deterministically; both paths retry
		// with a halved workload, fail again, and must agree on the final
		// "epoch failed" error string and the (empty) partial report.
		if i%3 == 0 {
			cases = append(cases, parityCase{
				name:    fmt.Sprintf("case%d/exhausted", i),
				batches: batches, T: T,
				opts: Options{Core: core.Options{Strategy: core.ContractILP, MaxWork: 50}},
				ctx:  context.Background(),
			})
		}
	}
	return cases
}

func TestEngineParityWithSeed(t *testing.T) {
	_, s := testmaps.MustRing()
	for _, tc := range parityCorpus(t) {
		t.Run(tc.name, func(t *testing.T) {
			wantRep, wantErr := seedRun(tc.ctx, s, tc.batches, tc.T, tc.opts)
			gotRep, gotErr := Run(tc.ctx, s, tc.batches, tc.T, tc.opts)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("error mismatch: seed=%v engine=%v", wantErr, gotErr)
			}
			if wantErr != nil && wantErr.Error() != gotErr.Error() {
				t.Fatalf("error string mismatch:\nseed:   %q\nengine: %q", wantErr, gotErr)
			}
			if !reflect.DeepEqual(wantRep, gotRep) {
				t.Fatalf("report mismatch:\nseed:   %+v\nengine: %+v", wantRep, gotRep)
			}
		})
	}
}

// TestEngineParityValidation pins the pre-run validation errors to the
// seed's exact strings (and nil reports).
func TestEngineParityValidation(t *testing.T) {
	_, s := testmaps.MustRing()
	for _, batches := range [][]Batch{
		{{Release: 0, Units: []int{1}}},
		{{Release: -5, Units: []int{1, 1}}},
		{{Release: 2400, Units: []int{1, 1}}},
	} {
		wantRep, wantErr := seedRun(context.Background(), s, batches, 2400, Options{})
		gotRep, gotErr := Run(context.Background(), s, batches, 2400, Options{})
		if wantRep != nil || gotRep != nil {
			t.Errorf("validation failure should return nil reports, got seed=%v engine=%v", wantRep, gotRep)
		}
		if wantErr == nil || gotErr == nil || wantErr.Error() != gotErr.Error() {
			t.Errorf("error mismatch: seed=%v engine=%v", wantErr, gotErr)
		}
	}
}
