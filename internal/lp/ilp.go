package lp

import (
	"fmt"
	"math/big"
)

// Engine selects the arithmetic the branch-and-bound relaxations use.
type Engine int

// Available engines.
const (
	// EngineExact uses the rational simplex for every relaxation. Complete
	// and exact, but slow on large problems.
	EngineExact Engine = iota
	// EngineFloat uses the float64 simplex for relaxations and verifies the
	// final incumbent exactly with Problem.Check. Fast; an (unlikely)
	// spurious float infeasibility can prune a feasible subtree, so a
	// StatusInfeasible answer from this engine is "almost certainly
	// infeasible" rather than a proof.
	EngineFloat
)

// ILPOptions tunes SolveILP.
type ILPOptions struct {
	Engine Engine
	// MaxNodes bounds the branch-and-bound search tree; 0 means the default
	// (200000). When exhausted the solver returns StatusLimit (or the best
	// incumbent found so far, if any).
	MaxNodes int
}

// SolveILP solves the mixed-integer program p by branch and bound over the
// simplex relaxation. For pure feasibility problems (no objective) it stops
// at the first integral solution. Every returned solution is exactly
// verified against p with rational arithmetic.
func SolveILP(p *Problem, opts ILPOptions) (*Solution, error) {
	maxNodes := opts.MaxNodes
	if maxNodes == 0 {
		maxNodes = 200000
	}
	relax := func(lo, hi []*big.Rat) (*Solution, error) {
		if opts.Engine == EngineFloat {
			return solveWith[float64](p, floatArith{eps: defaultEps}, lo, hi)
		}
		return solveWith[*big.Rat](p, ratArith{}, lo, hi)
	}

	type node struct {
		lo, hi []*big.Rat
	}
	n := len(p.Vars)
	stack := []node{{make([]*big.Rat, n), make([]*big.Rat, n)}}
	var best *Solution
	var bestObj *big.Rat
	nodes := 0
	hitLimit := false

	better := func(obj *big.Rat) bool {
		if bestObj == nil {
			return true
		}
		if p.Maximize {
			return obj.Cmp(bestObj) > 0
		}
		return obj.Cmp(bestObj) < 0
	}

	for len(stack) > 0 {
		if nodes >= maxNodes {
			hitLimit = true
			break
		}
		nodes++
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		sol, err := relax(nd.lo, nd.hi)
		if err != nil {
			return nil, err
		}
		switch sol.Status {
		case StatusInfeasible:
			continue
		case StatusUnbounded:
			// An unbounded relaxation at the root of a minimization with no
			// integrality cuts to help: report unbounded.
			return &Solution{Status: StatusUnbounded}, nil
		}
		// Bound: prune if the relaxation cannot beat the incumbent.
		if best != nil && sol.Objective != nil && !betterOrEqual(p, sol.Objective, bestObj) {
			continue
		}
		// Find a fractional integer variable to branch on.
		branch := -1
		for i, v := range p.Vars {
			if v.Integer && !sol.Values[i].IsInt() {
				branch = i
				break
			}
		}
		if branch < 0 {
			// Integral (by the relaxation's lights): round and verify exactly.
			vals := roundIntegers(p, sol.Values)
			if err := p.Check(vals); err != nil {
				// Float noise produced a bogus candidate; branch on the
				// variable with the largest rounding error to make progress.
				branch = worstRounded(p, sol.Values)
				if branch < 0 {
					continue // nothing to branch on; abandon this node
				}
			} else {
				cand := &Solution{Status: StatusOptimal, Values: vals}
				if len(p.Objective) > 0 {
					cand.Objective = evalObjective(p, vals)
					if better(cand.Objective) {
						best, bestObj = cand, cand.Objective
					}
					continue
				}
				return cand, nil // feasibility problem: first solution wins
			}
		}
		// Branch on floor/ceil of the fractional value.
		v := sol.Values[branch]
		fl := ratFloor(v)
		lo1 := cloneBounds(nd.lo)
		hi1 := cloneBounds(nd.hi)
		hi1[branch] = fl
		lo2 := cloneBounds(nd.lo)
		hi2 := cloneBounds(nd.hi)
		lo2[branch] = new(big.Rat).Add(fl, big.NewRat(1, 1))
		// Explore the floor side first (LIFO: push ceil first).
		stack = append(stack, node{lo2, hi2}, node{lo1, hi1})
	}

	if best != nil {
		return best, nil
	}
	if hitLimit {
		return &Solution{Status: StatusLimit}, nil
	}
	return &Solution{Status: StatusInfeasible}, nil
}

func betterOrEqual(p *Problem, obj, best *big.Rat) bool {
	if p.Maximize {
		return obj.Cmp(best) > 0
	}
	return obj.Cmp(best) < 0
}

func evalObjective(p *Problem, vals []*big.Rat) *big.Rat {
	obj := new(big.Rat)
	tmp := new(big.Rat)
	for _, t := range p.Objective {
		obj.Add(obj, tmp.Mul(t.Coef, vals[t.Var]))
	}
	return obj
}

// roundIntegers snaps integer variables to the nearest integer (they are
// integral or within float tolerance of it) and leaves continuous values.
func roundIntegers(p *Problem, vals []*big.Rat) []*big.Rat {
	out := make([]*big.Rat, len(vals))
	for i, v := range vals {
		if p.Vars[i].Integer && !v.IsInt() {
			out[i] = ratRound(v)
		} else {
			out[i] = new(big.Rat).Set(v)
		}
	}
	return out
}

// worstRounded returns the integer variable farthest from integrality, or -1
// if all integer variables are integral.
func worstRounded(p *Problem, vals []*big.Rat) int {
	worst, worstDist := -1, new(big.Rat)
	for i, v := range vals {
		if !p.Vars[i].Integer || v.IsInt() {
			continue
		}
		d := new(big.Rat).Sub(v, ratRound(v))
		d.Abs(d)
		if worst < 0 || d.Cmp(worstDist) > 0 {
			worst, worstDist = i, d
		}
	}
	return worst
}

// ratFloor returns ⌊r⌋ as a rational.
func ratFloor(r *big.Rat) *big.Rat {
	q := new(big.Int).Quo(r.Num(), r.Denom())
	// big.Int.Quo truncates toward zero; adjust negatives with remainders.
	if r.Sign() < 0 && !r.IsInt() {
		q.Sub(q, big.NewInt(1))
	}
	return new(big.Rat).SetInt(q)
}

// ratRound returns the nearest integer to r (half away from zero).
func ratRound(r *big.Rat) *big.Rat {
	fl := ratFloor(r)
	frac := new(big.Rat).Sub(r, fl)
	if frac.Cmp(big.NewRat(1, 2)) >= 0 {
		return fl.Add(fl, big.NewRat(1, 1))
	}
	return fl
}

func cloneBounds(b []*big.Rat) []*big.Rat {
	out := make([]*big.Rat, len(b))
	copy(out, b)
	return out
}

// MustInt converts a rational known to be integral into an int.
func MustInt(r *big.Rat) int {
	if !r.IsInt() {
		panic(fmt.Sprintf("lp: %s is not integral", r))
	}
	return int(r.Num().Int64())
}
