package grid

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseMovingAI reads a map in the MovingAI benchmark format used across
// the MAPF literature:
//
//	type octile
//	height 3
//	width 5
//	map
//	.....
//	..@..
//	.....
//
// Passable terrain: '.', 'G', 'S'. Obstacles: '@', 'O', 'T', 'W'. The first
// map row is treated as the north edge, matching Parse.
func ParseMovingAI(text string) (*Grid, error) {
	lines := strings.Split(strings.ReplaceAll(text, "\r\n", "\n"), "\n")
	height, width := -1, -1
	mapStart := -1
	for i, line := range lines {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "type":
			// informational
		case "height":
			if len(fields) != 2 {
				return nil, fmt.Errorf("grid: malformed height line %q", line)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("grid: height: %w", err)
			}
			height = v
		case "width":
			if len(fields) != 2 {
				return nil, fmt.Errorf("grid: malformed width line %q", line)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("grid: width: %w", err)
			}
			width = v
		case "map":
			mapStart = i + 1
		}
		if mapStart >= 0 {
			break
		}
	}
	if height <= 0 || width <= 0 || mapStart < 0 {
		return nil, fmt.Errorf("grid: missing height/width/map header")
	}
	// The body must agree with the declared dimensions exactly: trailing
	// blank lines are tolerated (files end with a newline), but a body
	// with missing or extra rows — or rows longer than the declared width
	// — means the header lies about the file and silently trusting either
	// side would import a different warehouse than the file describes.
	body := lines[mapStart:]
	for len(body) > 0 && strings.TrimSpace(body[len(body)-1]) == "" {
		body = body[:len(body)-1]
	}
	if len(body) != height {
		return nil, fmt.Errorf("grid: map body has %d rows, want %d", len(body), height)
	}
	passable := make([][]bool, height)
	for row := 0; row < height; row++ {
		line := body[row]
		if len(line) != width {
			return nil, fmt.Errorf("grid: map row %d has %d cells, want %d", row, len(line), width)
		}
		y := height - 1 - row
		passable[y] = make([]bool, width)
		for x := 0; x < width; x++ {
			switch line[x] {
			case '.', 'G', 'S':
				passable[y][x] = true
			case '@', 'O', 'T', 'W':
				// impassable
			default:
				return nil, fmt.Errorf("grid: unknown terrain %q at row %d col %d", line[x], row, x)
			}
		}
	}
	return New(passable)
}
