package flow

import (
	"context"
	"testing"
	"testing/quick"

	"repro/internal/warehouse"
)

// Property: every workload the sequential synthesizer accepts yields a flow
// set that (a) passes the exact §IV-D constraint check and (b) satisfies
// the compiled contract system — the two validation paths must agree.
func TestSequentialAlwaysSatisfiesContracts(t *testing.T) {
	w, s := ringSystem(t)
	f := func(aRaw, bRaw uint8) bool {
		u0 := int(aRaw % 16)
		u1 := int(bRaw % 16)
		wl, err := warehouse.NewWorkload(w, []int{u0, u1})
		if err != nil {
			return false // stocks are 300 each; small demands always validate
		}
		set, err := SynthesizeSequential(context.Background(), s, wl, 800, Options{})
		if err != nil {
			// Feasibility depends on the ring's capacity; rejection is a
			// legal outcome, inconsistency below is not.
			return true
		}
		if errs := set.Check(wl); len(errs) > 0 {
			return false
		}
		return VerifyContracts(set, wl) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: the contract-ILP and sequential strategies agree on
// feasibility for small demands on the ring (both succeed or both fail).
func TestStrategiesAgreeOnRing(t *testing.T) {
	w, s := ringSystem(t)
	for _, units := range [][2]int{{0, 0}, {1, 0}, {3, 2}, {6, 6}} {
		wl, err := warehouse.NewWorkload(w, []int{units[0], units[1]})
		if err != nil {
			t.Fatal(err)
		}
		_, errSeq := SynthesizeSequential(context.Background(), s, wl, 800, Options{})
		_, errIlp := SynthesizeContract(context.Background(), s, wl, 800, Options{})
		if (errSeq == nil) != (errIlp == nil) {
			t.Errorf("units %v: sequential err=%v, contract err=%v", units, errSeq, errIlp)
		}
	}
}
