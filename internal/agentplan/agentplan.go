// Package agentplan realizes an agent cycle set as a discrete T-timestep
// plan, implementing the modular realization algorithm of §IV-C
// (Algorithm 1, COMPONENT_TIMESTEP).
//
// Every timestep, each component moves the agent nearest its exit across to
// the next component of that agent's cycle (at most once per cycle period)
// and shifts its remaining agents one cell toward the exit when the next
// cell was free at the start of the step. Because a follower may not enter a
// cell being vacated in the same step, gaps propagate one cell per timestep,
// which is why a cycle period of tc = 2m timesteps suffices to advance every
// agent one component (Property 4.1).
//
// Pickups and drop-offs follow the product-handling semantics of §III
// condition (3): the carried-product transition at t+1 is decided by the
// agent's position at t, so picking and dropping cost no timesteps.
package agentplan

import (
	"fmt"

	"repro/internal/cycles"
	"repro/internal/grid"
	"repro/internal/warehouse"
)

// Stats summarizes a realization.
type Stats struct {
	// Agents is the team size (one agent per cycle position).
	Agents int
	// Delivered counts units dropped at stations, per product.
	Delivered []int
	// Picks counts pickups.
	Picks int
	// ServicedAt is the first timestep by which the workload was fully
	// delivered, or -1 if the plan falls short.
	ServicedAt int
	// Moves counts cell transitions (a proxy for energy/congestion).
	Moves int
}

type agent struct {
	cycle   int // index into cs.Cycles
	pos     int // index into cycle.Components: the agent's current position
	vertex  grid.VertexID
	carried warehouse.ProductID
	dropPos int // leg DropIdx the agent is heading to, -1 when empty
	legIdx  int // leg being executed, -1 when empty

	advanceT int // timestep of the last component advancement
}

// Realize executes the cycle set for T timesteps and returns the plan
// (π, φ) together with realization statistics. The returned plan always
// spans exactly T timesteps; agents keep circulating after the workload is
// serviced.
func Realize(cs *cycles.Set, wl warehouse.Workload, T int) (*warehouse.Plan, Stats, error) {
	s := cs.S
	w := s.W
	tc := cs.Tc
	if T < 1 {
		return nil, Stats{}, fmt.Errorf("agentplan: horizon %d too short", T)
	}
	if tc < 2 {
		return nil, Stats{}, fmt.Errorf("agentplan: cycle time %d too short", tc)
	}

	// Property 4.1 preconditions.
	if errs := cs.Check(wl); len(errs) > 0 {
		return nil, Stats{}, fmt.Errorf("agentplan: invalid cycle set: %v", errs[0])
	}

	// Instantiate agents: one per cycle position, placed on distinct cells
	// of the position's component, filling from the exit backward.
	var agents []*agent
	nextFree := make([]int, s.NumComponents()) // cells used so far, from exit
	for ci, cyc := range cs.Cycles {
		for pos, comp := range cyc.Components {
			cells := s.Components[comp].Cells
			slot := len(cells) - 1 - nextFree[comp]
			if slot < 0 {
				return nil, Stats{}, fmt.Errorf("agentplan: component %d overfull at initialization", comp)
			}
			nextFree[comp]++
			a := &agent{
				cycle:    ci,
				pos:      pos,
				vertex:   cells[slot],
				carried:  warehouse.NoProduct,
				dropPos:  -1,
				legIdx:   -1,
				advanceT: -1,
			}
			agents = append(agents, a)
		}
	}

	// Mutable pick bookkeeping.
	legQuota := make([][]int, len(cs.Cycles))
	for ci, cyc := range cs.Cycles {
		legQuota[ci] = make([]int, len(cyc.Legs))
		for li, leg := range cyc.Legs {
			legQuota[ci][li] = leg.Quota
		}
	}
	// Dense mutable stock: shelf column x product, indexed col*|ρ|+k.
	p := w.NumProducts
	stock := grid.GetInt32(len(w.ShelfAccess) * p)
	defer grid.PutInt32(stock)
	for k := 0; k < p; k++ {
		row := w.Stock[k]
		if row == nil {
			continue
		}
		for l, units := range row {
			stock[l*p+k] = int32(units)
		}
	}

	plan := &warehouse.Plan{States: make([][]warehouse.AgentState, len(agents))}
	for i := range agents {
		plan.States[i] = make([]warehouse.AgentState, T)
		plan.States[i][0] = warehouse.AgentState{Vertex: agents[i].vertex, Carried: warehouse.NoProduct}
	}

	stats := Stats{
		Agents:     len(agents),
		Delivered:  make([]int, w.NumProducts),
		ServicedAt: -1,
	}
	serviced := func() bool {
		for k, want := range wl.Units {
			if stats.Delivered[k] < want {
				return false
			}
		}
		return true
	}
	if stats.ServicedAt < 0 && serviced() {
		stats.ServicedAt = 0
	}

	// Stamped occupancy arenas, pooled across runs. An entry is valid at the
	// current step iff its stamp equals the step's stamp, so no per-step
	// clearing or map allocation happens: occ* holds positions at time t,
	// new* the claims for t+1, entry* the per-component entry arbitration.
	nv := w.Graph.NumVertices()
	occVal := grid.GetInt32(nv)
	occStamp := grid.GetInt32(nv)
	newStamp := grid.GetInt32(nv)
	entryStamp := grid.GetInt32(s.NumComponents())
	defer grid.PutInt32(occVal)
	defer grid.PutInt32(occStamp)
	defer grid.PutInt32(newStamp)
	defer grid.PutInt32(entryStamp)

	for t := 0; t+1 < T; t++ {
		periodStart := (t / tc) * tc
		stamp := int32(t) + 1

		// Occupancy at time t, from the agents themselves.
		for ai, a := range agents {
			occVal[a.vertex] = int32(ai)
			occStamp[a.vertex] = stamp
		}

		// Phase 1: pick/drop decisions from positions at time t.
		for _, a := range agents {
			cyc := cs.Cycles[a.cycle]
			if a.carried == warehouse.NoProduct {
				col := w.ShelfColumn(a.vertex)
				if col < 0 {
					continue
				}
				for li := range cyc.Legs {
					leg := &cyc.Legs[li]
					if leg.PickIdx != a.pos || legQuota[a.cycle][li] <= 0 {
						continue
					}
					if stock[col*p+int(leg.Product)] <= 0 {
						continue
					}
					stock[col*p+int(leg.Product)]--
					legQuota[a.cycle][li]--
					a.carried = leg.Product
					a.dropPos = leg.DropIdx
					a.legIdx = li
					stats.Picks++
					break
				}
			} else if a.pos == a.dropPos && w.IsStation(a.vertex) {
				stats.Delivered[a.carried]++
				a.carried = warehouse.NoProduct
				a.dropPos = -1
				a.legIdx = -1
			}
		}

		// Phase 2: movement, component by component, members nearest the
		// exit first. Walking each component's cells from the exit backward
		// over the time-t occupancy yields exactly that order without the
		// per-step sort the map-based version needed.
		for compID := range s.Components {
			comp := s.Components[compID]
			cells := comp.Cells
			rank := 0
			for ci := len(cells) - 1; ci >= 0; ci-- {
				v := cells[ci]
				if occStamp[v] != stamp {
					continue
				}
				ai := int(occVal[v])
				a := agents[ai]
				advanced := false
				if rank == 0 && a.vertex == comp.Exit() && a.advanceT < periodStart {
					cyc := cs.Cycles[a.cycle]
					nextPos := (a.pos + 1) % len(cyc.Components)
					nextComp := cyc.Components[nextPos]
					entry := s.Components[nextComp].Entry()
					if entryStamp[nextComp] != stamp {
						if occStamp[entry] != stamp {
							entryStamp[nextComp] = stamp
							a.pos = nextPos
							a.vertex = entry
							a.advanceT = t + 1
							advanced = true
							stats.Moves++
						}
					}
				}
				if !advanced {
					// Internal shift toward the exit.
					next := s.NextCellAt(a.vertex)
					if next != grid.None {
						if occStamp[next] != stamp && newStamp[next] != stamp {
							a.vertex = next
							stats.Moves++
						}
					}
				}
				newStamp[a.vertex] = stamp
				rank++
			}
		}

		for ai, a := range agents {
			plan.States[ai][t+1] = warehouse.AgentState{Vertex: a.vertex, Carried: a.carried}
		}
		if stats.ServicedAt < 0 && serviced() {
			stats.ServicedAt = t + 1
		}
	}
	return plan, stats, nil
}
