package wsp

import (
	"context"
	"errors"
	"testing"
	"time"
)

// tinyMap generates the smallest contract-expressible topology (one
// stripe, two products) used across the facade tests.
func tinyMap(t *testing.T) *Map {
	t.Helper()
	m, err := GenerateMap(MapParams{
		Stripes: 1, Rows: 2, BayWidth: 12, CorridorWidth: 2,
		MaxComponentLen: 6, DoubleShelfRows: true,
		NumProducts: 2, UnitsPerShelf: 30, StationsPerStripe: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// midMap is a mid-size topology whose exact contract solve runs long
// enough to cancel into (and to exhaust default budgets).
func midMap(t *testing.T) *Map {
	t.Helper()
	m, err := GenerateMap(MapParams{
		Stripes: 2, Rows: 2, BayWidth: 12, CorridorWidth: 2,
		MaxComponentLen: 6, DoubleShelfRows: true,
		NumProducts: 8, UnitsPerShelf: 30, StationsPerStripe: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func tinyInstance(t *testing.T, m *Map, units, T int) Instance {
	t.Helper()
	wl, err := UniformWorkload(m.W, units)
	if err != nil {
		t.Fatal(err)
	}
	return Instance{System: m.S, Workload: wl, Horizon: T}
}

// TestSolveAndBatchAgree pins the facade's bit-identity surface: a batch
// of identical instances over the pool returns exactly what individual
// Solve calls return.
func TestSolveAndBatchAgree(t *testing.T) {
	m := tinyMap(t)
	inst := tinyInstance(t, m, 12, 800)
	solver := New(WithStrategy(ContractILP), WithExact(true), WithParallel(2))
	ctx := context.Background()

	want, err := solver.Solve(ctx, inst)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range solver.SolveBatch(ctx, []Instance{inst, inst, inst}) {
		if r.Err != nil {
			t.Fatalf("batch slot %d: %v", i, r.Err)
		}
		if r.Res.Sim.ServicedAt != want.Sim.ServicedAt || r.Res.Stats.Agents != want.Stats.Agents {
			t.Errorf("batch slot %d: (serviced %d, agents %d) differs from Solve (%d, %d)",
				i, r.Res.Sim.ServicedAt, r.Res.Stats.Agents, want.Sim.ServicedAt, want.Stats.Agents)
		}
	}
}

// TestErrorTaxonomy drives each sentinel of the public taxonomy through a
// real solve and classifies it with errors.Is/As — no string matching.
func TestErrorTaxonomy(t *testing.T) {
	ctx := context.Background()
	m := tinyMap(t)

	t.Run("horizon-too-short", func(t *testing.T) {
		solver := New(WithStrategy(ContractILP))
		_, err := solver.Solve(ctx, tinyInstance(t, m, 12, 5))
		if !errors.Is(err, ErrHorizonTooShort) {
			t.Fatalf("%v does not classify as ErrHorizonTooShort", err)
		}
	})

	t.Run("infeasible-with-certificate", func(t *testing.T) {
		// T=40 hosts at least one cycle period but the LP relaxation of
		// the contract conjunction is infeasible: the admission check
		// fails with the sound certificate attached.
		solver := New(WithStrategy(ContractILP), WithAdmissionCheck(true))
		_, err := solver.Solve(ctx, tinyInstance(t, m, 60, 40))
		if !errors.Is(err, ErrInfeasible) {
			t.Fatalf("%v does not classify as ErrInfeasible", err)
		}
		var ie *InfeasibleError
		if !errors.As(err, &ie) {
			t.Fatalf("%v does not expose *InfeasibleError", err)
		}
		if ie.Cert != CertInfeasible {
			t.Errorf("certificate %v, want CertInfeasible", ie.Cert)
		}
	})

	t.Run("infeasible-integral-search", func(t *testing.T) {
		// The same demand without the admission gate: the integral search
		// proves the conjunction unsatisfiable; the certificate records
		// that the relaxation was NOT the proof.
		solver := New(WithStrategy(ContractILP), WithMaxAttempts(1))
		_, err := solver.Solve(ctx, tinyInstance(t, m, 60, 40))
		if !errors.Is(err, ErrInfeasible) {
			t.Fatalf("%v does not classify as ErrInfeasible", err)
		}
		var ie *InfeasibleError
		if !errors.As(err, &ie) {
			t.Fatalf("%v does not expose *InfeasibleError", err)
		}
	})

	t.Run("budget-exhausted", func(t *testing.T) {
		mm := midMap(t)
		solver := New(WithStrategy(ContractILP), WithExact(true), WithMaxAttempts(1))
		_, err := solver.Solve(ctx, tinyInstance(t, mm, 120, 3600))
		if !errors.Is(err, ErrBudgetExhausted) {
			t.Fatalf("%v does not classify as ErrBudgetExhausted", err)
		}
	})

	t.Run("canceled-before-start", func(t *testing.T) {
		cctx, cancel := context.WithCancel(ctx)
		cancel()
		solver := New(WithStrategy(ContractILP), WithExact(true))
		_, err := solver.Solve(cctx, tinyInstance(t, m, 12, 800))
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("%v does not classify as ErrCanceled", err)
		}
	})
}

// TestSolveCanceledMidILP is the acceptance path: cancelling an exact ILP
// solve mid-branch-and-bound returns ErrCanceled promptly (the check rides
// the MaxWork accounting tick), and the same Solver — whose pooled scratch
// retains the compiled contract model the cancelled solve was using —
// serves the next solve normally.
func TestSolveCanceledMidILP(t *testing.T) {
	m := midMap(t)
	inst := tinyInstance(t, m, 120, 3600)
	// Budgets lifted far beyond the ~10^9 work units the instance consumes
	// before exhausting the DEFAULT budget (~200ms): uncancelled this
	// search grinds for a very long time, so a prompt return is the
	// cancellation path, not a finished solve.
	solver := New(WithStrategy(ContractILP), WithExact(true), WithMaxAttempts(1),
		WithWorkBudget(1<<50), WithNodeBudget(1<<30))

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := solver.Solve(ctx, inst)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("%v does not classify as ErrCanceled", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("cancelled solve did not return within 60s")
	}

	// The Solver (and its recycled scratch) must remain usable: a small
	// feasible instance on the tiny topology solves fine afterwards.
	tm := tinyMap(t)
	res, err := solver.Solve(context.Background(), tinyInstance(t, tm, 12, 800))
	if err != nil {
		t.Fatalf("solve after cancellation: %v", err)
	}
	if res.Sim.ServicedAt < 0 {
		t.Fatal("post-cancel solve returned an unserviced plan")
	}
}

// TestMinimalHorizonViaFacade smoke-tests the refinement entry point and
// its cancellation classification.
func TestMinimalHorizonViaFacade(t *testing.T) {
	m := tinyMap(t)
	inst := tinyInstance(t, m, 12, 800)
	solver := New(WithStrategy(ContractILP))
	hr, err := solver.MinimalHorizon(context.Background(), inst)
	if err != nil {
		t.Fatal(err)
	}
	if hr.T > inst.Horizon || hr.Result == nil {
		t.Fatalf("refined horizon %d invalid (initial %d)", hr.T, inst.Horizon)
	}
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := solver.MinimalHorizon(cctx, inst); !errors.Is(err, ErrCanceled) {
		t.Fatalf("%v does not classify as ErrCanceled", err)
	}
}

// TestSweepCanceledReturnsCompletedCells pins Sweep's partial-result
// contract: a cancelled walk returns the cells completed so far plus a
// classified error, never a truncated mystery.
func TestSweepCanceledReturnsCompletedCells(t *testing.T) {
	solver := New()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cells, err := solver.Sweep(ctx, SweepSpec{
		Corridors: []int{2}, Lens: []int{6},
		Stripes: 1, Products: 2, Units: 12, Points: 1, Horizon: 800,
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("%v does not classify as ErrCanceled", err)
	}
	if len(cells) != 0 {
		t.Fatalf("pre-cancelled sweep returned %d cells", len(cells))
	}
}

// TestConfigResolution pins the option → config mapping the facade
// documents.
func TestConfigResolution(t *testing.T) {
	s := New(
		WithStrategy(SequentialFlows),
		WithExact(true),
		WithSimplex(SimplexRevised),
		WithAdmissionCheck(true),
		WithSkipRealization(true),
		WithMaxAttempts(5),
		WithWorkBudget(123),
		WithNodeBudget(45),
		WithParallel(7),
	)
	got := s.Config()
	want := Config{
		Strategy: SequentialFlows, Exact: true, Simplex: SimplexRevised,
		AdmissionCheck: true, SkipRealization: true, MaxAttempts: 5,
		WorkBudget: 123, NodeBudget: 45, Parallel: 7,
	}
	if got != want {
		t.Fatalf("config %+v, want %+v", got, want)
	}
}
