package flow

import (
	"context"
	"testing"

	"repro/internal/testmaps"
	"repro/internal/traffic"
	"repro/internal/warehouse"
)

// TestEdgeIndexZeroAllocs guards the dense arc numbering: EdgeIndex is
// called inside synthesis inner loops and must stay a zero-allocation
// degree-bounded scan, never a map (or worse, a rebuilt index).
func TestEdgeIndexZeroAllocs(t *testing.T) {
	w, s := testmaps.MustRing()
	wl, err := warehouse.NewWorkload(w, []int{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	set, err := SynthesizeSequential(context.Background(), s, wl, 800, Options{})
	if err != nil {
		t.Fatal(err)
	}
	edges := set.Edges
	sink := 0
	got := testing.AllocsPerRun(100, func() {
		for _, e := range edges {
			sink += set.EdgeIndex(e[0], e[1])
		}
		sink += set.EdgeIndex(0, 0) // miss path
	})
	if got != 0 {
		t.Errorf("EdgeIndex allocated %v times per sweep, want 0", got)
	}
	if sink == 0 {
		t.Error("sweep accumulated nothing; fixture broken")
	}
}

// TestEnteringTotalZeroAllocs pins the in-edge-list rewrite of the per-
// component intake sum.
func TestEnteringTotalZeroAllocs(t *testing.T) {
	w, s := testmaps.MustRing()
	wl, err := warehouse.NewWorkload(w, []int{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	set, err := SynthesizeSequential(context.Background(), s, wl, 800, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sink := 0
	got := testing.AllocsPerRun(100, func() {
		for i := 0; i < s.NumComponents(); i++ {
			sink += set.EnteringTotal(traffic.ComponentID(i))
		}
	})
	if got != 0 {
		t.Errorf("EnteringTotal allocated %v times per sweep, want 0", got)
	}
	_ = sink
}
