package cycles

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/lp"
)

// TestSynthesizeCancelParity pins the inert-channel contract of the
// route-packing cancellation check: a synthesis run with an open (never
// fired) cancel channel is bit-identical to one with no channel at all.
func TestSynthesizeCancelParity(t *testing.T) {
	w, s := ringSystem(t)
	workload := wl(t, w, 20, 12)

	want, err := Synthesize(s, workload, 600, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inert := make(chan struct{})
	defer close(inert)
	got, err := Synthesize(s, workload, 600, Options{Cancel: inert})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("synthesis with an inert cancel channel differs from a channel-free run")
	}
}

// TestSynthesizeCanceled: a pre-fired channel aborts the packing loop at
// its first per-cycle check, with the error classified under lp.ErrCanceled
// (how a context deadline lands inside route packing).
func TestSynthesizeCanceled(t *testing.T) {
	w, s := ringSystem(t)
	workload := wl(t, w, 20, 12)

	fired := make(chan struct{})
	close(fired)
	cs, err := Synthesize(s, workload, 600, Options{Cancel: fired})
	if cs != nil || err == nil {
		t.Fatalf("cancelled synthesis returned (%v, %v), want error", cs, err)
	}
	if !errors.Is(err, lp.ErrCanceled) {
		t.Fatalf("%v does not classify as lp.ErrCanceled", err)
	}
}
