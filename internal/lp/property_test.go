package lp

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteFeasible enumerates all integer points in [0,ub]^n and reports
// whether any satisfies the constraints.
func bruteFeasible(p *Problem, ub int) bool {
	n := len(p.Vars)
	point := make([]*big.Rat, n)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == n {
			return p.Check(point) == nil
		}
		for v := 0; v <= ub; v++ {
			point[i] = big.NewRat(int64(v), 1)
			if rec(i + 1) {
				return true
			}
		}
		return false
	}
	return rec(0)
}

// Property: SolveILP agrees with brute-force enumeration on feasibility of
// random small integer programs, and any solution it returns passes Check.
func TestSolveILPMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const ub = 4
		nVars := 2 + rng.Intn(2)
		p := &Problem{}
		for i := 0; i < nVars; i++ {
			p.AddIntVar("x", rat(0, 1), rat(ub, 1))
		}
		nCons := 1 + rng.Intn(3)
		for c := 0; c < nCons; c++ {
			var terms []Term
			for i := 0; i < nVars; i++ {
				coef := int64(rng.Intn(7) - 3)
				if coef != 0 {
					terms = append(terms, T(VarID(i), coef))
				}
			}
			if len(terms) == 0 {
				terms = append(terms, T(0, 1))
			}
			sense := []Sense{LE, GE, EQ}[rng.Intn(3)]
			rhs := int64(rng.Intn(13) - 4)
			p.AddConstraint("c", terms, sense, rat(rhs, 1))
		}
		for _, engine := range []Engine{EngineExact, EngineFloat} {
			sol, err := SolveILP(p, ILPOptions{Engine: engine})
			if err != nil {
				return false
			}
			want := bruteFeasible(p, ub)
			switch sol.Status {
			case StatusOptimal:
				if !want {
					return false // found a solution where none exists
				}
				if p.Check(sol.Values) != nil {
					return false // returned an invalid solution
				}
			case StatusInfeasible:
				// The float engine may (rarely) misreport feasible systems as
				// infeasible due to rounding; the exact engine must not.
				if want && engine == EngineExact {
					return false
				}
			default:
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: for random LPs with a bounded feasible region, the exact
// optimum is never worse than any feasible integer point (sanity of the
// bound direction).
func TestSolveLPBoundsIntegerOptimum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := &Problem{}
		n := 2
		for i := 0; i < n; i++ {
			p.AddIntVar("x", rat(0, 1), rat(5, 1))
		}
		var obj []Term
		for i := 0; i < n; i++ {
			obj = append(obj, T(VarID(i), int64(1+rng.Intn(5))))
		}
		p.AddConstraint("cap", []Term{T(0, 1), T(1, 1)}, LE, rat(int64(2+rng.Intn(6)), 1))
		p.SetObjective(obj, true)

		relax, err := SolveLP(p)
		if err != nil || relax.Status != StatusOptimal {
			return false
		}
		ilp, err := SolveILP(p, ILPOptions{Engine: EngineExact})
		if err != nil || ilp.Status != StatusOptimal {
			return false
		}
		// LP relaxation upper-bounds the ILP optimum for maximization.
		return relax.Objective.Cmp(ilp.Objective) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
