// Package wsp is the public API (v1) of the Warehouse Servicing Problem
// reproduction: a context-aware facade over the internal pipeline of the
// paper's Fig. 2 — traffic-system contracts → agent flow synthesis → agent
// cycle mapping → plan realization → validation.
//
// The entry point is the Solver, built once with functional options and
// reused for any number of solves:
//
//	solver := wsp.New(
//		wsp.WithStrategy(wsp.ContractILP),
//		wsp.WithExact(true),
//	)
//	res, err := solver.Solve(ctx, wsp.Instance{System: sys, Workload: wl, Horizon: 3600})
//
// Every solving method takes a context.Context first and honors its
// cancellation down to the LP branch-and-bound work loops: the check rides
// the solver's deterministic work-budget accounting tick, so a cancelled
// solve stops within one simplex pivot and an uncancelled solve is
// bit-identical to one run under context.Background().
//
// Failures carry a typed taxonomy rooted in four sentinels — ErrInfeasible
// (match the concrete *InfeasibleError for the admission certificate),
// ErrHorizonTooShort, ErrBudgetExhausted, and ErrCanceled — all wrapped
// with %w at every layer, so errors.Is and errors.As work on any error the
// package returns.
//
// Besides Solve, the Solver exposes the higher-level workloads of the
// reproduction: SolveBatch (concurrent what-if batches over a bounded
// worker pool, bit-identical to sequential solves), MinimalHorizon (the
// §VI makespan refinement), Lifelong (epoch-based batch release), and
// Sweep (the Fig. 5 co-design grid).
package wsp

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/lifelong"
	"repro/internal/lp"
	"repro/internal/refine"
	"repro/internal/solverpool"
)

// Strategy selects how the agent flow / cycle set is synthesized.
type Strategy = core.Strategy

// Synthesis strategies.
const (
	// RoutePacking packs workload demand into cycles directly over
	// residual component capacities — the strategy that reaches the scale
	// of the paper's Table I.
	RoutePacking = core.RoutePacking
	// SequentialFlows synthesizes the per-period agent flow set one
	// commodity at a time with exact min-cost flow.
	SequentialFlows = core.SequentialFlows
	// ContractILP is the faithful §IV-D contract pipeline solved with the
	// built-in ILP engine (the Z3 substitute).
	ContractILP = core.ContractILP
)

// Simplex selects the exact LP engines' representation. Answers are
// bit-identical across choices; this is a speed knob.
type Simplex = lp.SimplexEngine

// Simplex representations.
const (
	// SimplexAuto routes by instance size (revised for large systems).
	SimplexAuto = lp.SimplexAuto
	// SimplexDense forces the dense tableau (the reference).
	SimplexDense = lp.SimplexDense
	// SimplexRevised forces the LU-factorized revised simplex.
	SimplexRevised = lp.SimplexRevised
	// SimplexHybrid solves float-first on the revised partial-pricing
	// float engine and verifies with the exact engine warm-started from
	// the float basis; certified answers are bit-identical to exact-only
	// solves, with a deterministic cold exact fallback otherwise.
	SimplexHybrid = lp.SimplexHybrid
)

// ParseStrategy resolves a strategy name ("route", "flows", "contract").
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "route":
		return RoutePacking, nil
	case "flows":
		return SequentialFlows, nil
	case "contract":
		return ContractILP, nil
	}
	return 0, fmt.Errorf("wsp: unknown strategy %q (want route, flows, or contract)", name)
}

// ParseSimplex resolves a simplex engine name ("auto", "dense", "revised",
// "hybrid").
func ParseSimplex(name string) (Simplex, error) {
	switch name {
	case "auto":
		return SimplexAuto, nil
	case "dense":
		return SimplexDense, nil
	case "revised":
		return SimplexRevised, nil
	case "hybrid":
		return SimplexHybrid, nil
	}
	return 0, fmt.Errorf("wsp: unknown simplex %q (want auto, dense, revised, or hybrid)", name)
}

// Config is the resolved knob set of a Solver: one struct in place of the
// per-layer option plumbing (core.Options, flow.Options, lp.ILPOptions)
// that the facade threads internally. Zero value = defaults.
type Config struct {
	// Strategy selects the synthesis pipeline (default RoutePacking).
	Strategy Strategy
	// Exact switches the ContractILP strategy to exact rational
	// arithmetic.
	Exact bool
	// Simplex overrides the exact LP representation (default SimplexAuto);
	// SimplexHybrid selects the float-first/exact-verify solve mode.
	Simplex Simplex
	// RootCuts enables Gomory fractional and knapsack-cover cuts at the
	// branch-and-bound root of exact contract solves. The optimal objective
	// is exactly preserved; alternate integer optima may surface
	// differently than the cut-free search.
	RootCuts bool
	// AdmissionCheck gates synthesis on the LP-relaxation infeasibility
	// certificate (fail fast with a sound proof).
	AdmissionCheck bool
	// SkipRealization stops after cycle synthesis.
	SkipRealization bool
	// MaxAttempts bounds the synthesize→realize→verify retry loop
	// (0 = default 3).
	MaxAttempts int
	// WorkBudget bounds the contract path's per-attempt simplex work in
	// deterministic row-update units (0 = auto-scaled default);
	// exhaustion wraps ErrBudgetExhausted.
	WorkBudget int64
	// NodeBudget bounds the per-attempt branch-and-bound tree
	// (0 = default).
	NodeBudget int
	// SimplexAutoRows overrides the SimplexAuto dense/revised size
	// crossover (the constraint-row count at which auto routing prefers
	// the revised engine) for every exact solve; 0 keeps the calibrated
	// default. A pure speed knob — answers are bit-identical at any
	// setting — and one of the quantities `wsp corpus calibrate` sweeps.
	SimplexAutoRows int
	// Parallel is the SolveBatch / Sweep worker-pool width
	// (0 = GOMAXPROCS).
	Parallel int
	// SearchParallel is the WITHIN-instance parallelism width: open
	// branch-and-bound subtrees of each contract solve and route-packing
	// candidate probes of each synthesis are distributed across up to this
	// many workers (0 or 1 = sequential). Results are bit-identical to the
	// sequential engines at every width, and a process-wide token pool
	// clamps the extra workers, so combining this with Parallel (many
	// concurrent solves, each parallel inside) never oversubscribes the
	// machine — it only changes how fast the same answer arrives.
	SearchParallel int
}

// coreOptions resolves the Config into the internal per-layer options.
func (c Config) coreOptions() core.Options {
	return core.Options{
		Strategy:        c.Strategy,
		ExactILP:        c.Exact,
		Simplex:         c.Simplex,
		RootCuts:        c.RootCuts,
		AdmissionCheck:  c.AdmissionCheck,
		SkipRealization: c.SkipRealization,
		MaxAttempts:     c.MaxAttempts,
		MaxWork:         c.WorkBudget,
		MaxNodes:        c.NodeBudget,
		AutoRows:        c.SimplexAutoRows,
		SearchParallel:  c.SearchParallel,
		PackParallel:    c.SearchParallel,
	}
}

// Option configures a Solver at construction.
type Option func(*Config)

// WithStrategy selects the synthesis strategy.
func WithStrategy(s Strategy) Option { return func(c *Config) { c.Strategy = s } }

// WithExact toggles exact rational arithmetic for the ContractILP strategy.
func WithExact(exact bool) Option { return func(c *Config) { c.Exact = exact } }

// WithSimplex overrides the exact LP engines' simplex representation.
func WithSimplex(s Simplex) Option { return func(c *Config) { c.Simplex = s } }

// WithHybrid toggles the float-first/exact-verify hybrid solve mode
// (shorthand for WithSimplex(SimplexHybrid)); turning it off restores
// size-based representation selection.
func WithHybrid(on bool) Option {
	return func(c *Config) {
		if on {
			c.Simplex = SimplexHybrid
		} else if c.Simplex == SimplexHybrid {
			c.Simplex = SimplexAuto
		}
	}
}

// WithRootCuts toggles Gomory fractional and knapsack-cover cuts at the
// branch-and-bound root of exact contract solves.
func WithRootCuts(on bool) Option { return func(c *Config) { c.RootCuts = on } }

// WithAdmissionCheck toggles the LP-relaxation admission certificate
// before synthesis.
func WithAdmissionCheck(check bool) Option { return func(c *Config) { c.AdmissionCheck = check } }

// WithSkipRealization stops solves after cycle synthesis (no plan,
// no simulation).
func WithSkipRealization(skip bool) Option { return func(c *Config) { c.SkipRealization = skip } }

// WithMaxAttempts bounds the synthesize→realize→verify retry loop.
func WithMaxAttempts(n int) Option { return func(c *Config) { c.MaxAttempts = n } }

// WithWorkBudget bounds the contract path's per-attempt simplex work in
// deterministic row-update units; exhaustion surfaces as an error wrapping
// ErrBudgetExhausted.
func WithWorkBudget(units int64) Option { return func(c *Config) { c.WorkBudget = units } }

// WithSimplexAutoRows overrides the SimplexAuto dense/revised size
// crossover in constraint rows (0 = calibrated default). Routing only;
// answers are bit-identical at any setting.
func WithSimplexAutoRows(rows int) Option {
	return func(c *Config) { c.SimplexAutoRows = rows }
}

// WithNodeBudget bounds the contract path's per-attempt branch-and-bound
// tree.
func WithNodeBudget(nodes int) Option { return func(c *Config) { c.NodeBudget = nodes } }

// WithSearchParallel sets the within-instance parallelism width: subtree-
// parallel branch and bound plus parallel route packing, bit-identical to
// the sequential engines at every width (0 or 1 = sequential).
func WithSearchParallel(workers int) Option {
	return func(c *Config) { c.SearchParallel = workers }
}

// WithParallel sets the worker-pool width used by SolveBatch and Sweep
// (0 selects GOMAXPROCS). Results are bit-identical for every width.
func WithParallel(workers int) Option { return func(c *Config) { c.Parallel = workers } }

// Solver is the facade over the whole pipeline. Build one with New and
// reuse it: a Solver is safe for concurrent use, and it recycles per-call
// synthesis scratch (compiled contract models, solver arenas) across
// solves, so repeated calls on similar instances skip recompilation.
type Solver struct {
	cfg Config
	// scratch recycles core.Scratch values across calls; each concurrent
	// Solve borrows one, so reuse never races and results stay
	// bit-identical to scratchless solves.
	scratch sync.Pool
}

// New builds a Solver from functional options.
func New(opts ...Option) *Solver {
	s := &Solver{}
	for _, o := range opts {
		o(&s.cfg)
	}
	s.scratch.New = func() any { return &core.Scratch{} }
	return s
}

// NewFromConfig builds a Solver from an already-resolved Config — the form
// a server uses when the knob set is computed per request (degradation
// ladders, per-client overrides) rather than fixed at construction.
func NewFromConfig(cfg Config) *Solver {
	s := &Solver{cfg: cfg}
	s.scratch.New = func() any { return &core.Scratch{} }
	return s
}

// Config returns the Solver's resolved configuration.
func (s *Solver) Config() Config { return s.cfg }

// Instance is one Warehouse Servicing Problem: service Workload on the
// traffic system within Horizon timesteps.
type Instance struct {
	System   *System
	Workload Workload
	// Horizon is the timestep budget T.
	Horizon int
}

// Solve answers the WSP for one instance: synthesize, realize, validate.
// Cancelling ctx aborts the solve inside the LP search within one
// work-budget tick; the error then satisfies errors.Is(err, ErrCanceled).
func (s *Solver) Solve(ctx context.Context, inst Instance) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sc := s.scratch.Get().(*core.Scratch)
	defer s.scratch.Put(sc)
	res, err := core.SolveScratch(ctx, inst.System, inst.Workload, inst.Horizon, s.cfg.coreOptions(), sc)
	if err != nil {
		return nil, fmt.Errorf("wsp: solve (T=%d): %w", inst.Horizon, err)
	}
	return res, nil
}

// Scratch is an opaque, reusable synthesis scratch: compiled contract
// models, solver arenas, and packing buffers that persist across solves.
// A Solver's own sync.Pool already recycles scratch anonymously; an
// explicit Scratch exists for callers that know MORE than the pool does —
// a solve server keys warm scratches by traffic.StructureSignature so
// concurrent clients on the same topology reuse one compiled contract
// system instead of drawing an arbitrary (probably cold) pool entry. A
// Scratch must not be used by two solves concurrently; results are
// bit-identical whether a scratch is cold, warm, or absent.
type Scratch struct {
	sc core.Scratch
}

// NewScratch returns an empty Scratch, ready for SolveWithScratch.
func NewScratch() *Scratch { return &Scratch{} }

// SolveWithScratch is Solve with a caller-owned Scratch in place of the
// Solver's anonymous pool. The scratch may be shared across Solvers (its
// warmth is keyed by topology, not by configuration).
func (s *Solver) SolveWithScratch(ctx context.Context, inst Instance, sc *Scratch) (*Result, error) {
	if sc == nil {
		return s.Solve(ctx, inst)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	res, err := core.SolveScratch(ctx, inst.System, inst.Workload, inst.Horizon, s.cfg.coreOptions(), &sc.sc)
	if err != nil {
		return nil, fmt.Errorf("wsp: solve (T=%d): %w", inst.Horizon, err)
	}
	return res, nil
}

// BatchResult pairs one SolveBatch instance's outcome with its wall-clock
// solve time.
type BatchResult = solverpool.Result

// SolveBatch solves every instance over a bounded worker pool (width
// WithParallel) and returns results in instance order, each bit-identical
// to a sequential Solve of the same instance. Cancelling ctx aborts
// in-flight solves and fails the not-yet-started rest fast; the pool
// always drains — every slot of the returned slice is filled and no
// goroutine outlives the call. Cancelled slots' errors wrap ErrCanceled.
func (s *Solver) SolveBatch(ctx context.Context, insts []Instance) []BatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	reqs := make([]solverpool.Request, len(insts))
	opts := s.cfg.coreOptions()
	for i, inst := range insts {
		reqs[i] = solverpool.Request{S: inst.System, WL: inst.Workload, T: inst.Horizon, Opts: opts}
	}
	return solverpool.New(s.cfg.Parallel).SolveBatch(ctx, reqs)
}

// HorizonResult reports a MinimalHorizon search.
type HorizonResult = refine.HorizonResult

// MinimalHorizon binary-searches the smallest horizon at which the
// instance still solves (the §VI refinement), holding one synthesis
// scratch across all probes. Infeasible probes narrow the search;
// cancelling ctx aborts it with an error wrapping ErrCanceled.
func (s *Solver) MinimalHorizon(ctx context.Context, inst Instance) (*HorizonResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	hr, err := refine.MinimalHorizon(ctx, inst.System, inst.Workload, inst.Horizon, s.cfg.coreOptions())
	if err != nil {
		return nil, fmt.Errorf("wsp: minimal horizon: %w", err)
	}
	return hr, nil
}

// Batch is a demand vector released at a point in time of a lifelong run.
type Batch = lifelong.Batch

// LifelongReport summarizes a lifelong run: per-batch completion, epoch
// timelines, peak team size, delivered units.
type LifelongReport = lifelong.Report

// Lifelong event types, re-exported for streaming observers.
type (
	// LifelongObserver receives engine events as a lifelong run
	// progresses; callbacks fire synchronously on the solving goroutine.
	LifelongObserver = lifelong.Observer
	// LifelongObserverFuncs adapts plain functions to LifelongObserver;
	// nil fields are skipped.
	LifelongObserverFuncs = lifelong.ObserverFuncs
	// EpochReport is the per-epoch streaming payload: the epoch timeline
	// plus delivery, backlog, and cumulative throughput state.
	EpochReport = lifelong.EpochReport
	// EpochInfo records one epoch's timeline within a LifelongReport.
	EpochInfo = lifelong.EpochInfo
	// BatchStats reports one batch's fate within a LifelongReport.
	BatchStats = lifelong.BatchStats
	// Delivery is one FIFO attribution of delivered units to a batch.
	Delivery = lifelong.Delivery
)

// LifelongOption configures one Lifelong run.
type LifelongOption func(*lifelong.Options)

// WithLifelongObserver streams engine events (epoch reports, delivery
// attributions, batch completions) to obs as the run progresses. A nil
// observer is the default: the engine then skips all event bookkeeping.
func WithLifelongObserver(obs LifelongObserver) LifelongOption {
	return func(o *lifelong.Options) { o.Observer = obs }
}

// WithLifelongThroughputWindow sets the bin width, in timesteps, of the
// streaming throughput series on EpochReport. Zero (the default) means one
// cycle time.
func WithLifelongThroughputWindow(width int) LifelongOption {
	return func(o *lifelong.Options) { o.ThroughputWindow = width }
}

// Lifelong services workload batches released over an open-ended horizon,
// re-synthesizing per epoch as demand arrives and stock depletes. Batches
// sharing a release time are merged; the report holds one entry per
// distinct release. Cancelling ctx aborts the epoch in flight; the partial
// report (epochs completed so far) is returned alongside the wrapping
// error.
func (s *Solver) Lifelong(ctx context.Context, sys *System, batches []Batch, T int, opts ...LifelongOption) (*LifelongReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	lo := lifelong.Options{Core: s.cfg.coreOptions()}
	for _, opt := range opts {
		opt(&lo)
	}
	rep, err := lifelong.Run(ctx, sys, batches, T, lo)
	if err != nil {
		return rep, fmt.Errorf("wsp: lifelong: %w", err)
	}
	return rep, nil
}
