package contracts

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lp"
)

// randomContract builds a small contract over shared variable names a..c.
// Variables carry finite bounds so branch-and-bound always terminates
// (plain B&B cannot refute infeasibility over unbounded integers).
func randomContract(rng *rand.Rand, name string) *Contract {
	c := New(name)
	for i := 0; i < 3; i++ {
		_ = c.DeclareVar(VarSpec{
			Name:    varName(i),
			Lower:   big.NewRat(0, 1),
			Upper:   big.NewRat(20, 1),
			Integer: true,
		})
	}
	nA, nG := rng.Intn(3), rng.Intn(3)
	mk := func() Constraint {
		var terms []LinTerm
		for i := 0; i < 3; i++ {
			if coef := rng.Intn(5) - 2; coef != 0 {
				terms = append(terms, LT(int64(coef), varName(i)))
			}
		}
		if len(terms) == 0 {
			terms = append(terms, LT(1, varName(0)))
		}
		return CT("r", lp.Sense(rng.Intn(3)), int64(rng.Intn(15)-3), terms...)
	}
	for i := 0; i < nA; i++ {
		_ = c.Assume(mk())
	}
	for i := 0; i < nG; i++ {
		_ = c.Guarantee(mk())
	}
	return c
}

// Property: refinement is reflexive.
func TestRefinesReflexiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomContract(rng, "c")
		ok, err := Refines(c, c)
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}

// Property: ComposeAllFast preserves the satisfying set of pairwise Compose
// (both are Ã ∧ G̃ over the same constraints): a satisfying assignment of
// one satisfies the other.
func TestComposeFastEquisatisfiableProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c1 := randomContract(rng, "a")
		c2 := randomContract(rng, "b")
		full, err := Compose(c1, c2)
		if err != nil {
			return false
		}
		fast, err := ComposeAllFast([]*Contract{c1, c2})
		if err != nil {
			return false
		}
		asnFull, err := full.Satisfy(lp.EngineExact)
		if err != nil {
			return false
		}
		asnFast, err := fast.Satisfy(lp.EngineExact)
		if err != nil {
			return false
		}
		// Discharge can only *remove* assumptions entailed by guarantees, so
		// the fast (undischared) conjunction is at least as constrained:
		// fast satisfiable => full satisfiable.
		if asnFast != nil && asnFull == nil {
			return false
		}
		// And any fast assignment must satisfy the full contract's problem.
		if asnFast != nil {
			p, idx := full.ToProblem()
			vec := make([]*big.Rat, p.NumVars())
			for name, id := range idx {
				if v, ok := asnFast[name]; ok {
					vec[id] = v
				}
			}
			for i := range vec {
				if vec[i] == nil {
					return false // all variables are shared by construction
				}
			}
			if p.Check(vec) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}
