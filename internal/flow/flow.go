// Package flow implements agent-flow-set synthesis (§IV-D): the per-period
// flow rates f_{i,j,k} of agents moving between traffic-system components
// while carrying each product (or nothing), together with the pickup rates
// fin and drop-off rates fout.
//
// Two synthesis strategies are provided:
//
//   - Contract: the faithful path. Component contracts and the workload
//     contract are compiled (per the equations of §IV-D), composed, conjoined
//     and handed to the ILP solver — the paper's CHASE + Z3 pipeline with
//     internal/contracts + internal/lp substituted.
//   - Sequential: the scalable path. Each product's flow is the projection
//     of the same contract system onto one commodity, which is a
//     single-commodity network-flow problem and is solved exactly by
//     min-cost flow on the shared residual capacities; the empty-agent
//     return flow is balanced the same way. This decomposition solves the
//     instances of Table I at the paper's scale.
//
// Every synthesized Set, regardless of strategy, can be checked against the
// compiled contracts with VerifyContracts.
package flow

import (
	"fmt"

	"repro/internal/traffic"
	"repro/internal/warehouse"
)

// Set is an agent flow set F for a traffic system: steady-state per-period
// flow rates, plus the total pick quotas that bound actual execution.
type Set struct {
	S *traffic.System
	// Tc is the cycle time (2m, Property 4.1).
	Tc int
	// Qc is the number of cycle periods executable in the T-timestep budget
	// (⌊T/tc⌋; the paper's qc with its tc/T typo corrected).
	Qc int
	// QEff is the number of periods the synthesis sized flows for; it is at
	// most Qc and leaves headroom for the realization warm-up (agents start
	// empty and mid-cycle).
	QEff int

	// Edges lists Es in the same order as S.Edges().
	Edges [][2]traffic.ComponentID
	// F[e][k] is f_{i,j,k}: agents moving along Edges[e] carrying product k
	// each period. Index k = NumProducts holds the empty commodity ρ0.
	F [][]int
	// Fin[i][k] is the pickup rate of product k at component i per period.
	Fin [][]int
	// Fout[i][k] is the station drop-off rate of product k at component i.
	Fout [][]int
	// Quota[i][k] is the total number of units of product k that execution
	// may pick up at component i over the whole plan (bounded by stock).
	Quota [][]int
}

// EmptyIndex returns the commodity index of ρ0 within F.
func (f *Set) EmptyIndex() int { return f.S.W.NumProducts }

// newSet allocates a zeroed flow set for the system.
func newSet(s *traffic.System, tc, qc, qeff int) *Set {
	n := s.NumComponents()
	p := s.W.NumProducts
	set := &Set{
		S:     s,
		Tc:    tc,
		Qc:    qc,
		QEff:  qeff,
		Edges: s.Edges(),
		Fin:   make([][]int, n),
		Fout:  make([][]int, n),
		Quota: make([][]int, n),
	}
	// One backing array per matrix keeps the per-edge and per-component rows
	// contiguous in memory.
	fBack := make([]int, len(set.Edges)*(p+1))
	set.F = make([][]int, len(set.Edges))
	for e := range set.Edges {
		set.F[e] = fBack[e*(p+1) : (e+1)*(p+1) : (e+1)*(p+1)]
	}
	ioBack := make([]int, 3*n*p)
	for i := 0; i < n; i++ {
		set.Fin[i] = ioBack[i*p : (i+1)*p : (i+1)*p]
		set.Fout[i] = ioBack[(n+i)*p : (n+i+1)*p : (n+i+1)*p]
		set.Quota[i] = ioBack[(2*n+i)*p : (2*n+i+1)*p : (2*n+i+1)*p]
	}
	return set
}

// EdgeIndex returns the index of arc (i, j) in Edges, or -1. Edges share the
// traffic system's contiguous arc numbering, so this is a constant-time
// degree-bounded scan rather than a map lookup.
func (f *Set) EdgeIndex(i, j traffic.ComponentID) int {
	return f.S.EdgeID(i, j)
}

// EnteringTotal returns the total agent flow entering component i per
// period, summed over all commodities.
func (f *Set) EnteringTotal(i traffic.ComponentID) int {
	total := 0
	for _, e := range f.S.InEdgeIDs(i) {
		for _, v := range f.F[e] {
			total += v
		}
	}
	return total
}

// Check verifies the flow set against the §IV-D constraint system using
// exact integer arithmetic: capacity, conservation per commodity, fin/fout
// placement and bounds, and the workload demand. It returns every violation.
func (f *Set) Check(wl warehouse.Workload) []error {
	var errs []error
	s := f.S
	p := s.W.NumProducts
	empty := f.EmptyIndex()

	for _, c := range s.Components {
		i := c.ID
		// Capacity: Σ_inlets Σ_k f ≤ ⌊|Ci|/2⌋.
		if got := f.EnteringTotal(i); got > c.Capacity() {
			errs = append(errs, fmt.Errorf("flow: component %d intake %d exceeds capacity %d", i, got, c.Capacity()))
		}
		inFlow := make([]int, p+1)
		outFlow := make([]int, p+1)
		for _, e := range s.InEdgeIDs(i) {
			for k, v := range f.F[e] {
				if v < 0 {
					errs = append(errs, fmt.Errorf("flow: negative flow on edge %v commodity %d", f.Edges[e], k))
				}
				inFlow[k] += v
			}
		}
		for _, e := range s.OutEdgeIDs(i) {
			for k, v := range f.F[e] {
				outFlow[k] += v
			}
		}
		sumFin, sumFout := 0, 0
		for k := 0; k < p; k++ {
			fin, fout := f.Fin[i][k], f.Fout[i][k]
			if fin < 0 || fout < 0 {
				errs = append(errs, fmt.Errorf("flow: negative fin/fout at component %d product %d", i, k))
			}
			sumFin += fin
			sumFout += fout
			if fin > 0 && c.Kind != traffic.ShelvingRow {
				errs = append(errs, fmt.Errorf("flow: fin %d at non-shelving component %d", fin, i))
			}
			if fout > 0 && c.Kind != traffic.StationQueue {
				errs = append(errs, fmt.Errorf("flow: fout %d at non-station component %d", fout, i))
			}
			if fout > inFlow[k] {
				errs = append(errs, fmt.Errorf("flow: fout %d exceeds product-%d inflow %d at component %d", fout, k, inFlow[k], i))
			}
			// Total pick bound: quota ≤ stock; steady rate must be coverable.
			if q := f.Quota[i][k]; q > s.UnitsAt(i, warehouse.ProductID(k)) {
				errs = append(errs, fmt.Errorf("flow: quota %d exceeds stock %d at component %d product %d", q, s.UnitsAt(i, warehouse.ProductID(k)), i, k))
			}
			// Conservation for product k.
			if outFlow[k] != inFlow[k]+fin-fout {
				errs = append(errs, fmt.Errorf("flow: product %d conservation broken at component %d: out %d != in %d + fin %d - fout %d",
					k, i, outFlow[k], inFlow[k], fin, fout))
			}
		}
		// Pickups need unburdened agents.
		if sumFin > inFlow[empty] {
			errs = append(errs, fmt.Errorf("flow: Σfin %d exceeds empty inflow %d at component %d", sumFin, inFlow[empty], i))
		}
		// Conservation for ρ0 (paper's equation with the sign erratum fixed:
		// picking up removes an agent from the empty commodity).
		if outFlow[empty] != inFlow[empty]-sumFin+sumFout {
			errs = append(errs, fmt.Errorf("flow: empty conservation broken at component %d: out %d != in %d - Σfin %d + Σfout %d",
				i, outFlow[empty], inFlow[empty], sumFin, sumFout))
		}
	}
	// Workload: per-period drop-off rates must service w within QEff periods,
	// and quotas must cover the demand.
	for k, want := range wl.Units {
		rate, quota := 0, 0
		for i := range f.Fout {
			rate += f.Fout[i][k]
			quota += f.Quota[i][k]
		}
		if rate*f.QEff < want {
			errs = append(errs, fmt.Errorf("flow: product %d rate %d over %d periods cannot service demand %d", k, rate, f.QEff, want))
		}
		if quota < want {
			errs = append(errs, fmt.Errorf("flow: product %d quota %d below demand %d", k, quota, want))
		}
	}
	return errs
}

// periods computes tc, qc and qeff for a horizon T. margin is the number of
// warm-up periods reserved for the realization (agents start empty and
// mid-cycle); it is clamped so qeff stays positive.
func periods(s *traffic.System, T, margin int) (tc, qc, qeff int, err error) {
	tc = s.CycleTime()
	if tc <= 0 {
		return 0, 0, 0, fmt.Errorf("flow: traffic system has zero cycle time")
	}
	qc = T / tc
	if qc < 1 {
		return 0, 0, 0, fmt.Errorf("flow: horizon %d below cycle period %d: %w", T, tc, ErrHorizonTooShort)
	}
	qeff = qc - margin
	if qeff < 1 {
		qeff = 1
	}
	return tc, qc, qeff, nil
}
