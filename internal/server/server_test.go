package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/server/faultinject"
	"repro/wsp"
)

// testInstance builds the smallest contract-expressible instance, inlined
// as the wire-format InstanceFile a client would POST.
func testInstance(t *testing.T) *wsp.InstanceFile {
	t.Helper()
	m, err := wsp.GenerateMap(wsp.MapParams{
		Stripes: 1, Rows: 2, BayWidth: 12, CorridorWidth: 2,
		MaxComponentLen: 6, DoubleShelfRows: true,
		NumProducts: 2, UnitsPerShelf: 30, StationsPerStripe: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := wsp.UniformWorkload(m.W, 12)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := wsp.EncodeInstance(m.S, &wl, 800, "test")
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func postJSON(t *testing.T, h http.Handler, path string, body any, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(buf))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func decodeAs[T any](t *testing.T, w *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatalf("decoding %q: %v", w.Body.String(), err)
	}
	return v
}

// TestSolveBitIdentical pins the service's core contract: an admitted,
// undegraded request is answered bit-identically to a direct wsp.Solver
// call — cold scratch and warm cache hit alike.
func TestSolveBitIdentical(t *testing.T) {
	inst := testInstance(t)
	cfg := wsp.Config{Strategy: wsp.ContractILP, Exact: true}
	srv := New(Config{Solver: cfg, NoDegrade: true})

	sys, wl, err := wsp.DecodeInstance(inst)
	if err != nil {
		t.Fatal(err)
	}
	want, err := wsp.NewFromConfig(cfg).Solve(context.Background(),
		wsp.Instance{System: sys, Workload: *wl, Horizon: inst.T})
	if err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 2; round++ {
		w := postJSON(t, srv.Handler(), "/v1/solve", SolveRequest{
			InstanceSpec: InstanceSpec{Instance: inst},
		}, nil)
		if w.Code != http.StatusOK {
			t.Fatalf("round %d: status %d: %s", round, w.Code, w.Body.String())
		}
		resp := decodeAs[SolveResponse](t, w)
		if resp.Degraded || len(resp.DegradeSteps) != 0 {
			t.Fatalf("round %d: unloaded solve labeled degraded: %+v", round, resp)
		}
		if resp.Agents != want.Stats.Agents || resp.ServicedAt != want.Sim.ServicedAt {
			t.Fatalf("round %d: got agents=%d serviced=%d, direct solver says agents=%d serviced=%d",
				round, resp.Agents, resp.ServicedAt, want.Stats.Agents, want.Sim.ServicedAt)
		}
	}
	m := srv.Metrics()
	if m["cache_misses_total"] != 1 || m["cache_hits_total"] != 1 {
		t.Errorf("want 1 cold + 1 warm solve, got misses=%d hits=%d",
			m["cache_misses_total"], m["cache_hits_total"])
	}
}

// TestAdmissionOverCapacity: with one in-flight slot occupied by a stalled
// solve, the next request is rejected 429/over-capacity with a Retry-After
// — never queued.
func TestAdmissionOverCapacity(t *testing.T) {
	inst := testInstance(t)
	started := make(chan struct{})
	release := make(chan struct{})
	srv := New(Config{
		MaxInFlight: 1,
		Fault: func(ctx context.Context, _ faultinject.Info) error {
			close(started)
			select {
			case <-release:
				return nil
			case <-ctx.Done():
				return context.Cause(ctx)
			}
		},
	})

	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		done <- postJSON(t, srv.Handler(), "/v1/solve", SolveRequest{
			InstanceSpec: InstanceSpec{Instance: inst},
		}, nil)
	}()
	<-started

	w := postJSON(t, srv.Handler(), "/v1/solve", SolveRequest{
		InstanceSpec: InstanceSpec{Instance: inst},
	}, nil)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", w.Code, w.Body.String())
	}
	resp := decodeAs[ErrorResponse](t, w)
	if resp.Code != "over-capacity" {
		t.Errorf("code %q, want over-capacity", resp.Code)
	}
	if w.Header().Get("Retry-After") == "" || resp.RetryAfterSec < 1 {
		t.Errorf("429 lacks Retry-After (hdr=%q, sec=%d)", w.Header().Get("Retry-After"), resp.RetryAfterSec)
	}

	close(release)
	if w := <-done; w.Code != http.StatusOK {
		t.Fatalf("stalled solve finished %d, want 200: %s", w.Code, w.Body.String())
	}
	m := srv.Metrics()
	if m["rejected_load_total"] != 1 {
		t.Errorf("rejected_load_total = %d, want 1", m["rejected_load_total"])
	}
}

// TestAdmissionWorkBudget: a client whose token bucket cannot cover the
// solve's work cost is rejected 429/work-budget while other clients are
// unaffected.
func TestAdmissionWorkBudget(t *testing.T) {
	inst := testInstance(t)
	srv := New(Config{
		SolveCost:   1000,
		ClientBurst: 1500, // covers one solve, not two
		ClientRate:  1,    // refill far slower than the test
	})
	greedy := map[string]string{"X-Client-ID": "greedy"}

	if w := postJSON(t, srv.Handler(), "/v1/solve", SolveRequest{
		InstanceSpec: InstanceSpec{Instance: inst},
	}, greedy); w.Code != http.StatusOK {
		t.Fatalf("first solve: status %d: %s", w.Code, w.Body.String())
	}
	w := postJSON(t, srv.Handler(), "/v1/solve", SolveRequest{
		InstanceSpec: InstanceSpec{Instance: inst},
	}, greedy)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("second solve: status %d, want 429: %s", w.Code, w.Body.String())
	}
	resp := decodeAs[ErrorResponse](t, w)
	if resp.Code != "work-budget" {
		t.Errorf("code %q, want work-budget", resp.Code)
	}
	if resp.RetryAfterSec < 1 {
		t.Errorf("work-budget rejection lacks retry_after_sec: %+v", resp)
	}

	if w := postJSON(t, srv.Handler(), "/v1/solve", SolveRequest{
		InstanceSpec: InstanceSpec{Instance: inst},
	}, map[string]string{"X-Client-ID": "frugal"}); w.Code != http.StatusOK {
		t.Fatalf("other client: status %d, want 200: %s", w.Code, w.Body.String())
	}
	if m := srv.Metrics(); m["rejected_budget_total"] != 1 {
		t.Errorf("rejected_budget_total = %d, want 1", m["rejected_budget_total"])
	}
}

// TestDeadlineExceededIs504: a solve cut short by the merged deadline
// policy answers 504/deadline-exceeded — the server's deadline, not the
// client hanging up.
func TestDeadlineExceededIs504(t *testing.T) {
	inst := testInstance(t)
	srv := New(Config{Fault: faultinject.Sleep(10 * time.Second)})

	w := postJSON(t, srv.Handler(), "/v1/solve", SolveRequest{
		InstanceSpec:   InstanceSpec{Instance: inst},
		SolveOverrides: SolveOverrides{DeadlineMS: 30},
	}, nil)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", w.Code, w.Body.String())
	}
	if resp := decodeAs[ErrorResponse](t, w); resp.Code != "deadline-exceeded" {
		t.Errorf("code %q, want deadline-exceeded", resp.Code)
	}
	if m := srv.Metrics(); m["deadline_total"] != 1 {
		t.Errorf("deadline_total = %d, want 1", m["deadline_total"])
	}
}

// TestClientDisconnectIs499: the same stalled solve abandoned by the
// CLIENT answers 499/client-closed-request — distinguishable from 504.
func TestClientDisconnectIs499(t *testing.T) {
	inst := testInstance(t)
	started := make(chan struct{})
	srv := New(Config{
		Fault: func(ctx context.Context, _ faultinject.Info) error {
			close(started)
			<-ctx.Done()
			return context.Cause(ctx)
		},
	})

	buf, err := json.Marshal(SolveRequest{InstanceSpec: InstanceSpec{Instance: inst}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/v1/solve", bytes.NewReader(buf)).WithContext(ctx)
	go func() {
		<-started
		cancel() // the client hangs up mid-solve
	}()
	w := httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, req)

	if w.Code != StatusClientClosedRequest {
		t.Fatalf("status %d, want 499: %s", w.Code, w.Body.String())
	}
	if resp := decodeAs[ErrorResponse](t, w); resp.Code != "client-closed-request" {
		t.Errorf("code %q, want client-closed-request", resp.Code)
	}
	if m := srv.Metrics(); m["client_gone_total"] != 1 {
		t.Errorf("client_gone_total = %d, want 1", m["client_gone_total"])
	}
}

// TestPanicIsolated: a panicking solve answers 500/panic and the daemon
// keeps serving — the next request on the same topology succeeds on a
// fresh scratch (the panicked one is discarded, not reused).
func TestPanicIsolated(t *testing.T) {
	inst := testInstance(t)
	srv := New(Config{Fault: faultinject.Times(1, faultinject.Panic("injected solver bug"))})

	w := postJSON(t, srv.Handler(), "/v1/solve", SolveRequest{
		InstanceSpec: InstanceSpec{Instance: inst},
	}, nil)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", w.Code, w.Body.String())
	}
	if resp := decodeAs[ErrorResponse](t, w); resp.Code != "panic" {
		t.Errorf("code %q, want panic", resp.Code)
	}

	w = postJSON(t, srv.Handler(), "/v1/solve", SolveRequest{
		InstanceSpec: InstanceSpec{Instance: inst},
	}, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("post-panic solve: status %d, want 200: %s", w.Code, w.Body.String())
	}
	m := srv.Metrics()
	if m["panics_total"] != 1 {
		t.Errorf("panics_total = %d, want 1", m["panics_total"])
	}
	if m["cache_hits_total"] != 0 {
		t.Errorf("panicked scratch was reused (cache_hits_total = %d)", m["cache_hits_total"])
	}
}

// TestDegradationLadder: under a loaded window the server answers with a
// cheaper solve, labeled degraded with the applied rungs; a no_degrade
// request on the same loaded server runs exactly as configured.
func TestDegradationLadder(t *testing.T) {
	inst := testInstance(t)
	srv := New(Config{Solver: wsp.Config{Strategy: wsp.ContractILP, Exact: true}})
	for i := 0; i < 50; i++ {
		srv.deg.observeReject() // synthesize a saturated window
	}
	if r := srv.deg.rung(); r != 3 {
		t.Fatalf("rung = %d under saturated window, want 3", r)
	}

	w := postJSON(t, srv.Handler(), "/v1/solve", SolveRequest{
		InstanceSpec: InstanceSpec{Instance: inst},
	}, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	resp := decodeAs[SolveResponse](t, w)
	if !resp.Degraded {
		t.Fatal("loaded solve not labeled degraded")
	}
	want := map[string]bool{"float-arith": true, "route-packing": true, "budget-shrink": true}
	for _, step := range resp.DegradeSteps {
		delete(want, step)
	}
	if len(want) != 0 {
		t.Errorf("degrade steps %v missing %v", resp.DegradeSteps, want)
	}
	if resp.Strategy != "route-packing" {
		t.Errorf("degraded strategy %q, want route-packing", resp.Strategy)
	}

	w = postJSON(t, srv.Handler(), "/v1/solve", SolveRequest{
		InstanceSpec:   InstanceSpec{Instance: inst},
		SolveOverrides: SolveOverrides{NoDegrade: true},
	}, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("no_degrade solve: status %d: %s", w.Code, w.Body.String())
	}
	if resp := decodeAs[SolveResponse](t, w); resp.Degraded || resp.Strategy != "contract-ilp" {
		t.Errorf("no_degrade solve degraded anyway: %+v", resp)
	}
}

// TestBudgetExhaustedDegradesOnce: when the configured strategy runs out
// of its deterministic work budget and the request allows degradation, the
// server retries once on the cheap strategy and labels the answer instead
// of erroring.
func TestBudgetExhaustedDegradesOnce(t *testing.T) {
	inst := testInstance(t)
	srv := New(Config{Solver: wsp.Config{Strategy: wsp.ContractILP, WorkBudget: 50, MaxAttempts: 1}})

	w := postJSON(t, srv.Handler(), "/v1/solve", SolveRequest{
		InstanceSpec: InstanceSpec{Instance: inst},
	}, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 via degraded retry: %s", w.Code, w.Body.String())
	}
	resp := decodeAs[SolveResponse](t, w)
	if !resp.Degraded || resp.Strategy != "route-packing" {
		t.Errorf("want degraded route-packing answer, got %+v", resp)
	}

	// The same exhaustion with no_degrade is an honest 503.
	w = postJSON(t, srv.Handler(), "/v1/solve", SolveRequest{
		InstanceSpec:   InstanceSpec{Instance: inst},
		SolveOverrides: SolveOverrides{NoDegrade: true},
	}, nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("no_degrade exhaustion: status %d, want 503: %s", w.Code, w.Body.String())
	}
	if resp := decodeAs[ErrorResponse](t, w); resp.Code != "budget-exhausted" {
		t.Errorf("code %q, want budget-exhausted", resp.Code)
	}
}

// TestDrainClean: SIGTERM semantics end to end — admission stops, the
// in-flight solve completes with its answer, Drain returns nil, and Serve
// unwinds with http.ErrServerClosed.
func TestDrainClean(t *testing.T) {
	inst := testInstance(t)
	started := make(chan struct{})
	release := make(chan struct{})
	srv := New(Config{
		Fault: faultinject.Times(1, func(ctx context.Context, _ faultinject.Info) error {
			close(started)
			select {
			case <-release:
				return nil
			case <-ctx.Done():
				return context.Cause(ctx)
			}
		}),
	})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	base := "http://" + l.Addr().String()

	if resp, err := http.Get(base + "/readyz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: %v %v", resp, err)
	}

	buf, err := json.Marshal(SolveRequest{InstanceSpec: InstanceSpec{Instance: inst}})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		code int
		body SolveResponse
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/v1/solve", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Errorf("in-flight solve: %v", err)
			inflight <- result{}
			return
		}
		defer resp.Body.Close()
		var sr SolveResponse
		json.NewDecoder(resp.Body).Decode(&sr)
		inflight <- result{resp.StatusCode, sr}
	}()
	<-started

	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainErr <- srv.Drain(ctx)
	}()

	// Draining flips readiness and rejects new admissions on the handler.
	waitFor(t, func() bool { return srv.draining.Load() })
	w := postJSON(t, srv.Handler(), "/v1/solve", SolveRequest{
		InstanceSpec: InstanceSpec{Instance: inst},
	}, nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("solve during drain: status %d, want 503: %s", w.Code, w.Body.String())
	}
	if resp := decodeAs[ErrorResponse](t, w); resp.Code != "draining" {
		t.Errorf("code %q, want draining", resp.Code)
	}
	rw := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rw.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain: %d, want 503", rw.Code)
	}

	close(release)
	if got := <-inflight; got.code != http.StatusOK {
		t.Fatalf("in-flight solve finished %d, want 200 (drain must not cancel admitted work)", got.code)
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("drain not clean: %v", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want http.ErrServerClosed", err)
	}
	m := srv.Metrics()
	if m["drains_total"] != 1 || m["rejected_drain_total"] != 1 {
		t.Errorf("drain counters: %+v", m)
	}
}

// TestBatchAndSweep covers the remaining endpoints' happy paths and their
// size guards.
func TestBatchAndSweep(t *testing.T) {
	inst := testInstance(t)
	srv := New(Config{})

	w := postJSON(t, srv.Handler(), "/v1/batch", BatchRequest{
		Instances: []InstanceSpec{{Instance: inst}, {Instance: inst}},
	}, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("batch: status %d: %s", w.Code, w.Body.String())
	}
	br := decodeAs[BatchResponse](t, w)
	if len(br.Items) != 2 || !br.Items[0].OK || !br.Items[1].OK {
		t.Fatalf("batch items: %+v", br.Items)
	}
	if br.Items[0].Agents != br.Items[1].Agents {
		t.Errorf("identical batch instances disagree: %+v", br.Items)
	}

	w = postJSON(t, srv.Handler(), "/v1/sweep", SweepRequest{
		Corridors: []int{2}, Lens: []int{6}, Units: 60, Points: 2, Horizon: 1200,
	}, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("sweep: status %d: %s", w.Code, w.Body.String())
	}
	sr := decodeAs[SweepResponse](t, w)
	if len(sr.Cells) != 1 || len(sr.Cells[0].Points) != 2 {
		t.Fatalf("sweep cells: %+v", sr.Cells)
	}

	w = postJSON(t, srv.Handler(), "/v1/sweep", SweepRequest{
		Corridors: []int{2, 3, 4}, Lens: []int{6, 7, 9}, Units: 480, Points: 100, Horizon: 1200,
	}, nil)
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("oversized sweep: status %d, want 422: %s", w.Code, w.Body.String())
	}
}

// TestVarsEndpoint: counters are served as JSON — flat server counters
// plus the nested per-client object.
func TestVarsEndpoint(t *testing.T) {
	srv := New(Config{})
	w := httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/debug/vars", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	vars := decodeAs[map[string]json.RawMessage](t, w)
	if _, ok := vars["requests_total"]; !ok {
		t.Errorf("vars missing requests_total: %v", vars)
	}
	var clients map[string]ClientStats
	if err := json.Unmarshal(vars["clients"], &clients); err != nil {
		t.Errorf("vars clients object: %v", err)
	}
}

// TestMetricsEndpoint: the Prometheus text exposition must carry every
// counter from /debug/vars under the wspd_ namespace, with a matching value
// and a # TYPE line of the right kind, after real traffic has moved the
// counters off zero.
func TestMetricsEndpoint(t *testing.T) {
	srv := New(Config{})
	w := postJSON(t, srv.Handler(), "/v1/solve", SolveRequest{
		InstanceSpec: InstanceSpec{Instance: testInstance(t)},
	}, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("solve: status %d: %s", w.Code, w.Body.String())
	}

	w = httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/debug/vars", nil))
	rawVars := decodeAs[map[string]json.RawMessage](t, w)
	vars := make(map[string]int64)
	for name, raw := range rawVars {
		if name == "clients" {
			continue // nested object, checked by TestPerClientMetrics
		}
		var v int64
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("vars %s: %v", name, err)
		}
		vars[name] = v
	}

	w = httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("metrics: status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content-type %q", ct)
	}
	body := w.Body.String()
	if vars["requests_total"] == 0 {
		t.Fatal("solve left requests_total at zero; counter wiring regressed")
	}
	for name, val := range vars {
		kind := "counter"
		if !strings.HasSuffix(name, "_total") {
			kind = "gauge"
		}
		if want := fmt.Sprintf("# TYPE wspd_%s %s\n", name, kind); !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", strings.TrimSpace(want))
		}
		// The sample line must match the JSON value. The snapshots are taken
		// back to back with no solve in flight, so the counters are stable.
		if want := fmt.Sprintf("wspd_%s %d\n", name, val); !strings.Contains(body, want) {
			t.Errorf("metrics missing sample %q; body:\n%s", strings.TrimSpace(want), body)
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
