// Package server implements wspd, the fault-tolerant long-running WSP
// solve service: an HTTP+JSON front over the wsp facade with admission
// control (bounded in-flight slots + per-client work budgets), a merged
// server/client deadline policy, a graceful-degradation ladder, per-request
// panic isolation, a warm-model cache keyed by topology signature, and
// drain-clean shutdown.
//
// The service's contract with the solver library is deliberately thin:
// every admitted, undegraded, undisturbed request is answered by exactly
// the same wsp.Solver call a library user would make, so responses are
// bit-identical to direct solves — robustness is layered AROUND the
// deterministic core, never inside it.
package server

import (
	"context"
	"net"
	"net/http"
	"sync"
	"sync/atomic"

	"repro/wsp"
)

// Server is one wspd instance. Create with New, expose with Handler or
// Serve, stop with Drain.
type Server struct {
	cfg   Config
	met   metrics
	adm   *admission
	deg   *degrader
	cache *scratchCache
	mux   *http.ServeMux

	draining atomic.Bool

	mu      sync.Mutex
	solvers map[wsp.Config]*wsp.Solver // one long-lived Solver per resolved config
	maps    map[string]*wsp.Map        // builtin maps, built once

	hsMu sync.Mutex
	hs   *http.Server // set by Serve, consumed by Drain
}

// New builds a Server from cfg (zero-value fields take production
// defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		adm:     newAdmission(cfg),
		deg:     newDegrader(cfg),
		solvers: make(map[wsp.Config]*wsp.Solver),
		maps:    make(map[string]*wsp.Map),
	}
	s.cache = newScratchCache(cfg, &s.met)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/lifelong", s.handleLifelong)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /debug/vars", s.handleVars)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s
}

// Handler returns the service's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics snapshots the service counters.
func (s *Server) Metrics() map[string]int64 { return s.met.snapshot() }

// solverFor returns the long-lived Solver for a resolved configuration.
// Solvers are config-keyed and never discarded: the config space reachable
// from requests is tiny (strategy × exact × the ladder's budget rungs),
// and wsp.Solver is stateless apart from its scratch pool.
func (s *Server) solverFor(cfg wsp.Config) *wsp.Solver {
	s.mu.Lock()
	defer s.mu.Unlock()
	sv := s.solvers[cfg]
	if sv == nil {
		sv = wsp.NewFromConfig(cfg)
		s.solvers[cfg] = sv
	}
	return sv
}

// builtinMap builds (once) and returns a named evaluation map. Built maps
// are shared across requests: a traffic.System is read-only after Build.
func (s *Server) builtinMap(name string) (*wsp.Map, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m := s.maps[name]; m != nil {
		return m, nil
	}
	m, err := wsp.BuiltinMap(name)
	if err != nil {
		return nil, err
	}
	s.maps[name] = m
	return m, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Serve accepts connections on l until Drain (or a listener error). It
// returns http.ErrServerClosed after a clean drain, mirroring
// http.Server.Serve.
func (s *Server) Serve(l net.Listener) error {
	hs := &http.Server{Handler: s.mux}
	s.hsMu.Lock()
	s.hs = hs
	s.hsMu.Unlock()
	s.logf("wspd: serving on %s (max in-flight %d)", l.Addr(), s.cfg.MaxInFlight)
	return hs.Serve(l)
}

// ListenAndServe binds addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Drain shuts the service down cleanly: admission stops first (readyz
// flips to 503, new solve requests are rejected with code "draining"),
// then in-flight solves run to completion — http.Server.Shutdown waits for
// handlers without cancelling their request contexts, so every admitted
// request still gets its answer. When ctx expires before the drain
// completes, remaining connections are force-closed and ctx's error is
// returned; nil means drain-clean.
func (s *Server) Drain(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil // second drain: the first one owns the shutdown
	}
	s.met.drains.Add(1)
	s.logf("wspd: draining (%d solves in flight)", s.met.inFlight.Load())
	s.hsMu.Lock()
	hs := s.hs
	s.hsMu.Unlock()
	if hs == nil {
		return nil // never served (Handler-only embedding)
	}
	if err := hs.Shutdown(ctx); err != nil {
		s.logf("wspd: drain deadline hit, forcing close: %v", err)
		hs.Close()
		return err
	}
	s.logf("wspd: drained clean")
	return nil
}
