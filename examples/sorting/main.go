// Sorting-center walkthrough (§V): chutes are modeled as shelves with
// effectively unlimited stock and bins as stations; solving the WSP then
// yields the package-sorting plan after swapping pickup and drop-off roles.
// This example renders the map (the Fig. 5 analogue) and compares the
// contract pipeline against the Iterated ECBS baseline on the same tasks.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/wsp"
)

func main() {
	ctx := context.Background()
	m, err := wsp.SortingCenter()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sorting center traffic system ('!' = component exit):")
	fmt.Print(wsp.RenderTraffic(m.S))

	const T = 3600
	wl, err := wsp.UniformWorkload(m.W, 480)
	if err != nil {
		log.Fatal(err)
	}
	solver := wsp.New()
	start := time.Now()
	res, err := solver.Solve(ctx, wsp.Instance{System: m.S, Workload: wl, Horizon: T})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncontract pipeline: 480 packages sorted by t=%d, %d agents, total %v\n",
		res.Sim.ServicedAt, res.Stats.Agents, time.Since(start).Round(time.Millisecond))

	// Baseline comparison on a scaled-down task set: give Iterated ECBS the
	// same shelf->station visit structure for a subset of the agents, and
	// watch the search effort climb.
	fmt.Println("\nIterated ECBS baseline (same visit sequences, growing team):")
	for _, agents := range []int{2, 4, 8, 12} {
		starts, goals := baselineTasks(m, res, agents, 3)
		bStart := time.Now()
		sol, err := wsp.IteratedECBS(m.W.Graph, starts, goals, wsp.IteratedOptions{
			Window: 20,
			Limits: wsp.MAPFLimits{MaxExpansions: 500_000, Horizon: T},
		})
		status := "ok"
		if err != nil {
			status = err.Error()
		}
		fmt.Printf("  %2d agents: %9d expansions, %8v  [%s]\n",
			agents, sol.Expansions, time.Since(bStart).Round(time.Millisecond), status)
	}
}

// baselineTasks derives start positions and shelf/station visit sequences
// for the first n agents of the solved plan, repeated `tours` times. Start
// cells are deduplicated (MAPF starts must be distinct).
func baselineTasks(m *wsp.Map, res *wsp.Result, n, tours int) ([]wsp.VertexID, [][]wsp.VertexID) {
	var starts []wsp.VertexID
	var goals [][]wsp.VertexID
	used := make(map[wsp.VertexID]bool)
	count := 0
	for _, cyc := range res.CycleSet.Cycles {
		for _, leg := range cyc.Legs {
			if count == n {
				return starts, goals
			}
			row := m.S.Components[cyc.Components[leg.PickIdx]]
			queue := m.S.Components[cyc.Components[leg.DropIdx]]
			// Distinct shelf and station goals per agent where possible:
			// agents sharing a parking goal make the MAPF instance
			// unsolvable (both must end on the same cell).
			shelf := row.Cells[(1+2*count)%row.Len()]
			station := m.W.Stations[count%len(m.W.Stations)]
			start := wsp.NoVertex
			for _, cells := range [][]wsp.VertexID{queue.Cells, row.Cells} {
				for _, v := range cells {
					if !used[v] {
						start = v
						break
					}
				}
				if start != wsp.NoVertex {
					break
				}
			}
			if start == wsp.NoVertex {
				continue
			}
			used[start] = true
			starts = append(starts, start)
			var seq []wsp.VertexID
			for t := 0; t < tours; t++ {
				seq = append(seq, shelf, station)
			}
			goals = append(goals, seq)
			count++
		}
	}
	return starts, goals
}
