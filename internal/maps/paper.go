package maps

// The three §V evaluation maps. Counts differ from the paper's cell totals
// (our generator's aisle geometry is fixed), but shelf, station, and product
// counts match the paper's figures (see DESIGN.md).

// Fulfillment1 models the real Kiva fulfillment center of [10]:
// 560 shelves, 4 stations, 55 unique products.
//
// Sizing rule (see DESIGN.md): every shelf-bearing aisle needs one concurrent
// agent cycle for the whole horizon, and all of a stripe's cycles pass its
// first corridor crossing, so aisles-per-stripe must not exceed the corridor
// width V. Here 3 aisles ≤ V = 3.
func Fulfillment1() (*Map, error) {
	return Generate(Params{
		Stripes:           4,
		Rows:              3,
		BayWidth:          35,
		CorridorWidth:     3,
		MaxComponentLen:   7,
		DoubleShelfRows:   true, // 4 stripes × 35 cols × 2 bands × 2 rows = 560
		NumProducts:       55,
		UnitsPerShelf:     30,
		StationsPerStripe: 1,
	})
}

// Fulfillment2 models the synthetic fulfillment center based on [10]:
// 240 shelves, 1 station (modeled as two picking berths so its throughput
// matches the paper's demand rate), 120 unique products.
func Fulfillment2() (*Map, error) {
	return Generate(Params{
		Stripes:           4,
		Rows:              4,
		BayWidth:          10,
		CorridorWidth:     4, // 4 shelf aisles per stripe need V = 4
		MaxComponentLen:   12,
		DoubleShelfRows:   true, // 4 × 10 × 3 × 2 = 240
		NumProducts:       120,
		UnitsPerShelf:     30,
		StationsPerStripe: 1, // 4 berths = the single station's picking area
	})
}

// SortingCenter models the package sorting center of [11]: 32 chutes
// (shelves with effectively unlimited stock) and 4 bins (stations). Table I
// runs 36 unique products on it; chutes hold products round-robin.
func SortingCenter() (*Map, error) {
	return Generate(Params{
		Stripes:           4,
		Rows:              2,
		BayWidth:          8,
		CorridorWidth:     2,
		MaxComponentLen:   6,
		DoubleShelfRows:   false, // 4 stripes × 8 cols × 1 band = 32 chutes
		NumProducts:       36,
		UnitsPerShelf:     200, // "unlimited" packages per chute
		StationsPerStripe: 1,
	})
}
