package lp

import (
	"context"
	"errors"
	"fmt"
)

// Sentinel errors of the solver layer. They are the roots of the public
// error taxonomy: every layer above (contracts, flow, core, the wsp facade)
// wraps them with %w so errors.Is works end to end, and the wsp package
// re-exports them as wsp.ErrCanceled / wsp.ErrBudgetExhausted.
var (
	// ErrCanceled reports that a solve was abandoned because its
	// cancellation channel (ILPOptions.Cancel / SolveOptions.Cancel,
	// normally a context's Done channel) fired. The cancellation check
	// piggybacks on the MaxWork accounting tick, so a running solve
	// returns within one pivot of the channel closing, and a solve that
	// is never cancelled executes the exact same arithmetic as one with
	// no channel installed.
	ErrCanceled = errors.New("lp: solve canceled")

	// ErrBudgetExhausted reports that a branch-and-bound search ran out
	// of its deterministic node (MaxNodes) or work (MaxWork) budget
	// before reaching a decision.
	ErrBudgetExhausted = errors.New("lp: search budget exhausted")

	// ErrUnboundedIntDomain reports that branch and bound marched too far
	// into the open side of a one-sided integer domain: the variable is
	// missing a bound, no finite implied bound was derivable from the
	// constraint rows (see integerBox in intbox.go), and the branching
	// chain kept tightening into the open direction — the signature of an
	// integer-infeasible instance whose relaxations stay feasible forever.
	// The search rejects the solve with this error instead of hanging.
	// Solves that decide before branching runs away (unbounded or
	// infeasible relaxations, entailment probes, feasibility first-wins)
	// are unaffected by the guard.
	ErrUnboundedIntDomain = errors.New("lp: integer variable with unbounded domain")
)

// WrapCancelCause annotates a cancellation error with its context's cancel
// cause, so callers can tell a deadline expiry apart from an explicit
// cancellation. The solver layer itself sees only a closed channel — WHY it
// closed lives in the context — so every ctx-bearing layer that surfaces an
// error wrapping ErrCanceled routes it through this helper. After that,
// errors.Is(err, context.DeadlineExceeded) holds exactly when the context's
// deadline fired (and likewise for any custom context.CancelCause), while a
// plain context.Canceled adds nothing. Non-cancellation errors and nil pass
// through untouched.
func WrapCancelCause(ctx context.Context, err error) error {
	if err == nil || ctx == nil || !errors.Is(err, ErrCanceled) {
		return err
	}
	cause := context.Cause(ctx)
	if cause == nil || cause == context.Canceled || errors.Is(err, cause) {
		return err
	}
	return fmt.Errorf("%w: %w", cause, err)
}
