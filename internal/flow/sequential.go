package flow

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/flownet"
	"repro/internal/lp"
	"repro/internal/traffic"
	"repro/internal/warehouse"
)

// SynthesizeSequential synthesizes an agent flow set by commodity
// decomposition. The §IV-D constraint system projected onto a single
// commodity is a network-flow problem: conservation at every component,
// shared intake capacities ⌊|Ci|/2⌋, sources at shelving rows (fin) and
// sinks at station queues (fout). Each product's demand rate is routed with
// min-cost flow over the shared residual capacities (cheapest = fewest
// hops), then the empty-agent return flow is balanced exactly the same way.
//
// The decomposition is greedy in product order (largest demand first) and
// therefore incomplete in principle — a routing order can exhaust capacity
// another order would have preserved — but each single-commodity step is
// exact, and the resulting Set satisfies the identical contract system
// (VerifyContracts), just like the monolithic ILP path.
// Cancelling ctx aborts between single-commodity routing steps; the error
// wraps lp.ErrCanceled.
func SynthesizeSequential(ctx context.Context, s *traffic.System, wl warehouse.Workload, T int, opts Options) (*Set, error) {
	margin := opts.WarmupMargin
	if margin == 0 {
		margin = autoMargin(s, T)
	}
	tc, qc, qeff, err := periods(s, T, margin)
	if err != nil {
		return nil, err
	}
	set := newSet(s, tc, qc, qeff)
	p := s.W.NumProducts
	empty := set.EmptyIndex()
	n := s.NumComponents()

	// Demand allocation: split each product's total demand over its stocked
	// shelving rows (never exceeding stock), then convert to per-period
	// rates d = ceil(share / qeff).
	type srcDemand struct {
		row   traffic.ComponentID
		rate  int
		quota int
	}
	demands := make([][]srcDemand, p)
	rows := s.ShelvingRows()
	for k := 0; k < p; k++ {
		remaining := wl.Units[k]
		if remaining == 0 {
			continue
		}
		// Prefer rows with the most stock: fewer cycles, shorter warm-up.
		stocked := make([]traffic.ComponentID, 0, 4)
		for _, ri := range rows {
			if s.UnitsAt(ri, warehouse.ProductID(k)) > 0 {
				stocked = append(stocked, ri)
			}
		}
		sort.Slice(stocked, func(a, b int) bool {
			ua := s.UnitsAt(stocked[a], warehouse.ProductID(k))
			ub := s.UnitsAt(stocked[b], warehouse.ProductID(k))
			if ua != ub {
				return ua > ub
			}
			return stocked[a] < stocked[b]
		})
		for _, ri := range stocked {
			if remaining == 0 {
				break
			}
			share := s.UnitsAt(ri, warehouse.ProductID(k))
			if share > remaining {
				share = remaining
			}
			rate := (share + qeff - 1) / qeff
			demands[k] = append(demands[k], srcDemand{row: ri, rate: rate, quota: share})
			remaining -= share
		}
		if remaining > 0 {
			return nil, fmt.Errorf("flow: product %d demand %d exceeds total shelved stock", k, wl.Units[k])
		}
	}

	// Residual intake capacity per component, shared by every commodity.
	residual := make([]int64, n)
	for i, c := range s.Components {
		residual[i] = int64(c.Capacity())
	}

	// Node-split flow network: in_i = 2i, out_i = 2i+1, source = 2n,
	// sink = 2n+1. The capacity arc in_i -> out_i holds the shared residual;
	// it is rebuilt for each commodity from the running residuals.
	source, sink := 2*n, 2*n+1
	// blockQueueExits removes the outgoing arcs of station queues: an agent
	// that enters a queue while carrying a product always drops it there, so
	// product commodities must terminate at the first queue they reach.
	buildNet := func(blockQueueExits bool) (*flownet.Graph, []flownet.EdgeID, []flownet.EdgeID) {
		g := flownet.NewGraph(2*n + 2)
		capArcs := make([]flownet.EdgeID, n)
		for i := 0; i < n; i++ {
			capArcs[i] = g.AddEdge(2*i, 2*i+1, residual[i], 0)
		}
		edgeArcs := make([]flownet.EdgeID, len(set.Edges))
		for e, edge := range set.Edges {
			if blockQueueExits && s.Components[edge[0]].Kind == traffic.StationQueue {
				edgeArcs[e] = -1
				continue
			}
			// Generous per-arc bound; the binding constraints are the intake
			// capacities.
			edgeArcs[e] = g.AddEdge(2*int(edge[0])+1, 2*int(edge[1]), int64(n*n+1), 1)
		}
		return g, capArcs, edgeArcs
	}

	// Route products, largest total demand first.
	order := make([]int, 0, p)
	for k := 0; k < p; k++ {
		if wl.Units[k] > 0 {
			order = append(order, k)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		if wl.Units[order[a]] != wl.Units[order[b]] {
			return wl.Units[order[a]] > wl.Units[order[b]]
		}
		return order[a] < order[b]
	})

	queues := s.StationQueues()
	for _, k := range order {
		select {
		case <-cancelOf(ctx):
			return nil, fmt.Errorf("flow: sequential synthesis abandoned: %w", lp.ErrCanceled)
		default:
		}
		g, capArcs, edgeArcs := buildNet(true)
		var want int64
		for _, d := range demands[k] {
			// Flow starts at the row's out-node: the pickup happens inside
			// the row, so the row's own intake capacity is charged to the
			// empty agents that arrive there, not to the product commodity.
			g.AddEdge(source, 2*int(d.row)+1, int64(d.rate), 0)
			want += int64(d.rate)
		}
		for _, q := range queues {
			// Drop-offs end at the queue's out-node (after consuming the
			// queue's intake capacity on the way in).
			g.AddEdge(2*int(q)+1, sink, int64(n*n+1), 0)
		}
		got, _ := g.MinCostFlow(source, sink, want)
		if got < want {
			return nil, &InfeasibleError{Cert: CertMaybeFeasible, Horizon: T,
				Reason: fmt.Sprintf("cannot route %d units/period of product %d (capacity exhausted after %d)", want, k, got)}
		}
		harvest(set, g, capArcs, edgeArcs, residual, k)
		for _, d := range demands[k] {
			set.Fin[d.row][k] += d.rate
			set.Quota[d.row][k] += d.quota
		}
	}
	// Recompute fout from the final edge flows: everything that arrives at a
	// queue carrying k is dropped there (queues re-emit agents empty).
	for _, q := range queues {
		for _, e := range s.InEdgeIDs(q) {
			for k := 0; k < p; k++ {
				set.Fout[q][k] += set.F[e][k]
			}
		}
	}

	// Empty return flow: supply Σ_k fout at queues, demand Σ_k fin at rows.
	g, capArcs, edgeArcs := buildNet(false)
	var want int64
	for _, q := range queues {
		supply := 0
		for k := 0; k < p; k++ {
			supply += set.Fout[q][k]
		}
		if supply > 0 {
			g.AddEdge(source, 2*int(q)+1, int64(supply), 0)
		}
	}
	for _, ri := range rows {
		need := 0
		for k := 0; k < p; k++ {
			need += set.Fin[ri][k]
		}
		if need > 0 {
			g.AddEdge(2*int(ri)+1, sink, int64(need), 0)
			want += int64(need)
		}
	}
	got, _ := g.MinCostFlow(source, sink, want)
	if got < want {
		return nil, &InfeasibleError{Cert: CertMaybeFeasible, Horizon: T,
			Reason: fmt.Sprintf("cannot route empty-agent return flow (%d of %d units/period)", got, want)}
	}
	harvest(set, g, capArcs, edgeArcs, residual, empty)

	if errs := set.Check(wl); len(errs) > 0 {
		return nil, fmt.Errorf("flow: sequential synthesis produced an invalid set: %w", errs[0])
	}
	return set, nil
}

// harvest copies the routed commodity flows out of the network into the Set
// and decrements the shared residual intake capacities. edgeArcs entries of
// -1 mark arcs excluded from this commodity's network.
func harvest(set *Set, g *flownet.Graph, capArcs, edgeArcs []flownet.EdgeID, residual []int64, k int) {
	for i := range capArcs {
		residual[i] -= g.Flow(capArcs[i])
	}
	for e := range edgeArcs {
		if edgeArcs[e] < 0 {
			continue
		}
		set.F[e][k] += int(g.Flow(edgeArcs[e]))
	}
}
