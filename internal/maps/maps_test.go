package maps

import (
	"testing"

	"repro/internal/traffic"
	"repro/internal/warehouse"
)

func TestGenerateSmall(t *testing.T) {
	m, err := Generate(Params{
		Stripes: 1, Rows: 2, BayWidth: 4, CorridorWidth: 2,
		NumProducts: 3, UnitsPerShelf: 10, StationsPerStripe: 1,
		DoubleShelfRows: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(m.Shelves), 4*1*2; got != want { // B*S*(R-1)*2
		t.Errorf("shelves = %d, want %d", got, want)
	}
	if got := len(m.W.Stations); got != 1 {
		t.Errorf("stations = %d, want 1", got)
	}
	st := traffic.Summarize(m.S)
	if st.ShelvingRows == 0 || st.StationQueues == 0 || st.Transports == 0 {
		t.Errorf("missing component kinds: %+v", st)
	}
	// All stock accounted for.
	total := 0
	for k := 0; k < m.W.NumProducts; k++ {
		total += m.W.TotalStock(warehouse.ProductID(k))
	}
	if want := len(m.Shelves) * 10; total != want {
		t.Errorf("total stock = %d, want %d", total, want)
	}
}

func TestGenerateValidatesParams(t *testing.T) {
	bad := []Params{
		{Stripes: 0, Rows: 2, BayWidth: 4, CorridorWidth: 2, NumProducts: 1, UnitsPerShelf: 1, StationsPerStripe: 1},
		{Stripes: 1, Rows: 1, BayWidth: 4, CorridorWidth: 2, NumProducts: 1, UnitsPerShelf: 1, StationsPerStripe: 1},
		{Stripes: 1, Rows: 2, BayWidth: 1, CorridorWidth: 2, NumProducts: 1, UnitsPerShelf: 1, StationsPerStripe: 1},
		{Stripes: 1, Rows: 2, BayWidth: 4, CorridorWidth: 1, NumProducts: 1, UnitsPerShelf: 1, StationsPerStripe: 1},
		{Stripes: 1, Rows: 2, BayWidth: 4, CorridorWidth: 2, NumProducts: 0, UnitsPerShelf: 1, StationsPerStripe: 1},
		{Stripes: 1, Rows: 2, BayWidth: 4, CorridorWidth: 2, NumProducts: 1, UnitsPerShelf: 0, StationsPerStripe: 1},
		{Stripes: 1, Rows: 2, BayWidth: 4, CorridorWidth: 2, NumProducts: 1, UnitsPerShelf: 1, StationsPerStripe: 0},
	}
	for i, p := range bad {
		if _, err := Generate(p); err == nil {
			t.Errorf("case %d: bad params accepted", i)
		}
	}
	// Too many stations for the stripe mouth.
	if _, err := Generate(Params{
		Stripes: 1, Rows: 2, BayWidth: 4, CorridorWidth: 2,
		NumProducts: 1, UnitsPerShelf: 1, StationsPerStripe: 5,
	}); err == nil {
		t.Error("overfull station placement accepted")
	}
}

func TestPaperMapsMatchReportedCounts(t *testing.T) {
	cases := []struct {
		name     string
		build    func() (*Map, error)
		shelves  int
		stations int
		products int
	}{
		{"Fulfillment1", Fulfillment1, 560, 4, 55},
		{"Fulfillment2", Fulfillment2, 240, 4, 120}, // 1 station = 4 berths
		{"SortingCenter", SortingCenter, 32, 4, 36},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			if got := len(m.Shelves); got != tc.shelves {
				t.Errorf("shelves = %d, want %d", got, tc.shelves)
			}
			if got := len(m.W.Stations); got != tc.stations {
				t.Errorf("station berths = %d, want %d", got, tc.stations)
			}
			if got := m.W.NumProducts; got != tc.products {
				t.Errorf("products = %d, want %d", got, tc.products)
			}
			st := traffic.Summarize(m.S)
			t.Logf("%s: %d cells, %d components (%d rows, %d queues, %d transports), %d edges, tc=%d",
				tc.name, m.W.Graph.NumVertices(), st.Components, st.ShelvingRows, st.StationQueues, st.Transports, st.Edges, st.CycleTime)
			// Every product must be stocked.
			for k := 0; k < m.W.NumProducts; k++ {
				if m.W.TotalStock(warehouse.ProductID(k)) == 0 {
					t.Errorf("product %d unstocked", k)
				}
			}
		})
	}
}
