package wsp

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/lp"
)

// SweepSpec describes a co-design grid walk in the style of the paper's
// Fig. 5: corridor width × component-length cap, each generated topology
// evaluated against a rising series of workload levels.
type SweepSpec struct {
	// Corridors lists the corridor widths to walk (also sets aisle rows).
	Corridors []int
	// Lens lists the component-length caps to walk.
	Lens []int
	// Stripes and Products parameterize each generated topology.
	Stripes  int
	Products int
	// Units is the total demand at the top workload level; Points levels
	// are evaluated at units·i/points, i = 1..Points.
	Units  int
	Points int
	// Horizon is the timestep budget per evaluation.
	Horizon int
}

func (sp SweepSpec) validate() error {
	if len(sp.Corridors) == 0 || len(sp.Lens) == 0 {
		return fmt.Errorf("wsp: sweep needs at least one corridor width and one length cap")
	}
	if sp.Points < 1 {
		return fmt.Errorf("wsp: sweep points %d must be at least 1", sp.Points)
	}
	// units ≥ points keeps the level series units·i/points positive and
	// strictly increasing (each step adds at least one unit).
	if sp.Units < sp.Points {
		return fmt.Errorf("wsp: sweep units %d must be at least points %d", sp.Units, sp.Points)
	}
	return nil
}

// SweepPoint is one (topology, workload level) evaluation. An infeasible
// design point is an expected sweep outcome: Err is set and Result nil.
type SweepPoint struct {
	Units   int
	Result  *Result
	Err     error
	Elapsed time.Duration
}

// SweepCell is one topology of the grid with its evaluated level series.
type SweepCell struct {
	Corridor int
	MaxLen   int
	Stats    TrafficStats
	Points   []SweepPoint
}

// Sweep walks the co-design grid. Every topology's level series runs as
// one SolveBatch over the Solver's worker pool, so a worker's synthesis
// scratch is reused across the series. Cancelling ctx stops the walk at a
// topology boundary (in-flight evaluations abort within one work-budget
// tick): the completed cells are returned alongside an error wrapping
// ErrCanceled, so callers can flush partial results instead of losing the
// grid walked so far.
func (s *Solver) Sweep(ctx context.Context, spec SweepSpec) ([]SweepCell, error) {
	return s.SweepObserve(ctx, spec, nil)
}

// SweepObserve is Sweep with a per-cell callback: observe (when non-nil)
// is invoked synchronously with each cell as soon as its level series
// completes, before the next topology is generated. Streaming consumers
// (the /v1/sweep NDJSON endpoint) flush cells from the callback while the
// walk is still running; the full cell slice is returned at the end
// either way.
func (s *Solver) SweepObserve(ctx context.Context, spec SweepSpec, observe func(SweepCell)) ([]SweepCell, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	var cells []SweepCell
	for _, v := range spec.Corridors {
		for _, l := range spec.Lens {
			if err := ctx.Err(); err != nil {
				return cells, lp.WrapCancelCause(ctx,
					fmt.Errorf("wsp: sweep canceled after %d topologies: %w", len(cells), ErrCanceled))
			}
			m, err := GenerateMap(MapParams{
				Stripes: spec.Stripes, Rows: v, BayWidth: 12, CorridorWidth: v,
				MaxComponentLen: l, DoubleShelfRows: true,
				NumProducts: spec.Products, UnitsPerShelf: 30, StationsPerStripe: 1,
			})
			if err != nil {
				return cells, fmt.Errorf("wsp: sweep V=%d L=%d: %w", v, l, err)
			}
			insts := make([]Instance, 0, spec.Points)
			levels := make([]int, 0, spec.Points)
			for i := 1; i <= spec.Points; i++ {
				u := spec.Units * i / spec.Points
				wl, err := UniformWorkload(m.W, u)
				if err != nil {
					return cells, fmt.Errorf("wsp: sweep V=%d L=%d units=%d: %w", v, l, u, err)
				}
				levels = append(levels, u)
				insts = append(insts, Instance{System: m.S, Workload: wl, Horizon: spec.Horizon})
			}
			cell := SweepCell{Corridor: v, MaxLen: l, Stats: SummarizeTraffic(m.S)}
			hit := false
			for i, r := range s.SolveBatch(ctx, insts) {
				if r.Err != nil && errors.Is(r.Err, ErrCanceled) {
					hit = true
				}
				cell.Points = append(cell.Points, SweepPoint{
					Units: levels[i], Result: r.Res, Err: r.Err, Elapsed: r.Elapsed,
				})
			}
			if hit {
				// The batch drained under cancellation: its rows are
				// cancellation artifacts, not design verdicts — drop the
				// partial cell and report the completed ones. A cancel
				// that landed only after every slot finished affected
				// nothing, so that cell is kept (the next topology's
				// pre-check ends the walk).
				return cells, lp.WrapCancelCause(ctx,
					fmt.Errorf("wsp: sweep canceled after %d topologies: %w", len(cells), ErrCanceled))
			}
			cells = append(cells, cell)
			if observe != nil {
				observe(cell)
			}
		}
	}
	return cells, nil
}
