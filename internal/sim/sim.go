// Package sim executes warehouse plans step by step, validating the
// feasibility conditions of §III online and collecting the delivery and
// congestion statistics the evaluation figures report.
package sim

import (
	"repro/internal/warehouse"
)

// Result summarizes one simulation run.
type Result struct {
	// Delivered counts units dropped at stations per product.
	Delivered []int
	// DeliveryTimes records the timestep of every delivery, in order.
	DeliveryTimes []int
	// Moves counts cell transitions; Waits counts timesteps agents spent
	// stationary. Moves+Waits = agents × (T-1).
	Moves, Waits int
	// Carrying counts agent-timesteps spent loaded — the utilization
	// numerator (Carrying / (agents × T) is the fraction of time agents
	// were doing useful transport).
	Carrying int
	// Violations lists every feasibility breach (empty for valid plans).
	Violations []warehouse.PlanViolation
	// ServicedAt is the first timestep by which the given workload was fully
	// delivered, or -1.
	ServicedAt int
}

// Run replays plan against the warehouse and workload.
func Run(w *warehouse.Warehouse, plan *warehouse.Plan, wl warehouse.Workload) Result {
	res := Result{
		Delivered:  make([]int, w.NumProducts),
		ServicedAt: -1,
	}
	res.Violations = warehouse.ValidatePlan(w, plan)
	T := plan.Horizon()
	c := plan.NumAgents()
	serviced := func() bool {
		for k, want := range wl.Units {
			if res.Delivered[k] < want {
				return false
			}
		}
		return true
	}
	if serviced() {
		res.ServicedAt = 0
	}
	for t := 0; t+1 < T; t++ {
		for i := 0; i < c; i++ {
			cur, next := plan.States[i][t], plan.States[i][t+1]
			if cur.Vertex == next.Vertex {
				res.Waits++
			} else {
				res.Moves++
			}
			if cur.Carried != warehouse.NoProduct {
				res.Carrying++
			}
			if cur.Carried != warehouse.NoProduct && next.Carried == warehouse.NoProduct && w.IsStation(cur.Vertex) {
				res.Delivered[cur.Carried]++
				res.DeliveryTimes = append(res.DeliveryTimes, t+1)
			}
		}
		if res.ServicedAt < 0 && serviced() {
			res.ServicedAt = t + 1
		}
	}
	return res
}

// Throughput bins DeliveryTimes into windows of the given width and returns
// units delivered per window — the series behind throughput-over-time plots.
func Throughput(res Result, horizon, window int) []int {
	if window <= 0 || horizon <= 0 {
		return nil
	}
	w := NewWindow(window)
	for _, t := range res.DeliveryTimes {
		if t >= 0 && t < horizon {
			w.Observe(t)
		}
	}
	bins := w.bins
	for n := (horizon + window - 1) / window; len(bins) < n; {
		bins = append(bins, 0)
	}
	return bins
}

// Window is the streaming form of Throughput: a bin accumulator that
// accepts delivery timestamps one at a time, in any order, and grows its
// bin series on demand. Lifelong observers feed it global delivery times
// (epoch start + changeover + epoch-relative delivery time) so a
// throughput-over-time series is available while the run is still going.
type Window struct {
	width int
	bins  []int
}

// NewWindow returns a Window binning timestamps into buckets of the given
// width; a non-positive width is treated as 1.
func NewWindow(width int) *Window {
	if width <= 0 {
		width = 1
	}
	return &Window{width: width}
}

// Width reports the bin width in timesteps.
func (w *Window) Width() int { return w.width }

// Observe records one delivery at timestep t. Negative timestamps are
// ignored.
func (w *Window) Observe(t int) {
	if t < 0 {
		return
	}
	i := t / w.width
	for len(w.bins) <= i {
		w.bins = append(w.bins, 0)
	}
	w.bins[i]++
}

// Bins returns a copy of the units-per-window series observed so far. The
// last bin is the one holding the latest observed timestamp; trailing empty
// windows are not materialized.
func (w *Window) Bins() []int {
	return append([]int(nil), w.bins...)
}

// Total reports the number of observations across all bins.
func (w *Window) Total() int {
	total := 0
	for _, b := range w.bins {
		total += b
	}
	return total
}
