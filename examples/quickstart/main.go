// Quickstart: build a small warehouse, design its traffic system, and solve
// a WSP instance end to end — the five-minute tour of the library.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/traffic"
	"repro/internal/warehouse"
)

func main() {
	// A 10x6 floorplan: a one-way ring around an interior block. '@' cells
	// are shelves (obstacles holding stock), 'T' is a packing station.
	g, _, stationCoords, err := grid.Parse(
		"..........\n" +
			".@@######.\n" +
			".########.\n" +
			".########.\n" +
			".########.\n" +
			"....T.....")
	if err != nil {
		log.Fatal(err)
	}

	// Shelf-access vertices: the aisle cells north of the two shelves.
	shelfAccess := []grid.VertexID{
		g.At(grid.Coord{X: 1, Y: 5}),
		g.At(grid.Coord{X: 2, Y: 5}),
	}
	var stations []grid.VertexID
	for _, c := range stationCoords {
		stations = append(stations, g.At(c))
	}
	// Two products, 300 units each: Λ = [[300 0] [0 300]].
	w, err := warehouse.New(g, shelfAccess, stations, 2, [][]int{{300, 0}, {0, 300}})
	if err != nil {
		log.Fatal(err)
	}

	// Design the traffic system: four directed lanes forming the ring.
	at := func(x, y int) grid.VertexID { return g.At(grid.Coord{X: x, Y: y}) }
	var south, east, north, west []grid.VertexID
	for x := 0; x <= 9; x++ {
		south = append(south, at(x, 0))
	}
	for y := 1; y <= 5; y++ {
		east = append(east, at(9, y))
	}
	for x := 8; x >= 0; x-- {
		north = append(north, at(x, 5))
	}
	for y := 4; y >= 1; y-- {
		west = append(west, at(0, y))
	}
	sys, err := traffic.Build(w, [][]grid.VertexID{south, east, north, west})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("traffic system:")
	fmt.Print(traffic.Render(sys))

	// The WSP instance: bring 12 units of product 0 and 7 of product 1 to
	// the station within 800 timesteps.
	wl, err := warehouse.NewWorkload(w, []int{12, 7})
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Solve(sys, wl, 800, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsolved: %d agents in %d cycles, workload serviced at timestep %d\n",
		res.Stats.Agents, len(res.CycleSet.Cycles), res.Sim.ServicedAt)
	fmt.Printf("synthesis %v, realization %v, delivered %v\n",
		res.Timing.Synthesis, res.Timing.Realize, res.Sim.Delivered)
}
