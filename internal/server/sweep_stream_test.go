package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/server/faultinject"
)

// sweepStreamRequest is the canonical two-topology streaming sweep: one
// corridor width, two length caps, two workload levels each.
func sweepStreamRequest() SweepRequest {
	return SweepRequest{
		Corridors: []int{2}, Lens: []int{6, 7},
		Units: 60, Points: 2, Horizon: 1200, Stream: true,
	}
}

// TestSweepStreamsCells is the streaming contract: cell lines are flushed
// while the walk is still going (cell 1's line is readable while cell 2 is
// stalled on the fault hook), the terminal summary line closes the stream,
// and the streamed cells match the non-streaming response bit-for-bit.
// Hook call order on /v1/sweep: 1 = pre-run, 2 = after cell 1's solve
// (before its line), 3 = after cell 2's solve.
func TestSweepStreamsCells(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	srv := New(Config{Fault: stallHook(3, started, release)})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)
	defer srv.Drain(context.Background())

	buf, err := json.Marshal(sweepStreamRequest())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+l.Addr().String()+"/v1/sweep", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content-type %q, want application/x-ndjson", ct)
	}

	// Cell 1's line must arrive while the walk is stalled before cell 2's
	// line — streaming, not buffer-then-dump.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first line: %v", sc.Err())
	}
	<-started // the walk is provably mid-flight: stalled after cell 2's solve
	var first SweepCellLine
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatalf("first line %q: %v", sc.Text(), err)
	}
	if first.Type != "cell" || first.Corridor != 2 || first.MaxLen != 6 {
		t.Fatalf("first line = %+v, want cell V=2 L=6", first)
	}
	if len(first.Points) != 2 {
		t.Fatalf("cell 1 has %d points, want 2", len(first.Points))
	}
	close(release)

	var lines []json.RawMessage
	for sc.Scan() {
		lines = append(lines, append(json.RawMessage(nil), sc.Bytes()...))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines after cell 1, want 2 (cell 2 + summary)", len(lines))
	}
	var second SweepCellLine
	if err := json.Unmarshal(lines[0], &second); err != nil || second.Type != "cell" || second.MaxLen != 7 {
		t.Fatalf("second line %s: %+v (%v)", lines[0], second, err)
	}
	var sum SweepSummaryLine
	if err := json.Unmarshal(lines[1], &sum); err != nil || sum.Type != "summary" {
		t.Fatalf("last line %s: %v", lines[1], err)
	}
	if !sum.OK || sum.Degraded || sum.Cells != 2 {
		t.Fatalf("summary = %+v, want ok, undegraded, 2 cells", sum)
	}

	// The streamed cells answer exactly what the non-streaming endpoint
	// returns for the same grid.
	plain := sweepStreamRequest()
	plain.Stream = false
	var sr SweepResponse
	w := postJSON(t, srv.Handler(), "/v1/sweep", plain, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("plain sweep: status %d: %s", w.Code, w.Body.String())
	}
	sr = decodeAs[SweepResponse](t, w)
	if got := []SweepCellResult{first.SweepCellResult, second.SweepCellResult}; !reflect.DeepEqual(got, sr.Cells) {
		t.Errorf("streamed cells %+v diverge from plain response %+v", got, sr.Cells)
	}
	if m := srv.Metrics(); m["completed_total"] != 2 {
		t.Errorf("completed_total = %d, want 2", m["completed_total"])
	}
}

// TestSweepStreamInBandError: a failure after the 200 is committed travels
// as an in-band "error" line carrying the taxonomy code and the count of
// cells already streamed — the run does not count as completed.
func TestSweepStreamInBandError(t *testing.T) {
	var seen atomic.Int64
	boom := errors.New("injected mid-walk fault")
	srv := New(Config{
		Fault: func(ctx context.Context, _ faultinject.Info) error {
			if seen.Add(1) == 3 { // after cell 2's solve, cell 1 already streamed
				return boom
			}
			return nil
		},
	})
	w := postJSON(t, srv.Handler(), "/v1/sweep", sweepStreamRequest(), nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d (committed before the fault): %s", w.Code, w.Body.String())
	}
	sc := bufio.NewScanner(w.Body)
	if !sc.Scan() {
		t.Fatalf("no first line: %v", sc.Err())
	}
	var cell SweepCellLine
	if err := json.Unmarshal(sc.Bytes(), &cell); err != nil || cell.Type != "cell" {
		t.Fatalf("first line %q: %v", sc.Text(), err)
	}
	if !sc.Scan() {
		t.Fatalf("no error line: %v", sc.Err())
	}
	var el SweepErrorLine
	if err := json.Unmarshal(sc.Bytes(), &el); err != nil || el.Type != "error" {
		t.Fatalf("second line %q: %v", sc.Text(), err)
	}
	if el.Cells != 1 || el.Code == "" || el.Error == "" {
		t.Errorf("error line = %+v, want 1 streamed cell and a taxonomy code", el)
	}
	if sc.Scan() {
		t.Errorf("unexpected line after the error line: %q", sc.Text())
	}
	if m := srv.Metrics(); m["completed_total"] != 0 {
		t.Errorf("completed_total = %d, want 0", m["completed_total"])
	}
}

// TestSweepStreamPreStreamError: a failure before any cell line keeps the
// normal error envelope — stream mode does not change the pre-commit
// contract.
func TestSweepStreamPreStreamError(t *testing.T) {
	srv := New(Config{Fault: faultinject.Times(1, faultinject.Panic("injected solver bug"))})
	w := postJSON(t, srv.Handler(), "/v1/sweep", sweepStreamRequest(), nil)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", w.Code, w.Body.String())
	}
	if resp := decodeAs[ErrorResponse](t, w); resp.Code != "panic" {
		t.Errorf("code %q, want panic", resp.Code)
	}
}
