package sim

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/warehouse"
)

// Failure freezes one agent in place: from wall timestep At, agent Agent
// does not move for Duration steps (0 = forever). Frozen agents still
// occupy their cell, so followers queue up behind them.
type Failure struct {
	Agent    int
	At       int
	Duration int
}

// ExecResult reports an ExecuteMCP run.
type ExecResult struct {
	// Delivered counts units dropped at stations per product.
	Delivered []int
	// ServicedAt is the wall timestep the workload completed, or -1.
	ServicedAt int
	// Dilation is wall steps used minus the plan's horizon (≥ 0 when
	// failures delay execution; execution without failures tracks the plan
	// exactly, so dilation 0).
	Dilation int
	// Stalled reports that execution reached a state where no agent could
	// ever move again before the workload completed.
	Stalled bool
	// Waits counts agent-steps spent blocked behind another agent.
	Waits int
}

// ExecuteMCP replays a plan under the minimal-communication execution
// policy: each agent follows its planned cell sequence in order, advancing
// one step per wall timestep whenever its next planned cell is free, and
// waiting otherwise. Product state transitions (pickups and drop-offs)
// happen at the plan indices they were recorded at, so delays never corrupt
// stock accounting. Because the underlying plan is collision-free, the
// policy preserves safety under arbitrary delays — which is what makes the
// failure-injection analysis meaningful.
//
// maxWall bounds the wall clock (0 = 4× the plan horizon).
func ExecuteMCP(w *warehouse.Warehouse, plan *warehouse.Plan, wl warehouse.Workload, failures []Failure, maxWall int) (ExecResult, error) {
	c := plan.NumAgents()
	T := plan.Horizon()
	res := ExecResult{
		Delivered:  make([]int, w.NumProducts),
		ServicedAt: -1,
	}
	if T == 0 || c == 0 {
		if wl.TotalUnits() == 0 {
			res.ServicedAt = 0
		}
		return res, nil
	}
	if maxWall == 0 {
		maxWall = 4 * T
	}
	for _, f := range failures {
		if f.Agent < 0 || f.Agent >= c {
			return res, fmt.Errorf("sim: failure references agent %d of %d", f.Agent, c)
		}
	}

	// Compress each agent's plan into its sequence of distinct cells, with
	// the product transitions attached to the step at which they occur.
	type step struct {
		v       grid.VertexID
		carried warehouse.ProductID
		deliver warehouse.ProductID // product delivered on arrival, or NoProduct
	}
	seqs := make([][]step, c)
	for i := 0; i < c; i++ {
		st := plan.States[i][0]
		seqs[i] = []step{{v: st.Vertex, carried: st.Carried, deliver: warehouse.NoProduct}}
		for t := 1; t < T; t++ {
			cur := plan.States[i][t]
			prev := plan.States[i][t-1]
			deliver := warehouse.NoProduct
			if prev.Carried != warehouse.NoProduct && cur.Carried == warehouse.NoProduct && w.IsStation(prev.Vertex) {
				deliver = prev.Carried
			}
			if cur.Vertex != prev.Vertex {
				seqs[i] = append(seqs[i], step{v: cur.Vertex, carried: cur.Carried, deliver: deliver})
			} else if deliver != warehouse.NoProduct || cur.Carried != prev.Carried {
				// Stationary product transition: attach it to the current
				// sequence tail by recording a zero-move step.
				seqs[i] = append(seqs[i], step{v: cur.Vertex, carried: cur.Carried, deliver: deliver})
			}
		}
	}

	// Dense occupancy: occ[v] holds agent index + 1, 0 means free. The
	// buffer is pooled across runs (and across Solve retries).
	nv := w.Graph.NumVertices()
	for i := 0; i < c; i++ {
		for _, s := range seqs[i] {
			if s.v < 0 || int(s.v) >= nv {
				return res, fmt.Errorf("sim: agent %d plan vertex %d out of range", i, s.v)
			}
		}
	}
	idx := make([]int, c)
	occ := grid.GetInt32(nv)
	defer grid.PutInt32(occ)
	for i := 0; i < c; i++ {
		occ[seqs[i][0].v] = int32(i) + 1
	}
	serviced := func() bool {
		for k, want := range wl.Units {
			if res.Delivered[k] < want {
				return false
			}
		}
		return true
	}
	applyArrival := func(i int) {
		s := seqs[i][idx[i]]
		if s.deliver != warehouse.NoProduct {
			res.Delivered[s.deliver]++
		}
	}
	if serviced() {
		res.ServicedAt = 0
	}

	frozen := func(i, wall int) bool {
		for _, f := range failures {
			if f.Agent != i {
				continue
			}
			if wall >= f.At && (f.Duration == 0 || wall < f.At+f.Duration) {
				return true
			}
		}
		return false
	}

	for wall := 1; wall <= maxWall; wall++ {
		movedAny := false
		for i := 0; i < c; i++ {
			if idx[i]+1 >= len(seqs[i]) || frozen(i, wall) {
				continue
			}
			next := seqs[i][idx[i]+1]
			if next.v != seqs[i][idx[i]].v {
				if holder := occ[next.v]; holder != 0 && int(holder)-1 != i {
					res.Waits++
					continue
				}
				occ[seqs[i][idx[i]].v] = 0
				occ[next.v] = int32(i) + 1
			}
			idx[i]++
			applyArrival(i)
			movedAny = true
		}
		if res.ServicedAt < 0 && serviced() {
			res.ServicedAt = wall
			res.Dilation = wall - T
			if res.Dilation < 0 {
				res.Dilation = 0
			}
			return res, nil
		}
		if !movedAny {
			// No progress. If every mobile agent is permanently blocked the
			// state can never change; with temporary failures it may.
			if stable(failures, wall) {
				res.Stalled = true
				return res, nil
			}
		}
	}
	res.Dilation = maxWall - T
	if res.Dilation < 0 {
		res.Dilation = 0
	}
	return res, nil
}

// stable reports whether no frozen agent will ever unfreeze after wall.
func stable(failures []Failure, wall int) bool {
	for _, f := range failures {
		if f.Duration != 0 && f.At+f.Duration > wall {
			return false
		}
	}
	return true
}
