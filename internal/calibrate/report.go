// Package calibrate runs the scenario corpus (internal/datasets) against a
// knob configuration, records per-family health metrics, and grid-searches
// knob defaults. It is the measurement half of the corpus subsystem: the
// datasets package says WHAT to solve, calibrate says HOW IT WENT.
//
// Reports separate two kinds of numbers. Verdicts, solve counts, and work
// units are deterministic — the same corpus seed and knobs reproduce them
// bit-for-bit (pinned by TestRunDeterministic) — so calibration scores are
// computed only from them. Latencies are wall-clock and recorded for
// operators (and the benchjson trajectory), never for scoring.
package calibrate

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/flow"
	"repro/internal/lp"
)

// ReportSchema versions the JSON report layout.
const ReportSchema = "wsp-corpus-report/v1"

// Knobs is one solver configuration under measurement — the subset of
// core.Options the corpus and calibration stages sweep.
type Knobs struct {
	// Strategy selects the synthesis pipeline (core.RoutePacking default).
	Strategy core.Strategy
	// Exact switches ContractILP to exact rational arithmetic.
	Exact bool
	// Simplex is the exact-engine representation override.
	Simplex lp.SimplexEngine
	// AutoRows overrides the lp.SimplexAuto dense/revised crossover; 0
	// keeps the calibrated default.
	AutoRows int
	// WorkBudget caps per-attempt deterministic simplex work
	// (core.Options.MaxWork); 0 keeps the footprint-scaled default.
	WorkBudget int64
	// NodeBudget caps per-attempt branch-and-bound nodes; 0 = default.
	NodeBudget int
	// SearchParallel is the branch-and-bound subtree worker width
	// (0 or 1 = sequential).
	SearchParallel int
}

func (k Knobs) coreOptions() core.Options {
	return core.Options{
		Strategy:       k.Strategy,
		ExactILP:       k.Exact,
		Simplex:        k.Simplex,
		AutoRows:       k.AutoRows,
		MaxWork:        k.WorkBudget,
		MaxNodes:       k.NodeBudget,
		SearchParallel: k.SearchParallel,
	}
}

func strategyName(s core.Strategy) string { return s.String() }

func simplexName(e lp.SimplexEngine) string {
	switch e {
	case lp.SimplexAuto:
		return "auto"
	case lp.SimplexDense:
		return "dense"
	case lp.SimplexRevised:
		return "revised"
	case lp.SimplexHybrid:
		return "hybrid"
	}
	return "unknown"
}

// knobsJSON is the report wire form of Knobs: enum knobs as names, not
// iota values, so reports stay readable and stable across enum reorders.
type knobsJSON struct {
	Strategy       string `json:"strategy"`
	Exact          bool   `json:"exact,omitempty"`
	Simplex        string `json:"simplex"`
	AutoRows       int    `json:"auto_rows,omitempty"`
	WorkBudget     int64  `json:"work_budget,omitempty"`
	NodeBudget     int    `json:"node_budget,omitempty"`
	SearchParallel int    `json:"search_parallel,omitempty"`
}

// MarshalJSON renders enum knobs by name.
func (k Knobs) MarshalJSON() ([]byte, error) {
	return json.Marshal(knobsJSON{
		Strategy:       strategyName(k.Strategy),
		Exact:          k.Exact,
		Simplex:        simplexName(k.Simplex),
		AutoRows:       k.AutoRows,
		WorkBudget:     k.WorkBudget,
		NodeBudget:     k.NodeBudget,
		SearchParallel: k.SearchParallel,
	})
}

// Verdict classifies how one instance solve ended.
type Verdict string

// Verdicts, most specific sentinel first (see Classify).
const (
	VerdictSolved     Verdict = "solved"
	VerdictInfeasible Verdict = "infeasible"
	VerdictHorizon    Verdict = "horizon"
	VerdictBudget     Verdict = "budget"
	VerdictCanceled   Verdict = "canceled"
	VerdictError      Verdict = "error"
)

// Classify maps a solve error onto the verdict taxonomy via the typed
// sentinels of the flow and lp layers. Cancellation is checked before
// budget exhaustion (a cancelled solve may also have spent its budget),
// and budget before feasibility (a budget-stopped search proves nothing
// about the instance).
func Classify(err error) Verdict {
	switch {
	case err == nil:
		return VerdictSolved
	case errors.Is(err, lp.ErrCanceled):
		return VerdictCanceled
	case errors.Is(err, lp.ErrBudgetExhausted):
		return VerdictBudget
	case errors.Is(err, flow.ErrHorizonTooShort):
		return VerdictHorizon
	case errors.Is(err, flow.ErrInfeasible):
		return VerdictInfeasible
	default:
		return VerdictError
	}
}

// InstanceResult is one corpus instance's outcome.
type InstanceResult struct {
	Name    string  `json:"name"`
	Family  string  `json:"family"`
	Verdict Verdict `json:"verdict"`
	Err     string  `json:"err,omitempty"`
	// Millis is wall-clock solve latency (informational; never scored).
	Millis float64 `json:"millis"`
	// Work is deterministic simplex work consumed (lp.WorkMeter delta).
	Work     int64 `json:"work"`
	Attempts int   `json:"attempts,omitempty"`
}

// FamilyStats aggregates one generator family's results.
type FamilyStats struct {
	Family    string          `json:"family"`
	Instances int             `json:"instances"`
	Solved    int             `json:"solved"`
	SolveRate float64         `json:"solve_rate"`
	Verdicts  map[Verdict]int `json:"verdicts"`
	// Latency percentiles in milliseconds (nearest-rank; informational).
	P50Millis float64 `json:"p50_millis"`
	P95Millis float64 `json:"p95_millis"`
	P99Millis float64 `json:"p99_millis"`
	// Work is the family's total deterministic work consumption.
	Work int64 `json:"work"`
}

// Report is one corpus run, serializable as JSON.
type Report struct {
	Schema    string           `json:"schema"`
	Label     string           `json:"label"`
	Seed      int64            `json:"seed"`
	Knobs     Knobs            `json:"knobs"`
	Families  []FamilyStats    `json:"families"`
	Instances []InstanceResult `json:"instances"`
}

// Run solves every corpus instance sequentially under k and aggregates
// the outcomes. One core.Scratch is reused across the run, matching how a
// solver-pool worker would consume the corpus. Cancelling ctx drains the
// remaining instances as VerdictCanceled rather than failing the run, so
// a partial report still serializes.
//
// Verdicts and work are deterministic for a fixed corpus and knob set;
// latencies are wall-clock.
func Run(ctx context.Context, insts []*datasets.Instance, k Knobs, label string, seed int64) *Report {
	rep := &Report{Schema: ReportSchema, Label: label, Seed: seed, Knobs: k}
	sc := &core.Scratch{}
	for _, in := range insts {
		w0 := lp.WorkMeter()
		t0 := time.Now()
		res, err := core.SolveScratch(ctx, in.Sys, in.WL, in.T, k.coreOptions(), sc)
		ir := InstanceResult{
			Name:    in.Name,
			Family:  in.Family,
			Verdict: Classify(err),
			Millis:  float64(time.Since(t0)) / 1e6,
			Work:    lp.WorkMeter() - w0,
		}
		if err != nil {
			ir.Err = err.Error()
		} else {
			ir.Attempts = res.Attempts
		}
		rep.Instances = append(rep.Instances, ir)
	}
	rep.Families = aggregate(rep.Instances)
	return rep
}

// aggregate folds instance results into per-family stats, preserving the
// corpus enumeration order of family first appearance.
func aggregate(insts []InstanceResult) []FamilyStats {
	index := map[string]int{}
	var fams []FamilyStats
	lat := map[string][]float64{}
	for _, ir := range insts {
		i, ok := index[ir.Family]
		if !ok {
			i = len(fams)
			index[ir.Family] = i
			fams = append(fams, FamilyStats{Family: ir.Family, Verdicts: map[Verdict]int{}})
		}
		f := &fams[i]
		f.Instances++
		f.Verdicts[ir.Verdict]++
		if ir.Verdict == VerdictSolved {
			f.Solved++
		}
		f.Work += ir.Work
		lat[ir.Family] = append(lat[ir.Family], ir.Millis)
	}
	for i := range fams {
		f := &fams[i]
		f.SolveRate = float64(f.Solved) / float64(f.Instances)
		ms := lat[f.Family]
		sort.Float64s(ms)
		f.P50Millis = percentile(ms, 0.50)
		f.P95Millis = percentile(ms, 0.95)
		f.P99Millis = percentile(ms, 0.99)
	}
	return fams
}

// percentile is the nearest-rank percentile of an ascending slice.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted)) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// WriteBenchLines renders the report as `go test -bench`-style lines so
// scripts/benchjson can append a corpus run to a perf trajectory file and
// -compare it against earlier snapshots. Names are
// `BenchmarkCorpus/family=F/inst=I`; benchjson exempts the BenchmarkCorpus
// prefix from its GOMAXPROCS-suffix strip, so instance names that end in
// `-N` (bursty-0, spike-0, …) survive intact.
func WriteBenchLines(w io.Writer, rep *Report) error {
	for _, ir := range rep.Instances {
		inst := ir.Name
		if len(inst) > len(ir.Family)+1 {
			inst = inst[len(ir.Family)+1:]
		}
		solved := 0
		if ir.Verdict == VerdictSolved {
			solved = 1
		}
		if _, err := fmt.Fprintf(w, "BenchmarkCorpus/family=%s/inst=%s \t 1 \t %d ns/op \t %d work/op \t %d solved\n",
			ir.Family, inst, int64(ir.Millis*1e6), ir.Work, solved); err != nil {
			return err
		}
	}
	return nil
}
