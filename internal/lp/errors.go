package lp

import "errors"

// Sentinel errors of the solver layer. They are the roots of the public
// error taxonomy: every layer above (contracts, flow, core, the wsp facade)
// wraps them with %w so errors.Is works end to end, and the wsp package
// re-exports them as wsp.ErrCanceled / wsp.ErrBudgetExhausted.
var (
	// ErrCanceled reports that a solve was abandoned because its
	// cancellation channel (ILPOptions.Cancel / SolveOptions.Cancel,
	// normally a context's Done channel) fired. The cancellation check
	// piggybacks on the MaxWork accounting tick, so a running solve
	// returns within one pivot of the channel closing, and a solve that
	// is never cancelled executes the exact same arithmetic as one with
	// no channel installed.
	ErrCanceled = errors.New("lp: solve canceled")

	// ErrBudgetExhausted reports that a branch-and-bound search ran out
	// of its deterministic node (MaxNodes) or work (MaxWork) budget
	// before reaching a decision.
	ErrBudgetExhausted = errors.New("lp: search budget exhausted")
)
