package lp

import (
	"math/big"
	"testing"
)

// TestSetBoundAliasedFixed pins the bound-installation contract: bounds are
// compared by VALUE, so passing the same *big.Rat pointer as both lo and hi
// (the natural way to fix a variable) behaves exactly like passing two
// distinct pointers with equal values. An earlier revision short-circuited
// the lo>hi conflict check on pointer equality, which made the aliased and
// non-aliased spellings take different code paths.
func TestSetBoundAliasedFixed(t *testing.T) {
	build := func() *Problem {
		p := &Problem{}
		x := p.AddIntVar("x", big.NewRat(0, 1), big.NewRat(10, 1))
		y := p.AddIntVar("y", big.NewRat(0, 1), big.NewRat(10, 1))
		p.AddConstraint("sum", []Term{T(x, 1), T(y, 1)}, LE, big.NewRat(12, 1))
		p.SetObjective([]Term{T(x, 2), T(y, 3)}, true)
		return p
	}
	for _, sx := range []struct {
		name    string
		simplex SimplexEngine
	}{{"dense", SimplexDense}, {"revised", SimplexRevised}} {
		t.Run(sx.name, func(t *testing.T) {
			aliased := NewModel(build())
			aliased.SetSimplex(sx.simplex)
			distinct := NewModel(build())
			distinct.SetSimplex(sx.simplex)

			fixed := big.NewRat(4, 1)
			aliased.SetBound(0, fixed, fixed) // one pointer, both ends
			distinct.SetBound(0, big.NewRat(4, 1), big.NewRat(4, 1))

			for _, mo := range []*Model{aliased, distinct} {
				sol, err := mo.Resolve()
				if err != nil {
					t.Fatal(err)
				}
				if sol.Status != StatusOptimal {
					t.Fatalf("status %v", sol.Status)
				}
				if sol.Value(0).Cmp(fixed) != 0 {
					t.Fatalf("fixed variable drifted to %s", sol.Value(0))
				}
				// max 2x+3y s.t. x=4, x+y ≤ 12, y ≤ 10 → y=8, objective 32.
				if want := big.NewRat(32, 1); sol.Objective.Cmp(want) != 0 {
					t.Fatalf("objective %s, want %s", sol.Objective, want)
				}
				isol, err := mo.ResolveILP(ILPOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if isol.Status != StatusOptimal || isol.Value(0).Cmp(fixed) != 0 {
					t.Fatalf("ILP: status %v x=%v", isol.Status, isol.Value(0))
				}
			}

			// Conflicting bounds (distinct pointers, lo > hi) still prove
			// infeasibility before any pivoting.
			conflicted := NewModel(build())
			conflicted.SetSimplex(sx.simplex)
			conflicted.SetBound(0, big.NewRat(7, 1), big.NewRat(3, 1))
			sol, err := conflicted.Resolve()
			if err != nil {
				t.Fatal(err)
			}
			if sol.Status != StatusInfeasible {
				t.Fatalf("conflicting bounds: status %v", sol.Status)
			}
		})
	}
}
