package lifelong

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/lp"
	"repro/internal/testmaps"
	"repro/internal/traffic"
	"repro/internal/warehouse"
)

// recorder collects every observer event in firing order.
type recorder struct {
	epochs     []EpochReport
	deliveries []Delivery
	completes  []int
	stats      []BatchStats
}

func (r *recorder) OnEpoch(er EpochReport) { r.epochs = append(r.epochs, er) }
func (r *recorder) OnDelivery(d Delivery)  { r.deliveries = append(r.deliveries, d) }
func (r *recorder) OnBatchComplete(b int, s BatchStats) {
	r.completes = append(r.completes, b)
	r.stats = append(r.stats, s)
}

func TestObserverEventsMatchReport(t *testing.T) {
	_, s := testmaps.MustRing()
	batches := []Batch{
		{Release: 0, Units: []int{8, 0}},
		{Release: 900, Units: []int{0, 8}},
		{Release: 1800, Units: []int{4, 4}},
	}
	rec := &recorder{}
	rep, err := Run(context.Background(), s, batches, 4800, Options{Observer: rec})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.epochs) != rep.Epochs {
		t.Fatalf("OnEpoch fired %d times for %d epochs", len(rec.epochs), rep.Epochs)
	}
	// Per-epoch deliveries must sum to the report totals, per product.
	sums := make([]int, len(rep.Delivered))
	for _, er := range rec.epochs {
		if er.End != er.Start+er.Changeover+er.ServicedAt {
			t.Errorf("epoch %d: End %d != Start+Changeover+ServicedAt", er.Epoch, er.End)
		}
		if er.EpochInfo != rep.EpochLog[er.Epoch-1] {
			t.Errorf("epoch %d: EpochInfo diverges from EpochLog", er.Epoch)
		}
		for k, u := range er.Delivered {
			sums[k] += u
		}
	}
	for k := range sums {
		if sums[k] != rep.Delivered[k] {
			t.Errorf("product %d: epoch deliveries sum to %d, report says %d", k, sums[k], rep.Delivered[k])
		}
	}
	// Delivery attributions must sum to each batch's unit count.
	perBatch := make([]int, len(rep.Batches))
	for _, d := range rec.deliveries {
		perBatch[d.Batch] += d.Units
	}
	for bi, b := range rep.Batches {
		if perBatch[bi] != b.Units {
			t.Errorf("batch %d: %d units attributed, batch holds %d", bi, perBatch[bi], b.Units)
		}
	}
	// Every batch completed exactly once, carrying its final stats.
	if len(rec.completes) != len(rep.Batches) {
		t.Fatalf("OnBatchComplete fired %d times for %d batches", len(rec.completes), len(rep.Batches))
	}
	for i, bi := range rec.completes {
		if rec.stats[i] != rep.Batches[bi] {
			t.Errorf("batch %d completion stats %+v != report %+v", bi, rec.stats[i], rep.Batches[bi])
		}
	}
	// The final epoch's backlog is empty and its cumulative throughput
	// series covers at least every accounted delivery.
	last := rec.epochs[len(rec.epochs)-1]
	if sumPos(last.Outstanding) != 0 {
		t.Errorf("final outstanding = %v, want all zero", last.Outstanding)
	}
	total := 0
	for _, b := range last.Throughput {
		if b < 0 {
			t.Errorf("negative throughput bin in %v", last.Throughput)
		}
		total += b
	}
	if want := sumPos(rep.Delivered); total < want {
		t.Errorf("throughput series holds %d deliveries, report accounted %d", total, want)
	}
}

func TestObserverDoesNotChangeReport(t *testing.T) {
	_, s := testmaps.MustRing()
	batches := []Batch{
		{Release: 0, Units: []int{8, 0}},
		{Release: 900, Units: []int{0, 8}},
	}
	plain, err := Run(context.Background(), s, batches, 4800, Options{})
	if err != nil {
		t.Fatal(err)
	}
	observed, err := Run(context.Background(), s, batches, 4800, Options{Observer: &recorder{}})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", plain) != fmt.Sprintf("%+v", observed) {
		t.Errorf("observed run diverged:\nplain:    %+v\nobserved: %+v", plain, observed)
	}
}

func TestStepMachineDrivesRun(t *testing.T) {
	_, s := testmaps.MustRing()
	batches := []Batch{
		{Release: 0, Units: []int{6, 0}},
		{Release: 1200, Units: []int{0, 6}},
	}
	e, err := NewEngine(s, batches, 4800, Options{})
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for {
		done, err := e.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		steps++
		if done {
			break
		}
		if e.Report().Epochs > 0 && e.Now() == 0 {
			t.Fatal("clock did not advance across an epoch step")
		}
		if steps > 100 {
			t.Fatal("step machine did not terminate")
		}
	}
	if !e.Done() {
		t.Error("Done() false after final Step")
	}
	// Stepping a done engine is a no-op.
	if done, err := e.Step(context.Background()); !done || err != nil {
		t.Errorf("Step after done = (%v, %v), want (true, nil)", done, err)
	}
	rep := e.Report()
	if rep.Delivered[0] != 6 || rep.Delivered[1] != 6 {
		t.Errorf("delivered = %v, want [6 6]", rep.Delivered)
	}
	// The machine takes strictly more steps than epochs: clock jumps to
	// future releases are separate events.
	if steps <= rep.Epochs {
		t.Errorf("steps = %d, epochs = %d; release jumps should be separate steps", steps, rep.Epochs)
	}
}

func TestMergeSameReleaseBatches(t *testing.T) {
	_, s := testmaps.MustRing()
	batches := []Batch{
		{Release: 0, Units: []int{3, 1}},
		{Release: 0, Units: []int{5, 2}},
		{Release: 1200, Units: []int{0, 4}},
	}
	rec := &recorder{}
	rep, err := Run(context.Background(), s, batches, 4800, Options{Observer: rec})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Batches) != 2 {
		t.Fatalf("batches = %d, want 2 (same-release pair merged)", len(rep.Batches))
	}
	if rep.Batches[0].Units != 11 {
		t.Errorf("merged batch units = %d, want 11", rep.Batches[0].Units)
	}
	if rep.Delivered[0] != 8 || rep.Delivered[1] != 7 {
		t.Errorf("delivered = %v, want [8 7]", rep.Delivered)
	}
	for _, d := range rec.deliveries {
		if d.Batch < 0 || d.Batch >= len(rep.Batches) {
			t.Errorf("delivery attributed to batch %d outside merged range", d.Batch)
		}
	}
	// Merging must not mutate the caller's batch slice vectors.
	if batches[0].Units[0] != 3 || batches[1].Units[0] != 5 {
		t.Errorf("caller batches mutated: %v", batches)
	}
}

// failingSolve returns a solveFn failing the first n calls with err, then
// delegating to the real solver.
func failingSolve(n int, err error, calls *int) solveFn {
	return func(ctx context.Context, s *traffic.System, wl warehouse.Workload, T int, opts core.Options, sc *core.Scratch) (*core.Result, error) {
		*calls++
		if *calls <= n {
			return nil, err
		}
		return core.SolveScratch(ctx, s, wl, T, opts, sc)
	}
}

func driveToError(t *testing.T, e *Engine) error {
	t.Helper()
	for {
		done, err := e.Step(context.Background())
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}

func TestRetryOnRetryableErrors(t *testing.T) {
	_, s := testmaps.MustRing()
	batches := []Batch{{Release: 0, Units: []int{6, 4}}}
	for _, sentinel := range []error{flow.ErrInfeasible, flow.ErrHorizonTooShort, lp.ErrBudgetExhausted} {
		e, err := NewEngine(s, batches, 2400, Options{})
		if err != nil {
			t.Fatal(err)
		}
		calls := 0
		e.solve = failingSolve(1, fmt.Errorf("synthetic: %w", sentinel), &calls)
		if err := driveToError(t, e); err != nil {
			t.Errorf("%v: run failed despite successful retry: %v", sentinel, err)
		}
		// Epoch 1: fail + halved retry (2 calls, 5 of 10 units); epoch 2
		// clears the remainder with one more solve.
		if calls != 3 {
			t.Errorf("%v: %d solve calls, want 3 (fail + halved retry + follow-up epoch)", sentinel, calls)
		}
		rep := e.Report()
		if rep.Epochs != 2 {
			t.Errorf("%v: epochs = %d, want 2", sentinel, rep.Epochs)
		}
		if got := sumPos(rep.Delivered); got != 10 {
			t.Errorf("%v: delivered %d units, want 10", sentinel, got)
		}
	}
}

func TestNoRetryOnUnclassifiedError(t *testing.T) {
	_, s := testmaps.MustRing()
	e, err := NewEngine(s, []Batch{{Release: 0, Units: []int{6, 4}}}, 2400, Options{})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("synthetic constructor bug")
	calls := 0
	e.solve = failingSolve(99, boom, &calls)
	runErr := driveToError(t, e)
	if runErr == nil {
		t.Fatal("run succeeded despite failing solver")
	}
	if calls != 1 {
		t.Errorf("%d solve calls, want 1 (no halved retry for unclassified errors)", calls)
	}
	if !errors.Is(runErr, boom) {
		t.Errorf("error %v does not wrap the solver failure", runErr)
	}
	if !strings.Contains(runErr.Error(), "lifelong: epoch at t=0 failed") {
		t.Errorf("error %v missing the epoch-failed wrap", runErr)
	}
}

func TestNoRetryOnCancel(t *testing.T) {
	_, s := testmaps.MustRing()
	e, err := NewEngine(s, []Batch{{Release: 0, Units: []int{6, 4}}}, 2400, Options{})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	e.solve = failingSolve(99, fmt.Errorf("synthetic: %w", lp.ErrCanceled), &calls)
	runErr := driveToError(t, e)
	if calls != 1 {
		t.Errorf("%d solve calls, want 1 (canceled attempts never retry)", calls)
	}
	if runErr == nil || !errors.Is(runErr, lp.ErrCanceled) {
		t.Errorf("error %v does not wrap lp.ErrCanceled", runErr)
	}
	if !strings.Contains(runErr.Error(), "run canceled in epoch at t=0") {
		t.Errorf("error %v missing the canceled-run wrap", runErr)
	}
}

func TestRetryExhaustedWrapsRetryError(t *testing.T) {
	_, s := testmaps.MustRing()
	e, err := NewEngine(s, []Batch{{Release: 0, Units: []int{6, 4}}}, 2400, Options{})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	e.solve = failingSolve(99, fmt.Errorf("synthetic: %w", flow.ErrInfeasible), &calls)
	runErr := driveToError(t, e)
	if calls != 2 {
		t.Errorf("%d solve calls, want 2", calls)
	}
	if runErr == nil || !errors.Is(runErr, flow.ErrInfeasible) {
		t.Errorf("error %v does not wrap flow.ErrInfeasible", runErr)
	}
}
