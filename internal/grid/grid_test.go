package grid

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, text string) (*Grid, []Coord, []Coord) {
	t.Helper()
	g, shelves, stations, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return g, shelves, stations
}

const tinyMap = `
.....
.@.@.
.....
.T.T.
`

func TestParseCounts(t *testing.T) {
	g, shelves, stations := mustParse(t, tinyMap)
	if g.Width() != 5 || g.Height() != 4 {
		t.Fatalf("dims = %dx%d, want 5x4", g.Width(), g.Height())
	}
	if got, want := g.NumVertices(), 18; got != want {
		t.Errorf("NumVertices = %d, want %d", got, want)
	}
	if len(shelves) != 2 {
		t.Errorf("shelves = %d, want 2", len(shelves))
	}
	if len(stations) != 2 {
		t.Errorf("stations = %d, want 2", len(stations))
	}
	// Stations sit on the south edge (first text row is north).
	for _, s := range stations {
		if s.Y != 0 {
			t.Errorf("station %v not on south edge", s)
		}
	}
	// Shelves are obstacles.
	for _, s := range shelves {
		if g.At(s) != None {
			t.Errorf("shelf %v is passable", s)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, text string
	}{
		{"empty", ""},
		{"ragged", ".....\n..."},
		{"badRune", "..x.."},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, _, err := Parse(tc.text); err == nil {
				t.Errorf("Parse(%q) succeeded, want error", tc.text)
			}
		})
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("New(nil) succeeded, want error")
	}
	if _, err := New([][]bool{{}}); err == nil {
		t.Error("New(empty row) succeeded, want error")
	}
	if _, err := New([][]bool{{true, true}, {true}}); err == nil {
		t.Error("New(ragged) succeeded, want error")
	}
}

func TestRenderRoundTrip(t *testing.T) {
	g, shelves, stations := mustParse(t, tinyMap)
	out := Render(g, shelves, stations)
	if got, want := out, strings.Trim(tinyMap, "\n")+"\n"; got != want {
		t.Errorf("Render round-trip mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestAdjacency(t *testing.T) {
	g, _, _ := mustParse(t, tinyMap)
	v := g.At(Coord{0, 0})
	u := g.At(Coord{1, 0})
	if v == None || u == None {
		t.Fatal("expected passable corner cells")
	}
	if !g.Adjacent(v, u) {
		t.Error("horizontally adjacent cells not Adjacent")
	}
	if g.Adjacent(v, v) {
		t.Error("vertex adjacent to itself")
	}
	// (1,2) is a shelf -> not a vertex; (1,1)'s north neighbor is blocked.
	mid := g.At(Coord{1, 1})
	if g.Neighbor(mid, North) != None {
		t.Error("neighbor through shelf obstacle")
	}
	if d, ok := g.DirTo(v, u); !ok || d != East {
		t.Errorf("DirTo = %v,%v, want East,true", d, ok)
	}
	if _, ok := g.DirTo(v, g.At(Coord{4, 3})); ok {
		t.Error("DirTo for non-adjacent pair reported ok")
	}
}

func TestDirOps(t *testing.T) {
	for _, d := range Dirs {
		if d.Opposite().Opposite() != d {
			t.Errorf("%v: double Opposite is not identity", d)
		}
		o := d.Offset()
		r := d.Opposite().Offset()
		if o.X+r.X != 0 || o.Y+r.Y != 0 {
			t.Errorf("%v: offset of opposite does not negate", d)
		}
	}
}

func TestBFSAndShortestPath(t *testing.T) {
	g, _, _ := mustParse(t, tinyMap)
	src := g.At(Coord{0, 0})
	dst := g.At(Coord{4, 3})
	dist := g.BFS(src)
	if got, want := dist[dst], 7; got != want {
		t.Errorf("dist = %d, want %d", got, want)
	}
	p := g.ShortestPath(src, dst)
	if len(p) != 8 {
		t.Fatalf("path len = %d, want 8", len(p))
	}
	if p[0] != src || p[len(p)-1] != dst {
		t.Error("path endpoints wrong")
	}
	for i := 0; i+1 < len(p); i++ {
		if !g.Adjacent(p[i], p[i+1]) {
			t.Errorf("path step %d not adjacent", i)
		}
	}
	if got := g.ShortestPath(src, src); len(got) != 1 || got[0] != src {
		t.Error("trivial path wrong")
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g, _, _ := mustParse(t, ".#.\n###\n.#.")
	src := g.At(Coord{0, 0})
	dst := g.At(Coord{2, 2})
	if p := g.ShortestPath(src, dst); p != nil {
		t.Errorf("path across obstacles = %v, want nil", p)
	}
	if g.Connected() {
		t.Error("disconnected grid reported connected")
	}
}

func TestConnected(t *testing.T) {
	g, _, _ := mustParse(t, tinyMap)
	if !g.Connected() {
		t.Error("connected grid reported disconnected")
	}
}

func TestNumEdges(t *testing.T) {
	g, _, _ := mustParse(t, "..\n..")
	if got, want := g.NumEdges(), 4; got != want {
		t.Errorf("NumEdges = %d, want %d", got, want)
	}
}

// Property: BFS distance lower-bounds are consistent with shortest paths and
// with the Manhattan metric on an obstacle-free grid.
func TestBFSMatchesManhattanOnOpenGrid(t *testing.T) {
	passable := make([][]bool, 6)
	for y := range passable {
		passable[y] = make([]bool, 7)
		for x := range passable[y] {
			passable[y][x] = true
		}
	}
	g, err := New(passable)
	if err != nil {
		t.Fatal(err)
	}
	f := func(sx, sy, dx, dy uint8) bool {
		s := Coord{int(sx) % 7, int(sy) % 6}
		d := Coord{int(dx) % 7, int(dy) % 6}
		dist := g.BFS(g.At(s))
		return dist[g.At(d)] == s.Manhattan(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every path returned by ShortestPath has length equal to the BFS
// distance and consists of adjacent steps, on a random obstacle grid.
func TestShortestPathOptimalProperty(t *testing.T) {
	f := func(seed uint32) bool {
		// Deterministic pseudo-random 8x8 obstacle layout from the seed.
		passable := make([][]bool, 8)
		s := uint64(seed)*2654435761 + 1
		for y := range passable {
			passable[y] = make([]bool, 8)
			for x := range passable[y] {
				s = s*6364136223846793005 + 1442695040888963407
				passable[y][x] = s>>60 != 0 // ~94% passable
			}
		}
		passable[0][0] = true
		g, err := New(passable)
		if err != nil {
			return false
		}
		src := g.At(Coord{0, 0})
		dist := g.BFS(src)
		for v := 0; v < g.NumVertices(); v++ {
			p := g.ShortestPath(src, VertexID(v))
			if dist[v] < 0 {
				if p != nil {
					return false
				}
				continue
			}
			if len(p) != dist[v]+1 {
				return false
			}
			for i := 0; i+1 < len(p); i++ {
				if !g.Adjacent(p[i], p[i+1]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
