// Package core orchestrates the end-to-end WSP methodology of Fig. 2:
// traffic-system contracts → agent flow synthesis → agent cycle mapping →
// plan realization → validation. It is the primary public entry point of
// the library; the packages underneath implement the individual stages.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/agentplan"
	"repro/internal/cycles"
	"repro/internal/flow"
	"repro/internal/lp"
	"repro/internal/sim"
	"repro/internal/traffic"
	"repro/internal/warehouse"
)

// Strategy selects how the agent flow set / cycle set is synthesized.
type Strategy int

// Synthesis strategies.
const (
	// RoutePacking packs workload demand into cycles directly over residual
	// component capacities. It works at total-unit granularity and is the
	// strategy that reaches the scale of the paper's Table I.
	RoutePacking Strategy = iota
	// SequentialFlows synthesizes the paper's per-period agent flow set one
	// commodity at a time with exact min-cost flow, then maps it to cycles
	// via the Property 4.2/4.3 decomposition.
	SequentialFlows
	// ContractILP is the faithful §IV-D pipeline: compose component
	// contracts, conjoin the workload contract, and solve the conjunction
	// with the ILP engine (the Z3 substitute). Exponential in the worst
	// case; intended for small and mid-size instances.
	ContractILP
)

func (s Strategy) String() string {
	switch s {
	case RoutePacking:
		return "route-packing"
	case SequentialFlows:
		return "sequential-flows"
	case ContractILP:
		return "contract-ilp"
	}
	return "unknown"
}

// Options tunes Solve.
type Options struct {
	Strategy Strategy
	// MaxAttempts bounds the synthesize→realize→verify retry loop; each
	// retry doubles the warm-up margin. Zero means 3.
	MaxAttempts int
	// SkipRealization stops after cycle synthesis (Table I times only the
	// flow-set generation; "the time required to convert an agent flow set
	// into a plan is small").
	SkipRealization bool
	// ExactILP switches the ContractILP strategy to exact rational
	// arithmetic.
	ExactILP bool
	// Simplex overrides the exact LP engines' simplex representation for
	// the contract path (dense tableau vs LU-factorized revised simplex;
	// lp.SimplexAuto selects by instance size; lp.SimplexHybrid selects the
	// float-first/exact-verify hybrid solve mode). Answers are bit-identical
	// either way — this is a speed knob for benchmarking and tuning.
	Simplex lp.SimplexEngine
	// RootCuts enables Gomory fractional and knapsack-cover cuts at the
	// branch-and-bound root of the contract path's exact ILP solves. The
	// optimal objective is exactly preserved; alternate integer optima may
	// surface differently than the cut-free search.
	RootCuts bool
	// AdmissionCheck runs the LP-relaxation infeasibility certificate
	// (flow.Admit) before synthesis, failing fast with a sound proof when
	// no agent flow set can exist. The relaxation has |Es|·(|ρ|+1)
	// variables, so enable it only for instances where one LP solve is
	// cheaper than the retry loop.
	AdmissionCheck bool
	// MaxWork overrides the contract path's per-attempt deterministic
	// simplex work budget (lp.ILPOptions.MaxWork units); 0 keeps the
	// tableau-footprint-scaled default. Exhaustion surfaces as an error
	// wrapping lp.ErrBudgetExhausted.
	MaxWork int64
	// MaxNodes overrides the contract path's per-attempt branch-and-bound
	// node budget; 0 keeps the default.
	MaxNodes int
	// AutoRows overrides the lp.SimplexAuto dense/revised size crossover
	// used by the contract path's exact solves (flow.Options.AutoRows); 0
	// keeps the calibrated default. A pure speed knob: answers are
	// bit-identical at any setting.
	AutoRows int
	// SearchParallel distributes open branch-and-bound subtrees of each
	// contract-path ILP solve across up to this many workers
	// (lp.ILPOptions.SearchParallel; 0 or 1 = sequential). Bit-identical
	// results at every width; extra workers are clamped by a process-wide
	// token pool, so solver-pool workers stacking this knob cannot
	// oversubscribe the machine.
	SearchParallel int
	// PackParallel probes route-packing cycle candidates with up to this
	// many workers (cycles.Options.PackParallel; 0 or 1 = sequential).
	// Same bit-identity and oversubscription guarantees.
	PackParallel int
}

// Timing breaks down where Solve spent its time.
type Timing struct {
	Synthesis time.Duration // flow/cycle synthesis (the Table I column)
	Mapping   time.Duration // flow set → cycle set
	Realize   time.Duration // Algorithm 1
	Validate  time.Duration // simulation / servicing check
}

// Result is a solved WSP instance.
type Result struct {
	Plan     *warehouse.Plan // nil when SkipRealization is set
	CycleSet *cycles.Set
	FlowSet  *flow.Set // nil for the RoutePacking strategy
	Stats    agentplan.Stats
	Sim      sim.Result
	Timing   Timing
	Attempts int
}

// Scratch holds reusable synthesis state for repeated Solve calls. A
// solver-pool worker (or any caller solving many instances back to back)
// keeps one Scratch per goroutine so the synthesis hot path reuses its
// working memory instead of reallocating it per solve — and, for the
// ContractILP strategy, so the compiled contract system and its solver
// arena persist across solves: retry attempts, horizon-refinement probes,
// lifelong epochs, and design-sweep evaluations re-target the cached model
// instead of recompiling (results stay bit-identical to scratchless
// solves; see flow.ContractModel). A Scratch must not be shared between
// concurrent SolveScratch calls; the zero value is ready to use.
type Scratch struct {
	cyc      cycles.Scratch
	contract flow.ContractModel
}

// Solve answers Problem 3.1: find a T-timestep plan (with however many
// agents the cycle set needs) that services workload wl on warehouse w
// under traffic system s. The plan is synthesized, realized, and verified;
// if the realization falls short of the workload (warm-up underestimate),
// synthesis is retried with a doubled warm-up margin.
//
// Cancelling ctx aborts the solve — inside the LP branch and bound within
// one work-budget accounting tick — and the returned error wraps
// lp.ErrCanceled. A solve that is never cancelled is bit-identical to one
// run under context.Background().
func Solve(ctx context.Context, s *traffic.System, wl warehouse.Workload, T int, opts Options) (*Result, error) {
	return SolveScratch(ctx, s, wl, T, opts, nil)
}

// SolveScratch is Solve with caller-owned scratch buffers; sc may be nil.
func SolveScratch(ctx context.Context, s *traffic.System, wl warehouse.Workload, T int, opts Options, sc *Scratch) (*Result, error) {
	maxAttempts := opts.MaxAttempts
	if maxAttempts == 0 {
		maxAttempts = 3
	}
	if sc == nil {
		sc = &Scratch{}
	}
	if opts.AdmissionCheck {
		// The admission LP runs on the same compiled contract model the
		// ContractILP strategy would use, so a gated synthesis pays the
		// compilation once.
		if err := sc.contract.MustAdmit(ctx, s, wl, T, flow.Options{Simplex: opts.Simplex,
			AutoRows: opts.AutoRows, SearchParallel: opts.SearchParallel}); err != nil {
			return nil, lp.WrapCancelCause(ctx, err)
		}
	}
	margin := 0 // 0 = automatic, per strategy
	var lastErr error
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, lp.WrapCancelCause(ctx,
				fmt.Errorf("core: solve canceled before attempt %d: %w", attempt, lp.ErrCanceled))
		}
		res, err := solveOnce(ctx, s, wl, T, opts, margin, sc)
		if err == nil {
			res.Attempts = attempt
			return res, nil
		}
		if errors.Is(err, lp.ErrCanceled) {
			// Retrying a cancelled attempt would grind on work the caller
			// already walked away from. Annotate WHY the context fired here
			// — the one place on this path that still holds it — so a
			// deadline expiry stays distinguishable from an explicit cancel
			// all the way up (the wspd server maps them to 504 vs 499).
			return nil, lp.WrapCancelCause(ctx, err)
		}
		lastErr = err
		// Double the margin (starting from the automatic default).
		if margin == 0 {
			margin = defaultMargin(s, T)
		}
		margin *= 2
		if qc := T / s.CycleTime(); margin > qc-1 {
			margin = qc - 1
		}
	}
	return nil, fmt.Errorf("core: %d attempts failed, last error: %w", maxAttempts, lastErr)
}

func defaultMargin(s *traffic.System, T int) int {
	tc := s.CycleTime()
	if tc == 0 {
		return 1
	}
	m := s.NumComponents() + 2
	if qc := T / tc; m > qc/4 {
		m = qc / 4
	}
	if m < 1 {
		m = 1
	}
	return m
}

func solveOnce(ctx context.Context, s *traffic.System, wl warehouse.Workload, T int, opts Options, margin int, sc *Scratch) (*Result, error) {
	res := &Result{}
	start := time.Now()

	var cs *cycles.Set
	switch opts.Strategy {
	case RoutePacking:
		c, err := cycles.Synthesize(s, wl, T, cycles.Options{WarmupMargin: margin, Scratch: &sc.cyc, Cancel: ctx.Done(),
			PackParallel: opts.PackParallel})
		if err != nil {
			return nil, err
		}
		res.Timing.Synthesis = time.Since(start)
		cs = c
	case SequentialFlows, ContractILP:
		fopts := flow.Options{WarmupMargin: margin, ExactILP: opts.ExactILP, Simplex: opts.Simplex,
			AutoRows: opts.AutoRows, RootCuts: opts.RootCuts, MaxWork: opts.MaxWork,
			MaxNodes: opts.MaxNodes, SearchParallel: opts.SearchParallel}
		var set *flow.Set
		var err error
		if opts.Strategy == SequentialFlows {
			set, err = flow.SynthesizeSequential(ctx, s, wl, T, fopts)
		} else {
			// Model-reusing variant of flow.SynthesizeContract: bit-identical
			// output, with contract compilation and the solver arena amortized
			// across every solve this Scratch serves.
			set, err = sc.contract.Synthesize(ctx, s, wl, T, fopts)
		}
		if err != nil {
			return nil, err
		}
		res.Timing.Synthesis = time.Since(start)
		res.FlowSet = set
		mapStart := time.Now()
		cs, err = cycles.FromFlowSet(set, wl)
		if err != nil {
			return nil, err
		}
		res.Timing.Mapping = time.Since(mapStart)
	default:
		return nil, fmt.Errorf("core: unknown strategy %d", opts.Strategy)
	}
	res.CycleSet = cs

	if opts.SkipRealization {
		return res, nil
	}
	realizeStart := time.Now()
	plan, stats, err := agentplan.Realize(cs, wl, T)
	if err != nil {
		return nil, err
	}
	res.Timing.Realize = time.Since(realizeStart)
	res.Plan = plan
	res.Stats = stats

	valStart := time.Now()
	res.Sim = sim.Run(s.W, plan, wl)
	res.Timing.Validate = time.Since(valStart)
	if len(res.Sim.Violations) > 0 {
		return nil, fmt.Errorf("core: realized plan violates feasibility: %w", res.Sim.Violations[0])
	}
	if res.Sim.ServicedAt < 0 {
		return nil, fmt.Errorf("core: plan delivers %v of %v within %d steps (warm-up shortfall)",
			res.Sim.Delivered, wl.Units, T)
	}
	return res, nil
}
