package agentplan

import (
	"context"
	"testing"

	"repro/internal/cycles"
	"repro/internal/flow"
	"repro/internal/grid"
	"repro/internal/traffic"
	"repro/internal/warehouse"
)

// ringSystem builds the 10x6 ring warehouse shared by the pipeline tests.
func ringSystem(t *testing.T) (*warehouse.Warehouse, *traffic.System) {
	t.Helper()
	g, _, stations, err := grid.Parse(
		"..........\n" +
			".@@######.\n" +
			".########.\n" +
			".########.\n" +
			".########.\n" +
			"....T.....")
	if err != nil {
		t.Fatal(err)
	}
	shelfAccess := []grid.VertexID{
		g.At(grid.Coord{X: 1, Y: 5}),
		g.At(grid.Coord{X: 2, Y: 5}),
	}
	var stationVs []grid.VertexID
	for _, c := range stations {
		stationVs = append(stationVs, g.At(c))
	}
	w, err := warehouse.New(g, shelfAccess, stationVs, 2, [][]int{{300, 0}, {0, 300}})
	if err != nil {
		t.Fatal(err)
	}
	at := func(x, y int) grid.VertexID { return g.At(grid.Coord{X: x, Y: y}) }
	var bottom, east, top, west []grid.VertexID
	for x := 0; x <= 9; x++ {
		bottom = append(bottom, at(x, 0))
	}
	for y := 1; y <= 5; y++ {
		east = append(east, at(9, y))
	}
	for x := 8; x >= 0; x-- {
		top = append(top, at(x, 5))
	}
	for y := 4; y >= 1; y-- {
		west = append(west, at(0, y))
	}
	s, err := traffic.Build(w, [][]grid.VertexID{bottom, east, top, west})
	if err != nil {
		t.Fatal(err)
	}
	return w, s
}

func mustWorkload(t *testing.T, w *warehouse.Warehouse, units ...int) warehouse.Workload {
	t.Helper()
	out, err := warehouse.NewWorkload(w, units)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRealizeServicesWorkloadViaRoutes(t *testing.T) {
	w, s := ringSystem(t)
	wl := mustWorkload(t, w, 12, 7)
	cs, err := cycles.Synthesize(s, wl, 800, cycles.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, stats, err := Realize(cs, wl, 800)
	if err != nil {
		t.Fatal(err)
	}
	if v := warehouse.ValidatePlan(w, plan); len(v) > 0 {
		t.Fatalf("plan violates feasibility: %v (of %d violations)", v[0], len(v))
	}
	ok, why := warehouse.Services(w, plan, wl)
	if !ok {
		t.Fatalf("plan does not service workload: %v (delivered %v)", why, stats.Delivered)
	}
	if stats.ServicedAt < 0 {
		t.Error("stats.ServicedAt = -1 despite servicing")
	}
	if stats.Picks < 19 {
		t.Errorf("picks = %d, want >= 19", stats.Picks)
	}
	if stats.Agents != cs.NumAgents() {
		t.Errorf("agents = %d, want %d", stats.Agents, cs.NumAgents())
	}
}

func TestRealizeServicesWorkloadViaFlowSet(t *testing.T) {
	w, s := ringSystem(t)
	wl := mustWorkload(t, w, 8, 4)
	set, err := flow.SynthesizeSequential(context.Background(), s, wl, 800, flow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := cycles.FromFlowSet(set, wl)
	if err != nil {
		t.Fatal(err)
	}
	plan, stats, err := Realize(cs, wl, 800)
	if err != nil {
		t.Fatal(err)
	}
	if v := warehouse.ValidatePlan(w, plan); len(v) > 0 {
		t.Fatalf("plan violates feasibility: %v", v[0])
	}
	if ok, why := warehouse.Services(w, plan, wl); !ok {
		t.Fatalf("plan does not service workload: %v (delivered %v)", why, stats.Delivered)
	}
}

func TestRealizeContractPathEndToEnd(t *testing.T) {
	w, s := ringSystem(t)
	wl := mustWorkload(t, w, 5, 2)
	set, err := flow.SynthesizeContract(context.Background(), s, wl, 800, flow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := cycles.FromFlowSet(set, wl)
	if err != nil {
		t.Fatal(err)
	}
	plan, stats, err := Realize(cs, wl, 800)
	if err != nil {
		t.Fatal(err)
	}
	if v := warehouse.ValidatePlan(w, plan); len(v) > 0 {
		t.Fatalf("plan violates feasibility: %v", v[0])
	}
	if ok, why := warehouse.Services(w, plan, wl); !ok {
		t.Fatalf("plan does not service workload: %v (delivered %v)", why, stats.Delivered)
	}
}

func TestRealizePlanShapeAndWarmup(t *testing.T) {
	w, s := ringSystem(t)
	wl := mustWorkload(t, w, 3, 0)
	cs, err := cycles.Synthesize(s, wl, 600, cycles.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, stats, err := Realize(cs, wl, 600)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Horizon() != 600 {
		t.Errorf("horizon = %d, want 600", plan.Horizon())
	}
	if plan.NumAgents() != stats.Agents {
		t.Errorf("plan agents = %d, stats = %d", plan.NumAgents(), stats.Agents)
	}
	// All agents start empty.
	for i := 0; i < plan.NumAgents(); i++ {
		if plan.States[i][0].Carried != warehouse.NoProduct {
			t.Errorf("agent %d starts carrying %d", i, plan.States[i][0].Carried)
		}
	}
	// Delivery cannot happen before anything was picked up: the serviced
	// timestep must be positive for positive demand.
	if stats.ServicedAt <= 0 {
		t.Errorf("ServicedAt = %d, want > 0", stats.ServicedAt)
	}
	_ = w
}

func TestRealizeRespectsStock(t *testing.T) {
	w, s := ringSystem(t)
	// Full demand equal to entire stock of product 0.
	wl := mustWorkload(t, w, 300, 0)
	cs, err := cycles.Synthesize(s, wl, 8000, cycles.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, stats, err := Realize(cs, wl, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if v := warehouse.ValidatePlan(w, plan); len(v) > 0 {
		t.Fatalf("plan violates feasibility (incl. stock accounting): %v", v[0])
	}
	if stats.Delivered[0] < 300 {
		t.Errorf("delivered %d of 300", stats.Delivered[0])
	}
	if stats.Picks > 300 {
		t.Errorf("picks %d exceed stock 300", stats.Picks)
	}
}

func TestRealizeRejectsBadInput(t *testing.T) {
	w, s := ringSystem(t)
	wl := mustWorkload(t, w, 1, 0)
	cs, err := cycles.Synthesize(s, wl, 600, cycles.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Realize(cs, wl, 0); err == nil {
		t.Error("Realize accepted T=0")
	}
	// Corrupt the cycle set: demand no longer covered.
	wl2 := mustWorkload(t, w, 200, 0)
	if _, _, err := Realize(cs, wl2, 600); err == nil {
		t.Error("Realize accepted a cycle set that cannot cover the demand")
	}
}

// Property-style stress: several workloads on the ring all produce feasible,
// servicing plans.
func TestRealizeManyWorkloads(t *testing.T) {
	w, s := ringSystem(t)
	for _, units := range [][]int{{1, 0}, {0, 1}, {5, 5}, {20, 0}, {17, 3}} {
		wl := mustWorkload(t, w, units...)
		cs, err := cycles.Synthesize(s, wl, 1200, cycles.Options{})
		if err != nil {
			t.Errorf("workload %v: synthesize: %v", units, err)
			continue
		}
		plan, stats, err := Realize(cs, wl, 1200)
		if err != nil {
			t.Errorf("workload %v: realize: %v", units, err)
			continue
		}
		if v := warehouse.ValidatePlan(w, plan); len(v) > 0 {
			t.Errorf("workload %v: infeasible plan: %v", units, v[0])
		}
		if ok, _ := warehouse.Services(w, plan, wl); !ok {
			t.Errorf("workload %v: not serviced (delivered %v)", units, stats.Delivered)
		}
	}
}
