package lp

import (
	"errors"
	"math/big"
	"math/rand"
	"os"
	"strconv"
	"testing"
)

// This file pins the revised simplex engine (revised.go, factor.go) to the
// dense tableau bit for bit: same Status, same Objective, and the same
// Values pointer-for-pointerwise-equal rationals, on random LPs and ILPs,
// through from-scratch solves and through lp.Model edit sequences. The
// dense engine is the reference; any divergence is a revised-engine bug.
//
// Rounds scale with LP_PARITY_ROUNDS (make test-lp-long sets it high); the
// default keeps the suite fast enough for every `go test ./...`.

// parityRounds returns the round count for a parity fuzz loop, scaled by
// the LP_PARITY_ROUNDS environment variable when set.
func parityRounds(t *testing.T, def int) int {
	if s := os.Getenv("LP_PARITY_ROUNDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad LP_PARITY_ROUNDS=%q", s)
		}
		return n
	}
	if testing.Short() {
		return def / 4
	}
	return def
}

// sameSolution fails the test unless the two solutions are bit-identical:
// same status, same objective (or both absent), and equal values at every
// variable.
func requireSameSolution(t *testing.T, tag string, dense, rev *Solution) {
	t.Helper()
	if dense.Status != rev.Status {
		t.Fatalf("%s: status dense=%v revised=%v", tag, dense.Status, rev.Status)
	}
	if (dense.Objective == nil) != (rev.Objective == nil) {
		t.Fatalf("%s: objective presence dense=%v revised=%v", tag, dense.Objective, rev.Objective)
	}
	if dense.Objective != nil && dense.Objective.Cmp(rev.Objective) != 0 {
		t.Fatalf("%s: objective dense=%s revised=%s", tag, dense.Objective, rev.Objective)
	}
	if len(dense.Values) != len(rev.Values) {
		t.Fatalf("%s: value count dense=%d revised=%d", tag, len(dense.Values), len(rev.Values))
	}
	for i := range dense.Values {
		if dense.Values[i].Cmp(rev.Values[i]) != 0 {
			t.Fatalf("%s: value[%d] dense=%s revised=%s", tag, i, dense.Values[i], rev.Values[i])
		}
	}
}

// TestRevisedParityLP solves random bounded LPs with both exact
// representations and requires bit-identical solutions.
func TestRevisedParityLP(t *testing.T) {
	rounds := parityRounds(t, 400)
	for seed := 0; seed < rounds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		p := randomBoundedProblem(rng, false)
		dense, err := SolveLPWith(p, SolveOptions{Simplex: SimplexDense})
		if err != nil {
			t.Fatalf("seed %d: dense: %v", seed, err)
		}
		rev, err := SolveLPWith(p, SolveOptions{Simplex: SimplexRevised})
		if err != nil {
			t.Fatalf("seed %d: revised: %v", seed, err)
		}
		if dense.Status == StatusOptimal {
			requireSameSolution(t, "LP seed "+strconv.Itoa(seed), dense, rev)
		} else if dense.Status != rev.Status {
			t.Fatalf("seed %d: status dense=%v revised=%v\n%s", seed, dense.Status, rev.Status, p)
		}
	}
}

// TestRevisedParityILP runs the warm-started branch and bound over both
// representations and requires bit-identical solutions, including under a
// tight deterministic work budget (the revised engine charges the dense
// engine's work units, so StatusLimit must strike at the same node).
func TestRevisedParityILP(t *testing.T) {
	rounds := parityRounds(t, 200)
	for seed := 0; seed < rounds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		p := randomBoundedProblem(rng, true)
		for _, opts := range []ILPOptions{
			{},
			{MaxWork: 40_000},
		} {
			dOpts, rOpts := opts, opts
			dOpts.Simplex = SimplexDense
			rOpts.Simplex = SimplexRevised
			dense, err := SolveILP(p, dOpts)
			if err != nil {
				t.Fatalf("seed %d: dense: %v", seed, err)
			}
			rev, err := SolveILP(p, rOpts)
			if err != nil {
				t.Fatalf("seed %d: revised: %v", seed, err)
			}
			tag := "ILP seed " + strconv.Itoa(seed)
			if dense.Status == StatusOptimal {
				requireSameSolution(t, tag, dense, rev)
			} else if dense.Status != rev.Status {
				t.Fatalf("%s: status dense=%v revised=%v\n%s", tag, dense.Status, rev.Status, p)
			}
		}
	}
}

// randomEdit applies one random in-place edit through the Model setters,
// mirroring what refinement probes, lifelong epochs, and branch-and-bound
// reentry do to a retained model.
func randomEdit(rng *rand.Rand, mos []*Model) {
	p := mos[0].Problem()
	switch rng.Intn(3) {
	case 0: // retarget a bound; sometimes alias lo==hi through one pointer
		v := VarID(rng.Intn(len(p.Vars)))
		var lo, hi *big.Rat
		switch rng.Intn(4) {
		case 0:
			b := big.NewRat(int64(rng.Intn(7)-3), 1)
			lo, hi = b, b // aliased fixed bound
		case 1:
			lo = big.NewRat(int64(rng.Intn(5)-2), 1)
			hi = new(big.Rat).Add(lo, big.NewRat(int64(rng.Intn(5)), 1))
		case 2:
			lo = big.NewRat(int64(rng.Intn(5)-2), 1)
		case 3:
			hi = big.NewRat(int64(rng.Intn(7)), 1)
		}
		// One-sided integer edits (seed 1376's historical hang) are fair
		// game since the integer-box derivation and the open-march guard:
		// the search either boxes the open side from the rows or rejects
		// the runaway branch with ErrUnboundedIntDomain, identically in
		// every representation.
		for _, mo := range mos {
			mo.SetBound(v, lo, hi)
		}
	case 1: // retarget a right-hand side
		ci := rng.Intn(len(p.Constraints))
		rhs := big.NewRat(int64(rng.Intn(17)-6), 1)
		for _, mo := range mos {
			mo.SetRHS(ci, rhs)
		}
	case 2: // swap the objective
		var obj []Term
		for i := range p.Vars {
			if coef := int64(rng.Intn(7) - 3); coef != 0 {
				obj = append(obj, T(VarID(i), coef))
			}
		}
		maximize := rng.Intn(2) == 0
		for _, mo := range mos {
			mo.SetObjective(obj, maximize)
		}
	}
}

// TestRevisedParityModelEdits drives random edit sequences through two
// retained Models — one pinned dense, one pinned revised — re-solving (LP
// and ILP) after every edit, and cross-checks both against from-scratch
// solves of the edited problem. This covers the warm dual reentry after
// SetBound/SetRHS, the phase-2 primal reentry after SetObjective, the
// unique-optimum certificate, and branch-and-bound node reentry, all over
// the factorized basis.
func TestRevisedParityModelEdits(t *testing.T) {
	rounds := parityRounds(t, 60)
	for seed := 0; seed < rounds; seed++ {
		rng := rand.New(rand.NewSource(int64(1000 + seed)))
		integer := seed%2 == 0
		pd := randomBoundedProblem(rng, integer)
		// Two structurally identical copies so each model owns its problem.
		rng2 := rand.New(rand.NewSource(int64(1000 + seed)))
		pr := randomBoundedProblem(rng2, integer)

		dm := NewModel(pd)
		dm.SetSimplex(SimplexDense)
		rm := NewModel(pr)
		rm.SetSimplex(SimplexRevised)

		edits := 3 + rng.Intn(5)
		for e := 0; e <= edits; e++ {
			if e > 0 {
				// Apply the same edit to both models (randomEdit reads
				// structure from the first).
				st := rng.Int63()
				randomEdit(rand.New(rand.NewSource(st)), []*Model{dm})
				randomEdit(rand.New(rand.NewSource(st)), []*Model{rm})
			}
			tag := "model seed " + strconv.Itoa(seed) + " edit " + strconv.Itoa(e)
			dense, err := dm.Resolve()
			if err != nil {
				t.Fatalf("%s: dense resolve: %v", tag, err)
			}
			rev, err := rm.Resolve()
			if err != nil {
				t.Fatalf("%s: revised resolve: %v", tag, err)
			}
			scratch, err := SolveLPWith(dm.Problem(), SolveOptions{Simplex: SimplexDense})
			if err != nil {
				t.Fatalf("%s: scratch: %v", tag, err)
			}
			if dense.Status == StatusOptimal {
				requireSameSolution(t, tag+" (LP)", dense, rev)
				requireSameSolution(t, tag+" (LP vs scratch)", scratch, rev)
			} else if dense.Status != rev.Status || scratch.Status != rev.Status {
				t.Fatalf("%s: status dense=%v revised=%v scratch=%v", tag, dense.Status, rev.Status, scratch.Status)
			}
			if integer {
				di, derr := dm.ResolveILP(ILPOptions{})
				ri, rerr := rm.ResolveILP(ILPOptions{})
				if derr != nil || rerr != nil {
					// An edit can leave an integer variable one-sided with
					// no derivable box; the open-march guard must then
					// reject BOTH representations with the typed error.
					if errors.Is(derr, ErrUnboundedIntDomain) && errors.Is(rerr, ErrUnboundedIntDomain) {
						continue
					}
					t.Fatalf("%s: ILP dense err=%v revised err=%v", tag, derr, rerr)
				}
				if di.Status == StatusOptimal {
					requireSameSolution(t, tag+" (ILP)", di, ri)
				} else if di.Status != ri.Status {
					t.Fatalf("%s: ILP status dense=%v revised=%v", tag, di.Status, ri.Status)
				}
			}
		}
	}
}

// randomSparseNetwork builds a larger conservation-plus-capacity LP in the
// shape the contract compiler emits — enough rows to cross the SimplexAuto
// threshold and enough pivots to roll the eta file past its refactorization
// triggers.
func randomSparseNetwork(rng *rand.Rand, nodes, commodities int, integer bool) *Problem {
	p := &Problem{}
	zero := big.NewRat(0, 1)
	fv := make([][]VarID, nodes)
	for e := 0; e < nodes; e++ {
		fv[e] = make([]VarID, commodities)
		for k := 0; k < commodities; k++ {
			if integer {
				fv[e][k] = p.AddIntVar("f", zero, big.NewRat(int64(4+rng.Intn(6)), 1))
			} else {
				fv[e][k] = p.AddVar("f", zero, nil)
			}
		}
	}
	for c := 0; c < nodes; c++ {
		in, out := (c+nodes-1)%nodes, c
		for k := 0; k < commodities; k++ {
			terms := []Term{T(fv[in][k], 1), T(fv[out][k], -1)}
			if c == 0 && k > 0 {
				p.AddConstraint("pick", terms, GE, big.NewRat(-int64(1+rng.Intn(3)), 1))
				continue
			}
			p.AddConstraint("cons", terms, EQ, zero)
		}
	}
	for e := 0; e < nodes; e++ {
		terms := make([]Term, commodities)
		for k := 0; k < commodities; k++ {
			terms[k] = T(fv[e][k], 1)
		}
		p.AddConstraint("cap", terms, LE, big.NewRat(int64(2+commodities+rng.Intn(4)), 1))
	}
	for k := 1; k < commodities; k++ {
		p.AddConstraint("demand", []Term{T(fv[nodes/2][k], 1)}, GE, big.NewRat(int64(1+k%2), 1))
	}
	var obj []Term
	for e := 0; e < nodes; e++ {
		for k := 0; k < commodities; k++ {
			obj = append(obj, T(fv[e][k], int64(1+rng.Intn(3))))
		}
	}
	p.SetObjective(obj, false)
	return p
}

// TestRevisedParityLarge crosses the auto-selection threshold with
// contract-shaped networks, exercising refactorization and the eta file,
// and checks parity on LP and ILP solves plus a SetRHS re-solve ride.
func TestRevisedParityLarge(t *testing.T) {
	rounds := parityRounds(t, 8)
	for seed := 0; seed < rounds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		integer := seed%2 == 1
		p := randomSparseNetwork(rng, 12+rng.Intn(6), 4+rng.Intn(3), integer)
		if len(p.Constraints) < revisedAutoRows {
			t.Fatalf("seed %d: network too small for auto threshold (%d rows)", seed, len(p.Constraints))
		}
		// SimplexAuto routes this size to the revised engine already; pin
		// both explicitly anyway so the test stays honest if the threshold
		// moves.
		dense, err := SolveLPWith(p, SolveOptions{Simplex: SimplexDense})
		if err != nil {
			t.Fatalf("seed %d: dense: %v", seed, err)
		}
		rev, err := SolveLPWith(p, SolveOptions{Simplex: SimplexRevised})
		if err != nil {
			t.Fatalf("seed %d: revised: %v", seed, err)
		}
		tag := "large seed " + strconv.Itoa(seed)
		if dense.Status == StatusOptimal {
			requireSameSolution(t, tag, dense, rev)
		} else if dense.Status != rev.Status {
			t.Fatalf("%s: status dense=%v revised=%v", tag, dense.Status, rev.Status)
		}
		if integer {
			di, err := SolveILP(p, ILPOptions{Simplex: SimplexDense})
			if err != nil {
				t.Fatalf("%s: dense ILP: %v", tag, err)
			}
			ri, err := SolveILP(p, ILPOptions{Simplex: SimplexRevised})
			if err != nil {
				t.Fatalf("%s: revised ILP: %v", tag, err)
			}
			if di.Status == StatusOptimal {
				requireSameSolution(t, tag+" (ILP)", di, ri)
			} else if di.Status != ri.Status {
				t.Fatalf("%s: ILP status dense=%v revised=%v", tag, di.Status, ri.Status)
			}
		}
		// A SetRHS retarget plus warm re-solve on both representations.
		dm := NewModel(p)
		dm.SetSimplex(SimplexDense)
		rm := NewModel(p)
		rm.SetSimplex(SimplexRevised)
		if _, err := dm.Resolve(); err != nil {
			t.Fatal(err)
		}
		if _, err := rm.Resolve(); err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 4; probe++ {
			ci := rng.Intn(len(p.Constraints))
			rhs := big.NewRat(int64(rng.Intn(9)-2), 1)
			dm.SetRHS(ci, rhs)
			rm.SetRHS(ci, rhs)
			ds, err := dm.Resolve()
			if err != nil {
				t.Fatal(err)
			}
			rs, err := rm.Resolve()
			if err != nil {
				t.Fatal(err)
			}
			ptag := tag + " probe " + strconv.Itoa(probe)
			if ds.Status == StatusOptimal {
				requireSameSolution(t, ptag, ds, rs)
			} else if ds.Status != rs.Status {
				t.Fatalf("%s: status dense=%v revised=%v", ptag, ds.Status, rs.Status)
			}
		}
	}
}
