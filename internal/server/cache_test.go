package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/wsp"
)

func newTestCache(sigCap, perSig int) *scratchCache {
	met := &metrics{}
	return newScratchCache(Config{CacheSignatures: sigCap, CachePerSignature: perSig}.withDefaults(), met)
}

// TestCacheSingleFlight: concurrent first contacts on one signature
// compile once — followers block on the leader's gate, then split the warm
// scratch and cold fallbacks deterministically.
func TestCacheSingleFlight(t *testing.T) {
	c := newTestCache(4, 2)
	ctx := context.Background()

	leaderSc, err := c.checkout(ctx, "sig")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.met.cacheMisses.Load(); got != 1 {
		t.Fatalf("leader checkout: misses = %d, want 1", got)
	}

	// Two followers arrive mid-compile: both must park on the gate.
	type out struct {
		sc  *wsp.Scratch
		err error
	}
	results := make(chan out, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc, err := c.checkout(ctx, "sig")
			results <- out{sc, err}
		}()
	}
	waitFor(t, func() bool { return c.met.cacheWaits.Load() == 2 })

	c.release("sig", leaderSc)
	wg.Wait()
	close(results)
	var warm, cold int
	for r := range results {
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.sc == leaderSc {
			warm++
		} else {
			cold++
		}
	}
	if warm != 1 || cold != 1 {
		t.Errorf("followers got warm=%d cold=%d, want exactly one each", warm, cold)
	}
	if hits := c.met.cacheHits.Load(); hits != 1 {
		t.Errorf("hits = %d, want 1", hits)
	}
}

// TestCacheWaiterHonorsDeadline: a follower parked on the single-flight
// gate unblocks when its own context fires, with the full error taxonomy
// (ErrCanceled + the deadline cause).
func TestCacheWaiterHonorsDeadline(t *testing.T) {
	c := newTestCache(4, 2)
	if _, err := c.checkout(context.Background(), "sig"); err != nil {
		t.Fatal(err) // leader, never released: compile "hangs"
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := c.checkout(ctx, "sig")
	if err == nil {
		t.Fatal("waiter returned without the gate opening")
	}
	if !errors.Is(err, wsp.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("waiter error %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
}

// TestCacheDiscardWakesWaiters: a panicked solve's scratch is dropped, but
// its single-flight waiters are still released to retry cold.
func TestCacheDiscardWakesWaiters(t *testing.T) {
	c := newTestCache(4, 2)
	ctx := context.Background()
	if _, err := c.checkout(ctx, "sig"); err != nil {
		t.Fatal(err)
	}
	got := make(chan *wsp.Scratch, 1)
	go func() {
		sc, err := c.checkout(ctx, "sig")
		if err != nil {
			t.Error(err)
		}
		got <- sc
	}()
	waitFor(t, func() bool { return c.met.cacheWaits.Load() == 1 })

	c.discard("sig") // the leader's solve panicked
	sc := <-got
	if sc == nil {
		t.Fatal("waiter not released after discard")
	}
	if c.met.cacheMisses.Load() != 2 {
		t.Errorf("misses = %d, want 2 (waiter retried cold)", c.met.cacheMisses.Load())
	}
}

// TestCacheEvictsLRU: signatures beyond the cap are evicted least-recently
// used; a released scratch for an evicted signature is dropped silently.
func TestCacheEvictsLRU(t *testing.T) {
	c := newTestCache(2, 2)
	ctx := context.Background()
	a, _ := c.checkout(ctx, "a")
	c.release("a", a)
	b, _ := c.checkout(ctx, "b")
	c.release("b", b)
	a2, _ := c.checkout(ctx, "a") // refresh a: b is now stalest
	c.release("a", a2)
	if a2 != a {
		t.Fatal("warm scratch not reused within cap")
	}

	x, _ := c.checkout(ctx, "x") // third signature: b evicted
	c.release("x", x)
	if c.met.cacheEvictions.Load() != 1 {
		t.Fatalf("evictions = %d, want 1", c.met.cacheEvictions.Load())
	}
	if _, ok := c.entries["b"]; ok {
		t.Error("b survived eviction; LRU order broken")
	}
	if _, ok := c.entries["a"]; !ok {
		t.Error("a (recently used) was evicted")
	}

	// Releasing into an evicted signature must not resurrect it.
	c.release("b", wsp.NewScratch())
	if _, ok := c.entries["b"]; ok {
		t.Error("release resurrected an evicted signature")
	}
}
