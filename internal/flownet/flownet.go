// Package flownet provides integral network-flow algorithms: Dinic's
// max-flow and successive-shortest-path min-cost flow.
//
// The flow-synthesis pipeline uses these for the scalable strategy
// (per-product routing and empty-agent return balancing) and for
// decomposing a synthesized agent-flow set into the path sets of
// Properties 4.2/4.3. Both algorithms return integral flows on integral
// capacities, which the pipeline relies on.
package flownet

import (
	"container/heap"
	"fmt"
	"math"
)

// Graph is a directed flow network built incrementally with AddEdge.
// Vertices are dense ints 0..n-1 chosen by the caller.
type Graph struct {
	n    int
	head [][]int32 // adjacency: vertex -> edge indices (incl. reverse edges)
	edge []edge
}

type edge struct {
	to   int32
	cap  int64 // residual capacity
	cost int64
	orig int64 // original capacity (to report flow = orig - cap)
}

// NewGraph creates a flow network with n vertices.
func NewGraph(n int) *Graph {
	return &Graph{n: n, head: make([][]int32, n)}
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return g.n }

// EdgeID identifies an edge added by AddEdge.
type EdgeID int32

// AddEdge adds a directed edge u->v with the given capacity and cost and
// returns its ID. A reverse edge with zero capacity and negated cost is
// created automatically.
func (g *Graph) AddEdge(u, v int, capacity, cost int64) EdgeID {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("flownet: edge %d->%d out of range (n=%d)", u, v, g.n))
	}
	if capacity < 0 {
		panic(fmt.Sprintf("flownet: negative capacity %d on edge %d->%d", capacity, u, v))
	}
	id := EdgeID(len(g.edge))
	g.edge = append(g.edge, edge{to: int32(v), cap: capacity, cost: cost, orig: capacity})
	g.head[u] = append(g.head[u], int32(id))
	g.edge = append(g.edge, edge{to: int32(u), cap: 0, cost: -cost, orig: 0})
	g.head[v] = append(g.head[v], int32(id)+1)
	return id
}

// Flow returns the flow currently routed through edge id.
func (g *Graph) Flow(id EdgeID) int64 { return g.edge[id].orig - g.edge[id].cap }

// Capacity returns the original capacity of edge id.
func (g *Graph) Capacity(id EdgeID) int64 { return g.edge[id].orig }

// Reset restores every edge to its original capacity, erasing all flow.
func (g *Graph) Reset() {
	for i := range g.edge {
		g.edge[i].cap = g.edge[i].orig
	}
}

// MaxFlow pushes the maximum flow from s to t using Dinic's algorithm and
// returns its value. Flow already routed (e.g. by a previous call) is kept.
func (g *Graph) MaxFlow(s, t int) int64 {
	if s == t {
		return 0
	}
	var total int64
	level := make([]int32, g.n)
	iter := make([]int, g.n)
	queue := make([]int32, 0, g.n)
	for {
		// BFS level graph.
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, eid := range g.head[v] {
				e := &g.edge[eid]
				if e.cap > 0 && level[e.to] < 0 {
					level[e.to] = level[v] + 1
					queue = append(queue, e.to)
				}
			}
		}
		if level[t] < 0 {
			return total
		}
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := g.dfsAugment(s, t, math.MaxInt64, level, iter)
			if f == 0 {
				break
			}
			total += f
		}
	}
}

func (g *Graph) dfsAugment(v, t int, limit int64, level []int32, iter []int) int64 {
	if v == t {
		return limit
	}
	for ; iter[v] < len(g.head[v]); iter[v]++ {
		eid := g.head[v][iter[v]]
		e := &g.edge[eid]
		if e.cap <= 0 || level[e.to] != level[v]+1 {
			continue
		}
		d := g.dfsAugment(int(e.to), t, min64(limit, e.cap), level, iter)
		if d > 0 {
			e.cap -= d
			g.edge[eid^1].cap += d
			return d
		}
	}
	return 0
}

// MinCostFlow routes up to maxFlow units from s to t along successively
// cheapest augmenting paths (Bellman-Ford potentials, then Dijkstra). It
// returns the flow actually routed and its total cost. Negative edge costs
// are supported as long as the network has no negative cycle.
func (g *Graph) MinCostFlow(s, t int, maxFlow int64) (flow, cost int64) {
	if s == t || maxFlow <= 0 {
		return 0, 0
	}
	const inf = math.MaxInt64 / 4
	pot := make([]int64, g.n)
	// Bellman-Ford to initialize potentials (handles negative costs).
	for i := 0; i < g.n; i++ {
		updated := false
		for v := 0; v < g.n; v++ {
			if pot[v] == inf {
				continue
			}
			for _, eid := range g.head[v] {
				e := &g.edge[eid]
				if e.cap > 0 && pot[v]+e.cost < pot[e.to] {
					pot[e.to] = pot[v] + e.cost
					updated = true
				}
			}
		}
		if !updated {
			break
		}
	}
	dist := make([]int64, g.n)
	prevEdge := make([]int32, g.n)
	for flow < maxFlow {
		// Dijkstra with potentials.
		for i := range dist {
			dist[i] = inf
			prevEdge[i] = -1
		}
		dist[s] = 0
		pq := &vertexHeap{{0, int32(s)}}
		for pq.Len() > 0 {
			item := heap.Pop(pq).(vertexDist)
			v := int(item.v)
			if item.d > dist[v] {
				continue
			}
			for _, eid := range g.head[v] {
				e := &g.edge[eid]
				if e.cap <= 0 {
					continue
				}
				nd := dist[v] + e.cost + pot[v] - pot[e.to]
				if nd < dist[e.to] {
					dist[e.to] = nd
					prevEdge[e.to] = eid
					heap.Push(pq, vertexDist{nd, e.to})
				}
			}
		}
		if dist[t] >= inf {
			break // t unreachable in residual graph
		}
		for v := 0; v < g.n; v++ {
			if dist[v] < inf {
				pot[v] += dist[v]
			}
		}
		// Bottleneck along the path.
		push := maxFlow - flow
		for v := int32(t); v != int32(s); {
			e := &g.edge[prevEdge[v]]
			push = min64(push, e.cap)
			v = g.edge[prevEdge[v]^1].to
		}
		for v := int32(t); v != int32(s); {
			eid := prevEdge[v]
			g.edge[eid].cap -= push
			g.edge[eid^1].cap += push
			cost += push * g.edge[eid].cost
			v = g.edge[eid^1].to
		}
		flow += push
	}
	return flow, cost
}

type vertexDist struct {
	d int64
	v int32
}

type vertexHeap []vertexDist

func (h vertexHeap) Len() int            { return len(h) }
func (h vertexHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h vertexHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *vertexHeap) Push(x interface{}) { *h = append(*h, x.(vertexDist)) }
func (h *vertexHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
