package wsp_test

import (
	"context"
	"errors"
	"fmt"
	"log"

	"repro/wsp"
)

// ringInstance builds the quickstart warehouse: a one-way ring around an
// interior block with two shelves and one packing station.
func ringInstance() (wsp.Instance, error) {
	g, _, stationCoords, err := wsp.ParseGrid(
		"..........\n" +
			".@@######.\n" +
			".########.\n" +
			".########.\n" +
			".########.\n" +
			"....T.....")
	if err != nil {
		return wsp.Instance{}, err
	}
	shelfAccess := []wsp.VertexID{
		g.At(wsp.Coord{X: 1, Y: 5}),
		g.At(wsp.Coord{X: 2, Y: 5}),
	}
	var stations []wsp.VertexID
	for _, c := range stationCoords {
		stations = append(stations, g.At(c))
	}
	w, err := wsp.NewWarehouse(g, shelfAccess, stations, 2, [][]int{{300, 0}, {0, 300}})
	if err != nil {
		return wsp.Instance{}, err
	}
	at := func(x, y int) wsp.VertexID { return g.At(wsp.Coord{X: x, Y: y}) }
	var south, east, north, west []wsp.VertexID
	for x := 0; x <= 9; x++ {
		south = append(south, at(x, 0))
	}
	for y := 1; y <= 5; y++ {
		east = append(east, at(9, y))
	}
	for x := 8; x >= 0; x-- {
		north = append(north, at(x, 5))
	}
	for y := 4; y >= 1; y-- {
		west = append(west, at(0, y))
	}
	sys, err := wsp.BuildTraffic(w, [][]wsp.VertexID{south, east, north, west})
	if err != nil {
		return wsp.Instance{}, err
	}
	wl, err := wsp.NewWorkload(w, []int{12, 7})
	if err != nil {
		return wsp.Instance{}, err
	}
	return wsp.Instance{System: sys, Workload: wl, Horizon: 800}, nil
}

// The five-minute tour: build an instance, solve it, read the plan stats.
// Solves are deterministic, so the output is stable.
func ExampleSolver_Solve() {
	inst, err := ringInstance()
	if err != nil {
		log.Fatal(err)
	}
	solver := wsp.New() // defaults: route-packing strategy
	res, err := solver.Solve(context.Background(), inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("agents: %d\n", res.Stats.Agents)
	fmt.Printf("serviced at: t=%d\n", res.Sim.ServicedAt)
	fmt.Printf("delivered: %v\n", res.Sim.Delivered)
	// Output:
	// agents: 4
	// serviced at: t=406
	// delivered: [12 7]
}

// Cancellation rides the context: a cancelled solve returns an error that
// classifies as ErrCanceled via errors.Is, within one work-budget tick of
// the channel firing.
func ExampleSolver_Solve_cancellation() {
	inst, err := ringInstance()
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the operator walked away before the solve started

	solver := wsp.New(wsp.WithStrategy(wsp.ContractILP), wsp.WithExact(true))
	_, err = solver.Solve(ctx, inst)
	fmt.Println("canceled:", errors.Is(err, wsp.ErrCanceled))
	// Output:
	// canceled: true
}

// The error taxonomy classifies failures without string matching: here the
// admission check proves a two-cycle-period horizon infeasible and attaches
// the LP certificate.
func ExampleSolver_Solve_taxonomy() {
	inst, err := ringInstance()
	if err != nil {
		log.Fatal(err)
	}
	inst.Horizon = 60 // far too short to service 19 units

	solver := wsp.New(wsp.WithStrategy(wsp.ContractILP), wsp.WithAdmissionCheck(true))
	_, err = solver.Solve(context.Background(), inst)
	fmt.Println("infeasible:", errors.Is(err, wsp.ErrInfeasible))
	var ie *wsp.InfeasibleError
	if errors.As(err, &ie) {
		fmt.Println("certificate:", ie.Cert)
	}
	// Output:
	// infeasible: true
	// certificate: infeasible
}

// SolveBatch drains a batch over a bounded worker pool; results are
// bit-identical to sequential solves regardless of width.
func ExampleSolver_SolveBatch() {
	inst, err := ringInstance()
	if err != nil {
		log.Fatal(err)
	}
	solver := wsp.New(wsp.WithParallel(2))
	for i, r := range solver.SolveBatch(context.Background(), []wsp.Instance{inst, inst}) {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		fmt.Printf("instance %d: %d agents, serviced t=%d\n", i, r.Res.Stats.Agents, r.Res.Sim.ServicedAt)
	}
	// Output:
	// instance 0: 4 agents, serviced t=406
	// instance 1: 4 agents, serviced t=406
}
