// Package faultinject provides composable fault hooks for the wspd solve
// service. A Hook runs at the top of a request's solve section — inside the
// server's panic-isolation recover() and its admission/deadline scaffolding
// — so tests can force the failure modes the service must survive: slow
// solves (drain and disconnect windows), solver panics (isolation), and
// injected errors (taxonomy mapping), without needing a pathological LP
// instance for each one. The production server runs with a nil Hook; the
// hook call sits outside the solver hot path either way.
package faultinject

import (
	"context"
	"sync/atomic"
	"time"
)

// Info describes the request a hook intercepts.
type Info struct {
	// Path is the endpoint serving the request (e.g. "/v1/solve").
	Path string
	// Client is the admission identity the request was charged to.
	Client string
	// Horizon is the instance's timestep budget (0 for sweeps).
	Horizon int
}

// Hook intercepts a solve. Returning nil lets the solve proceed; returning
// an error aborts it (the server maps the error through its usual
// taxonomy); panicking exercises the server's per-request recover.
type Hook func(ctx context.Context, info Info) error

// Sleep stalls the solve for d — a stand-in for a long-running instance.
// It returns early with the context's cause when the request's deadline
// fires or the client disconnects mid-sleep, exactly as a real cancellable
// solve would.
func Sleep(d time.Duration) Hook {
	return func(ctx context.Context, _ Info) error {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return context.Cause(ctx)
		}
	}
}

// Panic panics with msg — a stand-in for a solver bug on one bad instance.
func Panic(msg string) Hook {
	return func(context.Context, Info) error { panic(msg) }
}

// Fail aborts the solve with err.
func Fail(err error) Hook {
	return func(context.Context, Info) error { return err }
}

// After passes the first n intercepted solves through untouched, then
// applies h to every later one.
func After(n int64, h Hook) Hook {
	var seen atomic.Int64
	return func(ctx context.Context, info Info) error {
		if seen.Add(1) <= n {
			return nil
		}
		return h(ctx, info)
	}
}

// Times applies h to the first n intercepted solves, then passes the rest
// through untouched.
func Times(n int64, h Hook) Hook {
	var seen atomic.Int64
	return func(ctx context.Context, info Info) error {
		if seen.Add(1) > n {
			return nil
		}
		return h(ctx, info)
	}
}

// Chain runs hooks in order, stopping at the first error.
func Chain(hooks ...Hook) Hook {
	return func(ctx context.Context, info Info) error {
		for _, h := range hooks {
			if h == nil {
				continue
			}
			if err := h(ctx, info); err != nil {
				return err
			}
		}
		return nil
	}
}
