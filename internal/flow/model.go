package flow

import (
	"context"
	"fmt"
	"math/big"
	"slices"

	"repro/internal/contracts"
	"repro/internal/lp"
	"repro/internal/traffic"
	"repro/internal/warehouse"
)

// ContractModel caches the compiled §IV-D contract machinery of one
// traffic-system shape and re-targets it across solves instead of
// recompiling: component contracts are cached per (component, qc), the
// ⊗-composition is cached per structure, and the conjunction with the
// workload contract lives in a persistent contracts.Compiled whose
// fincap/demand right-hand sides are rewritten per solve. Everything the
// horizon (qc, qeff), the workload vector, or shelf stock can change enters
// the ILP only through those right-hand sides, so refinement probes,
// lifelong epochs, and design-sweep evaluations differ from their
// predecessor by a handful of SetRHS edits plus a re-solve in the retained
// arena.
//
// Synthesize and Admit are bit-identical to SynthesizeContract and Admit on
// the same inputs: the cached compilation is structurally equal to a fresh
// one (same variable and constraint order), the re-targeted right-hand
// sides are recomputed from the current system and workload, and the lp
// layer guarantees incremental solves match from-scratch ones.
//
// A ContractModel is not safe for concurrent use; keep one per solver-pool
// worker (core.Scratch does exactly that).
type ContractModel struct {
	sig string // traffic.StructureSignature of the cached compilation

	// ⊗-composition of the per-component contracts, valid for (sig,
	// compQC) — the (component, qc) compilation cache: identical component
	// contracts are no longer recompiled on every synthesis retry or
	// lifelong epoch. The qc key keeps the cached contracts valid in their
	// own right (their baked fincap RHS match their key); the compiled
	// conjunction below deliberately does NOT carry the key, because
	// target rewrites every fincap/demand RHS before solving — which is
	// also why the cache survives stock depletion across epochs.
	compQC int
	cts    *contracts.Contract

	support []bool // products with a demand row in the compiled conjunction
	cc      *contracts.Compiled

	// Row indices of the retargeted constraints, resolved once per compile
	// so the per-solve retarget loop is index arithmetic, not string
	// formatting: fincapRows is ShelvingRows-order × products, demandRows
	// per product (-1 when the product has no demand row).
	fincapRows []int
	demandRows []int

	// lastSys short-circuits the signature recompute for the common case of
	// many solves on one System pointer (refinement probes, sweep series).
	lastSys *traffic.System
}

// target makes the compiled conjunction current for (s, wl, qc, qeff):
// reusing every cached layer whose key still matches, recompiling the rest,
// then rewriting the horizon-, stock- and workload-dependent right-hand
// sides. It returns the goal contract (for budget sizing).
func (cm *ContractModel) target(s *traffic.System, wl warehouse.Workload, qc, qeff int) (*contracts.Contract, error) {
	if s != cm.lastSys {
		if sig := s.StructureSignature(); sig != cm.sig {
			cm.sig = sig
			cm.cts, cm.cc, cm.support = nil, nil, nil
		}
		cm.lastSys = s
	}
	support := make([]bool, len(wl.Units))
	for k, want := range wl.Units {
		support[k] = want > 0
	}
	if cm.cc == nil || !slices.Equal(cm.support, support) {
		if cm.cts == nil || cm.compQC != qc {
			comps := make([]*contracts.Contract, 0, len(s.Components))
			for _, comp := range s.Components {
				c, err := CompileComponentContract(s, comp.ID, qc)
				if err != nil {
					return nil, err
				}
				comps = append(comps, c)
			}
			cts, err := contracts.ComposeAllFast(comps)
			if err != nil {
				return nil, err
			}
			cm.compQC, cm.cts = qc, cts
		}
		cw, err := CompileWorkloadContract(s, wl, qeff)
		if err != nil {
			return nil, err
		}
		goal, err := contracts.Conjoin(cm.cts, cw)
		if err != nil {
			return nil, err
		}
		cc := goal.Compile()
		fincapRows, demandRows, err := resolveRows(s, cc, support)
		if err != nil {
			// Leave the cache untouched: installing any piece of the new
			// compilation here would make the next (cache-hitting) call
			// retarget rows of the wrong model instead of re-reporting this.
			return nil, err
		}
		cm.cc, cm.support = cc, support
		cm.fincapRows, cm.demandRows = fincapRows, demandRows
	}
	// Retarget: fincap_{i,k} ≤ UNITS_AT(Ci, ρk)/qc on every shelving row,
	// demand_k ≥ w_k/qeff for every demanded product — by pre-resolved row
	// index, since these are the same rows every solve.
	p := s.W.NumProducts
	at := 0
	for _, ci := range s.ShelvingRows() {
		for k := 0; k < p; k++ {
			units := s.UnitsAt(ci, warehouse.ProductID(k))
			cm.cc.SetRHSAt(cm.fincapRows[at], big.NewRat(int64(units), int64(qc)))
			at++
		}
	}
	for k, want := range wl.Units {
		if want == 0 {
			continue
		}
		cm.cc.SetRHSAt(cm.demandRows[k], big.NewRat(int64(want), int64(qeff)))
	}
	return cm.cc.Contract, nil
}

// resolveRows resolves the row indices of every retargeted constraint of a
// freshly compiled conjunction.
func resolveRows(s *traffic.System, cc *contracts.Compiled, support []bool) (fincapRows, demandRows []int, err error) {
	p := s.W.NumProducts
	for _, ci := range s.ShelvingRows() {
		for k := 0; k < p; k++ {
			name := fmt.Sprintf("fincap_%d_%d", ci, k)
			row, ok := cc.Row(name)
			if !ok {
				return nil, nil, fmt.Errorf("flow: compiled conjunction lacks %s", name)
			}
			fincapRows = append(fincapRows, row)
		}
	}
	for k := 0; k < p; k++ {
		if !support[k] {
			demandRows = append(demandRows, -1)
			continue
		}
		name := fmt.Sprintf("demand_%d", k)
		row, ok := cc.Row(name)
		if !ok {
			return nil, nil, fmt.Errorf("flow: compiled conjunction lacks %s", name)
		}
		demandRows = append(demandRows, row)
	}
	return fincapRows, demandRows, nil
}

// Synthesize is the model-reusing variant of SynthesizeContract: identical
// inputs produce a bit-identical Set, with compilation amortized across
// calls that share the traffic-system shape. Cancelling ctx aborts the ILP
// search within one work-budget tick; the retained model stays valid and
// serves the next solve cold.
func (cm *ContractModel) Synthesize(ctx context.Context, s *traffic.System, wl warehouse.Workload, T int, opts Options) (*Set, error) {
	margin := opts.WarmupMargin
	if margin == 0 {
		margin = autoMargin(s, T)
	}
	tc, qc, qeff, err := periods(s, T, margin)
	if err != nil {
		return nil, err
	}
	goal, err := cm.target(s, wl, qc, qeff)
	if err != nil {
		return nil, err
	}
	asn, err := cm.cc.Satisfy(synthesisILPOptions(ctx, goal, opts))
	if err != nil {
		return nil, err
	}
	if asn == nil {
		return nil, &InfeasibleError{Cert: CertMaybeFeasible, Horizon: T, Reason: "contract conjunction unsatisfiable"}
	}
	return decodeSet(s, wl, tc, qc, qeff, asn)
}

// Admit is the model-reusing variant of the package-level Admit: the same
// certificate, decided on the retained model. Infeasible probes — the
// common case when shrinking a horizon — ride the warm dual reentry.
func (cm *ContractModel) Admit(ctx context.Context, s *traffic.System, wl warehouse.Workload, T int, opts Options) (Certificate, error) {
	margin := opts.WarmupMargin
	if margin == 0 {
		margin = autoMargin(s, T)
	}
	_, qc, qeff, err := periods(s, T, margin)
	if err != nil {
		if wl.TotalUnits() > 0 {
			return CertInfeasible, nil
		}
		return CertMaybeFeasible, nil
	}
	if _, err := cm.target(s, wl, qc, qeff); err != nil {
		return CertMaybeFeasible, err
	}
	// Per-call override only: a SetSimplex here would stick to the retained
	// model and silently shadow SimplexAuto on later solves.
	feasible, err := cm.cc.RelaxationFeasibleOpts(lp.SolveOptions{Simplex: opts.Simplex, AutoRows: opts.AutoRows, Cancel: cancelOf(ctx)})
	if err != nil {
		return CertMaybeFeasible, err
	}
	if !feasible {
		return CertInfeasible, nil
	}
	return CertMaybeFeasible, nil
}

// MustAdmit wraps Admit into an error for pipeline use, mirroring the
// package-level MustAdmit.
func (cm *ContractModel) MustAdmit(ctx context.Context, s *traffic.System, wl warehouse.Workload, T int, opts Options) error {
	cert, err := cm.Admit(ctx, s, wl, T, opts)
	if err != nil {
		return err
	}
	if cert == CertInfeasible {
		return &InfeasibleError{Cert: CertInfeasible, Horizon: T, Reason: "LP certificate"}
	}
	return nil
}
