// Command wspd is the long-running WSP solve service: an HTTP+JSON daemon
// over the wsp facade with admission control, deadline policy, graceful
// degradation, panic isolation, and drain-clean shutdown. See
// internal/server for the service semantics and DESIGN.md for the
// rationale.
//
// Usage:
//
//	wspd [-addr :8080] [-max-inflight N] [-deadline 30s] [-drain 30s]
//	     [-strategy route|flows|contract] [-search-parallel N]
//	     [-no-degrade] [-config wspd.json]
//
// Every flag can also come from a JSON config file (-config; keys are the
// flag names with dashes as underscores, e.g. {"max_inflight": 16}) or
// from the environment (WSPD_ prefix, e.g. WSPD_SEARCH_PARALLEL=4), so
// parallelism and budget knobs are deployable without rebuilding command
// lines. Precedence: explicit flag > WSPD_* environment > config file >
// built-in default.
//
// Endpoints:
//
//	POST /v1/solve    one instance  (builtin map or inline JSON instance)
//	POST /v1/batch    many instances, one admission decision
//	POST /v1/sweep    the Fig. 5 co-design grid
//	POST /v1/lifelong batches released over time, streamed as NDJSON
//	                  (one "epoch" line per epoch, terminal "report" line)
//	GET  /healthz     liveness  (200 while the process runs)
//	GET  /readyz      readiness (503 once draining)
//	GET  /debug/vars  service counters as JSON (+ per-client ledgers)
//	GET  /metrics     the same counters in Prometheus text exposition
//
// SIGINT/SIGTERM start a drain: admission stops, in-flight solves finish
// (bounded by -drain), and the process exits 0 on a clean drain or 1 when
// the drain deadline forces connections closed. A second signal kills the
// process immediately via the restored default handler.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/wsp"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("wspd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	maxInFlight := fs.Int("max-inflight", 0, "max concurrent solves (0 = 2×GOMAXPROCS)")
	deadline := fs.Duration("deadline", 0, "default per-solve deadline (0 = 30s)")
	maxDeadline := fs.Duration("max-deadline", 0, "clamp on client deadlines (0 = 2m)")
	drain := fs.Duration("drain", 0, "shutdown drain budget (0 = 30s)")
	strategy := fs.String("strategy", "contract", "base strategy: route|flows|contract")
	exact := fs.Bool("exact", false, "base config: exact rational ILP arithmetic")
	searchPar := fs.Int("search-parallel", 0, "within-instance parallelism: B&B subtree + route-probe workers per solve (0 = sequential; bit-identical results)")
	noDegrade := fs.Bool("no-degrade", false, "disable the graceful-degradation ladder")
	clientRate := fs.Int64("client-rate", 0, "per-client budget refill, work units/sec (0 = default)")
	configPath := fs.String("config", "", "JSON config file (flag names with dashes as underscores); explicit flags and WSPD_* env vars override it")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := applyOverrides(fs, *configPath); err != nil {
		fmt.Fprintln(os.Stderr, "wspd:", err)
		return 2
	}
	st, err := wsp.ParseStrategy(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wspd:", err)
		return 2
	}

	logger := log.New(os.Stderr, "", log.LstdFlags)
	srv := server.New(server.Config{
		Solver:          wsp.Config{Strategy: st, Exact: *exact, SearchParallel: *searchPar},
		MaxInFlight:     *maxInFlight,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		DrainTimeout:    *drain,
		NoDegrade:       *noDegrade,
		ClientRate:      *clientRate,
		Logf:            logger.Printf,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wspd:", err)
		return 1
	}

	// First SIGINT/SIGTERM starts the drain; a second one restores the
	// default handler and kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	select {
	case err := <-serveErr:
		// Listener failed before any signal.
		fmt.Fprintln(os.Stderr, "wspd:", err)
		return 1
	case <-ctx.Done():
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), drainBudget(*drain))
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "wspd: drain incomplete:", err)
		return 1
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "wspd:", err)
		return 1
	}
	return 0
}

// applyOverrides back-fills flags the command line left at their defaults
// from WSPD_* environment variables first, then from the JSON config file,
// so the precedence is: explicit flag > environment > config file >
// built-in default. Config keys are flag names with dashes as underscores;
// unknown keys are rejected (a typo must not silently deploy a default).
func applyOverrides(fs *flag.FlagSet, configPath string) error {
	var file map[string]any
	if configPath != "" {
		data, err := os.ReadFile(configPath)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &file); err != nil {
			return fmt.Errorf("config %s: %w", configPath, err)
		}
	}
	known := map[string]bool{}
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	var applyErr error
	fs.VisitAll(func(f *flag.Flag) {
		key := strings.ReplaceAll(f.Name, "-", "_")
		known[key] = true
		if f.Name == "config" || explicit[f.Name] || applyErr != nil {
			return
		}
		if v, ok := os.LookupEnv("WSPD_" + strings.ToUpper(key)); ok {
			if err := fs.Set(f.Name, v); err != nil {
				applyErr = fmt.Errorf("WSPD_%s: %w", strings.ToUpper(key), err)
			}
			return
		}
		if v, ok := file[key]; ok {
			// JSON numbers arrive as float64; fmt.Sprint renders integral
			// ones without a fraction, which is what the int flags parse.
			if err := fs.Set(f.Name, fmt.Sprint(v)); err != nil {
				applyErr = fmt.Errorf("config %s: key %q: %w", configPath, key, err)
			}
		}
	})
	if applyErr != nil {
		return applyErr
	}
	for key := range file {
		if !known[key] || key == "config" {
			return fmt.Errorf("config %s: unknown key %q", configPath, key)
		}
	}
	return nil
}

func drainBudget(d time.Duration) time.Duration {
	if d <= 0 {
		return 30 * time.Second
	}
	return d
}
