// Package contracts implements a small assume–guarantee (A/G) contract
// algebra over linear integer arithmetic, standing in for the CHASE
// requirement-engineering framework the paper uses (§II-B, [8]).
//
// A contract C̃ = (V, Ã, G̃) has a set of named integer/rational variables V,
// a set of assumptions Ã (linear constraints the environment must satisfy)
// and a set of guarantees G̃ (linear constraints the component promises when
// the assumptions hold). Contracts combine by composition (⊗) — describing
// the system formed by wiring two components together — and conjunction (∧)
// — combining the requirements of two contracts on one component.
//
// The decision procedure behind every semantic operation (satisfiability,
// entailment, refinement) is the exact ILP solver in internal/lp, which
// decides the same quantifier-free linear-integer fragment the paper
// discharges to Z3.
package contracts

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"repro/internal/lp"
)

// VarSpec declares one contract variable.
type VarSpec struct {
	Name    string
	Lower   *big.Rat // nil = -inf
	Upper   *big.Rat // nil = +inf
	Integer bool
}

// NatSpec returns the declaration of an integer variable over {0} ∪ N, the
// domain the paper assigns every agent flow.
func NatSpec(name string) VarSpec {
	return VarSpec{Name: name, Lower: new(big.Rat), Integer: true}
}

// LinTerm is one coefficient–variable product, referencing the variable by
// name so constraints are meaningful across contracts.
type LinTerm struct {
	Coef *big.Rat
	Var  string
}

// Constraint is the linear predicate  Σ Terms  (Sense)  RHS.
type Constraint struct {
	Name  string
	Terms []LinTerm
	Sense lp.Sense
	RHS   *big.Rat
}

// CT builds a constraint from integer coefficients; a convenience for the
// flow-contract compiler and tests.
func CT(name string, sense lp.Sense, rhs int64, terms ...LinTerm) Constraint {
	return Constraint{Name: name, Terms: terms, Sense: sense, RHS: big.NewRat(rhs, 1)}
}

// LT builds a term with an integer coefficient.
func LT(coef int64, v string) LinTerm { return LinTerm{Coef: big.NewRat(coef, 1), Var: v} }

// Contract is an A/G contract over named variables.
type Contract struct {
	Name        string
	Vars        map[string]VarSpec
	Assumptions []Constraint
	Guarantees  []Constraint
}

// New creates an empty contract.
func New(name string) *Contract {
	return &Contract{Name: name, Vars: make(map[string]VarSpec)}
}

// DeclareVar adds (or re-asserts) a variable. Re-declaring with a different
// spec is an error: shared variables must agree across contracts.
func (c *Contract) DeclareVar(v VarSpec) error {
	if prev, ok := c.Vars[v.Name]; ok {
		if !specEqual(prev, v) {
			return fmt.Errorf("contracts: variable %q re-declared with different spec", v.Name)
		}
		return nil
	}
	c.Vars[v.Name] = v
	return nil
}

func specEqual(a, b VarSpec) bool {
	return a.Name == b.Name && a.Integer == b.Integer && ratEq(a.Lower, b.Lower) && ratEq(a.Upper, b.Upper)
}

func ratEq(a, b *big.Rat) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.Cmp(b) == 0
}

// Assume appends an assumption. Variables mentioned must be declared.
func (c *Contract) Assume(con Constraint) error {
	if err := c.checkVars(con); err != nil {
		return err
	}
	c.Assumptions = append(c.Assumptions, con)
	return nil
}

// Guarantee appends a guarantee. Variables mentioned must be declared.
func (c *Contract) Guarantee(con Constraint) error {
	if err := c.checkVars(con); err != nil {
		return err
	}
	c.Guarantees = append(c.Guarantees, con)
	return nil
}

func (c *Contract) checkVars(con Constraint) error {
	for _, t := range con.Terms {
		if _, ok := c.Vars[t.Var]; !ok {
			return fmt.Errorf("contracts: constraint %q references undeclared variable %q", con.Name, t.Var)
		}
	}
	return nil
}

// mergeVars unions variable declarations, requiring agreement on shared ones.
func mergeVars(dst map[string]VarSpec, srcs ...map[string]VarSpec) error {
	for _, src := range srcs {
		for name, spec := range src {
			if prev, ok := dst[name]; ok {
				if !specEqual(prev, spec) {
					return fmt.Errorf("contracts: conflicting declarations for shared variable %q", name)
				}
				continue
			}
			dst[name] = spec
		}
	}
	return nil
}

// Compose returns c1 ⊗ c2, the contract of the system built from the two
// components. In the conjunctive linear fragment used here the composite
// guarantees are G1 ∧ G2; the composite assumptions start as A1 ∧ A2 and
// each assumption already entailed by the other component's guarantees is
// discharged (dropped), the standard saturation-free approximation of the
// contract algebra's quotient.
func Compose(c1, c2 *Contract) (*Contract, error) {
	out := New(c1.Name + "⊗" + c2.Name)
	if err := mergeVars(out.Vars, c1.Vars, c2.Vars); err != nil {
		return nil, err
	}
	out.Guarantees = append(append([]Constraint(nil), c1.Guarantees...), c2.Guarantees...)
	// Discharge assumptions entailed by the peer's guarantees.
	for _, pair := range []struct {
		own  *Contract
		peer *Contract
	}{{c1, c2}, {c2, c1}} {
		for _, a := range pair.own.Assumptions {
			entailed, err := entails(out.Vars, pair.peer.Guarantees, a)
			if err != nil {
				return nil, err
			}
			if !entailed {
				out.Assumptions = append(out.Assumptions, a)
			}
		}
	}
	return out, nil
}

// ComposeAll folds Compose over a list of contracts, mirroring the paper's
// C̃TS := ⊗ C̃i over all traffic-system components. Assumption discharge runs
// one entailment query per assumption; for large systems prefer
// ComposeAllFast.
func ComposeAll(cs []*Contract) (*Contract, error) {
	if len(cs) == 0 {
		return nil, fmt.Errorf("contracts: nothing to compose")
	}
	acc := cs[0]
	var err error
	for _, c := range cs[1:] {
		acc, err = Compose(acc, c)
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// ComposeAllFast composes contracts without assumption discharge: the result
// keeps every assumption and every guarantee. Its satisfying set (Ã ∧ G̃) is
// identical to ComposeAll's, so synthesis over the composite is unaffected;
// only the assume/guarantee split is coarser.
func ComposeAllFast(cs []*Contract) (*Contract, error) {
	if len(cs) == 0 {
		return nil, fmt.Errorf("contracts: nothing to compose")
	}
	out := New("⊗composite")
	for _, c := range cs {
		if err := mergeVars(out.Vars, c.Vars); err != nil {
			return nil, err
		}
		out.Assumptions = append(out.Assumptions, c.Assumptions...)
		out.Guarantees = append(out.Guarantees, c.Guarantees...)
	}
	return out, nil
}

// Conjoin returns c1 ∧ c2: a single component must satisfy both contracts,
// so assumptions and guarantees are both conjoined. This is the operation
// Fig. 3 applies between the traffic-system contract and the workload
// contract before synthesis.
func Conjoin(c1, c2 *Contract) (*Contract, error) {
	out := New(c1.Name + "∧" + c2.Name)
	if err := mergeVars(out.Vars, c1.Vars, c2.Vars); err != nil {
		return nil, err
	}
	out.Assumptions = append(append([]Constraint(nil), c1.Assumptions...), c2.Assumptions...)
	out.Guarantees = append(append([]Constraint(nil), c1.Guarantees...), c2.Guarantees...)
	return out, nil
}

// ToProblem compiles the conjunction of the contract's assumptions and
// guarantees into an ILP feasibility problem. The returned index maps
// variable names to problem variables.
func (c *Contract) ToProblem() (*lp.Problem, map[string]lp.VarID) {
	return compile(c.Vars, append(append([]Constraint(nil), c.Assumptions...), c.Guarantees...))
}

func compile(vars map[string]VarSpec, cons []Constraint) (*lp.Problem, map[string]lp.VarID) {
	p := &lp.Problem{}
	index := make(map[string]lp.VarID, len(vars))
	names := make([]string, 0, len(vars))
	for name := range vars {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic variable order
	for _, name := range names {
		spec := vars[name]
		if spec.Integer {
			index[name] = p.AddIntVar(name, spec.Lower, spec.Upper)
		} else {
			index[name] = p.AddVar(name, spec.Lower, spec.Upper)
		}
	}
	for _, con := range cons {
		terms := make([]lp.Term, len(con.Terms))
		for i, t := range con.Terms {
			terms[i] = lp.Term{Var: index[t.Var], Coef: t.Coef}
		}
		p.AddConstraint(con.Name, terms, con.Sense, con.RHS)
	}
	return p, index
}

// Assignment maps variable names to exact rational values.
type Assignment map[string]*big.Rat

// Satisfy searches for an assignment satisfying Ã ∧ G̃ with the given solver
// engine. It returns nil (no error) if the contract is unsatisfiable.
func (c *Contract) Satisfy(engine lp.Engine) (Assignment, error) {
	return c.SatisfyOpts(lp.ILPOptions{Engine: engine})
}

// SatisfyOpts is Satisfy with explicit solver options, letting callers set
// node and pivot budgets. Contract conjunctions in the integer-rate regime
// can be feasible in rationals yet integrally infeasible, and pure branch
// and bound may need an exponential tree to prove that; budgets turn such
// searches into a bounded "undecided" error instead of an unbounded grind.
func (c *Contract) SatisfyOpts(opts lp.ILPOptions) (Assignment, error) {
	p, index := c.ToProblem()
	sol, err := lp.SolveILP(p, opts)
	if err != nil {
		return nil, err
	}
	switch sol.Status {
	case lp.StatusOptimal:
		out := make(Assignment, len(index))
		for name, id := range index {
			out[name] = sol.Value(id)
		}
		return out, nil
	case lp.StatusInfeasible:
		return nil, nil
	case lp.StatusCanceled:
		return nil, fmt.Errorf("contracts: %s solve abandoned: %w", c.Name, lp.ErrCanceled)
	case lp.StatusLimit:
		return nil, fmt.Errorf("contracts: %s undecided: %w", c.Name, lp.ErrBudgetExhausted)
	default:
		return nil, fmt.Errorf("contracts: solver returned %v for %s", sol.Status, c.Name)
	}
}

// Consistent reports whether the guarantees alone are satisfiable.
func (c *Contract) Consistent(engine lp.Engine) (bool, error) {
	p, _ := compile(c.Vars, c.Guarantees)
	return feasible(p, engine)
}

// Compatible reports whether the assumptions alone are satisfiable.
func (c *Contract) Compatible(engine lp.Engine) (bool, error) {
	p, _ := compile(c.Vars, c.Assumptions)
	return feasible(p, engine)
}

func feasible(p *lp.Problem, engine lp.Engine) (bool, error) {
	sol, err := lp.SolveILP(p, lp.ILPOptions{Engine: engine})
	if err != nil {
		return false, err
	}
	return sol.Status == lp.StatusOptimal, nil
}

// Refines reports whether c1 ≼ c2 (c1 refines c2): c1 assumes no more than
// c2 (every assumption of c1 is entailed by c2's assumptions) and guarantees
// no less (every guarantee of c2 is entailed by c1's guarantees conjoined
// with c2's assumptions).
func Refines(c1, c2 *Contract) (bool, error) {
	vars := make(map[string]VarSpec)
	if err := mergeVars(vars, c1.Vars, c2.Vars); err != nil {
		return false, err
	}
	for _, a := range c1.Assumptions {
		ok, err := entails(vars, c2.Assumptions, a)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	premise := append(append([]Constraint(nil), c1.Guarantees...), c2.Assumptions...)
	for _, g := range c2.Guarantees {
		ok, err := entails(vars, premise, g)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// entails decides premise ⊨ goal over the declared variables by optimizing
// the goal's left-hand side subject to the premise: for "lhs ≤ rhs" the goal
// is entailed iff max lhs ≤ rhs (and symmetrically for ≥; equalities check
// both directions). An infeasible premise entails everything. The premise
// system is compiled once and reused across both directions of an equality
// goal — the solver treats the Problem as read-only, so only the objective
// sense changes between the two solves.
func entails(vars map[string]VarSpec, premise []Constraint, goal Constraint) (bool, error) {
	p, index := compile(vars, premise)
	terms := make([]lp.Term, len(goal.Terms))
	for i, t := range goal.Terms {
		terms[i] = lp.Term{Var: index[t.Var], Coef: t.Coef}
	}
	if len(terms) == 0 {
		// A term-free goal is the constant predicate 0 (Sense) RHS. Deciding
		// it through the optimizer would build a pure feasibility problem
		// whose Solution carries a nil Objective — and dereferencing that
		// was a crash on this path. Decide the constant directly; a false
		// constant is still entailed by an infeasible premise (vacuously).
		zero := new(big.Rat)
		cmp := zero.Cmp(goal.RHS)
		holds := (goal.Sense == lp.LE && cmp <= 0) || (goal.Sense == lp.GE && cmp >= 0) || (goal.Sense == lp.EQ && cmp == 0)
		if holds {
			return true, nil
		}
		sol, err := lp.SolveILP(p, lp.ILPOptions{Engine: lp.EngineExact})
		if err != nil {
			return false, err
		}
		return sol.Status == lp.StatusInfeasible, nil
	}
	dir := func(maximize bool) (bool, error) {
		p.SetObjective(terms, maximize)
		sol, err := lp.SolveILP(p, lp.ILPOptions{Engine: lp.EngineExact})
		if err != nil {
			return false, err
		}
		switch sol.Status {
		case lp.StatusInfeasible:
			return true, nil // vacuous entailment
		case lp.StatusUnbounded:
			return false, nil
		case lp.StatusOptimal:
			if maximize {
				return sol.Objective.Cmp(goal.RHS) <= 0, nil
			}
			return sol.Objective.Cmp(goal.RHS) >= 0, nil
		}
		return false, fmt.Errorf("contracts: entailment solver returned %v", sol.Status)
	}
	switch goal.Sense {
	case lp.LE:
		return dir(true)
	case lp.GE:
		return dir(false)
	case lp.EQ:
		le, err := dir(true)
		if err != nil || !le {
			return false, err
		}
		return dir(false)
	}
	return false, fmt.Errorf("contracts: unknown sense %v", goal.Sense)
}

// String renders the contract for debugging.
func (c *Contract) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "contract %s\n", c.Name)
	names := make([]string, 0, len(c.Vars))
	for n := range c.Vars {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "  vars: %s\n", strings.Join(names, ", "))
	for _, a := range c.Assumptions {
		fmt.Fprintf(&b, "  assume %s\n", renderConstraint(a))
	}
	for _, g := range c.Guarantees {
		fmt.Fprintf(&b, "  guarantee %s\n", renderConstraint(g))
	}
	return b.String()
}

func renderConstraint(c Constraint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", c.Name)
	for _, t := range c.Terms {
		fmt.Fprintf(&b, " %s*%s", t.Coef.RatString(), t.Var)
	}
	fmt.Fprintf(&b, " %s %s", c.Sense, c.RHS.RatString())
	return b.String()
}
