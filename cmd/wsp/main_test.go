package main

import (
	"context"
	"errors"
	"io"
	"os"
	"strings"
	"testing"

	"repro/wsp"
)

func TestBuiltinMapNames(t *testing.T) {
	for _, name := range []string{"fulfillment1", "fulfillment2", "sorting"} {
		m, err := wsp.BuiltinMap(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if m.W == nil || m.S == nil {
			t.Errorf("%s: incomplete map", name)
		}
	}
	if _, err := wsp.BuiltinMap("nope"); err == nil {
		t.Error("unknown map accepted")
	}
}

func TestParseStrategy(t *testing.T) {
	cases := map[string]wsp.Strategy{
		"route":    wsp.RoutePacking,
		"flows":    wsp.SequentialFlows,
		"contract": wsp.ContractILP,
	}
	for name, want := range cases {
		got, err := wsp.ParseStrategy(name)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := wsp.ParseStrategy("quantum"); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestCmdMapAndSolveRun(t *testing.T) {
	ctx := context.Background()
	if err := cmdMap([]string{"-name", "sorting"}); err != nil {
		t.Errorf("cmdMap: %v", err)
	}
	if err := cmdSolve(ctx, []string{"-name", "sorting", "-units", "80", "-T", "3600"}); err != nil {
		t.Errorf("cmdSolve: %v", err)
	}
}

func TestCmdSweepRuns(t *testing.T) {
	ctx := context.Background()
	if err := cmdSweep(ctx, []string{"-corridors", "2", "-lens", "6", "-units", "96", "-points", "2"}); err != nil {
		t.Errorf("cmdSweep: %v", err)
	}
	if err := cmdSweep(ctx, []string{"-corridors", "x"}); err == nil {
		t.Error("bad corridor list accepted")
	}
	if err := cmdSweep(ctx, []string{"-points", "0"}); err == nil {
		t.Error("zero points accepted")
	}
	if err := cmdSweep(ctx, []string{"-units", "2", "-points", "3"}); err == nil {
		t.Error("fewer units than points accepted (zero/duplicate levels)")
	}
}

// TestCmdSweepCanceled pins the interrupt path: a sweep driven by an
// already-cancelled context must flush its (empty) table, report an error
// that classifies as wsp.ErrCanceled — the distinct-exit-code path of
// main — and must not print a completion summary line.
func TestCmdSweepCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := captureStdout(t, func() error {
		return cmdSweep(ctx, []string{"-corridors", "2", "-lens", "6", "-units", "96", "-points", "2"})
	})
	if err == nil {
		t.Fatal("cancelled sweep returned nil error")
	}
	if !errors.Is(err, wsp.ErrCanceled) {
		t.Fatalf("cancelled sweep error %v does not classify as wsp.ErrCanceled", err)
	}
	if !strings.Contains(out, "Components") {
		t.Fatalf("cancelled sweep did not flush the table header:\n%q", out)
	}
	if strings.Contains(out, "topologies ×") {
		t.Fatalf("cancelled sweep printed a completion summary:\n%s", out)
	}
}

func TestParseSimplex(t *testing.T) {
	cases := map[string]wsp.Simplex{
		"auto":    wsp.SimplexAuto,
		"dense":   wsp.SimplexDense,
		"revised": wsp.SimplexRevised,
	}
	for name, want := range cases {
		got, err := wsp.ParseSimplex(name)
		if err != nil || got != want {
			t.Errorf("ParseSimplex(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := wsp.ParseSimplex("sparse"); err == nil {
		t.Error("unknown simplex accepted")
	}
}

// captureStdout runs f with os.Stdout redirected into a buffer.
func captureStdout(t *testing.T, f func() error) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	ferr := f()
	os.Stdout = old
	w.Close()
	out := <-done
	r.Close()
	return out, ferr
}

// TestSweepInfeasibleContractCell is the end-to-end regression test for the
// solver's non-optimal paths: a sweep cell whose contract conjunction is
// LP-infeasible (the solver returns &Solution{Status: Infeasible} with nil
// Values and nil Objective) must flow through flow.ContractModel, core's
// retry loop, and the solver pool as an "unsolved" row — not a nil-pointer
// panic, and not an aborted grid walk.
func TestSweepInfeasibleContractCell(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return cmdSweep(context.Background(), []string{
			"-corridors", "2", "-lens", "6",
			"-stripes", "1", "-products", "2",
			"-units", "60", "-points", "1", "-T", "40",
			"-strategy", "contract",
		})
	})
	if err != nil {
		t.Fatalf("sweep aborted instead of recording the infeasible cell: %v\n%s", err, out)
	}
	if !strings.Contains(out, "unsolved") {
		t.Fatalf("infeasible contract cell not reported as unsolved:\n%s", out)
	}
	if !strings.Contains(out, "1 topologies × 1 levels") {
		t.Fatalf("grid walk summary missing (walk aborted early?):\n%s", out)
	}
}

// TestSweepFeasibleContractCell pins the companion happy path on the same
// tiny topology, so the infeasible test above cannot rot into "everything
// is unsolved for an unrelated reason".
func TestSweepFeasibleContractCell(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return cmdSweep(context.Background(), []string{
			"-corridors", "2", "-lens", "6",
			"-stripes", "1", "-products", "2",
			// T stays in the feasible-rate band: at T=3600 this topology
			// falls into the integer-rate regime (fincap ≤ UNITS_AT/qc < 1
			// forces all integer pick rates to zero) and the conjunction is
			// genuinely unsatisfiable.
			"-units", "12", "-points", "1", "-T", "800",
			"-strategy", "contract",
		})
	})
	if err != nil {
		t.Fatalf("feasible sweep failed: %v\n%s", err, out)
	}
	if strings.Contains(out, "unsolved") {
		t.Fatalf("feasible cell reported unsolved:\n%s", out)
	}
}

// TestCmdLifelongStream drives the lifelong subcommand end to end on the
// sorting map: streamed epoch lines, batch completions, and the final
// summary must all appear, and the bad-flag paths must error out.
func TestCmdLifelongStream(t *testing.T) {
	ctx := context.Background()
	out, err := captureStdout(t, func() error {
		return cmdLifelong(ctx, []string{
			"-name", "sorting", "-batches", "0:16,2000:16", "-T", "3600", "-stream",
		})
	})
	if err != nil {
		t.Fatalf("cmdLifelong: %v\n%s", err, out)
	}
	for _, want := range []string{"epoch 1", "epoch 2", "batch released@0 completed", "batch released@2000 completed", "2 epochs, peak"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if err := cmdLifelong(ctx, []string{"-batches", "0-16"}); err == nil {
		t.Error("bad batch separator accepted")
	}
	if err := cmdLifelong(ctx, []string{"-batches", "x:16"}); err == nil {
		t.Error("bad batch release accepted")
	}
	if err := cmdLifelong(ctx, []string{"-batches", " , "}); err == nil {
		t.Error("empty batch list accepted")
	}
}

// TestCmdLifelongCanceled pins the interrupt path: a run driven by an
// already-cancelled context still flushes its (empty) partial report and
// classifies as wsp.ErrCanceled, main's distinct-exit-code path.
func TestCmdLifelongCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := captureStdout(t, func() error {
		return cmdLifelong(ctx, []string{"-name", "sorting", "-batches", "0:16"})
	})
	if err == nil {
		t.Fatal("cancelled lifelong run returned nil error")
	}
	if !errors.Is(err, wsp.ErrCanceled) {
		t.Fatalf("cancelled run error %v does not classify as wsp.ErrCanceled", err)
	}
	if !strings.Contains(out, "0 epochs") {
		t.Fatalf("cancelled run did not flush its partial report:\n%q", out)
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts(" 2,3 ,4")
	if err != nil || len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Errorf("parseInts = %v, %v", got, err)
	}
	if _, err := parseInts(""); err == nil {
		t.Error("empty list accepted")
	}
}
