// Command benchjson converts `go test -bench` output (read from stdin) into
// a JSON snapshot and appends it to a trajectory file, so successive PRs
// can compare perf against every recorded predecessor. Labels must be
// unique within a trajectory file — a duplicate almost always means a run
// was accidentally recorded twice, and it would silently poison later
// comparisons.
//
// With -compare, no input is read: the last two snapshots of the
// trajectory file are diffed per benchmark instead (the trajectory is long
// enough by now that regressions hide in raw JSON).
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkTableI$|BenchmarkSolveBatch' -benchmem . |
//	    go run ./scripts/benchjson -o BENCH_table1.json -label my-change
//	go run ./scripts/benchjson -compare -o BENCH_table1.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"
)

// Bench is one benchmark's parsed result line.
type Bench struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is one benchmarking session.
type Snapshot struct {
	Label      string           `json:"label"`
	Date       string           `json:"date"`
	CPU        string           `json:"cpu,omitempty"`
	Benchmarks map[string]Bench `json:"benchmarks"`
}

// File is the trajectory file layout.
type File struct {
	Unit      map[string]string `json:"unit"`
	Snapshots []Snapshot        `json:"snapshots"`
}

func main() {
	out := flag.String("o", "BENCH_table1.json", "trajectory file to append to (or read, with -compare)")
	label := flag.String("label", "", "snapshot label (required unless -compare)")
	compare := flag.Bool("compare", false, "diff the last two snapshots of the trajectory file and exit")
	flag.Parse()
	if *compare {
		if err := runCompare(*out); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if *label == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -label is required")
		os.Exit(2)
	}

	snap := Snapshot{
		Label:      *label,
		Date:       time.Now().UTC().Format("2006-01-02"),
		Benchmarks: map[string]Bench{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the run stays visible
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			snap.CPU = strings.TrimSpace(cpu)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		b := Bench{}
		name := fields[0]
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				v := val
				b.BytesPerOp = &v
			case "allocs/op":
				v := val
				b.AllocsPerOp = &v
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = val
			}
		}
		snap.Benchmarks[name] = b
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	f := File{Unit: map[string]string{
		"ns_per_op":     "nanoseconds per operation",
		"bytes_per_op":  "heap bytes per operation",
		"allocs_per_op": "heap allocations per operation",
	}}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s exists but is not a trajectory file: %v\n", *out, err)
			os.Exit(1)
		}
	}
	for _, prev := range f.Snapshots {
		if prev.Label == snap.Label {
			fmt.Fprintf(os.Stderr, "benchjson: %s already holds a snapshot labeled %q (recorded %s); pick a fresh label\n",
				*out, snap.Label, prev.Date)
			os.Exit(1)
		}
	}
	f.Snapshots = append(f.Snapshots, snap)
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: appended snapshot %q (%d benchmarks) to %s\n", *label, len(snap.Benchmarks), *out)
}

// runCompare diffs the last two snapshots of the trajectory file, one line
// per benchmark present in either.
func runCompare(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("%s is not a trajectory file: %w", path, err)
	}
	if len(f.Snapshots) < 2 {
		return fmt.Errorf("%s holds %d snapshot(s); need at least 2 to compare", path, len(f.Snapshots))
	}
	old, cur := f.Snapshots[len(f.Snapshots)-2], f.Snapshots[len(f.Snapshots)-1]
	fmt.Printf("comparing %q (%s)\n       vs %q (%s)\n\n", old.Label, old.Date, cur.Label, cur.Date)
	names := make([]string, 0, len(old.Benchmarks)+len(cur.Benchmarks))
	seen := map[string]bool{}
	for name := range old.Benchmarks {
		names = append(names, name)
		seen[name] = true
	}
	for name := range cur.Benchmarks {
		if !seen[name] {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\told ns/op\tnew ns/op\tdelta")
	for _, name := range names {
		o, inOld := old.Benchmarks[name]
		c, inCur := cur.Benchmarks[name]
		switch {
		case !inOld:
			fmt.Fprintf(w, "%s\t-\t%.0f\t(new)\n", name, c.NsPerOp)
		case !inCur:
			fmt.Fprintf(w, "%s\t%.0f\t-\t(gone)\n", name, o.NsPerOp)
		case o.NsPerOp == 0:
			fmt.Fprintf(w, "%s\t0\t%.0f\t?\n", name, c.NsPerOp)
		default:
			fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%+.1f%%\n", name, o.NsPerOp, c.NsPerOp, 100*(c.NsPerOp-o.NsPerOp)/o.NsPerOp)
		}
	}
	return w.Flush()
}
