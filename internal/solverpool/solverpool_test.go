package solverpool

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lp"
	"repro/internal/maps"
	"repro/internal/testmaps"
	"repro/internal/warehouse"
	"repro/internal/workload"
)

// TestSolveBatchMatchesSequential checks that the concurrent pool returns
// bit-identical results to sequential core.Solve on the three Table I maps:
// same ServicedAt, same cycle sets, same plans. All requests per map share
// one traffic.System on purpose — run under -race this also proves that
// concurrent solves never mutate shared synthesis inputs.
func TestSolveBatchMatchesSequential(t *testing.T) {
	rows := []struct {
		name  string
		build func() (*maps.Map, error)
		units int
	}{
		{"SortingCenter", maps.SortingCenter, 160},
		{"Fulfillment1", maps.Fulfillment1, 550},
		{"Fulfillment2", maps.Fulfillment2, 1200},
	}
	const T = 3600

	var reqs []Request
	for _, row := range rows {
		m, err := row.build()
		if err != nil {
			t.Fatalf("%s: %v", row.name, err)
		}
		wl, err := workload.Uniform(m.W, row.units)
		if err != nil {
			t.Fatalf("%s: %v", row.name, err)
		}
		// Two identical requests per map: the pool must produce the same
		// answer for both even when they solve concurrently on one System.
		reqs = append(reqs,
			Request{S: m.S, WL: wl, T: T},
			Request{S: m.S, WL: wl, T: T},
		)
	}

	want := make([]*core.Result, len(reqs))
	for i, r := range reqs {
		res, err := core.Solve(context.Background(), r.S, r.WL, r.T, r.Opts)
		if err != nil {
			t.Fatalf("sequential solve %d: %v", i, err)
		}
		want[i] = res
	}

	got := SolveBatch(context.Background(), reqs, 4)
	if len(got) != len(reqs) {
		t.Fatalf("SolveBatch returned %d results for %d requests", len(got), len(reqs))
	}
	for i, g := range got {
		if g.Err != nil {
			t.Fatalf("parallel solve %d: %v", i, g.Err)
		}
		if g.Res.Sim.ServicedAt != want[i].Sim.ServicedAt {
			t.Errorf("request %d: parallel ServicedAt %d, sequential %d", i, g.Res.Sim.ServicedAt, want[i].Sim.ServicedAt)
		}
		if !reflect.DeepEqual(g.Res.CycleSet.Cycles, want[i].CycleSet.Cycles) {
			t.Errorf("request %d: parallel cycle set differs from sequential", i)
		}
		if !reflect.DeepEqual(g.Res.Plan, want[i].Plan) {
			t.Errorf("request %d: parallel plan differs from sequential", i)
		}
		if !reflect.DeepEqual(g.Res.Sim.Delivered, want[i].Sim.Delivered) {
			t.Errorf("request %d: parallel deliveries %v, sequential %v", i, g.Res.Sim.Delivered, want[i].Sim.Delivered)
		}
	}
}

// TestContractModelReuseMatchesScratchless drives the incremental contract
// path through the pool: every request uses the ContractILP strategy on one
// shared ring system, so each worker re-targets its scratch's compiled
// contract model across the requests it drains instead of recompiling. The
// results must be bit-identical to scratchless sequential core.Solve calls;
// under -race this also proves worker-owned models never share solver
// state through the common System.
func TestContractModelReuseMatchesScratchless(t *testing.T) {
	w, s := testmaps.MustRing()
	var reqs []Request
	for _, tc := range []struct {
		units []int
		T     int
	}{
		{[]int{4, 2}, 1600},
		{[]int{6, 4}, 1600},
		{[]int{8, 5}, 1600},
		{[]int{8, 5}, 1200}, // horizon retarget on the cached model
		{[]int{4, 2}, 1600}, // repeat: pure model reuse
		{[]int{6, 4}, 1200},
	} {
		wl, err := warehouse.NewWorkload(w, tc.units)
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, Request{S: s, WL: wl, T: tc.T, Opts: core.Options{Strategy: core.ContractILP}})
	}

	want := make([]*core.Result, len(reqs))
	for i, r := range reqs {
		res, err := core.Solve(context.Background(), r.S, r.WL, r.T, r.Opts)
		if err != nil {
			t.Fatalf("scratchless solve %d: %v", i, err)
		}
		want[i] = res
	}
	for _, workers := range []int{1, 4} {
		got := SolveBatch(context.Background(), reqs, workers)
		for i, g := range got {
			if g.Err != nil {
				t.Fatalf("workers=%d request %d: %v", workers, i, g.Err)
			}
			if !reflect.DeepEqual(g.Res.FlowSet.F, want[i].FlowSet.F) ||
				!reflect.DeepEqual(g.Res.FlowSet.Fin, want[i].FlowSet.Fin) ||
				!reflect.DeepEqual(g.Res.FlowSet.Fout, want[i].FlowSet.Fout) {
				t.Errorf("workers=%d request %d: model-reuse flow set differs from scratchless", workers, i)
			}
			if !reflect.DeepEqual(g.Res.CycleSet.Cycles, want[i].CycleSet.Cycles) {
				t.Errorf("workers=%d request %d: cycle set differs from scratchless", workers, i)
			}
			if !reflect.DeepEqual(g.Res.Plan, want[i].Plan) {
				t.Errorf("workers=%d request %d: plan differs from scratchless", workers, i)
			}
			if g.Res.Sim.ServicedAt != want[i].Sim.ServicedAt {
				t.Errorf("workers=%d request %d: ServicedAt %d, scratchless %d",
					workers, i, g.Res.Sim.ServicedAt, want[i].Sim.ServicedAt)
			}
		}
	}
}

// TestPoolWidths checks ordering and error propagation across widths.
func TestPoolWidths(t *testing.T) {
	m, err := maps.SortingCenter()
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.Uniform(m.W, 160)
	if err != nil {
		t.Fatal(err)
	}
	good := Request{S: m.S, WL: wl, T: 3600, Opts: core.Options{SkipRealization: true}}
	bad := Request{S: m.S, WL: wl, T: 1} // horizon shorter than one cycle period
	for _, workers := range []int{1, 2, 8} {
		got := SolveBatch(context.Background(), []Request{good, bad, good}, workers)
		if got[0].Err != nil || got[2].Err != nil {
			t.Fatalf("workers=%d: good requests failed: %v %v", workers, got[0].Err, got[2].Err)
		}
		if got[1].Err == nil {
			t.Fatalf("workers=%d: infeasible request did not fail", workers)
		}
		if got[0].Res.CycleSet == nil || got[2].Res.CycleSet == nil {
			t.Fatalf("workers=%d: missing cycle sets", workers)
		}
	}
}

// TestSolveBatchCancelDrains pins the cancellation contract: cancelling the
// batch context mid-drain still fills EVERY result slot (no zero-value
// "successes" with a nil Res), workers exit (SolveBatch returns), and the
// cancelled slots classify as lp.ErrCanceled via errors.Is. Run under
// -race this also proves cancellation introduces no worker/result races.
func TestSolveBatchCancelDrains(t *testing.T) {
	m, err := maps.SortingCenter()
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.Uniform(m.W, 160)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{S: m.S, WL: wl, T: 3600}

	t.Run("pre-canceled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		got := SolveBatch(ctx, []Request{req, req, req, req}, 2)
		for i, g := range got {
			if g.Err == nil {
				t.Fatalf("slot %d: nil error from cancelled batch (Res=%v)", i, g.Res)
			}
			if !errors.Is(g.Err, lp.ErrCanceled) {
				t.Errorf("slot %d: %v does not classify as ErrCanceled", i, g.Err)
			}
		}
	})

	t.Run("mid-batch", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		reqs := make([]Request, 16)
		for i := range reqs {
			reqs[i] = req
		}
		done := make(chan []Result, 1)
		go func() { done <- SolveBatch(ctx, reqs, 4) }()
		time.Sleep(2 * time.Millisecond)
		cancel()
		var got []Result
		select {
		case got = <-done:
		case <-time.After(60 * time.Second):
			t.Fatal("cancelled batch did not drain within 60s")
		}
		if len(got) != len(reqs) {
			t.Fatalf("drained %d of %d slots", len(got), len(reqs))
		}
		for i, g := range got {
			switch {
			case g.Err == nil && g.Res != nil: // finished before the cancel
			case g.Err != nil && errors.Is(g.Err, lp.ErrCanceled): // cancelled
			default:
				t.Errorf("slot %d: unexpected outcome Res=%v Err=%v", i, g.Res, g.Err)
			}
		}
	})
}
