package lp

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"testing"
	"time"
)

// parityILP builds a classic exponential branch-and-bound instance:
// 2·Σx_i = k with binary x and k odd. The LP relaxation is feasible
// (Σx = k/2, fractional) and stays feasible until about k/2 variables are
// pinned per branch, every integral assignment violates parity, and
// proving that by branching alone visits a binomial-sized tree — a
// deterministic long-running search to cancel into (k=21 already exceeds
// the 200000-node default).
func parityILP(k int) *Problem {
	if k%2 == 0 {
		panic("parityILP needs odd k")
	}
	p := &Problem{}
	terms := make([]Term, k)
	for i := 0; i < k; i++ {
		v := p.AddIntVar("x", big.NewRat(0, 1), big.NewRat(1, 1))
		terms[i] = T(v, 2)
	}
	p.AddConstraint("parity", terms, EQ, big.NewRat(int64(k), 1))
	return p
}

func closedChan() chan struct{} {
	c := make(chan struct{})
	close(c)
	return c
}

// A solve whose cancellation channel is already closed must return
// StatusCanceled on the first work-budget tick, before any pivoting.
func TestSolveILPCanceledBeforeStart(t *testing.T) {
	for _, sx := range []SimplexEngine{SimplexDense, SimplexRevised} {
		sol, err := SolveILP(parityILP(7), ILPOptions{Engine: EngineExact, Simplex: sx, Cancel: closedChan()})
		if err != nil {
			t.Fatalf("simplex %v: %v", sx, err)
		}
		if sol.Status != StatusCanceled {
			t.Errorf("simplex %v: status %v, want canceled", sx, sol.Status)
		}
	}
}

func TestSolveLPCanceled(t *testing.T) {
	sol, err := SolveLPWith(parityILP(7), SolveOptions{Cancel: closedChan()})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusCanceled {
		t.Errorf("status %v, want canceled", sol.Status)
	}
}

// Cancelling mid-branch-and-bound must abort the search promptly (the
// check rides every pivot's accounting tick) even though the full tree is
// exponential, and cancellation must trump any incumbent.
func TestSolveILPCanceledMidSearch(t *testing.T) {
	cancel := make(chan struct{})
	done := make(chan *Solution, 1)
	go func() {
		// k=31 with the node cap lifted runs for minutes uncancelled, so
		// a prompt return proves the cancellation path.
		sol, err := SolveILP(parityILP(31), ILPOptions{Engine: EngineExact, MaxNodes: 1 << 30, Cancel: cancel})
		if err != nil {
			t.Error(err)
		}
		done <- sol
	}()
	time.Sleep(5 * time.Millisecond)
	close(cancel)
	select {
	case sol := <-done:
		if sol != nil && sol.Status != StatusCanceled {
			t.Errorf("status %v, want canceled", sol.Status)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled search did not return within 30s")
	}
}

// A cancelled solve must leave a Model reusable: the retained arena serves
// the next (uncancelled) solve with answers bit-identical to a fresh one.
func TestModelReusableAfterCancel(t *testing.T) {
	// A small feasibility ILP the uncancelled path decides quickly.
	build := func() *Problem {
		p := &Problem{}
		x := p.AddNat("x")
		y := p.AddNat("y")
		p.AddConstraint("c1", []Term{T(x, 3), T(y, 2)}, LE, big.NewRat(12, 1))
		p.AddConstraint("c2", []Term{T(x, 1), T(y, 1)}, GE, big.NewRat(3, 1))
		p.SetObjective([]Term{T(x, 1), T(y, 1)}, false)
		return p
	}
	for _, sx := range []SimplexEngine{SimplexDense, SimplexRevised} {
		mo := NewModel(build())
		mo.SetSimplex(sx)

		sol, err := mo.ResolveILP(ILPOptions{Engine: EngineExact, Cancel: closedChan()})
		if err != nil {
			t.Fatalf("simplex %v: cancelled solve: %v", sx, err)
		}
		if sol.Status != StatusCanceled {
			t.Fatalf("simplex %v: status %v, want canceled", sx, sol.Status)
		}

		got, err := mo.ResolveILP(ILPOptions{Engine: EngineExact})
		if err != nil {
			t.Fatalf("simplex %v: re-solve after cancel: %v", sx, err)
		}
		want, err := SolveILP(build(), ILPOptions{Engine: EngineExact, Simplex: sx})
		if err != nil {
			t.Fatalf("simplex %v: fresh solve: %v", sx, err)
		}
		if got.Status != want.Status {
			t.Fatalf("simplex %v: status %v after cancel, fresh %v", sx, got.Status, want.Status)
		}
		for i := range want.Values {
			if got.Values[i].Cmp(want.Values[i]) != 0 {
				t.Errorf("simplex %v: value %d = %v after cancel, fresh %v", sx, i, got.Values[i], want.Values[i])
			}
		}
		// The LP path through the same retained arena must also recover.
		lpGot, err := mo.Resolve()
		if err != nil {
			t.Fatalf("simplex %v: LP re-solve after cancel: %v", sx, err)
		}
		lpWant, err := SolveLPWith(build(), SolveOptions{Simplex: sx})
		if err != nil {
			t.Fatal(err)
		}
		if lpGot.Status != lpWant.Status || lpGot.Objective.Cmp(lpWant.Objective) != 0 {
			t.Errorf("simplex %v: LP after cancel = (%v, %v), fresh (%v, %v)",
				sx, lpGot.Status, lpGot.Objective, lpWant.Status, lpWant.Objective)
		}
	}
}

// An installed-but-never-fired channel must not change any answer: the
// cancellation check is outside the pivot arithmetic.
func TestCancelChannelInertWhenUnfired(t *testing.T) {
	cancel := make(chan struct{})
	defer close(cancel)
	p := parityILP(7) // small enough to decide
	got, err := SolveILP(p, ILPOptions{Engine: EngineExact, Cancel: cancel})
	if err != nil {
		t.Fatal(err)
	}
	want, err := SolveILP(parityILP(7), ILPOptions{Engine: EngineExact})
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != want.Status {
		t.Errorf("status with inert channel %v, without %v", got.Status, want.Status)
	}
}

// The budget sentinel: node/work exhaustion classifies as
// ErrBudgetExhausted once it crosses the contracts layer; at the lp layer
// it is StatusLimit, distinct from StatusCanceled.
func TestBudgetVersusCancelStatus(t *testing.T) {
	sol, err := SolveILP(parityILP(15), ILPOptions{Engine: EngineExact, MaxWork: 500})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusLimit {
		t.Errorf("budgeted status %v, want limit", sol.Status)
	}
	if errors.Is(ErrCanceled, ErrBudgetExhausted) {
		t.Error("sentinels must be distinct")
	}
}

// TestWrapCancelCause pins the deadline/cancel distinction at its root:
// the helper annotates cancellation errors with the context's cause and
// leaves everything else alone.
func TestWrapCancelCause(t *testing.T) {
	base := fmt.Errorf("solve abandoned: %w", ErrCanceled)

	t.Run("deadline", func(t *testing.T) {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		err := WrapCancelCause(ctx, base)
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%v does not classify as DeadlineExceeded", err)
		}
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("%v lost ErrCanceled", err)
		}
	})

	t.Run("plain-cancel", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		err := WrapCancelCause(ctx, base)
		if err != base {
			t.Fatalf("plain cancel rewrote the error: %v", err)
		}
		if errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%v spuriously classifies as DeadlineExceeded", err)
		}
	})

	t.Run("custom-cause", func(t *testing.T) {
		reason := errors.New("shed load")
		ctx, cancel := context.WithCancelCause(context.Background())
		cancel(reason)
		err := WrapCancelCause(ctx, base)
		if !errors.Is(err, reason) {
			t.Fatalf("%v does not carry the custom cause", err)
		}
	})

	t.Run("pass-through", func(t *testing.T) {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		if err := WrapCancelCause(ctx, nil); err != nil {
			t.Fatalf("nil error rewritten to %v", err)
		}
		other := errors.New("unrelated")
		if err := WrapCancelCause(ctx, other); err != other {
			t.Fatalf("non-cancellation error rewritten to %v", err)
		}
		if err := WrapCancelCause(context.Background(), base); err != base {
			t.Fatalf("unfired context rewrote the error: %v", err)
		}
	})

	t.Run("idempotent", func(t *testing.T) {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		once := WrapCancelCause(ctx, base)
		twice := WrapCancelCause(ctx, once)
		if twice != once {
			t.Fatalf("double wrap produced a new error: %v", twice)
		}
	})
}
