package contracts

import (
	"math/big"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/lp"
)

func ratBig(n, d int64) *big.Rat { return big.NewRat(n, d) }

func TestExportSMTLIBShape(t *testing.T) {
	c := New("demo")
	nat(c, t, "x", "y")
	if err := c.DeclareVar(VarSpec{Name: "rate"}); err != nil { // unbounded Real
		t.Fatal(err)
	}
	mustAssume(t, c, CT("cap", lp.LE, 7, LT(1, "x"), LT(2, "y")))
	mustGuarantee(t, c, CT("demand", lp.GE, -3, LT(-1, "x")))
	mustGuarantee(t, c, Constraint{
		Name:  "frac",
		Terms: []LinTerm{{Coef: ratBig(1, 2), Var: "rate"}},
		Sense: lp.EQ,
		RHS:   ratBig(3, 4),
	})
	out := c.ExportSMTLIB()
	for _, want := range []string{
		"(set-logic QF_LIA)",
		"(declare-const x Int)",
		"(declare-const rate Real)",
		"(assert (>= x 0))",
		"(assert (<= (+ x (* 2 y)) 7))",
		"(assert (>= (* (- 1) x) (- 3)))",
		"(assert (= (* (/ 1 2) rate) (/ 3 4)))",
		"(check-sat)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SMT-LIB output missing %q:\n%s", want, out)
		}
	}
}

// Property: every exported script is structurally balanced (parentheses)
// and declares each variable exactly once, for random small contracts.
func TestExportSMTLIBBalancedProperty(t *testing.T) {
	f := func(nVars, nCons uint8) bool {
		c := New("p")
		n := 1 + int(nVars%4)
		for i := 0; i < n; i++ {
			if err := c.DeclareVar(NatSpec(varName(i))); err != nil {
				return false
			}
		}
		m := int(nCons % 5)
		for j := 0; j < m; j++ {
			con := CT("c", lp.Sense(j%3), int64(j)-2, LT(int64(j%3)-1, varName(j%n)), LT(2, varName((j+1)%n)))
			if err := c.Guarantee(con); err != nil {
				return false
			}
		}
		out := c.ExportSMTLIB()
		depth := 0
		for _, r := range out {
			switch r {
			case '(':
				depth++
			case ')':
				depth--
			}
			if depth < 0 {
				return false
			}
		}
		if depth != 0 {
			return false
		}
		for i := 0; i < n; i++ {
			if strings.Count(out, "(declare-const "+varName(i)+" ") != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func varName(i int) string { return string(rune('a' + i)) }
