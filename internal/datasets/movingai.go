package datasets

import (
	"embed"
	"fmt"

	"repro/internal/grid"
	"repro/internal/traffic"
	"repro/internal/warehouse"
	"repro/internal/workload"
)

//go:embed testdata/*.map
var movingaiMaps embed.FS

// MovingAIParams tunes the co-design an imported MAPF map receives.
type MovingAIParams struct {
	// NumProducts is |ρ|; products are assigned to shelves round-robin
	// (≥ 1).
	NumProducts int
	// UnitsPerShelf is the stock each shelf holds of its product (≥ 1).
	UnitsPerShelf int
	// Stations is the number of berths placed on the south edge (≥ 1).
	Stations int
	// MaxComponentLen caps component length after splitting (≥ 2).
	MaxComponentLen int
}

// ImportMovingAI turns a MovingAI-format map (grid.ParseMovingAI) into a
// warehouse with a co-designed traffic system. The importer reads the map
// as a perimeter-and-aisles layout:
//
//   - the border ring must be fully passable — it becomes the global
//     circulation; height must be odd (≥ 5), width ≥ 6;
//   - interior rows alternate: every odd row is an AISLE (fully passable,
//     becomes an eastward lane), every even interior row is a SHELF row
//     (its obstacle cells are shelves; passable cells are unused floor,
//     which the §IV-A validation permits);
//   - every shelf is served from the aisle directly below it.
//
// Traffic flows west along the south edge (holding the stations), north
// up the west edge in two-cell junction segments whose exits feed each
// aisle, east along aisles and the north edge, and south down the east
// edge in matching two-cell segments absorbing aisle exits, so the system
// graph is strongly connected with ≤ 2 inlets/outlets everywhere. Lanes
// are split to MaxComponentLen. Import is deterministic: the same text
// and params build the identical system.
func ImportMovingAI(text string, p MovingAIParams) (*warehouse.Warehouse, *traffic.System, error) {
	switch {
	case p.NumProducts < 1:
		return nil, nil, fmt.Errorf("datasets: movingai NumProducts %d < 1", p.NumProducts)
	case p.UnitsPerShelf < 1:
		return nil, nil, fmt.Errorf("datasets: movingai UnitsPerShelf %d < 1", p.UnitsPerShelf)
	case p.Stations < 1:
		return nil, nil, fmt.Errorf("datasets: movingai Stations %d < 1", p.Stations)
	case p.MaxComponentLen < 2:
		return nil, nil, fmt.Errorf("datasets: movingai MaxComponentLen %d < 2", p.MaxComponentLen)
	}
	g, err := grid.ParseMovingAI(text)
	if err != nil {
		return nil, nil, err
	}
	W, H := g.Width(), g.Height()
	if W < 6 || H < 5 {
		return nil, nil, fmt.Errorf("datasets: movingai map %dx%d too small for a circulation (need ≥ 6x5)", W, H)
	}
	if H%2 == 0 {
		return nil, nil, fmt.Errorf("datasets: movingai map height %d must be odd (aisle and shelf rows alternate)", H)
	}
	pass := func(x, y int) bool { return g.At(grid.Coord{X: x, Y: y}) != grid.None }
	for x := 0; x < W; x++ {
		if !pass(x, 0) || !pass(x, H-1) {
			return nil, nil, fmt.Errorf("datasets: movingai border cell (%d,·) blocked; the border ring must be passable", x)
		}
	}
	for y := 0; y < H; y++ {
		if !pass(0, y) || !pass(W-1, y) {
			return nil, nil, fmt.Errorf("datasets: movingai border cell (·,%d) blocked; the border ring must be passable", y)
		}
	}
	// Odd interior rows are aisles and must be fully open; even interior
	// rows are shelf rows whose obstacles are shelves.
	for y := 1; y < H-1; y += 2 {
		for x := 1; x < W-1; x++ {
			if !pass(x, y) {
				return nil, nil, fmt.Errorf("datasets: movingai aisle row %d blocked at x=%d; odd rows must be fully open", y, x)
			}
		}
	}

	// Shelves: obstacle cells of shelf rows, each served from the aisle
	// directly below. Access cells dedup like maps.Generate so one aisle
	// cell may serve shelves above and below it.
	accessIndex := make(map[grid.VertexID]int)
	var accessList []grid.VertexID
	accessOf := func(x, y int) int {
		v := g.At(grid.Coord{X: x, Y: y})
		if idx, ok := accessIndex[v]; ok {
			return idx
		}
		idx := len(accessList)
		accessIndex[v] = idx
		accessList = append(accessList, v)
		return idx
	}
	var shelfCols []int
	for y := 2; y < H-2; y += 2 {
		for x := 1; x < W-1; x++ {
			if pass(x, y) {
				continue // unused floor inside a shelf row
			}
			shelfCols = append(shelfCols, accessOf(x, y-1))
		}
	}
	if len(shelfCols) == 0 {
		return nil, nil, fmt.Errorf("datasets: movingai map has no shelves (no interior obstacles)")
	}
	stock := make([][]int, p.NumProducts)
	for k := range stock {
		stock[k] = make([]int, len(accessList))
	}
	for si, col := range shelfCols {
		stock[si%p.NumProducts][col] += p.UnitsPerShelf
	}
	for k := len(shelfCols); k < p.NumProducts; k++ {
		stock[k][shelfCols[k%len(shelfCols)]] += p.UnitsPerShelf
	}

	// Stations on the south edge, east to west, spaced into distinct
	// components.
	gap := p.MaxComponentLen + 2
	var stations []grid.VertexID
	for j := 0; j < p.Stations; j++ {
		x := W - 3 - j*gap
		if x < 2 {
			return nil, nil, fmt.Errorf("datasets: movingai map width %d cannot hold %d stations with gap %d", W, p.Stations, gap)
		}
		stations = append(stations, g.At(grid.Coord{X: x, Y: 0}))
	}
	w, err := warehouse.New(g, accessList, stations, p.NumProducts, stock)
	if err != nil {
		return nil, nil, err
	}

	at := func(x, y int) grid.VertexID { return g.At(grid.Coord{X: x, Y: y}) }
	var lanes [][]grid.VertexID
	// South edge: westward avenue holding the stations, from (W-2,0) to
	// (1,0). Its exit (1,0) feeds both the first west segment's entry
	// (0,0) and aisle 1's entry (1,1); the corners belong to the columns.
	var south []grid.VertexID
	for x := W - 2; x >= 1; x-- {
		south = append(south, at(x, 0))
	}
	lanes = append(lanes, south)
	// West edge: northward two-cell junction segments [(0,2k),(0,2k+1)].
	// Each exit sits at an aisle level, feeding that aisle's entry (1,y)
	// and the next segment; the top exit (0,H-2) feeds the north edge and
	// the top aisle.
	for y := 0; y+1 <= H-2; y += 2 {
		lanes = append(lanes, []grid.VertexID{at(0, y), at(0, y+1)})
	}
	// Aisles: eastward through every odd interior row.
	for y := 1; y < H-1; y += 2 {
		var aisle []grid.VertexID
		for x := 1; x <= W-2; x++ {
			aisle = append(aisle, at(x, y))
		}
		lanes = append(lanes, aisle)
	}
	// North edge: eastward.
	var north []grid.VertexID
	for x := 0; x <= W-1; x++ {
		north = append(north, at(x, H-1))
	}
	lanes = append(lanes, north)
	// East edge: southward two-cell segments [(W-1,y),(W-1,y-1)] starting
	// at each aisle level so each aisle exit (W-2,y) feeds a segment
	// entry; the last exit (W-1,0) feeds the south entry (W-2,0).
	for y := H - 2; y >= 1; y -= 2 {
		lanes = append(lanes, []grid.VertexID{at(W-1, y), at(W-1, y-1)})
	}

	segs, err := traffic.SplitLanes(w, lanes, traffic.SplitOptions{MaxLen: p.MaxComponentLen})
	if err != nil {
		return nil, nil, err
	}
	s, err := traffic.Build(w, segs)
	if err != nil {
		return nil, nil, err
	}
	seen := make(map[traffic.ComponentID]bool)
	for _, st := range stations {
		c := s.ComponentAt(st)
		if seen[c] {
			return nil, nil, fmt.Errorf("datasets: movingai stations share component %d; widen the gap", c)
		}
		seen[c] = true
	}
	return w, s, nil
}

// movingaiFamily imports the embedded MAPF-style maps, each with a
// co-design parameterization matched to its footprint.
func movingaiFamily(int64) ([]*Instance, error) {
	variants := []struct {
		name  string
		p     MovingAIParams
		units int
	}{
		{"pods-12x7", MovingAIParams{NumProducts: 4, UnitsPerShelf: 25, Stations: 1, MaxComponentLen: 6}, 10},
		{"blocks-16x9", MovingAIParams{NumProducts: 4, UnitsPerShelf: 25, Stations: 2, MaxComponentLen: 6}, 12},
	}
	var out []*Instance
	for _, v := range variants {
		text, err := movingaiMaps.ReadFile("testdata/" + v.name + ".map")
		if err != nil {
			return nil, err
		}
		w, s, err := ImportMovingAI(string(text), v.p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		wl, err := workload.Uniform(w, v.units)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		out = append(out, &Instance{
			Name: "movingai/" + v.name, Family: "movingai",
			Sys: s, WL: wl, T: horizonFor(s, v.units),
		})
	}
	return out, nil
}
