package lp

import (
	"fmt"
	"math/big"
	"sort"
)

// This file implements root cutting planes for the branch-and-bound search
// (ILPOptions.RootCuts): the root relaxation is solved exactly once, Gomory
// fractional cuts and knapsack-cover cuts are separated from its optimal
// basis, and the search then runs on the problem with the cut rows
// appended as ordinary constraints — so PR 2's node-to-node dual reentry
// and PR 3's incremental Model layer work on cut rows unchanged.
//
// Every emitted cut is valid for EVERY integer-feasible point (never just
// for improving ones), so the optimal objective value is exactly preserved;
// with alternate integer optima the cut tree may surface a different
// optimal point than the cut-free tree, which is why RootCuts guarantees
// objective identity rather than full Solution identity (the hybrid mode's
// stronger contract). The cut-validity fuzz in property_test.go checks the
// never-cuts-an-integer-point invariant directly.

// Caps on emitted cuts: root cuts pay off steeply and then plateau, while
// every extra row widens all later FTRAN/BTRANs. A handful of each family
// is the classic operating point.
const (
	maxGomoryCuts = 8
	maxCoverCuts  = 8
)

// solveILPRootCuts is the RootCuts entry: separate at the root, append, and
// run the ordinary search (hybrid or plain exact, per opts.Simplex) on the
// augmented problem.
func solveILPRootCuts(p *Problem, opts ILPOptions) (*Solution, error) {
	o := opts
	o.RootCuts = false
	cuts := separateRootCuts(p, opts.Cancel)
	if len(cuts) == 0 {
		return SolveILP(p, o)
	}
	aug := *p
	aug.Constraints = append(p.Constraints[:len(p.Constraints):len(p.Constraints)], cuts...)
	return SolveILP(&aug, o)
}

// separateRootCuts solves the root relaxation exactly and returns the cut
// rows found there. Cuts are separated only for objective problems (a
// feasibility search stops at its first integral point, and cuts would
// change WHICH point that is) and only from an optimal root basis —
// infeasible, unbounded or cancelled roots return no cuts and the plain
// search deals with them.
func separateRootCuts(p *Problem, cancel <-chan struct{}) []Constraint {
	if len(p.Objective) == 0 || len(p.Constraints) == 0 {
		return nil
	}
	hasInt := false
	for i := range p.Vars {
		if p.Vars[i].Integer {
			hasInt = true
			break
		}
	}
	if !hasInt {
		return nil
	}
	var cuts []Constraint
	if !promote(func() { cuts = rootCutsWith[rat64, rat64Arith](p, rat64Arith{}, cancel) }) {
		cuts = rootCutsWith[*big.Rat, ratArith](p, ratArith{}, cancel)
	}
	return cuts
}

func rootCutsWith[T any, A arith[T]](p *Problem, ar A, cancel <-chan struct{}) []Constraint {
	rv := newRevised[T, A](p, ar)
	rv.setCancel(cancel)
	lo, hi := declaredBounds(p)
	if rv.solveNode(lo, hi) != StatusOptimal {
		return nil
	}
	cuts := gomoryCuts(rv)
	cuts = append(cuts, coverCuts(rv)...)
	return cuts
}

// ratFrac returns the fractional part q − ⌊q⌋ ∈ [0, 1).
func ratFrac(q *big.Rat) *big.Rat {
	return new(big.Rat).Sub(q, ratFloor(q))
}

// rowIntegral reports whether constraint i has integer data throughout —
// integer coefficients over integer variables and an integer right-hand
// side — which makes its logical variable integral at every integer point.
func rowIntegral(p *Problem, i int) bool {
	c := &p.Constraints[i]
	if !c.RHS.IsInt() {
		return false
	}
	for _, t := range c.Terms {
		if !t.Coef.IsInt() || !p.Vars[t.Var].Integer {
			return false
		}
	}
	return true
}

// gomoryCuts derives Gomory fractional cuts from the optimal root basis.
//
// For a basis row r with basic integer variable x_B(r) at fractional value
// x̄_r, writing every nonbasic column j as its home value v_j plus a
// nonnegative offset t_j (x_j = v_j + σ_j·t_j, σ_j = +1 at a lower home,
// −1 at an upper home) turns the tableau row into
//
//	x_B(r) + Σ_j g_j·t_j = x̄_r,   g_j = σ_j·ā_rj,
//
// and whenever x_B(r) and every t_j are integral the fractional cut
//
//	Σ_j frac(g_j)·t_j ≥ frac(x̄_r)
//
// is valid for all such points and violated (0 ≥ frac > 0) at the current
// root point. A row qualifies only when every nonbasic with ā_rj ≠ 0 is
// provably integral-with-integral-home: an integer structural variable
// resting on an integer bound, or the logical of an all-integer row
// (rowIntegral) resting on its zero bound. The t_j are then expanded back
// to structural space and the cut emitted as an ordinary ≥ constraint.
func gomoryCuts[T any, A arith[T]](rv *revised[T, A]) []Constraint {
	ar := rv.ar
	p := rv.p
	var cuts []Constraint
	rowOK := make([]int8, rv.m) // memo for rowIntegral: 0 unknown, 1 yes, -1 no
	xbar := new(big.Rat)
	for r := 0; r < rv.m && len(cuts) < maxGomoryCuts; r++ {
		j0 := rv.basis[r]
		if j0 >= rv.nv || !p.Vars[j0].Integer {
			continue
		}
		ar.setRat(xbar, rv.xB[r])
		if xbar.IsInt() {
			continue
		}
		rv.pivotRow(r)
		coef := map[VarID]*big.Rat{}
		rhs := ratFrac(xbar) // f0; home constants accumulate below
		ok := true
		terms := 0
		for j := 0; j < rv.artStart && ok; j++ {
			if rv.stat[j] == inBasis || rv.fixedRange(j) {
				continue // fixed columns contribute t_j ≡ 0
			}
			a := rv.dot(rv.rho, j)
			if ar.sign(a) == 0 {
				continue
			}
			g := new(big.Rat)
			ar.setRat(g, a)
			atUpper := false
			switch rv.stat[j] {
			case nbLower:
			case nbUpper:
				atUpper = true
				g.Neg(g) // σ_j = −1
			default: // free column: t_j unbounded below, no valid offset
				ok = false
				continue
			}
			phi := ratFrac(g)
			if phi.Sign() == 0 {
				continue // integral multiplier: no contribution either way
			}
			if j < rv.nv {
				v := p.Vars[j].Lower
				if atUpper {
					v = p.Vars[j].Upper
				}
				if !p.Vars[j].Integer || v == nil || !v.IsInt() {
					ok = false
					continue
				}
				// φ·t = φ·σ·(x_j − v): σ=+1 at lower, −1 at upper.
				c := new(big.Rat).Set(phi)
				if atUpper {
					c.Neg(c)
				}
				addCoef(coef, VarID(j), c)
				rhs.Add(rhs, new(big.Rat).Mul(c, v))
				terms++
			} else {
				i := j - rv.nv
				if rowOK[i] == 0 {
					if rowIntegral(p, i) {
						rowOK[i] = 1
					} else {
						rowOK[i] = -1
					}
				}
				if rowOK[i] < 0 {
					ok = false
					continue
				}
				// Logical home is 0 on the row's closed side: t = b_i − A_i·x
				// for ≤ rows (lower home), t = A_i·x − b_i for ≥ rows (upper
				// home). φ·t expands over the row's terms.
				sign := new(big.Rat).Set(phi)
				if !atUpper {
					sign.Neg(sign) // ≤ row: coefficient −φ·a_ik, rhs −φ·b_i
				}
				for _, t := range p.Constraints[i].Terms {
					addCoef(coef, t.Var, new(big.Rat).Mul(sign, t.Coef))
				}
				rhs.Add(rhs, new(big.Rat).Mul(sign, p.Constraints[i].RHS))
				terms++
			}
		}
		if !ok || terms == 0 {
			continue
		}
		cut := Constraint{
			Name:  fmt.Sprintf("gomory#%d", r),
			Sense: GE,
			RHS:   rhs,
			Terms: sortedTerms(coef),
		}
		if len(cut.Terms) == 0 {
			continue
		}
		cuts = append(cuts, cut)
	}
	return cuts
}

// coverCuts separates minimal-cover cuts from knapsack rows: for a row
// Σ a_j·x_j ≤ b over binary variables with positive coefficients, any set C
// with Σ_{j∈C} a_j > b admits the cover inequality Σ_{j∈C} x_j ≤ |C|−1
// (the variables of C cannot all be 1), valid for every feasible 0/1 point
// regardless of whether the data are integral. Covers are built greedily by
// descending root-relaxation value and emitted only when the root point
// violates them.
func coverCuts[T any, A arith[T]](rv *revised[T, A]) []Constraint {
	ar := rv.ar
	p := rv.p
	one := big.NewRat(1, 1)
	var cuts []Constraint
	val := new(big.Rat)
	for i := 0; i < rv.m && len(cuts) < maxCoverCuts; i++ {
		c := &p.Constraints[i]
		if c.Sense != LE || len(c.Terms) < 2 || c.RHS.Sign() < 0 {
			continue
		}
		type item struct {
			v    VarID
			a    *big.Rat
			xbar *big.Rat
		}
		items := make([]item, 0, len(c.Terms))
		total := new(big.Rat)
		binary := true
		for _, t := range c.Terms {
			vr := &p.Vars[t.Var]
			if !vr.Integer || t.Coef.Sign() <= 0 ||
				vr.Lower == nil || vr.Lower.Sign() != 0 ||
				vr.Upper == nil || vr.Upper.Cmp(one) != 0 {
				binary = false
				break
			}
			ar.setRat(val, rv.value(int(t.Var)))
			items = append(items, item{t.Var, t.Coef, new(big.Rat).Set(val)})
			total.Add(total, t.Coef)
		}
		if !binary || total.Cmp(c.RHS) <= 0 {
			continue // not a binary knapsack, or never binding
		}
		sort.SliceStable(items, func(a, b int) bool {
			if cmp := items[a].xbar.Cmp(items[b].xbar); cmp != 0 {
				return cmp > 0
			}
			return items[a].v < items[b].v
		})
		sum := new(big.Rat)
		lhs := new(big.Rat)
		cover := 0
		for _, it := range items {
			sum.Add(sum, it.a)
			lhs.Add(lhs, it.xbar)
			cover++
			if sum.Cmp(c.RHS) > 0 {
				break
			}
		}
		if sum.Cmp(c.RHS) <= 0 {
			continue // defensive: cannot happen, total > RHS
		}
		// Violated at the root iff Σ_{C} x̄ > |C|−1.
		if lhs.Cmp(big.NewRat(int64(cover-1), 1)) <= 0 {
			continue
		}
		terms := make([]Term, cover)
		for k := 0; k < cover; k++ {
			terms[k] = Term{Var: items[k].v, Coef: big.NewRat(1, 1)}
		}
		sort.Slice(terms, func(a, b int) bool { return terms[a].Var < terms[b].Var })
		cuts = append(cuts, Constraint{
			Name:  fmt.Sprintf("cover#%d", i),
			Sense: LE,
			RHS:   big.NewRat(int64(cover-1), 1),
			Terms: terms,
		})
	}
	return cuts
}

func addCoef(coef map[VarID]*big.Rat, v VarID, c *big.Rat) {
	if cur, ok := coef[v]; ok {
		cur.Add(cur, c)
	} else {
		coef[v] = new(big.Rat).Set(c)
	}
}

// sortedTerms flattens a coefficient map into Terms ordered by variable,
// dropping exact zeros (cancelled coefficients).
func sortedTerms(coef map[VarID]*big.Rat) []Term {
	terms := make([]Term, 0, len(coef))
	for v, c := range coef {
		if c.Sign() != 0 {
			terms = append(terms, Term{Var: v, Coef: c})
		}
	}
	sort.Slice(terms, func(a, b int) bool { return terms[a].Var < terms[b].Var })
	return terms
}
