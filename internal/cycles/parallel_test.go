package cycles

// Tests for parallel route packing (Options.PackParallel): the candidate
// probes of newCycle run concurrently on private scratches, and the merge
// takes the first success in candidate order — so the produced Set, every
// error string, and the Check verdicts must be bit-identical to the
// sequential packing at every worker count, with and without a warm
// Scratch, under -race.

import (
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/lp"
	"repro/internal/warehouse"
)

var packWorkerCounts = []int{1, 2, 4}

// synthAllWorkers synthesizes sequentially and at every pack width,
// requiring identical Sets (or identical error strings).
func synthAllWorkers(t *testing.T, tag string, workload warehouse.Workload, T int) {
	t.Helper()
	w, s := ringSystem(t)
	_ = w
	want, werr := Synthesize(s, workload, T, Options{})
	for _, pack := range packWorkerCounts {
		sc := &Scratch{}
		for rep := 0; rep < 2; rep++ { // second rep reuses the warm scratch
			got, gerr := Synthesize(s, workload, T, Options{PackParallel: pack, Scratch: sc})
			if (werr == nil) != (gerr == nil) || (werr != nil && werr.Error() != gerr.Error()) {
				t.Fatalf("%s pack=%d rep=%d: err=%v, sequential err=%v", tag, pack, rep, gerr, werr)
			}
			if werr != nil {
				continue
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s pack=%d rep=%d: Set differs from sequential synthesis", tag, pack, rep)
			}
		}
	}
}

func TestSynthesizePackParallelParity(t *testing.T) {
	w, _ := ringSystem(t)
	for _, tc := range []struct {
		tag   string
		units []int
		T     int
	}{
		{"ring", []int{20, 12}, 600},
		{"heavy", []int{120, 90}, 600},
		{"tight", []int{40, 40}, 240},
		{"zero", []int{0, 0}, 600},
		{"exhausted", []int{300, 300}, 120}, // errors: strings must match too
	} {
		synthAllWorkers(t, tc.tag, wl(t, w, tc.units...), tc.T)
	}
}

// A pre-fired cancel channel aborts identically at every pack width, still
// classified under lp.ErrCanceled.
func TestSynthesizePackParallelCanceled(t *testing.T) {
	w, s := ringSystem(t)
	workload := wl(t, w, 20, 12)
	fired := make(chan struct{})
	close(fired)
	for _, pack := range packWorkerCounts {
		cs, err := Synthesize(s, workload, 600, Options{Cancel: fired, PackParallel: pack})
		if cs != nil || !errors.Is(err, lp.ErrCanceled) {
			t.Fatalf("pack=%d: (%v, %v), want lp.ErrCanceled", pack, cs, err)
		}
	}
}

// Concurrent syntheses with oversized pack widths: the token pool bounds
// the probe goroutines, every result stays bit-identical, and everything
// winds down leak-free (each wave joins before its synthesis returns).
func TestSynthesizePackParallelNested(t *testing.T) {
	w, s := ringSystem(t)
	workload := wl(t, w, 30, 20)
	want, err := Synthesize(s, workload, 600, Options{})
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := &Scratch{}
			for i := 0; i < 3; i++ {
				got, err := Synthesize(s, workload, 600, Options{PackParallel: 8, Scratch: sc})
				if err != nil {
					t.Errorf("nested synthesis: %v", err)
					return
				}
				if !reflect.DeepEqual(want, got) {
					t.Error("nested synthesis diverged from sequential")
					return
				}
			}
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d, base %d", n, base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
