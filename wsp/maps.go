package wsp

import (
	"fmt"

	"repro/internal/maps"
	"repro/internal/wspio"
)

// Evaluation maps and instance I/O.

type (
	// Map bundles a warehouse with its co-designed traffic system.
	Map = maps.Map
	// MapParams parameterizes the warehouse generator (stripes, corridor
	// width, component-length cap, products, stock, stations).
	MapParams = maps.Params
	// InstanceFile is the JSON-serializable form of a WSP instance.
	InstanceFile = wspio.Instance
)

// Fulfillment1 builds the paper's Fulfillment 1 evaluation map.
func Fulfillment1() (*Map, error) { return maps.Fulfillment1() }

// Fulfillment2 builds the paper's Fulfillment 2 evaluation map.
func Fulfillment2() (*Map, error) { return maps.Fulfillment2() }

// SortingCenter builds the paper's sorting-center evaluation map (§V).
func SortingCenter() (*Map, error) { return maps.SortingCenter() }

// BuiltinMap resolves an evaluation map by name: "fulfillment1",
// "fulfillment2", or "sorting".
func BuiltinMap(name string) (*Map, error) {
	switch name {
	case "fulfillment1":
		return Fulfillment1()
	case "fulfillment2":
		return Fulfillment2()
	case "sorting":
		return SortingCenter()
	}
	return nil, fmt.Errorf("wsp: unknown map %q (want fulfillment1, fulfillment2, or sorting)", name)
}

// GenerateMap builds a parametric warehouse plus traffic system — the
// co-design generator behind the Fig. 5 sweep.
func GenerateMap(p MapParams) (*Map, error) { return maps.Generate(p) }

// EncodeInstance converts a built instance into its serializable form
// (wl may be nil for a map-only file).
func EncodeInstance(s *System, wl *Workload, T int, name string) (*InstanceFile, error) {
	return wspio.Encode(s, wl, T, name)
}

// DecodeInstance rebuilds the traffic system and workload from a
// serialized instance.
func DecodeInstance(inst *InstanceFile) (*System, *Workload, error) {
	return wspio.Decode(inst)
}

// MarshalInstance renders an instance file as JSON.
func MarshalInstance(inst *InstanceFile) ([]byte, error) { return wspio.Marshal(inst) }

// UnmarshalInstance parses an instance file from JSON.
func UnmarshalInstance(data []byte) (*InstanceFile, error) { return wspio.Unmarshal(data) }
